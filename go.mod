module sparqlopt

go 1.22
