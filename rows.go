package sparqlopt

// The streaming results API. RunStream is the primitive serving call:
// it plans (through every existing layer — admission, deadline, plan
// cache, degradation ladder, memory budget) and executes the query,
// but returns before the result is materialized: a *Rows cursor pulls
// distinct result rows on demand from the engine's chunked emission
// path, so a query's resident output is one chunk regardless of result
// size. Run is rebased on it — it is RunStream plus collect-and-sort —
// which makes the two paths bit-identical by construction.
//
// All per-call bookkeeping that used to live in defers around the old
// materializing pipeline (trace finish, metrics counters, slow-query
// log, admission release, memory-gauge reset, adaptive feedback) moves
// to the end of the stream: it runs when the cursor is exhausted,
// errors, or is Closed — exactly once.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/plancache"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/sparql"
)

// TermID is a dictionary-encoded RDF term (see System.Term).
type TermID = rdf.TermID

// ShareCounters is a snapshot of the execution-sharing layer's
// cumulative counters (see WithExecutionSharing, System.ShareStats).
type ShareCounters = plancache.ShareCounters

// Rows is a cursor over one query's result stream. It is
// single-consumer and must be Closed (Close is idempotent and safe
// after exhaustion):
//
//	rows, err := sys.RunStream(ctx, src)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//	    use(rows.Row())        // or rows.Scan(dst)
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Next yields distinct rows in the engine's deterministic emission
// order — NOT the lexicographically sorted order Run returns; sort the
// collected rows to compare (they are the same set). The slice Row
// returns is backed by a recycled chunk arena: it is valid only until
// the next Next call, so retain a copy, not the slice.
type Rows struct {
	sys *System
	ctx context.Context
	fin *finalizer
	be  rowsBackend

	vars      []string
	limit     int64
	delivered int64

	chunk [][]rdf.TermID
	i     int
	row   []rdf.TermID

	res    *ExecResult
	err    error
	closed bool
}

// rowsBackend produces the raw chunk stream behind a Rows cursor —
// either this call's own engine execution or another in-flight
// identical call's broadcast.
type rowsBackend interface {
	// next returns the next chunk (valid until the following call) or
	// nil at the end of the stream.
	next(ctx context.Context) ([][]rdf.TermID, error)
	// close finalizes the execution exactly once. terminal is the error
	// that ended the stream (nil for a clean end or an abandon),
	// complete reports that the consumer saw the whole logical result
	// (exhaustion, or its row limit), delivered how many rows it got.
	close(terminal error, delivered int64, complete bool) *ExecResult
}

// Vars names the stream's output columns.
func (r *Rows) Vars() []string { return r.vars }

// Next advances to the next result row, fetching the next chunk from
// the execution when the current one is drained. It returns false at
// the end of the stream or on error (check Err); the end of the stream
// finalizes the call (metrics, trace, admission slot, memory gauge).
func (r *Rows) Next() bool {
	if r.closed {
		return false
	}
	if r.limit > 0 && r.delivered >= r.limit {
		// The cap is part of the call's contract (WithLimit): reaching
		// it is a complete result, not an abandon.
		r.finish(nil, true)
		return false
	}
	for {
		if r.i < len(r.chunk) {
			r.row = r.chunk[r.i]
			r.i++
			r.delivered++
			return true
		}
		chunk, err := r.be.next(r.ctx)
		if err != nil {
			r.finish(err, false)
			return false
		}
		if chunk == nil {
			r.finish(nil, true)
			return false
		}
		r.chunk, r.i = chunk, 0
	}
}

// Row returns the current row's dictionary-encoded terms. The slice is
// valid only until the next Next call; decode with System.Term or
// Scan, or copy to retain.
func (r *Rows) Row() []rdf.TermID { return r.row }

// Scan decodes the current row's terms into dst, which must hold
// len(Vars()) entries.
func (r *Rows) Scan(dst []string) error {
	if r.row == nil {
		return errors.New("sparqlopt: Scan called before Next")
	}
	if len(dst) < len(r.row) {
		return fmt.Errorf("sparqlopt: Scan destination holds %d of %d columns", len(dst), len(r.row))
	}
	for i, id := range r.row {
		dst[i] = r.sys.Term(id)
	}
	return nil
}

// Err returns the error that terminated iteration — nil while rows
// remain and after a clean end.
func (r *Rows) Err() error { return r.err }

// Close releases the call's resources (admission slot, memory gauge)
// and finalizes its observability. Closing an unexhausted cursor
// abandons the stream: what did happen is recorded, and any followers
// sharing this execution are cut loose. Idempotent; returns Err.
func (r *Rows) Close() error {
	r.finish(nil, false)
	return r.err
}

// Result returns the execution's statistics result — plan, metrics,
// trace, cache info, Returned — available once the stream has ended
// (nil before then). Rows is nil on it: the rows went through the
// cursor.
func (r *Rows) Result() *ExecResult { return r.res }

// finish ends the stream exactly once: backend teardown, then the
// call-level finalizer.
func (r *Rows) finish(err error, complete bool) {
	if r.closed {
		return
	}
	r.closed = true
	r.err = err
	r.res = r.be.close(err, r.delivered, complete)
	r.fin.finish(r.res, err)
}

// finalizer is one serving call's deferred bookkeeping, detached from
// the calling frame so it can run at stream end instead of function
// return.
type finalizer struct {
	s       *System
	set     opt.RunSettings
	src     string
	start   time.Time
	tr      *obs.Trace
	cancel  context.CancelFunc
	release func()
	g       *resilience.Gauge
	done    bool
}

// finish runs the call's epilogue exactly once. res may be nil only
// when err is non-nil.
func (f *finalizer) finish(res *ExecResult, err error) {
	if f.done {
		return
	}
	f.done = true
	f.tr.Finish(err)
	if f.s.obs != nil {
		d := time.Since(f.start)
		f.s.obs.queries.Inc()
		if err != nil {
			f.s.obs.queryErrors.Inc()
		}
		f.s.obs.querySeconds.ObserveDuration(d)
		if f.s.obs.slowLog != nil {
			e := obs.SlowQueryEntry{
				Time:      time.Now(),
				Query:     f.src,
				Algorithm: f.set.Algorithm.String(),
				Duration:  d,
				Phases:    f.tr.Phases(),
			}
			if err != nil {
				e.Err = err.Error()
				e.Rejected = errors.Is(err, resilience.ErrOverloaded)
			} else {
				e.Rows = int(res.RowCount())
				e.FlatRows = res.FlatRowCount()
				e.Factorized = res.Factorized
				e.Shared = res.CacheInfo.SharedExec
				e.ShuffledRows = res.ShuffledRows()
				e.ShuffledBytes = res.ShuffledBytes()
				e.CacheHit = res.CacheInfo.Hit
				e.Degraded = res.Degraded
				e.Failovers = res.Failovers
			}
			f.s.obs.slowLog.Record(e)
		}
	}
	if f.set.TraceSink != nil {
		f.set.TraceSink(f.tr)
	}
	// Sustained node failure is a repartitioning trigger: an open
	// breaker (or a typed unavailable failure) kicks off a recovery
	// round that re-replicates the dead nodes' stranded triples.
	f.s.maybeRecover(err)
	if f.release != nil {
		f.release()
	}
	f.g.Reset()
	f.cancel()
}

// engineBackend streams this call's own engine execution, publishing
// each chunk to bc when the call leads a shared execution.
type engineBackend struct {
	sys  *System
	q    *Query
	st   *engine.Stream
	bc   *plancache.Broadcast // nil when not sharing
	g    *resilience.Gauge
	sp   *obs.Span // the open "execute" span; ended at close
	res  *ExecResult
	vars []string
	// drained marks that the engine stream itself ended (as opposed to
	// a limit cut, where published chunks already cover every sharer's
	// identical limit).
	drained     bool
	shareFailed bool
	closed      bool
}

// broadcastRowBytes is the reservation per published row: the row
// payload plus its slice header, mirroring the log's own accounting.
const broadcastRowBytes = 24

func (b *engineBackend) next(ctx context.Context) ([][]rdf.TermID, error) {
	rows, err := b.st.NextChunk(ctx)
	if err != nil {
		return nil, err
	}
	if rows == nil {
		b.drained = true
		return nil, nil
	}
	if b.bc != nil && !b.shareFailed {
		// The broadcast log retains a copy of every chunk for followers
		// that join mid-stream; the retention is charged to the leader's
		// own gauge. A trip cuts the followers loose — the leader's
		// stream is unaffected.
		need := int64(len(rows)) * (int64(len(b.vars))*4 + broadcastRowBytes)
		if cerr := b.g.Reserve("share", need); cerr != nil {
			b.bc.Abort()
			b.shareFailed = true
		} else {
			b.bc.Publish(rows)
		}
	}
	return rows, nil
}

func (b *engineBackend) close(terminal error, delivered int64, complete bool) *ExecResult {
	if b.closed {
		return b.res
	}
	b.closed = true
	b.st.Finish()
	res := b.res
	res.Returned = delivered
	b.sp.SetAttrInt("rows", delivered)
	b.sp.End()
	res.Trace.AttachSpans(b.sp)
	if b.bc != nil && !b.shareFailed {
		switch {
		case terminal != nil:
			b.bc.Finish(nil, terminal)
		case complete:
			// Followers must not alias the result the caller may still
			// mutate (Run attaches sorted rows to it).
			cp := *res
			cp.Rows = nil
			b.bc.Finish(&cp, nil)
		default:
			// Abandoned mid-stream: the log will never be complete.
			b.bc.Abort()
		}
	}
	if terminal == nil {
		b.sys.observeAdaptive(b.q, res)
	}
	return res
}

// followerBackend replays an in-flight identical execution's broadcast
// log. A follower that loses its leader before consuming anything
// falls back to its own execution transparently.
type followerBackend struct {
	sys      *System
	bc       *plancache.Broadcast
	cursor   int
	fallback func(ctx context.Context) (*engineBackend, error)
	eng      *engineBackend // non-nil after a fallback
}

func (f *followerBackend) next(ctx context.Context) ([][]rdf.TermID, error) {
	if f.eng != nil {
		return f.eng.next(ctx)
	}
	chunk, end, err := f.bc.Next(ctx, f.cursor)
	if err != nil {
		if f.cursor == 0 && ctx.Err() == nil && f.fallback != nil {
			// The leader failed before this follower consumed anything:
			// nothing was delivered, so re-executing is transparent.
			f.sys.share.Fallback()
			eng, ferr := f.fallback(ctx)
			if ferr != nil {
				return nil, ferr
			}
			f.eng = eng
			return f.eng.next(ctx)
		}
		return nil, err
	}
	if end {
		return nil, nil
	}
	f.cursor++
	return chunk, nil
}

func (f *followerBackend) close(terminal error, delivered int64, complete bool) *ExecResult {
	if f.eng != nil {
		res := f.eng.close(terminal, delivered, complete)
		res.CacheInfo.SharedExec = false
		return res
	}
	res := &ExecResult{}
	if lr := f.bc.Result(); lr != nil {
		// The leader's stats result is immutable after Finish; the
		// shallow copy shares its trace and plan read-only.
		*res = *lr
	}
	res.Rows = nil
	res.Returned = delivered
	res.CacheInfo.SharedExec = true
	return res
}

// RunStream optimizes and executes a query, returning a row cursor
// instead of a materialized result — the streaming serving path. The
// full serving stack applies exactly as in Run (admission control,
// per-call deadline, plan cache, degradation ladder, memory budget,
// metrics, slow-query log); only the result emission differs: rows
// stream in the engine's deterministic order and the call's resident
// output is one chunk. The cursor must be Closed.
func (s *System) RunStream(ctx context.Context, query string, opts ...RunOption) (*Rows, error) {
	return s.stream(ctx, query, nil, opt.NewRunSettings(opts))
}

// RunStreamQuery is RunStream for an already-parsed query.
func (s *System) RunStreamQuery(ctx context.Context, q *Query, opts ...RunOption) (*Rows, error) {
	return s.stream(ctx, "", q, opt.NewRunSettings(opts))
}

// shareEligible reports whether one call may join the execution-
// sharing table: deterministic fault injection and per-call tracing
// are private to a call (a follower would observe the wrong
// lifecycle), and a cache-bypass call asked for isolation.
func shareEligible(set opt.RunSettings) bool {
	return set.Faults == nil && set.TraceSink == nil && !set.NoCache
}

// shareKey is the identity of one shared execution. The canonical
// fingerprint is NOT enough — it collapses constants, which share a
// plan but not results — so the key is the rendered query text plus
// everything else that changes the row stream: algorithm (plans may
// differ), snapshot epoch (data may differ) and row limit.
func shareKey(q *Query, set opt.RunSettings, snap *engine.Snap) string {
	epoch := uint64(0)
	if d := snap.Data(); d != nil {
		epoch = d.Epoch()
	}
	return fmt.Sprintf("%s\x00%d\x00%d\x00%s", set.Algorithm, epoch, set.Limit, q.String())
}

// stream is the serving pipeline behind RunStream, Run and the HTTP
// endpoint. Exactly one of src and q is set by the caller. It admits,
// parses, pins the serving snapshot, plans down the degradation
// ladder and opens the engine's chunk stream — or, when execution
// sharing is on and an identical read is already in flight, subscribes
// to that read's broadcast instead of executing at all. Everything
// after the returned cursor is the stream's problem: the finalizer
// runs at its end, not at this function's return.
func (s *System) stream(ctx context.Context, src string, q *Query, set opt.RunSettings) (*Rows, error) {
	ctx, cancel := withDeadline(ctx, set.Deadline)
	fin := &finalizer{s: s, set: set, cancel: cancel}
	if s.obs != nil || set.TraceSink != nil {
		fin.start = time.Now()
		if set.TraceSink != nil || (s.obs != nil && s.obs.slowLog != nil) {
			if src == "" && q != nil {
				src = q.String()
			}
			fin.tr = obs.NewTrace(src)
			fin.tr.Algorithm = set.Algorithm.String()
		}
		fin.src = src
	}
	fail := func(err error) (*Rows, error) {
		fin.finish(nil, err)
		return nil, err
	}
	release, err := s.admit(ctx)
	if err != nil {
		return fail(err)
	}
	fin.release = release
	if q == nil {
		sp := fin.tr.Span("parse")
		q, err = sparql.Parse(src)
		sp.End()
		if err != nil {
			return fail(err)
		}
		sp.SetAttrInt("patterns", int64(len(q.Patterns)))
	}
	g := s.budget.NewGauge()
	fin.g = g
	// Pin the serving snapshot once: one atomic load fixes the store
	// view, the ingest delta, the dataset snapshot and its epoch for
	// the whole query — statistics, cache lookup, the sharing key and
	// execution all see the same committed state no matter how many
	// writes land mid-run.
	snap := s.engine.Snapshot()

	// lead plans and opens this call's own execution, feeding bc (which
	// may be nil) — used by the leader path and by follower fallback.
	lead := func(ctx context.Context, bc *plancache.Broadcast) (*engineBackend, error) {
		res, info, degraded, err := s.planLadder(ctx, q, set, g, fin.tr, snap)
		if err != nil {
			bc.Finish(nil, err)
			return nil, err
		}
		sp := fin.tr.Span("execute")
		st, err := s.engine.ExecuteStream(ctx, res.Plan, q, engine.ExecEnv{Gauge: g, Faults: set.Faults, Snap: snap})
		if err != nil {
			sp.End()
			bc.Finish(nil, err)
			return nil, err
		}
		out := st.Result()
		out.Opt = res
		out.CacheInfo = info
		// The ladder's own degradations come first, then any failover
		// notes the engine recorded (node died, served from replicas).
		out.Degraded = append(degraded, out.Degraded...)
		if len(out.Degraded) > 0 {
			s.resInst.QueryDegraded()
		}
		bc.SetVars(st.Vars())
		return &engineBackend{sys: s, q: q, st: st, bc: bc, g: g, sp: sp, res: out, vars: st.Vars()}, nil
	}

	var be rowsBackend
	var vars []string
	if s.share != nil && shareEligible(set) {
		bc, leader := s.share.Join(shareKey(q, set, snap))
		if leader {
			eb, err := lead(ctx, bc)
			if err != nil {
				return fail(err)
			}
			be, vars = eb, eb.vars
		} else {
			hvars, herr := bc.Header(ctx)
			if herr != nil || hvars == nil {
				if ctx.Err() != nil {
					return fail(obs.Canceled(ctx, "share_wait"))
				}
				// The leader died before announcing anything; nothing was
				// consumed, so run the query ourselves.
				s.share.Fallback()
				eb, err := lead(ctx, nil)
				if err != nil {
					return fail(err)
				}
				be, vars = eb, eb.vars
			} else {
				be = &followerBackend{sys: s, bc: bc, fallback: func(ctx context.Context) (*engineBackend, error) {
					return lead(ctx, nil)
				}}
				vars = hvars
			}
		}
	} else {
		eb, err := lead(ctx, nil)
		if err != nil {
			return fail(err)
		}
		be, vars = eb, eb.vars
	}
	return &Rows{sys: s, ctx: ctx, fin: fin, be: be, vars: vars, limit: set.Limit}, nil
}

// collectChargeStep batches the materializing path's output-arena
// reservations, so collection doesn't hit the budget atomics per row.
const collectChargeStep = 64 * 1024

// collect drains the cursor into a materialized, lexicographically
// sorted row set — Run's epilogue. The retained rows are charged to
// the call's gauge under "flatten" (the site the materializing
// factorized path always used), so Run keeps its memory-budget
// semantics: a result too big for the per-query budget fails with a
// *BudgetError even though the stream underneath would have coped.
func (r *Rows) collect() (*ExecResult, error) {
	width := len(r.vars)
	rowBytes := int64(width)*4 + broadcastRowBytes
	var rows [][]rdf.TermID
	var charged int64
	for r.Next() {
		need := int64(len(rows)+1) * rowBytes
		if need-charged >= collectChargeStep {
			if err := r.fin.g.Reserve("flatten", need-charged); err != nil {
				r.finish(err, false)
				return nil, err
			}
			charged = need
		}
		rows = append(rows, append(make([]rdf.TermID, 0, width), r.row...))
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	res := r.Result()
	res.Rows = rows
	return res, nil
}
