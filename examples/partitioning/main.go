// Partitioning model walkthrough: shows how the generic combine /
// distribute model (paper §II-C) yields maximal local queries and
// local-query detection for four very different partitioning methods,
// using the paper's own running example (Fig. 1).
package main

import (
	"fmt"
	"log"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/sparql"
)

func main() {
	// The query of paper Fig. 1a (tp1..tp7).
	q, err := sparql.Parse(`SELECT * WHERE {
		?b <p1> ?a .
		?c <p2> ?a .
		?a <p3> ?e .
		?e <p4> ?g .
		?b <p5> ?f .
		?c <p6> ?d .
		?a <p7> ?d .
	}`)
	if err != nil {
		log.Fatal(err)
	}
	g := querygraph.NewGraph(q)
	jg, err := querygraph.NewJoinGraph(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %d patterns, class %s, join variables %v\n\n",
		jg.NumTP, jg.Classify(), jg.Vars)

	methods := []partition.Method{
		partition.HashSO{},
		partition.TwoHopForward{},
		partition.PathBMC{},
		partition.UndirectedOneHop{},
	}
	for _, m := range methods {
		fmt.Printf("=== %s ===\n", m.Name())
		// Maximal local queries at each query vertex (appendix A).
		fmt.Println("maximal local queries (combine(v, G_Q)):")
		for v, term := range g.Terms {
			mlq := m.CombineQuery(g, v)
			if mlq.Len() > 1 {
				fmt.Printf("  at %-3s -> %s\n", term, tpNames(mlq))
			}
		}
		checker := partition.NewLocalChecker(m, g)
		// Probe a few subqueries from the paper's examples.
		probes := []struct {
			name string
			set  bitset.TPSet
		}{
			{"{tp1,tp2,tp3}", bitset.Of(0, 1, 2)},
			{"{tp1,tp3,tp4,tp5,tp7}", bitset.Of(0, 2, 3, 4, 6)},
			{"{tp2,tp6}", bitset.Of(1, 5)},
			{"whole query", bitset.Full(7)},
		}
		fmt.Println("local-query checks (Theorem 5, one bitset test per MLQ):")
		for _, p := range probes {
			fmt.Printf("  %-22s local=%v\n", p.name, checker.IsLocal(p.set))
		}
		fmt.Println()
	}
}

func tpNames(s bitset.TPSet) string {
	out := "{"
	first := true
	s.Each(func(i int) bool {
		if !first {
			out += ","
		}
		first = false
		out += fmt.Sprintf("tp%d", i+1)
		return true
	})
	return out + "}"
}
