// WatDiv stress test: optimize a diverse template workload with every
// algorithm and summarize optimization time and plan quality — a
// miniature of the paper's Fig. 6.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"sparqlopt/internal/baseline"
	"sparqlopt/internal/cost"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/stats"
	"sparqlopt/internal/workload/watdiv"
)

type algo struct {
	name string
	run  func(ctx context.Context, in *opt.Input) (*opt.Result, error)
}

func main() {
	templates := flag.Int("templates", 30, "number of templates to use (max 124)")
	instances := flag.Int("instances", 10, "instances per template")
	flag.Parse()

	algos := []algo{
		{"TD-CMD", func(ctx context.Context, in *opt.Input) (*opt.Result, error) { return opt.Optimize(ctx, in, opt.TDCMD) }},
		{"TD-CMDP", func(ctx context.Context, in *opt.Input) (*opt.Result, error) {
			return opt.Optimize(ctx, in, opt.TDCMDP)
		}},
		{"TD-Auto", func(ctx context.Context, in *opt.Input) (*opt.Result, error) {
			return opt.Optimize(ctx, in, opt.TDAuto)
		}},
		{"MSC", baseline.MSC},
		{"DP-Bushy", baseline.DPBushy},
	}
	totalTime := make([]time.Duration, len(algos))
	ratios := make([][]float64, len(algos))

	tmpls := watdiv.Templates(1)
	if *templates < len(tmpls) {
		tmpls = tmpls[:*templates]
	}
	runs := 0
	for _, tpl := range tmpls {
		for inst := 0; inst < *instances; inst++ {
			q, s := tpl.Instantiate(int64(tpl.ID*1000 + inst))
			views, err := querygraph.Build(q)
			if err != nil {
				log.Fatal(err)
			}
			est, err := stats.NewEstimator(q, s)
			if err != nil {
				log.Fatal(err)
			}
			runs++
			var optimal float64
			for ai, a := range algos {
				in := &opt.Input{Query: q, Views: views, Est: est,
					Params: cost.Default, Method: partition.HashSO{}}
				start := time.Now()
				res, err := a.run(context.Background(), in)
				if err != nil {
					log.Fatalf("template %d %s: %v", tpl.ID, a.name, err)
				}
				totalTime[ai] += time.Since(start)
				if a.name == "TD-CMD" {
					optimal = res.Plan.Cost
				} else if optimal > 0 {
					ratios[ai] = append(ratios[ai], res.Plan.Cost/optimal)
				}
			}
		}
	}

	fmt.Printf("WatDiv-style stress test: %d templates x %d instances = %d queries\n\n",
		len(tmpls), *instances, runs)
	fmt.Printf("%-10s %14s %14s %14s\n", "algorithm", "total opt time", "median ratio", "worst ratio")
	for ai, a := range algos {
		med, worst := "-", "-"
		if len(ratios[ai]) > 0 {
			rs := append([]float64{}, ratios[ai]...)
			sort.Float64s(rs)
			med = fmt.Sprintf("%.3f", rs[len(rs)/2])
			worst = fmt.Sprintf("%.3f", rs[len(rs)-1])
		}
		fmt.Printf("%-10s %14v %14s %14s\n", a.name,
			totalTime[ai].Round(time.Millisecond), med, worst)
	}
	fmt.Println("\nratios are plan cost relative to TD-CMD's optimum (1.000 = optimal).")
	fmt.Println("the heuristics stay near 1 while MSC's flat plans drift higher (paper Fig. 6b).")
}
