// Explain: optimize one query with every algorithm, compare the plans
// side by side, execute the winner with per-operator tracing
// (EXPLAIN ANALYZE), and emit the plan as Graphviz dot.
package main

import (
	"context"
	"fmt"
	"log"

	"sparqlopt"
	"sparqlopt/internal/workload/uniprot"
)

func main() {
	fmt.Println("generating UniProt-style dataset...")
	ds := uniprot.Generate(uniprot.Config{Proteins: 1000, Seed: 2})
	fmt.Printf("%d triples\n\n", ds.Len())

	sys, err := sparqlopt.Open(ds, sparqlopt.WithNodes(4))
	if err != nil {
		log.Fatal(err)
	}

	// U3: the 11-pattern protein-interaction query (tree-shaped).
	q := uniprot.Query("U3")
	fmt.Println("query U3:")
	fmt.Println(q)
	fmt.Println()

	for _, algo := range []sparqlopt.Algorithm{
		sparqlopt.TDCMD, sparqlopt.TDCMDP, sparqlopt.HGRTDCMD, sparqlopt.TDAuto,
	} {
		res, err := sys.OptimizeQuery(context.Background(), q, sparqlopt.WithAlgorithm(algo))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v cost=%-10.4g joins-enumerated=%-8d plans-costed=%d\n",
			algo, res.Plan.Cost, res.Counter.CMDs, res.Counter.Plans)
	}

	best, err := sys.OptimizeQuery(context.Background(), q, sparqlopt.WithAlgorithm(sparqlopt.TDAuto))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTD-Auto plan:\n%s\n", best.Plan.Format())

	out, err := sys.Execute(context.Background(), best.Plan, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution trace (%d distinct results):\n%s\n", len(out.Rows), out.Trace.Format())
	fmt.Println("Graphviz (pipe into `dot -Tsvg`):")
	fmt.Print(best.Plan.DOT())
}
