// Quickstart: build a tiny RDF dataset, optimize a query with the
// paper's TD-Auto algorithm, inspect the plan, and execute it on a
// simulated 4-node cluster.
package main

import (
	"context"
	"fmt"
	"log"

	"sparqlopt"
)

func main() {
	// 1. Build a dataset (or load one with sparqlopt.ReadNTriples).
	ds := sparqlopt.NewDataset()
	triples := [][3]string{
		{"http://ex/alice", "http://ex/knows", "http://ex/bob"},
		{"http://ex/bob", "http://ex/knows", "http://ex/carol"},
		{"http://ex/carol", "http://ex/knows", "http://ex/dave"},
		{"http://ex/alice", "http://ex/worksFor", "http://ex/acme"},
		{"http://ex/bob", "http://ex/worksFor", "http://ex/acme"},
		{"http://ex/carol", "http://ex/worksFor", "http://ex/globex"},
		{"http://ex/acme", "http://ex/inCity", "http://ex/berlin"},
		{"http://ex/globex", "http://ex/inCity", "http://ex/paris"},
	}
	for _, t := range triples {
		ds.Add(t[0], t[1], t[2])
	}

	// 2. Partition it onto a simulated cluster (hash partitioning on
	// subject and object, the default) and open the system.
	sys, err := sparqlopt.Open(ds, sparqlopt.WithNodes(4))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Optimize a query. TD-Auto picks the right enumeration
	// strategy from the query's join graph (paper §IV-C).
	query := `SELECT ?a ?b ?city WHERE {
		?a <http://ex/knows> ?b .
		?a <http://ex/worksFor> ?o .
		?b <http://ex/worksFor> ?o .
		?o <http://ex/inCity> ?city .
	}`
	res, err := sys.Optimize(context.Background(), query, sparqlopt.WithAlgorithm(sparqlopt.TDAuto))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen algorithm: %v\n", res.Used)
	fmt.Printf("search space: %d join operators enumerated\n", res.Counter.CMDs)
	fmt.Printf("estimated cost: %.3f\nplan:\n%s\n", res.Plan.Cost, res.Plan.Format())

	// 4. Execute the plan on the simulated cluster.
	q, err := sparqlopt.ParseQuery(query)
	if err != nil {
		log.Fatal(err)
	}
	out, err := sys.Execute(context.Background(), res.Plan, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results (%d rows, %d rows moved across nodes):\n%s",
		len(out.Rows), out.Metrics.TransferredRows, sys.FormatResult(out))
}
