// LUBM workload: generate a university dataset, run every benchmark
// query (L1–L10) under three partitioning methods, and compare
// optimization time, plan cost, execution time and network traffic —
// a miniature of the paper's Tables IV–VI.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"sparqlopt"
	"sparqlopt/internal/workload/lubm"
)

func main() {
	universities := flag.Int("universities", 3, "LUBM scale factor")
	nodes := flag.Int("nodes", 4, "simulated cluster size")
	flag.Parse()

	fmt.Printf("generating LUBM-like data (%d universities)...\n", *universities)
	ds := lubm.Generate(lubm.Config{Universities: *universities, Seed: 1})
	fmt.Printf("%d triples\n\n", ds.Len())

	for _, methodName := range []string{"hash-so", "2f", "path-bmc"} {
		m, err := sparqlopt.PartitionMethod(methodName)
		if err != nil {
			log.Fatal(err)
		}
		sys, err := sparqlopt.Open(ds, sparqlopt.WithMethod(m), sparqlopt.WithNodes(*nodes))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s partitioning (replication %.2fx) ===\n",
			m.Name(), sys.ReplicationFactor())
		fmt.Printf("%-5s %12s %12s %12s %10s %8s\n",
			"query", "opt time", "plan cost", "exec time", "results", "moved")
		for _, name := range lubm.QueryNames {
			q := lubm.Query(name)
			start := time.Now()
			res, err := sys.OptimizeQuery(context.Background(), q, sparqlopt.WithAlgorithm(sparqlopt.TDAuto))
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			optTime := time.Since(start)
			start = time.Now()
			out, err := sys.Execute(context.Background(), res.Plan, q)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			fmt.Printf("%-5s %12v %12.4g %12v %10d %8d\n",
				name, optTime.Round(time.Microsecond), res.Plan.Cost,
				time.Since(start).Round(time.Microsecond), len(out.Rows),
				out.Metrics.TransferredRows)
		}
		fmt.Println()
	}
	fmt.Println("note how path partitioning drives the 'moved' column to (near) zero:")
	fmt.Println("the benchmark queries become local queries (paper §V-B); only the")
	fmt.Println("few queries anchored at mid-path constants keep a distributed join.")
}
