// Command benchrunner regenerates the tables and figures of the
// paper's evaluation section (§V).
//
// Usage:
//
//	benchrunner [flags]
//
//	-experiment  which artifact to regenerate:
//	             table3 | table4 | table5 | table6 | table7 |
//	             fig6 | fig7 | fig8 | fig7and8 | ablation | costcheck |
//	             engine | plancache | obsoverhead | overload |
//	             factorized | adaptive | ingest | serving | failover |
//	             all
//	             (default all; ablation is this repo's extra study of
//	             the TD-CMDP pruning rules; engine profiles end-to-end
//	             execution and writes BENCH_engine.json; plancache
//	             replays LUBM L1–L10 cold vs warm through the plan
//	             cache and writes BENCH_plancache.json; obsoverhead
//	             serves L1–L10 with observability on vs off and writes
//	             BENCH_obsoverhead.json; overload drives client fleets
//	             at 1x-8x of capacity against a gated system (admission
//	             control + memory budget) and an ungated one and writes
//	             BENCH_overload.json; factorized compares flat vs
//	             answer-graph execution on result-heavy queries and
//	             writes BENCH_factorized.json; adaptive drives a
//	             repeating hot workload through a static and an
//	             advisor-enabled system, reporting steady-state shuffle
//	             volume, warm p99, replication cost and cold-query
//	             regression, and writes BENCH_adaptive.json; failover
//	             kills one node mid-workload against a failover-enabled
//	             system and a twin without it, reporting success rate,
//	             degraded p99, recovery re-replication and time to full
//	             service, and writes BENCH_failover.json)
//	-timeout     per-optimizer-run cap (default 600s, the paper's cap;
//	             timed-out cells print N/A)
//	-quick       shrink datasets and instance counts for a fast pass
//	-nodes       simulated cluster size (default 10, as in the paper)
//	-seed        generator seed (default 1)
//	-parallelism optimizer and engine worker goroutines (0 = all
//	             cores, 1 = sequential; identical plan costs and
//	             execution results either way)
//	-enginejson  output path of the engine profile (default
//	             BENCH_engine.json; empty disables the file)
//	-plancachejson  output path of the plan cache profile (default
//	             BENCH_plancache.json; empty disables the file)
//	-obsjson     output path of the observability overhead profile
//	             (default BENCH_obsoverhead.json; empty disables the file)
//	-overloadjson  output path of the overload experiment (default
//	             BENCH_overload.json; empty disables the file)
//	-factorizedjson  output path of the factorized-execution profile
//	             (default BENCH_factorized.json; empty disables the file)
//	-adaptivejson  output path of the adaptive-repartitioning profile
//	             (default BENCH_adaptive.json; empty disables the file)
//	-ingestjson  output path of the serving-under-ingest profile
//	             (default BENCH_ingest.json; empty disables the file)
//	-failoverjson  output path of the node-failover experiment (default
//	             BENCH_failover.json; empty disables the file)
//	-servingjson output path of the HTTP serving profile: streaming vs
//	             materializing responses over real sockets (p50/p99 and
//	             peak heap per mode) plus duplicate-query coalescing
//	             counts (default BENCH_serving.json; empty disables)
//	-metrics     append a Prometheus metrics snapshot to the output of
//	             the serving-path experiments (engine, plancache,
//	             obsoverhead)
//
// Examples:
//
//	benchrunner -experiment table7 -quick
//	benchrunner -experiment all -timeout 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sparqlopt/internal/bench"
)

func main() {
	var (
		experiment   = flag.String("experiment", "all", "table3|table4|table5|table6|table7|fig6|fig7|fig8|fig7and8|engine|plancache|all")
		timeout      = flag.Duration("timeout", 0, "per-run optimization cap (0 = paper's 600s, or 3s with -quick)")
		quick        = flag.Bool("quick", false, "small datasets and instance counts")
		nodes        = flag.Int("nodes", 0, "simulated cluster size (0 = 10)")
		seed         = flag.Int64("seed", 1, "generator seed")
		parallel     = flag.Int("parallelism", 0, "optimizer and engine worker goroutines (0 = all cores, 1 = sequential)")
		csvDir       = flag.String("csv", "", "also write plot-ready CSV files into this directory (figures only)")
		engineJSON   = flag.String("enginejson", "BENCH_engine.json", "engine profile output path (empty = no file)")
		pcJSON       = flag.String("plancachejson", "BENCH_plancache.json", "plan cache profile output path (empty = no file)")
		obsJSON      = flag.String("obsjson", "BENCH_obsoverhead.json", "observability overhead output path (empty = no file)")
		overloadJSON = flag.String("overloadjson", "BENCH_overload.json", "overload experiment output path (empty = no file)")
		factJSON     = flag.String("factorizedjson", "BENCH_factorized.json", "factorized-execution profile output path (empty = no file)")
		adaptJSON    = flag.String("adaptivejson", "BENCH_adaptive.json", "adaptive-repartitioning profile output path (empty = no file)")
		ingestJSON   = flag.String("ingestjson", "BENCH_ingest.json", "serving-under-ingest profile output path (empty = no file)")
		servingJSON  = flag.String("servingjson", "BENCH_serving.json", "HTTP serving profile output path (empty = no file)")
		failJSON     = flag.String("failoverjson", "BENCH_failover.json", "node-failover experiment output path (empty = no file)")
		metrics      = flag.Bool("metrics", false, "append a metrics snapshot to serving-path experiments")
	)
	flag.Parse()

	cfg := bench.Config{
		Out:         os.Stdout,
		Timeout:     *timeout,
		Quick:       *quick,
		Nodes:       *nodes,
		Seed:        *seed,
		CSVDir:      *csvDir,
		Parallelism: *parallel,
		Metrics:     *metrics,
	}

	experiments := map[string]func(bench.Config) error{
		"table3":      bench.Table3,
		"table4":      bench.Table4,
		"table5":      bench.Table5,
		"table6":      bench.Table6,
		"table7":      bench.Table7,
		"fig6":        bench.Fig6,
		"fig7":        bench.Fig7,
		"fig8":        bench.Fig8,
		"fig7and8":    bench.Fig7And8,
		"ablation":    bench.Ablation,
		"costcheck":   bench.CostModelCheck,
		"qerror":      bench.QError,
		"engine":      func(cfg bench.Config) error { return bench.EngineBench(cfg, *engineJSON) },
		"plancache":   func(cfg bench.Config) error { return bench.PlanCacheBench(cfg, *pcJSON) },
		"obsoverhead": func(cfg bench.Config) error { return bench.ObsOverheadBench(cfg, *obsJSON) },
		"overload":    func(cfg bench.Config) error { return bench.OverloadBench(cfg, *overloadJSON) },
		"factorized":  func(cfg bench.Config) error { return bench.FactorizedBench(cfg, *factJSON) },
		"adaptive":    func(cfg bench.Config) error { return bench.AdaptiveBench(cfg, *adaptJSON) },
		"ingest":      func(cfg bench.Config) error { return bench.IngestBench(cfg, *ingestJSON) },
		"serving":     func(cfg bench.Config) error { return bench.ServingBench(cfg, *servingJSON) },
		"failover":    func(cfg bench.Config) error { return bench.FailoverBench(cfg, *failJSON) },
	}
	order := []string{"table3", "table4", "table5", "table6", "table7", "fig6", "fig7and8", "ablation", "costcheck", "qerror", "engine", "plancache", "obsoverhead", "overload", "factorized", "adaptive", "ingest", "serving", "failover"}

	run := func(name string) {
		start := time.Now()
		fmt.Printf("=== %s ===\n", name)
		if err := experiments[name](cfg); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v ---\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	if _, ok := experiments[*experiment]; !ok {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
	run(*experiment)
}
