// Command sparqld serves a partitioned RDF dataset over the SPARQL 1.1
// protocol. Responses stream row by row off the library's RunStream
// cursor, so result sets larger than the per-query memory budget are
// served with bounded resident memory.
//
// Usage:
//
//	sparqld -data data.nt [flags]
//	sparqld -demo [flags]            # built-in LUBM dataset
//
//	-addr       listen address (default :8089)
//	-data       N-Triples file to load
//	-demo       generate a LUBM dataset instead of loading -data
//	-universities  with -demo: LUBM scale (default 2)
//	-partition  hash-so | 2f | 2fb | path-bmc | un-1hop (default hash-so)
//	-nodes      simulated cluster size (default 10)
//	-algorithm  default optimization algorithm for requests that do not
//	            send ?algorithm=: td-cmd | td-cmdp | hgr-td-cmd |
//	            td-auto | greedy (default td-auto)
//	-parallelism  optimizer and engine worker goroutines (0 = all cores)
//	-plancache  plan-cache capacity in query fingerprints (0 = disabled)
//	-share      coalesce concurrent identical in-flight reads onto one
//	            execution (duplicate requests replay its broadcast)
//	-max-concurrent / -max-queued  admission control; overflow is
//	            rejected with 503 and a Retry-After hint
//	-mem-budget per-query memory budget in bytes (0 = unlimited);
//	            streamed responses stay within it regardless of result
//	            size, budget trips surface as 507
//	-timeout    default per-request deadline (0 = none)
//	-max-timeout  cap on the client-requested ?timeout= (0 = no cap)
//	-limit      default row limit for requests without ?limit= (0 = none)
//	-max-limit  cap on the client-requested ?limit= (0 = no cap)
//	-slowlog    slow-query threshold feeding /debug/slowlog (0 with
//	            -debug logs every query)
//	-adaptive / -decay-half-life  adaptive repartitioning advisor
//	-failover   node fault domains: per-node health breakers, retries
//	            with backoff, replica failover for dead nodes' scans;
//	            unreplicated dead fragments fail fast as 503 with
//	            Retry-After, /healthz reports per-node breaker state,
//	            and with -adaptive sustained failure triggers recovery
//	            re-replication
//	-debug      expose /debug/slowlog and /debug/trace
//	-materialize  serve through Run instead of RunStream (the A/B
//	            comparator used by the serving benchmark)
//
// Endpoints: /sparql (protocol), /metrics, /healthz, and with -debug
// /debug/slowlog and /debug/trace. SIGINT/SIGTERM drain in-flight
// requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sparqlopt"
	"sparqlopt/internal/httpd"
	"sparqlopt/internal/ntriples"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/workload/lubm"
)

func main() {
	var (
		addr         = flag.String("addr", ":8089", "listen address")
		dataPath     = flag.String("data", "", "N-Triples file")
		demo         = flag.Bool("demo", false, "generate a LUBM dataset instead of loading -data")
		universities = flag.Int("universities", 2, "with -demo: LUBM scale")
		partName     = flag.String("partition", "hash-so", "data partitioning method")
		nodes        = flag.Int("nodes", 10, "simulated cluster size")
		algorithm    = flag.String("algorithm", "td-auto", "default optimization algorithm")
		parallel     = flag.Int("parallelism", 0, "optimizer and engine worker goroutines (0 = all cores)")
		planCache    = flag.Int("plancache", 0, "plan cache capacity in query fingerprints (0 = disabled)")
		share        = flag.Bool("share", false, "coalesce concurrent identical reads onto one execution")
		maxConc      = flag.Int("max-concurrent", 0, "admission control: max concurrently served queries (0 = unlimited)")
		maxQueued    = flag.Int("max-queued", 0, "admission control: max queries queued for a slot")
		memBudget    = flag.Int64("mem-budget", 0, "per-query memory budget in bytes (0 = unlimited)")
		timeout      = flag.Duration("timeout", 0, "default per-request deadline (0 = none)")
		maxTimeout   = flag.Duration("max-timeout", 0, "cap on the client-requested timeout (0 = no cap)")
		limit        = flag.Int64("limit", 0, "default row limit (0 = none)")
		maxLimit     = flag.Int64("max-limit", 0, "cap on the client-requested limit (0 = no cap)")
		slowlog      = flag.Duration("slowlog", 0, "slow-query threshold for /debug/slowlog")
		adaptive     = flag.Bool("adaptive", false, "enable the adaptive repartitioning advisor")
		failover     = flag.Bool("failover", false, "enable node health tracking and replica failover")
		decay        = flag.Int("decay-half-life", 0, "advisor accumulator half-life in observed queries (with -adaptive)")
		debug        = flag.Bool("debug", false, "expose /debug/slowlog and /debug/trace")
		materialize  = flag.Bool("materialize", false, "serve through Run instead of RunStream")
	)
	flag.Parse()
	if err := run(serveConfig{
		addr: *addr, dataPath: *dataPath, demo: *demo, universities: *universities,
		partName: *partName, nodes: *nodes, algorithm: *algorithm,
		parallelism: *parallel, planCache: *planCache, share: *share,
		maxConcurrent: *maxConc, maxQueued: *maxQueued, memBudget: *memBudget,
		timeout: *timeout, maxTimeout: *maxTimeout, limit: *limit, maxLimit: *maxLimit,
		slowlog: *slowlog, adaptive: *adaptive, decayHalfLife: *decay,
		failover: *failover, debug: *debug, materialize: *materialize,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sparqld:", err)
		os.Exit(1)
	}
}

type serveConfig struct {
	addr, dataPath, partName, algorithm string
	demo                                bool
	universities, nodes                 int
	parallelism, planCache              int
	share                               bool
	maxConcurrent, maxQueued            int
	memBudget                           int64
	timeout, maxTimeout                 time.Duration
	limit, maxLimit                     int64
	slowlog                             time.Duration
	adaptive                            bool
	decayHalfLife                       int
	failover                            bool
	debug, materialize                  bool
}

func run(cfg serveConfig) error {
	ds, err := loadDataset(cfg)
	if err != nil {
		return err
	}
	method, err := partition.ByName(cfg.partName)
	if err != nil {
		return err
	}
	algo, ok := sparqlopt.AlgorithmByName(cfg.algorithm)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", cfg.algorithm)
	}

	opts := []sparqlopt.Option{
		sparqlopt.WithMethod(method),
		sparqlopt.WithNodes(cfg.nodes),
		sparqlopt.WithParallelism(cfg.parallelism),
	}
	if cfg.planCache > 0 {
		opts = append(opts, sparqlopt.WithPlanCache(cfg.planCache))
	}
	if cfg.share {
		opts = append(opts, sparqlopt.WithExecutionSharing())
	}
	if cfg.maxConcurrent > 0 {
		opts = append(opts, sparqlopt.WithAdmissionControl(cfg.maxConcurrent, cfg.maxQueued))
	}
	if cfg.memBudget > 0 {
		opts = append(opts, sparqlopt.WithMemoryBudget(cfg.memBudget, 0))
	}
	if cfg.adaptive {
		opts = append(opts, sparqlopt.WithAdaptivePartitioning(sparqlopt.AdaptiveConfig{
			DecayHalfLife: cfg.decayHalfLife,
		}))
	}
	if cfg.failover {
		opts = append(opts, sparqlopt.WithNodeFailover(sparqlopt.NodeFailoverConfig{}))
	}
	// The daemon always carries the metrics registry — /metrics is an
	// endpoint, not an option; the slow-query log feeds /debug/slowlog.
	var obsOpts []sparqlopt.ObsOption
	if cfg.debug || cfg.slowlog > 0 {
		obsOpts = append(obsOpts, sparqlopt.WithSlowQueryLog(256, cfg.slowlog))
	}
	opts = append(opts, sparqlopt.WithObservability(obsOpts...))

	fmt.Printf("partitioning %d triples with %s onto %d nodes...\n", ds.Len(), method.Name(), cfg.nodes)
	sys, err := sparqlopt.Open(ds, opts...)
	if err != nil {
		return err
	}
	defer sys.Close()

	handler := httpd.New(sys, httpd.Config{
		DefaultTimeout:   cfg.timeout,
		MaxTimeout:       cfg.maxTimeout,
		DefaultLimit:     cfg.limit,
		MaxLimit:         cfg.maxLimit,
		DefaultAlgorithm: &algo,
		Debug:            cfg.debug,
		Materialize:      cfg.materialize,
	})
	srv := &http.Server{Addr: cfg.addr, Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("serving SPARQL on %s (algorithm %s, replication factor %.2f)\n",
		cfg.addr, cfg.algorithm, sys.ReplicationFactor())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

func loadDataset(cfg serveConfig) (*rdf.Dataset, error) {
	if cfg.demo {
		fmt.Printf("generating LUBM dataset (%d universities)...\n", cfg.universities)
		return lubm.Generate(lubm.Config{Universities: cfg.universities, Seed: 1, Compact: true}), nil
	}
	if cfg.dataPath == "" {
		return nil, fmt.Errorf("need -data or -demo")
	}
	f, err := os.Open(cfg.dataPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ntriples.Read(f)
}
