// Command sparqlopt optimizes (and optionally executes) a SPARQL query
// over a partitioned RDF dataset, printing the chosen plan, its
// estimated cost and the search-space statistics.
//
// Usage:
//
//	sparqlopt -data data.nt -query query.rq [flags]
//	sparqlopt -demo [flags]                 # built-in LUBM demo
//
//	-data       N-Triples file to load
//	-query      file containing one SELECT query
//	-algorithm  td-cmd | td-cmdp | hgr-td-cmd | td-auto | msc |
//	            dp-bushy | binary-dp   (default td-auto)
//	-partition  hash-so | 2f | 2fb | path-bmc | un-1hop (default hash-so)
//	-nodes      simulated cluster size (default 10)
//	-execute    run the plan on the simulated cluster and print results
//	-explain    with -execute: print the per-operator execution trace
//	-dot        print the plan in Graphviz dot syntax
//	-repl       interactive mode: read ';'-terminated queries from stdin
//	-timeout    optimization cap (default 600s)
//	-parallelism  optimizer and engine worker goroutines (0 = all
//	              cores, 1 = sequential; parallel runs find plans of
//	              identical cost and identical execution results)
//	-plancache  capacity of the serving-path plan cache in query
//	            fingerprints (0 = disabled). Repeated query shapes in
//	            -repl mode are then served from cached plan templates
//	            (identical results, no re-optimization); applies to the
//	            td-* algorithms, baselines always optimize fresh
//	-demo       use a generated LUBM dataset and query L8
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sparqlopt/internal/baseline"
	"sparqlopt/internal/cost"
	"sparqlopt/internal/engine"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plancache"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
	"sparqlopt/internal/workload/lubm"

	"sparqlopt/internal/ntriples"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "N-Triples file")
		queryPath = flag.String("query", "", "SPARQL query file")
		algorithm = flag.String("algorithm", "td-auto", "optimization algorithm")
		partName  = flag.String("partition", "hash-so", "data partitioning method")
		nodes     = flag.Int("nodes", 10, "simulated cluster size")
		execute   = flag.Bool("execute", false, "execute the plan")
		explain   = flag.Bool("explain", false, "with -execute: print the per-operator execution trace")
		dot       = flag.Bool("dot", false, "print the plan in Graphviz dot syntax")
		timeout   = flag.Duration("timeout", 600*time.Second, "optimization cap")
		parallel  = flag.Int("parallelism", 0, "optimizer and engine worker goroutines (0 = all cores, 1 = sequential)")
		planCache = flag.Int("plancache", 0, "serving-path plan cache capacity in query fingerprints (0 = disabled)")
		demo      = flag.Bool("demo", false, "run the built-in LUBM demo")
		repl      = flag.Bool("repl", false, "interactive mode: read queries from stdin (use with -data or -demo)")
	)
	flag.Parse()
	if err := run(runConfig{
		dataPath: *dataPath, queryPath: *queryPath, algorithm: *algorithm,
		partName: *partName, nodes: *nodes, execute: *execute,
		explain: *explain, dot: *dot, timeout: *timeout, demo: *demo,
		repl: *repl, parallelism: *parallel, planCache: *planCache,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sparqlopt:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	dataPath, queryPath, algorithm, partName string
	nodes                                    int
	parallelism                              int
	planCache                                int
	execute, explain, dot, demo, repl        bool
	timeout                                  time.Duration
}

func run(cfg runConfig) error {
	dataPath, queryPath := cfg.dataPath, cfg.queryPath
	algorithm, partName := cfg.algorithm, cfg.partName
	nodes, execute, timeout, demo := cfg.nodes, cfg.execute, cfg.timeout, cfg.demo
	var ds *rdf.Dataset
	var q *sparql.Query
	switch {
	case demo:
		fmt.Println("generating LUBM demo dataset (2 universities)...")
		ds = lubm.Generate(lubm.Config{Universities: 2, Seed: 1, Compact: true})
		q = lubm.Query("L8")
	case cfg.repl && dataPath != "":
		f, err := os.Open(dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err = ntriples.Read(f)
		if err != nil {
			return err
		}
	case dataPath != "" && queryPath != "":
		f, err := os.Open(dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err = ntriples.Read(f)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(queryPath)
		if err != nil {
			return err
		}
		q, err = sparql.Parse(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -data and -query, or -demo, or -repl -data")
	}
	method, err := partition.ByName(partName)
	if err != nil {
		return err
	}
	if cfg.repl {
		return replLoop(ds, method, nodes, cfg.parallelism, cfg.planCache, algorithm, timeout)
	}
	fmt.Printf("dataset: %d triples; query: %d triple patterns\n", ds.Len(), len(q.Patterns))

	views, err := querygraph.Build(q)
	if err != nil {
		return err
	}
	fmt.Printf("query class: %s; join variables: %d; max degree: %d\n",
		views.Join.Classify(), views.Join.NumJoinVars(), views.Join.MaxVarDegree())

	st, err := stats.Collect(ds, q)
	if err != nil {
		return err
	}
	est, err := stats.NewEstimator(q, st)
	if err != nil {
		return err
	}
	in := &opt.Input{Query: q, Views: views, Est: est, Method: method, Params: cost.Default, Parallelism: cfg.parallelism}
	in.Params.Nodes = nodes

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	res, err := optimize(ctx, in, algorithm)
	if err != nil {
		return err
	}
	fmt.Printf("\noptimized with %s in %v\n", algorithm, time.Since(start).Round(time.Microsecond))
	fmt.Printf("search space: %d join operators, %d plans costed, %d subqueries\n",
		res.Counter.CMDs, res.Counter.Plans, res.Counter.Subqueries)
	fmt.Printf("estimated plan cost: %.4g\n\nplan:\n%s", res.Plan.Cost, res.Plan.Format())
	if cfg.dot {
		fmt.Printf("\n%s", res.Plan.DOT())
	}

	if !execute {
		return nil
	}
	fmt.Printf("\npartitioning with %s onto %d nodes...\n", method.Name(), nodes)
	placement, err := method.Partition(ds, nodes)
	if err != nil {
		return err
	}
	fmt.Printf("replication factor: %.2f\n", placement.ReplicationFactor(ds.Len()))
	e := engine.New(ds.Dict, placement)
	e.SetParallelism(cfg.parallelism)
	start = time.Now()
	out, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		return err
	}
	fmt.Printf("executed in %v: %d distinct results (scanned %d, transferred %d, joined %d)\n",
		time.Since(start).Round(time.Microsecond), len(out.Rows),
		out.Metrics.ScannedTriples, out.Metrics.TransferredRows, out.Metrics.JoinedRows)
	if cfg.explain && out.Trace != nil {
		fmt.Printf("\nexecution trace:\n%s", out.Trace.Format())
	}
	limit := len(out.Rows)
	if limit > 10 {
		limit = 10
	}
	for i := 0; i < limit; i++ {
		for j, id := range out.Rows[i] {
			if j > 0 {
				fmt.Print("\t")
			}
			fmt.Print(ds.Dict.Term(id))
		}
		fmt.Println()
	}
	if len(out.Rows) > limit {
		fmt.Printf("... (%d more)\n", len(out.Rows)-limit)
	}
	return nil
}

func optimize(ctx context.Context, in *opt.Input, algorithm string) (*opt.Result, error) {
	switch algorithm {
	case "td-cmd":
		return opt.Optimize(ctx, in, opt.TDCMD)
	case "td-cmdp":
		return opt.Optimize(ctx, in, opt.TDCMDP)
	case "hgr-td-cmd":
		return opt.Optimize(ctx, in, opt.HGRTDCMD)
	case "td-auto":
		return opt.Optimize(ctx, in, opt.TDAuto)
	case "msc":
		return baseline.MSC(ctx, in)
	case "dp-bushy":
		return baseline.DPBushy(ctx, in)
	case "binary-dp":
		return baseline.BinaryDP(ctx, in)
	}
	return nil, fmt.Errorf("unknown algorithm %q", algorithm)
}

// optAlgo maps a CLI algorithm name to the optimizer's enum; baseline
// algorithms (msc, dp-bushy, binary-dp) are not cacheable.
func optAlgo(name string) (opt.Algorithm, bool) {
	switch name {
	case "td-cmd":
		return opt.TDCMD, true
	case "td-cmdp":
		return opt.TDCMDP, true
	case "hgr-td-cmd":
		return opt.HGRTDCMD, true
	case "td-auto":
		return opt.TDAuto, true
	}
	return 0, false
}

// replLoop reads SPARQL queries from stdin (terminated by a line
// containing just ';'), optimizing and executing each against the
// partitioned dataset. With planCache > 0 and a td-* algorithm,
// repeated query shapes are served from cached plan templates.
func replLoop(ds *rdf.Dataset, method partition.Method, nodes, parallelism, planCache int, algorithm string, timeout time.Duration) error {
	fmt.Printf("dataset: %d triples; partitioning with %s onto %d nodes...\n", ds.Len(), method.Name(), nodes)
	placement, err := method.Partition(ds, nodes)
	if err != nil {
		return err
	}
	e := engine.New(ds.Dict, placement)
	e.SetParallelism(parallelism)
	var cache *plancache.Cache
	if _, cacheable := optAlgo(algorithm); cacheable && planCache > 0 {
		cache = plancache.New(planCache)
		fmt.Printf("plan cache: %d fingerprints\n", cache.Capacity())
	}
	fmt.Println("enter a SPARQL query followed by a line containing only ';' (ctrl-D to quit):")
	sc := bufio.NewScanner(os.Stdin)
	var buf strings.Builder
	prompt := func() { fmt.Print("sparql> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) != ";" {
			buf.WriteString(line)
			buf.WriteByte('\n')
			continue
		}
		src := buf.String()
		buf.Reset()
		if strings.TrimSpace(src) == "" {
			prompt()
			continue
		}
		if err := replOne(ds, e, cache, method, nodes, parallelism, algorithm, timeout, src); err != nil {
			fmt.Println("error:", err)
		}
		prompt()
	}
	fmt.Println()
	return sc.Err()
}

func replOne(ds *rdf.Dataset, e *engine.Engine, cache *plancache.Cache, method partition.Method, nodes, parallelism int, algorithm string, timeout time.Duration, src string) error {
	q, err := sparql.Parse(src)
	if err != nil {
		return err
	}
	params := cost.Default
	params.Nodes = nodes
	buildInput := func(q *sparql.Query, st *stats.Stats) (*opt.Input, error) {
		views, err := querygraph.Build(q)
		if err != nil {
			return nil, err
		}
		est, err := stats.NewEstimator(q, st)
		if err != nil {
			return nil, err
		}
		return &opt.Input{Query: q, Views: views, Est: est, Method: method, Params: params, Parallelism: parallelism}, nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	start := time.Now()
	var res *opt.Result
	cacheNote := ""
	if algo, ok := optAlgo(algorithm); ok && cache != nil {
		served, info, err := cache.Optimize(ctx, q, algo, ds.Epoch(),
			func(q *sparql.Query) (*stats.Stats, error) { return stats.Collect(ds, q) },
			func(ctx context.Context, q *sparql.Query, st *stats.Stats) (*opt.Result, error) {
				in, err := buildInput(q, st)
				if err != nil {
					return nil, err
				}
				return opt.Optimize(ctx, in, algo)
			})
		if err != nil {
			return err
		}
		res = served
		if info.Hit {
			cacheNote = ", plan cache hit"
		} else {
			cacheNote = ", plan cached"
		}
	} else {
		st, err := stats.Collect(ds, q)
		if err != nil {
			return err
		}
		in, err := buildInput(q, st)
		if err != nil {
			return err
		}
		res, err = optimize(ctx, in, algorithm)
		if err != nil {
			return err
		}
	}
	optDur := time.Since(start)
	start = time.Now()
	out, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		return err
	}
	fmt.Printf("%d results in %v (optimized in %v%s, cost %.4g, %d rows moved)\n",
		len(out.Rows), time.Since(start).Round(time.Microsecond),
		optDur.Round(time.Microsecond), cacheNote, res.Plan.Cost, out.Metrics.TransferredRows)
	limit := len(out.Rows)
	if limit > 20 {
		limit = 20
	}
	for i := 0; i < limit; i++ {
		for j, id := range out.Rows[i] {
			if j > 0 {
				fmt.Print("\t")
			}
			fmt.Print(ds.Dict.Term(id))
		}
		fmt.Println()
	}
	if len(out.Rows) > limit {
		fmt.Printf("... (%d more)\n", len(out.Rows)-limit)
	}
	return nil
}
