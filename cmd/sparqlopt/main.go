// Command sparqlopt optimizes (and optionally executes) a SPARQL query
// over a partitioned RDF dataset, printing the chosen plan, its
// estimated cost and the search-space statistics.
//
// Usage:
//
//	sparqlopt -data data.nt -query query.rq [flags]
//	sparqlopt -demo [flags]                 # built-in LUBM demo
//
//	-data       N-Triples file to load
//	-query      file containing one SELECT query
//	-algorithm  td-cmd | td-cmdp | hgr-td-cmd | td-auto | greedy |
//	            msc | dp-bushy | binary-dp   (default td-auto)
//	-partition  hash-so | 2f | 2fb | path-bmc | un-1hop (default hash-so)
//	-nodes      simulated cluster size (default 10)
//	-execute    run the plan on the simulated cluster and print results
//	-explain    with -execute: print the per-operator execution trace
//	-dot        print the plan in Graphviz dot syntax
//	-repl       interactive mode: read ';'-terminated queries from stdin
//	-timeout    optimization cap (default 600s)
//	-parallelism  optimizer and engine worker goroutines (0 = all
//	              cores, 1 = sequential; parallel runs find plans of
//	              identical cost and identical execution results)
//	-plancache  capacity of the serving-path plan cache in query
//	            fingerprints (0 = disabled). Repeated query shapes in
//	            -repl mode are then served from cached plan templates
//	            (identical results, no re-optimization); applies to the
//	            td-* algorithms, baselines always optimize fresh
//	-trace      print the query-lifecycle trace tree after each query
//	-metrics    dump the Prometheus metrics exposition on exit
//	-slowlog    slow-query threshold; queries at or over it (and all
//	            failures) are printed from the slow-query log on exit
//	            (0 = disabled)
//	-max-concurrent  admission control: at most this many queries are
//	            served at once; excess queries queue (see -max-queued)
//	            and overflow is rejected with a typed overload error
//	            carrying a retry-after hint (0 = unlimited)
//	-max-queued with -max-concurrent: how many queries may wait for a
//	            serving slot before rejections start (default 0)
//	-limit      with -execute: stop each query after this many result
//	            rows (0 = unlimited); the same option every serving
//	            surface accepts (sparqld and the HTTP ?limit= parameter)
//	-mem-budget per-query budget in bytes for materialized relations
//	            and optimizer memo state; queries that would exceed it
//	            degrade to cheaper plans or fail with a typed budget
//	            error instead of exhausting the process (0 = unlimited)
//	-adaptive   enable the adaptive repartitioning advisor: repeated
//	            repartition-heavy query shapes (best seen in -repl
//	            mode with -plancache) trigger background migrations
//	            that co-locate the hot triple groups; advisor counters
//	            print on exit. Applies to the td-* algorithms
//	-decay-half-life  with -adaptive: halve each group's accumulated
//	            shuffle weight every N observed queries, so migrations
//	            track the current workload and cold groups expire
//	            (0 = accumulate forever)
//	-demo       use a generated LUBM dataset and query L8
//
// The observability flags (-trace, -metrics, -slowlog) route through
// the library's serving path and therefore apply to the td-*
// algorithms; the baseline optimizers run outside it.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sparqlopt"
	"sparqlopt/internal/baseline"
	"sparqlopt/internal/cost"
	"sparqlopt/internal/engine"
	"sparqlopt/internal/ntriples"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
	"sparqlopt/internal/workload/lubm"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "N-Triples file")
		queryPath = flag.String("query", "", "SPARQL query file")
		algorithm = flag.String("algorithm", "td-auto", "optimization algorithm")
		partName  = flag.String("partition", "hash-so", "data partitioning method")
		nodes     = flag.Int("nodes", 10, "simulated cluster size")
		execute   = flag.Bool("execute", false, "execute the plan")
		explain   = flag.Bool("explain", false, "with -execute: print the per-operator execution trace")
		dot       = flag.Bool("dot", false, "print the plan in Graphviz dot syntax")
		timeout   = flag.Duration("timeout", 600*time.Second, "optimization cap")
		parallel  = flag.Int("parallelism", 0, "optimizer and engine worker goroutines (0 = all cores, 1 = sequential)")
		planCache = flag.Int("plancache", 0, "serving-path plan cache capacity in query fingerprints (0 = disabled)")
		trace     = flag.Bool("trace", false, "print the query-lifecycle trace tree after each query")
		metrics   = flag.Bool("metrics", false, "dump the Prometheus metrics exposition on exit")
		slowlog   = flag.Duration("slowlog", 0, "slow-query threshold for the slow-query log (0 = disabled)")
		demo      = flag.Bool("demo", false, "run the built-in LUBM demo")
		repl      = flag.Bool("repl", false, "interactive mode: read queries from stdin (use with -data or -demo)")
		maxConc   = flag.Int("max-concurrent", 0, "admission control: max concurrently served queries (0 = unlimited)")
		maxQueued = flag.Int("max-queued", 0, "admission control: max queries queued for a slot (with -max-concurrent)")
		memBudget = flag.Int64("mem-budget", 0, "per-query memory budget in bytes for materialized state (0 = unlimited)")
		limit     = flag.Int64("limit", 0, "with -execute: stop each query after this many result rows (0 = unlimited)")
		adaptive  = flag.Bool("adaptive", false, "enable the adaptive repartitioning advisor (migrates hot triple groups as the workload repeats; advisor stats print on exit)")
		decay     = flag.Int("decay-half-life", 0, "advisor accumulator half-life in observed queries: shuffle weights halve every N queries and cold groups expire (0 = no decay; with -adaptive)")
	)
	flag.Parse()
	if err := run(runConfig{
		dataPath: *dataPath, queryPath: *queryPath, algorithm: *algorithm,
		partName: *partName, nodes: *nodes, execute: *execute,
		explain: *explain, dot: *dot, timeout: *timeout, demo: *demo,
		repl: *repl, parallelism: *parallel, planCache: *planCache,
		trace: *trace, metrics: *metrics, slowlog: *slowlog,
		maxConcurrent: *maxConc, maxQueued: *maxQueued, memBudget: *memBudget,
		limit: *limit, adaptive: *adaptive, decayHalfLife: *decay,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sparqlopt:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	dataPath, queryPath, algorithm, partName string
	nodes                                    int
	parallelism                              int
	planCache                                int
	execute, explain, dot, demo, repl        bool
	trace, metrics                           bool
	slowlog                                  time.Duration
	timeout                                  time.Duration
	maxConcurrent, maxQueued                 int
	memBudget                                int64
	limit                                    int64
	adaptive                                 bool
	decayHalfLife                            int
}

// observing reports whether any observability flag is set.
func (cfg runConfig) observing() bool {
	return cfg.trace || cfg.metrics || cfg.slowlog > 0
}

func run(cfg runConfig) error {
	dataPath, queryPath := cfg.dataPath, cfg.queryPath
	algorithm, partName := cfg.algorithm, cfg.partName
	demo := cfg.demo
	var ds *rdf.Dataset
	var q *sparql.Query
	switch {
	case demo:
		fmt.Println("generating LUBM demo dataset (2 universities)...")
		ds = lubm.Generate(lubm.Config{Universities: 2, Seed: 1, Compact: true})
		q = lubm.Query("L8")
	case cfg.repl && dataPath != "":
		f, err := os.Open(dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err = ntriples.Read(f)
		if err != nil {
			return err
		}
	case dataPath != "" && queryPath != "":
		f, err := os.Open(dataPath)
		if err != nil {
			return err
		}
		defer f.Close()
		ds, err = ntriples.Read(f)
		if err != nil {
			return err
		}
		src, err := os.ReadFile(queryPath)
		if err != nil {
			return err
		}
		q, err = sparql.Parse(string(src))
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -data and -query, or -demo, or -repl -data")
	}
	method, err := partition.ByName(partName)
	if err != nil {
		return err
	}
	algo, served := optAlgo(algorithm)
	if cfg.observing() && !served {
		fmt.Fprintf(os.Stderr, "note: -trace/-metrics/-slowlog apply to the td-* algorithms, not %q\n", algorithm)
	}
	if cfg.repl {
		return replLoop(cfg, ds, method, algo, served)
	}
	fmt.Printf("dataset: %d triples; query: %d triple patterns\n", ds.Len(), len(q.Patterns))
	views, err := querygraph.Build(q)
	if err != nil {
		return err
	}
	fmt.Printf("query class: %s; join variables: %d; max degree: %d\n",
		views.Join.Classify(), views.Join.NumJoinVars(), views.Join.MaxVarDegree())
	if served {
		return runServed(cfg, ds, method, algo, q)
	}
	return runBaseline(cfg, ds, method, q)
}

// runServed routes one query through the library's serving path, which
// carries the observability layer (metrics, trace, slow-query log).
func runServed(cfg runConfig, ds *rdf.Dataset, method partition.Method, algo opt.Algorithm, q *sparql.Query) error {
	sys, err := openSystem(cfg, ds, method)
	if err != nil {
		return err
	}
	runOpts, printTrace := callOptions(cfg, algo)
	ctx := context.Background()
	start := time.Now()
	if !cfg.execute {
		res, err := sys.OptimizeQuery(ctx, q, runOpts...)
		if err != nil {
			return err
		}
		fmt.Printf("\noptimized in %v: %s\n\nplan:\n%s", time.Since(start).Round(time.Microsecond), res, res.Plan.Format())
		if cfg.dot {
			fmt.Printf("\n%s", res.Plan.DOT())
		}
		printTrace()
		return finishObserved(cfg, sys)
	}
	fmt.Printf("partitioning with %s onto %d nodes (replication factor %.2f)...\n",
		method.Name(), cfg.nodes, sys.ReplicationFactor())
	out, err := sys.RunQuery(ctx, q, runOpts...)
	if err != nil {
		printTrace()
		finishObserved(cfg, sys)
		return err
	}
	fmt.Printf("\n%v: %s\n", time.Since(start).Round(time.Microsecond), out)
	fmt.Printf("\nplan:\n%s", out.Opt.Plan.Format())
	if cfg.dot {
		fmt.Printf("\n%s", out.Opt.Plan.DOT())
	}
	if cfg.explain && out.Trace != nil {
		fmt.Printf("\nexecution trace:\n%s", out.Trace.Format())
	}
	printRows(ds, out.Rows, 10)
	printTrace()
	return finishObserved(cfg, sys)
}

// openSystem builds the serving-path System for the td-* algorithms.
func openSystem(cfg runConfig, ds *rdf.Dataset, method partition.Method) (*sparqlopt.System, error) {
	opts := []sparqlopt.Option{
		sparqlopt.WithMethod(method),
		sparqlopt.WithNodes(cfg.nodes),
		sparqlopt.WithParallelism(cfg.parallelism),
	}
	if cfg.planCache > 0 {
		opts = append(opts, sparqlopt.WithPlanCache(cfg.planCache))
	}
	if cfg.maxConcurrent > 0 {
		opts = append(opts, sparqlopt.WithAdmissionControl(cfg.maxConcurrent, cfg.maxQueued))
	}
	if cfg.memBudget > 0 {
		opts = append(opts, sparqlopt.WithMemoryBudget(cfg.memBudget, 0))
	}
	if cfg.adaptive {
		opts = append(opts, sparqlopt.WithAdaptivePartitioning(sparqlopt.AdaptiveConfig{
			DecayHalfLife: cfg.decayHalfLife,
		}))
	}
	if cfg.metrics || cfg.slowlog > 0 {
		var obsOpts []sparqlopt.ObsOption
		if cfg.slowlog > 0 {
			obsOpts = append(obsOpts, sparqlopt.WithSlowQueryLog(64, cfg.slowlog))
		}
		opts = append(opts, sparqlopt.WithObservability(obsOpts...))
	}
	return sparqlopt.Open(ds, opts...)
}

// callOptions assembles the per-call RunOptions; the returned func
// prints the trace collected by the most recent call (a no-op without
// -trace).
func callOptions(cfg runConfig, algo opt.Algorithm) ([]sparqlopt.RunOption, func()) {
	runOpts := []sparqlopt.RunOption{
		sparqlopt.WithAlgorithm(algo),
		sparqlopt.WithDeadline(cfg.timeout),
	}
	if cfg.limit > 0 {
		runOpts = append(runOpts, sparqlopt.WithLimit(cfg.limit))
	}
	var last *sparqlopt.Trace
	if cfg.trace {
		runOpts = append(runOpts, sparqlopt.WithTraceSink(func(t *sparqlopt.Trace) { last = t }))
	}
	return runOpts, func() {
		if last != nil {
			fmt.Printf("\n%s", last.Format())
			last = nil
		}
	}
}

// finishObserved dumps the exit-time observability artifacts.
func finishObserved(cfg runConfig, sys *sparqlopt.System) error {
	if cfg.adaptive {
		sys.WaitForMigrations()
		st := sys.AdvisorStats()
		fmt.Printf("\nadaptive advisor: %d queries observed, %d groups tracked, %d migrations (%d triples, %d groups aligned), replication factor %.2f\n",
			st.ObservedQueries, st.TrackedGroups, st.Migrations, st.MigratedTriples, st.AlignedGroups, sys.ReplicationFactor())
		if st.DecayHalfLife > 0 {
			fmt.Printf("adaptive decay: half-life %d queries, %d cold groups expired\n",
				st.DecayHalfLife, st.ExpiredGroups)
		}
	}
	if cfg.slowlog > 0 {
		entries := sys.SlowQueries()
		fmt.Printf("\nslow-query log (%d entries at/over %v):\n", len(entries), cfg.slowlog)
		for _, e := range entries {
			fmt.Println(" ", e)
		}
	}
	if cfg.metrics {
		fmt.Println("\nmetrics:")
		return sys.WriteMetrics(os.Stdout)
	}
	return nil
}

// runBaseline optimizes with one of the baseline algorithms (outside
// the serving path) and optionally executes the plan directly.
func runBaseline(cfg runConfig, ds *rdf.Dataset, method partition.Method, q *sparql.Query) error {
	st, err := stats.Collect(ds, q)
	if err != nil {
		return err
	}
	views, err := querygraph.Build(q)
	if err != nil {
		return err
	}
	est, err := stats.NewEstimator(q, st)
	if err != nil {
		return err
	}
	in := &opt.Input{Query: q, Views: views, Est: est, Method: method, Params: cost.Default, Parallelism: cfg.parallelism}
	in.Params.Nodes = cfg.nodes

	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	start := time.Now()
	res, err := optimize(ctx, in, cfg.algorithm)
	if err != nil {
		return err
	}
	fmt.Printf("\noptimized with %s in %v: %s\n\nplan:\n%s",
		cfg.algorithm, time.Since(start).Round(time.Microsecond), res, res.Plan.Format())
	if cfg.dot {
		fmt.Printf("\n%s", res.Plan.DOT())
	}
	if !cfg.execute {
		return nil
	}
	fmt.Printf("\npartitioning with %s onto %d nodes...\n", method.Name(), cfg.nodes)
	placement, err := method.Partition(ds, cfg.nodes)
	if err != nil {
		return err
	}
	fmt.Printf("replication factor: %.2f\n", placement.ReplicationFactor(ds.Len()))
	e := engine.New(ds.Dict, placement)
	e.SetParallelism(cfg.parallelism)
	start = time.Now()
	out, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		return err
	}
	fmt.Printf("executed in %v: %s\n", time.Since(start).Round(time.Microsecond), out)
	if cfg.explain && out.Trace != nil {
		fmt.Printf("\nexecution trace:\n%s", out.Trace.Format())
	}
	printRows(ds, out.Rows, 10)
	return nil
}

func printRows(ds *rdf.Dataset, rows [][]rdf.TermID, limit int) {
	if limit > len(rows) {
		limit = len(rows)
	}
	for i := 0; i < limit; i++ {
		for j, id := range rows[i] {
			if j > 0 {
				fmt.Print("\t")
			}
			fmt.Print(ds.Dict.Term(id))
		}
		fmt.Println()
	}
	if len(rows) > limit {
		fmt.Printf("... (%d more)\n", len(rows)-limit)
	}
}

func optimize(ctx context.Context, in *opt.Input, algorithm string) (*opt.Result, error) {
	switch algorithm {
	case "msc":
		return baseline.MSC(ctx, in)
	case "dp-bushy":
		return baseline.DPBushy(ctx, in)
	case "binary-dp":
		return baseline.BinaryDP(ctx, in)
	}
	if algo, ok := optAlgo(algorithm); ok {
		return opt.Optimize(ctx, in, algo)
	}
	return nil, fmt.Errorf("unknown algorithm %q", algorithm)
}

// optAlgo maps a CLI algorithm name to the optimizer's enum; baseline
// algorithms (msc, dp-bushy, binary-dp) run outside the serving path.
// The served names are the library's — identical across this CLI,
// sparqld and the HTTP endpoint.
func optAlgo(name string) (opt.Algorithm, bool) {
	return sparqlopt.AlgorithmByName(name)
}

// replLoop reads SPARQL queries from stdin (terminated by a line
// containing just ';'), optimizing and executing each against the
// partitioned dataset. The td-* algorithms serve through the library's
// System (plan cache, metrics, traces, slow-query log); baselines
// optimize and execute directly.
func replLoop(cfg runConfig, ds *rdf.Dataset, method partition.Method, algo opt.Algorithm, served bool) error {
	fmt.Printf("dataset: %d triples; partitioning with %s onto %d nodes...\n", ds.Len(), method.Name(), cfg.nodes)
	var (
		sys        *sparqlopt.System
		runOpts    []sparqlopt.RunOption
		printTrace func()
		e          *engine.Engine
		err        error
	)
	if served {
		sys, err = openSystem(cfg, ds, method)
		if err != nil {
			return err
		}
		runOpts, printTrace = callOptions(cfg, algo)
		if cfg.planCache > 0 {
			fmt.Printf("plan cache: %d fingerprints\n", cfg.planCache)
		}
	} else {
		placement, err := method.Partition(ds, cfg.nodes)
		if err != nil {
			return err
		}
		e = engine.New(ds.Dict, placement)
		e.SetParallelism(cfg.parallelism)
	}
	fmt.Println("enter a SPARQL query followed by a line containing only ';' (ctrl-D to quit):")
	sc := bufio.NewScanner(os.Stdin)
	var buf strings.Builder
	prompt := func() { fmt.Print("sparql> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) != ";" {
			buf.WriteString(line)
			buf.WriteByte('\n')
			continue
		}
		src := buf.String()
		buf.Reset()
		if strings.TrimSpace(src) == "" {
			prompt()
			continue
		}
		if served {
			err = replServed(ds, sys, src, runOpts, printTrace)
		} else {
			err = replBaseline(cfg, ds, e, method, src)
		}
		if err != nil {
			fmt.Println("error:", err)
		}
		prompt()
	}
	fmt.Println()
	if served {
		if err := finishObserved(cfg, sys); err != nil {
			return err
		}
	}
	return sc.Err()
}

func replServed(ds *rdf.Dataset, sys *sparqlopt.System, src string, runOpts []sparqlopt.RunOption, printTrace func()) error {
	start := time.Now()
	out, err := sys.Run(context.Background(), src, runOpts...)
	if err != nil {
		printTrace()
		return err
	}
	fmt.Printf("%v: %s (%s)\n", time.Since(start).Round(time.Microsecond), out, out.Opt)
	printRows(ds, out.Rows, 20)
	printTrace()
	return nil
}

func replBaseline(cfg runConfig, ds *rdf.Dataset, e *engine.Engine, method partition.Method, src string) error {
	q, err := sparql.Parse(src)
	if err != nil {
		return err
	}
	st, err := stats.Collect(ds, q)
	if err != nil {
		return err
	}
	views, err := querygraph.Build(q)
	if err != nil {
		return err
	}
	est, err := stats.NewEstimator(q, st)
	if err != nil {
		return err
	}
	params := cost.Default
	params.Nodes = cfg.nodes
	in := &opt.Input{Query: q, Views: views, Est: est, Method: method, Params: params, Parallelism: cfg.parallelism}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()
	start := time.Now()
	res, err := optimize(ctx, in, cfg.algorithm)
	if err != nil {
		return err
	}
	optDur := time.Since(start)
	start = time.Now()
	out, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		return err
	}
	fmt.Printf("%v: %s (optimized in %v: %s)\n",
		time.Since(start).Round(time.Microsecond), out, optDur.Round(time.Microsecond), res)
	printRows(ds, out.Rows, 20)
	return nil
}
