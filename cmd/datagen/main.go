// Command datagen generates the benchmark datasets (LUBM-style
// universities or UniProt-style protein graphs) as N-Triples, plus the
// benchmark query files, so they can be used with cmd/sparqlopt or any
// other RDF tooling.
//
// Usage:
//
//	datagen -workload lubm -scale 7 -out lubm.nt [-queries querydir]
//	datagen -workload uniprot -scale 3000 -out uniprot.nt
//
//	-workload  lubm | uniprot
//	-scale     universities (lubm) or proteins (uniprot)
//	-seed      generator seed (default 1)
//	-out       output N-Triples file ("-" = stdout)
//	-queries   also write the workload's benchmark queries (L1–L10 or
//	           U1–U5) as .rq files into this directory
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"sparqlopt/internal/ntriples"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/workload/lubm"
	"sparqlopt/internal/workload/uniprot"
)

func main() {
	var (
		workload = flag.String("workload", "lubm", "lubm | uniprot")
		scale    = flag.Int("scale", 0, "universities (lubm) / proteins (uniprot); 0 = default")
		seed     = flag.Int64("seed", 1, "generator seed")
		out      = flag.String("out", "-", "output file (- = stdout)")
		queries  = flag.String("queries", "", "directory for the benchmark .rq files")
	)
	flag.Parse()
	if err := run(*workload, *scale, *seed, *out, *queries); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(workload string, scale int, seed int64, out, queries string) error {
	var ds *rdf.Dataset
	var names []string
	var text func(string) string
	switch workload {
	case "lubm":
		cfg := lubm.DefaultConfig()
		cfg.Seed = seed
		if scale > 0 {
			cfg.Universities = scale
		}
		ds = lubm.Generate(cfg)
		names, text = lubm.QueryNames, lubm.QueryText
	case "uniprot":
		cfg := uniprot.DefaultConfig()
		cfg.Seed = seed
		if scale > 0 {
			cfg.Proteins = scale
		}
		ds = uniprot.Generate(cfg)
		names, text = uniprot.QueryNames, uniprot.QueryText
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
	fmt.Fprintf(os.Stderr, "generated %d triples\n", ds.Len())

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		bw := bufio.NewWriter(f)
		defer bw.Flush()
		w = bw
	}
	if err := ntriples.Write(w, ds); err != nil {
		return err
	}
	if queries == "" {
		return nil
	}
	if err := os.MkdirAll(queries, 0o755); err != nil {
		return err
	}
	for _, name := range names {
		path := filepath.Join(queries, name+".rq")
		if err := os.WriteFile(path, []byte(text(name)), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d query files to %s\n", len(names), queries)
	return nil
}
