package sparqlopt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"sparqlopt/internal/partition"
)

// failoverDataset is a small social graph with two self-loop triples
// (subject == object). Under hash-so a self-loop gets exactly one copy
// (both placement hashes collapse), so at every cluster size some node
// holds unreplicated triples — the uncovered fault domain the typed
// UnavailableError path needs — while the regular edges are replicated
// and exercise the covered failover path.
func failoverDataset() *Dataset {
	ds := NewDataset()
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("http://p%d", i)
		ds.Add(p, "http://knows", fmt.Sprintf("http://p%d", (i+1)%10))
		ds.Add(p, "http://worksFor", fmt.Sprintf("http://org%d", i%3))
	}
	for i := 0; i < 3; i++ {
		ds.Add(fmt.Sprintf("http://org%d", i), "http://inCity", fmt.Sprintf("http://city%d", i%2))
	}
	ds.Add("http://loop0", "http://knows", "http://loop0")
	ds.Add("http://loop1", "http://worksFor", "http://loop1")
	return ds
}

var failoverQueries = []string{
	`SELECT * WHERE { ?x <http://knows> ?y . }`,
	`SELECT ?x ?o WHERE { ?x <http://knows> ?y . ?y <http://worksFor> ?o . }`,
	`SELECT * WHERE { ?x <http://worksFor> ?o . ?o <http://inCity> ?c . }`,
	`SELECT * WHERE { ?x <http://knows> ?y . ?x <http://worksFor> ?o . ?o <http://inCity> ?c . }`,
}

// nodeCovered reports whether every triple of the node's fragment has
// a live copy on some other node — the condition under which killing
// the node must be invisible to query results.
func nodeCovered(pl *partition.Placement, node int) bool {
	for _, tr := range pl.Triples[node] {
		ok := false
		for j := 0; j < pl.Nodes; j++ {
			if j != node && pl.HasTriple(j, tr) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// failoverBreakerOff keeps every breaker closed for the whole test so
// runs against different dead nodes cannot contaminate each other
// through shared breaker state; the retry-exhaustion path alone
// declares nodes dead. Breaker behavior itself is covered by the
// health package tests and TestChaosFailover.
var failoverBreakerOff = NodeFailoverConfig{
	MaxAttempts:        2,
	RetryBase:          time.Microsecond,
	RetryCap:           10 * time.Microsecond,
	BreakerConsecutive: 1 << 30,
	BreakerMinSamples:  1 << 30,
}

// TestFailoverProperty is the deterministic failover property sweep:
// for every partitioning method and cluster size, killing any single
// node (its scan and shuffle sites fail on every hit) must either
// leave every query's rows bit-identical to the healthy run — required
// whenever the node's fragment is fully covered by replicas — or fail
// fast with a typed UnavailableError naming the node. A silent partial
// result, hang or panic anywhere fails the test.
func TestFailoverProperty(t *testing.T) {
	seed := chaosSeed(t)
	ds := failoverDataset()
	var sawUnavailable, sawFailover bool
	for _, methodName := range []string{"hash-so", "2f", "2fb", "path-bmc", "un-1hop"} {
		for _, nodes := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/P%d", methodName, nodes), func(t *testing.T) {
				m, err := PartitionMethod(methodName)
				if err != nil {
					t.Fatal(err)
				}
				sys, err := Open(ds, WithMethod(m), WithNodes(nodes),
					WithParallelism(2), WithNodeFailover(failoverBreakerOff))
				if err != nil {
					t.Fatal(err)
				}
				pl := sys.currentPlacement()
				covered := make([]bool, nodes)
				for i := range covered {
					covered[i] = nodeCovered(pl, i)
				}
				for qi, src := range failoverQueries {
					ref, err := sys.Run(context.Background(), src)
					if err != nil {
						t.Fatalf("healthy run of %q: %v", src, err)
					}
					for node := 0; node < nodes; node++ {
						id := fmt.Sprintf("q%d/node%d(covered=%v)", qi, node, covered[node])
						faults := NewFaultSet(seed + int64(qi*1000+node))
						faults.Arm(FaultNodeScan(node), 1)
						faults.Arm(FaultNodeShuffle(node), 1)
						res, err := sys.Run(context.Background(), src, WithFaultInjection(faults))
						if err != nil {
							var ue *UnavailableError
							if !errors.As(err, &ue) {
								t.Errorf("%s: err = %v (%T), want *UnavailableError", id, err, err)
								continue
							}
							if covered[node] {
								t.Errorf("%s: fully covered node failed the query: %v", id, err)
							}
							if !errors.Is(err, ErrUnavailable) {
								t.Errorf("%s: error does not match ErrUnavailable", id)
							}
							found := false
							for _, n := range ue.Nodes {
								if n == node {
									found = true
								}
							}
							if !found {
								t.Errorf("%s: UnavailableError.Nodes = %v does not name node %d", id, ue.Nodes, node)
							}
							if ue.Op == "" || ue.Missing <= 0 {
								t.Errorf("%s: UnavailableError missing detail: %+v", id, ue)
							}
							sawUnavailable = true
							continue
						}
						// Success: a degraded run must still be bit-identical
						// to the healthy one — never a silent partial result.
						if !chaosRowsEqual(res.Rows, ref.Rows) {
							t.Errorf("%s: failed-over rows diverged from the healthy run", id)
						}
						if res.Failovers > 0 {
							sawFailover = true
							if len(res.Degraded) == 0 {
								t.Errorf("%s: %d failovers but no Degraded note", id, res.Failovers)
							}
						}
					}
				}
			})
		}
	}
	if !sawUnavailable {
		t.Error("sweep never produced an UnavailableError — uncovered-fragment path untested")
	}
	if !sawFailover {
		t.Error("sweep never recorded a failover — replica-serving path untested")
	}
}

// TestFailoverWithoutPolicyFailsFast pins the no-failover twin's
// failure mode: with node fault sites armed but WithNodeFailover
// absent, the first faulted node operation fails the query immediately
// with the typed error — no retries, no replica serving.
func TestFailoverWithoutPolicyFailsFast(t *testing.T) {
	sys, err := Open(failoverDataset(), WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	faults := NewFaultSet(chaosSeed(t))
	faults.Arm(FaultNodeScan(2), 1)
	_, err = sys.Run(context.Background(), failoverQueries[0], WithFaultInjection(faults))
	var ue *UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v (%T), want *UnavailableError", err, err)
	}
	if len(ue.Nodes) != 1 || ue.Nodes[0] != 2 {
		t.Errorf("Nodes = %v, want [2]", ue.Nodes)
	}
	if ue.Op != "scan" {
		t.Errorf("Op = %q, want scan", ue.Op)
	}
}

// TestFailoverRecoveryReplicates drives the full degraded-placement
// loop: a dead node strands its unreplicated triples, the first query
// that needs them fails with UnavailableError, the failure triggers a
// synchronous recovery round that re-replicates the stranded triples
// onto healthy nodes, and the same query then succeeds via failover
// with rows bit-identical to the healthy run — while the node is still
// down.
func TestFailoverRecoveryReplicates(t *testing.T) {
	ds := failoverDataset()
	sys, err := Open(ds, WithNodes(4),
		WithNodeFailover(failoverBreakerOff),
		WithAdaptivePartitioning(AdaptiveConfig{ReplicationBudget: 4, Synchronous: true}),
		WithObservability(WithSlowQueryLog(32, 0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Find a node whose fragment is NOT fully covered (a self-loop
	// landed there under hash-so) and a query that needs its triples.
	pl := sys.currentPlacement()
	dead := -1
	for i := 0; i < pl.Nodes; i++ {
		if !nodeCovered(pl, i) {
			dead = i
			break
		}
	}
	if dead < 0 {
		t.Fatal("no uncovered node under hash-so — dataset needs a self-loop")
	}
	var src string
	var ref [][]TermID
	for _, q := range failoverQueries {
		res, err := sys.Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		faults := NewFaultSet(chaosSeed(t))
		faults.Arm(FaultNodeScan(dead), 1)
		if _, err := sys.Run(context.Background(), q, WithFaultInjection(faults)); errors.Is(err, ErrUnavailable) {
			src, ref = q, res.Rows
			break
		}
	}
	if src == "" {
		t.Fatal("no query needs the uncovered node's stranded triples")
	}
	// The failing run above already triggered a synchronous recovery
	// round. The stranded triples now have live copies, so the same
	// query succeeds by failover with identical rows, node still dead.
	if got := sys.AdvisorStats().RecoveryMigrations; got != 1 {
		t.Fatalf("RecoveryMigrations = %d, want 1", got)
	}
	faults := NewFaultSet(chaosSeed(t))
	faults.Arm(FaultNodeScan(dead), 1)
	res, err := sys.Run(context.Background(), src, WithFaultInjection(faults))
	if err != nil {
		t.Fatalf("post-recovery run still fails: %v", err)
	}
	if !chaosRowsEqual(res.Rows, ref) {
		t.Error("post-recovery failover rows diverged from the healthy run")
	}
	if res.Failovers == 0 {
		t.Error("post-recovery run reports no failovers — node should still be dead")
	}
	// The slow-query log kept both the typed failure and the degraded
	// success with its failover count.
	var loggedUnavailable, loggedFailover bool
	for _, e := range sys.SlowQueries() {
		if e.Err != "" {
			loggedUnavailable = true
		}
		if e.Failovers > 0 {
			loggedFailover = true
		}
	}
	if !loggedUnavailable || !loggedFailover {
		t.Errorf("slow log: unavailable=%v failover=%v, want both", loggedUnavailable, loggedFailover)
	}
}

// TestFailoverBreakerRecovers exercises the health lifecycle end to
// end on a served system: sustained scan failures trip node 1's
// breaker open (visible in NodeHealth), later healthy runs probe it
// half-open and close it again, and serving is bit-identical
// throughout.
func TestFailoverBreakerRecovers(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	sys, err := Open(failoverDataset(), WithNodes(2),
		WithNodeFailover(NodeFailoverConfig{
			MaxAttempts:        1,
			BreakerConsecutive: 2,
			OpenFor:            time.Second,
			ProbeSuccesses:     1,
			Clock:              clock,
		}))
	if err != nil {
		t.Fatal(err)
	}
	src := failoverQueries[0]
	ref, err := sys.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	// Hash-so on two nodes: node 1 may hold stranded triples, so the
	// faulted runs may fail Unavailable — the breaker must trip either
	// way, and that is what this test is about.
	faults := NewFaultSet(chaosSeed(t))
	faults.Arm(FaultNodeScan(1), 1)
	for i := 0; i < 3; i++ {
		res, err := sys.Run(context.Background(), src, WithFaultInjection(faults))
		if err == nil && !chaosRowsEqual(res.Rows, ref.Rows) {
			t.Fatalf("faulted run %d: rows diverged", i)
		}
		if err != nil && !errors.Is(err, ErrUnavailable) {
			t.Fatalf("faulted run %d: %v", i, err)
		}
	}
	if st := sys.NodeHealth(); st[1].State != NodeOpen {
		t.Fatalf("node 1 breaker = %v after sustained failures, want open", st[1].State)
	}
	// While open, even un-faulted runs treat node 1 as dead (served
	// from replicas or Unavailable) without paying retries.
	if res, err := sys.Run(context.Background(), src); err == nil {
		if !chaosRowsEqual(res.Rows, ref.Rows) {
			t.Fatal("breaker-open run: rows diverged")
		}
		if res.Failovers == 0 {
			t.Error("breaker-open run did not report failover")
		}
	} else if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("breaker-open run: %v", err)
	}
	// After OpenFor the breaker goes half-open; one clean probe closes
	// it and serving returns to the healthy path.
	now = now.Add(2 * time.Second)
	if _, err := sys.Run(context.Background(), src); err != nil {
		t.Fatalf("probe run: %v", err)
	}
	if st := sys.NodeHealth(); st[1].State != NodeHealthy {
		t.Fatalf("node 1 breaker = %v after clean probe, want healthy", st[1].State)
	}
	res, err := sys.Run(context.Background(), src)
	if err != nil {
		t.Fatalf("recovered run: %v", err)
	}
	if !chaosRowsEqual(res.Rows, ref.Rows) || res.Failovers != 0 {
		t.Errorf("recovered run: rows ok=%v failovers=%d, want identical rows on the healthy path",
			chaosRowsEqual(res.Rows, ref.Rows), res.Failovers)
	}
}

// TestChaosFailover races node-death faults against cached reads and
// recovery migrations: half the fleet kills nodes on every run while
// the clean half must keep reading bit-identical rows through replica
// failover, the advisor re-replicates stranded fragments in the
// background, and the storm must not leak goroutines.
func TestChaosFailover(t *testing.T) {
	seed := chaosSeed(t)
	before := runtime.NumGoroutine()
	sys, err := Open(failoverDataset(),
		WithNodes(4),
		WithParallelism(2),
		WithPlanCache(64),
		WithAdmissionControl(128, 64),
		WithNodeFailover(NodeFailoverConfig{
			MaxAttempts: 2,
			RetryBase:   time.Microsecond,
			OpenFor:     time.Millisecond,
		}),
		WithAdaptivePartitioning(AdaptiveConfig{ReplicationBudget: 4}),
		WithObservability(WithSlowQueryLog(256, 0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	refs := make(map[string][][]TermID, len(failoverQueries))
	for _, src := range failoverQueries {
		res, err := sys.Run(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		refs[src] = res.Rows
	}

	const goroutines = 64
	const iters = 4
	done := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		src := failoverQueries[i%len(failoverQueries)]
		faults := NewFaultSet(seed*1000 + int64(i))
		// Half the fleet kills a rotating node on every operation; the
		// other half serves clean and must never see the difference
		// beyond (bit-identical) failover.
		killing := i%2 == 0
		if killing {
			node := (i / 2) % 4
			faults.Arm(FaultNodeScan(node), 1)
			faults.Arm(FaultNodeShuffle(node), 1)
		}
		go func(id string, src string, faults *FaultSet) {
			var firstErr error
			for it := 0; it < iters; it++ {
				res, err := sys.Run(context.Background(), src, WithFaultInjection(faults))
				if err != nil {
					if !errors.Is(err, ErrUnavailable) {
						firstErr = fmt.Errorf("%s iter %d: %w", id, it, err)
						break
					}
					continue // uncovered fragment: typed fast failure is correct
				}
				if !chaosRowsEqual(res.Rows, refs[src]) {
					firstErr = fmt.Errorf("%s iter %d: rows diverged", id, it)
					break
				}
			}
			done <- firstErr
		}(fmt.Sprintf("g%d(kill=%v)", i, killing), src, faults)
	}
	for i := 0; i < goroutines; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
	sys.WaitForMigrations()

	// Post-storm: un-faulted serving must return to bit-identical rows
	// (breakers may need their probe window to close).
	deadline := time.Now().Add(5 * time.Second)
	for _, src := range failoverQueries {
		for {
			res, err := sys.Run(context.Background(), src)
			if err == nil && chaosRowsEqual(res.Rows, refs[src]) && res.Failovers == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("post-chaos %q did not return to healthy serving: err=%v", src, err)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Goroutine-leak diff: everything the storm spawned must be gone.
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
