package sparqlopt

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"sparqlopt/internal/rdf"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/resilience/faultinject"
)

// chaosSeed derives the run's base seed from CHAOS_SEED so `make
// chaos` can sweep seeds without recompiling. The default reproduces
// the checked-in behavior exactly.
func chaosSeed(tb testing.TB) int64 {
	v := os.Getenv("CHAOS_SEED")
	if v == "" {
		return 1
	}
	seed, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		tb.Fatalf("CHAOS_SEED=%q: %v", v, err)
	}
	return seed
}

// chaosQueries are the serving mix: every goroutine class gets its own
// shape so fault classes never share a plan-cache slot and the clean
// class's assertions stay sharp.
var chaosQueries = []string{
	`SELECT * WHERE { ?x <http://knows> ?y . ?x <http://worksFor> ?o . ?o <http://inCity> ?c . }`,
	`SELECT ?x ?y WHERE { ?x <http://knows> ?y . ?y <http://worksFor> ?o . }`,
	`SELECT * WHERE { ?x <http://worksFor> ?o . ?o <http://inCity> ?c . }`,
}

// chaosClass is one goroutine's behavior in the chaos mix: which fault
// it injects into its own runs and what outcome that entitles it to.
type chaosClass struct {
	name string
	arm  func(*FaultSet)
	// wantErr checks the per-run error (nil-able). wantRows reports
	// whether a successful run must still produce the reference rows.
	wantErr  func(tb testing.TB, id string, err error)
	wantRows bool
	// mayFail permits runs to fail (fault classes that kill the query).
	mayFail bool
	// deadline, when set, bounds each run (the slow-operator class).
	deadline time.Duration
}

func wantNoError(tb testing.TB, id string, err error) {
	if err != nil {
		tb.Errorf("%s: unexpected error %v", id, err)
	}
}

func wantPanicError(tb testing.TB, id string, err error) {
	var pe *resilience.PanicError
	if !errors.As(err, &pe) {
		tb.Errorf("%s: err = %v (%T), want *resilience.PanicError", id, err, err)
		return
	}
	if len(pe.Stack) == 0 {
		tb.Errorf("%s: panic recovered without a stack", id)
	}
	if _, ok := pe.Value.(faultinject.Injected); !ok {
		tb.Errorf("%s: panic value %v (%T), want faultinject.Injected", id, pe.Value, pe.Value)
	}
}

func wantBudgetError(tb testing.TB, id string, err error) {
	if !errors.Is(err, ErrBudgetExceeded) {
		tb.Errorf("%s: err = %v, want ErrBudgetExceeded", id, err)
		return
	}
	var be *resilience.BudgetError
	if !errors.As(err, &be) || be.Site == "" {
		tb.Errorf("%s: budget error %v does not name its site", id, err)
	}
}

func wantDeadlineError(tb testing.TB, id string, err error) {
	if !errors.Is(err, context.DeadlineExceeded) {
		tb.Errorf("%s: err = %v, want context.DeadlineExceeded", id, err)
	}
}

// chaosClasses is the full mix. Fault classes arm their site on every
// hit, so every one of their runs misbehaves; the clean class runs
// un-faulted next to them and must come through bit-identical.
var chaosClasses = []chaosClass{
	{name: "clean", arm: func(*FaultSet) {}, wantErr: wantNoError, wantRows: true},
	{
		name:     "opt-panic",
		arm:      func(f *FaultSet) { f.Arm(FaultOptPanic, 1) },
		wantErr:  wantNoError, // degrades down the ladder to greedy
		wantRows: true,
	},
	{
		name:     "opt-budget",
		arm:      func(f *FaultSet) { f.Arm(FaultOptBudget, 1) },
		wantErr:  wantNoError, // degrades down the ladder to greedy
		wantRows: true,
	},
	{
		name:    "engine-panic",
		arm:     func(f *FaultSet) { f.Arm(FaultEnginePanic, 1) },
		wantErr: wantPanicError,
		mayFail: true,
	},
	{
		name:    "engine-budget",
		arm:     func(f *FaultSet) { f.Arm(FaultEngineBudget, 1) },
		wantErr: wantBudgetError,
		mayFail: true,
	},
	{
		name:     "cache-fault",
		arm:      func(f *FaultSet) { f.Arm(FaultCacheLookup, 1) },
		wantErr:  wantNoError, // degrades to a cache bypass
		wantRows: true,
	},
	{
		name:     "deadline-slow",
		arm:      func(f *FaultSet) { f.ArmDelay(FaultEngineSlow, 1, 5*time.Second) },
		wantErr:  wantDeadlineError,
		mayFail:  true,
		deadline: 30 * time.Millisecond,
	},
}

func chaosRowsEqual(a, b [][]rdf.TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestChaosServing is the deterministic chaos suite: 64 goroutines
// hammer one System while most of them inject faults into their own
// runs. It asserts the blast radius of every fault stays inside the
// query that injected it — clean queries keep returning bit-identical
// rows, failures surface as typed errors, the resilience_* counters
// account for exactly what happened, and the System serves healthy
// queries afterwards as if nothing had.
func TestChaosServing(t *testing.T) {
	seed := chaosSeed(t)
	sys, err := Open(tinyDataset(),
		WithNodes(3),
		WithParallelism(2),
		WithPlanCache(64),
		WithAdmissionControl(64, 64),
		WithMemoryBudget(1<<28, 0),
		WithObservability(WithSlowQueryLog(512, 0)),
	)
	if err != nil {
		t.Fatal(err)
	}

	// Reference rows per query, from un-faulted runs before the storm.
	want := make(map[string][][]rdf.TermID, len(chaosQueries))
	for _, src := range chaosQueries {
		res, err := sys.Run(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Reference(sys.ds, mustParse(t, src))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(ref.Rows) {
			t.Fatalf("pre-chaos run of %q: %d rows, reference %d", src, len(res.Rows), len(ref.Rows))
		}
		want[src] = res.Rows
	}

	reg := sys.MetricsRegistry()
	counter := func(name string) int64 { return reg.Counter(name, "").Value() }
	admittedBefore := counter("resilience_admitted_total")
	degradedBefore := counter("resilience_degraded_total")
	panicsBefore := counter("resilience_panics_recovered_total")

	const goroutines = 64
	const itersPerGoroutine = 4
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		degradedOK int64 // successful runs that took a fallback
		sets       []*FaultSet
	)
	for i := 0; i < goroutines; i++ {
		class := chaosClasses[i%len(chaosClasses)]
		src := chaosQueries[i%len(chaosQueries)]
		faults := NewFaultSet(seed*1000 + int64(i))
		class.arm(faults)
		mu.Lock()
		sets = append(sets, faults)
		mu.Unlock()
		wg.Add(1)
		go func(i int, class chaosClass, src string, faults *FaultSet) {
			defer wg.Done()
			for iter := 0; iter < itersPerGoroutine; iter++ {
				id := fmt.Sprintf("g%d/%s/iter%d", i, class.name, iter)
				opts := []RunOption{WithFaultInjection(faults)}
				if class.deadline > 0 {
					opts = append(opts, WithDeadline(class.deadline))
				}
				res, err := sys.Run(context.Background(), src, opts...)
				if err != nil && !class.mayFail {
					t.Errorf("%s: run failed: %v", id, err)
					continue
				}
				class.wantErr(t, id, err)
				if err != nil {
					continue
				}
				if class.wantRows && !chaosRowsEqual(res.Rows, want[src]) {
					t.Errorf("%s: rows diverged from the un-faulted reference", id)
				}
				if len(res.Degraded) > 0 {
					mu.Lock()
					degradedOK++
					mu.Unlock()
				}
			}
		}(i, class, src, faults)
	}
	wg.Wait()

	// Counter accounting. Every Run was admitted (capacity covers the
	// whole fleet), every fired panic was recovered exactly once, and
	// the degraded counter matches the results that reported a fallback.
	totalRuns := int64(goroutines * itersPerGoroutine)
	if got := counter("resilience_admitted_total") - admittedBefore; got != totalRuns {
		t.Errorf("admitted_total advanced by %d, want %d", got, totalRuns)
	}
	if got := counter("resilience_rejected_total"); got != 0 {
		t.Errorf("rejected_total = %d, want 0 (capacity covers the fleet)", got)
	}
	if got := counter("resilience_degraded_total") - degradedBefore; got != degradedOK {
		t.Errorf("degraded_total advanced by %d, want %d", got, degradedOK)
	}
	var firedPanics int64
	for _, f := range sets {
		firedPanics += f.Fired(FaultOptPanic) + f.Fired(FaultEnginePanic)
	}
	if got := counter("resilience_panics_recovered_total") - panicsBefore; got != firedPanics {
		t.Errorf("panics_recovered_total advanced by %d, want %d (fired panics)", got, firedPanics)
	}
	if firedPanics == 0 {
		t.Error("chaos mix fired no panics — the suite is not exercising panic recovery")
	}

	// The slow-query log survived the storm and kept the typed detail.
	var loggedDegraded, loggedErrors bool
	for _, e := range sys.SlowQueries() {
		if len(e.Degraded) > 0 {
			loggedDegraded = true
		}
		if e.Err != "" {
			loggedErrors = true
		}
	}
	if !loggedDegraded || !loggedErrors {
		t.Errorf("slow-query log: degraded=%v errors=%v, want both recorded", loggedDegraded, loggedErrors)
	}

	// The System is healthy afterwards: un-faulted serving is unchanged.
	for _, src := range chaosQueries {
		res, err := sys.Run(context.Background(), src)
		if err != nil {
			t.Fatalf("post-chaos run of %q: %v", src, err)
		}
		if !chaosRowsEqual(res.Rows, want[src]) {
			t.Errorf("post-chaos run of %q: rows diverged", src)
		}
		if len(res.Degraded) > 0 {
			t.Errorf("post-chaos run of %q degraded: %v", src, res.Degraded)
		}
	}
}

// TestChaosAdmissionRejectsWhenSaturated saturates a capacity-1 system
// with an injected slow query and asserts the overflow is rejected
// fast with the typed error and a retry-after hint — and that the
// system recovers the moment the hog is canceled.
func TestChaosAdmissionRejectsWhenSaturated(t *testing.T) {
	sys, err := Open(tinyDataset(),
		WithNodes(2),
		WithAdmissionControl(1, 0),
		WithObservability(WithSlowQueryLog(16, 0)),
	)
	if err != nil {
		t.Fatal(err)
	}
	src := chaosQueries[0]
	if _, err := sys.Run(context.Background(), src); err != nil {
		t.Fatal(err)
	}

	// The hog: one query stalled by an injected slow operator, holding
	// the only admission slot until we cancel it.
	faults := NewFaultSet(chaosSeed(t))
	faults.ArmDelay(FaultEngineSlow, 1, time.Minute)
	admitted := sys.MetricsRegistry().Counter("resilience_admitted_total", "")
	admittedBefore := admitted.Value()
	hogCtx, cancelHog := context.WithCancel(context.Background())
	defer cancelHog()
	hogDone := make(chan error, 1)
	go func() {
		_, err := sys.Run(hogCtx, src, WithFaultInjection(faults))
		hogDone <- err
	}()

	// Wait for the hog to take the slot before probing — probing
	// earlier could win the slot ourselves and bounce the hog instead.
	deadline := time.Now().Add(10 * time.Second)
	for admitted.Value() == admittedBefore {
		select {
		case err := <-hogDone:
			t.Fatalf("hog exited before stalling: %v", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("hog not admitted within 10s")
		}
		time.Sleep(time.Millisecond)
	}

	// The hog holds the only slot; every probe must bounce with the
	// typed overload error.
	var oe *resilience.OverloadError
	if _, err := sys.Run(context.Background(), src); !errors.As(err, &oe) {
		t.Fatalf("probe returned %v, want *resilience.OverloadError", err)
	}
	if !errors.Is(oe, ErrOverloaded) {
		t.Errorf("overload error does not match ErrOverloaded: %v", oe)
	}
	if oe.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if got := sys.MetricsRegistry().Counter("resilience_rejected_total", "").Value(); got == 0 {
		t.Error("rejected_total = 0 after an observed rejection")
	}
	var loggedRejection bool
	for _, e := range sys.SlowQueries() {
		if e.Rejected {
			loggedRejection = true
			break
		}
	}
	if !loggedRejection {
		t.Error("slow-query log has no entry marked Rejected")
	}

	// Cancel the hog: it fails with its own context error, the slot
	// frees, and clean serving resumes.
	cancelHog()
	if err := <-hogDone; !errors.Is(err, context.Canceled) {
		t.Errorf("hog returned %v, want context.Canceled", err)
	}
	recoverDeadline := time.Now().Add(10 * time.Second)
	for {
		_, err := sys.Run(context.Background(), src)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("post-cancel run failed with %v", err)
		}
		if time.Now().After(recoverDeadline) {
			t.Fatal("system did not recover within 10s of canceling the hog")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosExpiredContextNeverAdmitted: a dead context is turned away
// at the door with its own error, not ErrOverloaded, and is never
// counted as admitted.
func TestChaosExpiredContextNeverAdmitted(t *testing.T) {
	sys, err := Open(tinyDataset(),
		WithNodes(2),
		WithAdmissionControl(2, 2),
		WithObservability(),
	)
	if err != nil {
		t.Fatal(err)
	}
	counter := sys.MetricsRegistry().Counter("resilience_admitted_total", "")
	before := counter.Value()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sys.Run(ctx, chaosQueries[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrOverloaded) {
		t.Fatalf("dead context surfaced as overload: %v", err)
	}
	if got := counter.Value(); got != before {
		t.Errorf("admitted_total advanced by %d for a dead context", got-before)
	}
}

func mustParse(tb testing.TB, src string) *Query {
	tb.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		tb.Fatal(err)
	}
	return q
}
