// Benchmarks regenerating each table and figure of the paper's
// evaluation. Every BenchmarkTableN / BenchmarkFigN target wraps the
// corresponding experiment runner (internal/bench) in its quick
// configuration; `cmd/benchrunner` runs the same experiments at full
// scale with printed output. Micro-benchmarks at the bottom measure
// the enumeration core itself (the paper's Θ(|V_T|) amortized-cost
// claim).
package sparqlopt_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"sparqlopt"
	"sparqlopt/internal/bench"
	"sparqlopt/internal/bitset"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/race"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
	"sparqlopt/internal/workload/lubm"
	"sparqlopt/internal/workload/randquery"
	"sparqlopt/internal/workload/watdiv"
)

// mustEstimator mirrors the in-package test helper; this file lives in
// the external test package so internal/bench (which imports the root
// package) stays importable without a cycle.
func mustEstimator(tb testing.TB, q *sparql.Query, s *stats.Stats) *stats.Estimator {
	tb.Helper()
	est, err := stats.NewEstimator(q, s)
	if err != nil {
		tb.Fatal(err)
	}
	return est
}

func quickBenchConfig() bench.Config {
	return bench.Config{Out: io.Discard, Quick: true, Timeout: 2 * time.Second, Nodes: 4, Seed: 1}
}

// BenchmarkTable4_OptimizationTime regenerates paper Table IV.
func BenchmarkTable4_OptimizationTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table4(quickBenchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5_ProcessingTime regenerates paper Table V.
func BenchmarkTable5_ProcessingTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table5(quickBenchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6_PlanCost regenerates paper Table VI.
func BenchmarkTable6_PlanCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Table6(quickBenchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7_SearchSpace regenerates paper Table VII.
func BenchmarkTable7_SearchSpace(b *testing.B) {
	cfg := quickBenchConfig()
	cfg.Timeout = 500 * time.Millisecond // N/A the exploding cells fast
	for i := 0; i < b.N; i++ {
		if err := bench.Table7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6a_WatDivOptTime regenerates paper Fig. 6 (both panels).
func BenchmarkFig6a_WatDivOptTime(b *testing.B) {
	cfg := quickBenchConfig()
	cfg.Timeout = 500 * time.Millisecond
	for i := 0; i < b.N; i++ {
		if err := bench.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7_OptTimeBySize regenerates paper Figs. 7 and 8 in one
// measurement pass. The full sweep's largest join graphs take minutes
// under the race detector's instrumentation, so -race runs skip it.
func BenchmarkFig7_OptTimeBySize(b *testing.B) {
	if race.Enabled {
		b.Skip("skipping the huge Fig. 7 join-graph sizes under -race")
	}
	cfg := quickBenchConfig()
	cfg.Timeout = 500 * time.Millisecond
	for i := 0; i < b.N; i++ {
		if err := bench.Fig7And8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeParallel measures the parallel enumerator's
// speedup over the sequential path on the largest WatDiv/Fig.7-style
// join graphs, sweeping the parallelism knob. Compare ns/op across
// P=1/P=4 sub-benchmarks for the speedup; allocs/op tracks the hot
// path's allocation diet.
func BenchmarkOptimizeParallel(b *testing.B) {
	shapes := []struct {
		name  string
		class querygraph.Class
		n     int
	}{
		{"tree24", querygraph.Tree, 24},
		{"dense13", querygraph.Dense, 13},
		{"cycle24", querygraph.Cycle, 24},
	}
	if race.Enabled {
		// The instrumented build is ~10× slower; keep the shape mix but
		// shrink the graphs so -race benchmark runs stay bounded.
		shapes = []struct {
			name  string
			class querygraph.Class
			n     int
		}{
			{"tree14", querygraph.Tree, 14},
			{"dense10", querygraph.Dense, 10},
			{"cycle14", querygraph.Cycle, 14},
		}
	}
	parallelisms := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, sh := range shapes {
		q, s := randquery.Generate(sh.class, sh.n, 11)
		views, err := querygraph.Build(q)
		if err != nil {
			b.Fatal(err)
		}
		est := mustEstimator(b, q, s)
		for _, p := range parallelisms {
			b.Run(fmt.Sprintf("%s/P=%d", sh.name, p), func(b *testing.B) {
				in := &opt.Input{Query: q, Views: views, Est: est,
					Params: sparqlopt.DefaultCostParams(), Method: partition.HashSO{}, Parallelism: p}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := opt.Optimize(context.Background(), in, opt.TDCMD); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblation_PruningRules runs the TD-CMDP rule ablation
// (DESIGN.md §6).
func BenchmarkAblation_PruningRules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Ablation(quickBenchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerateCMDs measures the amortized cost per enumerated
// connected multi-division on the four query classes (the paper's
// Lemma 3: Θ(|V_T|) per cmd).
func BenchmarkEnumerateCMDs(b *testing.B) {
	for _, tc := range []struct {
		name  string
		class querygraph.Class
		n     int
	}{
		{"chain16", querygraph.Chain, 16},
		{"cycle16", querygraph.Cycle, 16},
		{"star12", querygraph.Star, 12},
		{"tree12", querygraph.Tree, 12},
		{"dense10", querygraph.Dense, 10},
	} {
		b.Run(tc.name, func(b *testing.B) {
			q, _ := randquery.Generate(tc.class, tc.n, 1)
			jg, err := querygraph.NewJoinGraph(q)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			total := 0
			for i := 0; i < b.N; i++ {
				opt.ConnMultiDivision(jg, jg.All(), false, func(opt.CMD) bool {
					total++
					return true
				})
			}
			b.ReportMetric(float64(total)/float64(b.N), "cmds/op")
		})
	}
}

// BenchmarkOptimizeTDCMD measures full plan enumeration per algorithm
// on a 12-pattern tree query.
func BenchmarkOptimizeTDCMD(b *testing.B) {
	for _, algo := range []opt.Algorithm{opt.TDCMD, opt.TDCMDP, opt.HGRTDCMD, opt.TDAuto} {
		b.Run(algo.String(), func(b *testing.B) {
			q, s := randquery.Generate(querygraph.Tree, 12, 3)
			views, err := querygraph.Build(q)
			if err != nil {
				b.Fatal(err)
			}
			est := mustEstimator(b, q, s)
			in := &opt.Input{Query: q, Views: views, Est: est, Params: sparqlopt.DefaultCostParams(), Method: partition.HashSO{}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := opt.Optimize(context.Background(), in, algo); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocalCheck measures maximal-local-query containment checks
// (the paper's Θ(|V_Q|) claim, appendix A).
func BenchmarkLocalCheck(b *testing.B) {
	q := lubm.Query("L10")
	g := querygraph.NewGraph(q)
	checker := partition.NewLocalChecker(partition.HashSO{}, g)
	set := bitset.Of(0, 1, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.IsLocal(set)
	}
}

// BenchmarkExecute measures plan execution alone — optimization runs
// once outside the timed loop — on LUBM L1–L10 and bound WatDiv
// templates, sweeping the engine parallelism knob P ∈ {1, GOMAXPROCS}.
// ReportAllocs tracks the data plane's allocation diet (integer-hash
// joins + arena-backed relations); compare ns/op across P for the
// intra-query speedup.
func BenchmarkExecute(b *testing.B) {
	type workload struct {
		tag string
		ds  *sparqlopt.Dataset
		qs  []struct {
			name string
			q    *sparqlopt.Query
		}
	}
	var loads []workload
	lds := lubm.Generate(lubm.Config{Universities: 2, Seed: 1, Compact: true})
	wl := workload{tag: "LUBM", ds: lds}
	for _, name := range lubm.QueryNames {
		wl.qs = append(wl.qs, struct {
			name string
			q    *sparqlopt.Query
		}{name, lubm.Query(name)})
	}
	loads = append(loads, wl)
	wds := watdiv.GenerateData(watdiv.DataConfig{Scale: 300, Seed: 1})
	ww := workload{tag: "WatDiv", ds: wds}
	for _, t := range watdiv.Templates(1) {
		if t.Query == nil || len(t.Query.Patterns) < 2 {
			continue
		}
		// Binding can disconnect the join graph; skip those templates.
		q := t.Bind(wds, 1)
		if jg, err := querygraph.NewJoinGraph(q); err != nil || !jg.Connected(jg.All()) {
			continue
		}
		ww.qs = append(ww.qs, struct {
			name string
			q    *sparqlopt.Query
		}{fmt.Sprintf("W%d", t.ID), q})
		if len(ww.qs) == 3 {
			break
		}
	}
	loads = append(loads, ww)
	sweep := []int{1, runtime.GOMAXPROCS(0)}
	if sweep[1] == 1 {
		sweep = sweep[:1] // single-core machine: P=GOMAXPROCS duplicates P=1
	}
	for _, p := range sweep {
		for _, wl := range loads {
			sys, err := sparqlopt.Open(wl.ds, sparqlopt.WithNodes(4), sparqlopt.WithParallelism(p))
			if err != nil {
				b.Fatal(err)
			}
			for _, bq := range wl.qs {
				res, err := sys.OptimizeQuery(context.Background(), bq.q, sparqlopt.WithAlgorithm(sparqlopt.TDAuto))
				if err != nil {
					b.Fatal(err)
				}
				b.Run(fmt.Sprintf("%s/%s/P=%d", wl.tag, bq.name, p), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, err := sys.Execute(context.Background(), res.Plan, bq.q); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkEndToEnd measures optimize+execute of a benchmark query on
// the simulated cluster.
func BenchmarkEndToEnd(b *testing.B) {
	ds := lubm.Generate(lubm.Config{Universities: 1, Seed: 1, Compact: true})
	sys, err := sparqlopt.Open(ds, sparqlopt.WithNodes(4))
	if err != nil {
		b.Fatal(err)
	}
	q := lubm.QueryText("L2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Run(context.Background(), q, sparqlopt.WithAlgorithm(sparqlopt.TDAuto)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunCached measures the full serving path — parse, plan,
// execute — for repeated queries with the plan cache on and off. The
// cached rows are identical; the delta is pure planning overhead
// (statistics collection + enumeration) that the cache removes.
func BenchmarkRunCached(b *testing.B) {
	ds := lubm.Generate(lubm.Config{Universities: 1, Seed: 1, Compact: true})
	for _, mode := range []struct {
		name string
		opts []sparqlopt.Option
	}{
		{"uncached", nil},
		{"cached", []sparqlopt.Option{sparqlopt.WithPlanCache(64)}},
	} {
		sys, err := sparqlopt.Open(ds, append([]sparqlopt.Option{sparqlopt.WithNodes(4)}, mode.opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		for _, name := range []string{"L1", "L2", "L7", "L9"} {
			src := lubm.QueryText(name)
			// Prime the cache so the cached variant measures the warm
			// path, not the first miss.
			if _, err := sys.Run(context.Background(), src, sparqlopt.WithAlgorithm(sparqlopt.TDAuto)); err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", mode.name, name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sys.Run(context.Background(), src, sparqlopt.WithAlgorithm(sparqlopt.TDAuto)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
