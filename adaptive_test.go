package sparqlopt

import (
	"context"
	"fmt"
	"testing"

	"sparqlopt/internal/partition"
	"sparqlopt/internal/partition/adaptive"
	"sparqlopt/internal/workload/lubm"
)

const ub = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

// hotOOQuery is an object-object star: under subject-hash-based
// partitionings the two patterns' bindings meet only after a
// repartition on ?c — the shape the adaptive advisor mines for.
var hotOOQuery = fmt.Sprintf(
	`SELECT * WHERE { ?s <%stakesCourse> ?c . ?t <%steacherOf> ?c . }`, ub, ub)

func lubmDataset(tb testing.TB) *Dataset {
	tb.Helper()
	ds := lubm.Generate(lubm.Config{Universities: 5, Seed: 7})
	return ds
}

func mustMethod(tb testing.TB, name string) Method {
	tb.Helper()
	m, err := PartitionMethod(name)
	if err != nil {
		tb.Fatal(err)
	}
	return m
}

func equalResultRows(a, b *ExecResult) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}

// TestAdaptiveShuffleElimination drives the full loop on a repeating
// hot query: observe shuffles → migrate the hot groups → serve the
// scans aligned. The repeated query's shuffle volume must collapse
// after the migration, and every run must stay bit-identical to the
// reference evaluator.
func TestAdaptiveShuffleElimination(t *testing.T) {
	ds := lubmDataset(t)
	sys, err := Open(ds,
		WithMethod(mustMethod(t, "2f")),
		WithNodes(10),
		WithPlanCache(64),
		WithAdaptivePartitioning(AdaptiveConfig{
			MinShuffledBytes: 1,
			MinQueries:       2,
			Synchronous:      true,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(hotOOQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("reference returned no rows; query is not exercising the join")
	}
	ctx := context.Background()
	var first, last int64
	for i := 0; i < 6; i++ {
		res, err := sys.Run(ctx, hotOOQuery)
		if err != nil {
			t.Fatal(err)
		}
		if !equalResultRows(res, want) {
			t.Fatalf("run %d: rows diverged from reference (%d vs %d rows)", i, len(res.Rows), len(want.Rows))
		}
		t.Logf("run %d: shuffled=%d rows/%d B stats=%+v", i, res.ShuffledRows(), res.ShuffledBytes(), sys.AdvisorStats())
		if i == 0 {
			first = res.ShuffledBytes()
		}
		last = res.ShuffledBytes()
	}
	st := sys.AdvisorStats()
	if st.Migrations == 0 {
		t.Fatalf("advisor never migrated: %+v", st)
	}
	if first == 0 {
		t.Skip("plan had no repartition shuffle under this method; nothing to eliminate")
	}
	if last >= first {
		t.Fatalf("shuffle volume did not drop: first=%d last=%d", first, last)
	}
	if last != 0 {
		t.Fatalf("aligned scans should eliminate the repartition shuffle entirely, still moving %d bytes", last)
	}
	if st.AlignedHits == 0 {
		t.Fatalf("no aligned scans served after migration: %+v", st)
	}
	if inv := sys.CacheStats().Invalidations; inv == 0 {
		t.Fatal("migration bumped the epoch but the plan cache never re-optimized")
	}
}

// TestAdaptiveMigrationProperty is the migration soundness sweep:
// under every partitioning method and parallelism setting, a workload
// aggressive enough to trigger migrations keeps returning rows
// bit-identical to the reference evaluator before, during and after
// each migration, and the total replication stays within the
// configured budget.
func TestAdaptiveMigrationProperty(t *testing.T) {
	ds := lubmDataset(t)
	queries := []string{
		hotOOQuery,
		fmt.Sprintf(`SELECT * WHERE { ?x <%sadvisor> ?p . ?y <%sworksFor> ?d . ?p <%sworksFor> ?d . }`, ub, ub, ub),
		fmt.Sprintf(`SELECT * WHERE { ?s <%smemberOf> ?d . ?t <%sworksFor> ?d . }`, ub, ub),
	}
	type wantRows struct {
		rows *ExecResult
	}
	want := make([]wantRows, len(queries))
	for i, src := range queries {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Reference(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = wantRows{rows: ref}
	}
	const budget = 0.6
	for _, method := range []string{"hash-so", "2f", "path-bmc", "un-1hop"} {
		for _, par := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/p%d", method, par), func(t *testing.T) {
				t.Parallel()
				sys, err := Open(ds,
					WithMethod(mustMethod(t, method)),
					WithNodes(10),
					WithParallelism(par),
					WithPlanCache(32),
					WithAdaptivePartitioning(AdaptiveConfig{
						MinShuffledBytes:  1,
						MinQueries:        1,
						ReplicationBudget: budget,
						Synchronous:       true,
					}),
				)
				if err != nil {
					t.Fatal(err)
				}
				base := mustPartition(t, method, ds, 10).ReplicationFactor(ds.Len())
				ctx := context.Background()
				for round := 0; round < 3; round++ {
					for i, src := range queries {
						res, err := sys.Run(ctx, src)
						if err != nil {
							t.Fatalf("round %d query %d: %v", round, i, err)
						}
						if !equalResultRows(res, want[i].rows) {
							t.Fatalf("round %d query %d: rows diverged (%d vs %d)",
								round, i, len(res.Rows), len(want[i].rows.Rows))
						}
					}
				}
				if got := sys.ReplicationFactor(); got > base+budget+1e-9 {
					t.Fatalf("replication factor %v exceeds base %v + budget %v", got, base, budget)
				}
			})
		}
	}
}

func mustPartition(tb testing.TB, method string, ds *Dataset, nodes int) *partition.Placement {
	tb.Helper()
	p, err := mustMethod(tb, method).Partition(ds, nodes)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

// TestAdaptiveBackgroundMigration runs the advisor asynchronously —
// the production mode — under concurrent serving, and checks that the
// system quiesces into the aligned state without ever diverging from
// the reference. Run with -race this also proves the snapshot swap and
// epoch flip are clean.
func TestAdaptiveBackgroundMigration(t *testing.T) {
	ds := lubmDataset(t)
	sys, err := Open(ds,
		WithMethod(mustMethod(t, "2f")),
		WithNodes(10),
		WithPlanCache(32),
		WithAdaptivePartitioning(AdaptiveConfig{MinShuffledBytes: 1, MinQueries: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(hotOOQuery)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 8; i++ {
				res, err := sys.Run(ctx, hotOOQuery)
				if err != nil {
					done <- err
					return
				}
				if !equalResultRows(res, want) {
					done <- fmt.Errorf("rows diverged mid-migration")
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	sys.WaitForMigrations()
	st := sys.AdvisorStats()
	if st.Migrations == 0 {
		t.Fatalf("background advisor never migrated: %+v", st)
	}
	res, err := sys.Run(ctx, hotOOQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !equalResultRows(res, want) {
		t.Fatal("rows diverged after background migration")
	}
	if res.ShuffledBytes() != 0 {
		t.Fatalf("quiesced system still shuffles %d bytes on the hot query", res.ShuffledBytes())
	}
}

// TestAdaptiveReplicationBudgetBlocks: with a budget too small for any
// group, the advisor must skip every candidate and never migrate.
func TestAdaptiveReplicationBudgetBlocks(t *testing.T) {
	ds := lubmDataset(t)
	sys, err := Open(ds,
		WithMethod(mustMethod(t, "2f")),
		WithNodes(10),
		WithAdaptivePartitioning(AdaptiveConfig{
			MinShuffledBytes:  1,
			MinQueries:        1,
			ReplicationBudget: 1e-9,
			Synchronous:       true,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sys.Run(ctx, hotOOQuery); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.AdvisorStats()
	if st.Migrations != 0 {
		t.Fatalf("advisor migrated past a zero budget: %+v", st)
	}
	if st.SkippedBudget == 0 {
		t.Fatalf("advisor never recorded the budget rejection: %+v", st)
	}
}

// TestAdaptiveMemoryBudgetIsolation: a total memory budget too small
// for the migration's store rebuilds fails the round (recorded, never
// fatal) while serving keeps working on the old placement.
func TestAdaptiveMemoryBudgetIsolation(t *testing.T) {
	ds := lubmDataset(t)
	sys, err := Open(ds,
		WithMethod(mustMethod(t, "2f")),
		WithNodes(10),
		WithMemoryBudget(0, 64<<20),
		WithAdaptivePartitioning(AdaptiveConfig{
			MinShuffledBytes: 1,
			MinQueries:       1,
			Synchronous:      true,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the advisor directly (the serving path would do the same
	// through ShuffleGroups) so the trigger state is exact, then starve
	// the shared budget: the migration round must fail its reservation,
	// stay a candidate, and succeed once the memory is back.
	pred, ok := ds.Dict.Lookup(ub + "takesCourse")
	if !ok {
		t.Fatal("takesCourse not in dictionary")
	}
	sys.advisor.Observe([]adaptive.Observation{{
		Key:   partition.GroupKey{Pred: pred, Pos: partition.PosO},
		Rows:  20000,
		Bytes: 200000,
	}})
	hold := sys.budget.NewGauge()
	if err := hold.Reserve("test-hold", 64<<20-1024); err != nil {
		t.Fatal(err)
	}
	sys.migrate()
	st := sys.AdvisorStats()
	if st.Migrations != 0 {
		t.Fatalf("migration applied despite exhausted memory budget: %+v", st)
	}
	if st.FailedMigrations == 0 {
		t.Fatalf("budget-tripped round was not recorded: %+v", st)
	}
	hold.Reset()
	sys.migrate()
	st = sys.AdvisorStats()
	if st.Migrations == 0 {
		t.Fatalf("migration never recovered after budget release: %+v", st)
	}
	ctx := context.Background()
	q, _ := ParseQuery(hotOOQuery)
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(ctx, hotOOQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !equalResultRows(res, want) {
		t.Fatal("rows diverged after recovered migration")
	}
}
