// Tests for the observability layer as seen through the public API:
// the RunOption compatibility contract, trace-tree determinism, the
// end-to-end metrics/trace/slow-log pipeline on the LUBM workload, and
// phase-annotated cancellation.
package sparqlopt

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"

	"sparqlopt/internal/workload/lubm"
)

// TestPositionalAlgorithmStillWorks pins the compatibility contract of
// the RunOption redesign: a bare Algorithm is itself a RunOption, so
// the pre-redesign positional call style compiles unchanged and
// behaves identically to WithAlgorithm.
func TestPositionalAlgorithmStillWorks(t *testing.T) {
	sys, err := Open(tinyDataset(), WithNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	src := `SELECT * WHERE { ?x <http://knows> ?y . ?y <http://worksFor> ?o . ?o <http://inCity> ?c . }`
	ctx := context.Background()
	for _, algo := range []Algorithm{TDCMD, TDCMDP, HGRTDCMD, TDAuto} {
		oldStyle, err := sys.Run(ctx, src, algo)
		if err != nil {
			t.Fatalf("%v positional: %v", algo, err)
		}
		newStyle, err := sys.Run(ctx, src, WithAlgorithm(algo))
		if err != nil {
			t.Fatalf("%v option: %v", algo, err)
		}
		if len(oldStyle.Rows) != len(newStyle.Rows) {
			t.Errorf("%v: positional returned %d rows, WithAlgorithm %d",
				algo, len(oldStyle.Rows), len(newStyle.Rows))
		}
		if oldStyle.Opt.Used != newStyle.Opt.Used {
			t.Errorf("%v: positional used %v, WithAlgorithm %v",
				algo, oldStyle.Opt.Used, newStyle.Opt.Used)
		}
		if oldStyle.Opt.Plan.Cost != newStyle.Opt.Plan.Cost {
			t.Errorf("%v: plan costs differ: %g vs %g",
				algo, oldStyle.Opt.Plan.Cost, newStyle.Opt.Plan.Cost)
		}
	}
	// The positional style works for Optimize too.
	res, err := sys.Optimize(ctx, src, TDCMD)
	if err != nil {
		t.Fatal(err)
	}
	if res.Used != TDCMD {
		t.Errorf("positional Optimize used %v, want TDCMD", res.Used)
	}
}

// TestRunDefaultsToTDAuto pins the redesign's default: no options at
// all selects TD-Auto.
func TestRunDefaultsToTDAuto(t *testing.T) {
	sys, err := Open(tinyDataset(), WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := sys.Run(context.Background(),
		`SELECT * WHERE { ?x <http://knows> ?y . ?y <http://worksFor> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Opt == nil {
		t.Fatal("Run result carries no optimization result")
	}
}

// spanSkeleton renders a span tree as names plus attributes, durations
// excluded — the schedule-independent part of a trace.
func spanSkeleton(s *Span, indent string, b *strings.Builder) {
	b.WriteString(indent)
	b.WriteString(s.Name)
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		spanSkeleton(c, indent+"  ", b)
	}
}

// TestTraceTreeInvariantAcrossParallelism checks that the trace
// skeleton — span names, nesting and every attribute, including the
// estimated and actual cardinalities and the shuffle volumes — is
// bit-identical at every parallelism setting. Only durations may
// change with the schedule.
func TestTraceTreeInvariantAcrossParallelism(t *testing.T) {
	ds := lubm.Generate(lubm.Config{Universities: 1, Seed: 1, Compact: true})
	src := lubm.QueryText("L7")
	var want string
	for _, p := range []int{1, 2, 4, 8} {
		sys, err := Open(ds, WithNodes(4), WithParallelism(p))
		if err != nil {
			t.Fatal(err)
		}
		var tr *Trace
		if _, err := sys.Run(context.Background(), src, WithTraceSink(func(t *Trace) { tr = t })); err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if tr == nil {
			t.Fatalf("P=%d: trace sink not called", p)
		}
		var b strings.Builder
		spanSkeleton(tr.Root, "", &b)
		got := b.String()
		if want == "" {
			want = got
			continue
		}
		if got != want {
			t.Errorf("P=%d: trace skeleton diverged\nP=1:\n%s\nP=%d:\n%s", p, want, p, got)
		}
	}
}

// checkExposition asserts that text is parseable Prometheus text
// exposition format: every line is a comment or `name[{labels}] value`.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	seen := 0
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("unparseable exposition line %q", line)
			continue
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unterminated label set in %q", line)
			}
			name = name[:i]
		}
		for _, r := range name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Errorf("bad metric name in %q", line)
				break
			}
		}
		if _, err := strconv.ParseFloat(fields[1], 64); err != nil {
			t.Errorf("bad sample value in %q: %v", line, err)
		}
		seen++
	}
	if seen == 0 {
		t.Error("exposition contains no samples")
	}
}

// metricValue extracts one un-labeled sample from an exposition dump.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestObservabilityEndToEnd serves LUBM L1–L10 with the full layer on
// — metrics, tracing, slow-query log and the plan cache — and checks
// every artifact: the exposition parses and counts the runs, each
// trace covers the serving phases down to per-operator cardinalities,
// and the slow-query log retains per-phase timings for every query.
func TestObservabilityEndToEnd(t *testing.T) {
	ds := lubm.Generate(lubm.Config{Universities: 1, Seed: 1, Compact: true})
	sys, err := Open(ds, WithNodes(4), WithPlanCache(64),
		WithObservability(WithSlowQueryLog(64, 0)))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, name := range lubm.QueryNames {
		var tr *Trace
		out, err := sys.Run(ctx, lubm.QueryText(name), WithTraceSink(func(t *Trace) { tr = t }))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr == nil {
			t.Fatalf("%s: no trace delivered", name)
		}
		// Serving phases: first run of a shape is a cache miss, so the
		// full pipeline must appear.
		for _, phase := range []string{"parse", "canonicalize", "cache_lookup", "stats", "enumerate", "execute"} {
			if tr.Find(phase) == nil {
				t.Errorf("%s: trace lacks phase %q:\n%s", name, phase, tr.Format())
			}
		}
		if outcome, _ := tr.Find("cache_lookup").Attr("outcome"); outcome != "miss" {
			t.Errorf("%s: first run cache_lookup outcome = %q, want miss", name, outcome)
		}
		// Per-operator spans carry estimated and actual cardinalities.
		exec := tr.Find("execute")
		ops := 0
		var walk func(s *Span)
		walk = func(s *Span) {
			if strings.HasPrefix(s.Name, "op:") {
				ops++
				if _, ok := s.Attr("est_rows"); !ok {
					t.Errorf("%s: span %s lacks est_rows", name, s.Name)
				}
				if _, ok := s.Attr("rows"); !ok {
					t.Errorf("%s: span %s lacks rows", name, s.Name)
				}
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(exec)
		if ops == 0 {
			t.Errorf("%s: no operator spans under execute:\n%s", name, tr.Format())
		}
		if out.CacheInfo.Hit {
			t.Errorf("%s: first run reported a cache hit", name)
		}
	}

	// Warm repeat: served from the cache, trace says so.
	var warm *Trace
	if _, err := sys.Run(ctx, lubm.QueryText("L2"), WithTraceSink(func(t *Trace) { warm = t })); err != nil {
		t.Fatal(err)
	}
	if outcome, _ := warm.Find("cache_lookup").Attr("outcome"); outcome != "hit" {
		t.Errorf("warm run cache_lookup outcome = %q, want hit", outcome)
	}
	if warm.Find("enumerate") != nil {
		t.Errorf("warm run still enumerated:\n%s", warm.Format())
	}

	var b strings.Builder
	if err := sys.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	checkExposition(t, text)
	runs := float64(len(lubm.QueryNames) + 1)
	if got := metricValue(t, text, "query_runs_total"); got != runs {
		t.Errorf("query_runs_total = %g, want %g", got, runs)
	}
	if got := metricValue(t, text, "query_errors_total"); got != 0 {
		t.Errorf("query_errors_total = %g, want 0", got)
	}
	if got := metricValue(t, text, "plancache_hits"); got != 1 {
		t.Errorf("plancache_hits = %g, want 1", got)
	}

	entries := sys.SlowQueries()
	if len(entries) != int(runs) {
		t.Fatalf("slow-query log has %d entries, want %g", len(entries), runs)
	}
	for _, e := range entries {
		if len(e.Phases) == 0 {
			t.Errorf("slow-query entry %q has no phase timings", e.Query)
		}
		if e.Err == "" && e.Duration <= 0 {
			t.Errorf("slow-query entry %q has non-positive duration", e.Query)
		}
	}
}

// TestWriteMetricsRequiresObservability pins the error contract of the
// disabled path.
func TestWriteMetricsRequiresObservability(t *testing.T) {
	sys, err := Open(tinyDataset())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteMetrics(io.Discard); err == nil {
		t.Error("WriteMetrics succeeded without WithObservability")
	}
	if sys.MetricsRegistry() != nil {
		t.Error("MetricsRegistry non-nil without WithObservability")
	}
	if sys.SlowQueries() != nil {
		t.Error("SlowQueries non-nil without WithObservability")
	}
}

// TestCancellationReportsPhase checks that a per-call deadline and a
// client cancel both surface as a *PhaseError naming the interrupted
// phase, while errors.Is still distinguishes the two causes.
func TestCancellationReportsPhase(t *testing.T) {
	ds := lubm.Generate(lubm.Config{Universities: 1, Seed: 1, Compact: true})
	sys, err := Open(ds, WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	src := lubm.QueryText("L10")

	_, err = sys.Run(context.Background(), src, WithDeadline(time.Nanosecond))
	if err == nil {
		t.Fatal("1ns deadline not enforced")
	}
	var pe *PhaseError
	if !errors.As(err, &pe) {
		t.Fatalf("deadline error %v is not a *PhaseError", err)
	}
	if pe.Phase == "" {
		t.Error("deadline PhaseError has empty phase")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline error %v does not wrap context.DeadlineExceeded", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Errorf("deadline error %v claims context.Canceled", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sys.Run(ctx, src)
	if err == nil {
		t.Fatal("canceled context not enforced")
	}
	pe = nil
	if !errors.As(err, &pe) {
		t.Fatalf("cancel error %v is not a *PhaseError", err)
	}
	if pe.Phase == "" {
		t.Error("cancel PhaseError has empty phase")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancel error %v does not wrap context.Canceled", err)
	}
}

// BenchmarkRun measures the serving path with observability off (the
// default nil-check-only hooks) and fully on (metrics + keep-everything
// slow-query log). The obsoverhead experiment measures the same
// comparison on the full LUBM mix; this is its in-tree microbenchmark.
func BenchmarkRun(b *testing.B) {
	ds := lubm.Generate(lubm.Config{Universities: 1, Seed: 1, Compact: true})
	src := lubm.QueryText("L2")
	for _, mode := range []struct {
		name string
		opts []Option
	}{
		{"obs-off", nil},
		{"obs-on", []Option{WithObservability(WithSlowQueryLog(64, 0))}},
	} {
		sys, err := Open(ds, append([]Option{WithNodes(4)}, mode.opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sys.Run(context.Background(), src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
