package sparqlopt

import (
	"context"
	"fmt"
	"testing"

	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/workload/lubm"
	"sparqlopt/internal/workload/watdiv"
)

// greedyTestQueries gathers the LUBM suite plus a handful of bound
// WatDiv templates, each paired with its dataset — the same workloads
// the serving benchmarks run.
func greedyTestQueries(t *testing.T) []struct {
	name string
	q    *Query
	ds   *Dataset
} {
	t.Helper()
	type tq = struct {
		name string
		q    *Query
		ds   *Dataset
	}
	var out []tq
	lds := lubm.Generate(lubm.Config{Universities: 2, Seed: 1, Compact: true})
	for _, name := range lubm.QueryNames {
		out = append(out, tq{name, lubm.Query(name), lds})
	}
	wds := watdiv.GenerateData(watdiv.DataConfig{Scale: 200, Seed: 1})
	for _, tpl := range watdiv.Templates(1) {
		if tpl.Query == nil || len(tpl.Query.Patterns) < 2 {
			continue
		}
		q := tpl.Bind(wds, 1)
		// Binding the walk's start variable can disconnect the join
		// graph; those are unplannable without Cartesian products.
		if jg, err := querygraph.NewJoinGraph(q); err != nil || !jg.Connected(jg.All()) {
			continue
		}
		out = append(out, tq{fmt.Sprintf("W%d", tpl.ID), q, wds})
		if len(out) >= len(lubm.QueryNames)+5 {
			break
		}
	}
	return out
}

// TestGreedyExecutesCorrectly: the greedy baseline — the last rung of
// the optimizer's degradation ladder — must still produce valid plans
// whose distributed execution matches the single-node reference on
// every LUBM and WatDiv query.
func TestGreedyExecutesCorrectly(t *testing.T) {
	systems := map[*Dataset]*System{}
	for _, tc := range greedyTestQueries(t) {
		sys := systems[tc.ds]
		if sys == nil {
			var err error
			sys, err = Open(tc.ds, WithNodes(5))
			if err != nil {
				t.Fatal(err)
			}
			systems[tc.ds] = sys
		}
		want, err := Reference(tc.ds, tc.q)
		if err != nil {
			t.Fatalf("%s: reference: %v", tc.name, err)
		}
		res, err := sys.OptimizeQuery(context.Background(), tc.q, WithAlgorithm(Greedy))
		if err != nil {
			t.Fatalf("%s: optimize: %v", tc.name, err)
		}
		if res.Used != Greedy {
			t.Fatalf("%s: ran %v, want Greedy", tc.name, res.Used)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Fatalf("%s: invalid greedy plan: %v\n%s", tc.name, err, res.Plan.Format())
		}
		got, err := sys.Execute(context.Background(), res.Plan, tc.q)
		if err != nil {
			t.Fatalf("%s: execute: %v", tc.name, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Errorf("%s: greedy plan returned %d rows, reference has %d",
				tc.name, len(got.Rows), len(want.Rows))
			continue
		}
		for i := range got.Rows {
			for j := range got.Rows[i] {
				if got.Rows[i][j] != want.Rows[i][j] {
					t.Errorf("%s: row %d differs", tc.name, i)
					break
				}
			}
		}
	}
}

// TestGreedyCostSane: greedy plans can be suboptimal but must stay
// within a sane multiple of TD-CMD's cost. The bound is loose (100x)
// on purpose: it catches a heuristic gone pathological, not ordinary
// suboptimality. There is no lower bound — TD-CMD is optimal within
// the connected-multi-division space (every division shares one join
// variable), while greedy's binary steps may join on several variables
// at once, so it occasionally lands on a slightly cheaper plan outside
// that space (L3 does).
func TestGreedyCostSane(t *testing.T) {
	const saneMultiple = 100.0
	systems := map[*Dataset]*System{}
	for _, tc := range greedyTestQueries(t) {
		sys := systems[tc.ds]
		if sys == nil {
			var err error
			sys, err = Open(tc.ds, WithNodes(5))
			if err != nil {
				t.Fatal(err)
			}
			systems[tc.ds] = sys
		}
		greedy, err := sys.OptimizeQuery(context.Background(), tc.q, WithAlgorithm(Greedy))
		if err != nil {
			t.Fatalf("%s: greedy: %v", tc.name, err)
		}
		optimal, err := sys.OptimizeQuery(context.Background(), tc.q, WithAlgorithm(TDCMD))
		if err != nil {
			t.Fatalf("%s: tdcmd: %v", tc.name, err)
		}
		g, o := greedy.Plan.Cost, optimal.Plan.Cost
		if o > 0 && g > o*saneMultiple {
			t.Errorf("%s: greedy cost %.4g is %.0fx the optimal %.4g",
				tc.name, g, g/o, o)
		}
		// The baseline must also stay cheap to find: a left-deep chain
		// considers far fewer plans than the exhaustive enumeration.
		if len(tc.q.Patterns) >= 4 && greedy.Counter.Plans >= optimal.Counter.Plans {
			t.Errorf("%s: greedy explored %d plans, TD-CMD %d — the baseline should be the cheap one",
				tc.name, greedy.Counter.Plans, optimal.Counter.Plans)
		}
	}
}
