package sparqlopt_test

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"

	"sparqlopt"
	"sparqlopt/internal/httpd"
)

// ExampleOpen shows the minimal end-to-end flow: build a dataset,
// partition it, optimize a query and execute the plan.
func ExampleOpen() {
	ds := sparqlopt.NewDataset()
	ds.Add("http://ex/alice", "http://ex/knows", "http://ex/bob")
	ds.Add("http://ex/bob", "http://ex/knows", "http://ex/carol")

	sys, err := sparqlopt.Open(ds, sparqlopt.WithNodes(2))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(context.Background(),
		`SELECT ?a ?c WHERE { ?a <http://ex/knows> ?b . ?b <http://ex/knows> ?c . }`,
		sparqlopt.WithAlgorithm(sparqlopt.TDAuto))
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(sys.Term(row[0]), "->", sys.Term(row[1]))
	}
	// Output:
	// http://ex/alice -> http://ex/carol
}

// ExampleSystem_Optimize inspects the chosen plan and the size of the
// explored search space without executing anything.
func ExampleSystem_Optimize() {
	ds := sparqlopt.NewDataset()
	ds.Add("http://ex/a", "http://ex/p", "http://ex/b")
	ds.Add("http://ex/b", "http://ex/q", "http://ex/c")
	ds.Add("http://ex/c", "http://ex/r", "http://ex/d")

	sys, err := sparqlopt.Open(ds, sparqlopt.WithNodes(2))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Optimize(context.Background(), `SELECT * WHERE {
		?x <http://ex/p> ?y .
		?y <http://ex/q> ?z .
		?z <http://ex/r> ?w .
	}`, sparqlopt.TDCMD)
	if err != nil {
		log.Fatal(err)
	}
	// A 3-pattern chain has T(Q) = (27-3)/6 = 4 connected
	// multi-divisions (paper Eq. 8).
	fmt.Println("enumerated join operators:", res.Counter.CMDs)
	fmt.Println("plan is valid:", res.Plan.Validate() == nil)
	// Output:
	// enumerated join operators: 4
	// plan is valid: true
}

// Example_serving shows the serving stack end to end: a System with
// the serving options, the streaming results iterator, and the same
// query over the SPARQL 1.1 HTTP protocol. RunStream yields rows as
// the engine produces them — the response never materializes, so its
// memory footprint is bounded regardless of result size.
func Example_serving() {
	ds := sparqlopt.NewDataset()
	ds.Add("http://ex/alice", "http://ex/knows", "http://ex/bob")
	ds.Add("http://ex/bob", "http://ex/knows", "http://ex/carol")

	sys, err := sparqlopt.Open(ds,
		sparqlopt.WithNodes(2),
		sparqlopt.WithPlanCache(64),      // repeated shapes skip optimization
		sparqlopt.WithExecutionSharing(), // identical in-flight reads share one execution
		sparqlopt.WithAdmissionControl(8, 16),
		sparqlopt.WithObservability())
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	const query = `SELECT ?a ?c WHERE { ?a <http://ex/knows> ?b . ?b <http://ex/knows> ?c . }`

	// The library face: iterate rows without materializing the result.
	rows, err := sys.RunStream(context.Background(), query, sparqlopt.WithLimit(10))
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		row := rows.Row() // valid until the next call to Next
		fmt.Println(sys.Term(row[0]), "->", sys.Term(row[1]))
	}
	if err := rows.Close(); err != nil {
		log.Fatal(err)
	}

	// The network face: the same call over the SPARQL 1.1 protocol.
	srv := httptest.NewServer(httpd.New(sys, httpd.Config{}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(query))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Println(resp.Header.Get("Content-Type"))
	fmt.Print(string(body))
	// Output:
	// http://ex/alice -> http://ex/carol
	// application/sparql-results+json
	// {"head":{"vars":["a","c"]},"results":{"bindings":[{"a":{"type":"uri","value":"http://ex/alice"},"c":{"type":"uri","value":"http://ex/carol"}}]}}
}

// ExamplePartitionMethod demonstrates switching the partitioning
// method: under path partitioning a downward path query is a local
// query and executes without any network traffic.
func ExamplePartitionMethod() {
	ds := sparqlopt.NewDataset()
	ds.Add("http://ex/root", "http://ex/edge", "http://ex/mid")
	ds.Add("http://ex/mid", "http://ex/edge", "http://ex/leaf")

	path, err := sparqlopt.PartitionMethod("path-bmc")
	if err != nil {
		log.Fatal(err)
	}
	sys, err := sparqlopt.Open(ds, sparqlopt.WithMethod(path), sparqlopt.WithNodes(4))
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(context.Background(),
		`SELECT * WHERE { ?a <http://ex/edge> ?b . ?b <http://ex/edge> ?c . }`,
		sparqlopt.WithAlgorithm(sparqlopt.TDAuto))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("results:", len(res.Rows))
	fmt.Println("rows moved across nodes:", res.Metrics.TransferredRows)
	// Output:
	// results: 1
	// rows moved across nodes: 0
}
