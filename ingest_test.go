package sparqlopt

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"sparqlopt/internal/rdf"
)

// TestIngestVisibility: a committed write is visible to the very next
// Run, served bit-identically to the single-node reference; a
// duplicate insert is a full no-op — no epoch bump, no cache
// invalidation, the warm plan keeps serving.
func TestIngestVisibility(t *testing.T) {
	ds := tinyDataset()
	sys, err := Open(ds, WithNodes(3), WithPlanCache(32))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const src = `SELECT * WHERE { ?x <http://knows> ?y . }`
	before, err := sys.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}

	ds.Add("http://carol", "http://knows", "http://dave")
	after, err := sys.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Rows) != len(before.Rows)+1 {
		t.Fatalf("after the write: %d rows, want %d", len(after.Rows), len(before.Rows)+1)
	}
	want, err := Reference(ds, mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "post-write", after, want)
	if after.CacheInfo.Hit {
		t.Fatal("write to <knows> did not invalidate the cached plan")
	}

	// Duplicate insert: no epoch bump, no hook, no invalidation.
	epoch := ds.Epoch()
	ds.Add("http://carol", "http://knows", "http://dave")
	if got := ds.Epoch(); got != epoch {
		t.Fatalf("duplicate insert bumped the epoch: %d -> %d", epoch, got)
	}
	again, err := sys.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheInfo.Hit {
		t.Fatal("duplicate insert evicted the warm plan")
	}
	sameRows(t, "post-duplicate", again, want)

	// An all-duplicate batch is equally invisible; a batch with one
	// fresh triple commits exactly that triple atomically.
	dup := rdf.Triple{
		S: ds.Dict.Intern("http://carol"),
		P: ds.Dict.Intern("http://knows"),
		O: ds.Dict.Intern("http://dave"),
	}
	if n := ds.AddBatch([]rdf.Triple{dup, dup}); n != 0 {
		t.Fatalf("all-duplicate batch committed %d triples", n)
	}
	fresh := rdf.Triple{
		S: ds.Dict.Intern("http://dave"),
		P: ds.Dict.Intern("http://knows"),
		O: ds.Dict.Intern("http://erin"),
	}
	if n := ds.AddBatch([]rdf.Triple{dup, fresh}); n != 1 {
		t.Fatalf("mixed batch committed %d triples, want 1", n)
	}
	final, err := sys.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	want, err = Reference(ds, mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "post-batch", final, want)
}

// isoPairs is the number of writer commits in the snapshot-isolation
// property; each commit is one atomic pair of triples adding exactly
// one result row to isoQuery.
const isoPairs = 12

const isoQuery = `SELECT * WHERE { ?x <http://iso/p1> ?y . ?y <http://iso/p2> ?z . }`

// isoDataset builds the base graph plus the first k writer pairs, in
// one fixed Add order. Because the Dict interns terms in insertion
// order, two isoDatasets agree on every TermID — which makes rows
// from different instances directly comparable.
func isoDataset(k int) *Dataset {
	ds := NewDataset()
	for i := 0; i < 4; i++ {
		ds.Add(fmt.Sprintf("http://iso/a%d", i), "http://iso/p1", fmt.Sprintf("http://iso/b%d", i))
		ds.Add(fmt.Sprintf("http://iso/b%d", i), "http://iso/p2", fmt.Sprintf("http://iso/c%d", i))
		ds.Add(fmt.Sprintf("http://iso/a%d", i), "http://iso/noise", fmt.Sprintf("http://iso/n%d", i))
	}
	for j := 0; j < k; j++ {
		ds.Add(fmt.Sprintf("http://iso/wa%d", j), "http://iso/p1", fmt.Sprintf("http://iso/wb%d", j))
		ds.Add(fmt.Sprintf("http://iso/wb%d", j), "http://iso/p2", fmt.Sprintf("http://iso/wc%d", j))
	}
	return ds
}

// isoPair returns pair j's two triples interned into ds's dictionary,
// in the same order isoDataset(k) interns them.
func isoPair(ds *Dataset, j int) []rdf.Triple {
	p1 := ds.Dict.Intern("http://iso/p1")
	p2 := ds.Dict.Intern("http://iso/p2")
	a := ds.Dict.Intern(fmt.Sprintf("http://iso/wa%d", j))
	b := ds.Dict.Intern(fmt.Sprintf("http://iso/wb%d", j))
	c := ds.Dict.Intern(fmt.Sprintf("http://iso/wc%d", j))
	return []rdf.Triple{{S: a, P: p1, O: b}, {S: b, P: p2, O: c}}
}

// TestIngestSnapshotIsolation is the MVCC property test: while a
// writer commits pairs of triples (each pair atomically adds exactly
// one result row), concurrent readers on a cached system must each
// observe some committed prefix — never a torn pair, never a blocked
// read — across every partitioning method and parallelism level.
// Row sets are compared bit-for-bit against per-prefix references.
func TestIngestSnapshotIsolation(t *testing.T) {
	// expected[k] is the exact row set after k committed pairs.
	expected := make(map[int][][]rdf.TermID, isoPairs+1)
	baseRows := 0
	for k := 0; k <= isoPairs; k++ {
		ref, err := Reference(isoDataset(k), mustParse(t, isoQuery))
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			baseRows = len(ref.Rows)
		}
		if len(ref.Rows) != baseRows+k {
			t.Fatalf("prefix %d: %d rows, want %d — pairs must add exactly one row each",
				k, len(ref.Rows), baseRows+k)
		}
		expected[len(ref.Rows)] = ref.Rows
	}

	for _, method := range []string{"hash-so", "2f", "path-bmc", "un-1hop"} {
		for _, par := range []int{1, 2, 4, 8} {
			t.Run(fmt.Sprintf("%s/p%d", method, par), func(t *testing.T) {
				ds := isoDataset(0)
				sys, err := Open(ds,
					WithMethod(mustMethod(t, method)),
					WithNodes(4),
					WithParallelism(par),
					WithPlanCache(16),
				)
				if err != nil {
					t.Fatal(err)
				}
				var wg sync.WaitGroup
				done := make(chan struct{})
				errc := make(chan error, 4)
				for r := 0; r < 3; r++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							select {
							case <-done:
								return
							default:
							}
							res, err := sys.Run(context.Background(), isoQuery)
							if err != nil {
								errc <- err
								return
							}
							want, ok := expected[len(res.Rows)]
							if !ok {
								errc <- fmt.Errorf("%d rows matches no committed prefix (torn write?)", len(res.Rows))
								return
							}
							if !chaosRowsEqual(res.Rows, want) {
								errc <- fmt.Errorf("rows diverge from the %d-pair prefix reference", len(res.Rows)-baseRows)
								return
							}
						}
					}()
				}
				for j := 0; j < isoPairs; j++ {
					if n := ds.AddBatch(isoPair(ds, j)); n != 2 {
						t.Errorf("pair %d committed %d triples, want 2", j, n)
					}
				}
				close(done)
				wg.Wait()
				close(errc)
				for err := range errc {
					t.Error(err)
				}
				// Quiesced: the final snapshot holds every pair.
				final, err := sys.Run(context.Background(), isoQuery)
				if err != nil {
					t.Fatal(err)
				}
				if !chaosRowsEqual(final.Rows, expected[baseRows+isoPairs]) {
					t.Fatalf("final run: %d rows, want %d", len(final.Rows), baseRows+isoPairs)
				}
			})
		}
	}
}

// TestIngestRacesMigration interleaves writes, cached reads and
// adaptive migrations under -race: the advisor repartitions the hot
// object-object star while a writer keeps growing exactly those
// predicates. After quiescing, results must match the single-node
// reference over the final dataset.
func TestIngestRacesMigration(t *testing.T) {
	ds := NewDataset()
	for i := 0; i < 60; i++ {
		ds.Add(fmt.Sprintf("http://mig/s%d", i), "http://mig/p1", fmt.Sprintf("http://mig/o%d", i%7))
		ds.Add(fmt.Sprintf("http://mig/t%d", i), "http://mig/p2", fmt.Sprintf("http://mig/o%d", i%7))
	}
	sys, err := Open(ds,
		WithMethod(mustMethod(t, "2f")),
		WithNodes(4),
		WithPlanCache(64),
		WithAdaptivePartitioning(AdaptiveConfig{MinShuffledBytes: 1, MinQueries: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	const hot = `SELECT * WHERE { ?s <http://mig/p1> ?c . ?t <http://mig/p2> ?c . }`
	ctx := context.Background()

	var readers, writer sync.WaitGroup
	errc := make(chan error, 4)
	var stop atomic.Bool
	writer.Add(1)
	go func() { // writer: grows the hot predicates and noise
		defer writer.Done()
		for i := 0; !stop.Load(); i++ {
			ds.Add(fmt.Sprintf("http://mig/ws%d", i), "http://mig/p1", fmt.Sprintf("http://mig/o%d", i%7))
			ds.Add(fmt.Sprintf("http://mig/ws%d", i), "http://mig/noise", fmt.Sprintf("\"%d\"", i))
		}
	}()
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() { // readers: drive the advisor toward migration
			defer readers.Done()
			for i := 0; i < 30; i++ {
				if _, err := sys.Run(ctx, hot); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writer.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	sys.WaitForMigrations()
	if !sys.FlushWrites() {
		t.Fatal("FlushWrites failed with no faults armed")
	}
	if n := sys.PendingWrites(); n != 0 {
		t.Fatalf("%d pending writes after flush", n)
	}
	want, err := Reference(ds, mustParse(t, hot))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Run(ctx, hot)
	if err != nil {
		t.Fatal(err)
	}
	if !chaosRowsEqual(got.Rows, want.Rows) {
		t.Fatalf("post-migration rows diverge from reference (%d vs %d)", len(got.Rows), len(want.Rows))
	}
}

// TestChaosIngest injects panics into the write-apply path
// (rdf/snapshot): the commit stays durable, the apply is deferred,
// serving continues on the previous snapshot without an error, and a
// later drain catches the engine up to the full dataset.
func TestChaosIngest(t *testing.T) {
	seed := chaosSeed(t)
	ds := tinyDataset()
	faults := NewFaultSet(seed * 77)
	faults.Arm(FaultRdfSnapshot, 2)
	sys, err := Open(ds,
		WithNodes(3),
		WithPlanCache(64),
		WithWriteFaultInjection(faults),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const src = `SELECT * WHERE { ?x <http://knows> ?y . ?y <http://worksFor> ?o . }`

	maxPending := 0
	for i := 0; i < 40; i++ {
		ds.Add(fmt.Sprintf("http://chaos/s%d", i), "http://knows", fmt.Sprintf("http://chaos/o%d", i))
		if i%4 == 0 {
			ds.Add(fmt.Sprintf("http://chaos/o%d", i), "http://worksFor", "http://acme")
		}
		if n := sys.PendingWrites(); n > maxPending {
			maxPending = n
		}
		// Serving never fails: a deferred apply means the query runs
		// against the last applied snapshot, not a torn one.
		if _, err := sys.Run(ctx, src); err != nil {
			t.Fatalf("write %d: serving failed during deferred apply: %v", i, err)
		}
	}
	if faults.Fired(FaultRdfSnapshot) == 0 {
		t.Fatal("the rdf/snapshot fault never fired")
	}
	if maxPending == 0 {
		t.Fatal("no write was ever deferred — the fault site is not on the apply path")
	}
	if !sys.FlushWrites() {
		t.Fatal("faultless FlushWrites did not drain the queue")
	}
	if n := sys.PendingWrites(); n != 0 {
		t.Fatalf("%d pending writes after flush", n)
	}
	want, err := Reference(ds, mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sys.Run(ctx, src)
	if err != nil {
		t.Fatal(err)
	}
	if !chaosRowsEqual(got.Rows, want.Rows) {
		t.Fatalf("post-flush rows diverge from reference (%d vs %d)", len(got.Rows), len(want.Rows))
	}
}
