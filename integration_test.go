package sparqlopt

import (
	"context"
	"testing"

	"sparqlopt/internal/workload/lubm"
	"sparqlopt/internal/workload/uniprot"
)

// TestBenchmarkQueriesDistributedVsReference runs every benchmark
// query (L1–L10, U1–U5) through the full pipeline — stats collection,
// optimization, partitioning, distributed execution — and compares
// with the single-node reference answer.
func TestBenchmarkQueriesDistributedVsReference(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline sweep")
	}
	lds := lubm.Generate(lubm.Config{Universities: 7, Seed: 1, Compact: true})
	uds := uniprot.Generate(uniprot.Config{Proteins: 300, Seed: 2})

	type workload struct {
		ds    *Dataset
		names []string
		get   func(string) *Query
	}
	workloads := []workload{
		{lds, lubm.QueryNames, lubm.Query},
		{uds, uniprot.QueryNames, uniprot.Query},
	}
	for _, methodName := range []string{"hash-so", "path-bmc"} {
		m, err := PartitionMethod(methodName)
		if err != nil {
			t.Fatal(err)
		}
		for _, wl := range workloads {
			sys, err := Open(wl.ds, WithMethod(m), WithNodes(5))
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range wl.names {
				q := wl.get(name)
				want, err := Reference(wl.ds, q)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for _, algo := range []Algorithm{TDAuto, TDCMDP} {
					res, err := sys.OptimizeQuery(context.Background(), q, WithAlgorithm(algo))
					if err != nil {
						t.Fatalf("%s/%s/%v: optimize: %v", methodName, name, algo, err)
					}
					got, err := sys.Execute(context.Background(), res.Plan, q)
					if err != nil {
						t.Fatalf("%s/%s/%v: execute: %v", methodName, name, algo, err)
					}
					if len(got.Rows) != len(want.Rows) {
						t.Errorf("%s/%s/%v: %d rows, reference has %d",
							methodName, name, algo, len(got.Rows), len(want.Rows))
						continue
					}
					for i := range got.Rows {
						for j := range got.Rows[i] {
							if got.Rows[i][j] != want.Rows[i][j] {
								t.Errorf("%s/%s/%v: row %d differs", methodName, name, algo, i)
								break
							}
						}
					}
				}
			}
		}
	}
}

// TestPathPartitioningMakesBenchmarksLocal verifies the paper's
// headline §V-B observation: under Path-BMC every benchmark query is a
// local query, so TD-Auto's plans move zero rows.
func TestPathPartitioningMakesBenchmarksLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline sweep")
	}
	ds := lubm.Generate(lubm.Config{Universities: 2, Seed: 1, Compact: true})
	m, err := PartitionMethod("path-bmc")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := Open(ds, WithMethod(m), WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range lubm.QueryNames {
		q := lubm.Query(name)
		res, err := sys.OptimizeQuery(context.Background(), q, WithAlgorithm(TDAuto))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := sys.Execute(context.Background(), res.Plan, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// L3, L5, L6, L9, L10 mention constants anchored mid-path, so a
		// few queries keep one distributed join; the pure-variable
		// chains and stars must be fully local.
		switch name {
		case "L1", "L2", "L4", "L7":
			if out.Metrics.TransferredRows != 0 {
				t.Errorf("%s moved %d rows under path partitioning\n%s",
					name, out.Metrics.TransferredRows, res.Plan.Format())
			}
		}
	}
}
