package sparqlopt

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// cacheDataset builds a small social graph with enough predicate and
// constant variety to give eight distinct query shapes non-empty
// answers.
func cacheDataset() *Dataset {
	ds := NewDataset()
	people := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	orgs := []string{"acme", "globex"}
	for i, p := range people {
		ds.Add("http://"+p, "http://knows", "http://"+people[(i+1)%len(people)])
		ds.Add("http://"+p, "http://knows", "http://"+people[(i+2)%len(people)])
		ds.Add("http://"+p, "http://worksFor", "http://"+orgs[i%len(orgs)])
		ds.Add("http://"+p, "http://age", fmt.Sprintf("%d", 20+i))
	}
	for _, o := range orgs {
		ds.Add("http://"+o, "http://inCity", "http://berlin")
		ds.Add("http://"+o, "http://name", "n-"+o)
	}
	return ds
}

// Eight distinct fingerprints: different shapes, predicates and
// constant placements.
var cacheQueries = []string{
	`SELECT * WHERE { ?x <http://knows> ?y . }`,
	`SELECT * WHERE { ?x <http://knows> ?y . ?y <http://worksFor> ?o . }`,
	`SELECT * WHERE { ?x <http://worksFor> ?o . ?o <http://inCity> <http://berlin> . }`,
	`SELECT * WHERE { ?x <http://knows> ?y . ?x <http://knows> ?z . }`,
	`SELECT * WHERE { <http://alice> <http://knows> ?y . ?y <http://age> ?a . }`,
	`SELECT * WHERE { ?x <http://worksFor> ?o . ?o <http://name> ?n . }`,
	`SELECT * WHERE { ?x <http://knows> ?y . ?y <http://knows> ?z . ?z <http://worksFor> ?o . }`,
	`SELECT * WHERE { ?o <http://inCity> ?c . ?o <http://name> ?n . }`,
}

func sameRows(t *testing.T, label string, got, want *ExecResult) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("%s: row %d width %d, want %d", label, i, len(got.Rows[i]), len(want.Rows[i]))
		}
		for j := range got.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("%s: row %d col %d: %v, want %v", label, i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
}

// TestPlanCacheConcurrent hammers one cached System with 64 goroutines
// mixing 8 query fingerprints. Every result must be bit-identical to
// the uncached system's answer, and each fingerprint must be optimized
// exactly once per epoch. Run under -race this also exercises the
// singleflight and shard locking.
func TestPlanCacheConcurrent(t *testing.T) {
	ds := cacheDataset()
	cached, err := Open(ds, WithNodes(4), WithPlanCache(128))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Open(ds, WithNodes(4))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*ExecResult, len(cacheQueries))
	for i, src := range cacheQueries {
		if want[i], err = plain.Run(context.Background(), src, WithAlgorithm(TDCMD)); err != nil {
			t.Fatalf("uncached %d: %v", i, err)
		}
		if want[i].CacheInfo.Enabled {
			t.Fatal("uncached system reports cache enabled")
		}
	}

	const workers = 64
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < len(cacheQueries); k++ {
				i := (w + k) % len(cacheQueries)
				got, err := cached.Run(context.Background(), cacheQueries[i], WithAlgorithm(TDCMD))
				if err != nil {
					errc <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
				if len(got.Rows) != len(want[i].Rows) {
					errc <- fmt.Errorf("worker %d query %d: %d rows, want %d",
						w, i, len(got.Rows), len(want[i].Rows))
					return
				}
				for r := range got.Rows {
					for c := range got.Rows[r] {
						if got.Rows[r][c] != want[i].Rows[r][c] {
							errc <- fmt.Errorf("worker %d query %d: row %d differs", w, i, r)
							return
						}
					}
				}
				if !got.CacheInfo.Enabled {
					errc <- fmt.Errorf("worker %d query %d: cache not enabled", w, i)
					return
				}
				if got.CacheInfo.Hit && got.EnumeratedJoins() != 0 {
					errc <- fmt.Errorf("worker %d query %d: hit enumerated %d joins",
						w, i, got.EnumeratedJoins())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st := cached.CacheStats()
	if st.Misses != int64(len(cacheQueries)) {
		t.Errorf("%d misses, want exactly one optimization per fingerprint (%d)",
			st.Misses, len(cacheQueries))
	}
	if got, wantN := st.Hits+st.Misses, int64(workers*len(cacheQueries)); got != wantN {
		t.Errorf("hits+misses = %d, want %d", got, wantN)
	}

	// Predicate-scoped invalidation: a write touching only <knows>
	// re-optimizes exactly the fingerprints whose predicate sets
	// include it; the three shapes over {worksFor, inCity, name} keep
	// serving their cached plans without re-entering the optimizer.
	touchesKnows := map[int]bool{0: true, 1: true, 3: true, 4: true, 6: true}
	ds.Add("http://zed", "http://knows", "http://alice")
	for i, src := range cacheQueries {
		res, err := cached.Run(context.Background(), src, WithAlgorithm(TDCMD))
		if err != nil {
			t.Fatal(err)
		}
		if touchesKnows[i] && res.CacheInfo.Hit {
			t.Fatalf("stale plan served after a write to its predicate: %q", src)
		}
		if !touchesKnows[i] {
			if !res.CacheInfo.Hit {
				t.Fatalf("untouched-predicate shape re-optimized: %q", src)
			}
			if res.EnumeratedJoins() != 0 {
				t.Fatalf("untouched-predicate shape enumerated %d joins: %q", res.EnumeratedJoins(), src)
			}
		}
	}
	st = cached.CacheStats()
	if want := int64(len(cacheQueries) + len(touchesKnows)); st.Misses != want {
		t.Errorf("%d misses after the write, want %d (only touched shapes re-optimize)", st.Misses, want)
	}
	if want := int64(len(cacheQueries) - len(touchesKnows)); st.Retained != want {
		t.Errorf("%d retained entries, want %d", st.Retained, want)
	}
	if want := int64(len(touchesKnows)); st.Invalidations != want {
		t.Errorf("%d invalidations after the write, want %d", st.Invalidations, want)
	}
	// And the re-optimized plans are cached again.
	res, err := cached.Run(context.Background(), cacheQueries[0], WithAlgorithm(TDCMD))
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheInfo.Hit {
		t.Error("no hit at the new epoch")
	}
}

// TestPlanCacheTemplateReuse verifies that an isomorphic query —
// renamed variables, shuffled patterns, a different constant — is
// served from the cached template and still returns exactly the rows
// the reference evaluator produces for *its* constants.
func TestPlanCacheTemplateReuse(t *testing.T) {
	ds := cacheDataset()
	sys, err := Open(ds, WithNodes(4), WithPlanCache(32))
	if err != nil {
		t.Fatal(err)
	}
	seed := `SELECT * WHERE { <http://alice> <http://knows> ?y . ?y <http://age> ?a . }`
	if _, err := sys.Run(context.Background(), seed, WithAlgorithm(TDAuto)); err != nil {
		t.Fatal(err)
	}
	// Same template, different constant, shuffled + renamed.
	iso := `SELECT * WHERE { ?p <http://age> ?n . <http://bob> <http://knows> ?p . }`
	got, err := sys.Run(context.Background(), iso, WithAlgorithm(TDAuto))
	if err != nil {
		t.Fatal(err)
	}
	if !got.CacheInfo.Hit {
		t.Fatal("isomorphic query missed the cache")
	}
	if got.EnumeratedJoins() != 0 {
		t.Fatalf("cache hit enumerated %d joins, want 0", got.EnumeratedJoins())
	}
	q, err := ParseQuery(iso)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("test query returns no rows; constants don't exercise the remap")
	}
	sameRows(t, "isomorphic constants", got, want)
}

// TestPlanCacheDisabledByDefault: without WithPlanCache the serving
// path is unchanged and reports zero counters.
func TestPlanCacheDisabledByDefault(t *testing.T) {
	sys, err := Open(cacheDataset(), WithNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(context.Background(), cacheQueries[1], WithAlgorithm(TDAuto))
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheInfo.Enabled || res.CacheInfo.Hit {
		t.Fatalf("cache info %+v on an uncached system", res.CacheInfo)
	}
	if res.EnumeratedJoins() == 0 {
		t.Error("uncached run reported zero enumerated joins")
	}
	if st := sys.CacheStats(); st != (CacheCounters{}) {
		t.Errorf("counters %+v on an uncached system", st)
	}
}

// TestPlanCacheAllAlgorithms runs each cacheable enumerator through
// the cached serving path twice and checks hit behavior plus row
// equality against the reference evaluator.
func TestPlanCacheAllAlgorithms(t *testing.T) {
	ds := cacheDataset()
	sys, err := Open(ds, WithNodes(4), WithPlanCache(64))
	if err != nil {
		t.Fatal(err)
	}
	src := cacheQueries[6]
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{TDCMD, TDCMDP, HGRTDCMD, TDAuto} {
		cold, err := sys.Run(context.Background(), src, WithAlgorithm(algo))
		if err != nil {
			t.Fatalf("%v cold: %v", algo, err)
		}
		if cold.CacheInfo.Hit {
			t.Fatalf("%v: cold run hit — algorithms must not share plan slots", algo)
		}
		warm, err := sys.Run(context.Background(), src, WithAlgorithm(algo))
		if err != nil {
			t.Fatalf("%v warm: %v", algo, err)
		}
		if !warm.CacheInfo.Hit {
			t.Fatalf("%v: warm run missed", algo)
		}
		sameRows(t, fmt.Sprintf("%v cold", algo), cold, want)
		sameRows(t, fmt.Sprintf("%v warm", algo), warm, want)
	}
	// One stats snapshot serves all four algorithms.
	if st := sys.CacheStats(); st.StatsMisses != 1 {
		t.Errorf("%d stats collections for one fingerprint, want 1", st.StatsMisses)
	}
}
