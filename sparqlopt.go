// Package sparqlopt is a parallel SPARQL query optimizer and simulated
// execution engine reproducing "Parallel SPARQL Query Optimization"
// (Wu, Zhou, Jin, Deshpande — ICDE 2017).
//
// The library optimizes basic-graph-pattern SPARQL queries into k-ary
// bushy plans over partitioned RDF data. It provides:
//
//   - the paper's optimal-efficiency top-down plan enumerator TD-CMD
//     and its heuristics TD-CMDP, HGR-TD-CMD and TD-Auto;
//   - the baseline optimizers MSC (CliqueSquare-style) and DP-Bushy it
//     is evaluated against, plus a binary-only DP for ablations;
//   - a generic data partitioning model with four concrete methods
//     (hash on subject+object, 2-hop forward semantic hash, path
//     partitioning, undirected one-hop with a graph partitioner);
//   - a simulated shared-nothing cluster that executes the plans with
//     local, broadcast and repartition joins.
//
// Quick start:
//
//	ds := sparqlopt.NewDataset()
//	ds.Add("http://a", "http://knows", "http://b")
//	sys, _ := sparqlopt.Open(ds, sparqlopt.WithNodes(4))
//	res, _ := sys.Run(context.Background(),
//	    `SELECT * WHERE { ?x <http://knows> ?y . }`, sparqlopt.TDAuto)
//	fmt.Println(res.Rows)
package sparqlopt

import (
	"context"
	"fmt"
	"io"

	"sparqlopt/internal/cost"
	"sparqlopt/internal/engine"
	"sparqlopt/internal/ntriples"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/plancache"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// Re-exported core types. The concrete implementations live under
// internal/; these aliases are the supported API surface.
type (
	// Dataset is a dictionary-encoded set of RDF triples.
	Dataset = rdf.Dataset
	// Query is a parsed basic-graph-pattern SELECT query.
	Query = sparql.Query
	// Plan is a physical k-ary bushy query plan.
	Plan = plan.Node
	// Algorithm selects an optimization algorithm.
	Algorithm = opt.Algorithm
	// Method is an RDF data partitioning method.
	Method = partition.Method
	// CostParams are the cost-model constants of the paper's Table II.
	CostParams = cost.Params
	// OptimizeResult carries the plan plus search-space counters.
	OptimizeResult = opt.Result
	// ExecResult carries distinct result rows plus execution metrics.
	ExecResult = engine.Result
	// CacheInfo describes plan-cache behavior of one Run (on ExecResult).
	CacheInfo = engine.CacheInfo
	// CacheCounters is a snapshot of the plan cache's cumulative
	// hit/miss/evict/singleflight counters.
	CacheCounters = plancache.Counters
)

// The optimization algorithms of the paper.
const (
	// TDCMD is the exhaustive top-down enumeration (optimal plans).
	TDCMD = opt.TDCMD
	// TDCMDP applies the three pruning rules of §IV-A.
	TDCMDP = opt.TDCMDP
	// HGRTDCMD reduces the join graph before enumerating (§IV-B).
	HGRTDCMD = opt.HGRTDCMD
	// TDAuto picks among the above via the decision tree of §IV-C.
	TDAuto = opt.TDAuto
)

// NewDataset returns an empty dataset.
func NewDataset() *Dataset { return rdf.NewDataset() }

// ReadNTriples loads an N-Triples stream.
func ReadNTriples(r io.Reader) (*Dataset, error) { return ntriples.Read(r) }

// WriteNTriples serializes a dataset as N-Triples.
func WriteNTriples(w io.Writer, ds *Dataset) error { return ntriples.Write(w, ds) }

// ParseQuery parses the supported SPARQL subset (PREFIX + SELECT over
// a basic graph pattern).
func ParseQuery(src string) (*Query, error) { return sparql.Parse(src) }

// PartitionMethod returns a built-in partitioning method by name:
// "hash-so", "2f", "path-bmc" or "un-1hop".
func PartitionMethod(name string) (Method, error) { return partition.ByName(name) }

// DefaultCostParams returns the calibrated constants of Table II on a
// 10-node cluster.
func DefaultCostParams() CostParams { return cost.Default }

// System is a partitioned dataset ready to optimize and execute
// queries — the in-process analogue of the paper's prototype cluster.
type System struct {
	ds          *Dataset
	method      Method
	params      CostParams
	sampleRate  float64
	parallelism int
	placement   *partition.Placement
	engine      *engine.Engine
	cache       *plancache.Cache // nil = caching disabled
}

// Option configures Open.
type Option func(*openConfig)

type openConfig struct {
	method      Method
	params      CostParams
	nodes       int
	sampleRate  float64
	parallelism int
	planCache   int
}

// WithMethod selects the data partitioning method (default HashSO).
func WithMethod(m Method) Option { return func(c *openConfig) { c.method = m } }

// WithNodes sets the simulated cluster size (default 10, as in the
// paper's testbed).
func WithNodes(n int) Option { return func(c *openConfig) { c.nodes = n } }

// WithCostParams overrides the cost-model constants.
func WithCostParams(p CostParams) Option { return func(c *openConfig) { c.params = p } }

// WithParallelism bounds the worker goroutines of both the optimizer
// (plan enumeration) and the execution engine (independent join
// subtrees, shuffle scatters): 0 means GOMAXPROCS, 1 forces the
// sequential paths. Plans, results and metrics are identical at every
// setting — the knob only changes wall time.
func WithParallelism(p int) Option { return func(c *openConfig) { c.parallelism = p } }

// WithPlanCache enables the serving-path plan cache with capacity for
// (at least) n query fingerprints; n <= 0 (the default) disables
// caching. With the cache enabled, System.Run canonicalizes each
// query, serves repeats of the same query shape from a cached plan
// template (skipping statistics collection and plan enumeration
// entirely), and deduplicates concurrent optimizations of one shape
// through a singleflight layer. Cached plans are tagged with the
// dataset epoch and re-optimized after any dataset mutation. Cached
// and uncached runs return bit-identical rows; a cached plan may be
// suboptimal for a query whose constants are much more or less
// selective than those of the run that produced the template.
func WithPlanCache(n int) Option { return func(c *openConfig) { c.planCache = n } }

// WithSampledStats makes Optimize collect statistics from a
// systematic sample of the dataset instead of full scans — the
// trade-off for very large datasets. rate must be in (0, 1]; the
// default (and rate 1) is exact collection.
func WithSampledStats(rate float64) Option { return func(c *openConfig) { c.sampleRate = rate } }

// Open partitions the dataset and builds the execution engine.
func Open(ds *Dataset, opts ...Option) (*System, error) {
	cfg := openConfig{method: partition.HashSO{}, params: cost.Default, nodes: cost.Default.Nodes, sampleRate: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.nodes <= 0 {
		return nil, fmt.Errorf("sparqlopt: cluster size must be positive")
	}
	cfg.params.Nodes = cfg.nodes
	placement, err := cfg.method.Partition(ds, cfg.nodes)
	if err != nil {
		return nil, err
	}
	if cfg.sampleRate <= 0 || cfg.sampleRate > 1 {
		return nil, fmt.Errorf("sparqlopt: sampling rate %v outside (0, 1]", cfg.sampleRate)
	}
	eng := engine.New(ds.Dict, placement)
	eng.SetParallelism(cfg.parallelism)
	return &System{
		ds:          ds,
		method:      cfg.method,
		params:      cfg.params,
		sampleRate:  cfg.sampleRate,
		parallelism: cfg.parallelism,
		placement:   placement,
		engine:      eng,
		cache:       plancache.New(cfg.planCache),
	}, nil
}

// Method returns the partitioning method in use.
func (s *System) Method() Method { return s.method }

// ReplicationFactor reports how much the partitioning replicated the
// data across nodes.
func (s *System) ReplicationFactor() float64 {
	return s.placement.ReplicationFactor(s.ds.Len())
}

// Optimize parses and optimizes a query with the chosen algorithm.
// The query is parsed exactly once and the parsed form is shared with
// statistics collection and graph-view construction (callers that
// also execute should prefer Run, or parse once themselves and use
// OptimizeQuery + Execute, to avoid re-parsing).
func (s *System) Optimize(ctx context.Context, query string, algo Algorithm) (*OptimizeResult, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return s.OptimizeQuery(ctx, q, algo)
}

// OptimizeQuery optimizes an already-parsed query. When the plan
// cache is enabled, statistics snapshots are reused across queries of
// the same fingerprint and epoch (the full plan cache applies only to
// Run, the serving path).
func (s *System) OptimizeQuery(ctx context.Context, q *Query, algo Algorithm) (*OptimizeResult, error) {
	in, err := s.input(q)
	if err != nil {
		return nil, err
	}
	return opt.Optimize(ctx, in, algo)
}

// collect gathers per-pattern statistics for q, going through the
// cache's snapshot layer when caching is enabled.
func (s *System) collect(q *Query) (*stats.Stats, error) {
	if s.cache == nil {
		return stats.CollectSampled(s.ds, q, s.sampleRate)
	}
	st, _, err := s.cache.StatsFor(q, s.ds.Epoch(), func(q *sparql.Query) (*stats.Stats, error) {
		return stats.CollectSampled(s.ds, q, s.sampleRate)
	})
	return st, err
}

// input assembles the optimizer input for a parsed query, collecting
// statistics itself.
func (s *System) input(q *Query) (*opt.Input, error) {
	st, err := s.collect(q)
	if err != nil {
		return nil, err
	}
	return s.inputWithStats(q, st)
}

// inputWithStats assembles the optimizer input around an existing
// statistics snapshot — the single construction point both the cached
// and uncached serving paths funnel through, so a query is parsed and
// its views are built exactly once per Run.
func (s *System) inputWithStats(q *Query, st *stats.Stats) (*opt.Input, error) {
	views, err := querygraph.Build(q)
	if err != nil {
		return nil, err
	}
	est, err := stats.NewEstimator(q, st)
	if err != nil {
		return nil, err
	}
	return &opt.Input{Query: q, Views: views, Est: est, Params: s.params, Method: s.method, Parallelism: s.parallelism}, nil
}

// Execute runs a previously optimized plan on the simulated cluster.
func (s *System) Execute(ctx context.Context, p *Plan, q *Query) (*ExecResult, error) {
	return s.engine.Execute(ctx, p, q)
}

// Run optimizes and executes in one step — the serving path. The
// query text is parsed exactly once; the parsed form feeds
// canonicalization, optimization and execution. With WithPlanCache,
// repeats of a query shape skip statistics collection and plan
// enumeration entirely (ExecResult.Cache reports what happened).
func (s *System) Run(ctx context.Context, query string, algo Algorithm) (*ExecResult, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return s.RunQuery(ctx, q, algo)
}

// RunQuery optimizes and executes an already-parsed query.
func (s *System) RunQuery(ctx context.Context, q *Query, algo Algorithm) (*ExecResult, error) {
	if s.cache == nil {
		res, err := s.OptimizeQuery(ctx, q, algo)
		if err != nil {
			return nil, err
		}
		out, err := s.engine.Execute(ctx, res.Plan, q)
		if err != nil {
			return nil, err
		}
		out.Cache = engine.CacheInfo{EnumeratedJoins: res.Counter.CMDs}
		return out, nil
	}
	epoch := s.ds.Epoch()
	res, info, err := s.cache.Optimize(ctx, q, algo, epoch,
		func(q *sparql.Query) (*stats.Stats, error) {
			return stats.CollectSampled(s.ds, q, s.sampleRate)
		},
		func(ctx context.Context, q *sparql.Query, st *stats.Stats) (*opt.Result, error) {
			in, err := s.inputWithStats(q, st)
			if err != nil {
				return nil, err
			}
			return opt.Optimize(ctx, in, algo)
		})
	if err != nil {
		return nil, err
	}
	out, err := s.engine.Execute(ctx, res.Plan, q)
	if err != nil {
		return nil, err
	}
	out.Cache = engine.CacheInfo{Enabled: true, Hit: info.Hit, Shared: info.Shared, Epoch: info.Epoch}
	if !info.Hit {
		out.Cache.EnumeratedJoins = res.Counter.CMDs
	}
	return out, nil
}

// CacheStats returns the plan cache's cumulative counters; the zero
// snapshot when caching is disabled.
func (s *System) CacheStats() CacheCounters {
	if s.cache == nil {
		return CacheCounters{}
	}
	return s.cache.Counters()
}

// Term resolves a result value back to its term string.
func (s *System) Term(id rdf.TermID) string { return s.ds.Dict.Term(id) }

// FormatResult renders an execution result as tab-separated lines
// with a header row.
func (s *System) FormatResult(res *ExecResult) string {
	out := ""
	for i, v := range res.Vars {
		if i > 0 {
			out += "\t"
		}
		out += "?" + v
	}
	out += "\n"
	for _, row := range res.Rows {
		for i, id := range row {
			if i > 0 {
				out += "\t"
			}
			out += s.ds.Dict.Term(id)
		}
		out += "\n"
	}
	return out
}

// Reference executes the query on a single node over the unpartitioned
// dataset — ground truth for validating distributed execution.
func Reference(ds *Dataset, q *Query) (*ExecResult, error) {
	return engine.Reference(ds, q)
}
