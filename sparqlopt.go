// Package sparqlopt is a parallel SPARQL query optimizer and simulated
// execution engine reproducing "Parallel SPARQL Query Optimization"
// (Wu, Zhou, Jin, Deshpande — ICDE 2017).
//
// The library optimizes basic-graph-pattern SPARQL queries into k-ary
// bushy plans over partitioned RDF data. It provides:
//
//   - the paper's optimal-efficiency top-down plan enumerator TD-CMD
//     and its heuristics TD-CMDP, HGR-TD-CMD and TD-Auto;
//   - the baseline optimizers MSC (CliqueSquare-style) and DP-Bushy it
//     is evaluated against, plus a binary-only DP for ablations;
//   - a generic data partitioning model with four concrete methods
//     (hash on subject+object, 2-hop forward semantic hash, path
//     partitioning, undirected one-hop with a graph partitioner);
//   - a simulated shared-nothing cluster that executes the plans with
//     local, broadcast and repartition joins;
//   - an observability layer (WithObservability): Prometheus-style
//     metrics, per-query lifecycle traces and a slow-query log.
//
// Quick start:
//
//	ds := sparqlopt.NewDataset()
//	ds.Add("http://a", "http://knows", "http://b")
//	sys, _ := sparqlopt.Open(ds, sparqlopt.WithNodes(4))
//	res, _ := sys.Run(context.Background(),
//	    `SELECT * WHERE { ?x <http://knows> ?y . }`)
//	fmt.Println(res.Rows)
//
// Run defaults to the TD-Auto algorithm; per-call behavior is set with
// RunOptions (WithAlgorithm, WithDeadline, WithTraceSink,
// WithoutCache). A bare Algorithm is itself a RunOption, so the older
// positional call style Run(ctx, src, sparqlopt.TDCMD) still compiles
// and behaves identically.
package sparqlopt

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sparqlopt/internal/cost"
	"sparqlopt/internal/engine"
	"sparqlopt/internal/ntriples"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/partition/adaptive"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/plancache"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/resilience/faultinject"
	"sparqlopt/internal/resilience/health"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// Re-exported core types. The concrete implementations live under
// internal/; these aliases are the supported API surface.
type (
	// Dataset is a dictionary-encoded set of RDF triples.
	Dataset = rdf.Dataset
	// Query is a parsed basic-graph-pattern SELECT query.
	Query = sparql.Query
	// Plan is a physical k-ary bushy query plan.
	Plan = plan.Node
	// Algorithm selects an optimization algorithm.
	Algorithm = opt.Algorithm
	// Method is an RDF data partitioning method.
	Method = partition.Method
	// CostParams are the cost-model constants of the paper's Table II.
	CostParams = cost.Params
	// OptimizeResult carries the plan plus search-space counters.
	OptimizeResult = opt.Result
	// ExecResult carries distinct result rows plus execution metrics.
	ExecResult = engine.Result
	// CacheInfo describes plan-cache behavior of one Run (on ExecResult).
	CacheInfo = engine.CacheInfo
	// CacheCounters is a snapshot of the plan cache's cumulative
	// hit/miss/evict/singleflight counters.
	CacheCounters = plancache.Counters
	// RunOption configures one serving call (Run/Optimize and friends).
	RunOption = opt.RunOption
	// Registry is a metrics registry with Prometheus text exposition.
	Registry = obs.Registry
	// Trace is the recorded lifecycle of one serving call.
	Trace = obs.Trace
	// Span is one timed step of a trace.
	Span = obs.Span
	// SlowQueryEntry is one slow-query log record.
	SlowQueryEntry = obs.SlowQueryEntry
	// AdvisorStats is a snapshot of the adaptive-repartitioning
	// advisor's counters (see System.AdvisorStats).
	AdvisorStats = adaptive.Stats
	// ParseError is the typed failure of ParseQuery/Run on malformed
	// query text; it carries the byte offset of the problem.
	ParseError = sparql.ParseError
	// PhaseError annotates a cancellation with the query phase it
	// interrupted; errors.Is(err, context.Canceled/DeadlineExceeded)
	// still works through it.
	PhaseError = obs.PhaseError
	// OverloadError is the typed rejection of admission control; it
	// matches ErrOverloaded and carries a RetryAfter hint.
	OverloadError = resilience.OverloadError
	// BudgetError is the typed failure of a memory-budget trip; it
	// matches ErrBudgetExceeded and names the operator or phase that
	// asked for the memory.
	BudgetError = resilience.BudgetError
	// PanicError is a worker panic recovered into an error, stack
	// included. The panicking query fails; the process survives.
	PanicError = resilience.PanicError
	// UnavailableError is the typed fast failure of a query that
	// touched a dead node's unreplicated fragment; it matches
	// ErrUnavailable and carries the dead node set and a retry hint.
	UnavailableError = resilience.UnavailableError
	// NodeStatus is one simulated node's health as tracked by the
	// failover breakers (see System.NodeHealth).
	NodeStatus = health.NodeStatus
	// NodeState is a node breaker's position in the failure lifecycle:
	// NodeHealthy, NodeOpen (considered dead) or NodeHalfOpen (probing).
	NodeState = health.State
	// FaultSet is a deterministic fault-injection plan for chaos tests:
	// armed sites fire as a pure function of (seed, site, hit count).
	FaultSet = faultinject.Set
	// FaultSite names one instrumented fault-injection point; the
	// Fault* constants and FaultNodeScan/FaultNodeShuffle produce them.
	FaultSite = faultinject.Site
)

// Node breaker states (see NodeState).
const (
	NodeHealthy  = health.Healthy
	NodeOpen     = health.Open
	NodeHalfOpen = health.HalfOpen
)

// Typed-failure sentinels of the resilient serving path, for errors.Is.
var (
	// ErrOverloaded matches admission-control rejections.
	ErrOverloaded = resilience.ErrOverloaded
	// ErrBudgetExceeded matches memory-budget trips.
	ErrBudgetExceeded = resilience.ErrBudgetExceeded
	// ErrUnavailable matches queries failed fast because a dead node's
	// fragment had no live replica.
	ErrUnavailable = resilience.ErrUnavailable
)

// NewFaultSet returns a deterministic fault-injection plan seeded with
// seed; arm sites on it and pass it to a call with WithFaultInjection.
// See the Fault* site constants for where faults can fire.
func NewFaultSet(seed int64) *FaultSet { return faultinject.New(seed) }

// Fault-injection sites accepted by FaultSet.Arm and friends.
const (
	// FaultOptPanic panics inside an optimizer enumeration worker.
	FaultOptPanic = faultinject.OptPanic
	// FaultOptBudget forces a memo budget trip during enumeration.
	FaultOptBudget = faultinject.OptBudget
	// FaultEnginePanic panics inside an engine node worker.
	FaultEnginePanic = faultinject.EnginePanic
	// FaultEngineSlow stalls an operator (cancellably) by an armed delay.
	FaultEngineSlow = faultinject.EngineSlow
	// FaultEngineBudget forces a budget trip at an engine operator.
	FaultEngineBudget = faultinject.EngineBudget
	// FaultCacheLookup fails the plan-cache lookup (the serving path
	// degrades to a cache bypass).
	FaultCacheLookup = faultinject.CacheLookup
	// FaultRdfSnapshot panics while a committed write is applied to the
	// serving snapshot; the apply is deferred (see System.FlushWrites),
	// never lost, and serving continues on the previous snapshot.
	FaultRdfSnapshot = faultinject.RdfSnapshot
)

// FaultNodeScan returns the node-scoped site "node/<i>/scan": while
// armed and firing, node i fails to serve fragment scans, simulating
// the node's death on the read path. With WithNodeFailover the engine
// retries, then serves the scan from replicas (or fails fast with a
// typed *UnavailableError when none cover it); without it the query
// fails immediately.
func FaultNodeScan(node int) FaultSite { return faultinject.NodeScan(node) }

// FaultNodeShuffle returns the node-scoped site "node/<i>/shuffle":
// while armed and firing, node i fails to accept repartition-join
// scatter partitions; failover re-homes its buckets onto healthy
// workers.
func FaultNodeShuffle(node int) FaultSite { return faultinject.NodeShuffle(node) }

// The optimization algorithms of the paper.
const (
	// TDCMD is the exhaustive top-down enumeration (optimal plans).
	TDCMD = opt.TDCMD
	// TDCMDP applies the three pruning rules of §IV-A.
	TDCMDP = opt.TDCMDP
	// HGRTDCMD reduces the join graph before enumerating (§IV-B).
	HGRTDCMD = opt.HGRTDCMD
	// TDAuto picks among the above via the decision tree of §IV-C.
	TDAuto = opt.TDAuto
	// Greedy is the left-deep greedy baseline — the last rung of the
	// degradation ladder: near-zero optimization cost, no optimality.
	Greedy = opt.Greedy
)

// NewDataset returns an empty dataset.
func NewDataset() *Dataset { return rdf.NewDataset() }

// ReadNTriples loads an N-Triples stream.
func ReadNTriples(r io.Reader) (*Dataset, error) { return ntriples.Read(r) }

// WriteNTriples serializes a dataset as N-Triples.
func WriteNTriples(w io.Writer, ds *Dataset) error { return ntriples.Write(w, ds) }

// ParseQuery parses the supported SPARQL subset (PREFIX + SELECT over
// a basic graph pattern).
func ParseQuery(src string) (*Query, error) { return sparql.Parse(src) }

// PartitionMethod returns a built-in partitioning method by name:
// "hash-so", "2f", "path-bmc" or "un-1hop".
func PartitionMethod(name string) (Method, error) { return partition.ByName(name) }

// DefaultCostParams returns the calibrated constants of Table II on a
// 10-node cluster.
func DefaultCostParams() CostParams { return cost.Default }

// AlgorithmByName maps a serving algorithm's CLI name — "td-cmd",
// "td-cmdp", "hgr-td-cmd", "td-auto", "greedy" — to its Algorithm
// value. Both CLIs and the HTTP endpoint accept exactly these names.
func AlgorithmByName(name string) (Algorithm, bool) {
	switch name {
	case "td-cmd":
		return TDCMD, true
	case "td-cmdp":
		return TDCMDP, true
	case "hgr-td-cmd":
		return HGRTDCMD, true
	case "td-auto":
		return TDAuto, true
	case "greedy":
		return Greedy, true
	}
	return 0, false
}

// The package has three option families, one per configuration scope:
//
//   - Option configures a System for its lifetime and is passed to
//     Open: data placement (WithMethod, WithNodes), execution shape
//     (WithParallelism, WithFactorization, WithCostParams), serving
//     infrastructure (WithPlanCache, WithExecutionSharing,
//     WithAdmissionControl, WithMemoryBudget, WithAdaptivePartitioning,
//     WithScopedInvalidation, WithSampledStats) and observability
//     (WithObservability, WithWriteFaultInjection).
//
//   - RunOption configures one serving call and is passed to Run,
//     RunStream, Optimize and friends: WithAlgorithm (or a bare
//     Algorithm value — both CLIs accept the same names), WithLimit,
//     WithDeadline, WithOptimizerTimeout, WithoutCache, WithTraceSink,
//     WithFaultInjection.
//
//   - ObsOption configures the observability layer inside
//     WithObservability: WithMetricsRegistry, WithSlowQueryLog.
//
// Every option family ignores nil and zero values where that reads as
// "default", so call sites list only what they change.

// WithAlgorithm selects the optimization algorithm for one call
// (default TD-Auto). Passing a bare Algorithm value is equivalent.
func WithAlgorithm(a Algorithm) RunOption {
	return opt.RunOptionFunc(func(s *opt.RunSettings) { s.Algorithm = a })
}

// WithDeadline bounds one call with a per-call timeout, layered on any
// deadline ctx already carries. On expiry the error wraps
// context.DeadlineExceeded and names the query phase it interrupted.
func WithDeadline(d time.Duration) RunOption {
	return opt.RunOptionFunc(func(s *opt.RunSettings) { s.Deadline = d })
}

// WithTraceSink enables lifecycle tracing for one call: the completed
// trace (parse → cache lookup → stats → enumerate → execute, with
// per-operator spans) is handed to sink before the call returns.
// Tracing works with or without WithObservability.
func WithTraceSink(sink func(*Trace)) RunOption {
	return opt.RunOptionFunc(func(s *opt.RunSettings) { s.TraceSink = sink })
}

// WithoutCache bypasses the plan cache for one call: the query is
// optimized from scratch and the result is not stored.
func WithoutCache() RunOption {
	return opt.RunOptionFunc(func(s *opt.RunSettings) { s.NoCache = true })
}

// WithOptimizerTimeout bounds plan optimization alone (statistics and
// enumeration), not execution. Unlike WithDeadline, expiry here is
// degradable: the serving path retries down its fallback ladder
// (TD-CMDP, then the greedy baseline) instead of failing the query,
// and ExecResult.Degraded records what happened.
func WithOptimizerTimeout(d time.Duration) RunOption {
	return opt.RunOptionFunc(func(s *opt.RunSettings) { s.OptTimeout = d })
}

// WithFaultInjection arms deterministic fault injection for one call —
// the chaos-testing hook. A nil set is a no-op. Production callers
// never pass this; the sites cost one nil check each when disarmed.
func WithFaultInjection(f *FaultSet) RunOption {
	return opt.RunOptionFunc(func(s *opt.RunSettings) { s.Faults = f })
}

// WithLimit caps one call at the first n result rows (n <= 0 means
// unlimited, the default). The cap applies to the engine's
// deterministic emission order — the order RunStream yields — before
// Run's final sort, so streaming and materializing calls agree on
// which rows a limit keeps. Reaching the limit is a clean end of the
// stream, not an error, and it is part of a call's identity for
// execution sharing.
func WithLimit(n int64) RunOption {
	return opt.RunOptionFunc(func(s *opt.RunSettings) { s.Limit = n })
}

// System is a partitioned dataset ready to optimize and execute
// queries — the in-process analogue of the paper's prototype cluster.
type System struct {
	ds          *Dataset
	method      Method
	params      CostParams
	sampleRate  float64
	parallelism int
	placement   *partition.Placement
	engine      *engine.Engine
	cache       *plancache.Cache      // nil = caching disabled
	share       *plancache.ShareTable // nil = execution sharing disabled
	obs         *obsState             // nil = observability disabled
	optInst     *opt.Instruments      // nil when observability is disabled

	adm     *resilience.Admission   // nil = admission control disabled
	budget  *resilience.Budget      // nil = memory budgets disabled
	resInst *resilience.Instruments // nil when observability is disabled

	advisor      *adaptive.Advisor // nil = adaptive repartitioning disabled
	adaptiveSync bool              // apply migrations on the serving goroutine
	placeMu      sync.RWMutex      // guards placement once migrations can swap it
	migMu        sync.Mutex        // serializes migration rounds
	migWG        sync.WaitGroup    // tracks in-flight background migrations

	health    *health.Tracker // nil = node failover disabled
	recFlight atomic.Bool     // collapses concurrent recovery triggers into one round

	tracker     *stats.Tracker // incremental per-predicate statistics
	writeMu     sync.Mutex     // serializes write-delta applies onto the serving snapshot
	pending     []rdf.WriteDelta
	writeFaults *FaultSet // nil outside chaos tests
	unhook      func()    // unregisters the dataset commit hook
}

// obsState bundles the observability wiring of one System: the metrics
// registry, the root serving-path instruments and the slow-query log.
type obsState struct {
	registry     *obs.Registry
	slowLog      *obs.SlowLog
	queries      *obs.Counter
	queryErrors  *obs.Counter
	querySeconds *obs.Histogram
}

// Option configures Open.
type Option func(*openConfig)

type openConfig struct {
	method        Method
	params        CostParams
	nodes         int
	sampleRate    float64
	parallelism   int
	planCache     int
	maxConcurrent int
	maxQueued     int
	memPerQuery   int64
	memTotal      int64
	execSharing   bool
	obs           *obsConfig
	adaptive      *AdaptiveConfig
	scopedOff     bool
	writeFaults   *FaultSet
	failover      *NodeFailoverConfig
}

type obsConfig struct {
	registry      *obs.Registry
	slowCap       int
	slowThreshold time.Duration
}

// WithMethod selects the data partitioning method (default HashSO).
func WithMethod(m Method) Option { return func(c *openConfig) { c.method = m } }

// WithNodes sets the simulated cluster size (default 10, as in the
// paper's testbed).
func WithNodes(n int) Option { return func(c *openConfig) { c.nodes = n } }

// WithCostParams overrides the cost-model constants.
func WithCostParams(p CostParams) Option { return func(c *openConfig) { c.params = p } }

// WithParallelism bounds the worker goroutines of both the optimizer
// (plan enumeration) and the execution engine (independent join
// subtrees, shuffle scatters): 0 means GOMAXPROCS, 1 forces the
// sequential paths. Plans, results and metrics are identical at every
// setting — the knob only changes wall time.
func WithParallelism(p int) Option { return func(c *openConfig) { c.parallelism = p } }

// WithFactorization sets the factorized-execution fanout gate: a root
// join whose estimated output exceeds fanout times the sum of its
// input cardinalities runs on the factorized (answer-graph) path,
// which represents the result as shared column groups with link
// vectors and flattens only at projection. Results, plans and metrics
// are identical either way; only the intermediate representation (and
// its memory footprint) changes. fanout <= 0 disables factorization;
// the default is cost.Default's gate (4).
func WithFactorization(fanout float64) Option {
	return func(c *openConfig) { c.params.FactorizeFanout = fanout }
}

// WithPlanCache enables the serving-path plan cache with capacity for
// (at least) n query fingerprints; n <= 0 (the default) disables
// caching. With the cache enabled, System.Run canonicalizes each
// query, serves repeats of the same query shape from a cached plan
// template (skipping statistics collection and plan enumeration
// entirely), and deduplicates concurrent optimizations of one shape
// through a singleflight layer. Cached plans are tagged with the
// dataset epoch and re-optimized after any dataset mutation. Cached
// and uncached runs return bit-identical rows; a cached plan may be
// suboptimal for a query whose constants are much more or less
// selective than those of the run that produced the template.
func WithPlanCache(n int) Option { return func(c *openConfig) { c.planCache = n } }

// WithExecutionSharing deduplicates identical in-flight reads: when N
// concurrent calls ask the same query (same text, algorithm, snapshot
// epoch and limit) while one of them is still streaming, exactly one
// engine execution runs — the first call leads and broadcasts its
// chunk stream; the others replay it. This extends the plan cache's
// singleflight (one optimization per shape) one level down to one
// execution per identical read, and it is what makes a thundering herd
// of one hot query cost one execution instead of N. Calls that ask for
// per-call isolation (WithoutCache, WithTraceSink, WithFaultInjection)
// never share. The broadcast log is charged to the leader's memory
// budget; a trip cuts the followers loose (they fall back to their own
// execution if they consumed nothing yet). Counters are read back with
// System.ShareStats. Off by default.
func WithExecutionSharing() Option { return func(c *openConfig) { c.execSharing = true } }

// WithAdmissionControl gates the serving path (Run/RunQuery): at most
// maxConcurrent queries execute at once, up to maxQueued more wait
// FIFO for a slot, and everything beyond that fails fast with a typed
// *OverloadError (matching ErrOverloaded) carrying a retry-after hint.
// Queueing is deadline-aware: a query whose context is already expired
// — or expires while queued — is never admitted. maxConcurrent <= 0
// disables admission control (the default).
func WithAdmissionControl(maxConcurrent, maxQueued int) Option {
	return func(c *openConfig) {
		c.maxConcurrent = maxConcurrent
		c.maxQueued = maxQueued
	}
}

// WithMemoryBudget bounds the memory the system materializes:
// perQuery bytes per running query, total bytes across all concurrent
// queries (either may be 0 = unlimited). The engine's relation arenas
// and the optimizer's memo reserve against the budget before
// allocating; a reservation that would exceed a limit fails the query
// with a typed *BudgetError (matching ErrBudgetExceeded) naming the
// operator or phase — and, when the trip happened during optimization,
// the serving path first retries down its fallback ladder. Accounting
// is approximate (arena capacities and memo entries, not every byte),
// but it is charged before allocation, so trips abort queries, not the
// process.
func WithMemoryBudget(perQuery, total int64) Option {
	return func(c *openConfig) {
		c.memPerQuery = perQuery
		c.memTotal = total
	}
}

// WithSampledStats makes Optimize collect statistics from a
// systematic sample of the dataset instead of full scans — the
// trade-off for very large datasets. rate must be in (0, 1]; the
// default (and rate 1) is exact collection.
func WithSampledStats(rate float64) Option { return func(c *openConfig) { c.sampleRate = rate } }

// WithScopedInvalidation controls predicate-scoped plan-cache
// invalidation (default on). When on, a committed write invalidates
// only the cached plans and statistics whose predicate sets intersect
// the predicates the write touched; shapes over disjoint predicates
// keep serving their cached plans without re-optimizing. Off restores
// the epoch-wide behavior: any write invalidates every cached shape.
// The knob exists for A/B benchmarks (the ingest experiment) and as an
// escape hatch; scoped invalidation never serves a stale plan for a
// touched predicate.
func WithScopedInvalidation(on bool) Option { return func(c *openConfig) { c.scopedOff = !on } }

// WithWriteFaultInjection arms deterministic fault injection on the
// write-apply path: the hook that folds each committed write into the
// incremental statistics and the engine's ingest delta (site
// FaultRdfSnapshot). An injected fault defers the apply — the commit
// is never lost — and serving continues on the previous snapshot until
// FlushWrites (or a later successful write) re-drives it. Chaos
// testing only; nil is a no-op.
func WithWriteFaultInjection(f *FaultSet) Option { return func(c *openConfig) { c.writeFaults = f } }

// NodeFailoverConfig configures node health tracking and failover.
// Zero fields take defaults: 3 attempts, 1ms base / 50ms cap backoff,
// and the health package's breaker defaults (10s window, 5 samples,
// 50% failure rate, 3 consecutive failures, 1s open, 2 probes).
type NodeFailoverConfig struct {
	// MaxAttempts is how many times a failing node operation is tried
	// (first try included) before the node is declared dead for the
	// execution and failover kicks in.
	MaxAttempts int
	// RetryBase and RetryCap bound the capped exponential backoff
	// between attempts.
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerWindow, BreakerMinSamples and BreakerFailureRate set the
	// windowed rate trip of each node's breaker; BreakerConsecutive is
	// the consecutive-failure fast trip.
	BreakerWindow      time.Duration
	BreakerMinSamples  int
	BreakerFailureRate float64
	BreakerConsecutive int
	// OpenFor is how long an open breaker rejects the node before
	// allowing a half-open probe; ProbeSuccesses consecutive successful
	// probes close it again.
	OpenFor        time.Duration
	ProbeSuccesses int
	// Clock overrides the breakers' time source — deterministic tests
	// only; nil means time.Now.
	Clock func() time.Time
}

// WithNodeFailover makes node failure a first-class fault domain the
// system survives. Each simulated node gets a health breaker fed by
// the node-scoped fault sites (FaultNodeScan, FaultNodeShuffle). A
// node operation that keeps failing past its retries is declared dead
// for the execution: scans of the dead node's fragment are served from
// replica copies on healthy nodes — bit-identical to the healthy run
// whenever every stranded triple has a live copy — and repartition
// scatter partitions are re-homed onto healthy workers. A query that
// needs a dead node's unreplicated triples fails fast with a typed
// *UnavailableError (never a hang or a silent partial result). With
// WithAdaptivePartitioning also enabled, sustained node failure
// triggers recovery migrations that re-replicate the dead node's
// uncovered triples onto healthy nodes, hottest predicates first,
// under the advisor's replication budget.
func WithNodeFailover(fc NodeFailoverConfig) Option {
	return func(c *openConfig) { c.failover = &fc }
}

// AdaptiveConfig configures the adaptive-repartitioning advisor. Zero
// fields take defaults: 1 MiB trigger, 3 recurring queries, a
// replication budget of 0.5× the dataset, balance factor 2.
type AdaptiveConfig struct {
	// MinShuffledBytes is the per-group trigger: a (predicate,
	// position) triple group must accumulate this much OBSERVED
	// shuffle volume before it becomes a migration candidate.
	MinShuffledBytes int64
	// MinQueries requires the group to recur across this many queries.
	MinQueries int
	// ReplicationBudget caps the triple copies all migrations together
	// may add, as a fraction of the dataset size.
	ReplicationBudget float64
	// BalanceFactor rejects a migration that would leave any node's
	// fragment larger than this factor times the mean fragment size.
	BalanceFactor float64
	// DecayHalfLife, when positive, ages the advisor's per-group
	// accumulators: a group's observed shuffle weight halves every
	// DecayHalfLife observed queries, so yesterday's hot spot must stay
	// hot to trigger (or keep) a migration, and groups that go cold are
	// expired from the tracking table (AdvisorStats.ExpiredGroups). 0
	// (the default) disables decay: weights accumulate forever.
	DecayHalfLife int
	// Synchronous applies migrations on the serving goroutine that
	// triggered them instead of in the background — deterministic for
	// tests and benchmarks; production systems leave it false.
	Synchronous bool
}

// WithAdaptivePartitioning enables the online repartitioning advisor:
// every completed query's observed repartition shuffles feed the
// advisor, and when a (predicate, join-position) triple group crosses
// the trigger the advisor migrates the group — adding, within the
// replication and balance budgets, a copy of each group triple on the
// node the repartition scatter would send it to. The engine then
// serves those scans aligned (zero shuffle) and the dataset epoch is
// bumped so cached plans re-optimize against fresh placement-aware
// costs. Migrations only add copies; results stay bit-identical
// before, during and after (see System.AdvisorStats).
func WithAdaptivePartitioning(ac AdaptiveConfig) Option {
	return func(c *openConfig) { c.adaptive = &ac }
}

// ObsOption configures WithObservability.
type ObsOption func(*obsConfig)

// WithMetricsRegistry registers the system's metrics on an existing
// registry instead of a private one — for sharing one exposition
// endpoint across several systems. Metric names collide if two systems
// share a registry; use one registry per System.
func WithMetricsRegistry(r *Registry) ObsOption { return func(c *obsConfig) { c.registry = r } }

// WithSlowQueryLog keeps the last capacity queries that ran at or over
// threshold (failed queries are always logged). Entries are read back
// with System.SlowQueries.
func WithSlowQueryLog(capacity int, threshold time.Duration) ObsOption {
	return func(c *obsConfig) {
		c.slowCap = capacity
		c.slowThreshold = threshold
	}
}

// WithObservability turns on the metrics layer: the optimizer, engine,
// plan cache and serving path register Prometheus-style instruments,
// exposed through System.WriteMetrics. Optional ObsOptions add a
// slow-query log or redirect registration to a shared registry. When
// this option is absent every instrument hook in the hot paths reduces
// to one nil check — the overhead is below the benchmark noise floor
// (see the obsoverhead experiment).
func WithObservability(opts ...ObsOption) Option {
	return func(c *openConfig) {
		cfg := &obsConfig{}
		for _, o := range opts {
			o(cfg)
		}
		c.obs = cfg
	}
}

// Open partitions the dataset and builds the execution engine.
func Open(ds *Dataset, opts ...Option) (*System, error) {
	cfg := openConfig{method: partition.HashSO{}, params: cost.Default, nodes: cost.Default.Nodes, sampleRate: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.nodes <= 0 {
		return nil, fmt.Errorf("sparqlopt: cluster size must be positive")
	}
	cfg.params.Nodes = cfg.nodes
	placement, err := cfg.method.Partition(ds, cfg.nodes)
	if err != nil {
		return nil, err
	}
	if cfg.sampleRate <= 0 || cfg.sampleRate > 1 {
		return nil, fmt.Errorf("sparqlopt: sampling rate %v outside (0, 1]", cfg.sampleRate)
	}
	eng := engine.New(ds.Dict, placement)
	eng.SetParallelism(cfg.parallelism)
	snap := ds.Snapshot()
	eng.SetData(snap)
	s := &System{
		ds:          ds,
		method:      cfg.method,
		params:      cfg.params,
		sampleRate:  cfg.sampleRate,
		parallelism: cfg.parallelism,
		placement:   placement,
		engine:      eng,
		cache:       plancache.New(cfg.planCache),
		budget:      resilience.NewBudget(cfg.memPerQuery, cfg.memTotal),
		tracker:     stats.NewTracker(snap),
		writeFaults: cfg.writeFaults,
	}
	if s.cache != nil && !cfg.scopedOff {
		s.cache.SetInvalidation(ds.Dict.Lookup, ds.ChangedBetween)
	}
	// Every committed write is folded into the serving snapshot —
	// incremental statistics plus the engine's ingest delta — while the
	// commit hook holds the dataset's writer lock, so applies happen in
	// commit order and readers only ever see fully-published snapshots.
	s.unhook = ds.OnCommit(s.applyWrite)
	if cfg.maxConcurrent > 0 {
		s.adm = resilience.NewAdmission(cfg.maxConcurrent, cfg.maxQueued)
	}
	if cfg.execSharing {
		s.share = plancache.NewShareTable()
	}
	if cfg.adaptive != nil {
		s.advisor = adaptive.New(adaptive.Config{
			MinBytes:          cfg.adaptive.MinShuffledBytes,
			MinQueries:        cfg.adaptive.MinQueries,
			ReplicationBudget: cfg.adaptive.ReplicationBudget,
			BalanceFactor:     cfg.adaptive.BalanceFactor,
			DecayHalfLife:     cfg.adaptive.DecayHalfLife,
		})
		s.adaptiveSync = cfg.adaptive.Synchronous
	}
	if cfg.failover != nil {
		fc := cfg.failover
		s.health = health.New(cfg.nodes, health.Config{
			Window:              fc.BreakerWindow,
			MinSamples:          fc.BreakerMinSamples,
			FailureRate:         fc.BreakerFailureRate,
			ConsecutiveFailures: fc.BreakerConsecutive,
			OpenFor:             fc.OpenFor,
			ProbeSuccesses:      fc.ProbeSuccesses,
			Now:                 fc.Clock,
		})
		attempts := fc.MaxAttempts
		if attempts <= 0 {
			attempts = 3
		}
		base := fc.RetryBase
		if base <= 0 {
			base = time.Millisecond
		}
		retryCap := fc.RetryCap
		if retryCap <= 0 {
			retryCap = 50 * time.Millisecond
		}
		eng.SetFailover(&engine.FailoverPolicy{
			Health:      s.health,
			MaxAttempts: attempts,
			Backoff:     resilience.Backoff{Base: base, Cap: retryCap, Seed: 0x5eedfa11},
		})
	}
	if cfg.obs != nil {
		r := cfg.obs.registry
		if r == nil {
			r = obs.NewRegistry()
		}
		s.obs = &obsState{
			registry:     r,
			queries:      r.Counter("query_runs_total", "Serving calls (Run/RunQuery)."),
			queryErrors:  r.Counter("query_errors_total", "Serving calls that returned an error."),
			querySeconds: r.Histogram("query_seconds", "End-to-end serving latency.", nil),
		}
		if cfg.obs.slowCap > 0 {
			s.obs.slowLog = obs.NewSlowLog(cfg.obs.slowCap, cfg.obs.slowThreshold)
			log := s.obs.slowLog
			r.GaugeFunc("slow_queries_total", "Queries ever recorded in the slow-query log.",
				func() float64 { return float64(log.Total()) })
		}
		s.optInst = opt.NewInstruments(r)
		eng.SetInstruments(engine.NewInstruments(r))
		s.cache.RegisterMetrics(r)
		r.GaugeFunc("ingest_pending_writes", "Committed write deltas not yet applied to the serving snapshot.",
			func() float64 { return float64(s.PendingWrites()) })
		s.resInst = resilience.NewInstruments(r)
		s.resInst.ObserveAdmission(s.adm)
		s.resInst.ObserveBudget(s.budget)
		if s.share != nil {
			tbl := s.share
			r.GaugeFunc("exec_share_leads_total", "Executions that led a shared-execution broadcast.",
				func() float64 { return float64(tbl.Counters().Leads) })
			r.GaugeFunc("exec_share_follows_total", "Calls served by replaying another in-flight execution.",
				func() float64 { return float64(tbl.Counters().Follows) })
			r.GaugeFunc("exec_share_fallbacks_total", "Followers that lost their leader and re-executed.",
				func() float64 { return float64(tbl.Counters().Fallbacks) })
			r.GaugeFunc("exec_share_aborted_total", "Broadcasts cut off by the leader's memory budget.",
				func() float64 { return float64(tbl.Counters().Aborted) })
		}
		if s.advisor != nil {
			adv := s.advisor
			r.GaugeFunc("adaptive_migrations_total", "Migration rounds the adaptive advisor applied.",
				func() float64 { return float64(adv.Stats().Migrations) })
			r.GaugeFunc("adaptive_migrated_triples_total", "Triple copies added by adaptive migrations.",
				func() float64 { return float64(adv.Stats().MigratedTriples) })
			r.GaugeFunc("adaptive_aligned_groups", "Triple groups currently aligned by the advisor.",
				func() float64 { return float64(adv.Stats().AlignedGroups) })
			if s.health != nil {
				r.GaugeFunc("adaptive_recovery_migrations_total", "Recovery rounds re-replicating dead nodes' triples.",
					func() float64 { return float64(adv.Stats().RecoveryMigrations) })
			}
		}
		if s.health != nil {
			hv := s.health
			for i := 0; i < cfg.nodes; i++ {
				node := i
				r.GaugeFunc("node_health",
					"Per-node breaker state: 1 healthy, 0.5 half-open (probing), 0 open (dead).",
					func() float64 {
						switch hv.State(node) {
						case health.Open:
							return 0
						case health.HalfOpen:
							return 0.5
						default:
							return 1
						}
					}, obs.Label{Key: "node", Value: strconv.Itoa(node)})
			}
		}
	}
	return s, nil
}

// NodeHealth reports each simulated node's breaker state (see
// WithNodeFailover); nil when node failover is disabled.
func (s *System) NodeHealth() []NodeStatus {
	if s.health == nil {
		return nil
	}
	return s.health.Status()
}

// Method returns the partitioning method in use.
func (s *System) Method() Method { return s.method }

// ReplicationFactor reports how much the partitioning replicated the
// data across nodes — including any copies added by adaptive
// migrations.
func (s *System) ReplicationFactor() float64 {
	return s.currentPlacement().ReplicationFactor(s.ds.Len())
}

// currentPlacement returns the live placement; migrations swap it.
func (s *System) currentPlacement() *partition.Placement {
	s.placeMu.RLock()
	defer s.placeMu.RUnlock()
	return s.placement
}

func (s *System) setPlacement(p *partition.Placement) {
	s.placeMu.Lock()
	s.placement = p
	s.placeMu.Unlock()
}

// MetricsRegistry returns the system's metrics registry, nil when
// observability is disabled.
func (s *System) MetricsRegistry() *Registry {
	if s.obs == nil {
		return nil
	}
	return s.obs.registry
}

// WriteMetrics writes the current metrics in Prometheus text
// exposition format. It errors when the system was opened without
// WithObservability.
func (s *System) WriteMetrics(w io.Writer) error {
	if s.obs == nil {
		return fmt.Errorf("sparqlopt: observability disabled (Open with WithObservability)")
	}
	return s.obs.registry.WriteMetrics(w)
}

// SlowQueries returns the retained slow-query log entries, newest
// first; nil when no slow-query log is configured.
func (s *System) SlowQueries() []SlowQueryEntry {
	if s.obs == nil {
		return nil
	}
	return s.obs.slowLog.Entries()
}

// Optimize parses and optimizes a query. The query is parsed exactly
// once and the parsed form is shared with statistics collection and
// graph-view construction (callers that also execute should prefer
// Run, or parse once themselves and use OptimizeQuery + Execute, to
// avoid re-parsing).
func (s *System) Optimize(ctx context.Context, query string, opts ...RunOption) (*OptimizeResult, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return s.OptimizeQuery(ctx, q, opts...)
}

// OptimizeQuery optimizes an already-parsed query (default TD-Auto).
// When the plan cache is enabled, statistics snapshots are reused
// across queries of the same fingerprint and epoch (the full plan
// cache applies only to Run, the serving path).
func (s *System) OptimizeQuery(ctx context.Context, q *Query, opts ...RunOption) (res *OptimizeResult, err error) {
	set := opt.NewRunSettings(opts)
	ctx, cancel := withDeadline(ctx, set.Deadline)
	defer cancel()
	var tr *obs.Trace
	if set.TraceSink != nil {
		tr = obs.NewTrace(q.String())
		tr.Algorithm = set.Algorithm.String()
		defer func() {
			tr.Finish(err)
			set.TraceSink(tr)
		}()
	}
	g := s.budget.NewGauge()
	defer g.Reset()
	return s.optimizeTraced(ctx, q, set.Algorithm, set, g, tr, s.engine.Snapshot())
}

// optimizeTraced is the uncached optimization path: collect statistics
// and enumerate, each under its own trace phase. The enumeration alone
// runs under set.OptTimeout when one is configured; memo growth charges
// against g. Statistics are collected over the pinned snapshot snap,
// so concurrent ingest cannot shift the numbers mid-optimization.
func (s *System) optimizeTraced(ctx context.Context, q *Query, algo Algorithm, set opt.RunSettings, g *resilience.Gauge, tr *obs.Trace, snap *engine.Snap) (*OptimizeResult, error) {
	sp := tr.Span("stats")
	st, err := s.collect(q, snap)
	sp.End()
	if err != nil {
		return nil, err
	}
	in, err := s.inputWithStats(q, st, set, g)
	if err != nil {
		return nil, err
	}
	sp = tr.Span("enumerate")
	octx, ocancel := withDeadline(ctx, set.OptTimeout)
	res, err := opt.Optimize(octx, in, algo)
	ocancel()
	sp.End()
	if err != nil {
		return nil, err
	}
	sp.SetAttr("algorithm", res.Used.String())
	sp.SetAttrInt("cmds", res.Counter.CMDs)
	return res, nil
}

// collect gathers per-pattern statistics for q over the pinned
// snapshot, going through the cache's snapshot layer when caching is
// enabled. Exact collection answers the dominant (?s <p> ?o) shapes
// from the incremental tracker in O(1) when the tracker is current at
// the snapshot's epoch; sampled collection and tracker-uncoverable
// shapes scan the pinned snapshot.
func (s *System) collect(q *Query, snap *engine.Snap) (*stats.Stats, error) {
	if s.cache == nil {
		return s.collectRaw(q, snap)
	}
	st, _, err := s.cache.StatsFor(q, snap.Data().Epoch(), func(q *sparql.Query) (*stats.Stats, error) {
		return s.collectRaw(q, snap)
	})
	return st, err
}

// collectRaw is collection without the cache's snapshot layer — the
// callback handed to the cache machinery, which must not re-enter it.
func (s *System) collectRaw(q *Query, snap *engine.Snap) (*stats.Stats, error) {
	data := snap.Data()
	if s.sampleRate < 1 {
		return stats.CollectSampledSnapshot(data, q, s.sampleRate)
	}
	return stats.CollectTracked(s.tracker, data, q)
}

// inputWithStats assembles the optimizer input around an existing
// statistics snapshot — the single construction point both the cached
// and uncached serving paths funnel through, so a query is parsed and
// its views are built exactly once per Run, and the optimizer's
// instruments are wired everywhere or nowhere.
func (s *System) inputWithStats(q *Query, st *stats.Stats, set opt.RunSettings, g *resilience.Gauge) (*opt.Input, error) {
	views, err := querygraph.Build(q)
	if err != nil {
		return nil, err
	}
	est, err := stats.NewEstimator(q, st)
	if err != nil {
		return nil, err
	}
	return &opt.Input{
		Query: q, Views: views, Est: est,
		Params: s.params, Method: s.method, Parallelism: s.parallelism,
		Inst: s.optInst, Gauge: g, Faults: set.Faults,
	}, nil
}

// Execute runs a previously optimized plan on the simulated cluster.
func (s *System) Execute(ctx context.Context, p *Plan, q *Query) (*ExecResult, error) {
	return s.engine.Execute(ctx, p, q)
}

// Run optimizes and executes in one step — the materializing serving
// path. The query text is parsed exactly once; the parsed form feeds
// canonicalization, optimization and execution. With WithPlanCache,
// repeats of a query shape skip statistics collection and plan
// enumeration entirely (ExecResult.CacheInfo reports what happened).
// Run is RunStream plus collect-and-sort: it drains the same row
// stream into ExecResult.Rows in lexicographic order, charging the
// materialized result to the call's memory budget. Result sets too
// big to hold belong on RunStream.
func (s *System) Run(ctx context.Context, query string, opts ...RunOption) (*ExecResult, error) {
	return s.runMaterialized(ctx, query, nil, opt.NewRunSettings(opts))
}

// RunQuery optimizes and executes an already-parsed query.
func (s *System) RunQuery(ctx context.Context, q *Query, opts ...RunOption) (*ExecResult, error) {
	return s.runMaterialized(ctx, "", q, opt.NewRunSettings(opts))
}

// runMaterialized drains the streaming pipeline into a sorted result.
func (s *System) runMaterialized(ctx context.Context, src string, q *Query, set opt.RunSettings) (*ExecResult, error) {
	rows, err := s.stream(ctx, src, q, set)
	if err != nil {
		return nil, err
	}
	return rows.collect()
}

// withDeadline layers the per-call deadline onto ctx; the returned
// cancel is a no-op when no deadline was requested.
func withDeadline(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// admit passes the call through admission control (a no-op returning
// a no-op release when admission is disabled).
func (s *System) admit(ctx context.Context) (func(), error) {
	if s.adm == nil {
		return func() {}, nil
	}
	release, err := s.adm.Acquire(ctx, 1)
	if err != nil {
		if errors.Is(err, resilience.ErrOverloaded) {
			s.resInst.AdmissionRejected()
		}
		return nil, err
	}
	s.resInst.AdmissionAccepted()
	return release, nil
}

// observeAdaptive feeds one completed run's observed repartition
// shuffles to the advisor and, when a group crosses the migration
// trigger, kicks off a migration round — on this goroutine when the
// advisor is synchronous, in the background otherwise (serving is
// never blocked; in-flight queries keep their store snapshot).
func (s *System) observeAdaptive(q *Query, out *ExecResult) {
	if s.advisor == nil {
		return
	}
	groups := s.engine.ShuffleGroups(out, q)
	if len(groups) == 0 {
		return
	}
	obsv := make([]adaptive.Observation, len(groups))
	for i, g := range groups {
		obsv[i] = adaptive.Observation{
			Key:     partition.GroupKey{Pred: g.Pred, Pos: g.Pos},
			Rows:    g.Rows,
			Bytes:   g.Bytes,
			Aligned: g.Aligned,
		}
	}
	if !s.advisor.Observe(obsv) {
		return
	}
	if s.adaptiveSync {
		s.migrate()
		return
	}
	s.migWG.Add(1)
	go func() {
		defer s.migWG.Done()
		s.migrate()
	}()
}

// migrationTripleBytes is the reservation estimate per triple a
// migration touches while rebuilding node stores: the triple itself
// (3 TermIDs) plus three index postings and their map overhead.
const migrationTripleBytes = 48

// migrate plans and applies one migration round. Rounds are
// serialized; a failure (memory-budget trip, placement mismatch,
// recovered panic) is isolated to the round — serving continues on the
// old placement and the advisor keeps the groups as candidates.
func (s *System) migrate() {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	var err error
	func() {
		defer resilience.CatchPanic(&err, nil)
		err = s.migrateLocked()
	}()
	if err != nil {
		s.advisor.RecordFailure()
	}
}

func (s *System) migrateLocked() error {
	prop := s.advisor.PlanMigration(s.ds, s.currentPlacement())
	return s.applyProposalLocked("migration", prop)
}

// applyProposalLocked applies one advisor proposal (an adaptive
// migration or a recovery round) to the placement, the engine and the
// epoch machinery. Caller holds migMu; a nil proposal is a no-op.
func (s *System) applyProposalLocked(what string, prop *adaptive.Proposal) error {
	if prop == nil {
		return nil
	}
	placement := s.currentPlacement()
	// The transient store rebuilds are charged against the shared
	// memory budget exactly like query arenas, so a migration can never
	// OOM a serving node: if queries hold the memory, the round fails
	// and is retried when a later query re-triggers it.
	g := s.budget.NewGauge()
	defer g.Reset()
	var touched int64
	for node, adds := range prop.Migration.Adds {
		if len(adds) > 0 {
			touched += int64(len(placement.Triples[node])) + int64(len(adds))
		}
	}
	if err := g.Reserve(what, touched*migrationTripleBytes); err != nil {
		return err
	}
	next, err := placement.Migrate(prop.Migration)
	if err != nil {
		return err
	}
	s.engine.ApplyMigration(prop.Migration, prop.Alignment)
	s.setPlacement(next)
	s.advisor.Commit(prop)
	// Flip the epoch, attributed to the migrated predicates: cached
	// plans whose shapes touch them were costed under the old placement
	// and re-optimize; shapes over disjoint predicates keep their plans
	// (a migration only adds copies of the migrated groups — placement
	// and costs for everything else are unchanged). A recovery proposal
	// has no group keys; its predicates come from the added copies.
	seen := make(map[rdf.TermID]bool, len(prop.Keys))
	preds := make([]rdf.TermID, 0, len(prop.Keys))
	for _, k := range prop.Keys {
		if !seen[k.Pred] {
			seen[k.Pred] = true
			preds = append(preds, k.Pred)
		}
	}
	if len(prop.Keys) == 0 {
		for _, adds := range prop.Migration.Adds {
			for _, t := range adds {
				if !seen[t.P] {
					seen[t.P] = true
					preds = append(preds, t.P)
				}
			}
		}
	}
	epoch := s.ds.BumpEpochPreds(preds...)
	// The triple set did not change: advance the tracker and republish
	// the engine's dataset snapshot so serving pins the new epoch.
	s.tracker.Apply(nil, epoch)
	s.engine.SetData(s.ds.Snapshot())
	return nil
}

// maybeRecover is the post-query recovery trigger: when node failover
// and adaptive partitioning are both enabled and some node's breaker
// is open (sustained failure) — or a query just failed with a typed
// UnavailableError naming dead nodes — it kicks off one recovery round
// that re-replicates the dead nodes' uncovered triples onto healthy
// nodes, hottest predicates first, within the advisor's replication
// budget. Concurrent triggers collapse into a single in-flight round.
func (s *System) maybeRecover(err error) {
	if s.health == nil || s.advisor == nil {
		return
	}
	dead := s.health.Down()
	var ue *UnavailableError
	if errors.As(err, &ue) {
		seen := make(map[int]bool, len(dead))
		for _, n := range dead {
			seen[n] = true
		}
		for _, n := range ue.Nodes {
			if !seen[n] {
				seen[n] = true
				dead = append(dead, n)
			}
		}
	}
	if len(dead) == 0 {
		return
	}
	if !s.recFlight.CompareAndSwap(false, true) {
		return
	}
	if s.adaptiveSync {
		s.recoverRound(dead)
		return
	}
	s.migWG.Add(1)
	go func() {
		defer s.migWG.Done()
		s.recoverRound(dead)
	}()
}

// recoverRound plans and applies one recovery migration. Failures are
// isolated exactly like adaptive migration rounds: serving continues
// on the old placement (failover still covers whatever replicas
// exist) and a later trigger retries.
func (s *System) recoverRound(dead []int) {
	defer s.recFlight.Store(false)
	s.migMu.Lock()
	defer s.migMu.Unlock()
	var err error
	func() {
		defer resilience.CatchPanic(&err, nil)
		err = s.applyProposalLocked("recovery", s.advisor.PlanRecovery(s.ds, s.currentPlacement(), dead))
	}()
	if err != nil {
		s.advisor.RecordFailure()
	}
}

// AdvisorStats returns the adaptive advisor's counters; the zero
// snapshot when adaptive repartitioning is disabled.
func (s *System) AdvisorStats() AdvisorStats {
	if s.advisor == nil {
		return AdvisorStats{}
	}
	return s.advisor.Stats()
}

// AdvisorConfig returns the advisor's effective configuration — zero
// AdaptiveConfig fields resolved to their defaults — and the zero value
// when adaptive repartitioning is disabled.
func (s *System) AdvisorConfig() AdaptiveConfig {
	if s.advisor == nil {
		return AdaptiveConfig{}
	}
	cfg := s.advisor.Config()
	return AdaptiveConfig{
		MinShuffledBytes:  cfg.MinBytes,
		MinQueries:        cfg.MinQueries,
		ReplicationBudget: cfg.ReplicationBudget,
		BalanceFactor:     cfg.BalanceFactor,
		DecayHalfLife:     cfg.DecayHalfLife,
		Synchronous:       s.adaptiveSync,
	}
}

// WaitForMigrations blocks until every background migration round
// kicked off so far has finished — for tests and benchmarks that need
// a quiesced system; serving never requires it.
func (s *System) WaitForMigrations() { s.migWG.Wait() }

// applyWrite is the dataset commit hook: it folds one committed write
// delta into the serving snapshot — the incremental statistics tracker
// and the engine's ingest delta — in commit order. A failed apply
// (only injected faults and bugs can fail it; there is no I/O here) is
// deferred, not dropped: serving continues on the previous snapshot,
// consistently lagging the commit, until a later write or FlushWrites
// re-drives the queue.
func (s *System) applyWrite(wd rdf.WriteDelta) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.pending = append(s.pending, wd)
	s.drainLocked(s.writeFaults)
}

// drainLocked applies queued write deltas in order, stopping at the
// first failure (the failed delta stays queued). Caller holds writeMu.
func (s *System) drainLocked(faults *FaultSet) {
	for len(s.pending) > 0 {
		if err := s.applyOne(s.pending[0], faults); err != nil {
			return
		}
		s.pending = s.pending[1:]
	}
}

// applyOne folds one delta into the tracker and the engine, recovering
// panics (injected or real) into an error so a poisoned delta can
// never take down the writer.
func (s *System) applyOne(wd rdf.WriteDelta, faults *FaultSet) (err error) {
	defer resilience.CatchPanic(&err, nil)
	faults.PanicIf(faultinject.RdfSnapshot)
	s.engine.ApplyIngest(wd.Triples, wd.Snap)
	s.tracker.Apply(wd.Triples, wd.Epoch)
	return nil
}

// PendingWrites reports how many committed write deltas have not yet
// been applied to the serving snapshot. Non-zero only after a faulted
// apply (see WithWriteFaultInjection); the committed triples are
// durable in the dataset either way, they are just not visible to new
// queries yet.
func (s *System) PendingWrites() int {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return len(s.pending)
}

// FlushWrites re-drives any deferred write applies, without fault
// injection, and reports whether the queue drained. Tests call it
// after a chaos phase to verify nothing was lost.
func (s *System) FlushWrites() bool {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.drainLocked(nil)
	return len(s.pending) == 0
}

// Close detaches the system from its dataset's commit hook. Writes
// committed after Close are still durable in the dataset but no longer
// feed this system's serving snapshot; use it when a System is
// discarded while others keep serving the same dataset.
func (s *System) Close() {
	if s.unhook != nil {
		s.unhook()
		s.unhook = nil
	}
}

// degradable reports whether a planning failure is worth retrying with
// a cheaper algorithm: the call itself is still alive (its context has
// not expired) and the failure is one the ladder can help with — a
// memory-budget trip, an optimizer-only timeout (WithOptimizerTimeout)
// or a recovered enumeration panic.
func degradable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var pe *resilience.PanicError
	return errors.Is(err, resilience.ErrBudgetExceeded) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.As(err, &pe)
}

// ladderSteps returns the fallback algorithms to try, in order, after
// a degradable failure of algo: first the pruned enumeration (much
// smaller memo, same plan most of the time), then the greedy left-deep
// baseline (no memo at all, always finishes).
func ladderSteps(algo Algorithm) []Algorithm {
	switch algo {
	case Greedy:
		return nil
	case TDCMDP:
		return []Algorithm{Greedy}
	default: // TDCMD, HGRTDCMD, TDAuto
		return []Algorithm{TDCMDP, Greedy}
	}
}

// planLadder produces the physical plan for q, walking the degradation
// ladder when planning fails recoverably. The returned degraded slice
// — one human-readable entry per fallback taken — ends up on
// ExecResult.Degraded; it is nil for the healthy path.
func (s *System) planLadder(ctx context.Context, q *Query, set opt.RunSettings, g *resilience.Gauge, tr *obs.Trace, snap *engine.Snap) (*opt.Result, engine.CacheInfo, []string, error) {
	res, info, err := s.plan(ctx, q, set, g, tr, snap)
	if err == nil {
		return res, info, nil, nil
	}
	var degraded []string
	var le *plancache.LookupError
	if errors.As(err, &le) {
		// The cache machinery itself failed — the query is fine. Serve
		// it uncached.
		degraded = append(degraded, fmt.Sprintf("cache bypass: %v", le.Cause))
		res, err = s.optimizeTraced(ctx, q, set.Algorithm, set, g, tr, snap)
		if err == nil {
			return res, engine.CacheInfo{}, degraded, nil
		}
	}
	prev := set.Algorithm
	for _, next := range ladderSteps(set.Algorithm) {
		if !degradable(ctx, err) {
			break
		}
		degraded = append(degraded, fmt.Sprintf("%s failed (%v); retrying with %s", prev, err, next))
		g.Reset() // a failed attempt's memo charges must not starve the retry
		res, err = s.optimizeTraced(ctx, q, next, set, g, tr, snap)
		if err == nil {
			return res, engine.CacheInfo{}, degraded, nil
		}
		prev = next
	}
	return nil, engine.CacheInfo{}, degraded, err
}

// plan produces the physical plan for q: through the plan cache when
// one is configured and the call did not opt out, otherwise the plain
// stats + enumerate pipeline.
func (s *System) plan(ctx context.Context, q *Query, set opt.RunSettings, g *resilience.Gauge, tr *obs.Trace, snap *engine.Snap) (*opt.Result, engine.CacheInfo, error) {
	if s.cache == nil || set.NoCache {
		res, err := s.optimizeTraced(ctx, q, set.Algorithm, set, g, tr, snap)
		return res, engine.CacheInfo{}, err
	}
	if set.Faults.Should(faultinject.CacheLookup) {
		return nil, engine.CacheInfo{}, &plancache.LookupError{Cause: faultinject.Injected{Site: faultinject.CacheLookup}}
	}
	res, info, err := s.cache.Optimize(ctx, q, set.Algorithm, snap.Data().Epoch(),
		func(q *sparql.Query) (*stats.Stats, error) {
			return s.collectRaw(q, snap)
		},
		func(ctx context.Context, q *sparql.Query, st *stats.Stats) (*opt.Result, error) {
			in, err := s.inputWithStats(q, st, set, g)
			if err != nil {
				return nil, err
			}
			octx, ocancel := withDeadline(ctx, set.OptTimeout)
			defer ocancel()
			return opt.Optimize(octx, in, set.Algorithm)
		}, tr)
	if err != nil {
		return nil, engine.CacheInfo{}, err
	}
	return res, engine.CacheInfo{Enabled: true, Hit: info.Hit, Shared: info.Shared, Epoch: info.Epoch}, nil
}

// CacheStats returns the plan cache's cumulative counters; the zero
// snapshot when caching is disabled.
func (s *System) CacheStats() CacheCounters {
	if s.cache == nil {
		return CacheCounters{}
	}
	return s.cache.Counters()
}

// ShareStats returns the execution-sharing layer's cumulative
// counters; the zero snapshot when sharing is disabled (see
// WithExecutionSharing).
func (s *System) ShareStats() ShareCounters {
	return s.share.Counters()
}

// Term resolves a result value back to its term string.
func (s *System) Term(id rdf.TermID) string { return s.ds.Dict.Term(id) }

// FormatResult renders an execution result as tab-separated lines
// with a header row.
func (s *System) FormatResult(res *ExecResult) string {
	out := ""
	for i, v := range res.Vars {
		if i > 0 {
			out += "\t"
		}
		out += "?" + v
	}
	out += "\n"
	for _, row := range res.Rows {
		for i, id := range row {
			if i > 0 {
				out += "\t"
			}
			out += s.ds.Dict.Term(id)
		}
		out += "\n"
	}
	return out
}

// Reference executes the query on a single node over the unpartitioned
// dataset — ground truth for validating distributed execution.
func Reference(ds *Dataset, q *Query) (*ExecResult, error) {
	return engine.Reference(ds, q)
}
