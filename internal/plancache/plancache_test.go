package plancache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparqlopt/internal/opt"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

func testDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	ds.Add("http://alice", "http://knows", "http://bob")
	ds.Add("http://bob", "http://knows", "http://carol")
	ds.Add("http://alice", "http://worksFor", "http://acme")
	ds.Add("http://bob", "http://worksFor", "http://acme")
	ds.Add("http://carol", "http://worksFor", "http://acme")
	for i := 0; i < 20; i++ {
		ds.Add(fmt.Sprintf("http://s%d", i), fmt.Sprintf("http://p%d", i%8), fmt.Sprintf("http://o%d", i))
	}
	return ds
}

// harness bundles a dataset with counted collect/optimize callbacks
// driving the real optimizer.
type harness struct {
	ds        *rdf.Dataset
	collects  atomic.Int64
	optimizes atomic.Int64
	// gate, when non-nil, blocks optimize until released — for
	// singleflight tests.
	gate chan struct{}
}

func (h *harness) collect(q *sparql.Query) (*stats.Stats, error) {
	h.collects.Add(1)
	return stats.Collect(h.ds, q)
}

func (h *harness) optimize(ctx context.Context, q *sparql.Query, st *stats.Stats) (*opt.Result, error) {
	h.optimizes.Add(1)
	if h.gate != nil {
		<-h.gate
	}
	views, err := querygraph.Build(q)
	if err != nil {
		return nil, err
	}
	est, err := stats.NewEstimator(q, st)
	if err != nil {
		return nil, err
	}
	return opt.Optimize(ctx, &opt.Input{Query: q, Views: views, Est: est, Parallelism: 1}, opt.TDCMD)
}

func (h *harness) serve(t *testing.T, c *Cache, src string, epoch uint64) (*opt.Result, Info) {
	t.Helper()
	q := sparql.MustParse(src)
	res, info, err := c.Optimize(context.Background(), q, opt.TDCMD, epoch, h.collect, h.optimize, nil)
	if err != nil {
		t.Fatalf("Optimize(%q): %v", src, err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatalf("served plan invalid: %v", err)
	}
	return res, info
}

const chainQuery = `SELECT * WHERE { ?x <http://knows> ?y . ?y <http://worksFor> ?o . }`

func TestHitMissAndStatsReuse(t *testing.T) {
	h := &harness{ds: testDataset()}
	c := New(64)
	_, info := h.serve(t, c, chainQuery, 1)
	if info.Hit {
		t.Fatal("first call reported a hit")
	}
	_, info = h.serve(t, c, chainQuery, 1)
	if !info.Hit || info.Shared {
		t.Fatalf("second call: %+v, want resolved hit", info)
	}
	if n := h.optimizes.Load(); n != 1 {
		t.Fatalf("optimizer ran %d times, want 1", n)
	}
	if n := h.collects.Load(); n != 1 {
		t.Fatalf("stats collected %d times, want 1", n)
	}
	got := c.Counters()
	if got.Hits != 1 || got.Misses != 1 || got.StatsMisses != 1 {
		t.Fatalf("counters %+v", got)
	}
}

func TestHitAcrossIsomorphicQueries(t *testing.T) {
	h := &harness{ds: testDataset()}
	c := New(64)
	res1, _ := h.serve(t, c, chainQuery, 1)
	// Same shape: renamed variables, reordered patterns, different
	// subject constant position contents are untouched here.
	iso := `SELECT * WHERE { ?p <http://worksFor> ?q . ?r <http://knows> ?p . }`
	res2, info := h.serve(t, c, iso, 1)
	if !info.Hit {
		t.Fatal("isomorphic query missed")
	}
	if h.optimizes.Load() != 1 {
		t.Fatalf("optimizer ran %d times", h.optimizes.Load())
	}
	// The served plan must live in the second query's index/name space.
	q2 := sparql.MustParse(iso)
	for _, leaf := range res2.Plan.Leaves() {
		if leaf.TP < 0 || leaf.TP >= len(q2.Patterns) {
			t.Fatalf("leaf TP %d out of range", leaf.TP)
		}
	}
	var checkVars func(n *plan.Node)
	checkVars = func(n *plan.Node) {
		if n.Alg != plan.Scan {
			if n.JoinVar != "p" {
				t.Fatalf("join var %q, want the second query's shared var p", n.JoinVar)
			}
			for _, ch := range n.Children {
				checkVars(ch)
			}
		}
	}
	checkVars(res2.Plan)
	if res2.Plan.Cost != res1.Plan.Cost {
		t.Fatalf("remapped plan cost %v, template cost %v", res2.Plan.Cost, res1.Plan.Cost)
	}
}

func TestSingleflightDedup(t *testing.T) {
	h := &harness{ds: testDataset(), gate: make(chan struct{})}
	c := New(64)
	const n = 16
	var wg sync.WaitGroup
	infos := make([]Info, n)
	errs := make([]error, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			q := sparql.MustParse(chainQuery)
			res, info, err := c.Optimize(context.Background(), q, opt.TDCMD, 1, h.collect, h.optimize, nil)
			infos[i], errs[i] = info, err
			if err == nil {
				errs[i] = res.Plan.Validate()
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(h.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
	if got := h.optimizes.Load(); got != 1 {
		t.Fatalf("optimizer ran %d times under contention, want 1", got)
	}
	hits := 0
	for _, info := range infos {
		if info.Hit {
			hits++
		}
	}
	if hits != n-1 {
		t.Fatalf("%d hits, want %d", hits, n-1)
	}
	got := c.Counters()
	if got.Misses != 1 || got.Hits != int64(n-1) {
		t.Fatalf("counters %+v", got)
	}
	if got.SingleflightWaits == 0 {
		t.Fatal("no singleflight waits recorded")
	}
}

func TestEpochInvalidation(t *testing.T) {
	h := &harness{ds: testDataset()}
	c := New(64)
	h.serve(t, c, chainQuery, 1)
	h.serve(t, c, chainQuery, 1)
	_, info := h.serve(t, c, chainQuery, 2)
	if info.Hit {
		t.Fatal("stale plan served across epochs")
	}
	if info.Epoch != 2 {
		t.Fatalf("epoch %d, want 2", info.Epoch)
	}
	if n := h.optimizes.Load(); n != 2 {
		t.Fatalf("optimizer ran %d times, want 2 (one per epoch)", n)
	}
	if n := h.collects.Load(); n != 2 {
		t.Fatalf("stats collected %d times, want 2 (snapshot invalidated too)", n)
	}
	got := c.Counters()
	if got.Invalidations != 1 {
		t.Fatalf("invalidations %d, want 1", got.Invalidations)
	}
	// A reader pinned at an older snapshot (epoch 1) while the entry
	// sits at epoch 2 is served as-is: epochs are monotonic under MVCC
	// snapshots, plans are correct at any epoch, and re-optimizing here
	// would let concurrent readers at different epochs thrash the entry.
	_, info = h.serve(t, c, chainQuery, 1)
	if !info.Hit {
		t.Fatal("pinned older reader must be served the newer cached plan")
	}
	if n := h.optimizes.Load(); n != 2 {
		t.Fatalf("optimizer ran %d times, want 2 (older pinned reader served as-is)", n)
	}
}

func TestLRUEviction(t *testing.T) {
	h := &harness{ds: testDataset()}
	c := New(16) // one fingerprint per shard
	if c.Capacity() != 16 {
		t.Fatalf("capacity %d", c.Capacity())
	}
	// Distinct predicates give distinct fingerprints.
	for round := 0; round < 2; round++ {
		for i := 0; i < 64; i++ {
			src := fmt.Sprintf(`SELECT * WHERE { ?x <http://p%d> ?y . ?y <http://p%d> ?z . }`, i, (i+1)%64)
			h.serve(t, c, src, 1)
		}
	}
	got := c.Counters()
	if got.Evictions == 0 {
		t.Fatalf("no evictions at 4x capacity: %+v", got)
	}
	if c.Len() > c.Capacity() {
		t.Fatalf("resident %d > capacity %d", c.Len(), c.Capacity())
	}
	// Evicted shapes were re-optimized on the second round.
	if h.optimizes.Load() <= 64 {
		t.Fatalf("optimizer ran %d times; evicted entries must re-optimize", h.optimizes.Load())
	}
}

func TestOwnerErrorIsRetriable(t *testing.T) {
	h := &harness{ds: testDataset()}
	c := New(64)
	q := sparql.MustParse(chainQuery)
	boom := fmt.Errorf("boom")
	_, _, err := c.Optimize(context.Background(), q, opt.TDCMD, 1, h.collect,
		func(context.Context, *sparql.Query, *stats.Stats) (*opt.Result, error) { return nil, boom }, nil)
	if err != boom {
		t.Fatalf("err %v, want boom", err)
	}
	// The failed slot must not poison the fingerprint.
	_, info := h.serve(t, c, chainQuery, 1)
	if info.Hit {
		t.Fatal("hit after failed optimization")
	}
	_, info = h.serve(t, c, chainQuery, 1)
	if !info.Hit {
		t.Fatal("no hit after successful retry")
	}
}

// An owner canceled mid-optimization must not poison the singleflight
// slot: every waiter queued behind it retries, exactly one becomes the
// new owner and optimizes, and the rest are served its plan.
func TestOwnerCanceledDoesNotPoisonSlot(t *testing.T) {
	h := &harness{ds: testDataset()}
	c := New(64)
	ownerCtx, cancelOwner := context.WithCancel(context.Background())
	defer cancelOwner()
	ownerIn := make(chan struct{})
	ownerDone := make(chan error, 1)
	go func() {
		q := sparql.MustParse(chainQuery)
		// The owner's optimize blocks until its context dies — a client
		// that walked away mid-optimization.
		_, _, err := c.Optimize(ownerCtx, q, opt.TDCMD, 1, h.collect,
			func(ctx context.Context, _ *sparql.Query, _ *stats.Stats) (*opt.Result, error) {
				close(ownerIn)
				<-ctx.Done()
				return nil, ctx.Err()
			}, nil)
		ownerDone <- err
	}()
	<-ownerIn
	const n = 8
	var wg sync.WaitGroup
	infos := make([]Info, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := sparql.MustParse(chainQuery)
			res, info, err := c.Optimize(context.Background(), q, opt.TDCMD, 1, h.collect, h.optimize, nil)
			infos[i], errs[i] = info, err
			if err == nil {
				errs[i] = res.Plan.Validate()
			}
		}(i)
	}
	// Wait until every waiter is parked on the doomed owner's slot, so
	// the cancellation genuinely exercises the wake-and-retry path.
	deadline := time.Now().Add(10 * time.Second)
	for c.Counters().SingleflightWaits < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d waiters queued", c.Counters().SingleflightWaits, n)
		}
		time.Sleep(time.Millisecond)
	}
	cancelOwner()
	if err := <-ownerDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("owner err %v, want context.Canceled", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("waiter %d: %v (owner cancellation leaked to a waiter)", i, err)
		}
	}
	if got := h.optimizes.Load(); got != 1 {
		t.Fatalf("optimizer ran %d times after owner cancellation, want 1 (one waiter re-owns)", got)
	}
	for i, info := range infos {
		if !info.Shared {
			t.Fatalf("waiter %d not marked Shared: %+v", i, info)
		}
	}
	// The fingerprint is healthy: the next call is a plain hit.
	if _, info := h.serve(t, c, chainQuery, 1); !info.Hit {
		t.Fatal("no hit after waiter re-owned the optimization")
	}
}

// Waiters whose own context dies while parked still fail with their
// context error, and repeated owner failures eventually surface the
// owner error instead of retrying forever.
func TestWaiterRetryBounds(t *testing.T) {
	h := &harness{ds: testDataset()}
	c := New(64)
	boom := fmt.Errorf("boom")
	failing := func(context.Context, *sparql.Query, *stats.Stats) (*opt.Result, error) { return nil, boom }
	// Sequential calls each become the owner (the failed slot is
	// unpublished every time), so no retry bound applies to them.
	for i := 0; i < 2; i++ {
		q := sparql.MustParse(chainQuery)
		if _, _, err := c.Optimize(context.Background(), q, opt.TDCMD, 1, h.collect, failing, nil); !errors.Is(err, boom) {
			t.Fatalf("call %d: err %v, want boom", i, err)
		}
	}
	// A waiter whose own context is dead surfaces that — not anything
	// about the healthy owner it would otherwise have queued behind.
	h.gate = make(chan struct{})
	ownerDone := make(chan struct{})
	go func() {
		defer close(ownerDone)
		q := sparql.MustParse(chainQuery)
		if _, _, err := c.Optimize(context.Background(), q, opt.TDCMD, 1, h.collect, h.optimize, nil); err != nil {
			t.Errorf("gated owner: %v", err)
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for h.optimizes.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("gated owner never reached the optimizer")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := sparql.MustParse(chainQuery)
	if _, _, err := c.Optimize(ctx, q, opt.TDCMD, 1, h.collect, h.optimize, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired-context waiter: err %v, want context.Canceled", err)
	}
	close(h.gate)
	<-ownerDone
}

func TestLookupErrorWraps(t *testing.T) {
	cause := fmt.Errorf("shard offline")
	le := &LookupError{Cause: cause}
	if !errors.Is(le, cause) {
		t.Fatal("LookupError must unwrap to its cause")
	}
	if le.Error() == "" || le.Error() == cause.Error() {
		t.Fatalf("Error() = %q, want wrapped message", le.Error())
	}
}

func TestStatsForSnapshots(t *testing.T) {
	h := &harness{ds: testDataset()}
	c := New(64)
	q := sparql.MustParse(chainQuery)
	st1, hit, err := c.StatsFor(q, 1, h.collect)
	if err != nil || hit {
		t.Fatalf("first StatsFor: hit=%v err=%v", hit, err)
	}
	// Isomorphic query with renamed vars: snapshot is remapped into
	// its own variable names.
	q2 := sparql.MustParse(`SELECT * WHERE { ?b <http://worksFor> ?c . ?a <http://knows> ?b . }`)
	st2, hit, err := c.StatsFor(q2, 1, h.collect)
	if err != nil || !hit {
		t.Fatalf("second StatsFor: hit=%v err=%v", hit, err)
	}
	if h.collects.Load() != 1 {
		t.Fatalf("collected %d times, want 1", h.collects.Load())
	}
	// q2's pattern 0 (?b worksFor ?c) must match q's pattern 1.
	if st2.Patterns[0].Card != st1.Patterns[1].Card {
		t.Fatalf("remapped card %v, want %v", st2.Patterns[0].Card, st1.Patterns[1].Card)
	}
	if _, ok := st2.Patterns[0].Bindings["b"]; !ok {
		t.Fatalf("remapped bindings %v lack q2's variable b", st2.Patterns[0].Bindings)
	}
	// Epoch move invalidates the snapshot.
	if _, hit, _ := c.StatsFor(q, 2, h.collect); hit {
		t.Fatal("stale stats served across epochs")
	}
}

func TestNilForZeroCapacity(t *testing.T) {
	if New(0) != nil || New(-3) != nil {
		t.Fatal("New must return nil for non-positive capacity")
	}
}
