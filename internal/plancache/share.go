// Execution sharing: the result-broadcast layer the streaming serving
// path builds on top of this package's plan singleflight. The plan
// cache already guarantees one *optimization* per (fingerprint,
// algorithm, epoch); a ShareTable extends the idea one level down and
// guarantees one *execution* per identical in-flight read — N
// concurrent clients asking the same query against the same snapshot
// epoch get one engine run, whose chunk stream is broadcast to every
// subscriber.
//
// The sharing key is stricter than the plan key: canonical
// fingerprints collapse queries that differ only in constants (they
// can share a plan template but obviously not results), so the table
// is keyed by the caller-built identity string — rendered query text
// plus algorithm, snapshot epoch and row limit (see the root package's
// shareKey).
//
// Protocol. The first caller to Join a key becomes the leader: it
// executes the query itself and, as it pulls chunks from its own
// stream, Publishes a copy of each into the broadcast log, then
// Finishes with its stats result (or error). Followers replay the log
// by cursor — a follower that joins mid-stream first drains the
// already-published chunks, then blocks for new ones — so every
// follower sees the full result regardless of when it subscribed. The
// log therefore retains all chunks while the entry is in flight; the
// leader accounts that retention against its own memory gauge and
// Aborts the broadcast when the charge trips, which downgrades the
// followers (error, or re-execution if they consumed nothing yet)
// without affecting the leader's own stream. Finish and Abort remove
// the entry from the table, closing the join window.
package plancache

import (
	"context"
	"sync"
	"sync/atomic"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/rdf"
)

// ShareCounters is a snapshot of a ShareTable's cumulative behavior.
type ShareCounters struct {
	// Leads counts executions that owned a broadcast entry.
	Leads int64
	// Follows counts calls served by replaying another in-flight
	// execution's broadcast instead of running the engine.
	Follows int64
	// Fallbacks counts followers that lost their broadcast (leader
	// failed or aborted) before consuming anything and re-executed on
	// their own.
	Fallbacks int64
	// Aborted counts broadcasts the leader cut off because the chunk
	// log's memory charge tripped its gauge.
	Aborted int64
}

// ShareTable tracks in-flight shared executions by identity key. The
// zero of *ShareTable (nil) disables sharing: Join always elects the
// caller leader with a nil Broadcast, whose methods are no-ops.
type ShareTable struct {
	mu       sync.Mutex
	inflight map[string]*Broadcast

	leads, follows     atomic.Int64
	fallbacks, aborted atomic.Int64
}

// NewShareTable returns an empty table.
func NewShareTable() *ShareTable {
	return &ShareTable{inflight: make(map[string]*Broadcast)}
}

// Counters returns a snapshot of the cumulative counters (zero for a
// nil table).
func (t *ShareTable) Counters() ShareCounters {
	if t == nil {
		return ShareCounters{}
	}
	return ShareCounters{
		Leads:     t.leads.Load(),
		Follows:   t.follows.Load(),
		Fallbacks: t.fallbacks.Load(),
		Aborted:   t.aborted.Load(),
	}
}

// Fallback records one follower re-executing after losing its
// broadcast.
func (t *ShareTable) Fallback() {
	if t != nil {
		t.fallbacks.Add(1)
	}
}

// Join subscribes to key. The first caller per in-flight key becomes
// the leader (leader == true): it must execute the query and drive the
// returned Broadcast — every Publish feeds the followers, and exactly
// one Finish or Abort must follow, which removes the entry. Later
// callers while the entry is in flight get leader == false and replay
// the same Broadcast. On a nil table every caller leads with a nil
// Broadcast (sharing disabled).
func (t *ShareTable) Join(key string) (b *Broadcast, leader bool) {
	if t == nil {
		return nil, true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if b, ok := t.inflight[key]; ok {
		t.follows.Add(1)
		return b, false
	}
	b = &Broadcast{t: t, key: key, updated: make(chan struct{})}
	t.inflight[key] = b
	t.leads.Add(1)
	return b, true
}

// remove closes the join window for key (no-op when another broadcast
// already replaced it).
func (t *ShareTable) remove(key string, b *Broadcast) {
	t.mu.Lock()
	if t.inflight[key] == b {
		delete(t.inflight, key)
	}
	t.mu.Unlock()
}

// Broadcast is the chunk log of one shared execution. The leader
// appends; any number of followers read concurrently by cursor.
// Published chunks are immutable once appended, so followers read them
// without copying.
type Broadcast struct {
	t   *ShareTable
	key string

	mu sync.Mutex
	// updated is closed and replaced whenever the state a waiter might
	// be blocked on changes (vars set, chunk appended, finished).
	updated chan struct{}
	vars    []string
	chunks  [][][]rdf.TermID
	bytes   int64
	done    bool
	res     *engine.Result
	err     error
}

// ErrShareAborted is the follower-visible failure of a broadcast the
// leader cut off (memory charge tripped). Followers that consumed
// nothing yet fall back to their own execution instead of surfacing
// it.
var errShareAborted = &shareAbortedError{}

type shareAbortedError struct{}

func (*shareAbortedError) Error() string {
	return "plancache: shared execution aborted by leader"
}

func (b *Broadcast) signalLocked() {
	close(b.updated)
	b.updated = make(chan struct{})
}

// SetVars announces the execution's output columns — the first thing a
// follower needs (its response header) before any chunk exists. The
// leader calls it once, as soon as its stream is open.
func (b *Broadcast) SetVars(vars []string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.vars = append([]string{}, vars...)
	b.signalLocked()
	b.mu.Unlock()
}

// Publish appends a copy of rows to the log and returns the bytes the
// copy retains — the leader reserves that amount against its gauge
// and Aborts on failure. Chunks arrive in stream order.
func (b *Broadcast) Publish(rows [][]rdf.TermID) int64 {
	if b == nil || len(rows) == 0 {
		return 0
	}
	width := len(rows[0])
	arena := make([]rdf.TermID, len(rows)*width)
	chunk := make([][]rdf.TermID, len(rows))
	for i, row := range rows {
		dst := arena[i*width : (i+1)*width : (i+1)*width]
		copy(dst, row)
		chunk[i] = dst
	}
	n := int64(len(arena))*termIDBytes + int64(len(chunk))*rowHeaderBytes
	b.mu.Lock()
	b.chunks = append(b.chunks, chunk)
	b.bytes += n
	b.signalLocked()
	b.mu.Unlock()
	return n
}

// termIDBytes / rowHeaderBytes mirror the engine's accounting
// constants: a TermID is 4 bytes, a row header (slice header) 24.
const (
	termIDBytes    = 4
	rowHeaderBytes = 24
)

// Bytes returns the log's retained size so far.
func (b *Broadcast) Bytes() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

// Finish completes the broadcast: res is the leader's stats result
// (Rows nil — followers count their own delivery), err its terminal
// error, and the entry leaves the table. Exactly one Finish or Abort
// per led broadcast.
func (b *Broadcast) Finish(res *engine.Result, err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.done = true
	b.res = res
	b.err = err
	b.signalLocked()
	b.mu.Unlock()
	b.t.remove(b.key, b)
}

// Abort is Finish for a broadcast the leader can no longer afford to
// feed: followers see a typed failure (and fall back when they can).
func (b *Broadcast) Abort() {
	if b == nil {
		return
	}
	b.t.aborted.Add(1)
	b.Finish(nil, errShareAborted)
}

// Aborted reports whether err is a broadcast-abort failure — the one
// follower error that licenses silent re-execution.
func Aborted(err error) bool {
	_, ok := err.(*shareAbortedError)
	return ok
}

// Header blocks until the execution's output columns are known,
// returning them — or the broadcast's error if it failed first.
func (b *Broadcast) Header(ctx context.Context) ([]string, error) {
	for {
		b.mu.Lock()
		if b.vars != nil {
			vars := b.vars
			b.mu.Unlock()
			return vars, nil
		}
		if b.done {
			err := b.err
			b.mu.Unlock()
			return nil, err
		}
		ch := b.updated
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, obs.Canceled(ctx, "share_wait")
		}
	}
}

// Next returns the log chunk at cursor i, blocking while the leader is
// still producing. end reports a clean exhaustion (every published
// chunk consumed and the broadcast finished); a finished-with-error
// broadcast surfaces the leader's error once the cursor passes the
// last published chunk.
func (b *Broadcast) Next(ctx context.Context, i int) (chunk [][]rdf.TermID, end bool, err error) {
	for {
		b.mu.Lock()
		if i < len(b.chunks) {
			chunk = b.chunks[i]
			b.mu.Unlock()
			return chunk, false, nil
		}
		if b.done {
			err = b.err
			b.mu.Unlock()
			return nil, err == nil, err
		}
		ch := b.updated
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false, obs.Canceled(ctx, "share_wait")
		}
	}
}

// Result returns the leader's stats result after a clean finish (nil
// before Finish or after a failure).
func (b *Broadcast) Result() *engine.Result {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.done || b.err != nil {
		return nil
	}
	return b.res
}
