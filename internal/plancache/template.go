package plancache

import (
	"sparqlopt/internal/bitset"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
)

// remapPlan clones a plan tree into another pattern-index/variable
// space: every scan's TP becomes tpMap[TP], pattern sets are rebuilt
// bottom-up, and join variables are renamed through varMap. Costs and
// cardinalities are copied unchanged — a remapped template keeps the
// estimates of the run that produced it. The result satisfies
// plan.Node.Validate whenever the input does, because tpMap is a
// permutation (disjointness and set/cost arithmetic are preserved).
func remapPlan(n *plan.Node, tpMap []int, varMap map[string]string) *plan.Node {
	m := *n
	if n.Alg == plan.Scan {
		m.TP = tpMap[n.TP]
		m.Set = bitset.Single(m.TP)
		return &m
	}
	m.Children = make([]*plan.Node, len(n.Children))
	var set bitset.TPSet
	for i, ch := range n.Children {
		m.Children[i] = remapPlan(ch, tpMap, varMap)
		set = set.Union(m.Children[i].Set)
	}
	m.Set = set
	if v, ok := varMap[n.JoinVar]; ok {
		m.JoinVar = v
	}
	return &m
}

// remapGroups translates HGR reduction groups between index spaces.
func remapGroups(groups []bitset.TPSet, tpMap []int) []bitset.TPSet {
	if groups == nil {
		return nil
	}
	out := make([]bitset.TPSet, len(groups))
	for i, g := range groups {
		out[i] = querygraph.RemapSet(g, tpMap)
	}
	return out
}
