package plancache

import (
	"context"
	"sync"
	"testing"
	"time"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/rdf"
)

// TestShareBroadcast drives the leader/follower protocol end to end:
// a late-joining follower must replay every chunk, in order, including
// the ones published before it subscribed.
func TestShareBroadcast(t *testing.T) {
	tbl := NewShareTable()
	b, leader := tbl.Join("k")
	if !leader {
		t.Fatal("first join must lead")
	}
	if _, again := tbl.Join("k"); again {
		t.Fatal("second join while in flight must follow")
	}
	b.SetVars([]string{"x"})
	b.Publish([][]rdf.TermID{{1}, {2}})

	ctx := context.Background()
	vars, err := b.Header(ctx)
	if err != nil || len(vars) != 1 || vars[0] != "x" {
		t.Fatalf("Header = %v, %v", vars, err)
	}

	var got []rdf.TermID
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			chunk, end, err := b.Next(ctx, i)
			if err != nil {
				t.Errorf("Next: %v", err)
				return
			}
			if end {
				return
			}
			for _, row := range chunk {
				got = append(got, row[0])
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish([][]rdf.TermID{{3}})
	b.Finish(&engine.Result{Vars: []string{"x"}, Returned: 3}, nil)
	wg.Wait()

	want := []rdf.TermID{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("replayed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replayed %v, want %v", got, want)
		}
	}
	if r := b.Result(); r == nil || r.Returned != 3 {
		t.Fatalf("Result = %+v", r)
	}
	// Finish closed the join window: a new join leads again.
	if _, lead := tbl.Join("k"); !lead {
		t.Fatal("join after finish must lead")
	}
	c := tbl.Counters()
	if c.Leads != 2 || c.Follows != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestShareAbort checks the downgrade path: an aborted broadcast
// surfaces a typed error that Aborted recognizes, and Result stays
// nil.
func TestShareAbort(t *testing.T) {
	tbl := NewShareTable()
	b, _ := tbl.Join("k")
	b.SetVars([]string{"x"})
	b.Publish([][]rdf.TermID{{1}})
	b.Abort()
	_, end, err := b.Next(context.Background(), 1)
	if end || err == nil || !Aborted(err) {
		t.Fatalf("Next after abort = end=%v err=%v", end, err)
	}
	if b.Result() != nil {
		t.Fatal("aborted broadcast must not expose a result")
	}
	if c := tbl.Counters(); c.Aborted != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestShareCancellation: a follower blocked on a stalled leader must
// unblock on its own context, not the leader's.
func TestShareCancellation(t *testing.T) {
	tbl := NewShareTable()
	b, _ := tbl.Join("k")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := b.Next(ctx, 0)
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled Next must fail")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next did not unblock on cancellation")
	}
	b.Finish(nil, nil)
}

// TestShareNilTable: the nil table is the sharing-disabled value —
// every caller leads and the nil broadcast's methods are no-ops.
func TestShareNilTable(t *testing.T) {
	var tbl *ShareTable
	b, leader := tbl.Join("k")
	if !leader || b != nil {
		t.Fatalf("nil table Join = %v, %v", b, leader)
	}
	b.SetVars([]string{"x"})
	if n := b.Publish([][]rdf.TermID{{1}}); n != 0 {
		t.Fatalf("nil Publish reserved %d", n)
	}
	b.Finish(nil, nil)
	b.Abort()
	tbl.Fallback()
	if c := tbl.Counters(); c != (ShareCounters{}) {
		t.Fatalf("nil counters = %+v", c)
	}
}
