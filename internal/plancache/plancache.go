// Package plancache is the serving-path plan cache: it makes repeated
// queries skip the optimizer entirely. The paper makes per-query
// optimization cheap; this layer makes it amortized-free for the hot
// part of a workload, the way production RDF stores (PHD-Store,
// AdPart) reuse plans and placement for recurring query patterns.
//
// Three mechanisms compose:
//
//   - Canonical fingerprints (querygraph.Canonicalize) collapse every
//     query of one shape — same join structure and predicates,
//     constants in the same subject/object positions — onto one cache
//     entry. Cached plans and statistics snapshots are stored in the
//     canonical index/name space and remapped to each concrete query
//     on the way in and out, so ?x <knows> <alice> can be served with
//     the plan optimized for ?y <knows> <bob>.
//
//   - A lock-striped LRU (the sharding mirrors the optimizer's memo
//     table) bounds the number of resident fingerprints; eviction is
//     per shard, counters are global.
//
//   - Singleflight: the first goroutine to miss on a (fingerprint,
//     algorithm) pair owns the optimization; concurrent missers block
//     on its future instead of re-optimizing. Combined with epoch
//     tags — every cached artifact carries the dataset epoch it was
//     derived under and is dropped when the epoch moves — this gives
//     exactly one optimization per fingerprint, algorithm and epoch.
//
// Serving a template plan to a query with different constants is the
// standard parameterized-plan trade-off: the plan is always valid
// (execution is exact, so result rows are identical to an uncached
// run), but it was costed under the first query's constants and may
// be suboptimal for skewed parameters.
package plancache

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// numShards is the number of lock stripes. Like the optimizer's memo
// table, enough stripes that concurrent serving goroutines rarely
// contend, few enough that the table stays small.
const numShards = 16

// maxWaiterRetries bounds how many failed owners a singleflight waiter
// will outlive before surfacing the last owner's error. Each retry
// either claims ownership (and optimizes itself) or queues behind a
// newer owner, so repeated trips mean the shape itself keeps failing.
const maxWaiterRetries = 3

// CollectFunc computes fresh per-pattern statistics for q.
type CollectFunc func(q *sparql.Query) (*stats.Stats, error)

// OptimizeFunc runs the actual optimizer for a cache miss, using the
// provided statistics (which may be a remapped cached snapshot).
type OptimizeFunc func(ctx context.Context, q *sparql.Query, st *stats.Stats) (*opt.Result, error)

// Counters is a snapshot of the cache's cumulative behavior.
type Counters struct {
	// Hits counts Optimize calls served from a cached plan template.
	Hits int64
	// Misses counts Optimize calls that ran the optimizer.
	Misses int64
	// Evictions counts entries dropped by the LRU capacity bound.
	Evictions int64
	// SingleflightWaits counts Optimize calls that blocked on another
	// goroutine's in-flight optimization of the same fingerprint
	// instead of duplicating it.
	SingleflightWaits int64
	// Invalidations counts entries reset because the dataset epoch
	// moved past the one they were derived under (and, with scoped
	// invalidation, the change actually touched the entry's
	// predicates).
	Invalidations int64
	// Retained counts entries that survived an epoch move because the
	// change set was disjoint from the entry's predicates — the writes
	// that scoped invalidation made free.
	Retained int64
	// StatsHits / StatsMisses count statistics-snapshot reuse vs.
	// fresh stats.Collect scans.
	StatsHits   int64
	StatsMisses int64
}

// LookupError marks a failure of the cache machinery itself — as
// opposed to a failure of the optimization it was asked to run. The
// serving path treats it as degradable: it bypasses the cache and
// optimizes the query directly instead of failing it.
type LookupError struct {
	Cause error
}

func (e *LookupError) Error() string { return "plancache: lookup failed: " + e.Cause.Error() }

func (e *LookupError) Unwrap() error { return e.Cause }

// Info describes how the cache treated one Optimize call.
type Info struct {
	// Hit reports that the plan came from the cache (including plans
	// produced by an optimization this call waited on).
	Hit bool
	// Shared reports that this call blocked on another goroutine's
	// in-flight optimization (singleflight deduplication).
	Shared bool
	// Epoch is the dataset epoch the served plan was derived under.
	Epoch uint64
}

// Cache is a sharded LRU of plan templates and statistics snapshots
// keyed by canonical query fingerprint. It is safe for concurrent use.
type Cache struct {
	capPerShard int
	shards      [numShards]shard

	// lookup and changed enable predicate-scoped invalidation (see
	// SetInvalidation); both nil means every epoch move drops every
	// touched entry, the pre-scoping behavior.
	lookup  func(string) (rdf.TermID, bool)
	changed func(from, to uint64) rdf.ChangeSet

	hits, misses, evictions atomic.Int64
	waits, invalidations    atomic.Int64
	retained                atomic.Int64
	statsHits, statsMisses  atomic.Int64
}

type shard struct {
	mu   sync.Mutex
	byFP map[[2]uint64]*list.Element
	lru  *list.List // of *entry; front = most recently used
}

// entry holds everything cached for one fingerprint. All fields after
// mu are guarded by it; fp and key are immutable.
type entry struct {
	fp  [2]uint64
	key string

	mu    sync.Mutex
	valid bool   // epoch has been set at least once
	epoch uint64 // dataset epoch the contents were derived under
	// preds is the predicate set the fingerprint's template touches
	// (predicates are part of the canonical shape, so it is shared by
	// every query of the fingerprint). predWild marks a template whose
	// predicate set is unknowable — a variable predicate, or a
	// constant that was not interned when first seen — which must be
	// invalidated by every change. Both are set on first sync.
	preds    map[rdf.TermID]struct{}
	predWild bool
	// cstats is the statistics snapshot in canonical space (nil until
	// the first collection at this epoch).
	cstats *stats.Stats
	// plans holds one future per algorithm, in canonical space.
	plans map[opt.Algorithm]*slot
}

// slot is the singleflight future for one (fingerprint, algorithm)
// optimization. The owner fills the result fields and closes done
// exactly once; waiters block on done and read afterwards. A slot
// that failed carries err and has been removed from entry.plans, so
// later calls retry.
type slot struct {
	done    chan struct{}
	plan    *plan.Node // canonical space
	counter opt.Counter
	used    opt.Algorithm
	groups  []bitset.TPSet // canonical space
	err     error
}

// New returns a cache holding at least capacity fingerprints (rounded
// up to a multiple of the shard count). capacity <= 0 returns nil —
// a nil *Cache is the "caching disabled" value and must not be used.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + numShards - 1) / numShards
	c := &Cache{capPerShard: per}
	for i := range c.shards {
		c.shards[i].byFP = make(map[[2]uint64]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// Capacity returns the effective capacity in fingerprints.
func (c *Cache) Capacity() int { return c.capPerShard * numShards }

// Len returns the number of resident fingerprints.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// Counters returns a snapshot of the cumulative counters.
func (c *Cache) Counters() Counters {
	return Counters{
		Hits:              c.hits.Load(),
		Misses:            c.misses.Load(),
		Evictions:         c.evictions.Load(),
		SingleflightWaits: c.waits.Load(),
		Invalidations:     c.invalidations.Load(),
		Retained:          c.retained.Load(),
		StatsHits:         c.statsHits.Load(),
		StatsMisses:       c.statsMisses.Load(),
	}
}

// SetInvalidation switches the cache to predicate-scoped invalidation:
// on an epoch move, an entry is dropped only when changed(entryEpoch,
// newEpoch) touches the predicate set of the entry's template
// (resolved to TermIDs via lookup); otherwise the entry — its plan
// templates and statistics snapshot — is retained and retagged to the
// new epoch. Must be called before the cache starts serving.
func (c *Cache) SetInvalidation(lookup func(string) (rdf.TermID, bool), changed func(from, to uint64) rdf.ChangeSet) {
	c.lookup = lookup
	c.changed = changed
}

// RegisterMetrics exposes the cache's counters and occupancy as live
// gauges on r (read at exposition time, no per-operation overhead).
// Safe to call on a nil cache or registry (no-op).
func (c *Cache) RegisterMetrics(r *obs.Registry) {
	if c == nil || r == nil {
		return
	}
	gauges := []struct {
		name, help string
		fn         func() float64
	}{
		{"plancache_hits", "Optimize calls served from a cached plan.", func() float64 { return float64(c.hits.Load()) }},
		{"plancache_misses", "Optimize calls that ran the optimizer.", func() float64 { return float64(c.misses.Load()) }},
		{"plancache_evictions", "Entries dropped by the LRU bound.", func() float64 { return float64(c.evictions.Load()) }},
		{"plancache_singleflight_waits", "Calls that joined an in-flight optimization.", func() float64 { return float64(c.waits.Load()) }},
		{"plancache_invalidations", "Entries reset by dataset epoch moves.", func() float64 { return float64(c.invalidations.Load()) }},
		{"plancache_retained", "Entries kept across epoch moves whose change sets missed them.", func() float64 { return float64(c.retained.Load()) }},
		{"plancache_stats_hits", "Statistics snapshots served from the cache.", func() float64 { return float64(c.statsHits.Load()) }},
		{"plancache_stats_misses", "Fresh statistics collections.", func() float64 { return float64(c.statsMisses.Load()) }},
		{"plancache_entries", "Resident fingerprints.", func() float64 { return float64(c.Len()) }},
		{"plancache_capacity", "Fingerprint capacity.", func() float64 { return float64(c.Capacity()) }},
	}
	for _, g := range gauges {
		r.GaugeFunc(g.name, g.help, g.fn)
	}
}

// entryFor returns the (possibly fresh) entry for canon, updating LRU
// order and evicting past capacity. It returns nil on a 128-bit
// fingerprint collision between different templates — the newcomer is
// then served uncached rather than aliased onto the wrong shape.
func (c *Cache) entryFor(canon *querygraph.Canon) *entry {
	sh := &c.shards[canon.Fingerprint[0]%numShards]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.byFP[canon.Fingerprint]; ok {
		e := el.Value.(*entry)
		if e.key != canon.Key {
			return nil
		}
		sh.lru.MoveToFront(el)
		return e
	}
	e := &entry{fp: canon.Fingerprint, key: canon.Key, plans: make(map[opt.Algorithm]*slot)}
	sh.byFP[canon.Fingerprint] = sh.lru.PushFront(e)
	for sh.lru.Len() > c.capPerShard {
		back := sh.lru.Back()
		sh.lru.Remove(back)
		delete(sh.byFP, back.Value.(*entry).fp)
		c.evictions.Add(1)
	}
	return e
}

// syncEpoch reconciles the entry with the caller's (pinned) dataset
// epoch. Callers must hold e.mu. A caller at or behind the entry's
// epoch is served as-is: plans are valid at every epoch (execution is
// exact) and its rows come from its own pinned snapshot. When the
// caller's epoch is ahead, the entry is retained (and retagged) if
// scoped invalidation is on and the change set missed the template's
// predicates, and dropped otherwise. In-flight owners of dropped
// slots still resolve their own slot objects (waiters holding them
// are woken normally); the slots are simply no longer reachable for
// new calls.
func (e *entry) syncEpoch(epoch uint64, c *Cache, q *sparql.Query) {
	if e.valid && e.epoch >= epoch {
		return
	}
	if !e.valid {
		e.valid = true
		e.epoch = epoch
		e.resolvePreds(q, c)
		return
	}
	if c.changed != nil && !e.predWild {
		cs := c.changed(e.epoch, epoch)
		if !cs.Touches(e.preds, false) {
			if e.cstats != nil || len(e.plans) > 0 {
				c.retained.Add(1)
			}
			e.epoch = epoch
			if e.cstats != nil {
				e.cstats.Epoch = epoch
			}
			return
		}
	}
	if e.cstats != nil || len(e.plans) > 0 {
		c.invalidations.Add(1)
	}
	e.epoch = epoch
	e.cstats = nil
	e.plans = make(map[opt.Algorithm]*slot)
}

// resolvePreds records the template's predicate set on first sync.
// Caller holds e.mu. Without scoped invalidation there is nothing to
// resolve; with it, any unresolvable predicate makes the entry
// wildcard (always invalidated), never wrongly retained.
func (e *entry) resolvePreds(q *sparql.Query, c *Cache) {
	if c.lookup == nil {
		return
	}
	e.preds = make(map[rdf.TermID]struct{}, len(q.Patterns))
	for _, tp := range q.Patterns {
		if tp.P.IsVar() {
			e.predWild = true
			return
		}
		id, ok := c.lookup(tp.P.Value)
		if !ok {
			e.predWild = true
			return
		}
		e.preds[id] = struct{}{}
	}
}

// Optimize returns an optimization result for q under algo and the
// given dataset epoch, serving a remapped cached template when one
// exists, joining an in-flight optimization of the same fingerprint
// when one is running, and otherwise optimizing via the callbacks
// (collect may be skipped when a statistics snapshot is cached). The
// returned result's plan is always in q's own pattern/variable space.
// tr, when non-nil, receives canonicalize / cache_lookup / stats /
// enumerate lifecycle spans.
func (c *Cache) Optimize(ctx context.Context, q *sparql.Query, algo opt.Algorithm, epoch uint64,
	collect CollectFunc, optimize OptimizeFunc, tr *obs.Trace) (*opt.Result, Info, error) {
	sp := tr.Span("canonicalize")
	canon, err := querygraph.Canonicalize(q)
	sp.End()
	if err != nil {
		return nil, Info{}, err
	}
	lookup := tr.Span("cache_lookup")
	e := c.entryFor(canon)
	if e == nil {
		// Fingerprint collision: bypass the cache for this query.
		lookup.SetAttr("outcome", "collision")
		lookup.End()
		c.misses.Add(1)
		c.statsMisses.Add(1)
		sp := tr.Span("stats")
		st, err := collect(q)
		sp.End()
		if err != nil {
			return nil, Info{}, err
		}
		sp = tr.Span("enumerate")
		res, err := optimize(ctx, q, st)
		sp.End()
		return res, Info{Epoch: epoch}, err
	}

	var (
		s      *slot
		shared bool
	)
	for attempt := 0; ; attempt++ {
		e.mu.Lock()
		e.syncEpoch(epoch, c, q)
		cur, ok := e.plans[algo]
		if !ok {
			// This goroutine owns the optimization for (fingerprint, algo).
			s = &slot{done: make(chan struct{})}
			e.plans[algo] = s
			break // e.mu still held; released below after the cstats read
		}
		e.mu.Unlock()
		select {
		case <-cur.done:
		default:
			shared = true
			c.waits.Add(1)
			select {
			case <-cur.done:
			case <-ctx.Done():
				lookup.SetAttr("outcome", "canceled")
				lookup.End()
				return nil, Info{Shared: shared}, obs.Canceled(ctx, "cache_lookup")
			}
		}
		if cur.err != nil {
			// The owner failed — it may have been canceled, tripped its
			// budget, or panicked — and fail() already unpublished the
			// slot. Its private failure must not poison the fingerprint
			// for everyone who queued behind it: loop back to the claim
			// so one of the waiters becomes the new owner and optimizes
			// under its own context. Only give up after several
			// collective failures (the shape itself is likely broken),
			// or when our own context expired.
			if err := obs.Canceled(ctx, "cache_lookup"); err != nil {
				lookup.SetAttr("outcome", "canceled")
				lookup.End()
				return nil, Info{Shared: shared}, err
			}
			if attempt >= maxWaiterRetries {
				lookup.SetAttr("outcome", "error")
				lookup.End()
				return nil, Info{Epoch: epoch, Shared: shared}, cur.err
			}
			continue
		}
		c.hits.Add(1)
		lookup.SetAttr("outcome", "hit")
		if shared {
			lookup.SetAttr("shared", "true")
		}
		lookup.End()
		return &opt.Result{
			Plan:    remapPlan(cur.plan, canon.PatternOf, canon.VarOf),
			Counter: cur.counter,
			Used:    cur.used,
			Groups:  remapGroups(cur.groups, canon.PatternOf),
		}, Info{Hit: true, Shared: shared, Epoch: epoch}, nil
	}
	var st *stats.Stats
	if e.cstats != nil {
		st = e.cstats.Remap(canon.CanonOf, canon.VarOf)
	}
	e.mu.Unlock()

	c.misses.Add(1)
	lookup.SetAttr("outcome", "miss")
	lookup.End()
	stSpan := tr.Span("stats")
	if st != nil {
		c.statsHits.Add(1)
		stSpan.SetAttr("source", "cached_snapshot")
		stSpan.End()
	} else {
		c.statsMisses.Add(1)
		stSpan.SetAttr("source", "collected")
		qs, err := collect(q)
		stSpan.End()
		if err != nil {
			c.fail(e, algo, s, err)
			return nil, Info{Epoch: epoch, Shared: shared}, err
		}
		st = qs
		snap := qs.Remap(canon.PatternOf, canon.CanonVar)
		e.mu.Lock()
		if e.valid && e.epoch == epoch && e.cstats == nil {
			e.cstats = snap
		}
		e.mu.Unlock()
	}

	enumSpan := tr.Span("enumerate")
	res, err := optimize(ctx, q, st)
	enumSpan.End()
	if err != nil {
		c.fail(e, algo, s, err)
		return nil, Info{Epoch: epoch, Shared: shared}, err
	}
	s.plan = remapPlan(res.Plan, canon.CanonOf, canon.CanonVar)
	s.counter = res.Counter
	s.used = res.Used
	s.groups = remapGroups(res.Groups, canon.CanonOf)
	close(s.done)
	return res, Info{Epoch: epoch, Shared: shared}, nil
}

// fail resolves s with err and unpublishes it so later calls retry.
func (c *Cache) fail(e *entry, algo opt.Algorithm, s *slot, err error) {
	s.err = err
	close(s.done)
	e.mu.Lock()
	if e.plans[algo] == s {
		delete(e.plans, algo)
	}
	e.mu.Unlock()
}

// StatsFor returns per-pattern statistics for q at the given epoch,
// remapping the fingerprint's cached snapshot when one exists and
// collecting (and caching) fresh ones otherwise. Unlike Optimize it
// does not singleflight: concurrent first collections of one
// fingerprint may duplicate work, and the last snapshot stored wins —
// snapshots for the same (fingerprint, epoch) are interchangeable.
func (c *Cache) StatsFor(q *sparql.Query, epoch uint64, collect CollectFunc) (*stats.Stats, bool, error) {
	canon, err := querygraph.Canonicalize(q)
	if err != nil {
		return nil, false, err
	}
	e := c.entryFor(canon)
	if e == nil {
		c.statsMisses.Add(1)
		st, err := collect(q)
		return st, false, err
	}
	e.mu.Lock()
	e.syncEpoch(epoch, c, q)
	if e.cstats != nil {
		st := e.cstats.Remap(canon.CanonOf, canon.VarOf)
		e.mu.Unlock()
		c.statsHits.Add(1)
		return st, true, nil
	}
	e.mu.Unlock()
	c.statsMisses.Add(1)
	st, err := collect(q)
	if err != nil {
		return nil, false, err
	}
	snap := st.Remap(canon.PatternOf, canon.CanonVar)
	e.mu.Lock()
	if e.valid && e.epoch == epoch && e.cstats == nil {
		e.cstats = snap
	}
	e.mu.Unlock()
	return st, false, nil
}
