package querygraph

import (
	"testing"

	"sparqlopt/internal/sparql"
)

func canon(t *testing.T, src string) *Canon {
	t.Helper()
	c, err := Canonicalize(sparql.MustParse(src))
	if err != nil {
		t.Fatalf("Canonicalize(%q): %v", src, err)
	}
	return c
}

func TestCanonicalizeInvariantUnderRenamingAndReordering(t *testing.T) {
	base := canon(t, `SELECT * WHERE {
		?x <http://knows> ?y .
		?y <http://worksFor> ?o .
		?o <http://inCity> <http://berlin> .
	}`)
	variants := []string{
		// Renamed variables.
		`SELECT * WHERE {
			?a <http://knows> ?b .
			?b <http://worksFor> ?c .
			?c <http://inCity> <http://berlin> .
		}`,
		// Reordered patterns.
		`SELECT * WHERE {
			?o <http://inCity> <http://berlin> .
			?x <http://knows> ?y .
			?y <http://worksFor> ?o .
		}`,
		// Different constant, same position (the parameter lift).
		`SELECT * WHERE {
			?x <http://knows> ?y .
			?y <http://worksFor> ?o .
			?o <http://inCity> <http://munich> .
		}`,
		// Different projection: the template covers the BGP only.
		`SELECT ?x WHERE {
			?x <http://knows> ?y .
			?y <http://worksFor> ?o .
			?o <http://inCity> <http://berlin> .
		}`,
	}
	for i, src := range variants {
		c := canon(t, src)
		if c.Key != base.Key {
			t.Errorf("variant %d: key\n%q\nwant\n%q", i, c.Key, base.Key)
		}
		if c.Fingerprint != base.Fingerprint {
			t.Errorf("variant %d: fingerprint %v, want %v", i, c.Fingerprint, base.Fingerprint)
		}
	}
}

func TestCanonicalizeDistinguishesShapes(t *testing.T) {
	keys := map[string]string{}
	for name, src := range map[string]string{
		"chain":            `SELECT * WHERE { ?x <http://p> ?y . ?y <http://p> ?z . }`,
		"star":             `SELECT * WHERE { ?x <http://p> ?y . ?x <http://p> ?z . }`,
		"other-predicate":  `SELECT * WHERE { ?x <http://q> ?y . ?y <http://p> ?z . }`,
		"constant-subject": `SELECT * WHERE { <http://a> <http://p> ?y . ?y <http://p> ?z . }`,
		"constant-object":  `SELECT * WHERE { ?x <http://p> <http://a> . ?x <http://p> ?z . }`,
		"literal-object":   `SELECT * WHERE { ?x <http://p> "a" . ?x <http://p> ?z . }`,
		"three":            `SELECT * WHERE { ?x <http://p> ?y . ?y <http://p> ?z . ?z <http://p> ?w . }`,
		"self":             `SELECT * WHERE { ?x <http://p> ?x . ?x <http://p> ?z . }`,
	} {
		c := canon(t, src)
		for other, key := range keys {
			if key == c.Key {
				t.Errorf("%s and %s share key %q", name, other, c.Key)
			}
		}
		keys[name] = c.Key
	}
}

func TestCanonicalizeMapsAreInverses(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE {
		?o <http://inCity> <http://berlin> .
		?x <http://knows> ?y .
		?y <http://worksFor> ?o .
		?x <http://age> "42" .
	}`)
	c, err := Canonicalize(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.PatternOf) != len(q.Patterns) || len(c.CanonOf) != len(q.Patterns) {
		t.Fatalf("map sizes %d/%d, want %d", len(c.PatternOf), len(c.CanonOf), len(q.Patterns))
	}
	for ci, qi := range c.PatternOf {
		if c.CanonOf[qi] != ci {
			t.Errorf("CanonOf[PatternOf[%d]] = %d", ci, c.CanonOf[qi])
		}
	}
	for name, cn := range c.CanonVar {
		if c.VarOf[cn] != name {
			t.Errorf("VarOf[CanonVar[%s]] = %s", name, c.VarOf[cn])
		}
	}
	vars := q.Vars()
	if len(c.CanonVar) != len(vars) {
		t.Errorf("canonicalized %d vars, query has %d", len(c.CanonVar), len(vars))
	}
}

func TestCanonicalizeDeterministic(t *testing.T) {
	src := `SELECT * WHERE {
		?a <http://p> ?b . ?b <http://q> ?c . ?c <http://p> ?a .
		?b <http://r> "x" . ?d <http://q> ?a .
	}`
	first := canon(t, src)
	for i := 0; i < 20; i++ {
		if c := canon(t, src); c.Key != first.Key || c.Fingerprint != first.Fingerprint {
			t.Fatalf("run %d: nondeterministic canonicalization", i)
		}
	}
}

func TestCanonicalizeRejectsEmpty(t *testing.T) {
	if _, err := Canonicalize(&sparql.Query{}); err == nil {
		t.Fatal("expected error for empty query")
	}
}
