package querygraph

import (
	"sparqlopt/internal/bitset"
	"sparqlopt/internal/sparql"
)

// Graph is the query graph G_Q = (V_Q, E_Q) of paper §II-A: a directed
// labeled graph whose vertices are the distinct subject/object terms
// (variables and constants) and whose edges are the triple patterns,
// directed from subject to object and labeled with the predicate.
//
// The partitioning model's query-side combine function walks this
// graph to derive maximal local queries (appendix A).
type Graph struct {
	Query *sparql.Query

	// Terms holds the distinct subject/object terms; Index inverts it.
	Terms []sparql.Term
	index map[sparql.Term]int

	// SubjOf and ObjOf give, per vertex, the patterns having the vertex
	// as subject resp. object.
	SubjOf []bitset.TPSet
	ObjOf  []bitset.TPSet

	// TPEnds gives, per pattern, the (subject, object) vertex indexes.
	TPEnds [][2]int
}

// NewGraph builds the query graph of q. Queries wider than
// bitset.MaxPatterns are rejected by NewJoinGraph; callers typically
// construct both views together via Build.
func NewGraph(q *sparql.Query) *Graph {
	g := &Graph{Query: q, index: make(map[sparql.Term]int), TPEnds: make([][2]int, len(q.Patterns))}
	vertex := func(t sparql.Term) int {
		if i, ok := g.index[t]; ok {
			return i
		}
		i := len(g.Terms)
		g.index[t] = i
		g.Terms = append(g.Terms, t)
		g.SubjOf = append(g.SubjOf, 0)
		g.ObjOf = append(g.ObjOf, 0)
		return i
	}
	for i, tp := range q.Patterns {
		s := vertex(tp.S)
		o := vertex(tp.O)
		g.SubjOf[s] = g.SubjOf[s].Add(i)
		g.ObjOf[o] = g.ObjOf[o].Add(i)
		g.TPEnds[i] = [2]int{s, o}
	}
	return g
}

// NumVertices is |V_Q|.
func (g *Graph) NumVertices() int { return len(g.Terms) }

// VertexOf returns the vertex index of term t, if t appears as a
// subject or object.
func (g *Graph) VertexOf(t sparql.Term) (int, bool) {
	i, ok := g.index[t]
	return i, ok
}

// Incident returns the patterns having vertex v as subject or object.
func (g *Graph) Incident(v int) bitset.TPSet {
	return g.SubjOf[v].Union(g.ObjOf[v])
}

// ForwardClosure returns the patterns reachable from vertex v by
// following edges in their subject-to-object direction only, up to
// maxHops edges deep (maxHops < 0 means unbounded). This implements
// the combine semantics of semantic hash partitioning (2-hop forward)
// and path partitioning.
func (g *Graph) ForwardClosure(v int, maxHops int) bitset.TPSet {
	var tps bitset.TPSet
	type item struct{ vertex, depth int }
	seen := make([]bool, len(g.Terms))
	queue := []item{{v, 0}}
	seen[v] = true
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if maxHops >= 0 && it.depth >= maxHops {
			continue
		}
		g.SubjOf[it.vertex].Each(func(tp int) bool {
			tps = tps.Add(tp)
			o := g.TPEnds[tp][1]
			if !seen[o] {
				seen[o] = true
				queue = append(queue, item{o, it.depth + 1})
			}
			return true
		})
	}
	return tps
}

// UndirectedClosure returns the patterns reachable from vertex v
// ignoring edge direction, up to maxHops edges deep (maxHops < 0 means
// unbounded).
func (g *Graph) UndirectedClosure(v int, maxHops int) bitset.TPSet {
	var tps bitset.TPSet
	type item struct{ vertex, depth int }
	seen := make([]bool, len(g.Terms))
	queue := []item{{v, 0}}
	seen[v] = true
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if maxHops >= 0 && it.depth >= maxHops {
			continue
		}
		g.Incident(it.vertex).Each(func(tp int) bool {
			tps = tps.Add(tp)
			for _, next := range g.TPEnds[tp] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, item{next, it.depth + 1})
				}
			}
			return true
		})
	}
	return tps
}

// Views bundles the two graph views of one query.
type Views struct {
	Join  *JoinGraph
	Query *Graph
}

// Build constructs both views, validating the query size once.
func Build(q *sparql.Query) (*Views, error) {
	jg, err := NewJoinGraph(q)
	if err != nil {
		return nil, err
	}
	return &Views{Join: jg, Query: NewGraph(q)}, nil
}
