// Package querygraph builds the two graph views of a SPARQL query used
// by the optimizer:
//
//   - the query graph G_Q = (V_Q, E_Q) of paper §II-A, whose vertices
//     are the subject/object terms and whose labeled edges are the
//     triple patterns — used by the generic partitioning model to
//     derive maximal local queries; and
//   - the bipartite join graph J(Q) = (V_T, V_J, E_J) of Definition 1,
//     whose vertex classes are triple patterns and shared variables —
//     used by plan enumeration.
//
// It also classifies queries as star, chain, cycle, tree or dense
// (§II-B, Fig. 2) and provides the connectivity and component
// primitives Algorithms 2 and 3 rely on.
package querygraph

import (
	"fmt"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/sparql"
)

// Class is the structural class of a query's join graph (§II-B).
type Class uint8

const (
	// Star queries share a single join variable among all patterns.
	Star Class = iota
	// Chain queries have a path-shaped join graph.
	Chain
	// Cycle queries have a single-cycle join graph.
	Cycle
	// Tree queries have an acyclic join graph (that is not a star or chain).
	Tree
	// Dense queries contain at least one cycle (and are not a pure cycle).
	Dense
)

// String returns the class name used in the paper.
func (c Class) String() string {
	switch c {
	case Star:
		return "star"
	case Chain:
		return "chain"
	case Cycle:
		return "cycle"
	case Tree:
		return "tree"
	default:
		return "dense"
	}
}

// JoinGraph is the bipartite join graph J(Q) of Definition 1, in a
// bitset-friendly representation. Join variables are variables shared
// by at least two triple patterns; they are indexed densely.
type JoinGraph struct {
	Query *sparql.Query

	// NumTP is |V_T|, the number of triple patterns.
	NumTP int
	// Vars holds the join-variable names; VarIndex inverts it.
	Vars     []string
	VarIndex map[string]int
	// Ntp[j] is N_tp(v_j): the set of triple patterns containing join
	// variable j (so the degree of v_j is Ntp[j].Len()).
	Ntp []bitset.TPSet
	// TPVars[i] lists the join-variable indexes contained in pattern i.
	TPVars [][]int
	// Adj[i] is the set of patterns sharing at least one join variable
	// with pattern i (excluding i itself).
	Adj []bitset.TPSet
}

// NewJoinGraph builds the join graph of q. It returns an error when the
// query exceeds bitset.MaxPatterns triple patterns.
func NewJoinGraph(q *sparql.Query) (*JoinGraph, error) {
	n := len(q.Patterns)
	if n == 0 {
		return nil, fmt.Errorf("querygraph: query has no triple patterns")
	}
	if n > bitset.MaxPatterns {
		return nil, fmt.Errorf("querygraph: query has %d triple patterns, maximum is %d", n, bitset.MaxPatterns)
	}
	jg := &JoinGraph{
		Query:    q,
		NumTP:    n,
		VarIndex: make(map[string]int),
		TPVars:   make([][]int, n),
		Adj:      make([]bitset.TPSet, n),
	}
	// Collect the patterns containing each variable.
	occ := map[string]bitset.TPSet{}
	var order []string
	for i, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			if _, ok := occ[v]; !ok {
				order = append(order, v)
			}
			occ[v] = occ[v].Add(i)
		}
	}
	// Join variables are those shared by >= 2 patterns.
	for _, v := range order {
		if occ[v].Len() < 2 {
			continue
		}
		j := len(jg.Vars)
		jg.VarIndex[v] = j
		jg.Vars = append(jg.Vars, v)
		jg.Ntp = append(jg.Ntp, occ[v])
	}
	for j, members := range jg.Ntp {
		members.Each(func(i int) bool {
			jg.TPVars[i] = append(jg.TPVars[i], j)
			jg.Adj[i] = jg.Adj[i].Union(members.Remove(i))
			return true
		})
	}
	return jg, nil
}

// NewJoinGraphFromVarSets builds a join graph over abstract units:
// unit i exposes the variable names varSets[i]. Variables shared by at
// least two units become join variables. HGR-TD-CMD uses this to run
// plan enumeration over a reduced join graph whose vertices are groups
// of triple patterns (§IV-B); the Query field is nil for such graphs.
func NewJoinGraphFromVarSets(varSets [][]string) (*JoinGraph, error) {
	n := len(varSets)
	if n == 0 {
		return nil, fmt.Errorf("querygraph: no units")
	}
	if n > bitset.MaxPatterns {
		return nil, fmt.Errorf("querygraph: %d units, maximum is %d", n, bitset.MaxPatterns)
	}
	jg := &JoinGraph{
		NumTP:    n,
		VarIndex: make(map[string]int),
		TPVars:   make([][]int, n),
		Adj:      make([]bitset.TPSet, n),
	}
	occ := map[string]bitset.TPSet{}
	var order []string
	for i, vars := range varSets {
		for _, v := range vars {
			if occ[v].Has(i) {
				continue
			}
			if _, ok := occ[v]; !ok {
				order = append(order, v)
			}
			occ[v] = occ[v].Add(i)
		}
	}
	for _, v := range order {
		if occ[v].Len() < 2 {
			continue
		}
		j := len(jg.Vars)
		jg.VarIndex[v] = j
		jg.Vars = append(jg.Vars, v)
		jg.Ntp = append(jg.Ntp, occ[v])
	}
	for j, members := range jg.Ntp {
		members.Each(func(i int) bool {
			jg.TPVars[i] = append(jg.TPVars[i], j)
			jg.Adj[i] = jg.Adj[i].Union(members.Remove(i))
			return true
		})
	}
	return jg, nil
}

// NumJoinVars is |V_J|.
func (jg *JoinGraph) NumJoinVars() int { return len(jg.Vars) }

// All returns the full pattern set of the query.
func (jg *JoinGraph) All() bitset.TPSet { return bitset.Full(jg.NumTP) }

// NumEdges is |E_J|: the total number of (pattern, join-variable)
// incidences.
func (jg *JoinGraph) NumEdges() int {
	n := 0
	for _, vs := range jg.TPVars {
		n += len(vs)
	}
	return n
}

// AdjIn returns the neighbors of pattern tp inside s (patterns of s
// sharing a join variable with tp), excluding tp itself.
func (jg *JoinGraph) AdjIn(s bitset.TPSet, tp int) bitset.TPSet {
	return jg.Adj[tp].Intersect(s).Remove(tp)
}

// AdjOf returns the union of neighbors of every pattern in sub,
// restricted to s and excluding sub — the expansion frontier
// Adj(SQ) ∩ Q \ SQ used by Algorithm 2.
func (jg *JoinGraph) AdjOf(s, sub bitset.TPSet) bitset.TPSet {
	var out bitset.TPSet
	sub.Each(func(i int) bool {
		out = out.Union(jg.Adj[i])
		return true
	})
	return out.Intersect(s).Diff(sub)
}

// adjExcluding returns the neighbors of tp within s connected via any
// join variable other than vj.
func (jg *JoinGraph) adjExcluding(s bitset.TPSet, tp, vj int) bitset.TPSet {
	var out bitset.TPSet
	for _, v := range jg.TPVars[tp] {
		if v == vj {
			continue
		}
		out = out.Union(jg.Ntp[v].Intersect(s))
	}
	return out.Remove(tp)
}

// Connected reports whether the patterns of s form a connected
// subgraph of the join graph. The empty set and singletons are
// connected.
func (jg *JoinGraph) Connected(s bitset.TPSet) bool {
	if s.Len() <= 1 {
		return true
	}
	start := s.Min()
	reached := bitset.Single(start)
	frontier := reached
	for !frontier.IsEmpty() {
		var next bitset.TPSet
		frontier.Each(func(i int) bool {
			next = next.Union(jg.Adj[i].Intersect(s))
			return true
		})
		next = next.Diff(reached)
		reached = reached.Union(next)
		frontier = next
	}
	return reached == s
}

// Components returns the connected components of s in the join graph,
// ordered by their smallest member.
func (jg *JoinGraph) Components(s bitset.TPSet) []bitset.TPSet {
	return jg.componentsBy(s, func(i int) bitset.TPSet { return jg.Adj[i].Intersect(s) })
}

// ComponentsExcluding returns the connected components of s in the
// join graph with join variable vj removed (J(Q) − v_j of §III-C,
// Fig. 4). Patterns connected only through vj fall apart.
func (jg *JoinGraph) ComponentsExcluding(s bitset.TPSet, vj int) []bitset.TPSet {
	return jg.componentsBy(s, func(i int) bitset.TPSet { return jg.adjExcluding(s, i, vj) })
}

func (jg *JoinGraph) componentsBy(s bitset.TPSet, adj func(i int) bitset.TPSet) []bitset.TPSet {
	var comps []bitset.TPSet
	rest := s
	for !rest.IsEmpty() {
		start := rest.Min()
		comp := bitset.Single(start)
		frontier := comp
		for !frontier.IsEmpty() {
			var next bitset.TPSet
			frontier.Each(func(i int) bool {
				next = next.Union(adj(i))
				return true
			})
			next = next.Diff(comp)
			comp = comp.Union(next)
			frontier = next
		}
		comps = append(comps, comp)
		rest = rest.Diff(comp)
	}
	return comps
}

// ConnectedExcluding reports whether s stays connected when join
// variable vj is removed from the join graph.
func (jg *JoinGraph) ConnectedExcluding(s bitset.TPSet, vj int) bool {
	if s.Len() <= 1 {
		return true
	}
	comps := jg.ComponentsExcluding(s, vj)
	return len(comps) == 1
}

// JoinVarsOf returns the indexes of the join variables of the
// subquery s: variables contained in at least two patterns of s.
func (jg *JoinGraph) JoinVarsOf(s bitset.TPSet) []int {
	var out []int
	for j := range jg.Vars {
		if jg.Ntp[j].Intersect(s).Len() >= 2 {
			out = append(out, j)
		}
	}
	return out
}

// MaxVarDegree returns the maximum degree |N_tp(v_j)| over all join
// variables (0 when there are none).
func (jg *JoinGraph) MaxVarDegree() int {
	max := 0
	for _, m := range jg.Ntp {
		if d := m.Len(); d > max {
			max = d
		}
	}
	return max
}

// Classify determines the structural class of the query (§II-B).
// Classification assumes a connected join graph; disconnected queries
// (which imply Cartesian products) are classified by their overall
// cyclicity.
func (jg *JoinGraph) Classify() Class {
	n, j := jg.NumTP, jg.NumJoinVars()
	if j == 0 {
		// No shared variables at all; degenerate. A single pattern is a
		// (trivial) star.
		return Star
	}
	// Star: one join variable shared by every pattern. Two patterns
	// sharing one variable are both a 2-star and a 2-chain; follow the
	// paper's Table III (L1 star, L2 chain) and call it a star only
	// when the shared variable occupies the same position in both
	// patterns (both radiate from a common vertex).
	if j == 1 && jg.Ntp[0] == jg.All() {
		if n == 2 && jg.Query != nil && !samePosition(jg.Query, jg.Vars[0]) {
			return Chain
		}
		return Star
	}
	edges := jg.NumEdges()
	comps := len(jg.Components(jg.All()))
	acyclic := edges == n+j-comps
	if acyclic {
		if jg.isChain() {
			return Chain
		}
		return Tree
	}
	if jg.isCycle(edges) {
		return Cycle
	}
	return Dense
}

// samePosition reports whether variable name fills the same position
// (subject/predicate/object) in every pattern that contains it.
func samePosition(q *sparql.Query, name string) bool {
	pos := -1
	for _, tp := range q.Patterns {
		p := -1
		switch {
		case tp.S.IsVar() && tp.S.Value == name:
			p = 0
		case tp.P.IsVar() && tp.P.Value == name:
			p = 1
		case tp.O.IsVar() && tp.O.Value == name:
			p = 2
		default:
			continue
		}
		if pos == -1 {
			pos = p
		} else if pos != p {
			return false
		}
	}
	return true
}

// isChain reports whether the bipartite join graph is a simple path
// with triple patterns at both ends: every join variable has degree 2,
// every pattern contains at most 2 join variables, exactly two
// patterns contain 1, and the graph is connected.
func (jg *JoinGraph) isChain() bool {
	if jg.NumTP < 2 {
		return false
	}
	ends := 0
	for i := 0; i < jg.NumTP; i++ {
		switch len(jg.TPVars[i]) {
		case 1:
			ends++
		case 2:
		default:
			return false
		}
	}
	if ends != 2 {
		return false
	}
	for _, m := range jg.Ntp {
		if m.Len() != 2 {
			return false
		}
	}
	return jg.Connected(jg.All())
}

// isCycle reports whether the join graph is a single bipartite cycle:
// every pattern has exactly 2 join variables, every variable degree 2,
// connected, |E_J| = |V_T| + |V_J|.
func (jg *JoinGraph) isCycle(edges int) bool {
	if edges != jg.NumTP+jg.NumJoinVars() {
		return false
	}
	for i := 0; i < jg.NumTP; i++ {
		if len(jg.TPVars[i]) != 2 {
			return false
		}
	}
	for _, m := range jg.Ntp {
		if m.Len() != 2 {
			return false
		}
	}
	return jg.Connected(jg.All())
}
