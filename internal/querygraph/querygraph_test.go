package querygraph

import (
	"testing"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/sparql"
)

// fig1 is the running-example query of paper Fig. 1a. Pattern indexes
// 0..6 correspond to tp1..tp7.
const fig1 = `SELECT * WHERE {
	?b <p1> ?a .
	?c <p2> ?a .
	?a <p3> ?e .
	?e <p4> ?g .
	?b <p5> ?f .
	?c <p6> ?d .
	?a <p7> ?d .
}`

// fig4 reproduces the join graph of paper Fig. 4: join variable ?v has
// two indivisible components {tp1,tp2}, {tp3,tp4} and one divisible
// component {tp5..tp9}. Pattern indexes 0..8 correspond to tp1..tp9.
const fig4 = `SELECT * WHERE {
	?v <p> ?w1 .
	?w1 <p> ?x2 .
	?v <p> ?w2 .
	?w2 <p> ?x4 .
	?v ?a ?bv .
	?a ?e8 ?c .
	?c <p> ?x7 .
	?bv ?e8 ?d .
	?d <p> ?v .
}`

func mustJoinGraph(t *testing.T, src string) *JoinGraph {
	t.Helper()
	jg, err := NewJoinGraph(sparql.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	return jg
}

func TestFig1JoinGraph(t *testing.T) {
	jg := mustJoinGraph(t, fig1)
	if jg.NumTP != 7 {
		t.Fatalf("NumTP = %d", jg.NumTP)
	}
	// Join variables: a, b, c, e, d (g and f appear once).
	if jg.NumJoinVars() != 5 {
		t.Fatalf("join vars = %v", jg.Vars)
	}
	a, ok := jg.VarIndex["a"]
	if !ok {
		t.Fatal("?a missing")
	}
	if jg.Ntp[a] != bitset.Of(0, 1, 2, 6) {
		t.Errorf("Ntp(?a) = %v", jg.Ntp[a])
	}
	c := jg.VarIndex["c"]
	if jg.Ntp[c] != bitset.Of(1, 5) {
		t.Errorf("Ntp(?c) = %v, want {1,5} (Example 1)", jg.Ntp[c])
	}
	if jg.MaxVarDegree() != 4 {
		t.Errorf("MaxVarDegree = %d, want 4", jg.MaxVarDegree())
	}
	if got := jg.Classify(); got != Dense {
		t.Errorf("Classify = %v, want dense", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name, src string
		want      Class
	}{
		{"star3", `SELECT * WHERE { ?a <p1> ?x . ?b <p2> ?x . ?c <p3> ?x . }`, Star},
		{"star2", `SELECT * WHERE { ?a <p1> ?x . ?b <p2> ?x . }`, Star},
		{"single", `SELECT * WHERE { ?a <p1> ?x . }`, Star},
		{"chain3", `SELECT * WHERE { ?x <p> ?y . ?y <p> ?z . ?z <p> ?w . }`, Chain},
		{"chain2vars", `SELECT * WHERE { ?x <p> ?y . ?y <p> ?z . ?z <p> ?x2 . ?x2 <p> ?q . }`, Chain},
		{"cycle3", `SELECT * WHERE { ?x <p> ?y . ?y <p> ?z . ?z <p> ?x . }`, Cycle},
		{"cycle4", `SELECT * WHERE { ?x <p> ?y . ?y <p> ?z . ?z <p> ?w . ?w <p> ?x . }`, Cycle},
		{"tree", `SELECT * WHERE { ?a <p> ?x . ?b <p> ?x . ?x <p> ?c . ?c <p> ?d . }`, Tree},
		{"dense", fig1, Dense},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			jg := mustJoinGraph(t, c.src)
			if got := jg.Classify(); got != c.want {
				t.Errorf("Classify(%s) = %v, want %v", c.name, got, c.want)
			}
		})
	}
}

func TestConnected(t *testing.T) {
	jg := mustJoinGraph(t, fig1)
	if !jg.Connected(jg.All()) {
		t.Error("full query should be connected")
	}
	// {tp1, tp5} share ?b.
	if !jg.Connected(bitset.Of(0, 4)) {
		t.Error("{tp1,tp5} should be connected")
	}
	// {tp4, tp5} share nothing (?e?g vs ?b?f).
	if jg.Connected(bitset.Of(3, 4)) {
		t.Error("{tp4,tp5} should be disconnected")
	}
	// {tp1, tp2, tp6} : tp1-?a-tp2, tp2-?c-tp6.
	if !jg.Connected(bitset.Of(0, 1, 5)) {
		t.Error("{tp1,tp2,tp6} should be connected")
	}
	if !jg.Connected(0) || !jg.Connected(bitset.Of(2)) {
		t.Error("empty/singleton must be connected")
	}
}

func TestComponents(t *testing.T) {
	jg := mustJoinGraph(t, fig1)
	// {tp4, tp5, tp6}: pairwise disconnected.
	comps := jg.Components(bitset.Of(3, 4, 5))
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	// Ordered by smallest member.
	if comps[0] != bitset.Of(3) || comps[1] != bitset.Of(4) || comps[2] != bitset.Of(5) {
		t.Errorf("components = %v", comps)
	}
}

func TestComponentsExcludingFig4(t *testing.T) {
	jg := mustJoinGraph(t, fig4)
	v, ok := jg.VarIndex["v"]
	if !ok {
		t.Fatal("?v missing")
	}
	if jg.Ntp[v] != bitset.Of(0, 2, 4, 8) {
		t.Fatalf("Ntp(?v) = %v, want {tp1,tp3,tp5,tp9}", jg.Ntp[v])
	}
	comps := jg.ComponentsExcluding(jg.All(), v)
	if len(comps) != 3 {
		t.Fatalf("components excluding ?v = %v, want 3 (Fig. 4)", comps)
	}
	want := []bitset.TPSet{bitset.Of(0, 1), bitset.Of(2, 3), bitset.Of(4, 5, 6, 7, 8)}
	for i := range want {
		if comps[i] != want[i] {
			t.Errorf("component %d = %v, want %v", i, comps[i], want[i])
		}
	}
	if jg.ConnectedExcluding(jg.All(), v) {
		t.Error("graph should fall apart without ?v")
	}
	if !jg.ConnectedExcluding(bitset.Of(4, 5, 6, 7, 8), v) {
		t.Error("divisible component itself should stay connected")
	}
}

func TestJoinVarsOf(t *testing.T) {
	jg := mustJoinGraph(t, fig1)
	// Subquery {tp1, tp2}: only ?a is shared.
	vars := jg.JoinVarsOf(bitset.Of(0, 1))
	if len(vars) != 1 || jg.Vars[vars[0]] != "a" {
		t.Errorf("JoinVarsOf = %v", vars)
	}
	// Full query: all five.
	if got := jg.JoinVarsOf(jg.All()); len(got) != 5 {
		t.Errorf("JoinVarsOf(all) = %v", got)
	}
	// Singleton: none.
	if got := jg.JoinVarsOf(bitset.Of(0)); got != nil {
		t.Errorf("JoinVarsOf(singleton) = %v", got)
	}
}

func TestAdjIn(t *testing.T) {
	jg := mustJoinGraph(t, fig1)
	// tp1 (idx 0) shares ?b with tp5 (4) and ?a with tp2 (1), tp3 (2), tp7 (6).
	if got := jg.AdjIn(jg.All(), 0); got != bitset.Of(1, 2, 4, 6) {
		t.Errorf("AdjIn(all, tp1) = %v", got)
	}
	// Restricted to {tp1, tp5, tp4}.
	if got := jg.AdjIn(bitset.Of(0, 3, 4), 0); got != bitset.Of(4) {
		t.Errorf("AdjIn(subset, tp1) = %v", got)
	}
}

func TestAdjOf(t *testing.T) {
	jg := mustJoinGraph(t, fig4)
	// Frontier of SQ={tp1,tp2} in the whole query: tp3, tp5, tp9 (via
	// ?v), exactly the set A of paper Example 6.
	got := jg.AdjOf(jg.All(), bitset.Of(0, 1))
	if got != bitset.Of(2, 4, 8) {
		t.Errorf("AdjOf = %v, want {tp3,tp5,tp9}", got)
	}
}

func TestNewJoinGraphErrors(t *testing.T) {
	if _, err := NewJoinGraph(&sparql.Query{}); err == nil {
		t.Error("empty query accepted")
	}
	big := &sparql.Query{}
	for i := 0; i < bitset.MaxPatterns+1; i++ {
		big.Patterns = append(big.Patterns, sparql.TriplePattern{S: sparql.V("x"), P: sparql.I("p"), O: sparql.V("y")})
	}
	if _, err := NewJoinGraph(big); err == nil {
		t.Error("oversized query accepted")
	}
}

func TestQueryGraph(t *testing.T) {
	g := NewGraph(sparql.MustParse(fig1))
	// Vertices: ?b ?a ?c ?e ?g ?f ?d = 7 (all variables; no constants).
	if g.NumVertices() != 7 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	a, ok := g.VertexOf(sparql.V("a"))
	if !ok {
		t.Fatal("?a not a vertex")
	}
	// ?a is object of tp1, tp2; subject of tp3, tp7.
	if g.SubjOf[a] != bitset.Of(2, 6) {
		t.Errorf("SubjOf(?a) = %v", g.SubjOf[a])
	}
	if g.ObjOf[a] != bitset.Of(0, 1) {
		t.Errorf("ObjOf(?a) = %v", g.ObjOf[a])
	}
	if g.Incident(a) != bitset.Of(0, 1, 2, 6) {
		t.Errorf("Incident(?a) = %v", g.Incident(a))
	}
}

func TestForwardClosure(t *testing.T) {
	g := NewGraph(sparql.MustParse(fig1))
	b, _ := g.VertexOf(sparql.V("b"))
	// Paper Example 5: all patterns reachable from ?b are
	// {tp1, tp3, tp4, tp5, tp7} (indexes 0,2,3,4,6).
	got := g.ForwardClosure(b, -1)
	if got != bitset.Of(0, 2, 3, 4, 6) {
		t.Errorf("ForwardClosure(?b, inf) = %v, want {0,2,3,4,6}", got)
	}
	// One hop: just tp1 and tp5.
	if got := g.ForwardClosure(b, 1); got != bitset.Of(0, 4) {
		t.Errorf("ForwardClosure(?b, 1) = %v", got)
	}
	// Two hops: tp1, tp5 plus ?a's and ?f's out-edges (tp3, tp7).
	if got := g.ForwardClosure(b, 2); got != bitset.Of(0, 2, 4, 6) {
		t.Errorf("ForwardClosure(?b, 2) = %v", got)
	}
}

func TestUndirectedClosure(t *testing.T) {
	g := NewGraph(sparql.MustParse(fig1))
	a, _ := g.VertexOf(sparql.V("a"))
	// Paper Example 7 (hash partitioning, undirected 1 hop from ?a):
	// {tp1, tp2, tp3, tp7}.
	if got := g.UndirectedClosure(a, 1); got != bitset.Of(0, 1, 2, 6) {
		t.Errorf("UndirectedClosure(?a, 1) = %v, want {0,1,2,6}", got)
	}
	// Unbounded: everything (the query graph is connected).
	if got := g.UndirectedClosure(a, -1); got != bitset.Full(7) {
		t.Errorf("UndirectedClosure(?a, inf) = %v", got)
	}
}

func TestBuild(t *testing.T) {
	v, err := Build(sparql.MustParse(fig1))
	if err != nil {
		t.Fatal(err)
	}
	if v.Join.NumTP != 7 || v.Query.NumVertices() != 7 {
		t.Error("Build produced inconsistent views")
	}
	if _, err := Build(&sparql.Query{}); err == nil {
		t.Error("Build accepted empty query")
	}
}

func TestClassString(t *testing.T) {
	names := map[Class]string{Star: "star", Chain: "chain", Cycle: "cycle", Tree: "tree", Dense: "dense"}
	for c, want := range names {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}
