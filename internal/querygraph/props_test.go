package querygraph

import (
	"fmt"
	"math/rand"
	"testing"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/sparql"
)

// randomQuery builds a random (not necessarily connected) query.
func randomQuery(r *rand.Rand, n int) *sparql.Query {
	q := &sparql.Query{}
	nvars := n + 2
	for i := 0; i < n; i++ {
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.V(fmt.Sprintf("v%d", r.Intn(nvars))),
			P: sparql.I(fmt.Sprintf("p%d", r.Intn(3))),
			O: sparql.V(fmt.Sprintf("v%d", r.Intn(nvars))),
		})
	}
	return q
}

// TestComponentsPartition: components of any subset partition it, each
// component is connected, and merging any two would be disconnected.
func TestComponentsPartition(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		q := randomQuery(r, 2+r.Intn(8))
		jg, err := NewJoinGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		sub := bitset.TPSet(r.Uint64()).Intersect(bitset.Full(jg.NumTP))
		if sub.IsEmpty() {
			continue
		}
		comps := jg.Components(sub)
		var union bitset.TPSet
		for i, c := range comps {
			if c.IsEmpty() {
				t.Fatal("empty component")
			}
			if union.Overlaps(c) {
				t.Fatal("overlapping components")
			}
			union = union.Union(c)
			if !jg.Connected(c) {
				t.Fatalf("component %v not connected", c)
			}
			for j := i + 1; j < len(comps); j++ {
				if jg.Connected(c.Union(comps[j])) {
					t.Fatalf("components %v and %v are actually connected", c, comps[j])
				}
			}
		}
		if union != sub {
			t.Fatalf("components %v do not cover %v", comps, sub)
		}
	}
}

// TestComponentsExcludingConsistency: removing a variable never merges
// components, and the union is preserved.
func TestComponentsExcludingConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		q := randomQuery(r, 3+r.Intn(7))
		jg, err := NewJoinGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if jg.NumJoinVars() == 0 {
			continue
		}
		vj := r.Intn(jg.NumJoinVars())
		all := jg.All()
		with := jg.Components(all)
		without := jg.ComponentsExcluding(all, vj)
		if len(without) < len(with) {
			t.Fatalf("removing ?%s merged components: %d -> %d", jg.Vars[vj], len(with), len(without))
		}
		var union bitset.TPSet
		for _, c := range without {
			union = union.Union(c)
		}
		if union != all {
			t.Fatal("ComponentsExcluding lost patterns")
		}
	}
}

// TestAdjSymmetry: adjacency is symmetric.
func TestAdjSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		q := randomQuery(r, 2+r.Intn(8))
		jg, err := NewJoinGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < jg.NumTP; i++ {
			jg.Adj[i].Each(func(j int) bool {
				if !jg.Adj[j].Has(i) {
					t.Fatalf("adjacency asymmetric: %d->%d", i, j)
				}
				return true
			})
			if jg.Adj[i].Has(i) {
				t.Fatalf("self-loop at %d", i)
			}
		}
	}
}

// TestVarSetGraphMatchesQueryGraph: building the join graph from the
// patterns' variable lists gives the same structure as NewJoinGraph.
func TestVarSetGraphMatchesQueryGraph(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		q := randomQuery(r, 2+r.Intn(8))
		jg, err := NewJoinGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		varSets := make([][]string, len(q.Patterns))
		for i, tp := range q.Patterns {
			varSets[i] = tp.Vars()
		}
		ug, err := NewJoinGraphFromVarSets(varSets)
		if err != nil {
			t.Fatal(err)
		}
		if ug.NumJoinVars() != jg.NumJoinVars() || ug.NumEdges() != jg.NumEdges() {
			t.Fatalf("unit graph differs: %d/%d vars, %d/%d edges",
				ug.NumJoinVars(), jg.NumJoinVars(), ug.NumEdges(), jg.NumEdges())
		}
		for i := range varSets {
			if ug.Adj[i] != jg.Adj[i] {
				t.Fatalf("adjacency differs at %d: %v vs %v", i, ug.Adj[i], jg.Adj[i])
			}
		}
	}
}

func TestNewJoinGraphFromVarSetsErrors(t *testing.T) {
	if _, err := NewJoinGraphFromVarSets(nil); err == nil {
		t.Error("empty unit list accepted")
	}
	big := make([][]string, bitset.MaxPatterns+1)
	if _, err := NewJoinGraphFromVarSets(big); err == nil {
		t.Error("oversized unit list accepted")
	}
}
