package querygraph

import (
	"testing"

	"sparqlopt/internal/sparql"
)

// FuzzCanonicalize drives the fingerprinter with arbitrary query text.
// Whatever the parser accepts, canonicalization must not panic, must
// be deterministic, and must return self-consistent pattern/variable
// maps — the plan cache relies on all three.
func FuzzCanonicalize(f *testing.F) {
	seeds := []string{
		`SELECT * WHERE { ?x <p> ?y . }`,
		`SELECT * WHERE { ?x <p> ?y . ?y <p> ?z . ?z <p> ?x . }`,
		`SELECT * WHERE { ?x <p> ?y . ?x <q> ?y . ?x <p> ?z . }`,
		`SELECT * WHERE { <a> <p> ?y . ?y <q> "lit" . }`,
		`SELECT * WHERE { ?x ?p ?y . }`,
		`SELECT * WHERE { ?x <p> ?x . }`,
		`PREFIX u: <http://u#> SELECT ?a WHERE { ?a u:p ?b . ?b u:q ?c . }`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := sparql.Parse(src)
		if err != nil {
			return
		}
		c, err := Canonicalize(q)
		if err != nil {
			return // empty or oversized BGPs are rejected, not bugs
		}
		c2, err := Canonicalize(q)
		if err != nil || c2.Key != c.Key || c2.Fingerprint != c.Fingerprint {
			t.Fatalf("nondeterministic canonicalization of %q", src)
		}
		if len(c.PatternOf) != len(q.Patterns) || len(c.CanonOf) != len(q.Patterns) {
			t.Fatalf("pattern map size mismatch for %q", src)
		}
		for ci, qi := range c.PatternOf {
			if qi < 0 || qi >= len(q.Patterns) || c.CanonOf[qi] != ci {
				t.Fatalf("pattern maps not inverse permutations for %q", src)
			}
		}
		for v, cv := range c.CanonVar {
			if c.VarOf[cv] != v {
				t.Fatalf("variable maps not inverses for %q", src)
			}
		}
	})
}
