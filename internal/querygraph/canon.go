package querygraph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/sparql"
)

// Canon is the canonical template of a basic graph pattern, the cache
// key of the serving-path plan cache. Two queries share a Canon.Key
// exactly when they are the same query "shape": identical join
// structure, identical predicate constants, and constants in the same
// subject/object positions — regardless of variable names, pattern
// order, or which concrete subject/object constants are bound. Their
// plans are therefore interchangeable after index/name remapping:
// ?x <knows> <alice> and ?y <knows> <bob> share one template.
//
// Subject/object constants are lifted to typed placeholders (the
// "bind parameters" of the template); predicate constants stay
// concrete, because in RDF the predicate plays the role of a table
// name — caching across predicates would share plans between
// unrelated relations.
type Canon struct {
	// Key is the canonical rendering. Equal Keys imply equal templates;
	// cache lookups compare Keys, so fingerprint collisions can never
	// alias two different shapes.
	Key string
	// Fingerprint is a 128-bit hash of Key, used to index and shard
	// cache tables without holding the full string.
	Fingerprint [2]uint64
	// PatternOf maps a canonical pattern index to the query's pattern
	// index; CanonOf is its inverse.
	PatternOf []int
	CanonOf   []int
	// CanonVar maps a query variable name to its canonical name
	// ("v0", "v1", ...); VarOf is its inverse.
	CanonVar map[string]string
	VarOf    map[string]string
}

// RemapSet translates a pattern bitset through perm (member i becomes
// perm[i]) — used to move plan pattern sets between a query's own
// index space and canonical space.
func RemapSet(s bitset.TPSet, perm []int) bitset.TPSet {
	var out bitset.TPSet
	s.Each(func(i int) bool {
		out = out.Add(perm[i])
		return true
	})
	return out
}

// Canonicalize computes the canonical template of q. It rejects the
// same queries NewJoinGraph rejects (empty, or wider than
// bitset.MaxPatterns).
//
// The canonical pattern order is found by color refinement on the
// bipartite pattern/variable incidence graph (a Weisfeiler-Lehman
// pass): every pattern starts from a structural color — its
// var/constant shape with predicates concrete — and colors are
// iteratively mixed with the colors of variables shared with other
// patterns. Refinement is isomorphism-invariant, so two renamings or
// reorderings of the same shape sort their patterns identically.
// Patterns left tied after refinement are ordered by original index;
// such ties are either true automorphisms (any order renders the same
// Key) or, in pathological shapes refinement cannot split, cost at
// most a missed cache hit — never a false one, because lookups
// compare full Keys.
func Canonicalize(q *sparql.Query) (*Canon, error) {
	n := len(q.Patterns)
	if n == 0 {
		return nil, fmt.Errorf("querygraph: query has no triple patterns")
	}
	if n > bitset.MaxPatterns {
		return nil, fmt.Errorf("querygraph: query has %d triple patterns, maximum is %d", n, bitset.MaxPatterns)
	}

	// Variable occurrence lists: for each variable, the (pattern,
	// position) pairs it fills. Order of discovery is irrelevant —
	// everything below works on multisets.
	type occurrence struct{ pat, pos int }
	occ := map[string][]occurrence{}
	for i, tp := range q.Patterns {
		for pos, t := range [3]sparql.Term{tp.S, tp.P, tp.O} {
			if t.IsVar() {
				occ[t.Value] = append(occ[t.Value], occurrence{i, pos})
			}
		}
	}

	// Initial pattern colors: the structural shape with variables
	// anonymized (but intra-pattern repetition like ?x <p> ?x kept)
	// and subject/object constants reduced to their kind.
	patColor := make([]uint64, n)
	for i, tp := range q.Patterns {
		var b strings.Builder
		slot := map[string]int{}
		for pos, t := range [3]sparql.Term{tp.S, tp.P, tp.O} {
			b.WriteByte('|')
			switch {
			case t.IsVar():
				s, ok := slot[t.Value]
				if !ok {
					s = len(slot)
					slot[t.Value] = s
				}
				b.WriteString("v")
				b.WriteString(strconv.Itoa(s))
			case pos == 1:
				// Predicate constants stay concrete.
				b.WriteString(t.String())
			case t.Kind == sparql.IRI:
				b.WriteString("$i")
			default:
				b.WriteString("$l")
			}
		}
		patColor[i] = hash64(b.String())
	}

	// Color refinement: alternate pattern → variable → pattern color
	// updates. n rounds reach the stable partition (the incidence
	// graph's diameter is below 2n); each round is O(occurrences).
	varColor := map[string]uint64{}
	for round := 0; round < n; round++ {
		for v, os := range occ {
			sig := make([]uint64, len(os))
			for k, o := range os {
				sig[k] = mix(patColor[o.pat], uint64(o.pos)+1)
			}
			varColor[v] = foldSorted(0x9e3779b97f4a7c15, sig)
		}
		next := make([]uint64, n)
		for i, tp := range q.Patterns {
			h := patColor[i]
			for pos, t := range [3]sparql.Term{tp.S, tp.P, tp.O} {
				if t.IsVar() {
					h = mix(h, mix(varColor[t.Value], uint64(pos)+1))
				}
			}
			next[i] = h
		}
		patColor = next
	}

	// Canonical order: refined color, original index breaking ties.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if patColor[order[a]] != patColor[order[b]] {
			return patColor[order[a]] < patColor[order[b]]
		}
		return order[a] < order[b]
	})

	c := &Canon{
		PatternOf: order,
		CanonOf:   make([]int, n),
		CanonVar:  make(map[string]string, len(occ)),
		VarOf:     make(map[string]string, len(occ)),
	}
	for ci, qi := range order {
		c.CanonOf[qi] = ci
	}

	// Canonical variable names by first occurrence in canonical order,
	// then the final rendering.
	var b strings.Builder
	for _, qi := range order {
		tp := q.Patterns[qi]
		for pos, t := range [3]sparql.Term{tp.S, tp.P, tp.O} {
			if pos > 0 {
				b.WriteByte(' ')
			}
			switch {
			case t.IsVar():
				name, ok := c.CanonVar[t.Value]
				if !ok {
					name = "v" + strconv.Itoa(len(c.CanonVar))
					c.CanonVar[t.Value] = name
					c.VarOf[name] = t.Value
				}
				b.WriteByte('?')
				b.WriteString(name)
			case pos == 1:
				b.WriteString(t.String())
			case t.Kind == sparql.IRI:
				b.WriteString("$i")
			default:
				b.WriteString("$l")
			}
		}
		b.WriteString(" .\n")
	}
	c.Key = b.String()
	c.Fingerprint = fingerprint(c.Key)
	return c, nil
}

// hash64 is FNV-1a over s.
func hash64(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix combines two words with the splitmix64 finalizer, the same
// mixer bitset.TPSet.Hash uses.
func mix(a, b uint64) uint64 {
	x := a + 0x9e3779b97f4a7c15 + b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// foldSorted hashes a multiset of words order-independently: sort,
// then fold left.
func foldSorted(seed uint64, ws []uint64) uint64 {
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	h := seed
	for _, w := range ws {
		h = mix(h, w)
	}
	return h
}

// fingerprint derives the 128-bit key hash: two independent FNV-1a
// streams, the second over a seeded variant, each finished with the
// splitmix64 mixer.
func fingerprint(key string) [2]uint64 {
	h1 := hash64(key)
	const offset2, prime = 0xcbf29ce484222325 ^ 0x9e3779b97f4a7c15, 1099511628211
	h2 := uint64(offset2)
	for i := 0; i < len(key); i++ {
		h2 ^= uint64(key[i])
		h2 *= prime
	}
	return [2]uint64{mix(h1, 1), mix(h2, 2)}
}
