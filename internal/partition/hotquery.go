package partition

import (
	"sparqlopt/internal/bitset"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

// WithHotQueries extends a static method with the dynamic-partitioning
// hook of the paper's extended version (appendix B there): at run time
// the engine redistributes data so that a list of "hot queries" can be
// evaluated locally. For maximal-local-query computation, the combine
// function is augmented: if the intersection of a hot query with the
// current query is connected and contains the anchor vertex, that
// intersection is a local query too, and MLQ_v becomes the larger of
// the two candidates.
//
// Two patterns "match" when they agree on constants and on the
// variable/constant shape of every position; this conservative textual
// criterion under-approximates the true intersection, which only makes
// local-query detection miss opportunities, never claim false ones.
func WithHotQueries(base Method, hot []*sparql.Query) Method {
	return &hotMethod{base: base, hot: hot}
}

type hotMethod struct {
	base Method
	hot  []*sparql.Query
}

// Name implements Method.
func (m *hotMethod) Name() string { return m.base.Name() + "+hot" }

// Partition implements Method by delegating to the static base; the
// run-time redistribution itself is outside this library's scope.
func (m *hotMethod) Partition(ds *rdf.Dataset, nodes int) (*Placement, error) {
	return m.base.Partition(ds, nodes)
}

// CombineQuery implements Method.
func (m *hotMethod) CombineQuery(g *querygraph.Graph, v int) bitset.TPSet {
	best := m.base.CombineQuery(g, v)
	incident := g.Incident(v)
	for _, hq := range m.hot {
		inter := intersect(g.Query, hq)
		if inter.IsEmpty() || !inter.Overlaps(incident) {
			continue
		}
		// Keep the connected component of the intersection containing v.
		comp := componentContaining(g, inter, incident)
		if comp.Len() > best.Len() {
			best = comp
		}
	}
	return best
}

// intersect returns the patterns of q that also appear (shape-wise) in hq.
func intersect(q, hq *sparql.Query) bitset.TPSet {
	var out bitset.TPSet
	for i, tp := range q.Patterns {
		for _, htp := range hq.Patterns {
			if patternsMatch(tp, htp) {
				out = out.Add(i)
				break
			}
		}
	}
	return out
}

func patternsMatch(a, b sparql.TriplePattern) bool {
	return termsMatch(a.S, b.S) && termsMatch(a.P, b.P) && termsMatch(a.O, b.O)
}

func termsMatch(a, b sparql.Term) bool {
	if a.IsVar() != b.IsVar() {
		return false
	}
	if a.IsVar() {
		return true // any variable matches any variable
	}
	return a.Kind == b.Kind && a.Value == b.Value
}

// componentContaining returns the patterns of inter reachable (through
// shared query-graph vertices) from the patterns incident to v.
func componentContaining(g *querygraph.Graph, inter, seed bitset.TPSet) bitset.TPSet {
	comp := inter.Intersect(seed)
	if comp.IsEmpty() {
		return 0
	}
	for {
		grown := comp
		comp.Each(func(tp int) bool {
			for _, end := range g.TPEnds[tp] {
				grown = grown.Union(g.Incident(end).Intersect(inter))
			}
			return true
		})
		if grown == comp {
			return comp
		}
		comp = grown
	}
}
