package partition

import (
	"fmt"

	"sparqlopt/internal/rdf"
)

// Migration is one incremental re-placement: per node, the triples to
// add to that node's fragment. Migrations only ever ADD copies — the
// base method's placement (and therefore every local-join guarantee
// the optimizer derives from it) is preserved verbatim, and coverage
// can never regress. The replication cost is what the advisor budgets.
type Migration struct {
	// Adds holds, per node, the triples to append (deduplicated
	// against the node's existing fragment by Placement.Migrate).
	Adds [][]rdf.Triple
}

// AddCount returns the total triples the migration adds (before
// per-node dedup against existing fragments).
func (m *Migration) AddCount() int {
	n := 0
	for _, ts := range m.Adds {
		n += len(ts)
	}
	return n
}

// Migrate returns a new placement with the migration's adds applied.
// The receiver is unchanged — placements published to an engine are
// immutable, so in-flight queries keep a consistent snapshot while
// the background migration builds the next one. Node fragments stay
// deduplicated: an add that already exists on its node is dropped.
func (p *Placement) Migrate(m *Migration) (*Placement, error) {
	if m == nil {
		return p, nil
	}
	if len(m.Adds) != p.Nodes {
		return nil, fmt.Errorf("partition: migration has %d node lists, placement has %d nodes", len(m.Adds), p.Nodes)
	}
	next := &Placement{Nodes: p.Nodes, Triples: make([][]rdf.Triple, p.Nodes)}
	for node := range next.Triples {
		old := p.Triples[node]
		adds := m.Adds[node]
		if len(adds) == 0 {
			next.Triples[node] = old
			continue
		}
		seen := make(map[rdf.Triple]struct{}, len(old)+len(adds))
		for _, t := range old {
			seen[t] = struct{}{}
		}
		merged := make([]rdf.Triple, len(old), len(old)+len(adds))
		copy(merged, old)
		for _, t := range adds {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			merged = append(merged, t)
		}
		next.Triples[node] = merged
	}
	return next, nil
}

// Covers reports whether every triple of the dataset is stored on at
// least one node — the migration coverage invariant. (Base methods
// establish it at Partition time; Migrate can only add copies, so it
// is preserved by construction. The property tests assert it anyway.)
func (p *Placement) Covers(ds *rdf.Dataset) bool {
	stored := make(map[rdf.Triple]struct{})
	for _, ts := range p.Triples {
		for _, t := range ts {
			stored[t] = struct{}{}
		}
	}
	for _, t := range ds.Triples {
		if _, ok := stored[t]; !ok {
			return false
		}
	}
	return true
}

// HasTriple reports whether node holds the triple. Fragment scans are
// linear; this is a test/advisor helper, not a serving-path call.
func (p *Placement) HasTriple(node int, t rdf.Triple) bool {
	for _, u := range p.Triples[node] {
		if u == t {
			return true
		}
	}
	return false
}
