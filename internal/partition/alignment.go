package partition

import (
	"sort"

	"sparqlopt/internal/rdf"
)

// Pos names a triple position a migration can align on. Only the
// subject and object participate: they are the join endpoints of the
// RDF graph (predicates are edge labels, never join keys in the
// paper's workloads).
type Pos uint8

const (
	// PosS aligns triples on their subject.
	PosS Pos = iota
	// PosO aligns triples on their object.
	PosO
)

// String renders the position for logs and bench reports.
func (p Pos) String() string {
	if p == PosS {
		return "S"
	}
	return "O"
}

// GroupKey identifies one alignable triple group: all triples with
// predicate Pred, keyed by the term at Pos. The adaptive advisor mines
// repartition-join traces for hot groups and migrates each group so
// every member triple has a copy on AlignNode of its key term.
type GroupKey struct {
	Pred rdf.TermID
	Pos  Pos
}

// AlignNode is the node a triple group member belongs to once its
// group is aligned: the engine's repartition scatter sends a row to
// node key%n, so placing the triple there beforehand makes the
// scatter a no-op. This MUST stay in sync with the engine's scatter
// hash (plain modulus over the term ID).
func AlignNode(key rdf.TermID, nodes int) int {
	return int(uint64(key) % uint64(nodes))
}

// Alignment is an immutable snapshot of the triple groups whose
// members are guaranteed to have a copy on their AlignNode. The
// engine consults it to run aligned scans (emit each matching triple
// only from its align node) under repartition joins; the guarantee is
// all-or-nothing per group — a group appears here only after a
// migration placed every one of its triples.
//
// A nil *Alignment is the empty snapshot: no group is aligned.
type Alignment struct {
	groups map[GroupKey]struct{}
}

// Aligned reports whether the (pred, pos) group is fully aligned.
func (a *Alignment) Aligned(pred rdf.TermID, pos Pos) bool {
	if a == nil {
		return false
	}
	_, ok := a.groups[GroupKey{Pred: pred, Pos: pos}]
	return ok
}

// Len returns the number of aligned groups.
func (a *Alignment) Len() int {
	if a == nil {
		return 0
	}
	return len(a.groups)
}

// Keys returns the aligned group keys in deterministic order.
func (a *Alignment) Keys() []GroupKey {
	if a == nil {
		return nil
	}
	out := make([]GroupKey, 0, len(a.groups))
	for k := range a.groups {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// With returns a new snapshot with the given groups added; the
// receiver is unchanged (snapshots already published to the engine
// stay immutable).
func (a *Alignment) With(keys ...GroupKey) *Alignment {
	next := &Alignment{groups: make(map[GroupKey]struct{}, a.Len()+len(keys))}
	if a != nil {
		for k := range a.groups {
			next.groups[k] = struct{}{}
		}
	}
	for _, k := range keys {
		next.groups[k] = struct{}{}
	}
	return next
}
