package partition

import (
	"sparqlopt/internal/bitset"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
)

// HashSO is hash partitioning with a hash function on both the subject
// and the object of each triple (paper §V-A data partitioning (1)).
// combine(v, G) assembles the triples incident to v; distribute hashes
// v. Every triple is stored on (at most) two nodes: hash(S) and
// hash(O). Under this method all triples sharing a subject or object
// are collocated, so a subquery is local iff its patterns share a
// common vertex (the assumption hard-wired into MSC and DP-Bushy).
type HashSO struct{}

// Name implements Method.
func (HashSO) Name() string { return "Hash-SO" }

// CombineQuery implements Method: the undirected 1-hop closure — all
// patterns containing vertex v (paper Example 7).
func (HashSO) CombineQuery(g *querygraph.Graph, v int) bitset.TPSet {
	return g.UndirectedClosure(v, 1)
}

// Partition implements Method.
func (HashSO) Partition(ds *rdf.Dataset, nodes int) (*Placement, error) {
	if err := checkNodes(nodes); err != nil {
		return nil, err
	}
	c := newCollector(nodes)
	for _, t := range ds.Triples {
		c.add(hashNode(t.S, nodes), t)
		c.add(hashNode(t.O, nodes), t)
	}
	return c.placement(), nil
}

// TwoHopForward is the semantic hash partitioning algorithm "2f" of
// Lee & Liu (paper Example 2): combine(v, G) assembles all edges
// within 2-hop forward distance of v; distribute hashes v.
type TwoHopForward struct{}

// Name implements Method.
func (TwoHopForward) Name() string { return "2f" }

// CombineQuery implements Method: the forward 2-hop closure.
func (TwoHopForward) CombineQuery(g *querygraph.Graph, v int) bitset.TPSet {
	return g.ForwardClosure(v, 2)
}

// Partition implements Method. A triple (s,p,o) lies within the 2-hop
// forward element of s (first hop) and of every in-neighbor of s
// (second hop), so it is placed on hash(s) and on hash(u) for each
// edge u→s.
func (TwoHopForward) Partition(ds *rdf.Dataset, nodes int) (*Placement, error) {
	if err := checkNodes(nodes); err != nil {
		return nil, err
	}
	g := rdf.NewGraph(ds.Triples)
	c := newCollector(nodes)
	for _, t := range ds.Triples {
		c.add(hashNode(t.S, nodes), t)
		for _, e := range g.In(t.S) {
			c.add(hashNode(e.To, nodes), t)
		}
	}
	return c.placement(), nil
}

// TwoHopBidirectional is the bidirectional variant of semantic hash
// partitioning ("2fb" in Lee & Liu's terminology): combine(v, G)
// assembles all edges within 2 hops of v ignoring direction. It trades
// higher replication for more local queries than 2f — another point in
// the generic model's design space.
type TwoHopBidirectional struct{}

// Name implements Method.
func (TwoHopBidirectional) Name() string { return "2fb" }

// CombineQuery implements Method: the undirected 2-hop closure.
func (TwoHopBidirectional) CombineQuery(g *querygraph.Graph, v int) bitset.TPSet {
	return g.UndirectedClosure(v, 2)
}

// Partition implements Method. A triple (s,p,o) lies within 2
// undirected hops of s, of o, and of every neighbor of s or o.
func (TwoHopBidirectional) Partition(ds *rdf.Dataset, nodes int) (*Placement, error) {
	if err := checkNodes(nodes); err != nil {
		return nil, err
	}
	g := rdf.NewGraph(ds.Triples)
	c := newCollector(nodes)
	for _, t := range ds.Triples {
		c.add(hashNode(t.S, nodes), t)
		c.add(hashNode(t.O, nodes), t)
		for _, e := range g.In(t.S) {
			c.add(hashNode(e.To, nodes), t)
		}
		for _, e := range g.Out(t.S) {
			c.add(hashNode(e.To, nodes), t)
		}
		for _, e := range g.In(t.O) {
			c.add(hashNode(e.To, nodes), t)
		}
		for _, e := range g.Out(t.O) {
			c.add(hashNode(e.To, nodes), t)
		}
	}
	return c.placement(), nil
}

// PathBMC is the path partitioning approach of Wu et al. (paper
// Example 2): combine(v, G) assembles every triple reachable from a
// start vertex v following edge direction; distribute merges elements
// onto nodes. The published bottom-up merging is approximated by
// greedy least-loaded assignment of elements in decreasing size order,
// which preserves the property the optimizer depends on — every
// element is stored whole on one node (see DESIGN.md).
type PathBMC struct{}

// Name implements Method.
func (PathBMC) Name() string { return "Path-BMC" }

// CombineQuery implements Method: the unbounded forward closure
// (paper Example 5).
func (PathBMC) CombineQuery(g *querygraph.Graph, v int) bitset.TPSet {
	return g.ForwardClosure(v, -1)
}

// Partition implements Method. Elements are anchored at start vertices
// (no incoming edges). Vertices unreachable from any start vertex
// (cycles) anchor additional elements so that every triple is stored.
func (PathBMC) Partition(ds *rdf.Dataset, nodes int) (*Placement, error) {
	if err := checkNodes(nodes); err != nil {
		return nil, err
	}
	g := rdf.NewGraph(ds.Triples)
	var starts []rdf.TermID
	g.Vertices(func(v rdf.TermID) bool {
		if len(g.In(v)) == 0 && len(g.Out(v)) > 0 {
			starts = append(starts, v)
		}
		return true
	})
	covered := make(map[rdf.TermID]bool)
	type element struct {
		anchor  rdf.TermID
		triples []rdf.Triple
	}
	var elements []element
	build := func(start rdf.TermID) {
		var triples []rdf.Triple
		seen := map[rdf.TermID]bool{start: true}
		covered[start] = true
		queue := []rdf.TermID{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.Out(v) {
				triples = append(triples, rdf.Triple{S: v, P: e.Pred, O: e.To})
				covered[e.To] = true
				if !seen[e.To] {
					seen[e.To] = true
					queue = append(queue, e.To)
				}
			}
		}
		if len(triples) > 0 {
			elements = append(elements, element{anchor: start, triples: triples})
		}
	}
	for _, v := range starts {
		build(v)
	}
	// Cover cycle components that no start vertex reaches.
	g.Vertices(func(v rdf.TermID) bool {
		if !covered[v] && len(g.Out(v)) > 0 {
			build(v)
		}
		return true
	})
	// Distribute: biggest elements first, always to the least-loaded node.
	for i := 1; i < len(elements); i++ {
		for j := i; j > 0 && len(elements[j].triples) > len(elements[j-1].triples); j-- {
			elements[j], elements[j-1] = elements[j-1], elements[j]
		}
	}
	c := newCollector(nodes)
	load := make([]int, nodes)
	for _, el := range elements {
		best := 0
		for n := 1; n < nodes; n++ {
			if load[n] < load[best] {
				best = n
			}
		}
		for _, t := range el.triples {
			c.add(best, t)
		}
		load[best] += len(el.triples)
	}
	return c.placement(), nil
}

// UndirectedOneHop is the un-one-hop method of Huang et al. (paper
// Example 2): combine(v, G) assembles the triples whose subject or
// object is v; distribute places vertices with a graph partitioner.
// METIS is replaced by a greedy BFS-grown balanced edge-cut
// partitioner; the optimizer only depends on the combine semantics.
type UndirectedOneHop struct{}

// Name implements Method.
func (UndirectedOneHop) Name() string { return "Un-1hop" }

// CombineQuery implements Method: the undirected 1-hop closure.
func (UndirectedOneHop) CombineQuery(g *querygraph.Graph, v int) bitset.TPSet {
	return g.UndirectedClosure(v, 1)
}

// Partition implements Method. Vertices are assigned to nodes by
// growing BFS regions of |V|/nodes vertices; each vertex's incident
// triples are stored on its node.
func (UndirectedOneHop) Partition(ds *rdf.Dataset, nodes int) (*Placement, error) {
	if err := checkNodes(nodes); err != nil {
		return nil, err
	}
	g := rdf.NewGraph(ds.Triples)
	assign := greedyEdgeCut(g, nodes)
	c := newCollector(nodes)
	for _, t := range ds.Triples {
		c.add(assign[t.S], t)
		c.add(assign[t.O], t)
	}
	return c.placement(), nil
}

// greedyEdgeCut partitions the vertices into balanced BFS-grown
// regions, a drop-in substitute for METIS at this scale.
func greedyEdgeCut(g *rdf.Graph, nodes int) map[rdf.TermID]int {
	total := g.NumVertices()
	capPer := (total + nodes - 1) / nodes
	assign := make(map[rdf.TermID]int, total)
	cur, size := 0, 0
	place := func(v rdf.TermID) bool {
		if _, done := assign[v]; done {
			return false
		}
		if size >= capPer && cur < nodes-1 {
			cur++
			size = 0
		}
		assign[v] = cur
		size++
		return true
	}
	g.Vertices(func(seed rdf.TermID) bool {
		if _, done := assign[seed]; done {
			return true
		}
		queue := []rdf.TermID{seed}
		place(seed)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, e := range g.Out(v) {
				if place(e.To) {
					queue = append(queue, e.To)
				}
			}
			for _, e := range g.In(v) {
				if place(e.To) {
					queue = append(queue, e.To)
				}
			}
		}
		return true
	})
	return assign
}
