package adaptive

import (
	"fmt"
	"testing"

	"sparqlopt/internal/partition"
	"sparqlopt/internal/rdf"
)

// hotDataset builds a dataset with one shuffle-heavy predicate ("hot",
// object-keyed joins) and background noise on other predicates.
func hotDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	for i := 0; i < 40; i++ {
		ds.Add(fmt.Sprintf("s%d", i), "hot", fmt.Sprintf("o%d", i%7))
		ds.Add(fmt.Sprintf("s%d", i), "cold", fmt.Sprintf("c%d", i%5))
	}
	ds.Dedup()
	return ds
}

func hotKey(tb testing.TB, ds *rdf.Dataset) partition.GroupKey {
	tb.Helper()
	pred, ok := ds.Dict.Lookup("hot")
	if !ok {
		tb.Fatal("hot predicate missing from dictionary")
	}
	return partition.GroupKey{Pred: pred, Pos: partition.PosO}
}

func observeHot(a *Advisor, key partition.GroupKey, times int) bool {
	hot := false
	for i := 0; i < times; i++ {
		hot = a.Observe([]Observation{{Key: key, Rows: 1000, Bytes: 1 << 20}})
	}
	return hot
}

// TestObserveTrigger: the trigger fires only once a group crosses BOTH
// thresholds (bytes and distinct queries), and never for groups already
// aligned — those count as hits instead.
func TestObserveTrigger(t *testing.T) {
	ds := hotDataset()
	key := hotKey(t, ds)
	a := New(Config{MinBytes: 3 << 20, MinQueries: 3})
	if observeHot(a, key, 2) {
		t.Fatal("trigger fired below MinQueries")
	}
	if !observeHot(a, key, 1) {
		t.Fatal("trigger did not fire at the thresholds")
	}
	st := a.Stats()
	if st.ObservedQueries != 3 || st.TrackedGroups != 1 {
		t.Fatalf("stats after 3 observations: %+v", st)
	}
	// Aligned observations are hits, not candidates, and never trigger.
	a.aligned = a.aligned.With(key)
	if a.Observe([]Observation{{Key: key, Aligned: true}}) {
		t.Fatal("aligned observation fired the trigger")
	}
	if got := a.Stats().AlignedHits; got != 1 {
		t.Fatalf("AlignedHits = %d, want 1", got)
	}
	// Empty observation lists are ignored entirely.
	if a.Observe(nil) {
		t.Fatal("empty observation fired the trigger")
	}
}

// TestPlanMigrationAllOrNothing: an accepted group's migration places a
// copy of EVERY group triple on the align node of its key term — the
// invariant the engine's aligned scan depends on — while preserving
// full dataset coverage and the base placement verbatim.
func TestPlanMigrationAllOrNothing(t *testing.T) {
	ds := hotDataset()
	key := hotKey(t, ds)
	const nodes = 4
	base, err := partition.HashSO{}.Partition(ds, nodes)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{MinBytes: 1, MinQueries: 1})
	observeHot(a, key, 1)
	prop := a.PlanMigration(ds, base)
	if prop == nil {
		t.Fatal("no proposal for a qualifying group")
	}
	if len(prop.Keys) != 1 || prop.Keys[0] != key {
		t.Fatalf("proposal keys = %v, want [%v]", prop.Keys, key)
	}
	if !prop.Alignment.Aligned(key.Pred, key.Pos) {
		t.Fatal("proposal alignment does not cover the accepted group")
	}
	next, err := base.Migrate(prop.Migration)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Covers(ds) {
		t.Fatal("migrated placement lost coverage")
	}
	for _, tr := range ds.Triples {
		if tr.P != key.Pred {
			continue
		}
		node := partition.AlignNode(tr.O, nodes)
		if !next.HasTriple(node, tr) {
			t.Fatalf("group triple %v missing from its align node %d", ds.String(tr), node)
		}
	}
	// The base placement is untouched: migration builds a new snapshot.
	for node := range base.Triples {
		for _, tr := range base.Triples[node] {
			if !next.HasTriple(node, tr) {
				t.Fatalf("base copy %v on node %d dropped by migration", ds.String(tr), node)
			}
		}
	}
	// AddCount matches what the migration actually carries.
	if got := int64(prop.Migration.AddCount()); got != prop.AddCount {
		t.Fatalf("AddCount %d != migration adds %d", prop.AddCount, got)
	}
}

// TestPlanMigrationBudget: a replication budget too small for the group
// rejects it (recorded in SkippedBudget) and yields no proposal; a
// sufficient budget accepts the same state.
func TestPlanMigrationBudget(t *testing.T) {
	ds := hotDataset()
	key := hotKey(t, ds)
	base, err := partition.HashSO{}.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{MinBytes: 1, MinQueries: 1, ReplicationBudget: 1e-9})
	observeHot(a, key, 1)
	if prop := a.PlanMigration(ds, base); prop != nil {
		t.Fatalf("zero budget still produced a proposal: %+v", prop)
	}
	if got := a.Stats().SkippedBudget; got == 0 {
		t.Fatal("budget rejection was not recorded")
	}
	// Same accumulators, workable budget: accepted.
	a.cfg.ReplicationBudget = 2
	if prop := a.PlanMigration(ds, base); prop == nil {
		t.Fatal("workable budget produced no proposal")
	}
}

// TestPlanMigrationBalance: if aligning a group would concentrate its
// triples past BalanceFactor× the mean fragment size, the group is
// rejected. All "skew" triples share one object, so alignment funnels
// them onto a single node.
func TestPlanMigrationBalance(t *testing.T) {
	ds := rdf.NewDataset()
	for i := 0; i < 60; i++ {
		ds.Add(fmt.Sprintf("s%d", i), "skew", "hub")
	}
	ds.Dedup()
	pred, ok := ds.Dict.Lookup("skew")
	if !ok {
		t.Fatal("skew predicate missing")
	}
	key := partition.GroupKey{Pred: pred, Pos: partition.PosO}
	base, err := partition.HashSO{}.Partition(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{MinBytes: 1, MinQueries: 1, BalanceFactor: 1.05, ReplicationBudget: 10})
	observeHot(a, key, 1)
	if prop := a.PlanMigration(ds, base); prop != nil {
		t.Fatalf("skew-concentrating migration passed the balance check: %+v", prop)
	}
	if got := a.Stats().SkippedBudget; got == 0 {
		t.Fatal("balance rejection was not recorded")
	}
}

// TestCommitVsFailure: Commit retires the group (no re-proposal, budget
// spent); RecordFailure leaves it a live candidate for the next round.
func TestCommitVsFailure(t *testing.T) {
	ds := hotDataset()
	key := hotKey(t, ds)
	base, err := partition.HashSO{}.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{MinBytes: 1, MinQueries: 1})
	observeHot(a, key, 1)
	prop := a.PlanMigration(ds, base)
	if prop == nil {
		t.Fatal("no proposal")
	}
	// A failed application changes nothing: the plan can be recomputed.
	a.RecordFailure()
	if st := a.Stats(); st.FailedMigrations != 1 || st.Migrations != 0 || st.AlignedGroups != 0 {
		t.Fatalf("stats after failure: %+v", st)
	}
	again := a.PlanMigration(ds, base)
	if again == nil {
		t.Fatal("failed group no longer proposed")
	}
	if again.AddCount != prop.AddCount {
		t.Fatalf("re-plan diverged: %d vs %d adds", again.AddCount, prop.AddCount)
	}
	// Commit retires it.
	a.Commit(again)
	st := a.Stats()
	if st.Migrations != 1 || st.MigratedTriples != again.AddCount || st.AlignedGroups != 1 {
		t.Fatalf("stats after commit: %+v", st)
	}
	if !a.Alignment().Aligned(key.Pred, key.Pos) {
		t.Fatal("committed group not aligned")
	}
	if prop := a.PlanMigration(ds, base); prop != nil {
		t.Fatalf("aligned group proposed again: %+v", prop)
	}
}

// TestPlanMigrationNetOfExisting: adds are counted net of copies the
// base placement already holds — re-planning against a placement that
// already aligns the group proposes zero-add work, i.e. nothing.
func TestPlanMigrationNetOfExisting(t *testing.T) {
	ds := hotDataset()
	key := hotKey(t, ds)
	base, err := partition.HashSO{}.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{MinBytes: 1, MinQueries: 1})
	observeHot(a, key, 1)
	prop := a.PlanMigration(ds, base)
	if prop == nil {
		t.Fatal("no proposal")
	}
	migrated, err := base.Migrate(prop.Migration)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh advisor over the already-migrated placement finds nothing
	// left to add for the group.
	b := New(Config{MinBytes: 1, MinQueries: 1})
	observeHot(b, key, 1)
	p2 := b.PlanMigration(ds, migrated)
	if p2 != nil && p2.AddCount > 0 {
		t.Fatalf("re-plan against aligned placement wants %d more copies", p2.AddCount)
	}
}

// TestPlanRecoveryCoversDeadNode: after killing one node of an
// unreplicated placement, the recovery proposal places a copy of every
// stranded triple on a healthy node, and Commit records it as a
// recovery round.
func TestPlanRecoveryCoversDeadNode(t *testing.T) {
	ds := hotDataset()
	const nodes = 4
	base, err := partition.HashSO{}.Partition(ds, nodes)
	if err != nil {
		t.Fatal(err)
	}
	a := New(Config{})
	const dead = 1
	prop := a.PlanRecovery(ds, base, []int{dead})
	if prop == nil {
		t.Fatal("no recovery proposal for a dead unreplicated node")
	}
	if !prop.Recovery || len(prop.Keys) != 0 {
		t.Fatalf("recovery proposal malformed: Recovery=%v Keys=%v", prop.Recovery, prop.Keys)
	}
	if len(prop.Migration.Adds[dead]) != 0 {
		t.Fatal("recovery placed copies on the dead node")
	}
	next, err := base.Migrate(prop.Migration)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range base.Triples[dead] {
		found := false
		for node := 0; node < nodes; node++ {
			if node != dead && next.HasTriple(node, tr) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("stranded triple %v has no live copy after recovery", ds.String(tr))
		}
	}
	a.Commit(prop)
	st := a.Stats()
	if st.RecoveryMigrations != 1 || st.Migrations != 1 || st.MigratedTriples != prop.AddCount {
		t.Fatalf("stats after recovery commit: %+v", st)
	}
	// Already-covered state plans nothing more.
	if again := a.PlanRecovery(ds, next, []int{dead}); again != nil {
		t.Fatalf("recovered placement proposed %d more copies", again.AddCount)
	}
	// Degenerate inputs: no dead nodes, or no survivors.
	if a.PlanRecovery(ds, base, nil) != nil {
		t.Fatal("empty dead set produced a proposal")
	}
	if a.PlanRecovery(ds, base, []int{0, 1, 2, 3}) != nil {
		t.Fatal("all-dead cluster produced a proposal")
	}
}

// TestPlanRecoveryBudgetAndHeat: a budget too small for everything
// recovers the hottest observed predicate first and records the
// skipped rest; a budget too small for anything yields no proposal.
func TestPlanRecoveryBudgetAndHeat(t *testing.T) {
	ds := hotDataset()
	key := hotKey(t, ds)
	// An unreplicated placement (HashSO replicates ×2, stranding almost
	// nothing): adjacent hot/cold pairs land together, so every node
	// holds a mix of both predicates and killing one strands both.
	base := &partition.Placement{Nodes: 4, Triples: make([][]rdf.Triple, 4)}
	for i, tr := range ds.Triples {
		node := (i / 2) % 4
		base.Triples[node] = append(base.Triples[node], tr)
	}
	const dead = 2
	var hotStranded, coldStranded int64
	for _, tr := range base.Triples[dead] {
		if tr.P == key.Pred {
			hotStranded++
		} else {
			coldStranded++
		}
	}
	if hotStranded == 0 || coldStranded == 0 {
		t.Fatalf("fragment %d lacks a mix of predicates (hot=%d cold=%d)", dead, hotStranded, coldStranded)
	}
	// Budget exactly one hot group: heat must pick "hot" over "cold".
	a := New(Config{ReplicationBudget: (float64(hotStranded) + 0.5) / float64(ds.Snapshot().Len())})
	observeHot(a, key, 3)
	prop := a.PlanRecovery(ds, base, []int{dead})
	if prop == nil {
		t.Fatal("no proposal with budget for the hot group")
	}
	if prop.AddCount != hotStranded {
		t.Fatalf("recovered %d copies, want the %d hot ones", prop.AddCount, hotStranded)
	}
	for _, adds := range prop.Migration.Adds {
		for _, tr := range adds {
			if tr.P != key.Pred {
				t.Fatalf("budgeted recovery copied cold triple %v before hot ones", ds.String(tr))
			}
		}
	}
	if a.Stats().SkippedBudget == 0 {
		t.Fatal("skipped cold group not recorded")
	}
	// Budget below any group: nothing fits.
	b := New(Config{ReplicationBudget: 1e-9})
	if prop := b.PlanRecovery(ds, base, []int{dead}); prop != nil {
		t.Fatalf("zero budget still proposed %d copies", prop.AddCount)
	}
}

// TestConfigDefaults: zero-valued fields take the documented defaults.
func TestConfigDefaults(t *testing.T) {
	got := New(Config{}).Config()
	want := Config{MinBytes: 1 << 20, MinQueries: 3, ReplicationBudget: 0.5, BalanceFactor: 2}
	if got != want {
		t.Fatalf("defaults = %+v, want %+v", got, want)
	}
	// Explicit values survive.
	got = New(Config{MinBytes: 7, MinQueries: 2, ReplicationBudget: 0.25, BalanceFactor: 3}).Config()
	if got.MinBytes != 7 || got.MinQueries != 2 || got.ReplicationBudget != 0.25 || got.BalanceFactor != 3 {
		t.Fatalf("explicit config rewritten: %+v", got)
	}
}

// TestAccumulatorDecay: with DecayHalfLife set, stale accumulation
// stops counting toward the trigger — a group hot last epoch expires
// once the workload moves on, and only sustained re-observation
// re-qualifies it. Without decay the same history would fire on the
// third observation.
func TestAccumulatorDecay(t *testing.T) {
	ds := hotDataset()
	key := hotKey(t, ds)
	cold := partition.GroupKey{Pred: key.Pred, Pos: partition.PosS}
	a := New(Config{MinBytes: 3 << 20, MinQueries: 3, DecayHalfLife: 4})
	if got := a.Stats().DecayHalfLife; got != 4 {
		t.Fatalf("Stats echoes DecayHalfLife %d, want 4", got)
	}

	// Two hot observations, then the workload moves on: 100 queries
	// that never touch the group. 25 half-lives erase its weight.
	observeHot(a, key, 2)
	for i := 0; i < 100; i++ {
		a.Observe([]Observation{{Key: cold, Rows: 1, Bytes: 1}})
	}
	st := a.Stats()
	if st.ExpiredGroups == 0 {
		t.Fatal("decayed-out group was never expired")
	}
	if st.TrackedGroups != 1 {
		t.Fatalf("%d tracked groups, want 1 (only the cold key)", st.TrackedGroups)
	}

	// One more hot observation must NOT fire: without decay this would
	// be the third query over 3 MiB of accumulated shuffle.
	if observeHot(a, key, 1) {
		t.Fatal("trigger fired on stale, decayed accumulation")
	}
	// Sustained heat still qualifies — but needs more than the
	// no-decay three observations, because each one ages the rest.
	obs := 1 // observations since the expiry, counting the one above
	for fired := false; !fired; {
		if obs++; obs > 10 {
			t.Fatal("sustained hot workload never re-qualified")
		}
		fired = observeHot(a, key, 1)
	}
	if obs <= 3 {
		t.Fatalf("re-qualified after %d observations; decay should slow the trigger past the no-decay 3", obs)
	}
}
