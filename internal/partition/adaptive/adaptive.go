// Package adaptive implements the online repartitioning advisor: it
// mines completed-query shuffle observations for triple groups that
// repeatedly pay repartition cost, and plans incremental migrations
// that co-locate each hot group's triples with their future join
// destinations (Adaptive Partitioning, Harbi et al.; PHD-Store).
//
// The advisor works on OBSERVED shuffle volume — the exact per-child
// scatter rows and bytes the engine attributed in completed traces —
// never on optimizer estimates. A migration only ever adds copies
// (the base method's placement survives verbatim, so every local-join
// guarantee the optimizer derives from it stays sound), and is bounded
// by a replication budget and a per-node balance factor so one hot
// pattern cannot blow up a node.
//
// The loop is: Observe (per completed query) → PlanMigration (when a
// group crosses the trigger) → caller applies the proposal to the live
// placement and engine → Commit. Plan and Commit are split so a failed
// application (e.g. a memory-budget trip while rebuilding stores)
// leaves the advisor's accounting untouched and the proposal can be
// retried or dropped.
package adaptive

import (
	"math"
	"sort"
	"sync"

	"sparqlopt/internal/partition"
	"sparqlopt/internal/rdf"
)

// Observation is one alignable shuffle a completed query paid: a Scan
// child of a repartition join, identified by its (predicate, join
// position) group, with the scatter volume that child actually moved.
// Aligned marks a child that was already served by an aligned scan
// (its Rows/Bytes are zero — the shuffle was skipped).
type Observation struct {
	Key   partition.GroupKey
	Rows  int64
	Bytes int64
	// Aligned reports the group was already migrated when this query ran.
	Aligned bool
}

// Config bounds the advisor. The zero value of any field selects its
// default.
type Config struct {
	// MinBytes is the trigger threshold: a group must accumulate this
	// much observed shuffle volume before it becomes a migration
	// candidate. Default 1 MiB.
	MinBytes int64
	// MinQueries requires the group to recur across this many distinct
	// queries — one huge outlier query does not justify replication.
	// Default 3.
	MinQueries int
	// ReplicationBudget caps the copies all migrations together may
	// add, as a fraction of the dataset size. Default 0.5 (at most
	// half the dataset again).
	ReplicationBudget float64
	// BalanceFactor caps skew: a migration is rejected if it would
	// leave any node's fragment larger than BalanceFactor times the
	// mean fragment size. Default 2.
	BalanceFactor float64
	// DecayHalfLife ages the shuffle accumulators: a group's
	// accumulated rows/bytes/query count halve every DecayHalfLife
	// observed queries, so last week's hot pattern stops qualifying
	// (and stops holding replication budget hostage) once the workload
	// moves on. Groups whose decayed weight drops below one query's
	// worth are expired from the tracker. 0 (the default) disables
	// decay — accumulators only grow, the pre-decay behavior.
	DecayHalfLife int
}

func (c Config) withDefaults() Config {
	if c.MinBytes <= 0 {
		c.MinBytes = 1 << 20
	}
	if c.MinQueries <= 0 {
		c.MinQueries = 3
	}
	if c.ReplicationBudget <= 0 {
		c.ReplicationBudget = 0.5
	}
	if c.BalanceFactor <= 0 {
		c.BalanceFactor = 2
	}
	return c
}

// Stats is a snapshot of the advisor's counters.
type Stats struct {
	// ObservedQueries counts queries that reported at least one
	// alignable shuffle.
	ObservedQueries int64
	// TrackedGroups counts the distinct (predicate, position) groups
	// currently tracked. Without decay this only grows; with decay,
	// groups that cool below one query's worth are expired.
	TrackedGroups int
	// AlignedGroups counts groups migrated so far.
	AlignedGroups int
	// AlignedHits counts observations served by an aligned scan — the
	// shuffles the migrations eliminated.
	AlignedHits int64
	// Migrations counts migration rounds applied.
	Migrations int64
	// MigratedTriples counts the copies all migrations added.
	MigratedTriples int64
	// SkippedBudget counts candidate groups rejected by the
	// replication or balance budget.
	SkippedBudget int64
	// FailedMigrations counts migration rounds that planned but failed
	// to apply (memory budget, placement mismatch, recovered panic).
	FailedMigrations int64
	// ExpiredGroups counts groups dropped by accumulator decay after
	// cooling below the tracking floor.
	ExpiredGroups int64
	// RecoveryMigrations counts committed migration rounds planned by
	// PlanRecovery (re-replication after sustained node failure) — a
	// subset of Migrations.
	RecoveryMigrations int64
	// DecayHalfLife echoes the effective decay configuration, in
	// observed queries (0 = decay disabled).
	DecayHalfLife int
}

// Proposal is one planned migration round, to be applied by the caller
// (placement + engine) and then Commit-ed back to the advisor.
type Proposal struct {
	Migration *partition.Migration
	Alignment *partition.Alignment
	// Keys are the groups the proposal aligns, hottest first. Empty for
	// a recovery proposal (recovery copies restore availability, they
	// do not align any group).
	Keys []partition.GroupKey
	// AddCount is the number of triple copies the migration adds.
	AddCount int64
	// Recovery marks a PlanRecovery proposal: re-replication of
	// fragments stranded on dead nodes, not a shuffle-driven alignment.
	Recovery bool
}

// groupAcc accumulates one group's observed shuffle volume. The
// fields are floats because decay scales them continuously; without
// decay they hold exact integer sums.
type groupAcc struct {
	rows    float64
	bytes   float64
	queries float64
	// seen is the advisor's observed-query clock value at the last
	// fold or decay, so aging is applied lazily.
	seen int64
}

// Advisor accumulates shuffle observations and plans bounded
// migrations. All methods are safe for concurrent use.
type Advisor struct {
	mu      sync.Mutex
	cfg     Config
	acc     map[partition.GroupKey]*groupAcc
	aligned *partition.Alignment
	added   int64 // copies committed so far, against the replication budget
	clock   int64 // observed-query count, the decay time base
	stats   Stats
}

// New returns an advisor with the given bounds (zero fields take
// defaults; see Config).
func New(cfg Config) *Advisor {
	return &Advisor{cfg: cfg.withDefaults(), acc: make(map[partition.GroupKey]*groupAcc)}
}

// Config returns the advisor's effective (defaulted) configuration.
func (a *Advisor) Config() Config { return a.cfg }

// Alignment returns the advisor's committed alignment snapshot (nil
// before the first migration).
func (a *Advisor) Alignment() *partition.Alignment {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.aligned
}

// Stats returns a snapshot of the advisor's counters.
func (a *Advisor) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.TrackedGroups = len(a.acc)
	st.DecayHalfLife = a.cfg.DecayHalfLife
	return st
}

// Observe folds one completed query's alignable shuffles into the
// accumulators and reports whether some unaligned group now crosses
// the migration trigger — the caller's cue to PlanMigration.
func (a *Advisor) Observe(obs []Observation) bool {
	if len(obs) == 0 {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.ObservedQueries++
	a.clock++
	hot := false
	for _, o := range obs {
		if o.Aligned {
			a.stats.AlignedHits++
			continue
		}
		g := a.acc[o.Key]
		if g == nil {
			g = &groupAcc{seen: a.clock}
			a.acc[o.Key] = g
		}
		a.decayLocked(g)
		g.rows += float64(o.Rows)
		g.bytes += float64(o.Bytes)
		g.queries++
		if !a.aligned.Aligned(o.Key.Pred, o.Key.Pos) && a.qualifies(g) {
			hot = true
		}
	}
	a.expireLocked()
	return hot
}

// decayLocked lazily ages one accumulator to the current clock:
// everything halves every DecayHalfLife observed queries. Caller holds
// a.mu.
func (a *Advisor) decayLocked(g *groupAcc) {
	if a.cfg.DecayHalfLife <= 0 {
		g.seen = a.clock
		return
	}
	if age := a.clock - g.seen; age > 0 {
		f := math.Exp2(-float64(age) / float64(a.cfg.DecayHalfLife))
		g.rows *= f
		g.bytes *= f
		g.queries *= f
	}
	g.seen = a.clock
}

// expireLocked drops groups whose decayed weight fell below one
// query's worth — they no longer contribute to any trigger and would
// otherwise leak tracker memory under a drifting workload. Caller
// holds a.mu; a no-op without decay.
func (a *Advisor) expireLocked() {
	if a.cfg.DecayHalfLife <= 0 {
		return
	}
	for k, g := range a.acc {
		a.decayLocked(g)
		if g.queries < 0.5 && g.bytes < 1 {
			delete(a.acc, k)
			a.stats.ExpiredGroups++
		}
	}
}

func (a *Advisor) qualifies(g *groupAcc) bool {
	return g.bytes >= float64(a.cfg.MinBytes) && g.queries >= float64(a.cfg.MinQueries)
}

// PlanMigration computes the next migration round: the hottest
// qualifying groups — by accumulated observed shuffle bytes, with a
// deterministic tie-break — whose full alignment fits the remaining
// replication budget and the balance factor. For every accepted group
// it adds, per node, the group triples that node is missing: after the
// migration EVERY triple with the group's predicate has a copy on
// AlignNode of its key term, which is the all-or-nothing guarantee the
// engine's aligned scan relies on. Returns nil when no group
// qualifies or fits.
//
// The advisor's own accounting is NOT advanced here; the caller
// applies the proposal and then calls Commit (or RecordFailure).
func (a *Advisor) PlanMigration(ds *rdf.Dataset, p *partition.Placement) *Proposal {
	a.mu.Lock()
	defer a.mu.Unlock()
	type cand struct {
		key   partition.GroupKey
		bytes int64
	}
	var cands []cand
	for k, g := range a.acc {
		a.decayLocked(g)
		if a.aligned.Aligned(k.Pred, k.Pos) || !a.qualifies(g) {
			continue
		}
		cands = append(cands, cand{k, int64(g.bytes)})
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].bytes != cands[j].bytes {
			return cands[i].bytes > cands[j].bytes
		}
		if cands[i].key.Pred != cands[j].key.Pred {
			return cands[i].key.Pred < cands[j].key.Pred
		}
		return cands[i].key.Pos < cands[j].key.Pos
	})
	n := p.Nodes
	// Index which candidate-predicate triples each node already holds,
	// so adds are counted net of existing copies (replicating methods
	// like 2f may have placed many group members correctly already).
	preds := make(map[rdf.TermID]bool, len(cands))
	for _, c := range cands {
		preds[c.key.Pred] = true
	}
	type nodeTriple struct {
		node int
		t    rdf.Triple
	}
	present := make(map[nodeTriple]bool)
	nodeSizes := make([]int64, n)
	for node, ts := range p.Triples {
		nodeSizes[node] = int64(len(ts))
		for _, t := range ts {
			if preds[t.P] {
				present[nodeTriple{node, t}] = true
			}
		}
	}
	// Plan against a pinned snapshot: concurrent ingest must not change
	// the triple set mid-plan (triples committed after the pin are
	// covered by the engine's broadcast delta, not by placements).
	snap := ds.Snapshot()
	budget := int64(a.cfg.ReplicationBudget*float64(snap.Len())) - a.added
	adds := make([][]rdf.Triple, n)
	var accepted []partition.GroupKey
	var addCount int64
	for _, c := range cands {
		group := make([][]rdf.Triple, n)
		var count int64
		for _, t := range snap.Triples() {
			if t.P != c.key.Pred {
				continue
			}
			key := t.S
			if c.key.Pos == partition.PosO {
				key = t.O
			}
			node := partition.AlignNode(key, n)
			if present[nodeTriple{node, t}] {
				continue
			}
			group[node] = append(group[node], t)
			count++
		}
		if count > budget {
			a.stats.SkippedBudget++
			continue
		}
		// Balance: project the fragment sizes with this group applied.
		var projTotal int64
		balanced := true
		for node := range group {
			projTotal += nodeSizes[node] + int64(len(group[node]))
		}
		mean := projTotal / int64(n)
		if mean < 1 {
			mean = 1
		}
		for node := range group {
			if float64(nodeSizes[node]+int64(len(group[node]))) > a.cfg.BalanceFactor*float64(mean) {
				balanced = false
				break
			}
		}
		if !balanced {
			a.stats.SkippedBudget++
			continue
		}
		budget -= count
		addCount += count
		for node := range group {
			if len(group[node]) > 0 {
				adds[node] = append(adds[node], group[node]...)
				nodeSizes[node] += int64(len(group[node]))
				for _, t := range group[node] {
					present[nodeTriple{node, t}] = true
				}
			}
		}
		accepted = append(accepted, c.key)
	}
	if len(accepted) == 0 {
		return nil
	}
	return &Proposal{
		Migration: &partition.Migration{Adds: adds},
		Alignment: a.aligned.With(accepted...),
		Keys:      accepted,
		AddCount:  addCount,
	}
}

// PlanRecovery computes a re-replication round after sustained node
// failure: every triple whose placement copies ALL live on dead nodes
// (an uncovered fragment — queries matching it fail with a typed
// unavailability error) gets one new copy on a healthy node. Uncovered
// triples are packed by predicate, hottest observed shuffle volume
// first with a deterministic tie-break, and accepted while they fit
// the remaining replication budget; each accepted group lands on the
// healthy node with the smallest projected fragment. The hard balance
// rejection of PlanMigration is deliberately not applied — during an
// outage availability beats balance, and the smallest-fragment target
// is the balance-aware placement. Returns nil when nothing is
// uncovered, no healthy node remains, or nothing fits the budget.
//
// Like PlanMigration, the advisor's accounting is not advanced here;
// the caller applies the proposal and then calls Commit (or
// RecordFailure).
func (a *Advisor) PlanRecovery(ds *rdf.Dataset, p *partition.Placement, dead []int) *Proposal {
	if len(dead) == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := p.Nodes
	isDead := make([]bool, n)
	for _, d := range dead {
		if d >= 0 && d < n {
			isDead[d] = true
		}
	}
	healthy := 0
	for node := 0; node < n; node++ {
		if !isDead[node] {
			healthy++
		}
	}
	if healthy == 0 {
		return nil
	}
	// covered = triples with at least one copy on a healthy node; also
	// reused below to deduplicate uncovered triples seen on several dead
	// nodes.
	covered := make(map[rdf.Triple]bool)
	nodeSizes := make([]int64, n)
	for node, ts := range p.Triples {
		nodeSizes[node] = int64(len(ts))
		if isDead[node] {
			continue
		}
		for _, t := range ts {
			covered[t] = true
		}
	}
	groups := make(map[rdf.TermID][]rdf.Triple)
	for node, ts := range p.Triples {
		if !isDead[node] {
			continue
		}
		for _, t := range ts {
			if !covered[t] {
				covered[t] = true
				groups[t.P] = append(groups[t.P], t)
			}
		}
	}
	if len(groups) == 0 {
		return nil
	}
	// Heat per predicate from the shuffle accumulators: the predicates
	// queries demonstrably touch get their copies back first when the
	// budget cannot cover everything.
	heat := make(map[rdf.TermID]float64)
	for k, g := range a.acc {
		a.decayLocked(g)
		heat[k.Pred] += g.bytes
	}
	type cand struct {
		pred rdf.TermID
		heat float64
	}
	cands := make([]cand, 0, len(groups))
	for pred := range groups {
		cands = append(cands, cand{pred, heat[pred]})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].heat != cands[j].heat {
			return cands[i].heat > cands[j].heat
		}
		return cands[i].pred < cands[j].pred
	})
	budget := int64(a.cfg.ReplicationBudget*float64(ds.Snapshot().Len())) - a.added
	adds := make([][]rdf.Triple, n)
	var addCount int64
	for _, c := range cands {
		ts := groups[c.pred]
		if int64(len(ts)) > budget {
			a.stats.SkippedBudget++
			continue
		}
		target := -1
		for node := 0; node < n; node++ {
			if isDead[node] {
				continue
			}
			if target < 0 || nodeSizes[node] < nodeSizes[target] {
				target = node
			}
		}
		adds[target] = append(adds[target], ts...)
		nodeSizes[target] += int64(len(ts))
		budget -= int64(len(ts))
		addCount += int64(len(ts))
	}
	if addCount == 0 {
		return nil
	}
	return &Proposal{
		Migration: &partition.Migration{Adds: adds},
		Alignment: a.aligned,
		AddCount:  addCount,
		Recovery:  true,
	}
}

// Commit records a successfully applied proposal: the alignment
// snapshot advances, the replication budget is spent, and future
// Observe/PlanMigration calls treat the groups as aligned.
func (a *Advisor) Commit(p *Proposal) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.aligned = p.Alignment
	a.added += p.AddCount
	a.stats.Migrations++
	a.stats.MigratedTriples += p.AddCount
	a.stats.AlignedGroups = a.aligned.Len()
	if p.Recovery {
		a.stats.RecoveryMigrations++
	}
}

// RecordFailure counts a migration round that planned but failed to
// apply. The advisor's accounting is unchanged — the groups stay
// candidates and a later round may retry them.
func (a *Advisor) RecordFailure() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stats.FailedMigrations++
}
