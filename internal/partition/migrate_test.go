package partition

import (
	"testing"

	"sparqlopt/internal/rdf"
)

func tripleOf(ds *rdf.Dataset, s, p, o string) rdf.Triple {
	si, _ := ds.Dict.Lookup(s)
	pi, _ := ds.Dict.Lookup(p)
	oi, _ := ds.Dict.Lookup(o)
	return rdf.Triple{S: si, P: pi, O: oi}
}

func TestMigrateAddsAndDedups(t *testing.T) {
	ds := chainDataset()
	base, err := HashSO{}.Partition(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	ab := tripleOf(ds, "a", "p", "b")
	bc := tripleOf(ds, "b", "p", "c")
	// Find a node that has ab but not bc: adding both must keep exactly
	// one copy of ab (dedup) and append bc.
	node := -1
	for n := 0; n < base.Nodes; n++ {
		if base.HasTriple(n, ab) && !base.HasTriple(n, bc) {
			node = n
			break
		}
	}
	if node < 0 {
		t.Skip("no node separates ab from bc under this hash; dataset too small")
	}
	adds := make([][]rdf.Triple, base.Nodes)
	adds[node] = []rdf.Triple{ab, bc, bc} // duplicate adds collapse too
	next, err := base.Migrate(&Migration{Adds: adds})
	if err != nil {
		t.Fatal(err)
	}
	if len(next.Triples[node]) != len(base.Triples[node])+1 {
		t.Fatalf("node %d grew by %d, want 1 (dedup failed)",
			node, len(next.Triples[node])-len(base.Triples[node]))
	}
	if !next.HasTriple(node, bc) {
		t.Fatal("added triple missing")
	}
	if !next.Covers(ds) {
		t.Fatal("migration broke coverage")
	}
	// Receiver untouched — published placements are immutable.
	if base.HasTriple(node, bc) {
		t.Fatal("Migrate mutated the receiver")
	}
	// Untouched nodes share the original backing slice (no copy cost).
	for n := 0; n < base.Nodes; n++ {
		if n != node && len(next.Triples[n]) != len(base.Triples[n]) {
			t.Fatalf("untouched node %d changed size", n)
		}
	}
}

func TestMigrateNilAndShapeChecks(t *testing.T) {
	ds := chainDataset()
	base, err := HashSO{}.Partition(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if next, err := base.Migrate(nil); err != nil || next != base {
		t.Fatalf("nil migration: got (%v, %v), want identity", next, err)
	}
	if _, err := base.Migrate(&Migration{Adds: make([][]rdf.Triple, 3)}); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
}

func TestMigrationAddCount(t *testing.T) {
	m := &Migration{Adds: [][]rdf.Triple{{{}, {}}, nil, {{}}}}
	if got := m.AddCount(); got != 3 {
		t.Fatalf("AddCount = %d, want 3", got)
	}
}

func TestCoversDetectsLoss(t *testing.T) {
	ds := chainDataset()
	p, err := HashSO{}.Partition(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Covers(ds) {
		t.Fatal("fresh placement does not cover its dataset")
	}
	// Drop one dataset triple from every node: coverage must fail.
	victim := ds.Triples[0]
	broken := &Placement{Nodes: p.Nodes, Triples: make([][]rdf.Triple, p.Nodes)}
	for n, ts := range p.Triples {
		for _, tr := range ts {
			if tr != victim {
				broken.Triples[n] = append(broken.Triples[n], tr)
			}
		}
	}
	if broken.Covers(ds) {
		t.Fatal("Covers missed a dropped triple")
	}
}

func TestAlignmentSnapshots(t *testing.T) {
	k1 := GroupKey{Pred: 1, Pos: PosS}
	k2 := GroupKey{Pred: 1, Pos: PosO}
	k3 := GroupKey{Pred: 2, Pos: PosS}
	// The nil snapshot is the valid empty alignment.
	var nilAl *Alignment
	if nilAl.Aligned(1, PosS) || nilAl.Len() != 0 || nilAl.Keys() != nil {
		t.Fatal("nil alignment is not empty")
	}
	a := nilAl.With(k2, k1)
	if !a.Aligned(1, PosS) || !a.Aligned(1, PosO) || a.Aligned(2, PosS) {
		t.Fatalf("membership wrong after With: %v", a.Keys())
	}
	// With returns a fresh snapshot; the parent is frozen.
	b := a.With(k3)
	if a.Aligned(2, PosS) {
		t.Fatal("With mutated its receiver")
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	// Keys come back in deterministic (Pred, Pos) order.
	keys := b.Keys()
	want := []GroupKey{k1, k2, k3}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", keys, want)
		}
	}
	// Re-adding an existing key is idempotent.
	if c := b.With(k1); c.Len() != 3 {
		t.Fatalf("duplicate With grew the snapshot to %d", c.Len())
	}
}

func TestAlignNodeMatchesScatterHash(t *testing.T) {
	// The alignment contract: AlignNode must equal the engine's scatter
	// hash (plain modulus). Pin the arithmetic, including large IDs.
	cases := []struct {
		key   rdf.TermID
		nodes int
		want  int
	}{{0, 4, 0}, {7, 4, 3}, {8, 4, 0}, {1<<31 + 5, 10, int((uint64(1)<<31 + 5) % 10)}}
	for _, c := range cases {
		if got := AlignNode(c.key, c.nodes); got != c.want {
			t.Errorf("AlignNode(%d, %d) = %d, want %d", c.key, c.nodes, got, c.want)
		}
	}
}

func TestPosString(t *testing.T) {
	if PosS.String() != "S" || PosO.String() != "O" {
		t.Fatalf("Pos strings: %q %q", PosS.String(), PosO.String())
	}
}
