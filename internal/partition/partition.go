// Package partition implements the generic RDF data partitioning model
// of paper §II-C. A partitioning method consists of two conceptual
// phases: a combine function that assembles, for each vertex v of the
// RDF graph, an indivisible partitioning element e_v (a set of triples
// related to v), and a distribute function that places each element on
// a computing node.
//
// The same combine semantics, applied to the *query* graph, yields the
// maximal local query MLQ_v(Q) at every query vertex (appendix A,
// Definition 5), which is how the optimizer detects local queries in
// Θ(|V_Q|) regardless of the concrete partitioning method.
//
// Four methods from the literature are provided:
//
//   - HashSO — hash partitioning on both subject and object
//     (the baseline assumed by MSC and DP-Bushy);
//   - TwoHopForward — semantic hash partitioning, "2f" (Lee & Liu);
//   - PathBMC — path partitioning (Wu et al.);
//   - UndirectedOneHop — undirected one-hop with graph-partitioner
//     placement (Huang et al.; METIS replaced by a greedy BFS-grown
//     edge-cut partitioner, see DESIGN.md).
package partition

import (
	"fmt"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
)

// Method is one static RDF data partitioning method expressed in the
// generic combine/distribute model.
type Method interface {
	// Name returns the method's name as used in the paper's tables.
	Name() string

	// CombineQuery returns the maximal local query anchored at vertex v
	// of the query graph: the pattern set combine(v, G_Q).
	CombineQuery(g *querygraph.Graph, v int) bitset.TPSet

	// Partition applies the combining and distributing phases to the
	// dataset, producing a placement onto the given number of nodes.
	Partition(ds *rdf.Dataset, nodes int) (*Placement, error)
}

// Placement is the result of partitioning: the triples held by each
// computing node (deduplicated per node; a triple may be replicated
// across nodes, as the model allows).
type Placement struct {
	// Nodes is the cluster size.
	Nodes int
	// Triples holds each node's local fragment.
	Triples [][]rdf.Triple
}

// TotalStored returns the sum of fragment sizes (≥ the dataset size
// when the method replicates triples).
func (p *Placement) TotalStored() int {
	total := 0
	for _, ts := range p.Triples {
		total += len(ts)
	}
	return total
}

// ReplicationFactor returns TotalStored divided by the original
// dataset size.
func (p *Placement) ReplicationFactor(originalSize int) float64 {
	if originalSize == 0 {
		return 0
	}
	return float64(p.TotalStored()) / float64(originalSize)
}

// LocalChecker answers "is this subquery a local query?" for one query
// under one partitioning method, via the maximal-local-query bitsets
// of appendix A (Theorem 5). Checks cost one bitset containment test
// per distinct maximal local query.
type LocalChecker struct {
	mlqs []bitset.TPSet
}

// NewLocalChecker computes the maximal local queries at every vertex
// of the query graph.
func NewLocalChecker(m Method, g *querygraph.Graph) *LocalChecker {
	seen := map[bitset.TPSet]bool{}
	c := &LocalChecker{}
	for v := range g.Terms {
		mlq := m.CombineQuery(g, v)
		if mlq.IsEmpty() || seen[mlq] {
			continue
		}
		// Keep only maximal sets.
		dominated := false
		for _, prev := range c.mlqs {
			if mlq.SubsetOf(prev) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		out := c.mlqs[:0]
		for _, prev := range c.mlqs {
			if !prev.SubsetOf(mlq) {
				out = append(out, prev)
			}
		}
		c.mlqs = append(out, mlq)
		seen[mlq] = true
	}
	return c
}

// IsLocal reports whether the subquery s can be evaluated entirely
// with local joins: s must be a subset of some maximal local query.
// Single patterns and the empty set are always local.
func (c *LocalChecker) IsLocal(s bitset.TPSet) bool {
	if s.Len() <= 1 {
		return true
	}
	for _, mlq := range c.mlqs {
		if s.SubsetOf(mlq) {
			return true
		}
	}
	return false
}

// MaximalLocalQueries returns the distinct maximal local queries.
func (c *LocalChecker) MaximalLocalQueries() []bitset.TPSet {
	out := make([]bitset.TPSet, len(c.mlqs))
	copy(out, c.mlqs)
	return out
}

// ByName returns the built-in method with the given name: "hash-so",
// "2f", "2fb", "path-bmc" or "un-1hop".
func ByName(name string) (Method, error) {
	switch name {
	case "hash-so":
		return HashSO{}, nil
	case "2f":
		return TwoHopForward{}, nil
	case "2fb":
		return TwoHopBidirectional{}, nil
	case "path-bmc":
		return PathBMC{}, nil
	case "un-1hop":
		return UndirectedOneHop{}, nil
	}
	return nil, fmt.Errorf("partition: unknown method %q", name)
}

// hashNode maps a term to a node with a splitmix64-style mixer, so
// placement does not correlate with dictionary assignment order.
func hashNode(v rdf.TermID, nodes int) int {
	x := uint64(v) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(nodes))
}

// collector accumulates per-node triples with per-node dedup.
type collector struct {
	triples [][]rdf.Triple
	seen    []map[rdf.Triple]struct{}
}

func newCollector(nodes int) *collector {
	c := &collector{triples: make([][]rdf.Triple, nodes), seen: make([]map[rdf.Triple]struct{}, nodes)}
	for i := range c.seen {
		c.seen[i] = make(map[rdf.Triple]struct{})
	}
	return c
}

func (c *collector) add(node int, t rdf.Triple) {
	if _, dup := c.seen[node][t]; dup {
		return
	}
	c.seen[node][t] = struct{}{}
	c.triples[node] = append(c.triples[node], t)
}

func (c *collector) placement() *Placement {
	return &Placement{Nodes: len(c.triples), Triples: c.triples}
}

func checkNodes(nodes int) error {
	if nodes <= 0 {
		return fmt.Errorf("partition: cluster size must be positive, got %d", nodes)
	}
	return nil
}
