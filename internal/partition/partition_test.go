package partition

import (
	"testing"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

// fig1 is the running example of paper Fig. 1a (indexes 0..6 = tp1..tp7).
const fig1 = `SELECT * WHERE {
	?b <p1> ?a .
	?c <p2> ?a .
	?a <p3> ?e .
	?e <p4> ?g .
	?b <p5> ?f .
	?c <p6> ?d .
	?a <p7> ?d .
}`

func fig1Graph(t *testing.T) *querygraph.Graph {
	t.Helper()
	return querygraph.NewGraph(sparql.MustParse(fig1))
}

func chainDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	// A small directed chain plus a few branches.
	ds.Add("a", "p", "b")
	ds.Add("b", "p", "c")
	ds.Add("c", "p", "d")
	ds.Add("a", "q", "e")
	ds.Add("x", "p", "c")
	return ds
}

func TestHashSOCombineQueryExample7(t *testing.T) {
	// Paper Example 7: MLQ at ?a under hash partitioning is
	// {tp1, tp2, tp3, tp7} = indexes {0,1,2,6}.
	g := fig1Graph(t)
	a, _ := g.VertexOf(sparql.V("a"))
	got := HashSO{}.CombineQuery(g, a)
	if got != bitset.Of(0, 1, 2, 6) {
		t.Errorf("MLQ(?a) = %v, want {0,1,2,6}", got)
	}
}

func TestPathCombineQueryExample5(t *testing.T) {
	// Paper Example 5: MLQ at ?b under path partitioning is
	// {tp1, tp3, tp4, tp5, tp7} = indexes {0,2,3,4,6}.
	g := fig1Graph(t)
	b, _ := g.VertexOf(sparql.V("b"))
	got := PathBMC{}.CombineQuery(g, b)
	if got != bitset.Of(0, 2, 3, 4, 6) {
		t.Errorf("MLQ(?b) = %v, want {0,2,3,4,6}", got)
	}
}

func TestLocalCheckerHash(t *testing.T) {
	g := fig1Graph(t)
	c := NewLocalChecker(HashSO{}, g)
	// Example 7: all subqueries of {tp1,tp2,tp3,tp7} are local.
	if !c.IsLocal(bitset.Of(0, 1, 2)) {
		t.Error("{tp1,tp2,tp3} should be local under hash")
	}
	if !c.IsLocal(bitset.Of(0, 1, 2, 6)) {
		t.Error("{tp1,tp2,tp3,tp7} should be local under hash")
	}
	// tp1 and tp4 share no vertex: not local.
	if c.IsLocal(bitset.Of(0, 3)) {
		t.Error("{tp1,tp4} should not be local under hash")
	}
	// The whole query is not local under hash.
	if c.IsLocal(bitset.Full(7)) {
		t.Error("full query should not be local under hash")
	}
	// Singletons always local.
	if !c.IsLocal(bitset.Of(3)) || !c.IsLocal(0) {
		t.Error("singleton/empty must be local")
	}
}

func TestLocalCheckerPath(t *testing.T) {
	g := fig1Graph(t)
	c := NewLocalChecker(PathBMC{}, g)
	// Under path partitioning, everything reachable from ?b or ?c is
	// local; e.g. {tp1,tp3,tp4,tp5,tp7} (Example 5).
	if !c.IsLocal(bitset.Of(0, 2, 3, 4, 6)) {
		t.Error("{tp1,tp3,tp4,tp5,tp7} should be local under path")
	}
	// The full query needs both ?b and ?c branches: not reachable from
	// any single vertex.
	if c.IsLocal(bitset.Full(7)) {
		t.Error("full query should not be local under path")
	}
}

func TestLocalCheckerKeepsOnlyMaximal(t *testing.T) {
	g := fig1Graph(t)
	c := NewLocalChecker(HashSO{}, g)
	mlqs := c.MaximalLocalQueries()
	for i, a := range mlqs {
		for j, b := range mlqs {
			if i != j && a.SubsetOf(b) {
				t.Fatalf("mlq %v subsumed by %v", a, b)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"hash-so", "2f", "2fb", "path-bmc", "un-1hop"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if m == nil {
			t.Errorf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

// coverage asserts every dataset triple appears on at least one node.
func coverage(t *testing.T, ds *rdf.Dataset, p *Placement) {
	t.Helper()
	have := map[rdf.Triple]bool{}
	for _, node := range p.Triples {
		for _, tr := range node {
			have[tr] = true
		}
	}
	for _, tr := range ds.Triples {
		if !have[tr] {
			t.Errorf("triple %v missing from placement", ds.String(tr))
		}
	}
}

func TestPartitionCoverageAllMethods(t *testing.T) {
	ds := chainDataset()
	for _, m := range []Method{HashSO{}, TwoHopForward{}, TwoHopBidirectional{}, PathBMC{}, UndirectedOneHop{}} {
		t.Run(m.Name(), func(t *testing.T) {
			p, err := m.Partition(ds, 3)
			if err != nil {
				t.Fatal(err)
			}
			if p.Nodes != 3 || len(p.Triples) != 3 {
				t.Fatalf("placement shape wrong: %+v", p)
			}
			coverage(t, ds, p)
			if p.ReplicationFactor(ds.Len()) < 1 {
				t.Errorf("replication factor %v < 1", p.ReplicationFactor(ds.Len()))
			}
		})
	}
}

func TestPartitionRejectsBadNodeCount(t *testing.T) {
	ds := chainDataset()
	for _, m := range []Method{HashSO{}, TwoHopForward{}, TwoHopBidirectional{}, PathBMC{}, UndirectedOneHop{}} {
		if _, err := m.Partition(ds, 0); err == nil {
			t.Errorf("%s accepted 0 nodes", m.Name())
		}
	}
}

func TestHashSOCollocation(t *testing.T) {
	// Every pair of triples sharing a subject or object must be
	// collocated on at least one node under HashSO.
	ds := chainDataset()
	p, err := HashSO{}.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	where := map[rdf.Triple]map[int]bool{}
	for n, ts := range p.Triples {
		for _, tr := range ts {
			if where[tr] == nil {
				where[tr] = map[int]bool{}
			}
			where[tr][n] = true
		}
	}
	for _, a := range ds.Triples {
		for _, b := range ds.Triples {
			share := a.S == b.S || a.O == b.O || a.S == b.O || a.O == b.S
			if !share {
				continue
			}
			collocated := false
			for n := range where[a] {
				if where[b][n] {
					collocated = true
					break
				}
			}
			if !collocated {
				t.Errorf("triples %v and %v share a vertex but are not collocated", ds.String(a), ds.String(b))
			}
		}
	}
}

func TestPathBMCElementsWhole(t *testing.T) {
	// Every forward closure from a start vertex must live on one node.
	ds := chainDataset()
	p, err := PathBMC{}.Partition(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Start vertices: "a" and "x". Closure of "a": a→b, b→c, c→d, a→e.
	// The element of "a" has 4 triples; check some node holds all 4.
	found := false
	for _, node := range p.Triples {
		count := 0
		for _, tr := range node {
			switch ds.String(tr) {
			case "<a> <p> <b>", "<b> <p> <c>", "<c> <p> <d>", "<a> <q> <e>":
				count++
			}
		}
		if count == 4 {
			found = true
		}
	}
	if !found {
		t.Error("no node holds the complete forward closure of vertex a")
	}
}

func TestPathBMCCoversCycles(t *testing.T) {
	ds := rdf.NewDataset()
	// Pure cycle: no start vertex.
	ds.Add("a", "p", "b")
	ds.Add("b", "p", "c")
	ds.Add("c", "p", "a")
	p, err := PathBMC{}.Partition(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, ds, p)
}

func TestGreedyEdgeCutBalance(t *testing.T) {
	ds := rdf.NewDataset()
	for i := 0; i < 50; i++ {
		ds.Add(string(rune('a'+i%26))+"x", "p", string(rune('a'+(i+1)%26))+"x")
	}
	g := rdf.NewGraph(ds.Triples)
	assign := greedyEdgeCut(g, 4)
	counts := map[int]int{}
	for _, n := range assign {
		counts[n]++
	}
	if len(counts) < 2 {
		t.Errorf("partitioner used %d nodes", len(counts))
	}
	for n, c := range counts {
		if c > (g.NumVertices()+3)/4+1 {
			t.Errorf("node %d overloaded: %d vertices", n, c)
		}
	}
}

func TestWithHotQueries(t *testing.T) {
	q := sparql.MustParse(fig1)
	g := querygraph.NewGraph(q)
	base := HashSO{}
	// Hot query covering tp1, tp2, tp3, tp4 (so the whole chain
	// through ?a and ?e becomes local).
	hot := sparql.MustParse(`SELECT * WHERE {
		?b <p1> ?a .
		?c <p2> ?a .
		?a <p3> ?e .
		?e <p4> ?g .
	}`)
	m := WithHotQueries(base, []*sparql.Query{hot})
	if m.Name() != "Hash-SO+hot" {
		t.Errorf("Name = %q", m.Name())
	}
	c := NewLocalChecker(m, g)
	// {tp3, tp4} share only ?e; base hash makes it local anyway, but
	// {tp1, tp3, tp4} (indexes 0,2,3) is NOT local under plain hash...
	base2 := NewLocalChecker(base, g)
	if base2.IsLocal(bitset.Of(0, 2, 3)) {
		t.Fatal("test premise wrong: {tp1,tp3,tp4} local under plain hash")
	}
	// ...but local with the hot query installed.
	if !c.IsLocal(bitset.Of(0, 2, 3)) {
		t.Error("{tp1,tp3,tp4} should be local with hot query")
	}
	// Patterns outside the hot query stay non-local.
	if c.IsLocal(bitset.Full(7)) {
		t.Error("full query should remain non-local")
	}
	// Partition delegates to the base method.
	ds := chainDataset()
	if _, err := m.Partition(ds, 2); err != nil {
		t.Error(err)
	}
}

func TestTwoHopForwardCombineQuery(t *testing.T) {
	g := fig1Graph(t)
	b, _ := g.VertexOf(sparql.V("b"))
	// 2 hops forward from ?b: tp1 (?b→?a), tp5 (?b→?f), then ?a's
	// out-edges tp3 (?a→?e), tp7 (?a→?d).
	got := TwoHopForward{}.CombineQuery(g, b)
	if got != bitset.Of(0, 2, 4, 6) {
		t.Errorf("2f MLQ(?b) = %v, want {0,2,4,6}", got)
	}
}

func TestTwoHopBidirectionalCombineQuery(t *testing.T) {
	g := fig1Graph(t)
	b, _ := g.VertexOf(sparql.V("b"))
	// 2 undirected hops from ?b: tp1, tp5 (hop 1 via ?b), then every
	// pattern touching ?a or ?f (hop 2): tp2, tp3, tp7.
	got := TwoHopBidirectional{}.CombineQuery(g, b)
	if got != bitset.Of(0, 1, 2, 4, 6) {
		t.Errorf("2fb MLQ(?b) = %v, want {0,1,2,4,6}", got)
	}
}

func TestTwoHopBidirectionalSupersetsOf2f(t *testing.T) {
	// The bidirectional closure always contains the forward closure,
	// so 2fb detects at least the local queries 2f does.
	g := fig1Graph(t)
	for v := range g.Terms {
		f := TwoHopForward{}.CombineQuery(g, v)
		fb := TwoHopBidirectional{}.CombineQuery(g, v)
		if !f.SubsetOf(fb) {
			t.Errorf("vertex %d: 2f %v not within 2fb %v", v, f, fb)
		}
	}
}
