package partition

import (
	"testing"

	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/sparql"
)

func TestTermsMatchShapes(t *testing.T) {
	v, w := sparql.V("x"), sparql.V("y")
	p1, p2 := sparql.I("p1"), sparql.I("p2")
	lit := sparql.L("p1")
	cases := []struct {
		a, b sparql.Term
		want bool
	}{
		{v, w, true},   // any variable matches any variable
		{v, v, true},   // including the same one
		{v, p1, false}, // variable never matches a constant
		{p1, v, false},
		{p1, p1, true},   // equal constants
		{p1, p2, false},  // different constants
		{p1, lit, false}, // same text, different kind (IRI vs literal)
	}
	for _, c := range cases {
		if got := termsMatch(c.a, c.b); got != c.want {
			t.Errorf("termsMatch(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestPatternsMatchVariablePredicates(t *testing.T) {
	// A variable-predicate pattern only matches other variable-predicate
	// patterns: ?s ?p ?o vs ?a <p1> ?b differ in shape, so the
	// conservative criterion must reject the pair.
	varPred := sparql.MustParse(`SELECT * WHERE { ?s ?p ?o . }`).Patterns[0]
	constPred := sparql.MustParse(`SELECT * WHERE { ?a <p1> ?b . }`).Patterns[0]
	if patternsMatch(varPred, constPred) {
		t.Fatal("variable predicate matched a constant predicate")
	}
	if !patternsMatch(varPred, sparql.MustParse(`SELECT * WHERE { ?x ?q ?y . }`).Patterns[0]) {
		t.Fatal("two variable-predicate patterns failed to match")
	}
	// Shape match ignores variable names but not constant positions.
	mixed := sparql.MustParse(`SELECT * WHERE { <s1> ?p ?o . }`).Patterns[0]
	if patternsMatch(varPred, mixed) {
		t.Fatal("var subject matched const subject")
	}
}

// TestIntersectSharedConstantOnly: patterns that overlap the hot query
// only through a shared constant still intersect shape-wise, but the
// component kept must stay anchored at the current vertex — constants
// elsewhere in the query cannot drag in disconnected patterns.
func TestIntersectSharedConstantOnly(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE {
		?a <p1> <hub> .
		?b <p1> <hub> .
		?c <p2> ?d .
	}`)
	hot := sparql.MustParse(`SELECT * WHERE {
		?x <p1> <hub> .
	}`)
	inter := intersect(q, hot)
	// Both <hub>-patterns match the hot shape; the p2 pattern does not.
	if !inter.Has(0) || !inter.Has(1) || inter.Has(2) {
		t.Fatalf("intersect = %v, want {0,1}", inter)
	}
	g := querygraph.NewGraph(q)
	m := WithHotQueries(HashSO{}, []*sparql.Query{hot}).(*hotMethod)
	// At ?a the hot-augmented MLQ may include both hub patterns (they
	// share the <hub> vertex) but never the disconnected p2 pattern.
	a, ok := g.VertexOf(sparql.V("a"))
	if !ok {
		t.Fatal("?a not in graph")
	}
	mlq := m.CombineQuery(g, a)
	if mlq.Has(2) {
		t.Fatalf("MLQ(?a) = %v pulled in the disconnected pattern", mlq)
	}
	if !mlq.Has(0) {
		t.Fatalf("MLQ(?a) = %v dropped the anchor's own pattern", mlq)
	}
}

// TestHotQueryNoAnchorOverlap: a hot query whose intersection does not
// touch the anchor vertex must leave the base MLQ unchanged.
func TestHotQueryNoAnchorOverlap(t *testing.T) {
	q := sparql.MustParse(fig1)
	g := querygraph.NewGraph(q)
	// Hot query matches only tp4 (?e <p4> ?g) — not incident to ?b.
	hot := sparql.MustParse(`SELECT * WHERE { ?e <p4> ?g . }`)
	m := WithHotQueries(HashSO{}, []*sparql.Query{hot})
	b, _ := g.VertexOf(sparql.V("b"))
	if got, base := m.CombineQuery(g, b), (HashSO{}).CombineQuery(g, b); got != base {
		t.Fatalf("MLQ(?b) changed to %v by a hot query not touching ?b (base %v)", got, base)
	}
}

// TestWithHotQueriesEveryBaseMethod: the wrapper must compose with every
// base method — name suffixed, Partition delegated (coverage intact),
// and the augmented MLQ never smaller than the base MLQ. (It is not a
// superset: CombineQuery keeps the LARGER of the base MLQ and the hot
// component, it does not union them.)
func TestWithHotQueriesEveryBaseMethod(t *testing.T) {
	q := sparql.MustParse(fig1)
	g := querygraph.NewGraph(q)
	hot := sparql.MustParse(`SELECT * WHERE {
		?b <p1> ?a .
		?a <p3> ?e .
		?e <p4> ?g .
	}`)
	ds := chainDataset()
	for _, base := range []Method{HashSO{}, TwoHopForward{}, TwoHopBidirectional{}, PathBMC{}, UndirectedOneHop{}} {
		t.Run(base.Name(), func(t *testing.T) {
			m := WithHotQueries(base, []*sparql.Query{hot})
			if m.Name() != base.Name()+"+hot" {
				t.Errorf("Name = %q", m.Name())
			}
			p, err := m.Partition(ds, 3)
			if err != nil {
				t.Fatal(err)
			}
			coverage(t, ds, p)
			for v := range g.Terms {
				got, baseMLQ := m.CombineQuery(g, v), base.CombineQuery(g, v)
				if got.Len() < baseMLQ.Len() {
					t.Errorf("vertex %d: hot MLQ %v smaller than base MLQ %v", v, got, baseMLQ)
				}
				if !got.IsEmpty() && !got.Overlaps(g.Incident(v)) {
					t.Errorf("vertex %d: hot MLQ %v not anchored at the vertex", v, got)
				}
			}
		})
	}
}

// TestWithHotQueriesEmptyList: zero hot queries degrade to the base
// method exactly.
func TestWithHotQueriesEmptyList(t *testing.T) {
	q := sparql.MustParse(fig1)
	g := querygraph.NewGraph(q)
	m := WithHotQueries(HashSO{}, nil)
	for v := range g.Terms {
		if got, want := m.CombineQuery(g, v), (HashSO{}).CombineQuery(g, v); got != want {
			t.Fatalf("vertex %d: %v != base %v with no hot queries", v, got, want)
		}
	}
}
