// Package sparql defines the query model of paper §II-A/§II-B — a
// basic-graph-pattern query Q = {tp1, ..., tpn} — and a parser for the
// SPARQL subset the paper's workloads use: PREFIX declarations and
// SELECT queries whose WHERE clause is a conjunction of triple
// patterns (the benchmark queries L1–L10 and U1–U5 parse unchanged).
package sparql

import (
	"fmt"
	"strings"
)

// TermKind distinguishes the three kinds of pattern terms.
type TermKind uint8

const (
	// Var is a query variable such as ?x.
	Var TermKind = iota
	// IRI is a constant IRI.
	IRI
	// Literal is a constant literal (quotes preserved in Value).
	Literal
)

// Term is one position (subject, predicate or object) of a triple
// pattern: either a variable or a constant.
type Term struct {
	Kind  TermKind
	Value string // variable name without the leading '?', IRI text, or literal text
}

// V returns a variable term.
func V(name string) Term { return Term{Kind: Var, Value: name} }

// I returns an IRI term.
func I(iri string) Term { return Term{Kind: IRI, Value: iri} }

// L returns a literal term.
func L(lit string) Term { return Term{Kind: Literal, Value: lit} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Kind == Var }

// String renders the term in SPARQL syntax.
func (t Term) String() string {
	switch t.Kind {
	case Var:
		return "?" + t.Value
	case IRI:
		return "<" + t.Value + ">"
	default:
		return t.Value
	}
}

// TriplePattern is one triple pattern of a basic graph pattern.
type TriplePattern struct {
	S, P, O Term
}

// String renders the pattern in SPARQL syntax.
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String() + " ."
}

// Vars returns the distinct variable names of the pattern, in
// subject-predicate-object order.
func (tp TriplePattern) Vars() []string {
	var out []string
	add := func(t Term) {
		if !t.IsVar() {
			return
		}
		for _, v := range out {
			if v == t.Value {
				return
			}
		}
		out = append(out, t.Value)
	}
	add(tp.S)
	add(tp.P)
	add(tp.O)
	return out
}

// HasVar reports whether the pattern mentions the variable.
func (tp TriplePattern) HasVar(name string) bool {
	return (tp.S.IsVar() && tp.S.Value == name) ||
		(tp.P.IsVar() && tp.P.Value == name) ||
		(tp.O.IsVar() && tp.O.Value == name)
}

// Query is a subgraph-matching query: a set of triple patterns plus
// the projected variables (empty Select means "project everything").
type Query struct {
	Select   []string
	Patterns []TriplePattern
}

// Vars returns the distinct variable names across all patterns, in
// first-appearance order.
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// String renders the query in SPARQL syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT")
	if len(q.Select) == 0 {
		b.WriteString(" *")
	} else {
		for _, v := range q.Select {
			b.WriteString(" ?")
			b.WriteString(v)
		}
	}
	b.WriteString(" WHERE {\n")
	for _, tp := range q.Patterns {
		b.WriteString("  ")
		b.WriteString(tp.String())
		b.WriteByte('\n')
	}
	b.WriteString("}")
	return b.String()
}

// ParseError reports a syntax error with its byte offset in the input.
type ParseError struct {
	Offset int
	Msg    string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("sparql: offset %d: %s", e.Offset, e.Msg)
}

// Parse parses a SELECT query in the supported subset.
func Parse(input string) (*Query, error) {
	p := &parser{src: input}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and fixtures.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src      string
	pos      int
	prefixes map[string]string
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Offset: p.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '#' {
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
			continue
		}
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return
		}
		p.pos++
	}
}

// keyword consumes kw case-insensitively if it is next; it must be
// followed by a non-identifier character.
func (p *parser) keyword(kw string) bool {
	p.skipSpace()
	if len(p.src)-p.pos < len(kw) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	end := p.pos + len(kw)
	if end < len(p.src) {
		c := p.src[end]
		if isNameChar(c) {
			return false
		}
	}
	p.pos = end
	return true
}

func isNameChar(c byte) bool {
	return c == '_' || c == '-' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

func (p *parser) parseQuery() (*Query, error) {
	p.prefixes = map[string]string{}
	for p.keyword("PREFIX") {
		if err := p.parsePrefix(); err != nil {
			return nil, err
		}
	}
	if !p.keyword("SELECT") {
		return nil, p.errf("expected SELECT")
	}
	q := &Query{}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
	} else {
		for {
			p.skipSpace()
			if p.pos >= len(p.src) || p.src[p.pos] != '?' {
				break
			}
			name, err := p.parseVarName()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, name)
		}
		if len(q.Select) == 0 {
			return nil, p.errf("expected projection variables or *")
		}
	}
	if !p.keyword("WHERE") {
		return nil, p.errf("expected WHERE")
	}
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '{' {
		return nil, p.errf("expected '{'")
	}
	p.pos++
	for {
		p.skipSpace()
		if p.pos >= len(p.src) {
			return nil, p.errf("unexpected end of query, expected '}'")
		}
		if p.src[p.pos] == '}' {
			p.pos++
			break
		}
		tp, err := p.parseTriplePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, tp)
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, p.errf("unexpected trailing input %q", p.src[p.pos:])
	}
	if len(q.Patterns) == 0 {
		return nil, p.errf("query has no triple patterns")
	}
	return q, nil
}

func (p *parser) parsePrefix() error {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ':' {
		if !isNameChar(p.src[p.pos]) && p.src[p.pos] != '.' {
			return p.errf("malformed prefix name")
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return p.errf("malformed PREFIX: missing ':'")
	}
	name := p.src[start:p.pos]
	p.pos++ // ':'
	p.skipSpace()
	if p.pos >= len(p.src) || p.src[p.pos] != '<' {
		return p.errf("malformed PREFIX: expected '<IRI>'")
	}
	end := strings.IndexByte(p.src[p.pos:], '>')
	if end < 0 {
		return p.errf("unterminated IRI in PREFIX")
	}
	p.prefixes[name] = p.src[p.pos+1 : p.pos+end]
	p.pos += end + 1
	return nil
}

func (p *parser) parseVarName() (string, error) {
	// Caller verified p.src[p.pos] == '?'.
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && isNameChar(p.src[p.pos]) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errf("empty variable name")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) parseTriplePattern() (TriplePattern, error) {
	var tp TriplePattern
	var err error
	if tp.S, err = p.parseTerm(); err != nil {
		return tp, err
	}
	if tp.P, err = p.parseTerm(); err != nil {
		return tp, err
	}
	if tp.O, err = p.parseTerm(); err != nil {
		return tp, err
	}
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == '.' {
		p.pos++
	} else if p.pos >= len(p.src) || p.src[p.pos] != '}' {
		return tp, p.errf("expected '.' or '}' after triple pattern")
	}
	return tp, nil
}

func (p *parser) parseTerm() (Term, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return Term{}, p.errf("unexpected end of input in triple pattern")
	}
	switch c := p.src[p.pos]; {
	case c == '?':
		name, err := p.parseVarName()
		if err != nil {
			return Term{}, err
		}
		return V(name), nil
	case c == '<':
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return Term{}, p.errf("unterminated IRI")
		}
		iri := p.src[p.pos+1 : p.pos+end]
		p.pos += end + 1
		return I(iri), nil
	case c == '"':
		return p.parseLiteral()
	case c == 'a' && p.pos+1 < len(p.src) && !isNameChar(p.src[p.pos+1]) && p.src[p.pos+1] != ':':
		// The 'a' shorthand for rdf:type.
		p.pos++
		return I("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"), nil
	default:
		return p.parsePrefixedName()
	}
}

func (p *parser) parseLiteral() (Term, error) {
	start := p.pos
	p.pos++ // opening quote
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case '\\':
			p.pos += 2
		case '"':
			p.pos++
			// Optional @lang or ^^<datatype>.
			if p.pos < len(p.src) && p.src[p.pos] == '@' {
				for p.pos < len(p.src) && (isNameChar(p.src[p.pos]) || p.src[p.pos] == '@') {
					p.pos++
				}
			} else if p.pos+1 < len(p.src) && p.src[p.pos] == '^' && p.src[p.pos+1] == '^' {
				p.pos += 2
				if p.pos >= len(p.src) || p.src[p.pos] != '<' {
					return Term{}, p.errf("expected '<' after '^^'")
				}
				end := strings.IndexByte(p.src[p.pos:], '>')
				if end < 0 {
					return Term{}, p.errf("unterminated datatype IRI")
				}
				p.pos += end + 1
			}
			return L(p.src[start:p.pos]), nil
		default:
			p.pos++
		}
	}
	return Term{}, p.errf("unterminated literal")
}

func (p *parser) parsePrefixedName() (Term, error) {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ':' {
		if !isNameChar(p.src[p.pos]) {
			return Term{}, p.errf("unexpected character %q in term", p.src[p.pos])
		}
		p.pos++
	}
	if p.pos >= len(p.src) {
		return Term{}, p.errf("expected ':' in prefixed name")
	}
	prefix := p.src[start:p.pos]
	base, ok := p.prefixes[prefix]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", prefix)
	}
	p.pos++ // ':'
	local := p.pos
	for p.pos < len(p.src) && (isNameChar(p.src[p.pos]) || p.src[p.pos] == '.') {
		p.pos++
	}
	// A trailing '.' terminates the triple pattern, not the name.
	for p.pos > local && p.src[p.pos-1] == '.' {
		p.pos--
	}
	if p.pos == local {
		return Term{}, p.errf("empty local part in prefixed name")
	}
	return I(base + p.src[local:p.pos]), nil
}
