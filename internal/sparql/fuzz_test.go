package sparql

import "testing"

// FuzzParse checks the parser never panics and that everything it
// accepts survives a String/Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * WHERE { ?x <p> ?y . }`,
		`SELECT ?x WHERE { ?x a <C> }`,
		`PREFIX ub: <http://u#> SELECT ?x ?y WHERE { ?x ub:p ?y . ?y ub:q "lit"@en . }`,
		`SELECT * WHERE { ?x <p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> . }`,
		`SELECT`, `{`, `PREFIX : <`, "SELECT * WHERE { ?x ?p ?y . ?y ?q ?z }",
		// LUBM-style shapes: chains, stars, constants at every position.
		`PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		 SELECT ?x ?y ?z WHERE {
			?x ub:memberOf ?z . ?z ub:subOrganizationOf ?y . ?x ub:undergraduateDegreeFrom ?y .
		 }`,
		`SELECT * WHERE { <http://a> <http://p> ?y . ?y <http://q> "lit" . ?y <http://r> ?z . }`,
		// Degenerate and hostile inputs.
		"", "SELECT * WHERE { }", "SELECT * WHERE { ?x <p> ?y", "# comment only",
		"SELECT * WHERE { ?x <p\x00q> ?y . }", `SELECT * WHERE { ?x <p> "unterminated }`,
		"PREFIX a: <u> PREFIX a: <v> SELECT * WHERE { a:x a:y a:z . }",
		"SELECT * WHERE { ?x\t<p>\n?y\r. }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input must round-trip through the printer.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", q.String(), err)
		}
		if len(q2.Patterns) != len(q.Patterns) {
			t.Fatalf("round trip changed pattern count: %d vs %d", len(q2.Patterns), len(q.Patterns))
		}
	})
}
