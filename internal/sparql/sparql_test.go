package sparql

import (
	"errors"
	"testing"
)

func TestParseFigure1Query(t *testing.T) {
	// The running-example query of paper Fig. 1a.
	q, err := Parse(`
		SELECT * WHERE {
			?b <p1> ?a .
			?c <p2> ?a .
			?a <p3> ?e .
			?e <p4> ?g .
			?b <p5> ?f .
			?c <p6> ?d .
			?a <p7> ?d .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 7 {
		t.Fatalf("got %d patterns, want 7", len(q.Patterns))
	}
	vars := q.Vars()
	if len(vars) != 7 {
		t.Fatalf("vars = %v, want 7 distinct", vars)
	}
	if q.Patterns[0].S != V("b") || q.Patterns[0].P != I("p1") || q.Patterns[0].O != V("a") {
		t.Errorf("tp1 parsed wrong: %v", q.Patterns[0])
	}
}

func TestParsePrefixes(t *testing.T) {
	q, err := Parse(`
		PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
		PREFIX ub: <http://lubm#>
		SELECT ?x WHERE {
			?x rdf:type ub:ResearchGroup .
			?x ub:subOrganizationOf <http://www.Department0.University0.edu> .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 2 {
		t.Fatalf("patterns = %d", len(q.Patterns))
	}
	if q.Patterns[0].P.Value != "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
		t.Errorf("prefix expansion failed: %q", q.Patterns[0].P.Value)
	}
	if q.Patterns[0].O.Value != "http://lubm#ResearchGroup" {
		t.Errorf("prefix expansion failed: %q", q.Patterns[0].O.Value)
	}
	if len(q.Select) != 1 || q.Select[0] != "x" {
		t.Errorf("Select = %v", q.Select)
	}
}

func TestParseRDFTypeShorthand(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x a <C> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Patterns[0].P.Value != "http://www.w3.org/1999/02/22-rdf-syntax-ns#type" {
		t.Errorf("'a' shorthand: %q", q.Patterns[0].P.Value)
	}
}

func TestParseLiterals(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE {
		?x <p> "plain" .
		?x <q> "t"@en .
		?x <r> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
		?x <s> "esc\"aped" .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`"plain"`, `"t"@en`, `"5"^^<http://www.w3.org/2001/XMLSchema#integer>`, `"esc\"aped"`}
	for i, w := range want {
		if q.Patterns[i].O.Kind != Literal || q.Patterns[i].O.Value != w {
			t.Errorf("pattern %d object = %v, want %s", i, q.Patterns[i].O, w)
		}
	}
}

func TestParseMissingFinalDot(t *testing.T) {
	// The last pattern before '}' may omit the '.', as in common usage.
	q, err := Parse(`SELECT ?x WHERE { ?x <p> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 1 {
		t.Fatalf("patterns = %d", len(q.Patterns))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"no select", `WHERE { ?x <p> ?y . }`},
		{"no where", `SELECT ?x { ?x <p> ?y . }`},
		{"no brace", `SELECT ?x WHERE ?x <p> ?y . }`},
		{"unterminated", `SELECT ?x WHERE { ?x <p> ?y .`},
		{"empty body", `SELECT ?x WHERE { }`},
		{"undeclared prefix", `SELECT ?x WHERE { ?x ub:p ?y . }`},
		{"empty var", `SELECT ? WHERE { ?x <p> ?y . }`},
		{"unterminated iri", `SELECT ?x WHERE { ?x <p ?y . }`},
		{"unterminated literal", `SELECT ?x WHERE { ?x <p> "oops . }`},
		{"trailing garbage", `SELECT ?x WHERE { ?x <p> ?y . } LIMIT 5`},
		{"bad prefix decl", `PREFIX ub <http://x> SELECT ?x WHERE { ?x <p> ?y . }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.in)
			if err == nil {
				t.Fatalf("no error for %q", c.in)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error type %T", err)
			}
		})
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `SELECT ?x ?y WHERE { ?x <p> ?y . ?y <q> "lit" . }`
	q := MustParse(src)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
	if len(q2.Patterns) != len(q.Patterns) {
		t.Errorf("round trip lost patterns")
	}
	if q2.String() != q.String() {
		t.Errorf("String not stable:\n%s\nvs\n%s", q.String(), q2.String())
	}
}

func TestTriplePatternVars(t *testing.T) {
	tp := TriplePattern{S: V("x"), P: I("p"), O: V("x")}
	if vs := tp.Vars(); len(vs) != 1 || vs[0] != "x" {
		t.Errorf("Vars = %v", vs)
	}
	if !tp.HasVar("x") || tp.HasVar("y") {
		t.Error("HasVar wrong")
	}
	tp2 := TriplePattern{S: V("s"), P: V("p"), O: V("o")}
	if vs := tp2.Vars(); len(vs) != 3 {
		t.Errorf("Vars = %v", vs)
	}
}

func TestTermString(t *testing.T) {
	if V("x").String() != "?x" {
		t.Error("var string")
	}
	if I("urn:a").String() != "<urn:a>" {
		t.Error("iri string")
	}
	if L(`"v"`).String() != `"v"` {
		t.Error("literal string")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("not a query")
}

func TestParseCommentsAndSelectStar(t *testing.T) {
	q := MustParse(`
		# leading comment
		SELECT * WHERE {
			# inner comment
			?x <p> ?y .
		}`)
	if len(q.Select) != 0 {
		t.Errorf("SELECT * should leave Select empty, got %v", q.Select)
	}
	if len(q.Patterns) != 1 {
		t.Errorf("patterns = %d", len(q.Patterns))
	}
}

func TestParseL9StyleQuery(t *testing.T) {
	// Shape of the paper's L9 (11 triple patterns, constants mixed in).
	src := `
	PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
	PREFIX ub: <http://lubm#>
	SELECT ?x ?y ?f ?c ?p ?n WHERE {
		?y rdf:type ub:University .
		?x rdf:type ub:GraduateStudent .
		?x ub:undergraduateDegreeFrom ?y .
		?f rdf:type ub:FullProfessor .
		?x ub:advisor ?f .
		?x ub:takesCourse ?c .
		?f ub:teacherOf ?c .
		?c rdf:type ub:GraduateCourse .
		<http://pub1> ub:publicationAuthor ?f .
		?p ub:publicationAuthor ?f .
		?p ub:name ?n .
	}`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 11 {
		t.Fatalf("patterns = %d, want 11", len(q.Patterns))
	}
	if len(q.Select) != 6 {
		t.Errorf("Select = %v", q.Select)
	}
}
