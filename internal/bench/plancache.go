package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plancache"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
	"sparqlopt/internal/workload/lubm"
)

// PlanCacheRecord is one benchmark query measured cold (cache miss:
// statistics collection + plan enumeration) and warm (cache hit:
// canonicalize + remap). Planning and end-to-end times are reported
// separately so the plan-serving speedup isn't diluted by execution,
// which the cache deliberately leaves untouched.
type PlanCacheRecord struct {
	Query            string  `json:"query"`
	Patterns         int     `json:"patterns"`
	ColdPlanSeconds  float64 `json:"cold_plan_seconds"`
	WarmPlanSeconds  float64 `json:"warm_plan_seconds"` // average over WarmRuns
	WarmRuns         int     `json:"warm_runs"`
	PlanSpeedup      float64 `json:"plan_speedup"` // cold / warm
	ColdTotalSeconds float64 `json:"cold_total_seconds"`
	WarmTotalSeconds float64 `json:"warm_total_seconds"` // average, incl. execution
	TotalSpeedup     float64 `json:"total_speedup"`
	Rows             int     `json:"rows"`
	IdenticalRows    bool    `json:"identical_rows"`        // warm rows == uncached rows
	EnumeratedJoins  int64   `json:"enumerated_joins"`      // cold run
	WarmEnumerated   int64   `json:"warm_enumerated_joins"` // must stay 0
	Error            string  `json:"error,omitempty"`
}

// planCacheReport is the BENCH_plancache.json payload.
type planCacheReport struct {
	Meta
	Capacity         int               `json:"capacity"`
	Hits             int64             `json:"hits"`
	Misses           int64             `json:"misses"`
	HitRatio         float64           `json:"hit_ratio"`
	MeanPlanSpeedup  float64           `json:"mean_plan_speedup"`
	MeanTotalSpeedup float64           `json:"mean_total_speedup"`
	Records          []PlanCacheRecord `json:"records"`
}

// PlanCacheBench replays LUBM L1–L10 through the cached serving path:
// each query runs once cold, then warmRuns times warm, against a
// Hash-SO cluster. It verifies warm rows match an uncached evaluation
// bit for bit, then writes per-query latencies, speedups and the
// cache's own counters to jsonPath (skipped when empty).
func PlanCacheBench(cfg Config, jsonPath string) error {
	ds := lubm.Generate(lubm.Config{Universities: 7, Seed: cfg.seed(), Compact: cfg.Quick})
	placement, err := partition.HashSO{}.Partition(ds, cfg.nodes())
	if err != nil {
		return err
	}
	eng := engine.New(ds.Dict, placement)
	eng.SetParallelism(cfg.Parallelism)

	capacity := 256
	cache := plancache.New(capacity)
	var registry *obs.Registry
	if cfg.Metrics {
		registry = obs.NewRegistry()
		cache.RegisterMetrics(registry)
		eng.SetInstruments(engine.NewInstruments(registry))
	}
	collect := func(q *sparql.Query) (*stats.Stats, error) { return stats.Collect(ds, q) }
	var optCalls atomic.Int64
	optimize := func(ctx context.Context, q *sparql.Query, st *stats.Stats) (*opt.Result, error) {
		optCalls.Add(1)
		in, err := makeInput(cfg, q, st, partition.HashSO{})
		if err != nil {
			return nil, err
		}
		return opt.Optimize(ctx, in, opt.TDAuto)
	}
	warmRuns := 100
	if cfg.Quick {
		warmRuns = 10
	}

	report := planCacheReport{Meta: cfg.meta(), Capacity: capacity}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Plan cache profile (Hash-SO, TD-Auto, %d warm runs per query)\n", warmRuns)
	fmt.Fprintln(w, "Query\tColdPlan\tWarmPlan\tSpeedup\tColdTotal\tWarmTotal\tRows\tIdentical")
	var planSpeedupSum, totalSpeedupSum float64
	measured := 0
	for _, name := range lubm.QueryNames {
		rec, err := planCacheOne(cfg, eng, cache, ds, name, collect, optimize, &optCalls, warmRuns)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		report.Records = append(report.Records, rec)
		if rec.Error != "" {
			fmt.Fprintf(w, "%s\t%s\t\t\t\t\t\t\n", name, rec.Error)
			continue
		}
		planSpeedupSum += rec.PlanSpeedup
		totalSpeedupSum += rec.TotalSpeedup
		measured++
		fmt.Fprintf(w, "%s\t%.2gs\t%.2gs\t%.0fx\t%.2gs\t%.2gs\t%d\t%v\n",
			name, rec.ColdPlanSeconds, rec.WarmPlanSeconds, rec.PlanSpeedup,
			rec.ColdTotalSeconds, rec.WarmTotalSeconds, rec.Rows, rec.IdenticalRows)
	}
	c := cache.Counters()
	report.Hits, report.Misses = c.Hits, c.Misses
	if c.Hits+c.Misses > 0 {
		report.HitRatio = float64(c.Hits) / float64(c.Hits+c.Misses)
	}
	if measured > 0 {
		report.MeanPlanSpeedup = planSpeedupSum / float64(measured)
		report.MeanTotalSpeedup = totalSpeedupSum / float64(measured)
	}
	fmt.Fprintf(w, "hits %d, misses %d (ratio %.3f); mean plan speedup %.0fx, mean total speedup %.1fx\n",
		report.Hits, report.Misses, report.HitRatio, report.MeanPlanSpeedup, report.MeanTotalSpeedup)
	if err := w.Flush(); err != nil {
		return err
	}
	if registry != nil {
		fmt.Fprintln(cfg.out(), "\nmetrics snapshot:")
		if err := registry.WriteMetrics(cfg.out()); err != nil {
			return err
		}
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out(), "wrote %d records to %s\n", len(report.Records), jsonPath)
	return nil
}

// planCacheOne measures one query cold and warm. The cached rows are
// compared against an uncached optimize+execute of the same query.
// Each query runs under its own deadline: a hung query expires its own
// context and fails its own record, and the remaining queries still
// run with a full budget.
func planCacheOne(cfg Config, eng *engine.Engine, cache *plancache.Cache, ds *rdf.Dataset,
	name string, collect plancache.CollectFunc, optimize plancache.OptimizeFunc,
	optCalls *atomic.Int64, warmRuns int) (PlanCacheRecord, error) {
	q := lubm.Query(name)
	rec := PlanCacheRecord{Query: name, Patterns: len(q.Patterns), WarmRuns: warmRuns}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout()+cfg.execTimeout())
	defer cancel()
	err := planCacheRun(ctx, cfg, eng, cache, ds, q, name, &rec, collect, optimize, optCalls, warmRuns)
	if err != nil && ctx.Err() != nil {
		rec.Error = err.Error()
		return rec, nil
	}
	return rec, err
}

// planCacheRun is planCacheOne's measured body, bounded by ctx.
func planCacheRun(ctx context.Context, cfg Config, eng *engine.Engine, cache *plancache.Cache, ds *rdf.Dataset,
	q *sparql.Query, name string, rec *PlanCacheRecord, collect plancache.CollectFunc, optimize plancache.OptimizeFunc,
	optCalls *atomic.Int64, warmRuns int) error {
	epoch := ds.Epoch()

	// Uncached baseline rows for the bit-identical check.
	base, err := optimize(ctx, q, mustCollect(collect, q))
	if err != nil {
		rec.Error = err.Error()
		return nil
	}
	want, err := eng.Execute(ctx, base.Plan, q)
	if err != nil {
		rec.Error = err.Error()
		return nil
	}

	// Cold: first pass through the cache (miss).
	start := time.Now()
	res, info, err := cache.Optimize(ctx, q, opt.TDAuto, epoch, collect, optimize, nil)
	rec.ColdPlanSeconds = time.Since(start).Seconds()
	if err != nil {
		return err
	}
	if info.Hit {
		return fmt.Errorf("first cache pass reported a hit")
	}
	rec.EnumeratedJoins = res.Counter.CMDs
	out, err := eng.Execute(ctx, res.Plan, q)
	if err != nil {
		return err
	}
	rec.ColdTotalSeconds = time.Since(start).Seconds()
	rec.Rows = len(out.Rows)

	// Warm: repeated hits. Re-parse each round — a serving system sees
	// fresh query text, and parsing is part of the warm path.
	src := lubm.QueryText(name)
	callsBefore := optCalls.Load()
	var warmPlan, warmTotal time.Duration
	identical := true
	for i := 0; i < warmRuns; i++ {
		roundStart := time.Now()
		wq, err := sparql.Parse(src)
		if err != nil {
			return err
		}
		res, info, err := cache.Optimize(ctx, wq, opt.TDAuto, epoch, collect, optimize, nil)
		if err != nil {
			return err
		}
		warmPlan += time.Since(roundStart)
		if !info.Hit {
			return fmt.Errorf("warm run %d missed the cache", i)
		}
		out, err := eng.Execute(ctx, res.Plan, wq)
		if err != nil {
			return err
		}
		warmTotal += time.Since(roundStart)
		if !rowsEqual(out.Rows, want.Rows) {
			identical = false
		}
	}
	if calls := optCalls.Load() - callsBefore; calls != 0 {
		// The optimizer ran during the warm phase: attribute the cold
		// run's enumeration count to it so the report can't claim a
		// free warm path that wasn't.
		rec.WarmEnumerated = calls * base.Counter.CMDs
	}
	rec.WarmPlanSeconds = warmPlan.Seconds() / float64(warmRuns)
	rec.WarmTotalSeconds = warmTotal.Seconds() / float64(warmRuns)
	rec.IdenticalRows = identical
	if rec.WarmPlanSeconds > 0 {
		rec.PlanSpeedup = rec.ColdPlanSeconds / rec.WarmPlanSeconds
	}
	if rec.WarmTotalSeconds > 0 {
		rec.TotalSpeedup = rec.ColdTotalSeconds / rec.WarmTotalSeconds
	}
	return nil
}

func mustCollect(collect plancache.CollectFunc, q *sparql.Query) *stats.Stats {
	s, err := collect(q)
	if err != nil {
		panic(err) // collect over a generated dataset cannot fail
	}
	return s
}

func rowsEqual(a, b [][]rdf.TermID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
