// Package bench regenerates every table and figure of the paper's
// evaluation (§V): optimization time (Table IV), query processing time
// (Table V), estimated plan costs (Table VI), search-space sizes
// (Table VII), the WatDiv stress test (Fig. 6), and the random-query
// study of optimization time and plan quality (Figs. 7–8).
//
// Absolute numbers differ from the paper's (their testbed was a
// 10-node Hadoop/RDF-3X cluster; ours is an in-process simulator) but
// the comparisons the paper draws — who wins, by what factor, where
// algorithms blow up — are reproduced. EXPERIMENTS.md records the
// paper-vs-measured comparison for every artifact.
package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"sparqlopt/internal/baseline"
	"sparqlopt/internal/cost"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// Config controls an experiment run. The zero value reproduces the
// paper's setup: 600 s optimization cap, 10 nodes, full scale.
type Config struct {
	// Out receives the formatted experiment output (default os.Stdout).
	Out io.Writer
	// Timeout caps each optimizer run; timeouts print as "N/A", like
	// the paper's Table IV/VII entries (default 600 s).
	Timeout time.Duration
	// ExecTimeout caps each plan execution in Table V (default 600 s).
	ExecTimeout time.Duration
	// Quick shrinks datasets and instance counts for smoke runs.
	Quick bool
	// Nodes is the simulated cluster size (default 10).
	Nodes int
	// Seed drives all generators (default 1).
	Seed int64
	// CSVDir, when set, makes the figure experiments additionally
	// write plot-ready CSV files into this directory.
	CSVDir string
	// Parallelism is the optimizer and engine worker count (0 = all
	// cores, 1 = sequential). Parallel runs find plans of identical
	// cost and execute to identical results and metrics, so it only
	// changes wall time, never table contents.
	Parallelism int
	// Metrics makes the serving-path experiments (engine, plancache,
	// obsoverhead) append a Prometheus metrics snapshot to Out.
	Metrics bool
}

// csvFile opens a CSV output file, or returns nil when CSVDir is
// unset. Callers must Close a non-nil result.
func (c Config) csvFile(name string) (*os.File, error) {
	if c.CSVDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(c.CSVDir, 0o755); err != nil {
		return nil, err
	}
	return os.Create(filepath.Join(c.CSVDir, name))
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return os.Stdout
	}
	return c.Out
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	if c.Quick {
		return 3 * time.Second
	}
	return 600 * time.Second
}

func (c Config) execTimeout() time.Duration {
	if c.ExecTimeout > 0 {
		return c.ExecTimeout
	}
	if c.Quick {
		return 30 * time.Second
	}
	return 600 * time.Second
}

func (c Config) nodes() int {
	if c.Nodes > 0 {
		return c.Nodes
	}
	return 10
}

func (c Config) seed() int64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return 1
}

func (c Config) params() cost.Params {
	p := cost.Default
	p.Nodes = c.nodes()
	return p
}

// Meta is the metadata block every BENCH_*.json report embeds, so
// bench trajectories stay comparable across PRs: the dataset knobs
// plus the engine representation (flat vs factorized) and the
// parallelism setting the run used.
type Meta struct {
	Quick       bool   `json:"quick"`
	Nodes       int    `json:"nodes"`
	Seed        int64  `json:"seed"`
	Parallelism int    `json:"parallelism"` // 0 = GOMAXPROCS
	Engine      string `json:"engine"`      // "flat" or "factorized"
	// Adaptive records the advisor configuration of an adaptive-
	// repartitioning run; nil for every other experiment.
	Adaptive *AdaptiveMeta `json:"adaptive,omitempty"`
}

// AdaptiveMeta is the advisor configuration an adaptive run used —
// embedded in the report so its trigger and budget knobs travel with
// the numbers they produced.
type AdaptiveMeta struct {
	Rounds            int     `json:"rounds"`
	MinShuffledBytes  int64   `json:"min_shuffled_bytes"`
	MinQueries        int     `json:"min_queries"`
	ReplicationBudget float64 `json:"replication_budget"`
	BalanceFactor     float64 `json:"balance_factor"`
	Synchronous       bool    `json:"synchronous"`
}

// meta describes this run's configuration. The engine representation
// is "factorized" when the cost model's factorization gate is armed —
// result-heavy roots run on the answer-graph path — and "flat" when
// the gate is disabled.
func (c Config) meta() Meta {
	eng := "flat"
	if c.params().FactorizeFanout > 0 {
		eng = "factorized"
	}
	return Meta{Quick: c.Quick, Nodes: c.nodes(), Seed: c.seed(), Parallelism: c.Parallelism, Engine: eng}
}

// Optimizer names one algorithm under test.
type Optimizer struct {
	Name string
	Run  func(ctx context.Context, in *opt.Input) (*opt.Result, error)
}

// The paper's algorithms plus the TriAD-style binary ablation.
var (
	TDCMD  = Optimizer{"TD-CMD", func(ctx context.Context, in *opt.Input) (*opt.Result, error) { return opt.Optimize(ctx, in, opt.TDCMD) }}
	TDCMDP = Optimizer{"TD-CMDP", func(ctx context.Context, in *opt.Input) (*opt.Result, error) {
		return opt.Optimize(ctx, in, opt.TDCMDP)
	}}
	HGR = Optimizer{"HGR-TD-CMD", func(ctx context.Context, in *opt.Input) (*opt.Result, error) {
		return opt.Optimize(ctx, in, opt.HGRTDCMD)
	}}
	TDAuto = Optimizer{"TD-Auto", func(ctx context.Context, in *opt.Input) (*opt.Result, error) {
		return opt.Optimize(ctx, in, opt.TDAuto)
	}}
	MSC     = Optimizer{"MSC", baseline.MSC}
	DPBushy = Optimizer{"DP-Bushy", baseline.DPBushy}
	Binary  = Optimizer{"BinaryDP", baseline.BinaryDP}
)

// outcome is one optimizer run.
type outcome struct {
	res      *opt.Result
	dur      time.Duration
	timedOut bool
	err      error
}

// runOne executes o on in under the configured timeout.
func runOne(cfg Config, o Optimizer, in *opt.Input) outcome {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout())
	defer cancel()
	start := time.Now()
	res, err := o.Run(ctx, in)
	dur := time.Since(start)
	if err != nil {
		if ctx.Err() != nil {
			return outcome{dur: dur, timedOut: true, err: err}
		}
		return outcome{dur: dur, err: err}
	}
	return outcome{res: res, dur: dur}
}

// makeInput assembles an optimizer input from a query and its stats.
func makeInput(cfg Config, q *sparql.Query, s *stats.Stats, m partition.Method) (*opt.Input, error) {
	views, err := querygraph.Build(q)
	if err != nil {
		return nil, err
	}
	est, err := stats.NewEstimator(q, s)
	if err != nil {
		return nil, err
	}
	return &opt.Input{Query: q, Views: views, Est: est, Params: cfg.params(), Method: m, Parallelism: cfg.Parallelism}, nil
}

// dataInput assembles an optimizer input with statistics collected
// from the dataset.
func dataInput(cfg Config, ds *rdf.Dataset, q *sparql.Query, m partition.Method) (*opt.Input, error) {
	s, err := stats.Collect(ds, q)
	if err != nil {
		return nil, err
	}
	return makeInput(cfg, q, s, m)
}

// fmtDur renders a duration the way the paper's tables do.
func fmtDur(o outcome) string {
	if o.timedOut {
		return "N/A"
	}
	if o.err != nil {
		return "err"
	}
	return fmt.Sprintf("%.3fs", o.dur.Seconds())
}

// fmtCost renders a plan cost in the paper's scientific notation.
func fmtCost(o outcome) string {
	if o.res == nil {
		return "N/A"
	}
	return fmt.Sprintf("%.2E", o.res.Plan.Cost)
}

// fmtCount renders a search-space size.
func fmtCount(o outcome, count func(*opt.Result) int64) string {
	if o.res == nil {
		return "N/A"
	}
	return fmt.Sprintf("%d", count(o.res))
}
