package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"sparqlopt"
	"sparqlopt/internal/workload/lubm"
)

// adaptiveHotQueries are the repeating object-object joins the advisor
// mines: 2f co-locates subject-subject and subject-object joins, so
// only object-object joins repartition, and both inputs scatter on the
// shared object variable every round — exactly the recurring shuffle
// the migration eliminates. H1 joins students to the teachers of their
// courses; H2 finds co-instructors of the same course. Both have
// inputs large enough that the cost model prefers repartition over
// broadcast, and results small enough that the shuffle is a real
// fraction of the wall time.
var adaptiveHotQueries = []struct{ name, text string }{
	{"H1", `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE {
	?s ub:takesCourse ?c .
	?t ub:teacherOf ?c .
}`},
	{"H2", `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE {
	?t ub:teacherOf ?c .
	?u ub:teacherOf ?c .
}`},
}

// adaptiveColdQueries never repeat enough to trigger a migration; they
// measure collateral damage — the advisor must not slow down the
// workload it was not tuned for (acceptance: <10% regression).
var adaptiveColdQueries = []string{"L1", "L2", "L4", "L6"}

// AdaptiveQueryRecord is one query measured on both systems.
type AdaptiveQueryRecord struct {
	Query string `json:"query"`
	Kind  string `json:"kind"` // "hot" or "cold"
	Rows  int    `json:"rows"`
	// Identical: rows bit-identical to the single-node reference on
	// both systems, on every round (checked, not sampled).
	Identical bool `json:"identical"`
	// Shuffle volume of the first and last round (hot queries).
	StaticBytesFirst   int64 `json:"static_bytes_first,omitempty"`
	StaticBytesLast    int64 `json:"static_bytes_last,omitempty"`
	AdaptiveBytesFirst int64 `json:"adaptive_bytes_first,omitempty"`
	AdaptiveBytesLast  int64 `json:"adaptive_bytes_last,omitempty"`
	// Warm latency percentiles over the post-migration rounds (hot).
	StaticWarmP99Millis   float64 `json:"static_warm_p99_ms,omitempty"`
	AdaptiveWarmP99Millis float64 `json:"adaptive_warm_p99_ms,omitempty"`
	// Min-of-k wall times (cold queries) and their ratio.
	StaticWallSeconds   float64 `json:"static_wall_seconds,omitempty"`
	AdaptiveWallSeconds float64 `json:"adaptive_wall_seconds,omitempty"`
	ColdRatio           float64 `json:"cold_ratio,omitempty"` // adaptive / static
}

// adaptiveReport is the BENCH_adaptive.json payload.
type adaptiveReport struct {
	Meta
	Method  string                `json:"method"`
	Records []AdaptiveQueryRecord `json:"records"`
	// Advisor outcome.
	Migrations      int64 `json:"migrations"`
	MigratedTriples int64 `json:"migrated_triples"`
	AlignedGroups   int   `json:"aligned_groups"`
	// Replication factor before and after the migrations — the price
	// paid for the shuffle elimination.
	ReplicationBefore float64 `json:"replication_before"`
	ReplicationAfter  float64 `json:"replication_after"`
	// Headline: steady-state shuffle volume across the hot workload
	// (last round, summed) and its reduction; warm p99 across systems;
	// the worst cold-query slowdown.
	StaticSteadyBytes     int64   `json:"static_steady_bytes"`
	AdaptiveSteadyBytes   int64   `json:"adaptive_steady_bytes"`
	ShuffleReduction      float64 `json:"shuffle_reduction"` // 1 - adaptive/static
	StaticWarmP99Millis   float64 `json:"static_warm_p99_ms"`
	AdaptiveWarmP99Millis float64 `json:"adaptive_warm_p99_ms"`
	WarmSpeedup           float64 `json:"warm_speedup"` // static p99 / adaptive p99
	WorstColdRegression   float64 `json:"worst_cold_regression"`
}

// AdaptiveBench drives the same repeating hot workload through two
// identically configured systems — one with the adaptive advisor, one
// static — and reports the steady-state shuffle volume, warm latency
// and replication cost of the migrations, plus the cold-query
// regression guard. Every run on both systems is verified bit-identical
// to the single-node reference, including the runs racing the
// migration. Writes BENCH_adaptive.json to jsonPath (skipped when
// empty).
func AdaptiveBench(cfg Config, jsonPath string) error {
	unis := 5
	rounds := 24
	// Cold queries finish in ~1 ms, where scheduler jitter alone is
	// tens of percent; min-of-k needs a generous k to isolate the
	// placement's contribution from the noise floor.
	coldRuns := 20
	if cfg.Quick {
		unis = 3
		rounds = 5
		coldRuns = 6
	}
	// Non-compact LUBM: the hot joins need input sizes where the cost
	// model picks repartition over broadcast at the configured node
	// count (broadcast wins everything small).
	ds := lubm.Generate(lubm.Config{Universities: unis, Seed: cfg.seed()})
	const methodName = "2f"
	method, err := sparqlopt.PartitionMethod(methodName)
	if err != nil {
		return err
	}
	acfg := sparqlopt.AdaptiveConfig{
		MinShuffledBytes: 1 << 16,
		MinQueries:       2,
		Synchronous:      true,
	}
	common := func() []sparqlopt.Option {
		return []sparqlopt.Option{
			sparqlopt.WithMethod(method),
			sparqlopt.WithNodes(cfg.nodes()),
			sparqlopt.WithParallelism(cfg.Parallelism),
			sparqlopt.WithPlanCache(64),
		}
	}
	static, err := sparqlopt.Open(ds, common()...)
	if err != nil {
		return err
	}
	adaptive, err := sparqlopt.Open(ds, append(common(), sparqlopt.WithAdaptivePartitioning(acfg))...)
	if err != nil {
		return err
	}
	report := adaptiveReport{Meta: cfg.meta(), Method: methodName}
	report.Meta.Adaptive = &AdaptiveMeta{
		Rounds:            rounds,
		MinShuffledBytes:  acfg.MinShuffledBytes,
		MinQueries:        acfg.MinQueries,
		ReplicationBudget: adaptive.AdvisorConfig().ReplicationBudget,
		BalanceFactor:     adaptive.AdvisorConfig().BalanceFactor,
		Synchronous:       acfg.Synchronous,
	}
	report.ReplicationBefore = static.ReplicationFactor()

	ctx := context.Background()
	type refRows struct{ rows *sparqlopt.ExecResult }
	refs := map[string]refRows{}
	reference := func(name, text string) (*sparqlopt.ExecResult, error) {
		if r, ok := refs[name]; ok {
			return r.rows, nil
		}
		q, err := sparqlopt.ParseQuery(text)
		if err != nil {
			return nil, err
		}
		want, err := sparqlopt.Reference(ds, q)
		if err != nil {
			return nil, err
		}
		refs[name] = refRows{want}
		return want, nil
	}

	// Hot phase: the repeating workload, interleaved across systems so
	// machine drift hits both equally. Warm latencies start after round
	// 2 — by then the advisor has observed MinQueries rounds, migrated,
	// and the plan cache re-optimized against the new placement.
	const warmStart = 3
	hotRecs := make([]AdaptiveQueryRecord, len(adaptiveHotQueries))
	warmStatic := map[string][]time.Duration{}
	warmAdaptive := map[string][]time.Duration{}
	for i, hq := range adaptiveHotQueries {
		hotRecs[i] = AdaptiveQueryRecord{Query: hq.name, Kind: "hot", Identical: true}
	}
	for round := 0; round < rounds; round++ {
		// Collect the garbage of the previous round outside the timed
		// region: each round materializes ~10^5 result rows per system,
		// and a collection landing inside one side's timer would bill
		// the whole debt to whichever system drew the short straw.
		runtime.GC()
		for i, hq := range adaptiveHotQueries {
			want, err := reference(hq.name, hq.text)
			if err != nil {
				return err
			}
			rec := &hotRecs[i]
			run := func(sys *sparqlopt.System) (int64, time.Duration, error) {
				start := time.Now()
				res, err := sys.Run(ctx, hq.text)
				if err != nil {
					return 0, 0, err
				}
				wall := time.Since(start)
				if !sameRowMatrix(res, want) {
					rec.Identical = false
				}
				rec.Rows = len(res.Rows)
				return res.ShuffledBytes(), wall, nil
			}
			// Alternate which system goes first: the trailing run inherits
			// the leader's GC debt (these queries materialize 10^5-row
			// results), and a fixed order would bill it all to one side.
			var sBytes, aBytes int64
			var sWall, aWall time.Duration
			if round%2 == 0 {
				sBytes, sWall, err = run(static)
				if err == nil {
					aBytes, aWall, err = run(adaptive)
				}
			} else {
				aBytes, aWall, err = run(adaptive)
				if err == nil {
					sBytes, sWall, err = run(static)
				}
			}
			if err != nil {
				return fmt.Errorf("%s round %d: %w", hq.name, round, err)
			}
			if round == 0 {
				rec.StaticBytesFirst, rec.AdaptiveBytesFirst = sBytes, aBytes
			}
			rec.StaticBytesLast, rec.AdaptiveBytesLast = sBytes, aBytes
			if round >= warmStart {
				warmStatic[hq.name] = append(warmStatic[hq.name], sWall)
				warmAdaptive[hq.name] = append(warmAdaptive[hq.name], aWall)
			}
		}
	}
	adaptive.WaitForMigrations()

	var allStatic, allAdaptive []time.Duration
	for i := range hotRecs {
		rec := &hotRecs[i]
		s, a := warmStatic[rec.Query], warmAdaptive[rec.Query]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		if len(s) > 0 {
			rec.StaticWarmP99Millis = percentileMillis(s, 0.99)
			rec.AdaptiveWarmP99Millis = percentileMillis(a, 0.99)
		}
		allStatic = append(allStatic, s...)
		allAdaptive = append(allAdaptive, a...)
		report.StaticSteadyBytes += rec.StaticBytesLast
		report.AdaptiveSteadyBytes += rec.AdaptiveBytesLast
		report.Records = append(report.Records, *rec)
	}
	sort.Slice(allStatic, func(i, j int) bool { return allStatic[i] < allStatic[j] })
	sort.Slice(allAdaptive, func(i, j int) bool { return allAdaptive[i] < allAdaptive[j] })
	if len(allStatic) > 0 {
		report.StaticWarmP99Millis = percentileMillis(allStatic, 0.99)
		report.AdaptiveWarmP99Millis = percentileMillis(allAdaptive, 0.99)
		if report.AdaptiveWarmP99Millis > 0 {
			report.WarmSpeedup = report.StaticWarmP99Millis / report.AdaptiveWarmP99Millis
		}
	}
	if report.StaticSteadyBytes > 0 {
		report.ShuffleReduction = 1 - float64(report.AdaptiveSteadyBytes)/float64(report.StaticSteadyBytes)
	}

	// Cold phase, after the migrations: queries outside the hot pattern
	// run on the migrated placement — min-of-k wall times, interleaved.
	report.WorstColdRegression = 1.0
	for _, name := range adaptiveColdQueries {
		q := lubm.Query(name)
		want, err := sparqlopt.Reference(ds, q)
		if err != nil {
			return err
		}
		rec := AdaptiveQueryRecord{Query: name, Kind: "cold", Identical: true}
		minS, minA := time.Duration(1<<63-1), time.Duration(1<<63-1)
		for r := 0; r < coldRuns; r++ {
			for _, side := range []struct {
				sys *sparqlopt.System
				min *time.Duration
			}{{static, &minS}, {adaptive, &minA}} {
				start := time.Now()
				res, err := side.sys.RunQuery(ctx, q)
				if err != nil {
					return fmt.Errorf("cold %s: %w", name, err)
				}
				if wall := time.Since(start); wall < *side.min {
					*side.min = wall
				}
				if !sameRowMatrix(res, want) {
					rec.Identical = false
				}
				rec.Rows = len(res.Rows)
			}
		}
		rec.StaticWallSeconds = minS.Seconds()
		rec.AdaptiveWallSeconds = minA.Seconds()
		if minS > 0 {
			rec.ColdRatio = minA.Seconds() / minS.Seconds()
			if rec.ColdRatio > report.WorstColdRegression {
				report.WorstColdRegression = rec.ColdRatio
			}
		}
		report.Records = append(report.Records, rec)
	}

	st := adaptive.AdvisorStats()
	report.Migrations = st.Migrations
	report.MigratedTriples = st.MigratedTriples
	report.AlignedGroups = st.AlignedGroups
	report.ReplicationAfter = adaptive.ReplicationFactor()

	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Adaptive repartitioning (%s, %d nodes, %d rounds, LUBM %d universities)\n",
		methodName, cfg.nodes(), rounds, unis)
	fmt.Fprintln(w, "Query\tKind\tRows\tIdentical\tStaticB(last)\tAdaptiveB(last)\tStatic p99/wall\tAdaptive p99/wall")
	for _, r := range report.Records {
		if r.Kind == "hot" {
			fmt.Fprintf(w, "%s\thot\t%d\t%v\t%d\t%d\t%.2fms\t%.2fms\n",
				r.Query, r.Rows, r.Identical, r.StaticBytesLast, r.AdaptiveBytesLast,
				r.StaticWarmP99Millis, r.AdaptiveWarmP99Millis)
		} else {
			fmt.Fprintf(w, "%s\tcold\t%d\t%v\t\t\t%.3fs\t%.3fs (%.2fx)\n",
				r.Query, r.Rows, r.Identical, r.StaticWallSeconds, r.AdaptiveWallSeconds, r.ColdRatio)
		}
	}
	fmt.Fprintf(w, "migrations=%d triples=%d groups=%d; replication %.2f -> %.2f\n",
		report.Migrations, report.MigratedTriples, report.AlignedGroups,
		report.ReplicationBefore, report.ReplicationAfter)
	fmt.Fprintf(w, "steady shuffle %d B -> %d B (%.0f%% reduction); warm p99 %.2fms -> %.2fms (%.2fx); worst cold %.2fx\n",
		report.StaticSteadyBytes, report.AdaptiveSteadyBytes, 100*report.ShuffleReduction,
		report.StaticWarmP99Millis, report.AdaptiveWarmP99Millis, report.WarmSpeedup,
		report.WorstColdRegression)
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out(), "wrote %d records to %s\n", len(report.Records), jsonPath)
	return nil
}

// sameRowMatrix compares serving-path results bit for bit.
func sameRowMatrix(a, b *sparqlopt.ExecResult) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}
