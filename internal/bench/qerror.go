package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"text/tabwriter"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/rdf"
)

// QError measures the quality of the cardinality estimator of
// appendix B: it executes the TD-Auto plan of every benchmark query
// with per-operator tracing and reports the q-error
// (max(est/actual, actual/est), computed over distinct rows) of every
// join operator. This is an extra study beyond the paper, explaining
// *why* the simple estimator suffices for plan ranking.
func QError(cfg Config) error {
	lubmDS, uniDS := cfg.datasets()
	queries := benchQueries(lubmDS, uniDS)
	method := partition.HashSO{}
	engines := map[*rdf.Dataset]*engine.Engine{}
	for _, ds := range []*rdf.Dataset{lubmDS, uniDS} {
		placement, err := method.Partition(ds, cfg.nodes())
		if err != nil {
			return err
		}
		engines[ds] = engine.New(ds.Dict, placement)
	}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Cardinality estimation quality (appendix B): per-join q-error of TD-Auto plans")
	fmt.Fprintln(w, "Query\t#Joins\tMedian q-error\tMax q-error")
	var all []float64
	for _, bq := range queries {
		in, err := dataInput(cfg, bq.ds, bq.q, method)
		if err != nil {
			return err
		}
		o := runOne(cfg, TDAuto, in)
		if o.res == nil {
			fmt.Fprintf(w, "%s\tN/A\tN/A\tN/A\n", bq.name)
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), cfg.execTimeout())
		res, err := engines[bq.ds].Execute(ctx, o.res.Plan, bq.q)
		cancel()
		if err != nil {
			fmt.Fprintf(w, "%s\terr\t\t\n", bq.name)
			continue
		}
		var errs []float64
		var walk func(tr *engine.TraceNode)
		walk = func(tr *engine.TraceNode) {
			if len(tr.Children) > 0 { // join operators only
				errs = append(errs, qerr(tr.EstimatedCard, float64(tr.OutputRows)))
			}
			for _, ch := range tr.Children {
				walk(ch)
			}
		}
		walk(res.Trace)
		sort.Float64s(errs)
		all = append(all, errs...)
		if len(errs) == 0 {
			fmt.Fprintf(w, "%s\t0\t-\t-\n", bq.name)
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\n", bq.name, len(errs), errs[len(errs)/2], errs[len(errs)-1])
	}
	sort.Float64s(all)
	if len(all) > 0 {
		fmt.Fprintf(w, "overall\t%d\t%.2f\t%.2f\n", len(all), all[len(all)/2], all[len(all)-1])
	}
	return w.Flush()
}

// qerr is the standard q-error with a +1 smoothing for empty results.
func qerr(est, actual float64) float64 {
	est++
	actual++
	return math.Max(est/actual, actual/est)
}
