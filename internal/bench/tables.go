package bench

import (
	"context"
	"fmt"
	"text/tabwriter"
	"time"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/workload/lubm"
	"sparqlopt/internal/workload/randquery"
	"sparqlopt/internal/workload/uniprot"
)

// benchQuery is one named benchmark query bound to its dataset.
type benchQuery struct {
	name string
	q    *sparql.Query
	ds   *rdf.Dataset
}

// datasets builds (and the caller reuses) the two benchmark datasets.
func (c Config) datasets() (lubmDS, uniDS *rdf.Dataset) {
	lcfg := lubm.Config{Universities: 7, Seed: c.seed(), Compact: c.Quick}
	ucfg := uniprot.Config{Proteins: 3000, Seed: c.seed()}
	if c.Quick {
		ucfg.Proteins = 400
	}
	return lubm.Generate(lcfg), uniprot.Generate(ucfg)
}

// benchQueries lists L1–L10 and U1–U5 in the paper's Table III order
// (grouped star, chain, tree, dense).
func benchQueries(lubmDS, uniDS *rdf.Dataset) []benchQuery {
	order := []struct{ name string }{
		{"L1"}, {"U1"}, {"L2"}, {"U2"}, {"L3"}, {"L4"}, {"L5"}, {"L6"},
		{"U3"}, {"U4"}, {"U5"}, {"L7"}, {"L8"}, {"L9"}, {"L10"},
	}
	var out []benchQuery
	for _, o := range order {
		if o.name[0] == 'L' {
			out = append(out, benchQuery{o.name, lubm.Query(o.name), lubmDS})
		} else {
			out = append(out, benchQuery{o.name, uniprot.Query(o.name), uniDS})
		}
	}
	return out
}

// Table3 prints the query inventory (paper Table III).
func Table3(cfg Config) error {
	lubmDS, uniDS := cfg.datasets()
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table III: Queries")
	fmt.Fprintln(w, "Query\tType\t#Triple Patterns")
	for _, bq := range benchQueries(lubmDS, uniDS) {
		jg, err := querygraph.NewJoinGraph(bq.q)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s\t%s\t%d\n", bq.name, jg.Classify(), len(bq.q.Patterns))
	}
	return w.Flush()
}

// Table4 prints query optimization time for the benchmark queries
// (paper Table IV): TD-Auto vs MSC vs DP-Bushy under hash partitioning.
func Table4(cfg Config) error {
	lubmDS, uniDS := cfg.datasets()
	queries := benchQueries(lubmDS, uniDS)
	algos := []Optimizer{TDAuto, MSC, DPBushy}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table IV: Query Optimization Time (LUBM and UniProt queries)")
	header := "Algorithm"
	for _, bq := range queries {
		header += "\t" + bq.name
	}
	fmt.Fprintln(w, header)
	for _, algo := range algos {
		row := algo.Name
		for _, bq := range queries {
			in, err := dataInput(cfg, bq.ds, bq.q, partition.HashSO{})
			if err != nil {
				return err
			}
			row += "\t" + fmtDur(runOne(cfg, algo, in))
		}
		fmt.Fprintln(w, row)
	}
	return w.Flush()
}

// Table5 prints query processing time on the simulated cluster (paper
// Table V): Hash-SO × {TD-Auto, MSC, DP-Bushy}, then 2f and Path-BMC
// with TD-Auto (only the partition-aware optimizer can use them).
func Table5(cfg Config) error {
	lubmDS, uniDS := cfg.datasets()
	queries := benchQueries(lubmDS, uniDS)
	type rowSpec struct {
		part partition.Method
		algo Optimizer
	}
	rows := []rowSpec{
		{partition.HashSO{}, TDAuto},
		{partition.HashSO{}, MSC},
		{partition.HashSO{}, DPBushy},
		{partition.TwoHopForward{}, TDAuto},
		{partition.PathBMC{}, TDAuto},
	}
	// Partition each dataset once per method.
	engines := map[string]map[*rdf.Dataset]*engine.Engine{}
	for _, r := range rows {
		if engines[r.part.Name()] != nil {
			continue
		}
		engines[r.part.Name()] = map[*rdf.Dataset]*engine.Engine{}
		for _, ds := range []*rdf.Dataset{lubmDS, uniDS} {
			placement, err := r.part.Partition(ds, cfg.nodes())
			if err != nil {
				return err
			}
			e := engine.New(ds.Dict, placement)
			e.SetParallelism(cfg.Parallelism)
			engines[r.part.Name()][ds] = e
		}
	}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table V: Query Processing Time (LUBM and UniProt queries)")
	header := "Partitioning\tAlgorithm"
	for _, bq := range queries {
		header += "\t" + bq.name
	}
	fmt.Fprintln(w, header)
	for _, r := range rows {
		line := r.part.Name() + "\t" + r.algo.Name
		for _, bq := range queries {
			in, err := dataInput(cfg, bq.ds, bq.q, r.part)
			if err != nil {
				return err
			}
			o := runOne(cfg, r.algo, in)
			if o.res == nil {
				line += "\tN/A"
				continue
			}
			e := engines[r.part.Name()][bq.ds]
			ctx, cancel := context.WithTimeout(context.Background(), cfg.execTimeout())
			start := time.Now()
			_, err = e.Execute(ctx, o.res.Plan, bq.q)
			dur := time.Since(start)
			cancel()
			switch {
			case err != nil && ctx.Err() != nil:
				line += "\t>cap"
			case err != nil:
				line += "\terr"
			default:
				line += fmt.Sprintf("\t%.3fs", dur.Seconds())
			}
		}
		fmt.Fprintln(w, line)
	}
	return w.Flush()
}

// Table6 prints the estimated cost of the chosen plans (paper Table VI).
func Table6(cfg Config) error {
	lubmDS, uniDS := cfg.datasets()
	queries := benchQueries(lubmDS, uniDS)
	algos := []Optimizer{TDAuto, MSC, DPBushy}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table VI: Estimated cost of the generated query plans")
	header := "Algorithm"
	for _, bq := range queries {
		header += "\t" + bq.name
	}
	fmt.Fprintln(w, header)
	for _, algo := range algos {
		row := algo.Name
		for _, bq := range queries {
			in, err := dataInput(cfg, bq.ds, bq.q, partition.HashSO{})
			if err != nil {
				return err
			}
			row += "\t" + fmtCost(runOne(cfg, algo, in))
		}
		fmt.Fprintln(w, row)
	}
	return w.Flush()
}

// Table7 prints the search-space sizes (paper Table VII): the number
// of join operators each algorithm enumerates on random chain, cycle,
// tree and dense queries of 8, 16 and 30 triple patterns.
func Table7(cfg Config) error {
	classes := []querygraph.Class{querygraph.Chain, querygraph.Cycle, querygraph.Tree, querygraph.Dense}
	sizes := []int{8, 16, 30}
	algos := []Optimizer{MSC, DPBushy, TDCMD, TDCMDP, HGR, TDAuto}
	// MSC's search space is the number of complete flat plans explored;
	// the others count enumerated join operators.
	countOf := func(name string) func(*opt.Result) int64 {
		if name == "MSC" {
			return func(r *opt.Result) int64 { return r.Counter.Plans }
		}
		return func(r *opt.Result) int64 { return r.Counter.CMDs }
	}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table VII: Size of Search Space")
	header := "#Triple Patterns"
	for _, cl := range classes {
		for _, n := range sizes {
			header += fmt.Sprintf("\t%s-%d", cl, n)
		}
	}
	fmt.Fprintln(w, header)
	for _, algo := range algos {
		row := algo.Name
		for _, cl := range classes {
			for _, n := range sizes {
				q, s := randquery.Generate(cl, n, cfg.seed())
				in, err := makeInput(cfg, q, s, partition.HashSO{})
				if err != nil {
					return err
				}
				row += "\t" + fmtCount(runOne(cfg, algo, in), countOf(algo.Name))
			}
		}
		fmt.Fprintln(w, row)
	}
	fmt.Fprintln(w, "(counts: enumerated join operators; MSC: explored flat plans; N/A: timed out)")
	return w.Flush()
}
