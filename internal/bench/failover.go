package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"sparqlopt"
	"sparqlopt/internal/workload/lubm"
)

// FailoverRecord is one (system, phase) cell of the failover
// experiment: a workload slice against one twin in one health state.
type FailoverRecord struct {
	// System is "failover" (WithNodeFailover + recovery advisor) or
	// "no-failover" (the twin that shows the raw failure mode).
	System string `json:"system"`
	// Phase is "healthy" (before the kill), "killed" (node down,
	// serving from replicas / failing) or "recovered" (node still down,
	// stranded triples re-replicated).
	Phase     string `json:"phase"`
	Runs      int    `json:"runs"`
	Succeeded int    `json:"succeeded"`
	// Unavailable counts typed UnavailableError fast failures; Failed
	// counts anything else (must stay 0 — a node death may never
	// surface as an untyped error, hang or panic).
	Unavailable int `json:"unavailable"`
	Failed      int `json:"failed"`
	// Failovers sums the runs' failover operations (replica scans,
	// re-homed shuffle partitions).
	Failovers int64   `json:"failovers"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`

	// lastFail is when the phase's last typed failure finished — the
	// recovery horizon marker; not serialized.
	lastFail time.Time `json:"-"`
}

// failoverReport is the BENCH_failover.json payload.
type failoverReport struct {
	Meta
	KilledNode int `json:"killed_node"`
	// RecoveryMigrations is how many recovery rounds the advisor
	// applied; ReplicationBefore/After bracket their cost against the
	// replication budget.
	RecoveryMigrations int64   `json:"recovery_migrations"`
	ReplicationBefore  float64 `json:"replication_factor_before"`
	ReplicationAfter   float64 `json:"replication_factor_after"`
	// TimeToRecoverMillis is the wall time from the node kill until the
	// workload's first fully-successful round (recovery re-replication
	// included).
	TimeToRecoverMillis float64 `json:"time_to_recover_ms"`
	// CoveredSuccess is the headline acceptance: after recovery, every
	// query succeeds with the node still dead. P99Held reports whether
	// the failover twin's killed-phase p99 stayed within 2x healthy.
	CoveredSuccess bool             `json:"covered_success_after_recovery"`
	P99Held        bool             `json:"killed_p99_within_2x_healthy"`
	Records        []FailoverRecord `json:"records"`
}

// failoverQueries is the serving mix — the same cheap-to-moderate LUBM
// shapes as the overload experiment, so per-run latency reflects the
// failover machinery, not one huge join.
var failoverQueries = []string{"L1", "L2", "L4", "L5", "L7"}

// FailoverBench kills one node mid-workload and measures what each
// twin does about it. The failover twin (WithNodeFailover + a
// synchronous recovery advisor) must keep serving: replica-covered
// scans stay bit-identical with p99 within 2x of healthy, stranded
// fragments fail fast with typed errors until the advisor re-replicates
// them, and after recovery every query succeeds with the node still
// dead. The no-failover twin runs the same kill phase and shows the
// raw failure mode: typed fast failures on every affected query, no
// replica serving, no recovery. Results land in jsonPath (skipped when
// empty).
func FailoverBench(cfg Config, jsonPath string) error {
	ds := lubm.Generate(lubm.Config{Universities: 2, Seed: cfg.seed(), Compact: true})
	rounds := 20
	if cfg.Quick {
		rounds = 6
	}
	const killedNode = 1

	foCfg := sparqlopt.NodeFailoverConfig{
		MaxAttempts: 2,
		RetryBase:   100 * time.Microsecond,
		RetryCap:    time.Millisecond,
		OpenFor:     time.Second,
	}
	withFO, err := sparqlopt.Open(ds,
		sparqlopt.WithNodes(cfg.nodes()),
		sparqlopt.WithParallelism(cfg.Parallelism),
		sparqlopt.WithPlanCache(64),
		sparqlopt.WithNodeFailover(foCfg),
		sparqlopt.WithAdaptivePartitioning(sparqlopt.AdaptiveConfig{
			ReplicationBudget: 0.5,
			Synchronous:       true,
		}),
	)
	if err != nil {
		return err
	}
	withoutFO, err := sparqlopt.Open(ds,
		sparqlopt.WithNodes(cfg.nodes()),
		sparqlopt.WithParallelism(cfg.Parallelism),
		sparqlopt.WithPlanCache(64),
	)
	if err != nil {
		return err
	}

	report := failoverReport{Meta: cfg.meta(), KilledNode: killedNode}
	report.ReplicationBefore = withFO.ReplicationFactor()

	// Healthy baseline on both twins.
	foHealthy := failoverPhase(cfg, withFO, "failover", "healthy", rounds, nil)
	nfHealthy := failoverPhase(cfg, withoutFO, "no-failover", "healthy", rounds, nil)

	// Kill the node: its scan and shuffle sites fail on every hit for
	// the rest of the experiment. One shared fault set per twin keeps
	// the site hit-counts accumulating across runs.
	killFO := sparqlopt.NewFaultSet(cfg.seed())
	killFO.Arm(sparqlopt.FaultNodeScan(killedNode), 1)
	killFO.Arm(sparqlopt.FaultNodeShuffle(killedNode), 1)
	killNF := sparqlopt.NewFaultSet(cfg.seed())
	killNF.Arm(sparqlopt.FaultNodeScan(killedNode), 1)
	killNF.Arm(sparqlopt.FaultNodeShuffle(killedNode), 1)

	killStart := time.Now()
	foKilled := failoverPhase(cfg, withFO, "failover", "killed", rounds, killFO)
	// The killed phase's typed failures triggered synchronous recovery
	// re-replication, so full service resumed at the last failure; the
	// recovered phase proves it with the node still dead.
	report.TimeToRecoverMillis = float64(foKilled.lastFail.Sub(killStart).Milliseconds())
	if foKilled.Unavailable == 0 {
		report.TimeToRecoverMillis = 0 // nothing was stranded
	}
	foRecovered := failoverPhase(cfg, withFO, "failover", "recovered", rounds, killFO)
	nfKilled := failoverPhase(cfg, withoutFO, "no-failover", "killed", rounds, killNF)

	report.Records = []FailoverRecord{foHealthy, foKilled, foRecovered, nfHealthy, nfKilled}
	report.RecoveryMigrations = withFO.AdvisorStats().RecoveryMigrations
	report.ReplicationAfter = withFO.ReplicationFactor()
	report.CoveredSuccess = foRecovered.Runs > 0 && foRecovered.Succeeded == foRecovered.Runs
	report.P99Held = foHealthy.P99Millis > 0 && foKilled.P99Millis <= 2*foHealthy.P99Millis

	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Failover profile (node %d of %d killed, %d rounds/phase)\n", killedNode, cfg.nodes(), rounds)
	fmt.Fprintln(w, "System\tPhase\tRuns\tOK\tUnavailable\tFailed\tFailovers\tp50\tp99")
	for _, r := range report.Records {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%.2fms\t%.2fms\n",
			r.System, r.Phase, r.Runs, r.Succeeded, r.Unavailable, r.Failed, r.Failovers,
			r.P50Millis, r.P99Millis)
	}
	fmt.Fprintf(w, "recovery: %d migration(s), replication %.3f -> %.3f, full service after %.1fms\n",
		report.RecoveryMigrations, report.ReplicationBefore, report.ReplicationAfter, report.TimeToRecoverMillis)
	fmt.Fprintf(w, "covered success after recovery: %v; killed p99 within 2x healthy: %v\n",
		report.CoveredSuccess, report.P99Held)
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out(), "wrote %d records to %s\n", len(report.Records), jsonPath)
	return nil
}

// failoverPhase serves rounds of the workload against sys, every run
// carrying the phase's fault set (nil for the healthy phases), and
// folds the outcomes into one record.
func failoverPhase(cfg Config, sys *sparqlopt.System, system, phase string, rounds int, faults *sparqlopt.FaultSet) FailoverRecord {
	rec := FailoverRecord{System: system, Phase: phase}
	var latencies []time.Duration
	for r := 0; r < rounds; r++ {
		for _, name := range failoverQueries {
			src := lubm.QueryText(name)
			opts := []sparqlopt.RunOption{sparqlopt.WithDeadline(cfg.execTimeout())}
			if faults != nil {
				opts = append(opts, sparqlopt.WithFaultInjection(faults))
			}
			start := time.Now()
			res, err := sys.Run(context.Background(), src, opts...)
			d := time.Since(start)
			rec.Runs++
			switch {
			case err == nil:
				rec.Succeeded++
				rec.Failovers += res.Failovers
				latencies = append(latencies, d)
			case errors.Is(err, sparqlopt.ErrUnavailable):
				rec.Unavailable++
				rec.lastFail = time.Now()
			default:
				rec.Failed++
			}
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rec.P50Millis = percentileMillis(latencies, 0.50)
		rec.P99Millis = percentileMillis(latencies, 0.99)
	}
	return rec
}
