package bench

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"sparqlopt/internal/race"
)

// TestObsOverheadDisabledPathBudget is the acceptance bound on the
// observability layer's disabled path: with the instruments compiled
// in but not wired (plain Open, every hook one nil check), serving
// must not be measurably slower than the fully-enabled path bounds it
// — total_disabled_seconds <= total_enabled_seconds * 1.02. Timing is
// min-of-k and interleaved inside the experiment; a few retries absorb
// machine noise on top of that.
func TestObsOverheadDisabledPathBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment; skipped with -short")
	}
	if race.Enabled {
		t.Skip("race instrumentation distorts the timing comparison")
	}
	path := filepath.Join(t.TempDir(), "obsoverhead.json")
	cfg := Config{Out: io.Discard, Quick: true, Nodes: 4, Seed: 1}
	const attempts = 5
	var report obsOverheadReport
	for i := 0; i < attempts; i++ {
		if err := ObsOverheadBench(cfg, path); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		report = obsOverheadReport{}
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("attempt %d: report not parseable: %v", i, err)
		}
		if len(report.Records) == 0 || report.TotalDisabledSeconds <= 0 {
			t.Fatalf("attempt %d: empty report: %+v", i, report)
		}
		for _, rec := range report.Records {
			if rec.Error != "" {
				t.Fatalf("attempt %d: %s failed: %s", i, rec.Query, rec.Error)
			}
		}
		if report.TotalDisabledSeconds <= report.TotalEnabledSeconds*1.02 {
			return
		}
		t.Logf("attempt %d: disabled %.4gs > enabled %.4gs * 1.02, retrying",
			i, report.TotalDisabledSeconds, report.TotalEnabledSeconds)
	}
	t.Errorf("disabled path over budget after %d attempts: disabled %.4gs, enabled %.4gs (bound %.4gs)",
		attempts, report.TotalDisabledSeconds, report.TotalEnabledSeconds,
		report.TotalEnabledSeconds*1.02)
}
