package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"sparqlopt"
	"sparqlopt/internal/workload/lubm"
)

// ingestQueries are the read workload of the serving-under-ingest
// experiment: four shapes over pairwise-distinct LUBM predicate sets,
// so a write attributed to one predicate leaves three of the four
// shapes provably untouched.
var ingestQueries = []struct{ name, text string }{
	{"takes", `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE { ?s ub:takesCourse ?c . ?t ub:teacherOf ?c . }`},
	{"advisor", `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE { ?x ub:advisor ?p . ?p ub:worksFor ?d . }`},
	{"member", `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE { ?x ub:memberOf ?d . ?d ub:subOrganizationOf ?u . }`},
	{"author", `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT * WHERE { ?p ub:publicationAuthor ?a . ?a ub:name ?n . }`},
}

// ingestNoisePred is the predicate the sustained write stream targets;
// no read shape touches it, so a scoped cache must retain everything.
const ingestNoisePred = "http://bench/ingest#observedAt"

// ingestOverlapPred is written every overlapEvery-th round; it is a
// predicate of the "takes" shape, so exactly that shape must
// re-optimize on those rounds.
const ingestOverlapPred = lubm.UB + "takesCourse"

// IngestSystemStats is one system's side of the A/B comparison.
type IngestSystemStats struct {
	Name string `json:"name"`
	// Read-only warm p99 — the baseline the mixed-phase latency is
	// held against.
	ReadOnlyP99Millis float64 `json:"read_only_p99_ms"`
	// Mixed-phase (one write per round, interleaved reads) latency.
	MixedP99Millis float64 `json:"mixed_p99_ms"`
	// P99Ratio is mixed / read-only: the serving cost of ingest.
	P99Ratio float64 `json:"p99_ratio"`
	// MixedHitRate is the plan-cache hit rate across the mixed phase.
	MixedHitRate float64 `json:"mixed_hit_rate"`
	// UntouchedReopts counts mixed-phase runs that re-entered the
	// optimizer although no write since the shape's previous run
	// touched its predicates. Scoped invalidation must keep this 0.
	UntouchedReopts int64 `json:"untouched_reopts"`
	// Cumulative cache counters at the end of the run.
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Retained      int64 `json:"retained"`
	// PendingWrites after the final flush; must be 0.
	PendingWrites int `json:"pending_writes"`
	// Identical: every post-ingest query returned rows bit-identical
	// to the single-node reference over the final dataset.
	Identical bool `json:"identical"`
}

// ingestReport is the BENCH_ingest.json payload.
type ingestReport struct {
	Meta
	Rounds        int               `json:"rounds"`
	Writes        int               `json:"writes"`
	OverlapWrites int               `json:"overlap_writes"`
	TriplesBefore int               `json:"triples_before"`
	TriplesAfter  int               `json:"triples_after"`
	Scoped        IngestSystemStats `json:"scoped"`
	Full          IngestSystemStats `json:"full"`
	// Headline: scoped hit rate under sustained ingest vs the
	// full-invalidation seed behavior on the identical workload.
	HitRateGain float64 `json:"hit_rate_gain"` // scoped - full
}

// IngestBench measures serving under sustained ingest: two identically
// configured systems share one dataset and one write stream — one with
// predicate-scoped plan-cache invalidation (the default), one with the
// seed's epoch-wide invalidation — while four read shapes run every
// round. Most writes target a predicate no read shape touches; every
// eighth write touches the "takes" shape. The scoped system must keep
// its warm hit rate and p99 (acceptance: hit rate >= 0.9, p99 within
// 1.5x of the read-only baseline) while the full-invalidation twin
// re-optimizes every shape after every write. Both systems' rows are
// verified bit-identical to the single-node reference over the final
// dataset. Writes BENCH_ingest.json to jsonPath (skipped when empty).
func IngestBench(cfg Config, jsonPath string) error {
	unis := 3
	rounds := 120
	baselineRounds := 40
	if cfg.Quick {
		unis = 2
		rounds = 40
		baselineRounds = 15
	}
	const overlapEvery = 8
	ds := lubm.Generate(lubm.Config{Universities: unis, Seed: cfg.seed(), Compact: cfg.Quick})
	common := func() []sparqlopt.Option {
		return []sparqlopt.Option{
			sparqlopt.WithNodes(cfg.nodes()),
			sparqlopt.WithParallelism(cfg.Parallelism),
			sparqlopt.WithPlanCache(64),
		}
	}
	scopedSys, err := sparqlopt.Open(ds, common()...)
	if err != nil {
		return err
	}
	fullSys, err := sparqlopt.Open(ds, append(common(), sparqlopt.WithScopedInvalidation(false))...)
	if err != nil {
		return err
	}
	systems := []struct {
		name string
		sys  *sparqlopt.System
		st   *IngestSystemStats
	}{
		{"scoped", scopedSys, &IngestSystemStats{Name: "scoped"}},
		{"full", fullSys, &IngestSystemStats{Name: "full"}},
	}
	ctx := context.Background()
	report := ingestReport{Meta: cfg.meta(), Rounds: rounds, TriplesBefore: ds.Len()}

	// Warm both caches, then measure the read-only baseline.
	for _, s := range systems {
		for _, q := range ingestQueries {
			for i := 0; i < 2; i++ {
				if _, err := s.sys.Run(ctx, q.text); err != nil {
					return fmt.Errorf("warm %s/%s: %w", s.name, q.name, err)
				}
			}
		}
		var lat []time.Duration
		for r := 0; r < baselineRounds; r++ {
			for _, q := range ingestQueries {
				start := time.Now()
				if _, err := s.sys.Run(ctx, q.text); err != nil {
					return fmt.Errorf("baseline %s/%s: %w", s.name, q.name, err)
				}
				lat = append(lat, time.Since(start))
			}
		}
		s.st.ReadOnlyP99Millis = percentileMillis(lat, 0.99)
	}

	// Sustained mixed phase: one write, then every shape, per round.
	// dirty[i] marks shapes whose predicates a write touched since
	// their last run; a miss on a clean shape is an untouched-reopt.
	for si, s := range systems {
		dirty := make([]bool, len(ingestQueries))
		var lat []time.Duration
		var runs, hits int64
		for r := 0; r < rounds; r++ {
			if si == 0 {
				// One shared dataset: the first system's loop commits
				// the writes; the second replays the identical rounds
				// against the already-grown data with its own writes.
				ingestWrite(ds, "a", r, overlapEvery)
			} else {
				ingestWrite(ds, "b", r, overlapEvery)
			}
			if r%overlapEvery == overlapEvery-1 {
				dirty[0] = true // the "takes" shape
				if si == 0 {
					report.OverlapWrites++
				}
			}
			for i, q := range ingestQueries {
				start := time.Now()
				res, err := s.sys.Run(ctx, q.text)
				if err != nil {
					return fmt.Errorf("mixed %s/%s: %w", s.name, q.name, err)
				}
				lat = append(lat, time.Since(start))
				runs++
				if res.CacheInfo.Hit {
					hits++
				} else if !dirty[i] {
					s.st.UntouchedReopts++
				}
				dirty[i] = false
			}
			if si == 0 {
				report.Writes++
			}
		}
		s.st.MixedP99Millis = percentileMillis(lat, 0.99)
		if s.st.ReadOnlyP99Millis > 0 {
			s.st.P99Ratio = s.st.MixedP99Millis / s.st.ReadOnlyP99Millis
		}
		if runs > 0 {
			s.st.MixedHitRate = float64(hits) / float64(runs)
		}
	}

	// Quiesce and verify: no deferred applies, and both systems answer
	// every shape bit-identically to the single-node reference over
	// the final dataset.
	report.TriplesAfter = ds.Len()
	for _, s := range systems {
		s.st.Identical = true
		if !s.sys.FlushWrites() {
			s.st.Identical = false
		}
		s.st.PendingWrites = s.sys.PendingWrites()
		for _, q := range ingestQueries {
			pq, err := sparqlopt.ParseQuery(q.text)
			if err != nil {
				return err
			}
			want, err := sparqlopt.Reference(ds, pq)
			if err != nil {
				return err
			}
			got, err := s.sys.Run(ctx, q.text)
			if err != nil {
				return fmt.Errorf("verify %s/%s: %w", s.name, q.name, err)
			}
			if !rowsEqual(got.Rows, want.Rows) {
				s.st.Identical = false
			}
		}
		cs := s.sys.CacheStats()
		s.st.Hits, s.st.Misses = cs.Hits, cs.Misses
		s.st.Invalidations, s.st.Retained = cs.Invalidations, cs.Retained
	}
	report.Scoped = *systems[0].st
	report.Full = *systems[1].st
	report.HitRateGain = report.Scoped.MixedHitRate - report.Full.MixedHitRate

	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Serving under ingest (%d writes over %d rounds, %d overlap)\n",
		report.Writes, report.Rounds, report.OverlapWrites)
	fmt.Fprintln(w, "System\tHitRate\tReadP99\tMixedP99\tRatio\tUntouchedReopts\tRetained\tIdentical")
	for _, s := range systems {
		fmt.Fprintf(w, "%s\t%.3f\t%.2fms\t%.2fms\t%.2fx\t%d\t%d\t%v\n",
			s.name, s.st.MixedHitRate, s.st.ReadOnlyP99Millis, s.st.MixedP99Millis,
			s.st.P99Ratio, s.st.UntouchedReopts, s.st.Retained, s.st.Identical)
	}
	w.Flush()

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(cfg.out(), "wrote %s\n", jsonPath)
	}
	return nil
}

// ingestWrite commits one write of round r: mostly the noise predicate
// untouched by every read shape, every overlapEvery-th round a fresh
// takesCourse edge (touching the "takes" shape).
func ingestWrite(ds *sparqlopt.Dataset, tag string, r, overlapEvery int) {
	if r%overlapEvery == overlapEvery-1 {
		ds.Add(fmt.Sprintf("http://bench/ingest#student-%s-%d", tag, r),
			ingestOverlapPred,
			fmt.Sprintf("http://bench/ingest#course-%s-%d", tag, r))
		return
	}
	ds.Add(fmt.Sprintf("http://bench/ingest#event-%s-%d", tag, r),
		ingestNoisePred,
		fmt.Sprintf("\"t%d\"", r))
}
