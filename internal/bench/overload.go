package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"sparqlopt"
	"sparqlopt/internal/workload/lubm"
)

// OverloadRecord is one (mode, offered-load) cell of the overload
// experiment: a closed-loop client fleet hammering one system.
type OverloadRecord struct {
	// Mode is "gated" (admission control + memory budget) or "ungated".
	Mode string `json:"mode"`
	// Multiplier is the offered load as a multiple of serving capacity.
	Multiplier int `json:"offered_load_x"`
	Clients    int `json:"clients"`
	Offered    int `json:"queries_offered"`
	Succeeded  int `json:"succeeded"`
	// Rejected counts typed admission rejections (ErrOverloaded);
	// BudgetTrips counts typed memory-budget failures. Both are 0 for
	// a healthy gated run at low load and always 0 for rejections in
	// ungated mode (there is nothing to reject with).
	Rejected    int     `json:"rejected"`
	BudgetTrips int     `json:"budget_trips"`
	Failed      int     `json:"failed"` // other errors
	WallSeconds float64 `json:"wall_seconds"`
	// Throughput counts successful queries per second of wall time.
	Throughput float64 `json:"throughput_qps"`
	// Latency percentiles are over successful queries only — the
	// queries the system chose to serve.
	MeanMillis float64 `json:"mean_ms"`
	P50Millis  float64 `json:"p50_ms"`
	P99Millis  float64 `json:"p99_ms"`
}

// overloadReport is the BENCH_overload.json payload.
type overloadReport struct {
	Meta
	Capacity int `json:"capacity"` // gated max-concurrent
	MaxQueue int `json:"max_queued"`
	// MemBudgetBytes is the gated per-query memory budget.
	MemBudgetBytes int64 `json:"mem_budget_bytes"`
	// GatedP99Held reports the experiment's acceptance criterion: the
	// gated system's p99 at the highest offered load stayed within 2x
	// of its p99 at 1x load.
	GatedP99Held bool             `json:"gated_p99_held_at_max_load"`
	Records      []OverloadRecord `json:"records"`
}

// overloadQueries are the serving mix: cheap-to-moderate LUBM shapes,
// so a single level finishes quickly and concurrency — not one huge
// query — dominates the latency tail.
var overloadQueries = []string{"L1", "L2", "L4", "L5", "L7"}

// OverloadBench drives closed-loop client fleets at 1x..8x of serving
// capacity against a gated system (admission control + per-query
// memory budget) and an ungated one, and writes throughput and latency
// percentiles per level to jsonPath (skipped when empty). The point of
// the artifact: under admission control the p99 of served queries
// stays flat as offered load grows (excess is rejected fast, with a
// typed error and a retry-after hint), while the ungated system's tail
// latency degrades with every extra concurrent query.
func OverloadBench(cfg Config, jsonPath string) error {
	ds := lubm.Generate(lubm.Config{Universities: 2, Seed: cfg.seed(), Compact: true})
	capacity := 2
	perQueryBudget := int64(1 << 28) // 256 MiB: roomy, trips only on runaways
	maxQueued := capacity

	perClient := 30
	multipliers := []int{1, 2, 4, 8}
	if cfg.Quick {
		perClient = 8
	}

	baseOpts := func() []sparqlopt.Option {
		return []sparqlopt.Option{
			sparqlopt.WithNodes(cfg.nodes()),
			sparqlopt.WithParallelism(1), // per-query parallelism off: concurrency comes from clients
			sparqlopt.WithPlanCache(64),
		}
	}
	gated, err := sparqlopt.Open(ds, append(baseOpts(),
		sparqlopt.WithAdmissionControl(capacity, maxQueued),
		sparqlopt.WithMemoryBudget(perQueryBudget, 0))...)
	if err != nil {
		return err
	}
	ungated, err := sparqlopt.Open(ds, baseOpts()...)
	if err != nil {
		return err
	}

	report := overloadReport{
		Meta:     cfg.meta(),
		Capacity: capacity, MaxQueue: maxQueued, MemBudgetBytes: perQueryBudget,
	}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Overload profile (capacity %d, %d clients/x, %d queries/client)\n", capacity, capacity, perClient)
	fmt.Fprintln(w, "Mode\tLoad\tClients\tOK\tRejected\tFailed\tQPS\tp50\tp99")
	var gatedBase, gatedMax float64
	for _, mode := range []struct {
		name string
		sys  *sparqlopt.System
	}{{"gated", gated}, {"ungated", ungated}} {
		for _, m := range multipliers {
			rec := overloadLevel(cfg, mode.sys, mode.name, m, capacity*m, perClient)
			report.Records = append(report.Records, rec)
			if mode.name == "gated" {
				if m == multipliers[0] {
					gatedBase = rec.P99Millis
				}
				if m == multipliers[len(multipliers)-1] {
					gatedMax = rec.P99Millis
				}
			}
			fmt.Fprintf(w, "%s\t%dx\t%d\t%d\t%d\t%d\t%.1f\t%.1fms\t%.1fms\n",
				mode.name, m, rec.Clients, rec.Succeeded, rec.Rejected, rec.Failed,
				rec.Throughput, rec.P50Millis, rec.P99Millis)
		}
	}
	report.GatedP99Held = gatedBase > 0 && gatedMax <= 2*gatedBase
	fmt.Fprintf(w, "gated p99 at max load %.1fms vs 1x %.1fms — held within 2x: %v\n",
		gatedMax, gatedBase, report.GatedP99Held)
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out(), "wrote %d records to %s\n", len(report.Records), jsonPath)
	return nil
}

// overloadLevel runs one closed-loop level: clients goroutines, each
// serving perClient queries back to back. Every query carries its own
// deadline, so a hung query fails itself, not the level.
func overloadLevel(cfg Config, sys *sparqlopt.System, mode string, multiplier, clients, perClient int) OverloadRecord {
	rec := OverloadRecord{Mode: mode, Multiplier: multiplier, Clients: clients, Offered: clients * perClient}
	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				src := lubm.QueryText(overloadQueries[(c+i)%len(overloadQueries)])
				qStart := time.Now()
				_, err := sys.Run(context.Background(), src, sparqlopt.WithDeadline(cfg.execTimeout()))
				d := time.Since(qStart)
				mu.Lock()
				switch {
				case err == nil:
					rec.Succeeded++
					latencies = append(latencies, d)
				case errors.Is(err, sparqlopt.ErrOverloaded):
					rec.Rejected++
				case errors.Is(err, sparqlopt.ErrBudgetExceeded):
					rec.BudgetTrips++
				default:
					rec.Failed++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	rec.WallSeconds = time.Since(start).Seconds()
	if rec.WallSeconds > 0 {
		rec.Throughput = float64(rec.Succeeded) / rec.WallSeconds
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		var sum time.Duration
		for _, d := range latencies {
			sum += d
		}
		rec.MeanMillis = sum.Seconds() * 1000 / float64(len(latencies))
		rec.P50Millis = percentileMillis(latencies, 0.50)
		rec.P99Millis = percentileMillis(latencies, 0.99)
	}
	return rec
}

// percentileMillis reads the p-th percentile (0..1) of sorted
// latencies, in milliseconds.
func percentileMillis(sorted []time.Duration, p float64) float64 {
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx].Seconds() * 1000
}
