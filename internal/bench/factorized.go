package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"sparqlopt/internal/cost"
	"sparqlopt/internal/engine"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
	"sparqlopt/internal/workload/lubm"
)

// fanoutQueryTexts are result-heavy star queries over the LUBM
// vocabulary: every pattern shares the hub variable, so the optimizer
// plans one k-way join whose flat output is the per-hub product of the
// leg multiplicities (students × publications × courses per professor,
// employees × members per department) — while the DISTINCT projection
// keeps only one or two columns of it. This is the shape factorized
// execution targets: the answer graph stores each leg once and counts
// the product instead of materializing it.
var fanoutQueryTexts = []struct{ name, text string }{
	{"F1", `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?f WHERE {
	?x ub:advisor ?f .
	?p ub:publicationAuthor ?f .
	?f ub:teacherOf ?c .
}`},
	{"F2", `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?x WHERE {
	?x ub:advisor ?f .
	?p ub:publicationAuthor ?f .
	?f ub:teacherOf ?c .
}`},
	{"F3", `
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?z WHERE {
	?x ub:worksFor ?z .
	?y ub:memberOf ?z .
	?z ub:subOrganizationOf ?w .
}`},
}

// FactorizedRecord compares one query's flat and factorized runs: the
// same plan (the annotation is cost-neutral, so join orders are
// identical), executed once per representation with a fresh memory
// gauge, reporting wall time and the gauge's peak reservation.
type FactorizedRecord struct {
	Workload string `json:"workload"`
	Query    string `json:"query"`
	Patterns int    `json:"patterns"`
	// Chosen reports that the cost model's fanout gate selected the
	// factorized path for this query's root (plan.Node.Factorize).
	Chosen bool `json:"chosen"`
	Rows   int  `json:"rows"`
	// FlatRows is the root operator's logical output size; on a
	// factorized run it is counted from the answer graph, never built.
	FlatRows int64 `json:"flat_rows"`
	// FlattenedRows is how many candidate rows the factorized run's
	// projection actually enumerated (0 when factorization was off).
	FlattenedRows   int64   `json:"flattened_rows"`
	FlatWallSeconds float64 `json:"flat_wall_seconds"`
	FactWallSeconds float64 `json:"fact_wall_seconds"`
	FlatPeakBytes   int64   `json:"flat_peak_bytes"`
	FactPeakBytes   int64   `json:"fact_peak_bytes"`
	Speedup         float64 `json:"speedup"`       // flat wall / fact wall
	MemReduction    float64 `json:"mem_reduction"` // flat peak / fact peak
	Identical       bool    `json:"identical"`     // rows bit-identical across paths
	// SamePlan reports that the two optimizations produced structurally
	// identical plans (same tree, operators, join variables and costs)
	// — always expected, since the factorization annotation is
	// cost-neutral. For an unchosen query this is the no-regression
	// proof: the same plan without the root annotation executes the
	// exact same flat code path.
	SamePlan bool   `json:"same_plan"`
	Error    string `json:"error,omitempty"`
}

// factorizedReport is the BENCH_factorized.json payload. The headline
// fields summarize the acceptance criteria: the memory reduction and
// speedup on the worst (largest flat peak) query the gate chose, and
// the worst wall-time regression across queries it did not.
type factorizedReport struct {
	Meta
	FanoutGate           float64 `json:"fanout_gate"`
	HeadlineQuery        string  `json:"headline_query"`
	HeadlineMemReduction float64 `json:"headline_mem_reduction"`
	HeadlineSpeedup      float64 `json:"headline_speedup"`
	// WorstUnchosenSlowdown is the largest fact/flat wall-time ratio
	// among unchosen queries whose flat wall is at least 2 ms.
	// Advisory only: these queries run the identical plan through the
	// identical flat path in both measurements (see UnchosenIdentical),
	// so any ratio away from 1.0 is scheduler and allocator jitter, not
	// an engine difference — at the tens-of-milliseconds scale of this
	// workload the jitter routinely exceeds a 2% bound in either
	// direction.
	WorstUnchosenSlowdown float64 `json:"worst_unchosen_slowdown"`
	// UnchosenIdentical is the noise-free form of the no-regression
	// guarantee: every query the gate left on the flat path produced a
	// structurally identical plan and reserved byte-identical peak
	// memory in both runs — an unannotated plan executes the exact same
	// code path, so there is nothing to regress.
	UnchosenIdentical bool               `json:"unchosen_identical"`
	Records           []FactorizedRecord `json:"records"`
}

// FactorizedBench measures factorized (answer-graph) execution against
// the flat path on LUBM L1–L10, the bound WatDiv templates and the F*
// result-heavy star queries: every query is optimized twice — once
// with the factorization gate disabled, once at the default gate — and
// each plan executes with its own memory gauge so peak reservations
// are attributable. Plans and join orders are identical across the two
// optimizations (the annotation never changes costs), so the
// comparison isolates the representation. Results are verified
// bit-identical. Writes BENCH_factorized.json to jsonPath (skipped
// when empty).
func FactorizedBench(cfg Config, jsonPath string) error {
	lubmDS := lubm.Generate(lubm.Config{Universities: 7, Seed: cfg.seed(), Compact: cfg.Quick})
	queries := make([]benchQuery, 0, 18)
	for _, name := range lubm.QueryNames {
		queries = append(queries, benchQuery{name, lubm.Query(name), lubmDS})
	}
	_, wq := watdivEngineQueries(cfg)
	queries = append(queries, wq...)
	for _, fq := range fanoutQueryTexts {
		queries = append(queries, benchQuery{fq.name, sparql.MustParse(fq.text), lubmDS})
	}

	engines := map[*rdf.Dataset]*engine.Engine{}
	for _, bq := range queries {
		if engines[bq.ds] != nil {
			continue
		}
		placement, err := partition.HashSO{}.Partition(bq.ds, cfg.nodes())
		if err != nil {
			return err
		}
		e := engine.New(bq.ds.Dict, placement)
		e.SetParallelism(cfg.Parallelism)
		engines[bq.ds] = e
	}

	gate := cfg.params().FactorizeFanout
	report := factorizedReport{Meta: cfg.meta(), FanoutGate: gate}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Factorized execution profile (Hash-SO, TD-Auto, fanout gate %g)\n", gate)
	fmt.Fprintln(w, "Query\tChosen\tRows\tFlatRows\tFlattened\tFlatWall\tFactWall\tSpeedup\tFlatPeak\tFactPeak\tMemRed")
	for _, bq := range queries {
		rec, err := factorizedOne(cfg, engines[bq.ds], bq, gate)
		if err != nil {
			return err
		}
		report.Records = append(report.Records, rec)
		if rec.Error != "" {
			fmt.Fprintf(w, "%s\t-\t%s\t\t\t\t\t\t\t\t\n", rec.Query, rec.Error)
			continue
		}
		fmt.Fprintf(w, "%s\t%v\t%d\t%d\t%d\t%.3fs\t%.3fs\t%.2fx\t%d\t%d\t%.1fx\n",
			rec.Query, rec.Chosen, rec.Rows, rec.FlatRows, rec.FlattenedRows,
			rec.FlatWallSeconds, rec.FactWallSeconds, rec.Speedup,
			rec.FlatPeakBytes, rec.FactPeakBytes, rec.MemReduction)
	}
	// Headline: the chosen query with the largest flat peak (the worst
	// result-heavy query); regression guard: the largest slowdown among
	// queries the gate left on the flat path.
	var worstPeak int64 = -1
	worstSlowdown := 1.0
	report.UnchosenIdentical = true
	for _, r := range report.Records {
		if r.Error != "" {
			continue
		}
		if r.Chosen && r.FlatPeakBytes > worstPeak {
			worstPeak = r.FlatPeakBytes
			report.HeadlineQuery = r.Query
			report.HeadlineMemReduction = r.MemReduction
			report.HeadlineSpeedup = r.Speedup
		}
		if !r.Chosen {
			if !r.SamePlan || r.FlatPeakBytes != r.FactPeakBytes {
				report.UnchosenIdentical = false
			}
			if r.Speedup > 0 && r.FlatWallSeconds >= 0.002 {
				if s := 1 / r.Speedup; s > worstSlowdown {
					worstSlowdown = s
				}
			}
		}
	}
	report.WorstUnchosenSlowdown = worstSlowdown
	if report.HeadlineQuery != "" {
		fmt.Fprintf(w, "headline: %s mem %.1fx wall %.2fx; unchosen identical (same plan, same peak): %v; worst unchosen wall jitter %.3fx\n",
			report.HeadlineQuery, report.HeadlineMemReduction, report.HeadlineSpeedup,
			report.UnchosenIdentical, worstSlowdown)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out(), "wrote %d records to %s\n", len(report.Records), jsonPath)
	return nil
}

// factorizedInput builds an optimizer input for q under params.
func factorizedInput(cfg Config, ds *rdf.Dataset, q *sparql.Query, params cost.Params) (*opt.Input, error) {
	views, err := querygraph.Build(q)
	if err != nil {
		return nil, err
	}
	s, err := stats.Collect(ds, q)
	if err != nil {
		return nil, err
	}
	est, err := stats.NewEstimator(q, s)
	if err != nil {
		return nil, err
	}
	return &opt.Input{Query: q, Views: views, Est: est, Params: params, Method: partition.HashSO{}, Parallelism: cfg.Parallelism}, nil
}

// factorizedOne runs one query through both representations.
func factorizedOne(cfg Config, e *engine.Engine, bq benchQuery, gate float64) (FactorizedRecord, error) {
	rec := FactorizedRecord{Workload: workloadOf(bq.name), Query: bq.name, Patterns: len(bq.q.Patterns)}

	pFlat := cfg.params()
	pFlat.FactorizeFanout = 0
	pFact := cfg.params()
	pFact.FactorizeFanout = gate

	// Min-of-k wall times: most of these queries finish in single-digit
	// milliseconds, where one scheduler preemption dwarfs a 2% bound.
	rounds := 5
	if cfg.Quick {
		rounds = 2
	}
	type side struct {
		wall time.Duration
		peak int64
		res  *engine.Result
	}
	optimize := func(params cost.Params) (*opt.Result, error) {
		in, err := factorizedInput(cfg, bq.ds, bq.q, params)
		if err != nil {
			return nil, err
		}
		o := runOne(cfg, TDAuto, in)
		return o.res, nil
	}
	oFlat, err := optimize(pFlat)
	if err != nil {
		return rec, err
	}
	oFact, err := optimize(pFact)
	if err != nil {
		return rec, err
	}
	if oFlat == nil || oFact == nil {
		rec.Error = "N/A"
		return rec, nil
	}
	rec.SamePlan = oFlat.Plan.Format() == oFact.Plan.Format()
	once := func(o *opt.Result) (side, error) {
		// 1 TiB per-query budget: never trips, only meters the peak.
		gauge := resilience.NewBudget(1<<40, 0).NewGauge()
		ctx, cancel := context.WithTimeout(context.Background(), cfg.execTimeout())
		defer cancel()
		start := time.Now()
		res, err := e.ExecuteEnv(ctx, o.Plan, bq.q, engine.ExecEnv{Gauge: gauge})
		if err != nil {
			return side{}, err
		}
		return side{wall: time.Since(start), peak: gauge.Peak(), res: res}, nil
	}
	// Rounds interleave the two plans so cache and GC drift hits both
	// sides equally (an unchosen query executes the identical code path
	// either way, and should measure that way too).
	flat := side{wall: 1<<63 - 1}
	fact := side{wall: 1<<63 - 1}
	for r := 0; r < rounds; r++ {
		s, err := once(oFlat)
		if err != nil {
			return rec, err
		}
		if s.wall < flat.wall {
			flat = s
		}
		s, err = once(oFact)
		if err != nil {
			return rec, err
		}
		if s.wall < fact.wall {
			fact = s
		}
	}

	rec.Chosen = fact.res.Factorized
	rec.Rows = len(fact.res.Rows)
	rec.FlatRows = fact.res.FlatRowCount()
	if fact.res.Trace != nil {
		rec.FlattenedRows = fact.res.Trace.FlattenedRows
	}
	rec.FlatWallSeconds = flat.wall.Seconds()
	rec.FactWallSeconds = fact.wall.Seconds()
	rec.FlatPeakBytes = flat.peak
	rec.FactPeakBytes = fact.peak
	if fact.wall > 0 {
		rec.Speedup = flat.wall.Seconds() / fact.wall.Seconds()
	}
	if fact.peak > 0 {
		rec.MemReduction = float64(flat.peak) / float64(fact.peak)
	}
	rec.Identical = equalRowSets(flat.res, fact.res)
	return rec, nil
}

// equalRowSets compares two results' rows bit for bit.
func equalRowSets(a, b *engine.Result) bool {
	if len(a.Rows) != len(b.Rows) || len(a.Vars) != len(b.Vars) {
		return false
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return false
			}
		}
	}
	return true
}
