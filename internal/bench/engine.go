package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/workload/lubm"
	"sparqlopt/internal/workload/watdiv"
)

// EngineRecord is one executed query in the engine profile: wall
// time plus the engine's own counters, at one parallelism setting.
type EngineRecord struct {
	Workload        string  `json:"workload"`
	Query           string  `json:"query"`
	Patterns        int     `json:"patterns"`
	Nodes           int     `json:"nodes"`
	Parallelism     int     `json:"parallelism"`
	WallSeconds     float64 `json:"wall_seconds"`
	Rows            int     `json:"rows"`
	ScannedTriples  int64   `json:"scanned_triples"`
	TransferredRows int64   `json:"transferred_rows"`
	JoinedRows      int64   `json:"joined_rows"`
	Error           string  `json:"error,omitempty"`
}

// engineReport is the BENCH_engine.json payload.
type engineReport struct {
	Meta
	Records []EngineRecord `json:"records"`
}

// watdivEngineQueries binds a handful of WatDiv templates against the
// generated data, skipping walks that bind no constant.
func watdivEngineQueries(cfg Config) (*rdf.Dataset, []benchQuery) {
	scale := 1500
	if cfg.Quick {
		scale = 200
	}
	ds := watdiv.GenerateData(watdiv.DataConfig{Scale: scale, Seed: cfg.seed()})
	var out []benchQuery
	for _, t := range watdiv.Templates(cfg.seed()) {
		if t.Query == nil || len(t.Query.Patterns) < 2 {
			continue
		}
		// Binding the walk's start variable to a constant can
		// disconnect the join graph; those templates are unplannable
		// without Cartesian products, so skip them.
		q := t.Bind(ds, cfg.seed())
		if jg, err := querygraph.NewJoinGraph(q); err != nil || !jg.Connected(jg.All()) {
			continue
		}
		out = append(out, benchQuery{fmt.Sprintf("W%d", t.ID), q, ds})
		if len(out) == 5 {
			break
		}
	}
	return ds, out
}

// EngineBench profiles end-to-end execution — LUBM L1–L10 plus bound
// WatDiv templates under Hash-SO/TD-Auto — at parallelism 1 and at
// all cores, printing a table and writing the records to jsonPath
// (skipped when empty). This is the engine-side analogue of Table V:
// wall times plus the Metrics counters, machine-readable so the bench
// trajectory can track the execution data plane over time.
func EngineBench(cfg Config, jsonPath string) error {
	lubmDS := lubm.Generate(lubm.Config{Universities: 7, Seed: cfg.seed(), Compact: cfg.Quick})
	queries := make([]benchQuery, 0, 15)
	for _, name := range lubm.QueryNames {
		queries = append(queries, benchQuery{name, lubm.Query(name), lubmDS})
	}
	_, wq := watdivEngineQueries(cfg)
	queries = append(queries, wq...)

	// One engine per dataset; the parallelism sweep reuses it.
	var registry *obs.Registry
	if cfg.Metrics {
		registry = obs.NewRegistry()
	}
	engines := map[*rdf.Dataset]*engine.Engine{}
	for _, bq := range queries {
		if engines[bq.ds] != nil {
			continue
		}
		placement, err := partition.HashSO{}.Partition(bq.ds, cfg.nodes())
		if err != nil {
			return err
		}
		e := engine.New(bq.ds.Dict, placement)
		e.SetInstruments(engine.NewInstruments(registry))
		engines[bq.ds] = e
	}

	report := engineReport{Meta: cfg.meta()}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Engine execution profile (Hash-SO, TD-Auto plans)")
	fmt.Fprintln(w, "Query\tP\tWall\tRows\tScanned\tTransferred\tJoined")
	sweep := []int{1, runtime.GOMAXPROCS(0)}
	if sweep[1] == 1 {
		sweep = sweep[:1] // single-core machine: P=GOMAXPROCS duplicates P=1
	}
	for _, bq := range queries {
		in, err := dataInput(cfg, bq.ds, bq.q, partition.HashSO{})
		if err != nil {
			return err
		}
		o := runOne(cfg, TDAuto, in)
		if o.res == nil {
			fmt.Fprintf(w, "%s\t-\tN/A\t\t\t\t\n", bq.name)
			continue
		}
		for _, p := range sweep {
			rec := execOne(cfg, engines[bq.ds], o, bq, p)
			report.Records = append(report.Records, rec)
			if rec.Error != "" {
				fmt.Fprintf(w, "%s\t%d\t%s\t\t\t\t\n", bq.name, p, rec.Error)
				continue
			}
			fmt.Fprintf(w, "%s\t%d\t%.3fs\t%d\t%d\t%d\t%d\n",
				bq.name, p, rec.WallSeconds, rec.Rows,
				rec.ScannedTriples, rec.TransferredRows, rec.JoinedRows)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if registry != nil {
		fmt.Fprintln(cfg.out(), "\nmetrics snapshot:")
		if err := registry.WriteMetrics(cfg.out()); err != nil {
			return err
		}
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out(), "wrote %d records to %s\n", len(report.Records), jsonPath)
	return nil
}

// execOne executes one optimized plan at parallelism p.
func execOne(cfg Config, e *engine.Engine, o outcome, bq benchQuery, p int) EngineRecord {
	rec := EngineRecord{
		Workload:    workloadOf(bq.name),
		Query:       bq.name,
		Patterns:    len(bq.q.Patterns),
		Nodes:       cfg.nodes(),
		Parallelism: p,
	}
	e.SetParallelism(p)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.execTimeout())
	defer cancel()
	start := time.Now()
	res, err := e.Execute(ctx, o.res.Plan, bq.q)
	rec.WallSeconds = time.Since(start).Seconds()
	if err != nil {
		if ctx.Err() != nil {
			rec.Error = ">cap"
		} else {
			rec.Error = err.Error()
		}
		return rec
	}
	rec.Rows = len(res.Rows)
	rec.ScannedTriples = res.Metrics.ScannedTriples
	rec.TransferredRows = res.Metrics.TransferredRows
	rec.JoinedRows = res.Metrics.JoinedRows
	return rec
}

func workloadOf(name string) string {
	switch name[0] {
	case 'L':
		return "LUBM"
	case 'W':
		return "WatDiv"
	default:
		return "UniProt"
	}
}
