package bench

import (
	"context"
	"fmt"
	"text/tabwriter"
	"time"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/rdf"
)

// CostModelCheck reproduces the paper's §V-C validity argument: "most
// of the plans with the minimal estimated cost also have the lowest
// query processing time". For every benchmark query it optimizes with
// TD-Auto, MSC and DP-Bushy, executes all three plans, and reports
// whether the cheapest-by-estimate plan is also (near-)fastest. The
// summary line gives the agreement rate over all comparable pairs.
func CostModelCheck(cfg Config) error {
	lubmDS, uniDS := cfg.datasets()
	queries := benchQueries(lubmDS, uniDS)
	algos := []Optimizer{TDAuto, MSC, DPBushy}
	method := partition.HashSO{}

	engines := map[*rdf.Dataset]*engine.Engine{}
	for _, ds := range []*rdf.Dataset{lubmDS, uniDS} {
		placement, err := method.Partition(ds, cfg.nodes())
		if err != nil {
			return err
		}
		engines[ds] = engine.New(ds.Dict, placement)
	}

	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Cost-model validation (§V-C): estimated cost vs measured processing time")
	fmt.Fprintln(w, "Query\tAlgorithm\tEst. cost\tExec time\tCheapest=fastest?")
	agree, pairs := 0, 0
	for _, bq := range queries {
		type row struct {
			name string
			cost float64
			dur  time.Duration
			ok   bool
		}
		var rows []row
		for _, algo := range algos {
			in, err := dataInput(cfg, bq.ds, bq.q, method)
			if err != nil {
				return err
			}
			o := runOne(cfg, algo, in)
			if o.res == nil {
				rows = append(rows, row{name: algo.Name})
				continue
			}
			// Best of three runs, to damp sub-millisecond noise.
			var dur time.Duration
			ok := true
			for rep := 0; rep < 3; rep++ {
				ctx, cancel := context.WithTimeout(context.Background(), cfg.execTimeout())
				start := time.Now()
				_, err = engines[bq.ds].Execute(ctx, o.res.Plan, bq.q)
				d := time.Since(start)
				cancel()
				if err != nil {
					ok = false
					break
				}
				if rep == 0 || d < dur {
					dur = d
				}
			}
			rows = append(rows, row{name: algo.Name, cost: o.res.Plan.Cost, dur: dur, ok: ok})
		}
		// Find the minimal estimated cost and the fastest execution
		// among completed plans.
		best, fastest := -1, -1
		for i, r := range rows {
			if !r.ok {
				continue
			}
			if best < 0 || r.cost < rows[best].cost {
				best = i
			}
			if fastest < 0 || r.dur < rows[fastest].dur {
				fastest = i
			}
		}
		verdict := "N/A"
		if best >= 0 && fastest >= 0 {
			pairs++
			// Plans within 1% of the minimum estimate are co-minimal
			// (different optimizers often find the same-cost plan);
			// agreement means some co-minimal plan runs within 25% of
			// the overall fastest.
			bestDur := time.Duration(-1)
			for _, r := range rows {
				if r.ok && r.cost <= rows[best].cost*1.01 && (bestDur < 0 || r.dur < bestDur) {
					bestDur = r.dur
				}
			}
			if bestDur <= rows[fastest].dur+rows[fastest].dur/4 {
				agree++
				verdict = "yes"
			} else {
				verdict = "no"
			}
		}
		for i, r := range rows {
			mark := ""
			if i == len(rows)-1 {
				mark = verdict
			}
			if !r.ok {
				fmt.Fprintf(w, "%s\t%s\tN/A\tN/A\t%s\n", bq.name, r.name, mark)
				continue
			}
			fmt.Fprintf(w, "%s\t%s\t%.3E\t%.3fs\t%s\n", bq.name, r.name, r.cost, r.dur.Seconds(), mark)
		}
	}
	fmt.Fprintf(w, "agreement: %d/%d queries — the minimal-estimated-cost plan was (near-)fastest\n", agree, pairs)
	return w.Flush()
}
