package bench

import (
	"fmt"
	"sort"
	"text/tabwriter"
	"time"

	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/workload/randquery"
	"sparqlopt/internal/workload/watdiv"
)

// ratioThresholds are the x-axis points of the cumulative frequency
// plots (Figs. 6b and 8).
var ratioThresholds = []float64{1.0, 1.5, 2, 4, 8}

// Fig6 reproduces the WatDiv stress test: per-template mean
// optimization time (Fig. 6a) and the cumulative frequency
// distribution of plan-cost ratios against TD-CMD (Fig. 6b).
func Fig6(cfg Config) error {
	instances := watdiv.QueriesPerTemplate
	if cfg.Quick {
		instances = 5
	}
	templates := watdiv.Templates(cfg.seed())
	algos := []Optimizer{TDCMD, TDCMDP, HGR, MSC, DPBushy, TDAuto}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Figure 6a: WatDiv optimization time per template (mean over %d instances, seconds)\n", instances)
	header := "Template\t#TP"
	for _, a := range algos {
		header += "\t" + a.Name
	}
	fmt.Fprintln(w, header)

	ratios := map[string][]float64{}
	for _, tpl := range templates {
		sums := make([]time.Duration, len(algos))
		counts := make([]int, len(algos))
		for inst := 0; inst < instances; inst++ {
			q, s := tpl.Instantiate(cfg.seed()*100000 + int64(tpl.ID*1000+inst))
			var base outcome
			for ai, algo := range algos {
				in, err := makeInput(cfg, q, s, partition.HashSO{})
				if err != nil {
					return err
				}
				o := runOne(cfg, algo, in)
				if o.res != nil {
					sums[ai] += o.dur
					counts[ai]++
				}
				if algo.Name == "TD-CMD" {
					base = o
				} else if base.res != nil && o.res != nil {
					ratios[algo.Name] = append(ratios[algo.Name], o.res.Plan.Cost/base.res.Plan.Cost)
				}
			}
		}
		row := fmt.Sprintf("T%03d\t%d", tpl.ID, len(tpl.Query.Patterns))
		for ai := range algos {
			if counts[ai] == 0 {
				row += "\tN/A"
			} else {
				row += fmt.Sprintf("\t%.4f", (sums[ai] / time.Duration(counts[ai])).Seconds())
			}
		}
		fmt.Fprintln(w, row)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if err := writeRatioCSV(cfg, "fig6b.csv", ratios); err != nil {
		return err
	}
	return printCumulative(cfg, "Figure 6b: cumulative frequency of plan-cost ratio to TD-CMD (WatDiv)", ratios)
}

// randGrid holds the shared measurements behind Figs. 7 and 8.
type randGrid struct {
	classes   []querygraph.Class
	sizes     []int
	instances int
	algos     []Optimizer
	// times[class][size][algo] = mean seconds over completed runs (-1 when none).
	times map[querygraph.Class]map[int][]float64
	// ratios[class][algo.Name] = cost ratios vs TD-CMD.
	ratios map[querygraph.Class]map[string][]float64
}

// collectRandGrid runs the random-query study once for both figures.
func collectRandGrid(cfg Config) (*randGrid, error) {
	g := &randGrid{
		classes:   []querygraph.Class{querygraph.Chain, querygraph.Cycle, querygraph.Tree, querygraph.Dense},
		instances: 3,
		algos:     []Optimizer{TDCMD, TDCMDP, HGR, MSC, DPBushy, TDAuto},
		times:     map[querygraph.Class]map[int][]float64{},
		ratios:    map[querygraph.Class]map[string][]float64{},
	}
	maxSize := 30
	if cfg.Quick {
		maxSize = 12
	}
	for n := 2; n <= maxSize; n += 2 {
		g.sizes = append(g.sizes, n)
	}
	for _, cl := range g.classes {
		g.times[cl] = map[int][]float64{}
		g.ratios[cl] = map[string][]float64{}
		for _, n := range g.sizes {
			if cl == querygraph.Cycle && n < 3 {
				continue
			}
			sums := make([]float64, len(g.algos))
			counts := make([]int, len(g.algos))
			for inst := 0; inst < g.instances; inst++ {
				q, s := randquery.Generate(cl, n, cfg.seed()+int64(inst*7919))
				var base outcome
				for ai, algo := range g.algos {
					in, err := makeInput(cfg, q, s, partition.HashSO{})
					if err != nil {
						return nil, err
					}
					o := runOne(cfg, algo, in)
					if o.res != nil {
						sums[ai] += o.dur.Seconds()
						counts[ai]++
					}
					if algo.Name == "TD-CMD" {
						base = o
					} else if base.res != nil && o.res != nil {
						g.ratios[cl][algo.Name] = append(g.ratios[cl][algo.Name], o.res.Plan.Cost/base.res.Plan.Cost)
					}
				}
			}
			means := make([]float64, len(g.algos))
			for ai := range g.algos {
				if counts[ai] == 0 {
					means[ai] = -1
				} else {
					means[ai] = sums[ai] / float64(counts[ai])
				}
			}
			g.times[cl][n] = means
		}
	}
	return g, nil
}

// Fig7 prints optimization time versus query size for each class
// (paper Fig. 7a–d).
func Fig7(cfg Config) error {
	g, err := collectRandGrid(cfg)
	if err != nil {
		return err
	}
	return g.printTimes(cfg)
}

// Fig8 prints the cumulative cost-ratio distributions per class
// (paper Fig. 8a–d).
func Fig8(cfg Config) error {
	g, err := collectRandGrid(cfg)
	if err != nil {
		return err
	}
	return g.printRatios(cfg)
}

// Fig7And8 shares one measurement pass across both figures.
func Fig7And8(cfg Config) error {
	g, err := collectRandGrid(cfg)
	if err != nil {
		return err
	}
	if err := g.printTimes(cfg); err != nil {
		return err
	}
	return g.printRatios(cfg)
}

func (g *randGrid) printTimes(cfg Config) error {
	for _, cl := range g.classes {
		csv, err := cfg.csvFile(fmt.Sprintf("fig7_%s.csv", cl))
		if err != nil {
			return err
		}
		if csv != nil {
			fmt.Fprint(csv, "tp")
			for _, a := range g.algos {
				fmt.Fprintf(csv, ",%s", a.Name)
			}
			fmt.Fprintln(csv)
			for _, n := range g.sizes {
				means, ok := g.times[cl][n]
				if !ok {
					continue
				}
				fmt.Fprintf(csv, "%d", n)
				for _, m := range means {
					if m < 0 {
						fmt.Fprint(csv, ",")
					} else {
						fmt.Fprintf(csv, ",%g", m)
					}
				}
				fmt.Fprintln(csv)
			}
			if err := csv.Close(); err != nil {
				return err
			}
		}
		w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
		fmt.Fprintf(w, "Figure 7 (%s): optimization time in seconds (mean of %d instances)\n", cl, g.instances)
		header := "#TP"
		for _, a := range g.algos {
			header += "\t" + a.Name
		}
		fmt.Fprintln(w, header)
		for _, n := range g.sizes {
			means, ok := g.times[cl][n]
			if !ok {
				continue
			}
			row := fmt.Sprintf("%d", n)
			for _, m := range means {
				if m < 0 {
					row += "\tN/A"
				} else {
					row += fmt.Sprintf("\t%.4f", m)
				}
			}
			fmt.Fprintln(w, row)
		}
		if err := w.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func (g *randGrid) printRatios(cfg Config) error {
	for _, cl := range g.classes {
		if err := printCumulative(cfg,
			fmt.Sprintf("Figure 8 (%s): cumulative frequency of plan-cost ratio to TD-CMD", cl),
			g.ratios[cl]); err != nil {
			return err
		}
		if err := writeRatioCSV(cfg, fmt.Sprintf("fig8_%s.csv", cl), g.ratios[cl]); err != nil {
			return err
		}
	}
	return nil
}

// writeRatioCSV dumps the raw cost ratios (one row per plan) for
// external plotting of the cumulative distributions.
func writeRatioCSV(cfg Config, name string, ratios map[string][]float64) error {
	csv, err := cfg.csvFile(name)
	if err != nil || csv == nil {
		return err
	}
	defer csv.Close()
	fmt.Fprintln(csv, "algorithm,ratio")
	var names []string
	for n := range ratios {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, r := range ratios[n] {
			fmt.Fprintf(csv, "%s,%g\n", n, r)
		}
	}
	return nil
}

// printCumulative renders a cumulative-frequency table: for each
// algorithm, the fraction of plans whose cost is within the threshold
// times TD-CMD's optimum.
func printCumulative(cfg Config, title string, ratios map[string][]float64) error {
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, title)
	header := "Algorithm\t#Plans"
	for _, x := range ratioThresholds {
		header += fmt.Sprintf("\t≤%gx", x)
	}
	fmt.Fprintln(w, header)
	var names []string
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rs := ratios[name]
		sort.Float64s(rs)
		row := fmt.Sprintf("%s\t%d", name, len(rs))
		for _, x := range ratioThresholds {
			count := sort.SearchFloat64s(rs, x+1e-9)
			frac := 0.0
			if len(rs) > 0 {
				frac = float64(count) / float64(len(rs))
			}
			row += fmt.Sprintf("\t%.0f%%", frac*100)
		}
		fmt.Fprintln(w, row)
	}
	return w.Flush()
}
