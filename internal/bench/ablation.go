package bench

import (
	"context"
	"fmt"
	"text/tabwriter"

	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/workload/randquery"
)

// Ablation quantifies each TD-CMDP pruning rule in isolation
// (DESIGN.md §6): for star, tree and dense queries it reports the
// search-space size and the plan-cost penalty (relative to the TD-CMD
// optimum) of every rule combination. Rule 1 restricts k>2 divisions
// to ccmds, Rule 2 drops k>2 broadcast joins, Rule 3 short-circuits
// local subqueries.
func Ablation(cfg Config) error {
	combos := []struct {
		name string
		o    opt.Options
	}{
		{"none (TD-CMD)", opt.Options{}},
		{"rule1", opt.Options{PruneCCMD: true}},
		{"rule2", opt.Options{BinaryBroadcastOnly: true}},
		{"rule3", opt.Options{LocalShortcut: true}},
		{"rule1+2", opt.Options{PruneCCMD: true, BinaryBroadcastOnly: true}},
		{"all (TD-CMDP)", opt.CMDPOptions()},
	}
	cases := []struct {
		class querygraph.Class
		n     int
	}{
		{querygraph.Star, 10},
		{querygraph.Tree, 12},
		{querygraph.Dense, 10},
	}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Ablation: TD-CMDP pruning rules (search space and cost penalty vs TD-CMD)")
	fmt.Fprintln(w, "Rules\tQuery\tCMDs\tPlans\tCost ratio")
	for _, c := range cases {
		q, s := randquery.Generate(c.class, c.n, cfg.seed())
		var optimum float64
		for _, combo := range combos {
			in, err := makeInput(cfg, q, s, partition.HashSO{})
			if err != nil {
				return err
			}
			ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout())
			res, err := opt.OptimizeWithOptions(ctx, in, combo.o)
			cancel()
			if err != nil {
				fmt.Fprintf(w, "%s\t%s-%d\tN/A\tN/A\tN/A\n", combo.name, c.class, c.n)
				continue
			}
			if combo.name == "none (TD-CMD)" {
				optimum = res.Plan.Cost
			}
			ratio := res.Plan.Cost / optimum
			fmt.Fprintf(w, "%s\t%s-%d\t%d\t%d\t%.3f\n",
				combo.name, c.class, c.n, res.Counter.CMDs, res.Counter.Plans, ratio)
		}
	}
	return w.Flush()
}
