package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

func atoi(t *testing.T, s string) int {
	t.Helper()
	n, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("expected number, got %q", s)
	}
	return n
}

// quickCfg is a fast configuration for test runs.
func quickCfg(buf *bytes.Buffer) Config {
	return Config{Out: buf, Quick: true, Timeout: 2 * time.Second, Nodes: 4, Seed: 1}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"L1", "L10", "U5", "star", "chain", "dense"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "\n"); n < 16 {
		t.Errorf("Table3 has %d lines, want ≥16", n)
	}
}

func TestTable4(t *testing.T) {
	var buf bytes.Buffer
	if err := Table4(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TD-Auto", "MSC", "DP-Bushy", "L9", "U3"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
	// TD-Auto must complete on every query: its row may not say N/A.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "TD-Auto") && strings.Contains(line, "N/A") {
			t.Errorf("TD-Auto timed out: %s", line)
		}
	}
}

func TestTable6(t *testing.T) {
	var buf bytes.Buffer
	if err := Table6(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !regexp.MustCompile(`\d\.\d{2}E[+-]\d{2}`).MatchString(out) {
		t.Errorf("Table6 has no scientific-notation costs:\n%s", out)
	}
}

func TestTable7ShapesMatchPaper(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	if err := Table7(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(out, "\n")
	row := func(name string) []string {
		for _, l := range lines {
			if strings.HasPrefix(l, name+" ") || strings.HasPrefix(l, name+"\t") {
				return regexp.MustCompile(`\s+`).Split(strings.TrimSpace(l), -1)
			}
		}
		t.Fatalf("row %s missing:\n%s", name, out)
		return nil
	}
	// Columns: name, chain-8, chain-16, chain-30, cycle-8 ...
	tdcmd := row("TD-CMD")
	if tdcmd[1] != "84" {
		t.Errorf("TD-CMD chain-8 = %s, want 84 (= (8³−8)/6, Eq. 8)", tdcmd[1])
	}
	if tdcmd[2] != "680" {
		t.Errorf("TD-CMD chain-16 = %s, want 680", tdcmd[2])
	}
	if tdcmd[3] != "4495" {
		t.Errorf("TD-CMD chain-30 = %s, want 4495", tdcmd[3])
	}
	if tdcmd[4] != "224" {
		t.Errorf("TD-CMD cycle-8 = %s, want 224 (= (8³−8²)/2, Eq. 9)", tdcmd[4])
	}
	if tdcmd[5] != "1920" {
		t.Errorf("TD-CMD cycle-16 = %s, want 1920", tdcmd[5])
	}
	if tdcmd[6] != "13050" {
		t.Errorf("TD-CMD cycle-30 = %s, want 13050", tdcmd[6])
	}
	// MSC explores exactly one flat plan on chains (unique minimum
	// cover per level) — Table VII's chain-8 entry.
	msc := row("MSC")
	if msc[1] != "1" {
		t.Errorf("MSC chain-8 = %s, want 1", msc[1])
	}
	if msc[4] != "4" {
		t.Errorf("MSC cycle-8 = %s, want 4", msc[4])
	}
	// TD-CMDP is essentially TD-CMD on chains and cycles: every
	// division is binary, so Rule 1 prunes nothing (paper Table VII
	// shows identical counts). Our counter additionally omits the few
	// subqueries Rule 3's local shortcut skips (the n−1 local pairs
	// under hash partitioning), so allow that small delta.
	tdcmdp := row("TD-CMDP")
	for i := 1; i <= 6; i++ {
		a, b := atoi(t, tdcmdp[i]), atoi(t, tdcmd[i])
		if a > b || float64(a) < 0.9*float64(b) {
			t.Errorf("TD-CMDP col %d = %d, want ≈ TD-CMD's %d", i, a, b)
		}
	}
	// HGR reduces the space everywhere it applies.
	hgr := row("HGR-TD-CMD")
	if hgr[1] == tdcmd[1] {
		t.Errorf("HGR chain-8 = %s did not shrink vs TD-CMD", hgr[1])
	}
}

func TestFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("WatDiv sweep")
	}
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	cfg.Timeout = 1 * time.Second
	if err := Fig6(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "T0") < 10 {
		t.Errorf("Fig6 template rows missing:\n%.2000s", out)
	}
	if !strings.Contains(out, "Figure 6b") {
		t.Error("Fig6 cumulative section missing")
	}
	// TD-CMDP should be within 2x of optimal on ≥80% of WatDiv plans
	// (paper: its costs are "very close" to TD-CMD's).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "TD-CMDP") && strings.Contains(out, "Figure 6b") {
			fields := regexp.MustCompile(`\s+`).Split(strings.TrimSpace(line), -1)
			if len(fields) >= 5 {
				pct := strings.TrimSuffix(fields[4], "%") // ≤2x column
				if pct < "80" && len(pct) == 2 {
					t.Errorf("TD-CMDP within-2x fraction only %s%%", pct)
				}
			}
		}
	}
}

func TestFig7And8Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("random-query sweep")
	}
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	cfg.Timeout = 1 * time.Second
	if err := Fig7And8(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 7 (chain)", "Figure 7 (cycle)", "Figure 7 (tree)", "Figure 7 (dense)",
		"Figure 8 (chain)", "Figure 8 (dense)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing section %q", want)
		}
	}
}

func TestTable5Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("execution sweep")
	}
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	if err := Table5(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Hash-SO", "2f", "Path-BMC", "TD-Auto"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table5 missing %q:\n%s", want, out)
		}
	}
}

func TestAblation(t *testing.T) {
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	if err := Ablation(cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rule1", "rule2", "rule3", "all (TD-CMDP)", "star-10", "dense-10"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation missing %q:\n%s", want, out)
		}
	}
	// The full TD-CMD row always has ratio 1.000.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "none (TD-CMD)") && !strings.Contains(line, "1.000") {
			t.Errorf("TD-CMD row not at ratio 1.000: %s", line)
		}
	}
}

func TestCostModelCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("execution sweep")
	}
	var buf bytes.Buffer
	if err := CostModelCheck(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "agreement:") {
		t.Errorf("missing summary:\n%s", out)
	}
	// The paper's claim: agreement on most queries. Require > half.
	m := regexp.MustCompile(`agreement: (\d+)/(\d+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no agreement line:\n%s", out)
	}
	if atoi(t, m[1])*2 < atoi(t, m[2]) {
		t.Errorf("cost model agreed on only %s/%s queries", m[1], m[2])
	}
}

func TestQError(t *testing.T) {
	if testing.Short() {
		t.Skip("execution sweep")
	}
	var buf bytes.Buffer
	if err := QError(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "overall") {
		t.Errorf("missing overall q-error line:\n%s", out)
	}
	m := regexp.MustCompile(`overall\s+\d+\s+([\d.]+)`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no overall line:\n%s", out)
	}
	// Median q-error should be modest (the estimator is usable).
	if m[1] > "99" {
		t.Errorf("median q-error %s suspiciously high", m[1])
	}
}

func TestFigCSVOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("random-query sweep")
	}
	var buf bytes.Buffer
	cfg := quickCfg(&buf)
	cfg.Timeout = 500 * time.Millisecond
	cfg.CSVDir = t.TempDir()
	if err := Fig7And8(cfg); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig7_chain.csv", "fig7_dense.csv", "fig8_chain.csv"} {
		data, err := os.ReadFile(filepath.Join(cfg.CSVDir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(string(data), "TD-CMD") && !strings.Contains(string(data), "ratio") {
			t.Errorf("%s has no header:\n%s", name, data)
		}
	}
}

func TestPlanCacheBenchQuick(t *testing.T) {
	var buf bytes.Buffer
	jsonPath := filepath.Join(t.TempDir(), "BENCH_plancache.json")
	if err := PlanCacheBench(quickCfg(&buf), jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		HitRatio        float64 `json:"hit_ratio"`
		Misses          int64   `json:"misses"`
		MeanPlanSpeedup float64 `json:"mean_plan_speedup"`
		Records         []struct {
			Query          string `json:"query"`
			IdenticalRows  bool   `json:"identical_rows"`
			WarmEnumerated int64  `json:"warm_enumerated_joins"`
			Error          string `json:"error"`
		} `json:"records"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Records) != 10 {
		t.Fatalf("%d records, want the 10 LUBM queries", len(report.Records))
	}
	for _, r := range report.Records {
		if r.Error != "" {
			t.Fatalf("%s errored: %s", r.Query, r.Error)
		}
		if !r.IdenticalRows {
			t.Errorf("%s: warm rows differ from the uncached run", r.Query)
		}
		if r.WarmEnumerated != 0 {
			t.Errorf("%s: warm runs enumerated %d joins, want 0", r.Query, r.WarmEnumerated)
		}
	}
	if report.Misses != 10 {
		t.Errorf("%d misses, want one per query", report.Misses)
	}
	if report.HitRatio < 0.9 {
		t.Errorf("hit ratio %.3f, want >= 0.9", report.HitRatio)
	}
	// The acceptance bar: serving a repeated shape from the cache must
	// beat re-optimizing it by at least 5x even at quick scale. The
	// quick margin is typically two orders of magnitude, so this
	// threshold has plenty of headroom against noisy machines.
	if report.MeanPlanSpeedup < 5 {
		t.Errorf("mean plan speedup %.1fx, want >= 5x", report.MeanPlanSpeedup)
	}
}
