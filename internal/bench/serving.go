package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"sparqlopt"
	"sparqlopt/internal/httpd"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/workload/lubm"
)

// ServingRecord is one (mode, workload) cell of the HTTP serving
// experiment: a closed-loop client fleet over real sockets.
type ServingRecord struct {
	// Mode is "streaming" (RunStream row iterator behind the encoder)
	// or "materializing" (Run collects the result before encoding).
	Mode     string `json:"mode"`
	Workload string `json:"workload"` // "mix" or "heavy"
	Clients  int    `json:"clients"`
	Offered  int    `json:"requests_offered"`
	OK       int    `json:"succeeded"`
	Failed   int    `json:"failed"`
	// BodyBytes is the total response-body volume drained, a sanity
	// check that both modes served the same results.
	BodyBytes   int64   `json:"body_bytes"`
	WallSeconds float64 `json:"wall_seconds"`
	Throughput  float64 `json:"throughput_rps"`
	P50Millis   float64 `json:"p50_ms"`
	P99Millis   float64 `json:"p99_ms"`
	// PeakHeapBytes is the process's peak HeapInuse sampled while this
	// cell ran (after a pre-cell GC) — the serving-side memory cost of
	// the mode, dominated on "heavy" by whether results materialize.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
}

// ShareRecord reports the duplicate-query coalescing phase: N
// identical in-flight requests against a sharing-enabled server.
type ShareRecord struct {
	ConcurrentRequests int   `json:"concurrent_requests"`
	Rounds             int   `json:"rounds"`
	OK                 int   `json:"succeeded"`
	Leads              int64 `json:"executions_led"`
	Follows            int64 `json:"broadcast_follows"`
	Fallbacks          int64 `json:"follower_fallbacks"`
	Aborted            int64 `json:"broadcasts_aborted"`
}

// servingReport is the BENCH_serving.json payload.
type servingReport struct {
	Meta
	// StreamingHeld is the experiment's acceptance criterion: on the
	// heavy workload, streaming p99 stayed within 1.25x of
	// materializing and peak heap within 1.10x (allowing sampler
	// noise); streaming should in fact win on memory outright.
	StreamingHeld bool            `json:"streaming_no_worse"`
	Records       []ServingRecord `json:"records"`
	Share         ShareRecord     `json:"share"`
}

// servingMix is the latency workload: the overload experiment's
// cheap-to-moderate LUBM shapes, served over HTTP.
var servingMix = []string{"L1", "L2", "L4", "L5", "L7"}

// shareQuery is the duplicate-request workload: a two-pattern join
// slow enough for identical requests to overlap in flight.
const shareQuery = `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?x ?y ?c WHERE { ?x ub:advisor ?y . ?x ub:takesCourse ?c . }`

// heavyQuery scans the grid dataset below: side^2 rows, far more than
// LUBM's shapes return, so the modes separate — materializing holds
// the whole result while streaming holds one chunk.
const heavyQuery = `SELECT * WHERE { ?a <n> ?b . }`

// gridDataset builds a side x side complete bipartite edge set.
func gridDataset(side int) *rdf.Dataset {
	ds := rdf.NewDataset()
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			ds.Add(fmt.Sprintf("http://ex/a%d", i), "n", fmt.Sprintf("http://ex/b%d", j))
		}
	}
	return ds
}

// ServingBench profiles the HTTP endpoint over real sockets: a latency
// mix and a result-heavy scan, each served by two servers over the
// same System — one streaming (the default), one materializing (the
// pre-redesign behavior) — reporting p50/p99 and peak heap per mode,
// then a duplicate-query phase against a sharing-enabled server
// reporting how many identical in-flight requests coalesced onto one
// execution. Results go to jsonPath (skipped when empty).
func ServingBench(cfg Config, jsonPath string) error {
	unis := 3
	perClient, clients := 40, 8
	gridSide, heavyRuns := 400, 16
	shareRounds, shareWidth := 5, 8
	if cfg.Quick {
		unis, perClient, clients, shareRounds = 2, 8, 4, 2
		gridSide, heavyRuns = 200, 6
	}
	ds := lubm.Generate(lubm.Config{Universities: unis, Seed: cfg.seed(), Compact: true})

	sys, err := sparqlopt.Open(ds,
		sparqlopt.WithNodes(cfg.nodes()),
		sparqlopt.WithParallelism(cfg.Parallelism),
		sparqlopt.WithPlanCache(64))
	if err != nil {
		return err
	}
	defer sys.Close()

	// One node keeps the heavy scan dedup-free, so the streamed path's
	// resident state really is one chunk — the shape the redesign's
	// bounded-memory guarantee covers.
	heavySys, err := sparqlopt.Open(gridDataset(gridSide),
		sparqlopt.WithNodes(1),
		sparqlopt.WithParallelism(cfg.Parallelism),
		sparqlopt.WithPlanCache(64))
	if err != nil {
		return err
	}
	defer heavySys.Close()

	stream := httptest.NewServer(httpd.New(sys, httpd.Config{}))
	defer stream.Close()
	mat := httptest.NewServer(httpd.New(sys, httpd.Config{Materialize: true}))
	defer mat.Close()
	heavyStreamSrv := httptest.NewServer(httpd.New(heavySys, httpd.Config{}))
	defer heavyStreamSrv.Close()
	heavyMatSrv := httptest.NewServer(httpd.New(heavySys, httpd.Config{Materialize: true}))
	defer heavyMatSrv.Close()

	report := servingReport{Meta: cfg.meta()}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "HTTP serving profile (%d universities, %d clients x %d requests)\n", unis, clients, perClient)
	fmt.Fprintln(w, "Mode\tWorkload\tOK\tFailed\tRPS\tp50\tp99\tpeak heap")

	modes := []struct {
		name     string
		mixURL   string
		heavyURL string
	}{{"streaming", stream.URL, heavyStreamSrv.URL}, {"materializing", mat.URL, heavyMatSrv.URL}}

	var mixQueries []string
	for _, name := range servingMix {
		mixQueries = append(mixQueries, lubm.QueryText(name))
	}
	var heavyStream, heavyMat ServingRecord
	for _, mode := range modes {
		rec := servingLevel(mode.name, "mix", mode.mixURL, mixQueries, clients, perClient)
		report.Records = append(report.Records, rec)
		printServing(w, rec)

		rec = servingLevel(mode.name, "heavy", mode.heavyURL, []string{heavyQuery}, 2, heavyRuns)
		report.Records = append(report.Records, rec)
		printServing(w, rec)
		if mode.name == "streaming" {
			heavyStream = rec
		} else {
			heavyMat = rec
		}
	}
	report.StreamingHeld = heavyStream.P99Millis <= 1.25*heavyMat.P99Millis &&
		float64(heavyStream.PeakHeapBytes) <= 1.10*float64(heavyMat.PeakHeapBytes)
	fmt.Fprintf(w, "heavy: streaming p99 %.1fms vs materializing %.1fms, peak heap %.1f MiB vs %.1f MiB — no worse: %v\n",
		heavyStream.P99Millis, heavyMat.P99Millis,
		float64(heavyStream.PeakHeapBytes)/(1<<20), float64(heavyMat.PeakHeapBytes)/(1<<20),
		report.StreamingHeld)

	share, err := servingShare(cfg, ds, shareRounds, shareWidth)
	if err != nil {
		return err
	}
	report.Share = share
	fmt.Fprintf(w, "sharing: %d identical in-flight requests x %d rounds -> %d executions led, %d broadcast follows, %d fallbacks\n",
		share.ConcurrentRequests, share.Rounds, share.Leads, share.Follows, share.Fallbacks)
	if err := w.Flush(); err != nil {
		return err
	}

	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out(), "wrote %d records to %s\n", len(report.Records), jsonPath)
	return nil
}

func printServing(w io.Writer, rec ServingRecord) {
	fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.1f\t%.1fms\t%.1fms\t%.1f MiB\n",
		rec.Mode, rec.Workload, rec.OK, rec.Failed, rec.Throughput,
		rec.P50Millis, rec.P99Millis, float64(rec.PeakHeapBytes)/(1<<20))
}

// servingLevel drives one closed-loop cell: clients goroutines each
// issuing perClient GETs round-robin over queries, draining every
// response body, while a sampler tracks peak heap.
func servingLevel(mode, workload, baseURL string, queries []string, clients, perClient int) ServingRecord {
	rec := ServingRecord{Mode: mode, Workload: workload, Clients: clients, Offered: clients * perClient}
	stopSampler := make(chan struct{})
	peakc := make(chan uint64, 1)
	runtime.GC()
	go func() {
		var peak uint64
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				peakc <- peak
				return
			case <-tick.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if ms.HeapInuse > peak {
					peak = ms.HeapInuse
				}
			}
		}
	}()

	var (
		mu        sync.Mutex
		latencies []time.Duration
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := queries[(c+i)%len(queries)]
				qStart := time.Now()
				n, err := drainGet(baseURL + "/sparql?query=" + url.QueryEscape(q))
				d := time.Since(qStart)
				mu.Lock()
				if err != nil {
					rec.Failed++
				} else {
					rec.OK++
					rec.BodyBytes += n
					latencies = append(latencies, d)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	rec.WallSeconds = time.Since(start).Seconds()
	close(stopSampler)
	rec.PeakHeapBytes = <-peakc
	if rec.WallSeconds > 0 {
		rec.Throughput = float64(rec.OK) / rec.WallSeconds
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rec.P50Millis = percentileMillis(latencies, 0.50)
		rec.P99Millis = percentileMillis(latencies, 0.99)
	}
	return rec
}

// drainGet fetches one URL and drains the body, returning its size. A
// non-200 status or a mid-body transport error counts as a failure.
func drainGet(u string) (int64, error) {
	resp, err := http.Get(u)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		return n, err
	}
	if resp.StatusCode != http.StatusOK {
		return n, fmt.Errorf("status %d", resp.StatusCode)
	}
	return n, nil
}

// servingShare fires width identical requests at a sharing-enabled
// server per round and reads the coalescing counters: all but the
// leaders should have replayed a broadcast instead of executing.
func servingShare(cfg Config, ds *rdf.Dataset, rounds, width int) (ShareRecord, error) {
	sys, err := sparqlopt.Open(ds,
		sparqlopt.WithNodes(cfg.nodes()),
		sparqlopt.WithParallelism(cfg.Parallelism),
		sparqlopt.WithExecutionSharing())
	if err != nil {
		return ShareRecord{}, err
	}
	defer sys.Close()
	srv := httptest.NewServer(httpd.New(sys, httpd.Config{}))
	defer srv.Close()

	rec := ShareRecord{ConcurrentRequests: width, Rounds: rounds}
	target := srv.URL + "/sparql?query=" + url.QueryEscape(shareQuery)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for i := 0; i < width; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := drainGet(target); err == nil {
					mu.Lock()
					rec.OK++
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}
	st := sys.ShareStats()
	rec.Leads, rec.Follows, rec.Fallbacks, rec.Aborted = st.Leads, st.Follows, st.Fallbacks, st.Aborted
	return rec, nil
}
