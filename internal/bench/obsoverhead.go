package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"sparqlopt"
	"sparqlopt/internal/workload/lubm"
)

// ObsOverheadRecord compares one LUBM query served with observability
// disabled (the default nil-check-only path) against the same query
// with the full metrics + slow-query-log layer enabled. Times are the
// minimum over the measurement rounds — the standard way to strip
// scheduler noise from a microbenchmark.
type ObsOverheadRecord struct {
	Query           string  `json:"query"`
	Patterns        int     `json:"patterns"`
	DisabledSeconds float64 `json:"disabled_seconds"`
	EnabledSeconds  float64 `json:"enabled_seconds"`
	// Overhead is enabled/disabled − 1: what turning observability on
	// costs for this query.
	Overhead float64 `json:"overhead"`
	Rows     int     `json:"rows"`
	Error    string  `json:"error,omitempty"`
}

// obsOverheadReport is the BENCH_obsoverhead.json payload. The
// acceptance bound is on the *disabled* path: with instruments compiled
// in but not wired, serving must not be measurably slower than the
// fully-enabled path lets us bound it — the regression test asserts
// total_disabled_seconds <= total_enabled_seconds * 1.02.
type obsOverheadReport struct {
	Meta
	Rounds               int     `json:"rounds"`
	TotalDisabledSeconds float64 `json:"total_disabled_seconds"`
	TotalEnabledSeconds  float64 `json:"total_enabled_seconds"`
	// TotalOverhead is the aggregate enabled/disabled − 1 across L1–L10.
	TotalOverhead float64             `json:"total_overhead"`
	Records       []ObsOverheadRecord `json:"records"`
}

// ObsOverheadBench serves LUBM L1–L10 through two Systems over the same
// dataset — one opened plain, one with WithObservability plus a
// keep-everything slow-query log — and reports per-query minimum
// latencies and the enabled-vs-disabled overhead to jsonPath (skipped
// when empty). Rounds interleave the two systems so drift hits both
// equally.
func ObsOverheadBench(cfg Config, jsonPath string) error {
	ds := lubm.Generate(lubm.Config{Universities: 7, Seed: cfg.seed(), Compact: cfg.Quick})
	open := func(observed bool) (*sparqlopt.System, error) {
		opts := []sparqlopt.Option{
			sparqlopt.WithNodes(cfg.nodes()),
			sparqlopt.WithParallelism(cfg.Parallelism),
		}
		if observed {
			opts = append(opts, sparqlopt.WithObservability(sparqlopt.WithSlowQueryLog(64, 0)))
		}
		return sparqlopt.Open(ds, opts...)
	}
	plain, err := open(false)
	if err != nil {
		return err
	}
	observed, err := open(true)
	if err != nil {
		return err
	}
	rounds := 7
	if cfg.Quick {
		rounds = 3
	}
	report := obsOverheadReport{Meta: cfg.meta(), Rounds: rounds}
	w := tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "Observability overhead (Hash-SO, TD-Auto, min of %d rounds per query)\n", rounds)
	fmt.Fprintln(w, "Query\tDisabled\tEnabled\tOverhead\tRows")
	for _, name := range lubm.QueryNames {
		rec, err := obsOverheadOne(cfg, plain, observed, name, rounds)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		report.Records = append(report.Records, rec)
		if rec.Error != "" {
			fmt.Fprintf(w, "%s\t%s\t\t\t\n", name, rec.Error)
			continue
		}
		report.TotalDisabledSeconds += rec.DisabledSeconds
		report.TotalEnabledSeconds += rec.EnabledSeconds
		fmt.Fprintf(w, "%s\t%.3gs\t%.3gs\t%+.1f%%\t%d\n",
			name, rec.DisabledSeconds, rec.EnabledSeconds, rec.Overhead*100, rec.Rows)
	}
	if report.TotalDisabledSeconds > 0 {
		report.TotalOverhead = report.TotalEnabledSeconds/report.TotalDisabledSeconds - 1
	}
	fmt.Fprintf(w, "total %.3gs disabled, %.3gs enabled (%+.1f%%)\n",
		report.TotalDisabledSeconds, report.TotalEnabledSeconds, report.TotalOverhead*100)
	if err := w.Flush(); err != nil {
		return err
	}
	if cfg.Metrics {
		fmt.Fprintln(cfg.out(), "\nmetrics snapshot (enabled system):")
		if err := observed.WriteMetrics(cfg.out()); err != nil {
			return err
		}
	}
	if jsonPath == "" {
		return nil
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(cfg.out(), "wrote %d records to %s\n", len(report.Records), jsonPath)
	return nil
}

// obsOverheadOne measures one query on both systems, interleaved, and
// keeps the per-system minimum. The query runs under its own deadline:
// a hang expires this query's context and fails this record only,
// leaving the rest of the run its full budget.
func obsOverheadOne(cfg Config, plain, observed *sparqlopt.System, name string, rounds int) (ObsOverheadRecord, error) {
	src := lubm.QueryText(name)
	q := lubm.Query(name)
	rec := ObsOverheadRecord{Query: name, Patterns: len(q.Patterns)}
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout()+cfg.execTimeout())
	defer cancel()
	err := obsOverheadRun(ctx, plain, observed, src, &rec, rounds)
	if err != nil && ctx.Err() != nil {
		rec.Error = err.Error()
		return rec, nil
	}
	return rec, err
}

// obsOverheadRun is obsOverheadOne's measured body, bounded by ctx.
func obsOverheadRun(ctx context.Context, plain, observed *sparqlopt.System, src string, rec *ObsOverheadRecord, rounds int) error {
	// One warmup apiece, off the clock, to populate lazy state.
	if _, err := plain.Run(ctx, src); err != nil {
		rec.Error = err.Error()
		return nil
	}
	out, err := observed.Run(ctx, src)
	if err != nil {
		rec.Error = err.Error()
		return nil
	}
	rec.Rows = len(out.Rows)
	minDisabled, minEnabled := time.Duration(-1), time.Duration(-1)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		if _, err := plain.Run(ctx, src); err != nil {
			return err
		}
		if d := time.Since(start); minDisabled < 0 || d < minDisabled {
			minDisabled = d
		}
		start = time.Now()
		if _, err := observed.Run(ctx, src); err != nil {
			return err
		}
		if d := time.Since(start); minEnabled < 0 || d < minEnabled {
			minEnabled = d
		}
	}
	rec.DisabledSeconds = minDisabled.Seconds()
	rec.EnabledSeconds = minEnabled.Seconds()
	if rec.DisabledSeconds > 0 {
		rec.Overhead = rec.EnabledSeconds/rec.DisabledSeconds - 1
	}
	return nil
}
