// Package stats holds per-triple-pattern statistics — the cardinality
// |tp| and the distinct-binding counts B(tp, v) — and implements the
// join cardinality estimation of the paper's appendix B (Eq. 10–11):
//
//	|tp1 ⋈ tp2| = |tp1|·|tp2| / ∏_{v ∈ shared} max B(tp_i, v)
//
// extended to multi-pattern subqueries by left-folding in pattern
// index order (Eq. 11). An Estimator memoizes per-subquery results, as
// the plan enumerator asks for the same subqueries many times.
package stats

import (
	"fmt"
	"sync"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

// PatternStats describes the bindings of one triple pattern.
type PatternStats struct {
	// Card is the number of triples matching the pattern.
	Card float64
	// Bindings maps each variable of the pattern to its number of
	// distinct bindings (B(tp, v) of appendix B).
	Bindings map[string]float64
}

// Stats aligns one PatternStats with each pattern of a query.
type Stats struct {
	Patterns []PatternStats
	// Epoch is the dataset mutation counter observed by Collect.
	// Caches keyed on query shape compare it against the live
	// dataset's Epoch() to detect stale snapshots.
	Epoch uint64
}

// Collect scans the dataset once per pattern and computes exact
// statistics: match counts and distinct bindings per variable. It
// pins the dataset's current snapshot; use CollectSnapshot directly
// when the caller already holds one.
func Collect(ds *rdf.Dataset, q *sparql.Query) (*Stats, error) {
	return CollectSnapshot(ds.Snapshot(), q)
}

// CollectSnapshot computes exact statistics over one pinned immutable
// snapshot, so collection is consistent (and race-free) under
// concurrent ingest.
func CollectSnapshot(snap *rdf.Snapshot, q *sparql.Query) (*Stats, error) {
	s := &Stats{Patterns: make([]PatternStats, len(q.Patterns)), Epoch: snap.Epoch()}
	for i, tp := range q.Patterns {
		ps, err := collectPattern(snap.Dict(), snap.Triples(), tp)
		if err != nil {
			return nil, fmt.Errorf("pattern %d: %w", i, err)
		}
		s.Patterns[i] = ps
	}
	return s, nil
}

func collectPattern(dict *rdf.Dict, triples []rdf.Triple, tp sparql.TriplePattern) (PatternStats, error) {
	ps := PatternStats{Bindings: map[string]float64{}}
	// Resolve constant terms; an unknown constant matches nothing.
	resolve := func(t sparql.Term) (rdf.TermID, bool, error) {
		if t.IsVar() {
			return 0, false, nil
		}
		id, ok := dict.Lookup(t.Value)
		if !ok {
			return 0, true, errUnknown
		}
		return id, true, nil
	}
	sid, sConst, errS := resolve(tp.S)
	pid, pConst, errP := resolve(tp.P)
	oid, oConst, errO := resolve(tp.O)
	if errS != nil || errP != nil || errO != nil {
		// Constant not in dictionary: zero matches, one binding floor.
		for _, v := range tp.Vars() {
			ps.Bindings[v] = 1
		}
		ps.Card = 0
		return ps, nil
	}
	distinct := map[string]map[rdf.TermID]struct{}{}
	for _, v := range tp.Vars() {
		distinct[v] = map[rdf.TermID]struct{}{}
	}
	note := func(t sparql.Term, id rdf.TermID) {
		if t.IsVar() {
			distinct[t.Value][id] = struct{}{}
		}
	}
	for _, tr := range triples {
		if sConst && tr.S != sid {
			continue
		}
		if pConst && tr.P != pid {
			continue
		}
		if oConst && tr.O != oid {
			continue
		}
		ps.Card++
		note(tp.S, tr.S)
		note(tp.P, tr.P)
		note(tp.O, tr.O)
	}
	for v, set := range distinct {
		b := float64(len(set))
		if b < 1 {
			b = 1
		}
		ps.Bindings[v] = b
	}
	return ps, nil
}

var errUnknown = fmt.Errorf("unknown constant")

// CollectSampled estimates statistics from a systematic sample of the
// dataset: every k-th triple is examined and counts are scaled by k.
// Distinct-binding counts are scaled the same way — a first-order
// estimate that is exact for keys appearing once and conservative for
// heavy hitters. rate must be in (0, 1]; rate 1 is exact collection.
// Use it when the dataset is too large to scan per pattern.
func CollectSampled(ds *rdf.Dataset, q *sparql.Query, rate float64) (*Stats, error) {
	return CollectSampledSnapshot(ds.Snapshot(), q, rate)
}

// CollectSampledSnapshot is CollectSampled over a pinned snapshot.
func CollectSampledSnapshot(snap *rdf.Snapshot, q *sparql.Query, rate float64) (*Stats, error) {
	if rate <= 0 || rate > 1 {
		return nil, fmt.Errorf("stats: sampling rate %v outside (0, 1]", rate)
	}
	if rate == 1 {
		return CollectSnapshot(snap, q)
	}
	step := int(1 / rate)
	if step < 1 {
		step = 1
	}
	all := snap.Triples()
	sample := make([]rdf.Triple, 0, len(all)/step+1)
	for i := 0; i < len(all); i += step {
		sample = append(sample, all[i])
	}
	s := &Stats{Patterns: make([]PatternStats, len(q.Patterns)), Epoch: snap.Epoch()}
	for i, tp := range q.Patterns {
		ps, err := collectPattern(snap.Dict(), sample, tp)
		if err != nil {
			return nil, fmt.Errorf("pattern %d: %w", i, err)
		}
		s.Patterns[i] = ps
	}
	scale := float64(step)
	for i := range s.Patterns {
		s.Patterns[i].Card *= scale
		for v := range s.Patterns[i].Bindings {
			b := s.Patterns[i].Bindings[v] * scale
			if b > s.Patterns[i].Card && s.Patterns[i].Card >= 1 {
				b = s.Patterns[i].Card
			}
			s.Patterns[i].Bindings[v] = b
		}
	}
	return s, nil
}

// Remap returns a copy of s with its patterns reordered and its
// variables renamed: output pattern i is s.Patterns[perm[i]], and
// every binding key v becomes rename[v] (keys absent from rename are
// kept). The plan cache uses it to move a snapshot between a query's
// own pattern/variable space and the canonical template space shared
// by all queries of one fingerprint.
func (s *Stats) Remap(perm []int, rename map[string]string) *Stats {
	out := &Stats{Patterns: make([]PatternStats, len(perm)), Epoch: s.Epoch}
	for i, from := range perm {
		ps := s.Patterns[from]
		cp := PatternStats{Card: ps.Card, Bindings: make(map[string]float64, len(ps.Bindings))}
		for v, b := range ps.Bindings {
			if nv, ok := rename[v]; ok {
				v = nv
			}
			cp.Bindings[v] = b
		}
		out.Patterns[i] = cp
	}
	return out
}

// Estimator computes and memoizes subquery cardinalities for one
// query under one Stats. It is safe for concurrent use: the parallel
// plan enumerator calls it from every worker. Estimates are pure
// functions of the set, so concurrent misses may compute the same
// entry twice but always store identical values.
type Estimator struct {
	q     *sparql.Query
	stats *Stats
	mu    sync.RWMutex
	memo  map[bitset.TPSet]entry
}

type entry struct {
	card     float64
	bindings map[string]float64
}

// NewEstimator returns an estimator for q with the given statistics.
// It returns an error if stats does not cover every pattern of q.
func NewEstimator(q *sparql.Query, s *Stats) (*Estimator, error) {
	if len(s.Patterns) != len(q.Patterns) {
		return nil, fmt.Errorf("stats: have %d pattern stats for %d patterns", len(s.Patterns), len(q.Patterns))
	}
	return &Estimator{q: q, stats: s, memo: make(map[bitset.TPSet]entry)}, nil
}

// Cardinality estimates |SQ| for the subquery encoded by set. Folding
// is performed in pattern-index order, so the estimate is a
// well-defined function of the set. Disconnected sets are estimated as
// cross products (the enumerators never request them, but baselines
// like DP-Bushy cost such plans before discarding them).
func (e *Estimator) Cardinality(set bitset.TPSet) float64 {
	return e.resolve(set).card
}

// Bindings estimates B(SQ, v), the distinct bindings of variable v in
// the result of the subquery.
func (e *Estimator) Bindings(set bitset.TPSet, v string) float64 {
	b, ok := e.resolve(set).bindings[v]
	if !ok {
		return 1
	}
	return b
}

func (e *Estimator) resolve(set bitset.TPSet) entry {
	if set.IsEmpty() {
		return entry{card: 1}
	}
	e.mu.RLock()
	got, ok := e.memo[set]
	e.mu.RUnlock()
	if ok {
		return got
	}
	first := set.Min()
	cur := e.base(first)
	set.Each(func(i int) bool {
		if i == first {
			return true
		}
		cur = e.join(cur, e.base(i))
		return true
	})
	e.mu.Lock()
	e.memo[set] = cur
	e.mu.Unlock()
	return cur
}

func (e *Estimator) base(i int) entry {
	ps := e.stats.Patterns[i]
	b := make(map[string]float64, len(ps.Bindings))
	for v, n := range ps.Bindings {
		b[v] = n
	}
	return entry{card: ps.Card, bindings: b}
}

// join applies Eq. 10, generalized to intermediate results: the
// binding count of a shared variable after the join is the smaller of
// the two sides'; a variable present on one side only keeps its count,
// capped by the output cardinality.
func (e *Estimator) join(l, r entry) entry {
	denom := 1.0
	shared := false
	for v, lb := range l.bindings {
		rb, ok := r.bindings[v]
		if !ok {
			continue
		}
		shared = true
		m := lb
		if rb > m {
			m = rb
		}
		if m < 1 {
			m = 1
		}
		denom *= m
	}
	card := l.card * r.card / denom
	_ = shared // disconnected folds degrade to the cross product l.card*r.card
	out := entry{card: card, bindings: make(map[string]float64, len(l.bindings)+len(r.bindings))}
	for v, lb := range l.bindings {
		b := lb
		if rb, ok := r.bindings[v]; ok && rb < b {
			b = rb
		}
		out.bindings[v] = capBinding(b, card)
	}
	for v, rb := range r.bindings {
		if _, ok := l.bindings[v]; !ok {
			out.bindings[v] = capBinding(rb, card)
		}
	}
	return out
}

func capBinding(b, card float64) float64 {
	if card >= 1 && b > card {
		b = card
	}
	if b < 1 {
		b = 1
	}
	return b
}
