package stats

import (
	"fmt"
	"sync"

	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

// Tracker maintains per-predicate statistics — cardinality and
// distinct subject/object counts — incrementally under ingest. It is
// seeded with one full scan of a snapshot and then folds each
// committed WriteDelta in O(|delta|), so the serving path can answer
// the dominant (?s <p> ?o) pattern-stats shape without rescanning the
// dataset per query. Patterns the tracker cannot answer exactly
// (variable predicates, constant subjects/objects, repeated
// variables) fall back to a snapshot scan in CollectTracked.
type Tracker struct {
	mu    sync.RWMutex
	epoch uint64
	total int64
	preds map[rdf.TermID]*predAgg
}

type predAgg struct {
	card     int64
	subjects map[rdf.TermID]struct{}
	objects  map[rdf.TermID]struct{}
}

// NewTracker seeds a tracker with one pass over the snapshot.
func NewTracker(snap *rdf.Snapshot) *Tracker {
	t := &Tracker{epoch: snap.Epoch(), preds: make(map[rdf.TermID]*predAgg)}
	for _, tr := range snap.Triples() {
		t.fold(tr)
	}
	t.total = int64(snap.Len())
	return t
}

func (t *Tracker) fold(tr rdf.Triple) {
	g := t.preds[tr.P]
	if g == nil {
		g = &predAgg{subjects: make(map[rdf.TermID]struct{}), objects: make(map[rdf.TermID]struct{})}
		t.preds[tr.P] = g
	}
	g.card++
	g.subjects[tr.S] = struct{}{}
	g.objects[tr.O] = struct{}{}
}

// Apply folds one committed write delta and advances the tracker to
// its epoch. Deltas must be applied in commit order. A nil/empty
// delta just advances the epoch — the hook for epoch-only bumps
// (placement migrations) that change no triples.
func (t *Tracker) Apply(delta []rdf.Triple, epoch uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, tr := range delta {
		t.fold(tr)
	}
	t.total += int64(len(delta))
	if epoch > t.epoch {
		t.epoch = epoch
	}
}

// Epoch returns the epoch the tracker's aggregates reflect.
func (t *Tracker) Epoch() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.epoch
}

// Total returns the tracked triple count.
func (t *Tracker) Total() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.total
}

// PredCard returns the cardinality and distinct subject/object counts
// of one predicate.
func (t *Tracker) PredCard(p rdf.TermID) (card, subjects, objects int64) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	g := t.preds[p]
	if g == nil {
		return 0, 0, 0
	}
	return g.card, int64(len(g.subjects)), int64(len(g.objects))
}

// CollectTracked computes pattern statistics for q at the snapshot,
// answering (variable-S, constant-P, variable-O) patterns from the
// tracker's aggregates in O(1) and scanning the snapshot only for the
// shapes the tracker does not cover. The tracker must be exactly at
// the snapshot's epoch; when it is not (a lagging pending-write queue,
// or the tracker already ahead of an older pinned snapshot), the call
// degrades to a plain CollectSnapshot so the statistics always
// describe the pinned snapshot.
func CollectTracked(t *Tracker, snap *rdf.Snapshot, q *sparql.Query) (*Stats, error) {
	if t == nil || t.Epoch() != snap.Epoch() {
		return CollectSnapshot(snap, q)
	}
	s := &Stats{Patterns: make([]PatternStats, len(q.Patterns)), Epoch: snap.Epoch()}
	for i, tp := range q.Patterns {
		if ps, ok := t.patternFast(snap.Dict(), tp); ok {
			s.Patterns[i] = ps
			continue
		}
		ps, err := collectPattern(snap.Dict(), snap.Triples(), tp)
		if err != nil {
			return nil, fmt.Errorf("pattern %d: %w", i, err)
		}
		s.Patterns[i] = ps
	}
	return s, nil
}

// patternFast answers one pattern from the aggregates if its shape is
// (distinct variable S, constant P, distinct variable O).
func (t *Tracker) patternFast(dict *rdf.Dict, tp sparql.TriplePattern) (PatternStats, bool) {
	if !tp.S.IsVar() || tp.P.IsVar() || !tp.O.IsVar() || tp.S.Value == tp.O.Value {
		return PatternStats{}, false
	}
	pid, ok := dict.Lookup(tp.P.Value)
	if !ok {
		// Unknown predicate constant: zero matches, one binding floor —
		// the same convention as the scanning collector.
		return PatternStats{Card: 0, Bindings: map[string]float64{tp.S.Value: 1, tp.O.Value: 1}}, true
	}
	card, subj, obj := t.PredCard(pid)
	bs, bo := float64(subj), float64(obj)
	if bs < 1 {
		bs = 1
	}
	if bo < 1 {
		bo = 1
	}
	return PatternStats{Card: float64(card), Bindings: map[string]float64{tp.S.Value: bs, tp.O.Value: bo}}, true
}
