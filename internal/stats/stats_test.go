package stats

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

func buildDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	// 3 people work for 2 orgs; orgs have names.
	ds.Add("alice", "worksFor", "acme")
	ds.Add("bob", "worksFor", "acme")
	ds.Add("carol", "worksFor", "globex")
	ds.Add("acme", "name", "n1")
	ds.Add("globex", "name", "n2")
	return ds
}

func TestCollectExact(t *testing.T) {
	ds := buildDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?x <worksFor> ?y . ?y <name> ?n . }`)
	s, err := Collect(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	p0 := s.Patterns[0]
	if p0.Card != 3 {
		t.Errorf("|tp0| = %v, want 3", p0.Card)
	}
	if p0.Bindings["x"] != 3 || p0.Bindings["y"] != 2 {
		t.Errorf("tp0 bindings = %v", p0.Bindings)
	}
	p1 := s.Patterns[1]
	if p1.Card != 2 || p1.Bindings["y"] != 2 || p1.Bindings["n"] != 2 {
		t.Errorf("tp1 = %+v", p1)
	}
}

func TestCollectConstantSubject(t *testing.T) {
	ds := buildDataset()
	q := sparql.MustParse(`SELECT * WHERE { <alice> <worksFor> ?y . }`)
	s, err := Collect(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Patterns[0].Card != 1 || s.Patterns[0].Bindings["y"] != 1 {
		t.Errorf("stats = %+v", s.Patterns[0])
	}
}

func TestCollectUnknownConstant(t *testing.T) {
	ds := buildDataset()
	q := sparql.MustParse(`SELECT * WHERE { <nobody> <worksFor> ?y . }`)
	s, err := Collect(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Patterns[0].Card != 0 {
		t.Errorf("unknown constant should yield 0 matches, got %v", s.Patterns[0].Card)
	}
	if s.Patterns[0].Bindings["y"] != 1 {
		t.Errorf("binding floor should be 1, got %v", s.Patterns[0].Bindings["y"])
	}
}

func TestCollectVariablePredicate(t *testing.T) {
	ds := buildDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?x ?p ?y . }`)
	s, err := Collect(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if s.Patterns[0].Card != 5 {
		t.Errorf("|?x ?p ?y| = %v, want 5", s.Patterns[0].Card)
	}
	if s.Patterns[0].Bindings["p"] != 2 {
		t.Errorf("B(tp, p) = %v, want 2", s.Patterns[0].Bindings["p"])
	}
}

func newEstimator(t *testing.T, q *sparql.Query, cards []float64, bindings []map[string]float64) *Estimator {
	t.Helper()
	s := &Stats{}
	for i := range cards {
		s.Patterns = append(s.Patterns, PatternStats{Card: cards[i], Bindings: bindings[i]})
	}
	e, err := NewEstimator(q, s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEquation10(t *testing.T) {
	// |tp1 ⋈ tp2| = |tp1|·|tp2| / max(B(tp1,y), B(tp2,y))
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . ?y <q> ?z . }`)
	e := newEstimator(t, q,
		[]float64{100, 50},
		[]map[string]float64{
			{"x": 100, "y": 20},
			{"y": 10, "z": 50},
		})
	got := e.Cardinality(bitset.Of(0, 1))
	want := 100.0 * 50.0 / 20.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cardinality = %v, want %v", got, want)
	}
	// Shared variable binding after join = min of the two sides.
	if b := e.Bindings(bitset.Of(0, 1), "y"); b != 10 {
		t.Errorf("B(join, y) = %v, want 10", b)
	}
}

func TestMultiSharedVariables(t *testing.T) {
	// Two patterns sharing two variables: denominators multiply.
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . ?x <q> ?y . }`)
	e := newEstimator(t, q,
		[]float64{60, 40},
		[]map[string]float64{
			{"x": 6, "y": 10},
			{"x": 4, "y": 5},
		})
	got := e.Cardinality(bitset.Of(0, 1))
	want := 60.0 * 40.0 / (6.0 * 10.0)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("cardinality = %v, want %v", got, want)
	}
}

func TestCrossProductFold(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . ?a <q> ?b . }`)
	e := newEstimator(t, q,
		[]float64{10, 20},
		[]map[string]float64{{"x": 10, "y": 10}, {"a": 20, "b": 20}})
	if got := e.Cardinality(bitset.Of(0, 1)); got != 200 {
		t.Errorf("cross product = %v, want 200", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . }`)
	e := newEstimator(t, q, []float64{42}, []map[string]float64{{"x": 42, "y": 7}})
	if e.Cardinality(0) != 1 {
		t.Error("empty set cardinality should be 1")
	}
	if e.Cardinality(bitset.Of(0)) != 42 {
		t.Error("singleton cardinality wrong")
	}
	if e.Bindings(bitset.Of(0), "y") != 7 {
		t.Error("singleton bindings wrong")
	}
	if e.Bindings(bitset.Of(0), "zz") != 1 {
		t.Error("missing variable should report 1")
	}
}

func TestBindingsCappedByCardinality(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . ?y <q> ?z . }`)
	e := newEstimator(t, q,
		[]float64{10, 10},
		[]map[string]float64{
			{"x": 10, "y": 10},
			{"y": 10, "z": 1000},
		})
	// |join| = 10*10/10 = 10; B(join, z) must be capped at 10.
	if b := e.Bindings(bitset.Of(0, 1), "z"); b != 10 {
		t.Errorf("B(join, z) = %v, want 10 (capped)", b)
	}
}

func TestNewEstimatorMismatch(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . ?y <q> ?z . }`)
	if _, err := NewEstimator(q, &Stats{Patterns: make([]PatternStats, 1)}); err == nil {
		t.Error("mismatched stats accepted")
	}
}

// Property: cardinality estimates are non-negative and monotone under
// memoization (repeat calls agree).
func TestQuickEstimatorStable(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?a <p> ?b . ?b <p> ?c . ?c <p> ?d . ?d <p> ?a . }`)
	f := func(seed uint32) bool {
		cards := make([]float64, 4)
		binds := make([]map[string]float64, 4)
		r := seed
		next := func(mod uint32) float64 {
			r = r*1664525 + 1013904223
			return float64(r%mod + 1)
		}
		vars := [][]string{{"a", "b"}, {"b", "c"}, {"c", "d"}, {"d", "a"}}
		for i := range cards {
			cards[i] = next(1000)
			binds[i] = map[string]float64{}
			for _, v := range vars[i] {
				binds[i][v] = next(uint32(cards[i]))
			}
		}
		s := &Stats{}
		for i := range cards {
			s.Patterns = append(s.Patterns, PatternStats{Card: cards[i], Bindings: binds[i]})
		}
		e, err := NewEstimator(q, s)
		if err != nil {
			return false
		}
		full := bitset.Full(4)
		c1 := e.Cardinality(full)
		c2 := e.Cardinality(full)
		if c1 != c2 || c1 < 0 || math.IsNaN(c1) || math.IsInf(c1, 0) {
			return false
		}
		// Every subset estimate must be finite and non-negative too.
		ok := true
		full.Subsets(func(sub bitset.TPSet) bool {
			c := e.Cardinality(sub)
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCollectSampled(t *testing.T) {
	ds := rdf.NewDataset()
	for i := 0; i < 1000; i++ {
		ds.Add(fmt.Sprintf("s%d", i), "p", fmt.Sprintf("o%d", i%100))
	}
	q := sparql.MustParse(`SELECT * WHERE { ?x <p> ?y . }`)
	exact, err := Collect(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := CollectSampled(ds, q, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Scaled cardinality within 20% of exact.
	if r := sampled.Patterns[0].Card / exact.Patterns[0].Card; r < 0.8 || r > 1.2 {
		t.Errorf("sampled card %v vs exact %v", sampled.Patterns[0].Card, exact.Patterns[0].Card)
	}
	// Bindings never exceed cardinality.
	for v, b := range sampled.Patterns[0].Bindings {
		if b > sampled.Patterns[0].Card {
			t.Errorf("B(%s) = %v > card %v", v, b, sampled.Patterns[0].Card)
		}
	}
	// rate 1 falls back to exact collection.
	one, err := CollectSampled(ds, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.Patterns[0].Card != exact.Patterns[0].Card {
		t.Error("rate 1 is not exact")
	}
}

func TestCollectSampledBadRate(t *testing.T) {
	ds := buildDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?x <worksFor> ?y . }`)
	for _, rate := range []float64{0, -0.5, 1.5} {
		if _, err := CollectSampled(ds, q, rate); err == nil {
			t.Errorf("rate %v accepted", rate)
		}
	}
}

func TestRemap(t *testing.T) {
	ds := buildDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?p <worksFor> ?c . ?c <name> ?n . }`)
	s, err := Collect(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Remap([]int{1, 0}, map[string]string{"p": "a", "c": "b", "n": "d"})
	if out.Epoch != s.Epoch {
		t.Errorf("epoch %d, want %d", out.Epoch, s.Epoch)
	}
	if out.Patterns[0].Card != s.Patterns[1].Card || out.Patterns[1].Card != s.Patterns[0].Card {
		t.Errorf("cards not permuted: %+v vs %+v", out.Patterns, s.Patterns)
	}
	// Pattern 0 of the remapped stats is the old pattern 1 (?c name ?n),
	// so it must carry renamed bindings for b and d.
	if out.Patterns[0].Bindings["b"] != s.Patterns[1].Bindings["c"] {
		t.Errorf("binding b = %v, want %v", out.Patterns[0].Bindings["b"], s.Patterns[1].Bindings["c"])
	}
	if out.Patterns[0].Bindings["d"] != s.Patterns[1].Bindings["n"] {
		t.Errorf("binding d = %v, want %v", out.Patterns[0].Bindings["d"], s.Patterns[1].Bindings["n"])
	}
	if _, ok := out.Patterns[0].Bindings["c"]; ok {
		t.Error("unrenamed binding key leaked through Remap")
	}
	// The source stats are untouched.
	if _, ok := s.Patterns[1].Bindings["c"]; !ok {
		t.Error("Remap mutated its receiver")
	}
}
