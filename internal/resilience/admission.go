package resilience

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"sparqlopt/internal/obs"
)

// Admission is a weighted semaphore gating the serving path: at most
// maxConcurrent units of work run at once, at most maxQueued waiters
// block for a slot, and everything past that is rejected immediately
// with a typed *OverloadError carrying a retry-after hint. Waiters are
// woken FIFO; a waiter whose context expires (deadline or cancel)
// never occupies a slot — admission is deadline-aware on both edges:
// an already-expired query is rejected before it queues, and a query
// whose deadline fires while queued is released without admission.
type Admission struct {
	max       int64
	maxQueued int64

	mu      sync.Mutex
	cur     int64      // weight currently admitted
	waiters *list.List // of *waiter, FIFO

	queued   atomic.Int64
	inFlight atomic.Int64

	// lastHeld is an EWMA-free estimate of recent slot hold time in
	// nanoseconds, updated on release; it seeds the retry-after hint.
	lastHeld atomic.Int64
	// rejects counts rejections; it decorrelates the jitter of
	// concurrent rejected callers so their retries do not land in one
	// synchronized wave.
	rejects atomic.Uint64
}

type waiter struct {
	weight int64
	ready  chan struct{} // closed when the slot was granted
}

// NewAdmission returns a controller admitting maxConcurrent weight
// units with up to maxQueued queued waiters. maxConcurrent < 1 is
// clamped to 1; maxQueued < 0 is clamped to 0 (no queueing: overflow
// is rejected immediately).
func NewAdmission(maxConcurrent, maxQueued int) *Admission {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &Admission{
		max:       int64(maxConcurrent),
		maxQueued: int64(maxQueued),
		waiters:   list.New(),
	}
}

// MaxConcurrent returns the concurrency limit.
func (a *Admission) MaxConcurrent() int { return int(a.max) }

// MaxQueued returns the waiter-queue bound.
func (a *Admission) MaxQueued() int { return int(a.maxQueued) }

// InFlight returns the weight currently admitted.
func (a *Admission) InFlight() int64 { return a.inFlight.Load() }

// Queued returns the number of waiters currently queued.
func (a *Admission) Queued() int64 { return a.queued.Load() }

// Acquire admits weight units of work, blocking in the bounded FIFO
// queue when the semaphore is full. It returns a release function that
// must be called exactly once when the work finishes. Failures are
// typed: *OverloadError (matches ErrOverloaded) when the queue is
// full, and the context's cause wrapped in an obs.PhaseError with
// phase "admission" when ctx expires before (or while) waiting —
// a query whose deadline already passed is never admitted.
func (a *Admission) Acquire(ctx context.Context, weight int64) (release func(), err error) {
	if weight < 1 {
		weight = 1
	}
	if err := obs.Canceled(ctx, "admission"); err != nil {
		return nil, err
	}
	a.mu.Lock()
	if a.cur+weight <= a.max && a.waiters.Len() == 0 {
		a.cur += weight
		a.mu.Unlock()
		return a.admitted(weight), nil
	}
	if int64(a.waiters.Len()) >= a.maxQueued {
		inFlight, queued := a.inFlight.Load(), int64(a.waiters.Len())
		a.mu.Unlock()
		return nil, &OverloadError{
			InFlight:   inFlight,
			Queued:     queued,
			RetryAfter: a.retryAfter(queued),
		}
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	el := a.waiters.PushBack(w)
	a.queued.Add(1)
	a.mu.Unlock()

	select {
	case <-w.ready:
		a.queued.Add(-1)
		// The slot is ours, but never admit an expired query: give the
		// weight straight back (waking the next waiter) and fail.
		if err := obs.Canceled(ctx, "admission"); err != nil {
			a.releaseWeight(weight)
			return nil, err
		}
		return a.admitted(weight), nil
	case <-ctx.Done():
		a.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: hand the weight on.
			a.mu.Unlock()
			a.queued.Add(-1)
			a.releaseWeight(weight)
		default:
			a.waiters.Remove(el)
			a.mu.Unlock()
			a.queued.Add(-1)
		}
		return nil, obs.Canceled(ctx, "admission")
	}
}

// admitted finalizes a grant and returns its once-only release func.
func (a *Admission) admitted(weight int64) func() {
	a.inFlight.Add(weight)
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			a.lastHeld.Store(int64(time.Since(start)))
			a.inFlight.Add(-weight)
			a.releaseWeight(weight)
		})
	}
}

// releaseWeight returns weight to the semaphore and grants queued
// waiters FIFO while capacity lasts.
func (a *Admission) releaseWeight(weight int64) {
	a.mu.Lock()
	a.cur -= weight
	for el := a.waiters.Front(); el != nil; {
		w := el.Value.(*waiter)
		if a.cur+w.weight > a.max {
			break
		}
		next := el.Next()
		a.waiters.Remove(el)
		a.cur += w.weight
		close(w.ready)
		el = next
	}
	a.mu.Unlock()
}

// retryAfter estimates how long a rejected caller should back off.
// The hint scales with the current queue depth: the line ahead drains
// in FIFO waves of max concurrent slots, each wave taking roughly the
// recent per-query hold time (floored at a small constant so a zero
// history still spreads retries out). On top of the depth-scaled
// estimate it adds up to half a hold time of deterministic jitter,
// keyed by the rejection count, so a burst of simultaneous rejections
// does not retry in one synchronized wave that gets rejected again.
func (a *Admission) retryAfter(queued int64) time.Duration {
	held := time.Duration(a.lastHeld.Load())
	if held < 10*time.Millisecond {
		held = 10 * time.Millisecond
	}
	waves := (queued + a.max) / a.max // queue drained in FIFO waves of max
	d := held * time.Duration(waves)
	jitter := time.Duration(float64(held) / 2 * unitFloat(splitmix64(a.rejects.Add(1))))
	return d + jitter
}
