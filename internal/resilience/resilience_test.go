package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparqlopt/internal/obs"
)

func TestAdmissionFastPath(t *testing.T) {
	a := NewAdmission(2, 4)
	rel1, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("acquire 1: %v", err)
	}
	rel2, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("acquire 2: %v", err)
	}
	if got := a.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	rel1()
	rel1() // double release must be a no-op
	rel2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("InFlight after release = %d, want 0", got)
	}
}

func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	a := NewAdmission(1, 0)
	rel, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer rel()

	_, err = a.Acquire(context.Background(), 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err %T is not *OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", oe.RetryAfter)
	}
	if oe.InFlight != 1 {
		t.Fatalf("InFlight in error = %d, want 1", oe.InFlight)
	}
}

func TestAdmissionNeverAdmitsExpired(t *testing.T) {
	a := NewAdmission(1, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Acquire(ctx, 1); err == nil {
		t.Fatal("expired context admitted")
	} else if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if a.InFlight() != 0 || a.Queued() != 0 {
		t.Fatalf("state leaked: inflight=%d queued=%d", a.InFlight(), a.Queued())
	}
}

func TestAdmissionQueuedWaiterCanceled(t *testing.T) {
	a := NewAdmission(1, 4)
	rel, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, 1)
		done <- err
	}()
	waitFor(t, func() bool { return a.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued waiter err = %v, want canceled", err)
	}
	rel()
	// The canceled waiter must not have consumed the slot.
	rel2, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("post-cancel acquire: %v", err)
	}
	rel2()
}

func TestAdmissionFIFOOrder(t *testing.T) {
	a := NewAdmission(1, 8)
	rel, err := a.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := a.Acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			r()
		}()
		// Serialize enqueue so FIFO order is observable.
		waitFor(t, func() bool { return a.Queued() == int64(i+1) })
	}
	rel()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO 0..3", order)
		}
	}
}

func TestAdmissionConcurrencyNeverExceeded(t *testing.T) {
	const limit = 3
	a := NewAdmission(limit, 64)
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := a.Acquire(context.Background(), 1)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			c := cur.Add(1)
			for {
				m := max.Load()
				if c <= m || max.CompareAndSwap(m, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			rel()
		}()
	}
	wg.Wait()
	if got := max.Load(); got > limit {
		t.Fatalf("observed %d concurrent holders, limit %d", got, limit)
	}
}

func TestBudgetPerQueryTrip(t *testing.T) {
	b := NewBudget(100, 0)
	g := b.NewGauge()
	if err := g.Reserve("scan", 60); err != nil {
		t.Fatalf("reserve 60: %v", err)
	}
	err := g.Reserve("hash-join", 60)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err %T is not *BudgetError", err)
	}
	if be.Site != "hash-join" || be.Shared {
		t.Fatalf("BudgetError = %+v, want Site=hash-join Shared=false", be)
	}
	// Failed reservation must charge nothing.
	if g.Used() != 60 || b.Used() != 60 {
		t.Fatalf("used gauge=%d budget=%d, want 60/60", g.Used(), b.Used())
	}
	g.Release(60)
	if g.Used() != 0 || b.Used() != 0 {
		t.Fatalf("after release gauge=%d budget=%d", g.Used(), b.Used())
	}
}

func TestBudgetSharedTrip(t *testing.T) {
	r := obs.NewRegistry()
	b := NewBudget(0, 100)
	b.SetTripCounter(r.Counter("resilience_budget_trips_total", "test"))
	g1, g2 := b.NewGauge(), b.NewGauge()
	if err := g1.Reserve("memo", 70); err != nil {
		t.Fatalf("g1 reserve: %v", err)
	}
	err := g2.Reserve("memo", 70)
	var be *BudgetError
	if !errors.As(err, &be) || !be.Shared {
		t.Fatalf("err = %v, want shared *BudgetError", err)
	}
	if b.Used() != 70 {
		t.Fatalf("budget used = %d, want 70 (rollback failed)", b.Used())
	}
	if got := r.Counter("resilience_budget_trips_total", "test").Value(); got != 1 {
		t.Fatalf("trip counter = %v, want 1", got)
	}
	g1.Reset()
	g2.Reset()
	if b.Used() != 0 {
		t.Fatalf("budget used after reset = %d", b.Used())
	}
}

func TestBudgetResetBetweenAttempts(t *testing.T) {
	b := NewBudget(100, 200)
	g := b.NewGauge()
	if err := g.Reserve("memo", 90); err != nil {
		t.Fatalf("reserve: %v", err)
	}
	g.Reset()
	// After a reset the full per-query budget is available again.
	if err := g.Reserve("memo", 90); err != nil {
		t.Fatalf("reserve after reset: %v", err)
	}
	g.Reset()
}

func TestNilBudgetAndGauge(t *testing.T) {
	var b *Budget
	g := b.NewGauge()
	if g != nil {
		t.Fatalf("nil budget produced non-nil gauge")
	}
	if err := g.Reserve("x", 1<<40); err != nil {
		t.Fatalf("nil gauge reserve: %v", err)
	}
	g.Release(1)
	g.Reset()
	if NewBudget(0, 0) != nil {
		t.Fatal("NewBudget(0,0) should be nil (disabled)")
	}
}

func TestCatchPanic(t *testing.T) {
	var hookRan bool
	run := func() (err error) {
		defer CatchPanic(&err, func() { hookRan = true })
		panic("boom")
	}
	err := run()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "boom" {
		t.Fatalf("Value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "TestCatchPanic") {
		t.Fatalf("stack not captured: %q", pe.Stack)
	}
	if !hookRan {
		t.Fatal("onRecover hook did not run")
	}
}

func TestPanicErrorUnwrapsErrorValues(t *testing.T) {
	sentinel := errors.New("inner")
	run := func() (err error) {
		defer CatchPanic(&err, nil)
		panic(fmt.Errorf("wrap: %w", sentinel))
	}
	if err := run(); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want chain containing sentinel", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
