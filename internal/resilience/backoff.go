package resilience

import "time"

// Backoff computes capped exponential retry delays with deterministic
// jitter: Delay(attempt) grows as Base·2^attempt up to Cap, scaled
// into [1/2, 1) of the nominal value by a jitter that is a pure
// function of (Seed, attempt). Two Backoffs with equal fields produce
// identical schedules — tests replay retry timing exactly — while
// different seeds decorrelate concurrent retriers so they do not
// hammer a recovering node in lockstep. The zero value is a disabled
// backoff: every delay is 0.
type Backoff struct {
	// Base is the nominal delay before the first retry (attempt 0).
	// Base <= 0 disables the backoff entirely.
	Base time.Duration
	// Cap bounds the nominal delay of every attempt. Cap <= 0 means
	// 32×Base.
	Cap time.Duration
	// Seed feeds the jitter.
	Seed int64
}

// Delay returns the pause before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 32 * b.Base
	}
	d := b.Base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	// Jitter scales the nominal delay into [1/2, 1): full jitter would
	// let consecutive attempts reorder; half jitter keeps the schedule
	// monotone per seed while still spreading independent retriers.
	frac := 0.5 + 0.5*unitFloat(splitmix64(uint64(b.Seed)^uint64(attempt)*0x9e3779b97f4a7c15))
	j := time.Duration(float64(d) * frac)
	if j < 1 {
		j = 1
	}
	return j
}

// unitFloat maps a 64-bit hash onto [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(uint64(1)<<53)
}

// splitmix64 is the SplitMix64 finalizer — one multiply-xorshift
// round with excellent avalanche, the same mixer the fault-injection
// sites use. Kept private and dependency-free.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
