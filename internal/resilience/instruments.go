package resilience

import "sparqlopt/internal/obs"

// PanicsRecoveredHelp is the shared help string for the
// resilience_panics_recovered_total counter. The opt and engine
// instrument bundles register the same family (the registry hands all
// of them the same counter), so every recovery site — optimizer pool
// workers, engine node goroutines, the serving path — increments one
// process-wide series.
const PanicsRecoveredHelp = "Worker panics recovered into typed errors."

// Instruments is the serving path's resilience metrics bundle. All
// methods are nil-receiver no-ops, so the disabled path (no
// observability) costs one nil check.
type Instruments struct {
	// Admitted / Rejected count admission-control outcomes.
	Admitted *obs.Counter
	Rejected *obs.Counter
	// Degraded counts queries served through the fallback ladder
	// (retry algorithm, greedy baseline or cache bypass).
	Degraded *obs.Counter
	// PanicsRecovered counts worker panics converted to errors.
	PanicsRecovered *obs.Counter
	// BudgetTrips counts memory reservations rejected by a budget.
	BudgetTrips *obs.Counter

	registry *obs.Registry
}

// NewInstruments registers the resilience_* counters on r and returns
// the bundle. A nil registry returns nil (instrumentation disabled).
func NewInstruments(r *obs.Registry) *Instruments {
	if r == nil {
		return nil
	}
	return &Instruments{
		Admitted:        r.Counter("resilience_admitted_total", "Queries admitted by admission control."),
		Rejected:        r.Counter("resilience_rejected_total", "Queries rejected by admission control."),
		Degraded:        r.Counter("resilience_degraded_total", "Queries served through the fallback ladder."),
		PanicsRecovered: r.Counter("resilience_panics_recovered_total", PanicsRecoveredHelp),
		BudgetTrips:     r.Counter("resilience_budget_trips_total", "Memory reservations rejected by a budget."),
		registry:        r,
	}
}

// ObserveAdmission exposes a's live state as gauges.
func (i *Instruments) ObserveAdmission(a *Admission) {
	if i == nil || a == nil {
		return
	}
	i.registry.GaugeFunc("resilience_in_flight", "Queries currently admitted.",
		func() float64 { return float64(a.InFlight()) })
	i.registry.GaugeFunc("resilience_queued", "Queries waiting for an admission slot.",
		func() float64 { return float64(a.Queued()) })
}

// ObserveBudget exposes b's live usage as a gauge and wires its trip
// counter.
func (i *Instruments) ObserveBudget(b *Budget) {
	if i == nil || b == nil {
		return
	}
	b.SetTripCounter(i.BudgetTrips)
	i.registry.GaugeFunc("resilience_mem_reserved_bytes", "Bytes reserved across all live query gauges.",
		func() float64 { return float64(b.Used()) })
}

// AdmissionAccepted records one admitted query.
func (i *Instruments) AdmissionAccepted() {
	if i == nil {
		return
	}
	i.Admitted.Inc()
}

// AdmissionRejected records one rejected query.
func (i *Instruments) AdmissionRejected() {
	if i == nil {
		return
	}
	i.Rejected.Inc()
}

// QueryDegraded records one query that fell down the ladder.
func (i *Instruments) QueryDegraded() {
	if i == nil {
		return
	}
	i.Degraded.Inc()
}

// PanicRecovered records one recovered worker panic.
func (i *Instruments) PanicRecovered() {
	if i == nil {
		return
	}
	i.PanicsRecovered.Inc()
}
