// Package faultinject is a deterministic, build-tag-free fault
// injection harness for the serving path. Tools and tests arm a Set
// with faults at named sites; instrumented code asks Should(site) at
// each site and misbehaves — panics, trips a budget, sleeps, fails a
// cache lookup — when the harness says so.
//
// Determinism is the point: firing is a pure function of (seed, site,
// hit count). A chaos run with a given seed injects exactly the same
// faults at exactly the same sites every time, under any goroutine
// schedule, so failures reproduce. There are no build tags and no
// global state: an un-armed (nil) Set is a handful of nil checks on
// the hot path, and production code simply never arms one.
//
// Every instrumented site is listed in the registry (Sites); the
// package test walks the repository and fails on any site that
// bypasses it, so a typo in a site name cannot silently never fire.
// The catalog:
//
//	opt/panic          panic inside an optimizer enumeration worker
//	opt/budget         memory-budget trip at the optimizer memo
//	engine/panic       panic inside a per-node join worker
//	engine/slow        armed delay inside an engine operator
//	engine/budget      memory-budget trip at an engine operator
//	plancache/lookup   failed plan-cache lookup (degrades to bypass)
//	rdf/snapshot       panic while applying a committed write delta
//	node/<i>/scan      node i fails fragment scans (node death, reads)
//	node/<i>/shuffle   node i fails to accept scatter partitions
//
// The node/<i>/* families are produced by the NodeScan and NodeShuffle
// constructors and parsed back by NodeSite.
package faultinject

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Site names one instrumented fault point.
type Site string

// The serving path's instrumented sites.
const (
	// OptPanic panics inside the optimizer's CMD-costing loop — on a
	// pool worker goroutine when the enumerator runs parallel.
	OptPanic Site = "opt/panic"
	// OptBudget forces a memory-budget trip when the optimizer's memo
	// reserves its next entry.
	OptBudget Site = "opt/budget"
	// EnginePanic panics inside a per-node join worker goroutine.
	EnginePanic Site = "engine/panic"
	// EngineSlow stalls an engine operator for the armed delay
	// (cancellable by the query's context).
	EngineSlow Site = "engine/slow"
	// EngineBudget forces a memory-budget trip at an engine operator.
	EngineBudget Site = "engine/budget"
	// CacheLookup fails the serving path's plan-cache lookup, which
	// must degrade to a cache bypass, not a query failure.
	CacheLookup Site = "plancache/lookup"
	// RdfSnapshot panics while a committed write delta is applied to
	// the serving snapshot (stats tracker + engine ingest delta). The
	// commit itself is durable; the apply must be deferred and
	// re-driven, never lost, and serving must continue on the previous
	// snapshot meanwhile.
	RdfSnapshot Site = "rdf/snapshot"
)

// NodeScan returns the node-scoped fault site of node's fragment-scan
// path ("node/<i>/scan"): while armed and firing, the node fails to
// serve scans, as if its process or link were down. The node index is
// part of the site name, so killing node 3 never perturbs node 2's
// firing pattern.
func NodeScan(node int) Site {
	return Site("node/" + strconv.Itoa(node) + "/scan")
}

// NodeShuffle returns the node-scoped fault site of node's shuffle
// path ("node/<i>/shuffle"): while armed and firing, the node fails to
// accept repartition-join scatter partitions.
func NodeShuffle(node int) Site {
	return Site("node/" + strconv.Itoa(node) + "/shuffle")
}

// NodeSite parses a node-scoped site. It returns the node index and
// the kind ("scan" or "shuffle"); ok is false for any other site.
func NodeSite(site Site) (node int, kind string, ok bool) {
	s := string(site)
	if !strings.HasPrefix(s, "node/") {
		return 0, "", false
	}
	rest := s[len("node/"):]
	i := strings.IndexByte(rest, '/')
	if i <= 0 {
		return 0, "", false
	}
	n, err := strconv.Atoi(rest[:i])
	if err != nil || n < 0 || rest[:i] != strconv.Itoa(n) {
		return 0, "", false
	}
	kind = rest[i+1:]
	if kind != "scan" && kind != "shuffle" {
		return 0, "", false
	}
	return n, kind, true
}

// Injected is the value carried by injected panics, so tests can tell
// an injected panic apart from a real one.
type Injected struct {
	Site Site
}

func (i Injected) String() string { return "injected fault at " + string(i.Site) }

// Error makes Injected usable as the cause of injected non-panic
// faults too (cache-lookup errors).
func (i Injected) Error() string { return i.String() }

// arm is one armed site. n counts hits; the fault fires on hits where
// n % every == offset, at most limit times (limit < 0 = unlimited).
type arm struct {
	every  uint64
	offset uint64
	limit  int64
	delay  time.Duration

	n     atomic.Uint64
	fired atomic.Int64
}

// Set is a seeded collection of armed sites. The zero value and nil
// are valid, un-armed sets: Should always reports false. Arming is
// not synchronized with firing — arm everything before handing the
// set to running queries.
type Set struct {
	seed uint64
	mu   sync.Mutex
	arms map[Site]*arm
}

// New returns an empty set whose firing pattern derives from seed.
func New(seed int64) *Set {
	return &Set{seed: splitmix64(uint64(seed))}
}

// Seed returns the seed the set was built with (post-mix).
func (s *Set) Seed() uint64 {
	if s == nil {
		return 0
	}
	return s.seed
}

// Arm makes site fire once every `every` hits, forever. The phase
// within the period is derived from the seed and the site name, so
// different seeds shift which hits fire.
func (s *Set) Arm(site Site, every int) { s.arm(site, every, -1, 0) }

// ArmN is Arm with an upper bound on total firings.
func (s *Set) ArmN(site Site, every, limit int) { s.arm(site, every, int64(limit), 0) }

// ArmDelay arms a slow-operator site: when it fires, Delay reports d.
func (s *Set) ArmDelay(site Site, every int, d time.Duration) { s.arm(site, every, -1, d) }

func (s *Set) arm(site Site, every int, limit int64, d time.Duration) {
	if s == nil {
		panic("faultinject: arming a nil Set")
	}
	if every < 1 {
		every = 1
	}
	a := &arm{
		every:  uint64(every),
		offset: splitmix64(s.seed^hashSite(site)) % uint64(every),
		limit:  limit,
		delay:  d,
	}
	s.mu.Lock()
	if s.arms == nil {
		s.arms = make(map[Site]*arm)
	}
	s.arms[site] = a
	s.mu.Unlock()
}

// Disarm removes site from the set.
func (s *Set) Disarm(site Site) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.arms, site)
	s.mu.Unlock()
}

func (s *Set) lookup(site Site) *arm {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	a := s.arms[site]
	s.mu.Unlock()
	return a
}

// Should records one hit at site and reports whether the fault fires
// on it. Safe on a nil set (never fires).
func (s *Set) Should(site Site) bool {
	a := s.lookup(site)
	if a == nil {
		return false
	}
	n := a.n.Add(1) - 1
	if n%a.every != a.offset {
		return false
	}
	if a.limit >= 0 && a.fired.Add(1) > a.limit {
		return false
	}
	if a.limit < 0 {
		a.fired.Add(1)
	}
	return true
}

// Delay records one hit at site and returns the armed delay when the
// fault fires, 0 otherwise. Safe on a nil set.
func (s *Set) Delay(site Site) time.Duration {
	a := s.lookup(site)
	if a == nil || a.delay <= 0 {
		return 0
	}
	if !s.Should(site) {
		return 0
	}
	return a.delay
}

// Fired returns how many times site has fired.
func (s *Set) Fired(site Site) int64 {
	a := s.lookup(site)
	if a == nil {
		return 0
	}
	f := a.fired.Load()
	if a.limit >= 0 && f > a.limit {
		return a.limit
	}
	return f
}

// Hits returns how many times site was asked (fired or not).
func (s *Set) Hits(site Site) uint64 {
	a := s.lookup(site)
	if a == nil {
		return 0
	}
	return a.n.Load()
}

// PanicIf panics with an Injected value when site fires — the one-line
// helper instrumented code uses for panic sites.
func (s *Set) PanicIf(site Site) {
	if s.Should(site) {
		panic(Injected{Site: site})
	}
}

// String lists the armed sites, for error messages and logs.
func (s *Set) String() string {
	if s == nil {
		return "faultinject.Set(nil)"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("faultinject.Set(seed=%#x, %d sites armed)", s.seed, len(s.arms))
}

// splitmix64 is the avalanche mixer used across the repo's hashing.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashSite folds a site name FNV-1a style.
func hashSite(site Site) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	return h
}
