package faultinject

// SiteInfo documents one registered fault site (or site family).
type SiteInfo struct {
	// Site is the site name; for a family it is the pattern with the
	// literal placeholder "<i>" in place of the node index.
	Site Site
	// Family reports a parameterized per-node site: concrete names are
	// produced by a constructor (NodeScan, NodeShuffle) and matched by
	// NodeSite, not by string equality.
	Family bool
	// Doc is the one-line behavior description, mirrored in the
	// DESIGN.md fault-site table.
	Doc string
}

// registry is the single source of truth for every fault site the
// repo instruments. A site that is not listed here does not exist:
// the package test walks the whole repository and fails on any site
// string (or Site conversion) that bypasses the registry — stringly-
// typed typos would otherwise silently never fire.
var registry = []SiteInfo{
	{OptPanic, false, "panics inside an optimizer enumeration worker; degrades down the planning ladder"},
	{OptBudget, false, "trips the memory budget at the optimizer memo's next reservation"},
	{EnginePanic, false, "panics inside a per-node join worker; recovered into a *PanicError"},
	{EngineSlow, false, "stalls an engine operator for the armed delay (cancellable)"},
	{EngineBudget, false, "trips the memory budget at an engine operator"},
	{CacheLookup, false, "fails the plan-cache lookup; degrades to a cache bypass"},
	{RdfSnapshot, false, "panics while a committed write delta is applied to the serving snapshot"},
	{Site("node/<i>/scan"), true, "node <i> fails to serve fragment scans (simulated node death on the read path)"},
	{Site("node/<i>/shuffle"), true, "node <i> fails to accept repartition-join scatter partitions"},
}

// Sites returns the registry of every known fault site, in a fixed
// documentation order. The returned slice is a copy.
func Sites() []SiteInfo {
	out := make([]SiteInfo, len(registry))
	copy(out, registry)
	return out
}

// Registered reports whether site is a known site: either one of the
// fixed constants or a concrete member of a registered per-node
// family. Arming an unregistered site is always a bug — the name can
// never match an instrumented Should call.
func Registered(site Site) bool {
	for _, info := range registry {
		if !info.Family && info.Site == site {
			return true
		}
	}
	if _, kind, ok := NodeSite(site); ok {
		for _, info := range registry {
			if info.Family && string(info.Site) == "node/<i>/"+kind {
				return true
			}
		}
	}
	return false
}
