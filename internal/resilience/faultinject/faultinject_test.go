package faultinject

import (
	"testing"
	"time"
)

// firing with a given seed must be a pure function of the hit index.
func TestDeterministicAcrossSets(t *testing.T) {
	pattern := func(seed int64) []bool {
		s := New(seed)
		s.Arm(OptPanic, 7)
		out := make([]bool, 100)
		for i := range out {
			out[i] = s.Should(OptPanic)
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 diverged at hit %d", i)
		}
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	// 100 hits, period 7: either 14 or 15 firings depending on phase.
	if fired < 14 || fired > 15 {
		t.Fatalf("fired %d times in 100 hits with period 7", fired)
	}
}

func TestSeedShiftsPhase(t *testing.T) {
	first := func(seed int64) int {
		s := New(seed)
		s.Arm(EnginePanic, 50)
		for i := 0; i < 50; i++ {
			if s.Should(EnginePanic) {
				return i
			}
		}
		return -1
	}
	// Some pair among a handful of seeds must differ in phase.
	base := first(1)
	for seed := int64(2); seed < 10; seed++ {
		if first(seed) != base {
			return
		}
	}
	t.Fatal("9 different seeds all produced the same phase")
}

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	if s.Should(OptPanic) {
		t.Fatal("nil set fired")
	}
	if s.Delay(EngineSlow) != 0 {
		t.Fatal("nil set delayed")
	}
	if s.Fired(OptPanic) != 0 || s.Hits(OptPanic) != 0 {
		t.Fatal("nil set counted")
	}
	s.Disarm(OptPanic) // must not panic
	s.PanicIf(OptPanic)
}

func TestLimit(t *testing.T) {
	s := New(1)
	s.ArmN(OptBudget, 1, 3)
	fired := 0
	for i := 0; i < 10; i++ {
		if s.Should(OptBudget) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d, want limit 3", fired)
	}
	if s.Fired(OptBudget) != 3 {
		t.Fatalf("Fired = %d, want 3", s.Fired(OptBudget))
	}
	if s.Hits(OptBudget) != 10 {
		t.Fatalf("Hits = %d, want 10", s.Hits(OptBudget))
	}
}

func TestDelay(t *testing.T) {
	s := New(3)
	s.ArmDelay(EngineSlow, 1, 5*time.Millisecond)
	if d := s.Delay(EngineSlow); d != 5*time.Millisecond {
		t.Fatalf("delay = %v, want 5ms", d)
	}
	if d := s.Delay(CacheLookup); d != 0 {
		t.Fatalf("unarmed site delayed %v", d)
	}
}

func TestPanicIfCarriesSite(t *testing.T) {
	s := New(9)
	s.Arm(EnginePanic, 1)
	defer func() {
		r := recover()
		inj, ok := r.(Injected)
		if !ok || inj.Site != EnginePanic {
			t.Fatalf("recovered %v (%T), want Injected{EnginePanic}", r, r)
		}
	}()
	s.PanicIf(EnginePanic)
	t.Fatal("PanicIf did not panic")
}

func TestDisarm(t *testing.T) {
	s := New(5)
	s.Arm(CacheLookup, 1)
	if !s.Should(CacheLookup) {
		t.Fatal("armed site did not fire at period 1")
	}
	s.Disarm(CacheLookup)
	if s.Should(CacheLookup) {
		t.Fatal("disarmed site fired")
	}
}
