package faultinject

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestNodeSiteRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 42} {
		for _, c := range []struct {
			site Site
			kind string
		}{{NodeScan(n), "scan"}, {NodeShuffle(n), "shuffle"}} {
			node, kind, ok := NodeSite(c.site)
			if !ok || node != n || kind != c.kind {
				t.Errorf("NodeSite(%q) = (%d, %q, %v), want (%d, %q, true)", c.site, node, kind, ok, n, c.kind)
			}
			if !Registered(c.site) {
				t.Errorf("Registered(%q) = false", c.site)
			}
		}
	}
	for _, bad := range []Site{"node//scan", "node/x/scan", "node/3/", "node/3/write", "node/03/scan", "node/-1/scan", "opt/panic", ""} {
		if _, _, ok := NodeSite(bad); ok {
			t.Errorf("NodeSite(%q) parsed, want rejection", bad)
		}
	}
	if Registered("node/3/write") || Registered("engine/bogus") {
		t.Error("Registered accepted an unknown site")
	}
}

// TestRegistryCoversPackageConstants parses this package's own source
// and asserts every Site-typed constant is in the registry, so a new
// site cannot be added without documenting it.
func TestRegistryCoversPackageConstants(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "faultinject.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var found int
	ast.Inspect(f, func(n ast.Node) bool {
		vs, ok := n.(*ast.ValueSpec)
		if !ok {
			return true
		}
		if id, ok := vs.Type.(*ast.Ident); !ok || id.Name != "Site" {
			return true
		}
		for _, name := range vs.Names {
			for _, v := range vs.Values {
				lit, ok := v.(*ast.BasicLit)
				if !ok {
					continue
				}
				site := Site(strings.Trim(lit.Value, `"`))
				found++
				if !Registered(site) {
					t.Errorf("constant %s = %q is not in the registry", name.Name, site)
				}
			}
		}
		return true
	})
	if found == 0 {
		t.Fatal("found no Site constants — the parser lost track of the declarations")
	}
	// The registry's fixed (non-family) entries must all be reachable
	// as declared constants; a registry row nothing declares is dead.
	declared := map[Site]bool{
		OptPanic: true, OptBudget: true, EnginePanic: true, EngineSlow: true,
		EngineBudget: true, CacheLookup: true, RdfSnapshot: true,
	}
	for _, info := range Sites() {
		if !info.Family && !declared[info.Site] {
			t.Errorf("registry entry %q has no declared constant", info.Site)
		}
		if info.Doc == "" {
			t.Errorf("registry entry %q has no doc line", info.Site)
		}
	}
}

// TestRepoUsesOnlyRegisteredSites walks every Go file in the module
// and fails on any use of a fault site that bypasses the registry:
// a raw faultinject.Site("...") conversion outside this package, or a
// string literal that names an unregistered site. Typos in stringly-
// typed site names would otherwise arm sites that never fire.
func TestRepoUsesOnlyRegisteredSites(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	pkgDir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || filepath.Dir(path) == pkgDir {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "faultinject" {
				return true
			}
			if sel.Sel.Name != "Site" || len(call.Args) != 1 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok {
				t.Errorf("%s: computed faultinject.Site(...) conversion — use a registered constant or constructor",
					fset.Position(call.Pos()))
				return true
			}
			site := Site(strings.Trim(lit.Value, `"`))
			if !Registered(site) {
				t.Errorf("%s: faultinject.Site(%q) is not a registered site", fset.Position(call.Pos()), site)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
