// Package resilience keeps the serving path alive under hostile
// conditions: overload, runaway memory, panicking operators. It
// provides the three guard rails the root package threads through
// System.Run —
//
//   - Admission: a weighted semaphore gating concurrent queries, with
//     a bounded waiter queue and fail-fast typed overload errors;
//   - Budget / Gauge: per-query memory accounting charged by the
//     engine's arena allocations and the optimizer's memo, under both
//     a per-query and a shared process-wide limit;
//   - PanicError / CatchPanic: the contract for converting a worker
//     goroutine's panic into a typed error with the stack attached,
//     so one poisoned query cannot take the process down;
//   - UnavailableError: the typed failure for queries that need data
//     whose only copies live on dead nodes (see the health subpackage
//     for the per-node breaker that declares them dead);
//   - Backoff: capped exponential retry delays with deterministic
//     jitter, shared by the engine's node-retry path and the
//     admission queue's retry-after hints.
//
// All guards fail with typed errors (ErrOverloaded, ErrBudgetExceeded,
// ErrUnavailable, *PanicError) so callers can distinguish "shed me,
// retry later" from "this query is broken" without string matching.
package resilience

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// ErrOverloaded is the sentinel matched by errors.Is for admission
// rejections. The concrete error is *OverloadError.
var ErrOverloaded = errors.New("resilience: overloaded")

// OverloadError reports that admission control rejected a query: every
// execution slot was busy and the waiter queue was full (or the query's
// deadline had already expired while it waited). It matches
// ErrOverloaded via errors.Is.
type OverloadError struct {
	// InFlight and Queued snapshot the controller when the query was
	// turned away.
	InFlight int64
	Queued   int64
	// RetryAfter is a hint for how long the caller should back off
	// before retrying. It is an estimate, not a reservation.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("resilience: overloaded (%d running, %d queued); retry after %v",
		e.InFlight, e.Queued, e.RetryAfter)
}

// Is matches the ErrOverloaded sentinel.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// ErrBudgetExceeded is the sentinel matched by errors.Is for memory
// budget trips. The concrete error is *BudgetError.
var ErrBudgetExceeded = errors.New("resilience: memory budget exceeded")

// BudgetError reports that a memory reservation pushed a query past
// its budget. Site names the operator or phase whose allocation
// tripped it ("memo", "scan", "repartition-join", ...). It matches
// ErrBudgetExceeded via errors.Is.
type BudgetError struct {
	// Site is the operator or phase that requested the reservation.
	Site string
	// Requested is the reservation that tripped the limit, in bytes.
	Requested int64
	// Used is what the query (or the process, for Shared trips) had
	// already reserved when the request arrived.
	Used int64
	// Limit is the budget that was exceeded.
	Limit int64
	// Shared reports that the process-wide budget tripped rather than
	// this query's own limit: the query may be innocent, merely late.
	Shared bool
}

func (e *BudgetError) Error() string {
	scope := "query"
	if e.Shared {
		scope = "process"
	}
	return fmt.Sprintf("resilience: %s memory budget exceeded at %s (%d + %d > %d bytes)",
		scope, e.Site, e.Used, e.Requested, e.Limit)
}

// Is matches the ErrBudgetExceeded sentinel.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// ErrUnavailable is the sentinel matched by errors.Is for queries that
// touched a dead, unreplicated fragment. The concrete error is
// *UnavailableError.
var ErrUnavailable = errors.New("resilience: fragment unavailable")

// UnavailableError reports that a query needed triples whose only
// copies live on nodes currently considered dead: the engine retried,
// failed over to replicas, and found at least one matched triple with
// no live copy. It is a fail-fast error — the query never hangs or
// returns a silent partial result. It matches ErrUnavailable via
// errors.Is.
type UnavailableError struct {
	// Nodes are the dead nodes the query touched, ascending.
	Nodes []int
	// Op is the operation that found the hole ("scan" or "shuffle").
	Op string
	// Missing counts matched triples with no live replica (0 when the
	// breaker rejected the node before any data was consulted).
	Missing int
	// RetryAfter hints when a retry could succeed: the earliest time a
	// dead node's breaker re-probes, or the advisor's re-replication
	// horizon. Zero when unknown.
	RetryAfter time.Duration
}

func (e *UnavailableError) Error() string {
	msg := fmt.Sprintf("resilience: fragment unavailable: node(s) %v down during %s", e.Nodes, e.Op)
	if e.Missing > 0 {
		msg += fmt.Sprintf(", %d matched triple(s) without a live replica", e.Missing)
	}
	if e.RetryAfter > 0 {
		msg += fmt.Sprintf("; retry after %v", e.RetryAfter)
	}
	return msg
}

// Is matches the ErrUnavailable sentinel.
func (e *UnavailableError) Is(target error) bool { return target == ErrUnavailable }

// PanicError is a panic recovered from a worker goroutine, converted
// into an error so the query fails while the process survives. Stack
// is the panicking goroutine's stack, captured at recovery.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the formatted stack trace of the panicking goroutine.
	Stack []byte
}

// NewPanicError wraps a recovered panic value. Call it only from a
// deferred recover site: the captured stack is the current goroutine's.
func NewPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("resilience: recovered panic: %v", e.Value)
}

// Unwrap exposes a wrapped error panic value (panic(err)) to
// errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// CatchPanic converts a panic on the current goroutine into a
// *PanicError stored at errp, leaving any existing error untouched.
// Use it as `defer resilience.CatchPanic(&err)` around code whose
// panics must fail the query, not the process. onRecover, when
// non-nil, runs after a panic was caught (metrics hooks).
func CatchPanic(errp *error, onRecover func()) {
	if r := recover(); r != nil {
		if *errp == nil {
			*errp = NewPanicError(r)
		}
		if onRecover != nil {
			onRecover()
		}
	}
}
