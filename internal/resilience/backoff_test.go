package resilience

import (
	"testing"
	"time"
)

func TestBackoffDeterministic(t *testing.T) {
	a := Backoff{Base: time.Millisecond, Cap: 50 * time.Millisecond, Seed: 7}
	b := Backoff{Base: time.Millisecond, Cap: 50 * time.Millisecond, Seed: 7}
	for i := 0; i < 10; i++ {
		if a.Delay(i) != b.Delay(i) {
			t.Fatalf("attempt %d: equal configs disagree: %v vs %v", i, a.Delay(i), b.Delay(i))
		}
	}
	other := Backoff{Base: time.Millisecond, Cap: 50 * time.Millisecond, Seed: 8}
	var diff bool
	for i := 0; i < 10; i++ {
		if a.Delay(i) != other.Delay(i) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds produced identical schedules — jitter is not seeded")
	}
}

func TestBackoffExponentialWithinJitterBand(t *testing.T) {
	b := Backoff{Base: 2 * time.Millisecond, Cap: time.Second, Seed: 1}
	for i := 0; i < 8; i++ {
		nominal := 2 * time.Millisecond << uint(i)
		got := b.Delay(i)
		// Jitter scales into [1/2, 1) of the nominal delay.
		if got < nominal/2 || got >= nominal {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", i, got, nominal/2, nominal)
		}
	}
}

func TestBackoffCap(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond, Seed: 3}
	for i := 0; i < 200; i++ {
		if got := b.Delay(i); got > 8*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds cap", i, got)
		}
	}
	// Huge attempt numbers must not overflow into negatives.
	if got := b.Delay(1 << 20); got <= 0 || got > 8*time.Millisecond {
		t.Errorf("huge attempt: delay %v, want within (0, cap]", got)
	}
}

func TestBackoffDefaultCapAndZeroValue(t *testing.T) {
	var off Backoff
	if off.Delay(0) != 0 || off.Delay(5) != 0 {
		t.Error("zero-value Backoff must be disabled (0 delays)")
	}
	b := Backoff{Base: time.Millisecond, Seed: 1} // Cap defaults to 32×Base
	for i := 0; i < 64; i++ {
		if got := b.Delay(i); got > 32*time.Millisecond {
			t.Fatalf("attempt %d: delay %v exceeds default cap 32ms", i, got)
		}
	}
}

// TestAdmissionRetryAfterScalesWithDepth pins the satellite behavior:
// the retry-after hint grows with the queue depth ahead of the
// rejected caller instead of being a constant.
func TestAdmissionRetryAfterScalesWithDepth(t *testing.T) {
	a := NewAdmission(4, 0)
	shallow := a.retryAfter(0)
	deep := a.retryAfter(40) // ten extra drain waves of 4
	if shallow <= 0 {
		t.Fatalf("retryAfter(0) = %v, want > 0", shallow)
	}
	if deep <= shallow {
		t.Errorf("retryAfter(40) = %v not > retryAfter(0) = %v", deep, shallow)
	}
	// Depth scaling dominates jitter: 10 extra waves must be at least
	// 5 hold-times apart even in the worst jitter draw.
	if deep-shallow < 5*10*time.Millisecond {
		t.Errorf("depth scaling too weak: Δ = %v over 10 waves", deep-shallow)
	}
	// Jitter decorrelates identical rejections without reordering depths.
	again := a.retryAfter(0)
	if again == shallow {
		t.Log("two rejections at equal depth drew equal jitter (possible, just unlikely)")
	}
	if again >= deep {
		t.Errorf("jitter reordered depths: retryAfter(0) = %v ≥ retryAfter(40) = %v", again, deep)
	}
}
