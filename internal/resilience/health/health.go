// Package health tracks per-node availability with an error-rate
// circuit breaker. Every simulated node gets an independent breaker:
//
//	Healthy ──(error rate / consecutive failures)──▶ Open
//	Open ──(OpenFor elapses, next Allow)──▶ HalfOpen
//	HalfOpen ──(ProbeSuccesses consecutive successes)──▶ Healthy
//	HalfOpen ──(any failure)──▶ Open
//
// While a node is Open, Allow reports false and the engine skips
// contacting the node entirely — no retries, straight to replica
// failover — so a dead node costs queries nothing after the breaker
// trips. Once OpenFor has elapsed, Allow lets probes through in the
// HalfOpen state; real successes close the breaker, a failure reopens
// it and restarts the clock.
//
// The tracker is fed by the engine's per-node operation outcomes
// (ReportSuccess / ReportFailure) and consulted by the serving layer
// for /healthz, the node_health metrics, and the advisor's recovery
// trigger. The clock is injectable so tests drive the Open→HalfOpen
// transition deterministically.
package health

import (
	"fmt"
	"sync"
	"time"
)

// State is a node breaker's position in the failure lifecycle.
type State int

const (
	// Healthy admits all operations.
	Healthy State = iota
	// Open rejects all operations: the node is considered dead.
	Open
	// HalfOpen admits probe operations after OpenFor elapsed; their
	// outcomes decide between closing and reopening.
	HalfOpen
)

// String returns the lowercase state name used in /healthz and logs.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config tunes the breakers. The zero value gets sensible defaults.
type Config struct {
	// Window is the sliding error-rate window (default 10s). Counts
	// reset when a window expires with no trip.
	Window time.Duration
	// MinSamples is the minimum operations inside the window before
	// the failure rate alone can trip the breaker (default 5).
	MinSamples int
	// FailureRate trips the breaker when failures/ops in the window
	// reaches it, given MinSamples (default 0.5).
	FailureRate float64
	// ConsecutiveFailures trips the breaker immediately after this
	// many back-to-back failures, regardless of rate (default 3) —
	// the fast path for a node that went fully dark.
	ConsecutiveFailures int
	// OpenFor is how long an Open breaker rejects before allowing a
	// half-open probe (default 1s).
	OpenFor time.Duration
	// ProbeSuccesses is how many consecutive half-open successes close
	// the breaker (default 2).
	ProbeSuccesses int
	// Now is the clock; nil means time.Now. Injectable for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 5
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 3
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 2
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// NodeStatus is one node's externally visible health.
type NodeStatus struct {
	Node  int
	State State
	// Failures and Successes are lifetime operation counts.
	Failures  int64
	Successes int64
}

// nodeState is one breaker. All fields are guarded by Tracker.mu.
type nodeState struct {
	state    State
	winStart time.Time // start of the current rate window
	winOps   int
	winFails int
	consec   int       // consecutive failures (Healthy only)
	openedAt time.Time // when the breaker last opened
	probeOK  int       // consecutive half-open successes

	failures  int64 // lifetime
	successes int64 // lifetime
}

// Tracker holds one breaker per node. All methods are safe for
// concurrent use and no-ops on a nil receiver (health tracking
// disabled).
type Tracker struct {
	cfg Config

	mu    sync.Mutex
	nodes []nodeState
}

// New returns a tracker for nodes breakers, all Healthy.
func New(nodes int, cfg Config) *Tracker {
	if nodes < 1 {
		nodes = 1
	}
	return &Tracker{cfg: cfg.withDefaults(), nodes: make([]nodeState, nodes)}
}

// Nodes returns the tracked node count (0 on nil).
func (t *Tracker) Nodes() int {
	if t == nil {
		return 0
	}
	return len(t.nodes)
}

// Allow reports whether an operation may contact node. Healthy and
// HalfOpen admit; Open admits nothing until OpenFor has elapsed, at
// which point the call itself transitions the breaker to HalfOpen and
// admits the probe. Out-of-range nodes and a nil tracker admit.
func (t *Tracker) Allow(node int) bool {
	if t == nil || node < 0 || node >= len(t.nodes) {
		return true
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := &t.nodes[node]
	if n.state != Open {
		return true
	}
	if t.cfg.Now().Sub(n.openedAt) >= t.cfg.OpenFor {
		n.state = HalfOpen
		n.probeOK = 0
		return true
	}
	return false
}

// ReportSuccess records a successful operation against node.
func (t *Tracker) ReportSuccess(node int) {
	if t == nil || node < 0 || node >= len(t.nodes) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := &t.nodes[node]
	n.successes++
	switch n.state {
	case Healthy:
		t.rotate(n)
		n.winOps++
		n.consec = 0
	case HalfOpen:
		n.probeOK++
		if n.probeOK >= t.cfg.ProbeSuccesses {
			*n = nodeState{failures: n.failures, successes: n.successes}
		}
	case Open:
		// A late success from an operation admitted before the trip:
		// ignored — only half-open probes close the breaker.
	}
}

// ReportFailure records a failed operation against node, possibly
// tripping (or re-tripping) the breaker.
func (t *Tracker) ReportFailure(node int) {
	if t == nil || node < 0 || node >= len(t.nodes) {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := &t.nodes[node]
	n.failures++
	now := t.cfg.Now()
	switch n.state {
	case Healthy:
		t.rotate(n)
		n.winOps++
		n.winFails++
		n.consec++
		tripRate := n.winOps >= t.cfg.MinSamples &&
			float64(n.winFails)/float64(n.winOps) >= t.cfg.FailureRate
		if n.consec >= t.cfg.ConsecutiveFailures || tripRate {
			n.state = Open
			n.openedAt = now
		}
	case HalfOpen:
		// A failed probe reopens and restarts the cool-down.
		n.state = Open
		n.openedAt = now
		n.probeOK = 0
	case Open:
		// A straggler failure while open extends the cool-down: the
		// node is demonstrably still failing.
		n.openedAt = now
	}
}

// rotate resets the rate window once it has fully elapsed, so stale
// failures from minutes ago cannot trip a now-quiet node. Caller
// holds mu; n must be Healthy.
func (t *Tracker) rotate(n *nodeState) {
	now := t.cfg.Now()
	if n.winStart.IsZero() || now.Sub(n.winStart) >= t.cfg.Window {
		n.winStart = now
		n.winOps = 0
		n.winFails = 0
	}
}

// State returns node's breaker state (Healthy when out of range/nil).
func (t *Tracker) State(node int) State {
	if t == nil || node < 0 || node >= len(t.nodes) {
		return Healthy
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nodes[node].state
}

// AnyOpen reports whether any breaker is not Healthy — the /healthz
// degradation condition.
func (t *Tracker) AnyOpen() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.nodes {
		if t.nodes[i].state != Healthy {
			return true
		}
	}
	return false
}

// Down returns the nodes whose breakers are not Healthy, ascending —
// the set the advisor re-replicates around.
func (t *Tracker) Down() []int {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var down []int
	for i := range t.nodes {
		if t.nodes[i].state != Healthy {
			down = append(down, i)
		}
	}
	return down
}

// RetryIn returns how long until node's Open breaker next admits a
// probe — the UnavailableError retry hint. Zero for a node that is
// not Open.
func (t *Tracker) RetryIn(node int) time.Duration {
	if t == nil || node < 0 || node >= len(t.nodes) {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := &t.nodes[node]
	if n.state != Open {
		return 0
	}
	left := t.cfg.OpenFor - t.cfg.Now().Sub(n.openedAt)
	if left < 0 {
		left = 0
	}
	return left
}

// Status snapshots every node's health, ascending by node.
func (t *Tracker) Status() []NodeStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]NodeStatus, len(t.nodes))
	for i := range t.nodes {
		n := &t.nodes[i]
		out[i] = NodeStatus{Node: i, State: n.state, Failures: n.failures, Successes: n.successes}
	}
	return out
}
