package health

import (
	"sync"
	"testing"
	"time"
)

// manualClock is a deterministic test clock.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Unix(1000, 0)}
}

func (c *manualClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testTracker(clk *manualClock) *Tracker {
	return New(4, Config{
		Window:              10 * time.Second,
		MinSamples:          4,
		FailureRate:         0.5,
		ConsecutiveFailures: 3,
		OpenFor:             time.Second,
		ProbeSuccesses:      2,
		Now:                 clk.now,
	})
}

func TestHealthConsecutiveFailuresTrip(t *testing.T) {
	clk := newManualClock()
	tr := testTracker(clk)
	for i := 0; i < 2; i++ {
		tr.ReportFailure(1)
		if got := tr.State(1); got != Healthy {
			t.Fatalf("after %d failures: state = %v, want healthy", i+1, got)
		}
	}
	tr.ReportFailure(1)
	if got := tr.State(1); got != Open {
		t.Fatalf("after 3 consecutive failures: state = %v, want open", got)
	}
	if tr.Allow(1) {
		t.Error("open breaker allowed an operation before OpenFor elapsed")
	}
	// Other nodes are untouched.
	if got := tr.State(0); got != Healthy {
		t.Errorf("node 0 state = %v, want healthy", got)
	}
	if !tr.Allow(0) {
		t.Error("healthy node 0 rejected")
	}
}

func TestHealthFailureRateTrip(t *testing.T) {
	clk := newManualClock()
	tr := testTracker(clk)
	// Interleave so consecutive failures never reach 3; the rate
	// (3 of 6 = 0.5 ≥ FailureRate with MinSamples met) must trip.
	seq := []bool{false, true, false, true, false, true}
	for _, fail := range seq {
		if fail {
			tr.ReportFailure(2)
		} else {
			tr.ReportSuccess(2)
		}
	}
	if got := tr.State(2); got != Open {
		t.Fatalf("state = %v, want open at 50%% failure rate", got)
	}
}

func TestHealthWindowRotationForgets(t *testing.T) {
	clk := newManualClock()
	tr := testTracker(clk)
	// Two failures, then the window expires: the stale counts must not
	// combine with fresh ones to trip the rate.
	tr.ReportFailure(0)
	tr.ReportFailure(0)
	clk.advance(11 * time.Second)
	tr.ReportSuccess(0) // rotates the window, clears consec too
	tr.ReportFailure(0)
	tr.ReportFailure(0)
	if got := tr.State(0); got != Healthy {
		t.Fatalf("state = %v, want healthy (stale window forgotten)", got)
	}
}

func TestHealthHalfOpenProbeRecovery(t *testing.T) {
	clk := newManualClock()
	tr := testTracker(clk)
	for i := 0; i < 3; i++ {
		tr.ReportFailure(3)
	}
	if got := tr.State(3); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
	if tr.RetryIn(3) != time.Second {
		t.Errorf("RetryIn = %v, want 1s", tr.RetryIn(3))
	}

	// Before OpenFor: rejected, still open.
	clk.advance(500 * time.Millisecond)
	if tr.Allow(3) {
		t.Fatal("allowed before OpenFor elapsed")
	}
	if got := tr.RetryIn(3); got != 500*time.Millisecond {
		t.Errorf("RetryIn = %v, want 500ms", got)
	}

	// After OpenFor: Allow transitions to half-open and admits.
	clk.advance(500 * time.Millisecond)
	if !tr.Allow(3) {
		t.Fatal("probe rejected after OpenFor elapsed")
	}
	if got := tr.State(3); got != HalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}

	// One success is not enough (ProbeSuccesses=2); the second closes.
	tr.ReportSuccess(3)
	if got := tr.State(3); got != HalfOpen {
		t.Fatalf("state after 1 probe success = %v, want half-open", got)
	}
	tr.ReportSuccess(3)
	if got := tr.State(3); got != Healthy {
		t.Fatalf("state after %d probe successes = %v, want healthy", 2, got)
	}
	// Recovered node is fully reset: three fresh failures re-trip.
	for i := 0; i < 3; i++ {
		tr.ReportFailure(3)
	}
	if got := tr.State(3); got != Open {
		t.Fatalf("recovered breaker did not re-trip: %v", got)
	}
}

func TestHealthHalfOpenFailureReopens(t *testing.T) {
	clk := newManualClock()
	tr := testTracker(clk)
	for i := 0; i < 3; i++ {
		tr.ReportFailure(0)
	}
	clk.advance(time.Second)
	if !tr.Allow(0) {
		t.Fatal("probe rejected")
	}
	tr.ReportFailure(0) // probe failed
	if got := tr.State(0); got != Open {
		t.Fatalf("state = %v, want open after failed probe", got)
	}
	// The cool-down restarted: still rejected before another OpenFor.
	clk.advance(500 * time.Millisecond)
	if tr.Allow(0) {
		t.Error("allowed before the restarted cool-down elapsed")
	}
}

func TestHealthStatusAndDown(t *testing.T) {
	clk := newManualClock()
	tr := testTracker(clk)
	if tr.AnyOpen() {
		t.Fatal("fresh tracker reports AnyOpen")
	}
	for i := 0; i < 3; i++ {
		tr.ReportFailure(2)
	}
	tr.ReportSuccess(0)
	if !tr.AnyOpen() {
		t.Fatal("AnyOpen = false with node 2 open")
	}
	down := tr.Down()
	if len(down) != 1 || down[0] != 2 {
		t.Fatalf("Down() = %v, want [2]", down)
	}
	st := tr.Status()
	if len(st) != 4 {
		t.Fatalf("Status() has %d entries, want 4", len(st))
	}
	if st[2].State != Open || st[2].Failures != 3 {
		t.Errorf("node 2 status = %+v, want open with 3 failures", st[2])
	}
	if st[0].State != Healthy || st[0].Successes != 1 {
		t.Errorf("node 0 status = %+v, want healthy with 1 success", st[0])
	}
}

func TestHealthNilAndOutOfRange(t *testing.T) {
	var tr *Tracker
	if !tr.Allow(0) || tr.AnyOpen() || tr.State(5) != Healthy || tr.Nodes() != 0 {
		t.Error("nil tracker must behave as all-healthy")
	}
	tr.ReportFailure(0) // must not panic
	tr.ReportSuccess(0)
	if tr.Down() != nil || tr.Status() != nil || tr.RetryIn(0) != 0 {
		t.Error("nil tracker must return empty snapshots")
	}

	real := New(2, Config{})
	real.ReportFailure(-1)
	real.ReportFailure(7)
	if !real.Allow(-1) || !real.Allow(7) {
		t.Error("out-of-range nodes must be admitted")
	}
	if real.AnyOpen() {
		t.Error("out-of-range reports must not affect tracked nodes")
	}
}

func TestHealthStateString(t *testing.T) {
	cases := map[State]string{Healthy: "healthy", Open: "open", HalfOpen: "half-open", State(9): "state(9)"}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
