package resilience

import (
	"sync/atomic"

	"sparqlopt/internal/obs"
)

// Budget is the process-wide memory accounting shared by every
// admitted query. Each query charges through its own Gauge; the
// budget enforces a per-query limit and a total limit across all live
// gauges. Accounting is approximate by design — it tracks the arena
// capacities the engine materializes and the optimizer's memo growth,
// not every allocation — but it is charged before the memory is
// touched, so a trip aborts the query instead of the process.
//
// A nil *Budget (and the nil *Gauge it hands out) disables all
// accounting: every method is a nil-receiver no-op.
type Budget struct {
	perQuery int64 // per-query limit in bytes; 0 = unlimited
	total    int64 // process-wide limit in bytes; 0 = unlimited

	used  atomic.Int64 // bytes reserved across all live gauges
	trips *obs.Counter // optional resilience_budget_trips_total hook
}

// NewBudget returns a budget enforcing perQuery bytes per query and
// total bytes across all concurrent queries; either limit may be 0
// (unlimited). When both are 0 it returns nil — accounting disabled.
func NewBudget(perQuery, total int64) *Budget {
	if perQuery <= 0 && total <= 0 {
		return nil
	}
	if perQuery < 0 {
		perQuery = 0
	}
	if total < 0 {
		total = 0
	}
	return &Budget{perQuery: perQuery, total: total}
}

// PerQuery returns the per-query limit in bytes (0 = unlimited).
func (b *Budget) PerQuery() int64 {
	if b == nil {
		return 0
	}
	return b.perQuery
}

// Total returns the process-wide limit in bytes (0 = unlimited).
func (b *Budget) Total() int64 {
	if b == nil {
		return 0
	}
	return b.total
}

// Used returns the bytes currently reserved across all live gauges.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// SetTripCounter wires the budget's trip events to a metrics counter.
func (b *Budget) SetTripCounter(c *obs.Counter) {
	if b != nil {
		b.trips = c
	}
}

func (b *Budget) trip() {
	if b.trips != nil {
		b.trips.Inc()
	}
}

// NewGauge returns a fresh per-query gauge charging against b. A nil
// budget returns a nil gauge, the disabled value.
func (b *Budget) NewGauge() *Gauge {
	if b == nil {
		return nil
	}
	return &Gauge{b: b}
}

// Gauge is one query's memory meter (the tentpole's MemoryGauge). The
// engine's relation arenas and the optimizer's memo reserve through
// it; Reset at end of query (or between fallback-ladder attempts)
// returns everything to the shared budget. All methods are safe on a
// nil receiver and for concurrent use by the query's workers.
type Gauge struct {
	b    *Budget
	used atomic.Int64
	peak atomic.Int64
}

// Reserve charges n bytes for site, failing with a *BudgetError
// (matching ErrBudgetExceeded) naming the site when either the query's
// or the process-wide limit would be exceeded. A failed reservation
// charges nothing.
func (g *Gauge) Reserve(site string, n int64) error {
	if g == nil || n <= 0 {
		return nil
	}
	b := g.b
	u := g.used.Add(n)
	if b.perQuery > 0 && u > b.perQuery {
		g.used.Add(-n)
		b.trip()
		return &BudgetError{Site: site, Requested: n, Used: u - n, Limit: b.perQuery}
	}
	t := b.used.Add(n)
	if b.total > 0 && t > b.total {
		b.used.Add(-n)
		g.used.Add(-n)
		b.trip()
		return &BudgetError{Site: site, Requested: n, Used: t - n, Limit: b.total, Shared: true}
	}
	for {
		p := g.peak.Load()
		if u <= p || g.peak.CompareAndSwap(p, u) {
			return nil
		}
	}
}

// Peak returns the high-water mark of this query's reservations —
// the largest value Used has reached. Unlike Used it survives
// Release/Reset, so benchmarks can read a query's true peak footprint
// after the run finishes.
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// Release returns n bytes to both the query's and the process meter —
// called when an intermediate result dies before the query ends.
func (g *Gauge) Release(n int64) {
	if g == nil || n <= 0 {
		return
	}
	g.used.Add(-n)
	g.b.used.Add(-n)
}

// Used returns the bytes this query currently has reserved.
func (g *Gauge) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Reset releases everything the gauge holds: end of query, or between
// fallback-ladder attempts (a failed optimization's memo charges must
// not count against the retry).
func (g *Gauge) Reset() {
	if g == nil {
		return
	}
	if n := g.used.Swap(0); n != 0 {
		g.b.used.Add(-n)
	}
}
