// Package rdf provides the core RDF data model: dictionary-encoded
// terms, triples, and the directed labeled RDF graph G_R = (V_R, E_R)
// of paper §II-A.
//
// Terms (IRIs and literals) are interned into a Dict, so a triple is
// three integer IDs. Subjects and objects become graph vertices;
// predicates become edge labels.
//
// A Dataset is multi-version: every committed write publishes a new
// immutable Snapshot (an append-side delta over a shared backing
// array), and readers pin one Snapshot for the life of a query, so
// ingest never blocks or perturbs the serving path.
package rdf

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// TermID identifies an interned term. IDs are dense, starting at 0.
type TermID uint32

// Triple is a single RDF statement ⟨subject, predicate, object⟩.
type Triple struct {
	S, P, O TermID
}

// Less orders triples lexicographically by (S, P, O).
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}

// Dict interns term strings and assigns dense TermIDs. The zero value
// is ready to use. Interning serializes against lookups, so terms can
// be added while the serving path resolves query constants.
type Dict struct {
	mu    sync.RWMutex
	ids   map[string]TermID
	terms []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: make(map[string]TermID)} }

// Intern returns the ID for term, assigning a fresh one if needed.
func (d *Dict) Intern(term string) TermID {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.ids == nil {
		d.ids = make(map[string]TermID)
	}
	if id, ok := d.ids[term]; ok {
		return id
	}
	id := TermID(len(d.terms))
	d.ids[term] = id
	d.terms = append(d.terms, term)
	return id
}

// Lookup returns the ID for term, if it has been interned.
func (d *Dict) Lookup(term string) (TermID, bool) {
	d.mu.RLock()
	id, ok := d.ids[term]
	d.mu.RUnlock()
	return id, ok
}

// Term returns the string for id. It panics if id was never assigned.
func (d *Dict) Term(id TermID) string {
	d.mu.RLock()
	s := d.terms[id]
	d.mu.RUnlock()
	return s
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.terms)
	d.mu.RUnlock()
	return n
}

// Snapshot is an immutable view of a dataset at one epoch. The triple
// slice is capped at both length and capacity, so writer appends past
// it never become visible; a pinned Snapshot therefore yields
// bit-identical scans regardless of concurrent ingest.
type Snapshot struct {
	dict    *Dict
	triples []Triple
	epoch   uint64
}

// Dict returns the dictionary shared with the dataset. The dictionary
// is append-only and internally synchronized, so resolving terms
// through an old snapshot is always safe.
func (s *Snapshot) Dict() *Dict { return s.dict }

// Triples returns the immutable triple slice. Callers must not mutate
// it.
func (s *Snapshot) Triples() []Triple { return s.triples }

// Epoch returns the epoch at which this snapshot was published.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Len returns the number of triples in the snapshot.
func (s *Snapshot) Len() int { return len(s.triples) }

// WriteDelta describes one committed write: the triples that were
// actually inserted (duplicates are filtered out before commit), the
// epoch the commit published, and the snapshot that includes it.
type WriteDelta struct {
	Triples []Triple
	Epoch   uint64
	Snap    *Snapshot
}

// ChangeSet summarizes which predicates changed across a span of
// epochs. All reports a structural change that cannot be attributed to
// specific predicates (a placement migration, a Dedup reorder);
// consumers must treat it as touching everything.
type ChangeSet struct {
	All   bool
	Preds map[TermID]struct{}
}

// Empty reports whether the span contained no changes at all.
func (c ChangeSet) Empty() bool { return !c.All && len(c.Preds) == 0 }

// Touches reports whether the change set may affect artifacts derived
// from the given predicates. wildcard marks an artifact whose
// predicate set is unknown (e.g. a query with a variable predicate).
func (c ChangeSet) Touches(preds map[TermID]struct{}, wildcard bool) bool {
	if c.Empty() {
		return false
	}
	if c.All || wildcard {
		return true
	}
	for p := range c.Preds {
		if _, ok := preds[p]; ok {
			return true
		}
	}
	return false
}

// Dataset is a set of triples together with the dictionary that
// encodes them.
//
// A Dataset carries a monotonically increasing epoch, bumped by every
// committed mutation. Consumers that cache anything derived from the
// triples — collected statistics, optimized plans — record the epoch
// they observed and use ChangedBetween to decide whether (and how
// much of) their artifact is stale.
//
// Writes go through Add/AddTriple/AddBatch, which deduplicate at
// insert (re-adding a present triple is a no-op: no epoch bump, no
// invalidation), publish a fresh immutable Snapshot, and fire OnCommit
// hooks. Readers call Snapshot() once and use it for the whole query.
// Code that appends to Triples directly bypasses all of this; it is
// only legal before the dataset starts serving.
type Dataset struct {
	Dict    *Dict
	Triples []Triple

	epoch atomic.Uint64
	snap  atomic.Pointer[Snapshot]

	mu    sync.Mutex          // serializes writers
	index map[Triple]struct{} // lazy membership set, built on first write

	modMu       sync.RWMutex      // guards predLastMod and wildcard
	predLastMod map[TermID]uint64 // predicate → epoch of its last change
	wildcard    uint64            // epoch of the last unattributable change

	hooks  map[int]func(WriteDelta)
	hookID int
}

// NewDataset returns an empty dataset with a fresh dictionary.
func NewDataset() *Dataset { return &Dataset{Dict: NewDict()} }

// Add interns the three terms and inserts the triple. Inserting a
// triple that is already present is a no-op: the epoch does not move
// and no snapshot is published.
func (ds *Dataset) Add(s, p, o string) Triple {
	t := Triple{ds.Dict.Intern(s), ds.Dict.Intern(p), ds.Dict.Intern(o)}
	ds.AddTriple(t)
	return t
}

// AddTriple inserts an already-encoded triple. Duplicates are no-ops.
func (ds *Dataset) AddTriple(t Triple) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if !ds.insertLocked(t) {
		return
	}
	ds.publishLocked([]Triple{t})
}

// AddBatch inserts a batch of triples under one commit: one epoch
// bump, one snapshot, one OnCommit delta carrying exactly the triples
// that were new. Returns the number inserted.
func (ds *Dataset) AddBatch(ts []Triple) int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	var delta []Triple
	for _, t := range ts {
		if ds.insertLocked(t) {
			delta = append(delta, t)
		}
	}
	if len(delta) == 0 {
		return 0
	}
	ds.publishLocked(delta)
	return len(delta)
}

// insertLocked appends t unless already present. Caller holds ds.mu.
func (ds *Dataset) insertLocked(t Triple) bool {
	if ds.index == nil {
		ds.index = make(map[Triple]struct{}, len(ds.Triples)*2)
		for _, u := range ds.Triples {
			ds.index[u] = struct{}{}
		}
	}
	if _, dup := ds.index[t]; dup {
		return false
	}
	ds.index[t] = struct{}{}
	ds.Triples = append(ds.Triples, t)
	return true
}

// publishLocked commits a write: bumps the epoch, records the touched
// predicates, publishes the new snapshot, and fires the commit hooks
// (synchronously, still under ds.mu, so hooks observe commits in
// order). Caller holds ds.mu.
func (ds *Dataset) publishLocked(delta []Triple) {
	epoch := ds.epoch.Add(1)
	ds.modMu.Lock()
	if ds.predLastMod == nil {
		ds.predLastMod = make(map[TermID]uint64)
	}
	for _, t := range delta {
		ds.predLastMod[t.P] = epoch
	}
	ds.modMu.Unlock()
	snap := &Snapshot{dict: ds.Dict, triples: ds.Triples[:len(ds.Triples):len(ds.Triples)], epoch: epoch}
	ds.snap.Store(snap)
	if len(ds.hooks) > 0 {
		wd := WriteDelta{Triples: delta, Epoch: epoch, Snap: snap}
		for _, h := range ds.hooks {
			h(wd)
		}
	}
}

// Snapshot returns the most recently published immutable snapshot. For
// a dataset that has never committed a write through the mutation
// methods (e.g. one assembled by hand before serving), it returns a
// view of the current state.
func (ds *Dataset) Snapshot() *Snapshot {
	if s := ds.snap.Load(); s != nil {
		return s
	}
	return &Snapshot{dict: ds.Dict, triples: ds.Triples[:len(ds.Triples):len(ds.Triples)], epoch: ds.epoch.Load()}
}

// OnCommit registers a hook fired after every committed write, in
// commit order, with the dataset's writer lock held (hooks must not
// call back into mutation methods). The returned function unregisters
// the hook.
func (ds *Dataset) OnCommit(h func(WriteDelta)) func() {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.hooks == nil {
		ds.hooks = make(map[int]func(WriteDelta))
	}
	id := ds.hookID
	ds.hookID++
	ds.hooks[id] = h
	return func() {
		ds.mu.Lock()
		defer ds.mu.Unlock()
		delete(ds.hooks, id)
	}
}

// Epoch returns the dataset's mutation counter. Two calls returning
// the same value bracket a span with no committed mutations, so
// statistics or plans derived in between are still valid.
func (ds *Dataset) Epoch() uint64 { return ds.epoch.Load() }

// BumpEpoch advances the epoch without changing the triples — the
// invalidation hook for consumers whose cached artifacts depend on
// more than the triple set (e.g. plans costed under a data placement
// that a background migration just changed). The change is recorded as
// unattributable: every predicate-scoped artifact is considered
// touched. Safe to call concurrently with readers.
func (ds *Dataset) BumpEpoch() uint64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	epoch := ds.epoch.Add(1)
	ds.modMu.Lock()
	ds.wildcard = epoch
	ds.modMu.Unlock()
	ds.snap.Store(&Snapshot{dict: ds.Dict, triples: ds.Triples[:len(ds.Triples):len(ds.Triples)], epoch: epoch})
	return epoch
}

// BumpEpochPreds advances the epoch like BumpEpoch but attributes the
// change to the given predicates, so cached artifacts over disjoint
// predicate sets survive. Used by placement migrations, which move
// whole predicate groups.
func (ds *Dataset) BumpEpochPreds(preds ...TermID) uint64 {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	epoch := ds.epoch.Add(1)
	ds.modMu.Lock()
	if ds.predLastMod == nil {
		ds.predLastMod = make(map[TermID]uint64)
	}
	for _, p := range preds {
		ds.predLastMod[p] = epoch
	}
	ds.modMu.Unlock()
	ds.snap.Store(&Snapshot{dict: ds.Dict, triples: ds.Triples[:len(ds.Triples):len(ds.Triples)], epoch: epoch})
	return epoch
}

// ChangedBetween summarizes what changed in the epoch span (from, to].
// A consumer holding an artifact collected at epoch `from` calls this
// when it observes the dataset at epoch `to`; an Empty result means
// the artifact is still exactly valid.
func (ds *Dataset) ChangedBetween(from, to uint64) ChangeSet {
	if to <= from {
		return ChangeSet{}
	}
	ds.modMu.RLock()
	defer ds.modMu.RUnlock()
	if ds.wildcard > from && ds.wildcard <= to {
		return ChangeSet{All: true}
	}
	var preds map[TermID]struct{}
	for p, e := range ds.predLastMod {
		if e > from && e <= to {
			if preds == nil {
				preds = make(map[TermID]struct{})
			}
			preds[p] = struct{}{}
		}
	}
	return ChangeSet{Preds: preds}
}

// Len returns the number of triples.
func (ds *Dataset) Len() int {
	if s := ds.snap.Load(); s != nil {
		return len(s.triples)
	}
	return len(ds.Triples)
}

// Dedup sorts the triples and removes exact duplicates. The sorted set
// is built copy-on-write so previously published snapshots keep their
// rows; the reorder is recorded as an unattributable change.
func (ds *Dataset) Dedup() {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	sorted := make([]Triple, len(ds.Triples))
	copy(sorted, ds.Triples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	out := sorted[:0]
	for i, t := range sorted {
		if i == 0 || t != sorted[i-1] {
			out = append(out, t)
		}
	}
	ds.Triples = out
	if ds.index != nil {
		ds.index = make(map[Triple]struct{}, len(out)*2)
		for _, t := range out {
			ds.index[t] = struct{}{}
		}
	}
	epoch := ds.epoch.Add(1)
	ds.modMu.Lock()
	ds.wildcard = epoch
	ds.modMu.Unlock()
	ds.snap.Store(&Snapshot{dict: ds.Dict, triples: ds.Triples[:len(ds.Triples):len(ds.Triples)], epoch: epoch})
}

// String renders a triple using the dataset's dictionary, for debugging.
func (ds *Dataset) String(t Triple) string {
	return fmt.Sprintf("<%s> <%s> <%s>", ds.Dict.Term(t.S), ds.Dict.Term(t.P), ds.Dict.Term(t.O))
}

// Edge is one outgoing or incoming labeled edge of a graph vertex.
type Edge struct {
	Pred TermID // edge label (predicate)
	To   TermID // neighbor vertex (object for Out, subject for In)
}

// Graph is the directed labeled RDF graph view of a dataset: for every
// vertex (term appearing as a subject or object) it records the
// outgoing and incoming labeled edges.
type Graph struct {
	out map[TermID][]Edge
	in  map[TermID][]Edge
	n   int // triple count
}

// NewGraph builds the graph view of the given triples.
func NewGraph(triples []Triple) *Graph {
	g := &Graph{out: make(map[TermID][]Edge), in: make(map[TermID][]Edge)}
	for _, t := range triples {
		g.Add(t)
	}
	return g
}

// Add inserts one triple into the graph.
func (g *Graph) Add(t Triple) {
	g.out[t.S] = append(g.out[t.S], Edge{Pred: t.P, To: t.O})
	g.in[t.O] = append(g.in[t.O], Edge{Pred: t.P, To: t.S})
	g.n++
}

// Out returns the outgoing edges of v (v as subject).
func (g *Graph) Out(v TermID) []Edge { return g.out[v] }

// In returns the incoming edges of v (v as object).
func (g *Graph) In(v TermID) []Edge { return g.in[v] }

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// Vertices calls f once for every vertex of the graph (any term that
// appears as a subject or object). Iteration stops if f returns false.
func (g *Graph) Vertices(f func(v TermID) bool) {
	seen := make(map[TermID]bool, len(g.out)+len(g.in))
	for v := range g.out {
		seen[v] = true
		if !f(v) {
			return
		}
	}
	for v := range g.in {
		if !seen[v] {
			if !f(v) {
				return
			}
		}
	}
}

// NumVertices returns the number of distinct vertices.
func (g *Graph) NumVertices() int {
	n := 0
	g.Vertices(func(TermID) bool { n++; return true })
	return n
}
