// Package rdf provides the core RDF data model: dictionary-encoded
// terms, triples, and the directed labeled RDF graph G_R = (V_R, E_R)
// of paper §II-A.
//
// Terms (IRIs and literals) are interned into a Dict, so a triple is
// three integer IDs. Subjects and objects become graph vertices;
// predicates become edge labels.
package rdf

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// TermID identifies an interned term. IDs are dense, starting at 0.
type TermID uint32

// Triple is a single RDF statement ⟨subject, predicate, object⟩.
type Triple struct {
	S, P, O TermID
}

// Less orders triples lexicographically by (S, P, O).
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}

// Dict interns term strings and assigns dense TermIDs.
// The zero value is ready to use.
type Dict struct {
	ids   map[string]TermID
	terms []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict { return &Dict{ids: make(map[string]TermID)} }

// Intern returns the ID for term, assigning a fresh one if needed.
func (d *Dict) Intern(term string) TermID {
	if d.ids == nil {
		d.ids = make(map[string]TermID)
	}
	if id, ok := d.ids[term]; ok {
		return id
	}
	id := TermID(len(d.terms))
	d.ids[term] = id
	d.terms = append(d.terms, term)
	return id
}

// Lookup returns the ID for term, if it has been interned.
func (d *Dict) Lookup(term string) (TermID, bool) {
	id, ok := d.ids[term]
	return id, ok
}

// Term returns the string for id. It panics if id was never assigned.
func (d *Dict) Term(id TermID) string { return d.terms[id] }

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.terms) }

// Dataset is a set of triples together with the dictionary that
// encodes them.
//
// A Dataset carries a monotonically increasing epoch, bumped by every
// mutation through its methods (Add, AddTriple, Dedup) and by
// BumpEpoch. Consumers that cache anything derived from the triples —
// collected statistics, optimized plans — record the epoch they
// observed and treat a moved epoch as an invalidation signal. Code
// that appends to Triples directly bypasses the epoch; all in-tree
// mutators go through the methods. The epoch is atomic so background
// invalidators (the adaptive-repartitioning advisor) can flip it while
// the serving path reads it.
type Dataset struct {
	Dict    *Dict
	Triples []Triple

	epoch atomic.Uint64
}

// NewDataset returns an empty dataset with a fresh dictionary.
func NewDataset() *Dataset { return &Dataset{Dict: NewDict()} }

// Add interns the three terms and appends the triple.
func (ds *Dataset) Add(s, p, o string) Triple {
	t := Triple{ds.Dict.Intern(s), ds.Dict.Intern(p), ds.Dict.Intern(o)}
	ds.Triples = append(ds.Triples, t)
	ds.epoch.Add(1)
	return t
}

// AddTriple appends an already-encoded triple.
func (ds *Dataset) AddTriple(t Triple) {
	ds.Triples = append(ds.Triples, t)
	ds.epoch.Add(1)
}

// Epoch returns the dataset's mutation counter. Two calls returning
// the same value bracket a span with no method-level mutations, so
// statistics or plans derived in between are still valid.
func (ds *Dataset) Epoch() uint64 { return ds.epoch.Load() }

// BumpEpoch advances the epoch without changing the triples — the
// invalidation hook for consumers whose cached artifacts depend on
// more than the triple set (e.g. plans costed under a data placement
// that a background migration just changed). Safe to call concurrently
// with Epoch readers.
func (ds *Dataset) BumpEpoch() uint64 { return ds.epoch.Add(1) }

// Len returns the number of triples.
func (ds *Dataset) Len() int { return len(ds.Triples) }

// Dedup sorts the triples and removes exact duplicates.
func (ds *Dataset) Dedup() {
	sort.Slice(ds.Triples, func(i, j int) bool { return ds.Triples[i].Less(ds.Triples[j]) })
	out := ds.Triples[:0]
	for i, t := range ds.Triples {
		if i == 0 || t != ds.Triples[i-1] {
			out = append(out, t)
		}
	}
	ds.Triples = out
	ds.epoch.Add(1)
}

// String renders a triple using the dataset's dictionary, for debugging.
func (ds *Dataset) String(t Triple) string {
	return fmt.Sprintf("<%s> <%s> <%s>", ds.Dict.Term(t.S), ds.Dict.Term(t.P), ds.Dict.Term(t.O))
}

// Edge is one outgoing or incoming labeled edge of a graph vertex.
type Edge struct {
	Pred TermID // edge label (predicate)
	To   TermID // neighbor vertex (object for Out, subject for In)
}

// Graph is the directed labeled RDF graph view of a dataset: for every
// vertex (term appearing as a subject or object) it records the
// outgoing and incoming labeled edges.
type Graph struct {
	out map[TermID][]Edge
	in  map[TermID][]Edge
	n   int // triple count
}

// NewGraph builds the graph view of the given triples.
func NewGraph(triples []Triple) *Graph {
	g := &Graph{out: make(map[TermID][]Edge), in: make(map[TermID][]Edge)}
	for _, t := range triples {
		g.Add(t)
	}
	return g
}

// Add inserts one triple into the graph.
func (g *Graph) Add(t Triple) {
	g.out[t.S] = append(g.out[t.S], Edge{Pred: t.P, To: t.O})
	g.in[t.O] = append(g.in[t.O], Edge{Pred: t.P, To: t.S})
	g.n++
}

// Out returns the outgoing edges of v (v as subject).
func (g *Graph) Out(v TermID) []Edge { return g.out[v] }

// In returns the incoming edges of v (v as object).
func (g *Graph) In(v TermID) []Edge { return g.in[v] }

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// Vertices calls f once for every vertex of the graph (any term that
// appears as a subject or object). Iteration stops if f returns false.
func (g *Graph) Vertices(f func(v TermID) bool) {
	seen := make(map[TermID]bool, len(g.out)+len(g.in))
	for v := range g.out {
		seen[v] = true
		if !f(v) {
			return
		}
	}
	for v := range g.in {
		if !seen[v] {
			if !f(v) {
				return
			}
		}
	}
}

// NumVertices returns the number of distinct vertices.
func (g *Graph) NumVertices() int {
	n := 0
	g.Vertices(func(TermID) bool { n++; return true })
	return n
}
