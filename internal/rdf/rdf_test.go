package rdf

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestDictIntern(t *testing.T) {
	d := NewDict()
	a := d.Intern("a")
	b := d.Intern("b")
	if a == b {
		t.Fatal("distinct terms share an ID")
	}
	if d.Intern("a") != a {
		t.Error("re-interning returned a different ID")
	}
	if d.Term(a) != "a" || d.Term(b) != "b" {
		t.Error("Term round-trip failed")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if id, ok := d.Lookup("b"); !ok || id != b {
		t.Error("Lookup failed")
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup of missing term succeeded")
	}
}

func TestDictZeroValue(t *testing.T) {
	var d Dict
	id := d.Intern("x")
	if d.Term(id) != "x" {
		t.Error("zero-value Dict unusable")
	}
}

func TestDatasetAddAndString(t *testing.T) {
	ds := NewDataset()
	tr := ds.Add("s", "p", "o")
	if ds.Len() != 1 {
		t.Fatalf("Len = %d", ds.Len())
	}
	if got := ds.String(tr); got != "<s> <p> <o>" {
		t.Errorf("String = %q", got)
	}
}

func TestDatasetDedup(t *testing.T) {
	ds := NewDataset()
	ds.Add("a", "p", "b")
	ds.Add("a", "p", "b")
	ds.Add("b", "p", "c")
	ds.Add("a", "p", "b")
	ds.Dedup()
	if ds.Len() != 2 {
		t.Fatalf("after Dedup Len = %d, want 2", ds.Len())
	}
	// Dedup also sorts.
	if !ds.Triples[0].Less(ds.Triples[1]) {
		t.Error("Dedup did not sort")
	}
}

func TestTripleLess(t *testing.T) {
	a := Triple{1, 1, 1}
	cases := []struct {
		b    Triple
		want bool
	}{
		{Triple{2, 0, 0}, true},
		{Triple{1, 2, 0}, true},
		{Triple{1, 1, 2}, true},
		{Triple{1, 1, 1}, false},
		{Triple{0, 9, 9}, false},
	}
	for _, c := range cases {
		if a.Less(c.b) != c.want {
			t.Errorf("Less(%v, %v) = %v, want %v", a, c.b, a.Less(c.b), c.want)
		}
	}
}

func TestGraphEdges(t *testing.T) {
	ds := NewDataset()
	ds.Add("a", "p", "b")
	ds.Add("a", "q", "c")
	ds.Add("b", "p", "c")
	g := NewGraph(ds.Triples)

	aid, _ := ds.Dict.Lookup("a")
	bid, _ := ds.Dict.Lookup("b")
	cid, _ := ds.Dict.Lookup("c")

	if len(g.Out(aid)) != 2 {
		t.Errorf("Out(a) = %v", g.Out(aid))
	}
	if len(g.In(cid)) != 2 {
		t.Errorf("In(c) = %v", g.In(cid))
	}
	if len(g.Out(cid)) != 0 {
		t.Errorf("Out(c) = %v", g.Out(cid))
	}
	if len(g.In(bid)) != 1 || g.In(bid)[0].To != aid {
		t.Errorf("In(b) = %v", g.In(bid))
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3", g.NumVertices())
	}
}

func TestGraphVerticesEarlyStop(t *testing.T) {
	ds := NewDataset()
	ds.Add("a", "p", "b")
	ds.Add("c", "p", "d")
	g := NewGraph(ds.Triples)
	n := 0
	g.Vertices(func(TermID) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("visited %d vertices after early stop", n)
	}
}

// Property: interning a list of strings and resolving the IDs returns
// the original strings.
func TestQuickDictRoundTrip(t *testing.T) {
	f := func(terms []string) bool {
		d := NewDict()
		for _, s := range terms {
			if d.Term(d.Intern(s)) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: every triple contributes exactly one Out and one In edge.
func TestQuickGraphDegreeSum(t *testing.T) {
	f := func(raw []struct{ S, P, O uint8 }) bool {
		triples := make([]Triple, len(raw))
		for i, r := range raw {
			triples[i] = Triple{TermID(r.S), TermID(r.P), TermID(r.O)}
		}
		g := NewGraph(triples)
		outSum, inSum := 0, 0
		g.Vertices(func(v TermID) bool {
			outSum += len(g.Out(v))
			inSum += len(g.In(v))
			return true
		})
		return outSum == len(triples) && inSum == len(triples)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDatasetEpoch(t *testing.T) {
	ds := NewDataset()
	if ds.Epoch() != 0 {
		t.Fatalf("fresh dataset epoch %d, want 0", ds.Epoch())
	}
	tr := ds.Add("a", "p", "b")
	if ds.Epoch() != 1 {
		t.Errorf("epoch after Add = %d, want 1", ds.Epoch())
	}
	// Re-inserting a present triple is a full no-op: no epoch bump, so
	// caches keyed on the epoch are not invalidated for nothing.
	ds.AddTriple(tr)
	if ds.Epoch() != 1 {
		t.Errorf("epoch after duplicate AddTriple = %d, want 1 (no-op)", ds.Epoch())
	}
	if ds.Len() != 1 {
		t.Errorf("Len after duplicate = %d, want 1", ds.Len())
	}
	ds.Add("a", "p", "b")
	if ds.Epoch() != 1 {
		t.Errorf("epoch after duplicate Add = %d, want 1 (no-op)", ds.Epoch())
	}
	before := ds.Epoch()
	ds.Dedup()
	if ds.Epoch() <= before {
		t.Errorf("Dedup must bump the epoch: %d -> %d", before, ds.Epoch())
	}
}

func TestAddBatchDelta(t *testing.T) {
	ds := NewDataset()
	a := ds.Add("a", "p", "b")
	var got []WriteDelta
	off := ds.OnCommit(func(wd WriteDelta) { got = append(got, wd) })
	c := Triple{ds.Dict.Intern("c"), ds.Dict.Intern("q"), ds.Dict.Intern("d")}
	e := Triple{ds.Dict.Intern("e"), ds.Dict.Intern("q"), ds.Dict.Intern("f")}
	if n := ds.AddBatch([]Triple{a, c, e, c}); n != 2 {
		t.Fatalf("AddBatch inserted %d, want 2 (duplicates filtered)", n)
	}
	if ds.Epoch() != 2 {
		t.Fatalf("epoch %d, want 2 (one bump per batch)", ds.Epoch())
	}
	if len(got) != 1 || len(got[0].Triples) != 2 || got[0].Epoch != 2 {
		t.Fatalf("delta %+v, want one commit with the 2 new triples at epoch 2", got)
	}
	if got[0].Snap.Len() != 3 {
		t.Fatalf("delta snapshot Len %d, want 3", got[0].Snap.Len())
	}
	// An all-duplicate batch commits nothing.
	if n := ds.AddBatch([]Triple{a, c}); n != 0 {
		t.Fatalf("duplicate batch inserted %d, want 0", n)
	}
	if len(got) != 1 || ds.Epoch() != 2 {
		t.Fatalf("duplicate batch committed: %d deltas, epoch %d", len(got), ds.Epoch())
	}
	off()
	ds.Add("g", "q", "h")
	if len(got) != 1 {
		t.Fatal("hook fired after unregister")
	}
}

func TestSnapshotImmutable(t *testing.T) {
	ds := NewDataset()
	ds.Add("a", "p", "b")
	snap := ds.Snapshot()
	if snap.Len() != 1 || snap.Epoch() != 1 {
		t.Fatalf("snapshot len=%d epoch=%d", snap.Len(), snap.Epoch())
	}
	// Later writes must not leak into the pinned snapshot, even though
	// they append to the same backing dataset.
	for i := 0; i < 100; i++ {
		ds.Add("a", "p", fmt.Sprintf("o%d", i))
	}
	if snap.Len() != 1 {
		t.Fatalf("pinned snapshot grew to %d", snap.Len())
	}
	if got := ds.Snapshot().Len(); got != 101 {
		t.Fatalf("fresh snapshot Len %d, want 101", got)
	}
	// The slice is capacity-capped: appending to it cannot scribble on
	// the dataset's tail.
	if c := cap(snap.Triples()); c != 1 {
		t.Fatalf("snapshot cap %d, want 1", c)
	}
}

func TestChangedBetween(t *testing.T) {
	ds := NewDataset()
	ds.Add("a", "p", "b") // epoch 1
	ds.Add("c", "q", "d") // epoch 2
	p, _ := ds.Dict.Lookup("p")
	q, _ := ds.Dict.Lookup("q")
	if cs := ds.ChangedBetween(2, 2); !cs.Empty() {
		t.Fatalf("empty span reported changes: %+v", cs)
	}
	cs := ds.ChangedBetween(1, 2)
	if cs.All || len(cs.Preds) != 1 {
		t.Fatalf("span (1,2] = %+v, want exactly predicate q", cs)
	}
	if _, ok := cs.Preds[q]; !ok {
		t.Fatalf("span (1,2] missed predicate q: %+v", cs)
	}
	if !cs.Touches(map[TermID]struct{}{q: {}}, false) {
		t.Error("change set must touch artifacts over q")
	}
	if cs.Touches(map[TermID]struct{}{p: {}}, false) {
		t.Error("change set must not touch artifacts over p only")
	}
	if !cs.Touches(map[TermID]struct{}{p: {}}, true) {
		t.Error("wildcard artifacts are always touched")
	}
	// An unattributable bump poisons the whole span.
	ds.BumpEpoch() // epoch 3
	if cs := ds.ChangedBetween(1, 3); !cs.All {
		t.Fatalf("span across BumpEpoch = %+v, want All", cs)
	}
	// A predicate-attributed bump does not.
	ds.BumpEpochPreds(p) // epoch 4
	cs = ds.ChangedBetween(3, 4)
	if cs.All {
		t.Fatalf("span across BumpEpochPreds = %+v, want attributed", cs)
	}
	if _, ok := cs.Preds[p]; !ok {
		t.Fatalf("span (3,4] missed predicate p: %+v", cs)
	}
}
