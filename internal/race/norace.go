//go:build !race

// Package race exposes whether the binary was built with the race
// detector, so benchmarks can skip workloads whose instrumented
// slowdown (typically 5–20×) would blow past any reasonable timeout.
package race

// Enabled is true when the race detector is active.
const Enabled = false
