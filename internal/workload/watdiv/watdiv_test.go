package watdiv

import (
	"testing"

	"sparqlopt/internal/engine"

	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/stats"
)

func TestTemplatesCountAndShape(t *testing.T) {
	ts := Templates(1)
	if len(ts) != NumTemplates {
		t.Fatalf("%d templates, want %d", len(ts), NumTemplates)
	}
	starHeavy := 0
	for _, tpl := range ts {
		if tpl.Query == nil || len(tpl.Query.Patterns) < 2 || len(tpl.Query.Patterns) > 10 {
			t.Fatalf("template %d malformed", tpl.ID)
		}
		jg, err := querygraph.NewJoinGraph(tpl.Query)
		if err != nil {
			t.Fatalf("template %d: %v", tpl.ID, err)
		}
		if !jg.Connected(jg.All()) {
			t.Errorf("template %d disconnected", tpl.ID)
		}
		switch jg.Classify() {
		case querygraph.Star, querygraph.Tree:
			starHeavy++
		}
	}
	// "Most query templates in WatDiv are star queries or joins of a
	// few star queries" — at least half should be stars/trees.
	if starHeavy < NumTemplates/2 {
		t.Errorf("only %d/%d templates are star/tree shaped", starHeavy, NumTemplates)
	}
}

func TestTemplatesDeterministic(t *testing.T) {
	a := Templates(9)
	b := Templates(9)
	for i := range a {
		if a[i].Query.String() != b[i].Query.String() {
			t.Fatalf("template %d differs across identical seeds", i)
		}
	}
}

func TestInstantiate(t *testing.T) {
	tpl := Templates(1)[0]
	q, s := tpl.Instantiate(77)
	if q != tpl.Query {
		t.Error("instantiation changed the structure")
	}
	if len(s.Patterns) != len(q.Patterns) {
		t.Fatal("stats misaligned")
	}
	if _, err := stats.NewEstimator(q, s); err != nil {
		t.Error(err)
	}
	_, s2 := tpl.Instantiate(78)
	same := true
	for i := range s.Patterns {
		if s.Patterns[i].Card != s2.Patterns[i].Card {
			same = false
		}
	}
	if same {
		t.Error("different instantiation seeds produced identical stats")
	}
}

func TestGenerateDataDeterministic(t *testing.T) {
	a := GenerateData(DataConfig{Scale: 100, Seed: 5})
	b := GenerateData(DataConfig{Scale: 100, Seed: 5})
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic: %d vs %d", a.Len(), b.Len())
	}
	if a.Len() < 1000 {
		t.Errorf("only %d triples at scale 100", a.Len())
	}
}

func TestGenerateDataMinimumScale(t *testing.T) {
	ds := GenerateData(DataConfig{Scale: 1, Seed: 1})
	if ds.Len() == 0 {
		t.Error("empty dataset at floor scale")
	}
}

func TestTemplatesMatchGeneratedData(t *testing.T) {
	// Every template's predicates exist in the generated data, and a
	// healthy fraction of templates return results.
	ds := GenerateData(DataConfig{Scale: 300, Seed: 2})
	preds := map[string]bool{}
	for _, tr := range ds.Triples {
		preds[ds.Dict.Term(tr.P)] = true
	}
	templates := Templates(1)
	nonEmpty, bound := 0, 0
	for _, tpl := range templates[:40] {
		for _, tp := range tpl.Query.Patterns {
			if !preds[tp.P.Value] {
				t.Fatalf("template %d uses predicate %s absent from data", tpl.ID, tp.P.Value)
			}
		}
		// Bind the start variable to a data entity (as the real suite
		// does); unbound all-variable templates would blow up.
		q := tpl.Bind(ds, int64(tpl.ID))
		hasConst := false
		for _, tp := range q.Patterns {
			if !tp.S.IsVar() || !tp.O.IsVar() {
				hasConst = true
			}
		}
		if !hasConst {
			continue
		}
		bound++
		res, err := engine.Reference(ds, q)
		if err != nil {
			t.Fatalf("template %d: %v", tpl.ID, err)
		}
		if len(res.Rows) > 0 {
			nonEmpty++
		}
	}
	if bound < 20 {
		t.Errorf("only %d/40 templates could be bound", bound)
	}
	if nonEmpty < 5 {
		t.Errorf("only %d/%d bound templates matched the generated data", nonEmpty, bound)
	}
}
