package watdiv

import (
	"fmt"
	"math/rand"

	"sparqlopt/internal/rdf"
)

// DataConfig controls the WatDiv-like data generator. Like the real
// suite's generator, it materializes the e-commerce schema the
// templates walk over, so template queries are executable.
type DataConfig struct {
	// Scale is the number of products; other entity counts derive from
	// it with WatDiv-like proportions.
	Scale int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultDataConfig yields roughly 10^5 triples.
func DefaultDataConfig() DataConfig { return DataConfig{Scale: 2500, Seed: 1} }

// GenerateData builds a dataset over the same schema graph the query
// templates are drawn from, so every template matches by construction
// of the vocabulary (result sizes still vary with the walk).
func GenerateData(cfg DataConfig) *rdf.Dataset {
	if cfg.Scale < 10 {
		cfg.Scale = 10
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	ds := rdf.NewDataset()

	// Entity pools, proportioned like the original suite: many users,
	// products and reviews; few retailers, genres and countries.
	counts := map[int]int{
		user:     cfg.Scale * 4 / 10,
		product:  cfg.Scale,
		review:   cfg.Scale * 3 / 2,
		retailer: cfg.Scale/100 + 3,
		offer:    cfg.Scale * 2,
		website:  cfg.Scale/50 + 5,
		genre:    21,
		country:  25,
		purchase: cfg.Scale,
	}
	pools := map[int][]string{}
	names := map[int]string{
		user: "User", product: "Product", review: "Review", retailer: "Retailer",
		offer: "Offer", website: "Website", genre: "Genre", country: "Country",
		purchase: "Purchase",
	}
	for class, n := range counts {
		pool := make([]string, n)
		for i := range pool {
			pool[i] = fmt.Sprintf("http://watdiv/%s%d", names[class], i)
		}
		pools[class] = pool
	}
	pick := func(class int) string {
		pool := pools[class]
		return pool[r.Intn(len(pool))]
	}
	litVal := func(edge string, i int) string { return fmt.Sprintf(`"%s-%d"`, edge, i) }

	// Edge multiplicities: how many edges of each predicate leave one
	// subject on average (×10). Mirrors WatDiv's mix of one-to-one
	// attributes and one-to-many relations.
	multiplicity := map[string]int{
		"follows": 30, "friendOf": 40, "likes": 25, "subscribes": 15,
		"makesPurchase": 20, "purchaseFor": 10, "hasReview": 15, "reviewer": 10,
		"rating": 10, "title": 10, "hasGenre": 12, "price": 10, "offers": 200,
		"offerFor": 10, "homepage": 10, "hits": 10, "language": 10,
		"nationality": 10, "age": 10, "artist": 7, "caption": 8,
		"contentRating": 9, "validThrough": 10, "location": 10,
	}
	litID := 0
	for _, e := range schemaEdges {
		mult := multiplicity[e.pred]
		subjects := pools[e.from]
		for _, s := range subjects {
			edges := mult / 10
			if r.Intn(10) < mult%10 {
				edges++
			}
			for k := 0; k < edges; k++ {
				var o string
				if e.to == lit {
					litID++
					o = litVal(e.pred, litID%97) // skewed small literal domain
				} else {
					o = pick(e.to)
				}
				ds.Add(s, "http://watdiv/"+e.pred, o)
			}
		}
	}
	return ds
}
