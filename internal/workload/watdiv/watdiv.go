// Package watdiv reproduces the stress-testing workload of the
// Waterloo SPARQL Diversity Test Suite as the paper uses it (§V-A):
// "124 structurally diverse query templates, each created by a random
// walk over the graph representation of the data schema and
// instantiated with 100 queries" — 12,400 queries in total. Most
// templates are star queries or joins of a few stars, which is the
// property Figure 6 depends on.
//
// Templates are produced by random walks over a WatDiv-like e-commerce
// schema graph (users, products, reviews, retailers, offers, ...);
// instantiation draws random cardinalities and binding counts exactly
// like the random query generator.
package watdiv

import (
	"fmt"
	"math/rand"

	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
	"sparqlopt/internal/workload/randquery"
)

// NumTemplates matches the suite's template count.
const NumTemplates = 124

// QueriesPerTemplate matches the suite's instantiation count.
const QueriesPerTemplate = 100

// Template is one query structure; instantiations share it but vary
// in statistics.
type Template struct {
	// ID is the template index (0-based).
	ID int
	// Query is the template's structure.
	Query *sparql.Query
}

// schema edge: predicate from one entity class to another.
type edge struct {
	pred     string
	from, to int
}

// The WatDiv-like schema: entity classes and the predicates between
// them. Literal-valued predicates point to the pseudo-class lit.
const (
	user = iota
	product
	review
	retailer
	offer
	website
	genre
	country
	purchase
	lit
	numClasses
)

var schemaEdges = []edge{
	{"follows", user, user},
	{"friendOf", user, user},
	{"likes", user, product},
	{"subscribes", user, website},
	{"makesPurchase", user, purchase},
	{"purchaseFor", purchase, product},
	{"hasReview", product, review},
	{"reviewer", review, user},
	{"rating", review, lit},
	{"title", product, lit},
	{"hasGenre", product, genre},
	{"price", offer, lit},
	{"offers", retailer, offer},
	{"offerFor", offer, product},
	{"homepage", retailer, website},
	{"hits", website, lit},
	{"language", product, lit},
	{"nationality", user, country},
	{"age", user, lit},
	{"artist", product, user},
	{"caption", product, lit},
	{"contentRating", product, lit},
	{"validThrough", offer, lit},
	{"location", retailer, country},
}

// Templates generates the deterministic template set for a seed.
func Templates(seed int64) []Template {
	r := rand.New(rand.NewSource(seed))
	out := make([]Template, 0, NumTemplates)
	for len(out) < NumTemplates {
		q := walk(r)
		if q != nil {
			out = append(out, Template{ID: len(out), Query: q})
		}
	}
	return out
}

// walk performs one random walk over the schema graph, producing a
// connected template of 2–10 triple patterns. The walk is star-biased:
// from the current entity it usually emits several incident predicates
// before moving to a neighbor, mirroring WatDiv's star-heavy mix.
func walk(r *rand.Rand) *sparql.Query {
	q := &sparql.Query{}
	size := 2 + r.Intn(9)
	// Variables per live entity; entities carry their class.
	type entity struct {
		varName string
		class   int
	}
	varCount := 0
	fresh := func(class int) entity {
		v := fmt.Sprintf("v%d", varCount)
		varCount++
		return entity{varName: v, class: class}
	}
	cur := fresh(user + r.Intn(3)) // start at user, product or review
	frontier := []entity{cur}
	for len(q.Patterns) < size {
		// Pick the walk position: mostly stay, sometimes jump.
		pos := frontier[len(frontier)-1]
		if r.Float64() < 0.25 && len(frontier) > 1 {
			pos = frontier[r.Intn(len(frontier))]
		}
		// Choose an incident schema edge.
		var candidates []edge
		var outgoing []bool
		for _, e := range schemaEdges {
			if e.from == pos.class {
				candidates = append(candidates, e)
				outgoing = append(outgoing, true)
			}
			if e.to == pos.class && e.to != lit {
				candidates = append(candidates, e)
				outgoing = append(outgoing, false)
			}
		}
		if len(candidates) == 0 {
			break
		}
		i := r.Intn(len(candidates))
		e, fwd := candidates[i], outgoing[i]
		var other entity
		if fwd {
			other = fresh(e.to)
			q.Patterns = append(q.Patterns, sparql.TriplePattern{
				S: sparql.V(pos.varName), P: sparql.I("http://watdiv/" + e.pred), O: sparql.V(other.varName),
			})
		} else {
			other = fresh(e.from)
			q.Patterns = append(q.Patterns, sparql.TriplePattern{
				S: sparql.V(other.varName), P: sparql.I("http://watdiv/" + e.pred), O: sparql.V(pos.varName),
			})
		}
		// Literals are dead ends; entities may continue the walk.
		if other.class != lit && r.Float64() < 0.5 {
			frontier = append(frontier, other)
		}
	}
	if len(q.Patterns) < 2 {
		return nil
	}
	return q
}

// Instantiate draws one query instance: the template structure with
// fresh random statistics.
func (t Template) Instantiate(seed int64) (*sparql.Query, *stats.Stats) {
	r := rand.New(rand.NewSource(seed))
	return t.Query, randquery.Attach(r, t.Query)
}

// Bind instantiates the template against a dataset the way the real
// suite does: the walk's start variable is replaced by a constant
// entity drawn from the data (one that matches the first pattern's
// predicate), so the query is selective and executable.
func (t Template) Bind(ds *rdf.Dataset, seed int64) *sparql.Query {
	r := rand.New(rand.NewSource(seed))
	first := t.Query.Patterns[0]
	pid, ok := ds.Dict.Lookup(first.P.Value)
	if !ok {
		return t.Query
	}
	// Collect candidate subjects for the first pattern's predicate.
	var candidates []rdf.TermID
	for _, tr := range ds.Triples {
		if tr.P == pid {
			candidates = append(candidates, tr.S)
		}
	}
	if len(candidates) == 0 || !first.S.IsVar() {
		return t.Query
	}
	entity := ds.Dict.Term(candidates[r.Intn(len(candidates))])
	bound := &sparql.Query{Select: t.Query.Select}
	for _, tp := range t.Query.Patterns {
		if tp.S.IsVar() && tp.S.Value == first.S.Value {
			tp.S = sparql.I(entity)
		}
		if tp.O.IsVar() && tp.O.Value == first.S.Value {
			tp.O = sparql.I(entity)
		}
		bound.Patterns = append(bound.Patterns, tp)
	}
	return bound
}
