package randquery

import (
	"math/rand"
	"testing"

	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/stats"
)

func TestClassesClassifyCorrectly(t *testing.T) {
	for _, class := range []querygraph.Class{
		querygraph.Star, querygraph.Chain, querygraph.Cycle, querygraph.Tree, querygraph.Dense,
	} {
		for n := 4; n <= 20; n += 4 {
			for seed := int64(0); seed < 5; seed++ {
				q, _ := Generate(class, n, seed)
				if len(q.Patterns) != n {
					t.Fatalf("%v n=%d: %d patterns", class, n, len(q.Patterns))
				}
				jg, err := querygraph.NewJoinGraph(q)
				if err != nil {
					t.Fatal(err)
				}
				if got := jg.Classify(); got != class {
					t.Errorf("%v n=%d seed=%d classified as %v", class, n, seed, got)
				}
				if !jg.Connected(jg.All()) {
					t.Errorf("%v n=%d seed=%d disconnected", class, n, seed)
				}
			}
		}
	}
}

func TestStatsRanges(t *testing.T) {
	q, s := Generate(querygraph.Dense, 12, 7)
	if len(s.Patterns) != len(q.Patterns) {
		t.Fatalf("stats misaligned")
	}
	for i, ps := range s.Patterns {
		if ps.Card < 1 || ps.Card > MaxCardinality {
			t.Errorf("pattern %d card %v out of range", i, ps.Card)
		}
		for v, b := range ps.Bindings {
			if b < 1 || b > ps.Card {
				t.Errorf("pattern %d B(%s) = %v outside [1, %v]", i, v, b, ps.Card)
			}
		}
	}
	// Estimator accepts the stats.
	if _, err := stats.NewEstimator(q, s); err != nil {
		t.Error(err)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	q1, s1 := Generate(querygraph.Tree, 10, 42)
	q2, s2 := Generate(querygraph.Tree, 10, 42)
	if q1.String() != q2.String() {
		t.Error("queries differ across identical seeds")
	}
	for i := range s1.Patterns {
		if s1.Patterns[i].Card != s2.Patterns[i].Card {
			t.Error("stats differ across identical seeds")
		}
	}
	q3, _ := Generate(querygraph.Tree, 10, 43)
	if q1.String() == q3.String() {
		t.Log("different seeds gave same tree (possible for small n)")
	}
}

func TestSmallDense(t *testing.T) {
	q, _ := Generate(querygraph.Dense, 3, 1)
	jg, err := querygraph.NewJoinGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	if got := jg.Classify(); got != querygraph.Cycle && got != querygraph.Dense {
		t.Errorf("dense n=3 classified %v", got)
	}
}

func TestGeneratePanics(t *testing.T) {
	for _, tc := range []struct {
		name  string
		class querygraph.Class
		n     int
	}{
		{"cycle too small", querygraph.Cycle, 2},
		{"one pattern", querygraph.Chain, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			Generate(tc.class, tc.n, 0)
		})
	}
}

func TestGenerateWithMaxRange(t *testing.T) {
	_, s := GenerateWithMax(querygraph.Tree, 10, 5, 100000)
	over1000 := false
	for _, ps := range s.Patterns {
		if ps.Card > 100000 {
			t.Errorf("card %v exceeds bound", ps.Card)
		}
		if ps.Card > 1000 {
			over1000 = true
		}
	}
	if !over1000 {
		t.Error("no cardinality above 1000; bound not applied (possible but very unlikely)")
	}
}

func TestAttachWithMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero bound")
		}
	}()
	q, _ := Generate(querygraph.Chain, 3, 1)
	AttachWithMax(rand.New(rand.NewSource(1)), q, 0)
}
