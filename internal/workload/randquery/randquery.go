// Package randquery implements the paper's query generator (§V-A): it
// "randomly generates chain, cycle, tree and dense queries (recall
// §II-B), which are not sufficiently represented in the benchmarks",
// plus star queries. Following the paper, the cardinality of each
// triple pattern is a random integer in [1, 1000] and the number of
// bindings of each variable in a pattern is a random integer in
// [1, cardinality].
package randquery

import (
	"fmt"
	"math/rand"

	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// MaxCardinality is the upper bound of random pattern cardinalities
// (the paper also used 100,000, "which does not affect any of our
// conclusions").
const MaxCardinality = 1000

// Generate builds a random query of the given class with n triple
// patterns and random statistics drawn from [1, MaxCardinality]. It
// panics when n is too small to express the class (cycles need 3
// patterns, everything else 2) — class/size combinations are fixed by
// the experiment definitions.
func Generate(class querygraph.Class, n int, seed int64) (*sparql.Query, *stats.Stats) {
	return GenerateWithMax(class, n, seed, MaxCardinality)
}

// GenerateWithMax is Generate with an explicit cardinality upper
// bound; the paper also ran its study with 100,000 ("which does not
// affect any of our conclusions").
func GenerateWithMax(class querygraph.Class, n int, seed int64, maxCard int) (*sparql.Query, *stats.Stats) {
	r := rand.New(rand.NewSource(seed))
	var q *sparql.Query
	switch class {
	case querygraph.Star:
		q = star(n)
	case querygraph.Chain:
		q = chain(n)
	case querygraph.Cycle:
		if n < 3 {
			panic("randquery: cycles need at least 3 patterns")
		}
		q = cycle(n)
	case querygraph.Tree:
		q = tree(r, n)
	case querygraph.Dense:
		q = dense(r, n)
	default:
		panic(fmt.Sprintf("randquery: unknown class %d", class))
	}
	if n < 2 {
		panic("randquery: need at least 2 patterns")
	}
	return q, AttachWithMax(r, q, maxCard)
}

// Attach draws random statistics for q as specified in §V-A.
func Attach(r *rand.Rand, q *sparql.Query) *stats.Stats {
	return AttachWithMax(r, q, MaxCardinality)
}

// AttachWithMax is Attach with an explicit cardinality upper bound.
func AttachWithMax(r *rand.Rand, q *sparql.Query, maxCard int) *stats.Stats {
	if maxCard < 1 {
		panic("randquery: cardinality bound must be positive")
	}
	s := &stats.Stats{}
	for _, tp := range q.Patterns {
		card := float64(1 + r.Intn(maxCard))
		b := map[string]float64{}
		for _, v := range tp.Vars() {
			b[v] = float64(1 + r.Intn(int(card)))
		}
		s.Patterns = append(s.Patterns, stats.PatternStats{Card: card, Bindings: b})
	}
	return s
}

func pat(s, p, o string) sparql.TriplePattern {
	return sparql.TriplePattern{S: sparql.V(s), P: sparql.I(p), O: sparql.V(o)}
}

func star(n int) *sparql.Query {
	q := &sparql.Query{}
	for i := 0; i < n; i++ {
		q.Patterns = append(q.Patterns, pat(fmt.Sprintf("s%d", i), fmt.Sprintf("p%d", i), "c"))
	}
	return q
}

func chain(n int) *sparql.Query {
	q := &sparql.Query{}
	for i := 0; i < n; i++ {
		q.Patterns = append(q.Patterns, pat(fmt.Sprintf("x%d", i), fmt.Sprintf("p%d", i), fmt.Sprintf("x%d", i+1)))
	}
	return q
}

func cycle(n int) *sparql.Query {
	q := chain(n - 1)
	q.Patterns = append(q.Patterns, pat(fmt.Sprintf("x%d", n-1), "pc", "x0"))
	return q
}

// tree grows a random acyclic join graph that is neither a star nor a
// chain: a 3-ray star core plus random attachments, each introducing a
// fresh variable (so no cycles ever form).
func tree(r *rand.Rand, n int) *sparql.Query {
	q := &sparql.Query{}
	vars := []string{"x0"}
	fresh := func() string {
		v := fmt.Sprintf("x%d", len(vars))
		vars = append(vars, v)
		return v
	}
	for i := 0; i < n; i++ {
		var anchor string
		if i < 3 && n >= 4 {
			anchor = "x0" // the star core guarantees a degree-3 variable
		} else if n >= 4 {
			// Attach away from the core so the result is never a pure
			// star (some pattern must not contain x0).
			anchor = vars[1+r.Intn(len(vars)-1)]
		} else {
			anchor = vars[r.Intn(len(vars))]
		}
		leaf := fresh()
		if r.Intn(2) == 0 {
			q.Patterns = append(q.Patterns, pat(anchor, fmt.Sprintf("p%d", i), leaf))
		} else {
			q.Patterns = append(q.Patterns, pat(leaf, fmt.Sprintf("p%d", i), anchor))
		}
	}
	return q
}

// dense grows a random join graph with at least one cycle that is not
// a pure cycle: a random tree with extra chords between existing
// variables.
func dense(r *rand.Rand, n int) *sparql.Query {
	if n < 4 {
		// The smallest dense shapes: a triangle with a tail.
		q := cycle(3)
		for i := 3; i < n; i++ {
			q.Patterns = append(q.Patterns, pat("x0", fmt.Sprintf("t%d", i), fmt.Sprintf("y%d", i)))
		}
		return q
	}
	chords := 1 + r.Intn(max(1, n/4))
	treeSize := n - chords
	q := tree(r, treeSize)
	// Collect the variables of the tree.
	seen := map[string]bool{}
	var vars []string
	for _, tp := range q.Patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	for i := 0; i < chords; i++ {
		a := vars[r.Intn(len(vars))]
		b := vars[r.Intn(len(vars))]
		for b == a {
			b = vars[r.Intn(len(vars))]
		}
		q.Patterns = append(q.Patterns, pat(a, fmt.Sprintf("c%d", i), b))
	}
	return q
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
