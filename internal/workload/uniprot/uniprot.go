// Package uniprot generates a synthetic protein graph with the
// vocabulary and join structure of the UniProt RDF dataset, plus the
// paper's benchmark queries U1–U5. The real 2-billion-triple dump is
// replaced per DESIGN.md: proteins carry annotations, cross-database
// references, enzyme classifications and replacement chains;
// interactions connect pairs of proteins. The constants U1–U5 mention
// (refseq NP_346136.1, protein Q4N2B5, keyword 67, taxon 9606, enzyme
// 2.7.7.- / 3.1.3.16, embl-cds AAN81952.1) are guaranteed to exist.
package uniprot

import (
	"fmt"
	"math/rand"

	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

// Namespaces of the UniProt RDF schema.
const (
	UNI   = "http://purl.uniprot.org/core/"
	RDFNS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFS  = "http://www.w3.org/2000/01/rdf-schema#"
	TAXON = "http://purl.uniprot.org/taxonomy/"
)

// Config controls the generator.
type Config struct {
	// Proteins is the scale factor.
	Proteins int
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultConfig generates a small but structurally complete graph.
func DefaultConfig() Config { return Config{Proteins: 2000, Seed: 2} }

// Generate builds the dataset.
func Generate(cfg Config) *rdf.Dataset {
	if cfg.Proteins < 50 {
		cfg.Proteins = 50
	}
	g := &gen{ds: rdf.NewDataset(), r: rand.New(rand.NewSource(cfg.Seed)), n: cfg.Proteins}
	g.run()
	return g.ds
}

type gen struct {
	ds *rdf.Dataset
	r  *rand.Rand
	n  int
}

func protein(i int) string { return fmt.Sprintf("http://purl.uniprot.org/uniprot/P%05d", i) }

func (g *gen) run() {
	enzymes := []string{
		"http://purl.uniprot.org/enzyme/2.7.7.-",
		"http://purl.uniprot.org/enzyme/3.1.3.16",
		"http://purl.uniprot.org/enzyme/1.1.1.1",
		"http://purl.uniprot.org/enzyme/4.2.1.11",
	}
	keywords := []string{
		"http://purl.uniprot.org/keywords/67",
		"http://purl.uniprot.org/keywords/181",
		"http://purl.uniprot.org/keywords/9",
	}
	taxa := []string{TAXON + "9606", TAXON + "10090", TAXON + "559292"}
	databases := []string{
		"http://purl.uniprot.org/database/EMBL",
		"http://purl.uniprot.org/database/PDB",
		"http://purl.uniprot.org/database/RefSeq",
	}
	seeAlsoTargets := []string{
		"http://purl.uniprot.org/refseq/NP_346136.1",
		"http://purl.uniprot.org/tigr/SP_1698",
		"http://purl.uniprot.org/pfam/PF00842",
		"http://purl.uniprot.org/prints/PR00992",
		"http://purl.uniprot.org/embl-cds/AAN81952.1",
	}

	annotationID := 0
	for i := 0; i < g.n; i++ {
		p := protein(i)
		g.ds.Add(p, RDFNS+"type", UNI+"Protein")
		g.ds.Add(p, UNI+"organism", taxa[g.r.Intn(len(taxa))])
		g.ds.Add(p, UNI+"encodedBy", fmt.Sprintf("http://purl.uniprot.org/gene/G%05d", i))
		// Enzyme classification for about half the proteins.
		if g.r.Float64() < 0.5 {
			g.ds.Add(p, UNI+"enzyme", enzymes[g.r.Intn(len(enzymes))])
		}
		// Keywords.
		for k := 0; k < g.r.Intn(3); k++ {
			g.ds.Add(p, UNI+"classifiedWith", keywords[g.r.Intn(len(keywords))])
		}
		// Cross references: a node with a database, linked via seeAlso.
		for k := 0; k < 1+g.r.Intn(3); k++ {
			link := fmt.Sprintf("http://purl.uniprot.org/xref/X%05d_%d", i, k)
			g.ds.Add(p, RDFS+"seeAlso", link)
			g.ds.Add(link, UNI+"database", databases[g.r.Intn(len(databases))])
		}
		// Direct seeAlso references into other databases.
		if g.r.Float64() < 0.2 {
			g.ds.Add(p, RDFS+"seeAlso", seeAlsoTargets[g.r.Intn(len(seeAlsoTargets))])
		}
		// Annotations with comments and ranges.
		for k := 0; k < 1+g.r.Intn(3); k++ {
			a := fmt.Sprintf("http://purl.uniprot.org/annotation/A%06d", annotationID)
			annotationID++
			g.ds.Add(p, UNI+"annotation", a)
			g.ds.Add(a, RDFS+"comment", fmt.Sprintf(`"annotation text %d"`, annotationID))
			g.ds.Add(a, UNI+"range", fmt.Sprintf("http://purl.uniprot.org/range/R%06d", annotationID))
			if g.r.Float64() < 0.25 {
				g.ds.Add(a, RDFNS+"type", UNI+"Disease_Annotation")
			} else {
				g.ds.Add(a, RDFNS+"type", UNI+"Function_Annotation")
			}
		}
		// Replacement chains: P_i replaces P_{i-1} (and the inverse).
		if i > 0 && g.r.Float64() < 0.3 {
			prev := protein(i - 1)
			g.ds.Add(p, UNI+"replaces", prev)
			g.ds.Add(prev, UNI+"replacedBy", p)
		}
	}

	// Interactions between random protein pairs.
	for k := 0; k < g.n; k++ {
		ia := fmt.Sprintf("http://purl.uniprot.org/interaction/I%06d", k)
		g.ds.Add(ia, RDFNS+"type", UNI+"Interaction")
		g.ds.Add(ia, UNI+"participant", protein(g.r.Intn(g.n)))
		g.ds.Add(ia, UNI+"participant", protein(g.r.Intn(g.n)))
	}

	// Guarantee the benchmark constants and their surroundings.
	g.benchmarkEntities(seeAlsoTargets)
}

// benchmarkEntities wires up the specific entities U1–U5 query for.
func (g *gen) benchmarkEntities(seeAlsoTargets []string) {
	// U1: one protein referencing all four cross-database entries.
	star := protein(0)
	for _, tgt := range seeAlsoTargets[:4] {
		g.ds.Add(star, RDFS+"seeAlso", tgt)
	}

	// U2: Q4N2B5 with a replacedBy/replaces chain ending at a
	// cross-reference with a database.
	q := "http://purl.uniprot.org/uniprot/Q4N2B5"
	g.ds.Add(q, RDFNS+"type", UNI+"Protein")
	a, ab, b := protein(1), protein(2), protein(3)
	g.ds.Add(q, UNI+"replacedBy", a)
	g.ds.Add(a, UNI+"replaces", ab)
	g.ds.Add(ab, UNI+"replacedBy", b)
	// b's seeAlso cross-references already carry databases.

	// U3: two interacting proteins with the queried enzyme classes,
	// annotations, replaces and encodedBy.
	p1, p2, p3 := protein(4), protein(5), protein(6)
	g.ds.Add(p1, UNI+"enzyme", "http://purl.uniprot.org/enzyme/2.7.7.-")
	g.ds.Add(p2, UNI+"enzyme", "http://purl.uniprot.org/enzyme/3.1.3.16")
	g.ds.Add(p1, UNI+"replaces", p3)
	ia := "http://purl.uniprot.org/interaction/IBENCH"
	g.ds.Add(ia, RDFNS+"type", UNI+"Interaction")
	g.ds.Add(ia, UNI+"participant", p1)
	g.ds.Add(ia, UNI+"participant", p2)

	// U4: a protein with keyword 67, the embl-cds reference and a
	// replaces chain into annotated proteins.
	u4 := protein(7)
	g.ds.Add(u4, UNI+"classifiedWith", "http://purl.uniprot.org/keywords/67")
	g.ds.Add(u4, RDFS+"seeAlso", "http://purl.uniprot.org/embl-cds/AAN81952.1")
	g.ds.Add(u4, UNI+"replaces", protein(8))
	g.ds.Add(protein(8), UNI+"replacedBy", protein(9))

	// U5 needs human proteins with disease annotations; ensure one.
	u5 := protein(10)
	g.ds.Add(u5, UNI+"organism", TAXON+"9606")
	ann := "http://purl.uniprot.org/annotation/ABENCH"
	g.ds.Add(u5, UNI+"annotation", ann)
	g.ds.Add(ann, RDFNS+"type", UNI+"Disease_Annotation")
	g.ds.Add(ann, RDFS+"comment", `"benchmark disease annotation"`)
}

const prefixes = `
PREFIX uni: <http://purl.uniprot.org/core/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX schema: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX taxon: <http://purl.uniprot.org/taxonomy/>
`

// queryTexts holds U1–U5 as printed in the paper's appendix (the
// "schema:" prefix is bound to rdf-schema#, as there).
var queryTexts = map[string]string{
	"U1": prefixes + `
SELECT ?a ?vo WHERE {
	?a uni:encodedBy ?vo .
	?a schema:seeAlso <http://purl.uniprot.org/refseq/NP_346136.1> .
	?a schema:seeAlso <http://purl.uniprot.org/tigr/SP_1698> .
	?a schema:seeAlso <http://purl.uniprot.org/pfam/PF00842> .
	?a schema:seeAlso <http://purl.uniprot.org/prints/PR00992> .
}`,
	"U2": prefixes + `
SELECT ?a ?ab ?b ?link ?db WHERE {
	<http://purl.uniprot.org/uniprot/Q4N2B5> uni:replacedBy ?a .
	?a uni:replaces ?ab .
	?ab uni:replacedBy ?b .
	?b rdfs:seeAlso ?link .
	?link uni:database ?db .
}`,
	"U3": prefixes + `
SELECT ?p2 ?interaction ?p1 ?annotation ?text ?en WHERE {
	?p1 uni:enzyme <http://purl.uniprot.org/enzyme/2.7.7.-> .
	?p1 rdf:type uni:Protein .
	?interaction uni:participant ?p1 .
	?interaction rdf:type uni:Interaction .
	?interaction uni:participant ?p2 .
	?p2 rdf:type uni:Protein .
	?p2 uni:enzyme <http://purl.uniprot.org/enzyme/3.1.3.16> .
	?p1 uni:annotation ?annotation .
	?p1 uni:replaces ?p3 .
	?p1 uni:encodedBy ?en .
	?annotation rdfs:comment ?text .
}`,
	"U4": prefixes + `
SELECT ?a ?ab ?b ?annotation ?range WHERE {
	?a uni:classifiedWith <http://purl.uniprot.org/keywords/67> .
	?a schema:seeAlso <http://purl.uniprot.org/embl-cds/AAN81952.1> .
	?a uni:replaces ?ab .
	?ab uni:replacedBy ?b .
	?b uni:annotation ?annotation .
	?annotation uni:range ?range .
}`,
	"U5": prefixes + `
SELECT ?protein ?annotation WHERE {
	?protein uni:annotation ?annotation .
	?protein rdf:type uni:Protein .
	?protein uni:organism taxon:9606 .
	?annotation rdf:type <http://purl.uniprot.org/core/Disease_Annotation> .
	?annotation rdfs:comment ?text .
}`,
}

// QueryNames lists the benchmark queries in the paper's order.
var QueryNames = []string{"U1", "U2", "U3", "U4", "U5"}

// Query parses benchmark query name (U1–U5). It panics on an unknown
// name — the names are compile-time fixtures.
func Query(name string) *sparql.Query {
	text, ok := queryTexts[name]
	if !ok {
		panic("uniprot: unknown query " + name)
	}
	return sparql.MustParse(text)
}

// QueryText returns the SPARQL source of a benchmark query.
func QueryText(name string) string {
	text, ok := queryTexts[name]
	if !ok {
		panic("uniprot: unknown query " + name)
	}
	return text
}
