package uniprot

import (
	"testing"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/querygraph"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Proteins: 100, Seed: 3})
	b := Generate(Config{Proteins: 100, Seed: 3})
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic: %d vs %d", a.Len(), b.Len())
	}
}

func TestQueriesParse(t *testing.T) {
	wantTPs := map[string]int{"U1": 5, "U2": 5, "U3": 11, "U4": 6, "U5": 5}
	for _, name := range QueryNames {
		q := Query(name)
		if len(q.Patterns) != wantTPs[name] {
			t.Errorf("%s has %d patterns, want %d", name, len(q.Patterns), wantTPs[name])
		}
		if _, err := querygraph.Build(q); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Table III: U1 star, U2 chain.
	for name, want := range map[string]querygraph.Class{
		"U1": querygraph.Star, "U2": querygraph.Chain,
	} {
		jg, _ := querygraph.NewJoinGraph(Query(name))
		if got := jg.Classify(); got != want {
			t.Errorf("%s classified %v, want %v", name, got, want)
		}
	}
}

func TestQueriesReturnResults(t *testing.T) {
	ds := Generate(Config{Proteins: 300, Seed: 2})
	for _, name := range QueryNames {
		res, err := engine.Reference(ds, Query(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s returned no results on generated data", name)
		}
		t.Logf("%s: %d results", name, len(res.Rows))
	}
}

func TestQueryPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	Query("U9")
}

func TestMinimumScaleEnforced(t *testing.T) {
	ds := Generate(Config{Proteins: 1, Seed: 1})
	if ds.Len() < 100 {
		t.Errorf("tiny scale produced only %d triples; floor not applied", ds.Len())
	}
}
