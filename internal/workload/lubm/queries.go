package lubm

import "sparqlopt/internal/sparql"

// prefixes shared by all benchmark queries.
const prefixes = `
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
`

// queryTexts holds L1–L10 exactly as printed in the paper's appendix,
// with the abbreviated entity constants expanded to this generator's
// URIs.
var queryTexts = map[string]string{
	"L1": prefixes + `
SELECT ?x WHERE {
	?x rdf:type ub:ResearchGroup .
	?x ub:subOrganizationOf <http://www.Department0.University0.edu> .
}`,
	"L2": prefixes + `
SELECT ?x ?y WHERE {
	?x ub:worksFor ?y .
	?y ub:subOrganizationOf <http://www.University0.edu> .
}`,
	"L3": prefixes + `
SELECT ?x ?y WHERE {
	?x rdf:type ub:GraduateStudent .
	<http://www.Department0.University0.edu/AssociateProfessor0> ub:teacherOf ?y .
	?y rdf:type ub:GraduateCourse .
	?x ub:takesCourse ?y .
}`,
	"L4": prefixes + `
SELECT ?x ?y WHERE {
	?x ub:worksFor ?y .
	?y rdf:type ub:Department .
	?x rdf:type ub:FullProfessor .
	?y ub:subOrganizationOf <http://www.University0.edu> .
}`,
	"L5": prefixes + `
SELECT ?x ?w WHERE {
	?x ub:advisor ?y .
	?y ub:worksFor ?z .
	?x rdf:type ub:GraduateStudent .
	?z ub:subOrganizationOf ?w .
	?w ub:name ?u .
	?z rdf:type ub:Department .
	?w rdf:type ub:University .
	<http://www.Department12.University0.edu/FullProfessor0/Publication0> ub:publicationAuthor ?x .
}`,
	"L6": prefixes + `
SELECT ?x ?p WHERE {
	?x ub:advisor ?y .
	?y ub:worksFor ?z .
	?x rdf:type ub:GraduateStudent .
	<http://www.Department0.University0.edu/FullProfessor0/Publication0> ub:publicationAuthor ?x .
	?p ub:name ?n .
	?z rdf:type ub:Department .
	?z ub:subOrganizationOf ?w .
	?p ub:publicationAuthor ?x .
}`,
	"L7": prefixes + `
SELECT ?x ?y ?z WHERE {
	?z ub:subOrganizationOf ?y .
	?y rdf:type ub:University .
	?z rdf:type ub:Department .
	?x rdf:type ub:GraduateStudent .
	?x ub:memberOf ?z .
	?x ub:undergraduateDegreeFrom ?y .
}`,
	"L8": prefixes + `
SELECT ?x ?y ?z WHERE {
	?y ub:teacherOf ?z .
	?y rdf:type ub:FullProfessor .
	?z rdf:type ub:Course .
	?x ub:takesCourse ?z .
	?x rdf:type ub:UndergraduateStudent .
	?x ub:advisor ?y .
}`,
	"L9": prefixes + `
SELECT ?x ?y ?f ?c ?p ?n WHERE {
	?y rdf:type ub:University .
	?x rdf:type ub:GraduateStudent .
	?x ub:undergraduateDegreeFrom ?y .
	?f rdf:type ub:FullProfessor .
	?x ub:advisor ?f .
	?x ub:takesCourse ?c .
	?f ub:teacherOf ?c .
	?c rdf:type ub:GraduateCourse .
	<http://www.Department2.University6.edu/FullProfessor1/Publication1> ub:publicationAuthor ?f .
	?p ub:publicationAuthor ?f .
	?p ub:name ?n .
}`,
	"L10": prefixes + `
SELECT ?x ?y ?z ?f ?c ?p ?n WHERE {
	?z ub:subOrganizationOf ?y .
	?y rdf:type ub:University .
	?z rdf:type ub:Department .
	?x ub:memberOf ?z .
	?x rdf:type ub:GraduateStudent .
	?x ub:undergraduateDegreeFrom ?y .
	?f rdf:type ub:FullProfessor .
	?x ub:advisor ?f .
	?x ub:takesCourse ?c .
	?f ub:teacherOf ?c .
	?c rdf:type ub:GraduateCourse .
	<http://www.Department2.University6.edu/FullProfessor1/Publication1> ub:publicationAuthor ?f .
	?p ub:publicationAuthor ?f .
	?p ub:name ?n .
}`,
}

// QueryNames lists the benchmark queries in the paper's order.
var QueryNames = []string{"L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10"}

// Query parses benchmark query name (L1–L10). It panics on an unknown
// name — the names are compile-time fixtures.
func Query(name string) *sparql.Query {
	text, ok := queryTexts[name]
	if !ok {
		panic("lubm: unknown query " + name)
	}
	return sparql.MustParse(text)
}

// QueryText returns the SPARQL source of a benchmark query.
func QueryText(name string) string {
	text, ok := queryTexts[name]
	if !ok {
		panic("lubm: unknown query " + name)
	}
	return text
}
