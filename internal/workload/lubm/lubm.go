// Package lubm generates LUBM-style university datasets and provides
// the paper's benchmark queries L1–L10 (Table III and the appendix).
//
// The original LUBM-10000 dataset (1.38 billion triples) is replaced
// by a from-scratch generator with the same schema — universities
// contain departments; departments employ professors, enroll students,
// and offer courses; professors publish and advise — scaled by the
// number of universities (see DESIGN.md's substitution table). The
// constants the benchmark queries mention (Department0.University0,
// FullProfessor1's Publication1 at Department2.University6, ...) are
// guaranteed to exist once the scale is at least 7 universities.
package lubm

import (
	"fmt"
	"math/rand"

	"sparqlopt/internal/rdf"
)

// Ontology namespace, as in the original benchmark.
const (
	UB  = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"
	RDF = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
)

// Config controls the generator. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// Universities is the scale factor.
	Universities int
	// Seed makes generation reproducible.
	Seed int64
	// Compact shrinks per-department entity counts (for unit tests).
	Compact bool
}

// DefaultConfig generates seven universities — the smallest scale at
// which every benchmark constant exists.
func DefaultConfig() Config { return Config{Universities: 7, Seed: 1} }

// Generate builds the dataset.
func Generate(cfg Config) *rdf.Dataset {
	if cfg.Universities <= 0 {
		cfg.Universities = 1
	}
	g := &gen{
		ds:  rdf.NewDataset(),
		r:   rand.New(rand.NewSource(cfg.Seed)),
		cfg: cfg,
	}
	for u := 0; u < cfg.Universities; u++ {
		g.university(u)
	}
	return g.ds
}

type gen struct {
	ds  *rdf.Dataset
	r   *rand.Rand
	cfg Config
}

func (g *gen) add(s, p, o string)    { g.ds.Add(s, p, o) }
func (g *gen) typ(s, class string)   { g.add(s, RDF+"type", UB+class) }
func (g *gen) rel(s, p, o string)    { g.add(s, UB+p, o) }
func (g *gen) lit(s, p, name string) { g.add(s, UB+p, `"`+name+`"`) }

// counts returns (low, high) scaled down in compact mode.
func (g *gen) count(lo, hi int) int {
	if g.cfg.Compact {
		lo = lo/4 + 1
		hi = hi/4 + 1
	}
	if hi <= lo {
		return lo
	}
	return lo + g.r.Intn(hi-lo)
}

// University URIs follow the original naming scheme.
func universityURI(u int) string { return fmt.Sprintf("http://www.University%d.edu", u) }

func deptURI(u, d int) string {
	return fmt.Sprintf("http://www.Department%d.University%d.edu", d, u)
}

func (g *gen) university(u int) {
	uni := universityURI(u)
	g.typ(uni, "University")
	g.lit(uni, "name", fmt.Sprintf("University%d", u))
	// At least 15 departments so Department12 always exists.
	depts := g.count(15, 20)
	if g.cfg.Compact {
		depts = 4
	}
	for d := 0; d < depts; d++ {
		g.department(u, d)
	}
}

func (g *gen) department(u, d int) {
	uni := universityURI(u)
	dept := deptURI(u, d)
	g.typ(dept, "Department")
	g.rel(dept, "subOrganizationOf", uni)
	g.lit(dept, "name", fmt.Sprintf("Department%d", d))

	// Research groups.
	for i := 0; i < g.count(5, 10); i++ {
		rg := fmt.Sprintf("%s/ResearchGroup%d", dept, i)
		g.typ(rg, "ResearchGroup")
		g.rel(rg, "subOrganizationOf", dept)
	}

	// Courses: undergraduate and graduate.
	courses := make([]string, g.count(10, 16))
	gradCourses := make([]string, g.count(8, 12))
	for i := range courses {
		c := fmt.Sprintf("%s/Course%d", dept, i)
		courses[i] = c
		g.typ(c, "Course")
	}
	for i := range gradCourses {
		c := fmt.Sprintf("%s/GraduateCourse%d", dept, i)
		gradCourses[i] = c
		g.typ(c, "GraduateCourse")
		g.typ(c, "Course")
	}

	// Professors.
	fullProfs := make([]string, g.count(7, 10))
	for i := range fullProfs {
		p := fmt.Sprintf("%s/FullProfessor%d", dept, i)
		fullProfs[i] = p
		g.professor(p, "FullProfessor", dept, uni, courses, gradCourses)
	}
	for i := 0; i < g.count(10, 14); i++ {
		p := fmt.Sprintf("%s/AssociateProfessor%d", dept, i)
		g.professor(p, "AssociateProfessor", dept, uni, courses, gradCourses)
	}
	for i := 0; i < g.count(8, 11); i++ {
		p := fmt.Sprintf("%s/AssistantProfessor%d", dept, i)
		g.professor(p, "AssistantProfessor", dept, uni, courses, gradCourses)
	}

	// Graduate students. The first two are deterministic anchors: they
	// advise with FullProfessor0/1, co-author that professor's
	// Publication0/1, take a course their advisor teaches, and hold an
	// undergraduate degree from their own university — guaranteeing
	// L5, L6, L9 and L10 non-empty results at any seed.
	for i := 0; i < 2+g.count(13, 23); i++ {
		s := fmt.Sprintf("%s/GraduateStudent%d", dept, i)
		g.typ(s, "GraduateStudent")
		g.rel(s, "memberOf", dept)
		anchor := i < 2 && i < len(fullProfs)
		if anchor {
			g.rel(s, "undergraduateDegreeFrom", uni)
		} else {
			g.rel(s, "undergraduateDegreeFrom", universityURI(g.r.Intn(g.cfg.Universities)))
		}
		advisor := fullProfs[g.r.Intn(len(fullProfs))]
		if anchor {
			advisor = fullProfs[i]
		}
		g.rel(s, "advisor", advisor)
		if anchor {
			g.rel(fmt.Sprintf("%s/Publication%d", advisor, i), "publicationAuthor", s)
			g.rel(s, "takesCourse", g.advisorCourse(advisor, gradCourses))
		}
		// Take a few graduate courses; with some probability one of
		// them is taught by the advisor (keeps L9-style joins
		// non-empty without making them trivial).
		taken := map[string]bool{}
		for k := 0; k < 1+g.r.Intn(3); k++ {
			c := gradCourses[g.r.Intn(len(gradCourses))]
			if !taken[c] {
				taken[c] = true
				g.rel(s, "takesCourse", c)
			}
		}
		if g.r.Float64() < 0.4 {
			// The advisor teaches gradCourses[advisorIdx] (see professor()).
			c := g.advisorCourse(advisor, gradCourses)
			if c != "" && !taken[c] {
				g.rel(s, "takesCourse", c)
			}
		}
		// Publications co-authored with the advisor occasionally.
		if g.r.Float64() < 0.3 {
			pub := fmt.Sprintf("%s/Publication%d", advisor, 0)
			g.rel(pub, "publicationAuthor", s)
		}
	}

	// Undergraduate students.
	for i := 0; i < g.count(30, 50); i++ {
		s := fmt.Sprintf("%s/UndergraduateStudent%d", dept, i)
		g.typ(s, "UndergraduateStudent")
		g.rel(s, "memberOf", dept)
		for k := 0; k < 1+g.r.Intn(3); k++ {
			g.rel(s, "takesCourse", courses[g.r.Intn(len(courses))])
		}
		// Some undergraduates have (professor) advisors too.
		if g.r.Float64() < 0.4 {
			adv := fullProfs[g.r.Intn(len(fullProfs))]
			g.rel(s, "advisor", adv)
			// Let some of them take a course their advisor teaches
			// (exercises L8's triangle).
			if g.r.Float64() < 0.5 {
				if c := g.advisorUGCourse(adv, courses); c != "" {
					g.rel(s, "takesCourse", c)
				}
			}
		}
	}
}

// professor emits one professor: type, employment, teaching and
// publications. FullProfessor i deterministically teaches
// gradCourses[i % len] and courses[i % len], so advisorCourse can
// reconstruct the mapping without extra state.
func (g *gen) professor(p, class, dept, uni string, courses, gradCourses []string) {
	g.typ(p, class)
	g.typ(p, "Professor")
	g.rel(p, "worksFor", dept)
	g.lit(p, "name", lastSegment(p))
	g.rel(p, "teacherOf", g.profUGCourse(p, courses))
	g.rel(p, "teacherOf", g.profGradCourse(p, gradCourses))
	// At least two publications, so PublicationN constants for N ≤ 1
	// exist for every professor even in compact mode.
	for i := 0; i < 2+g.count(1, 6); i++ {
		pub := fmt.Sprintf("%s/Publication%d", p, i)
		g.typ(pub, "Publication")
		g.lit(pub, "name", fmt.Sprintf("Pub%d", i))
		g.rel(pub, "publicationAuthor", p)
	}
}

// lastSegment returns the final '/'-separated component of a URI.
func lastSegment(uri string) string {
	for i := len(uri) - 1; i >= 0; i-- {
		if uri[i] == '/' {
			return uri[i+1:]
		}
	}
	return uri
}

// hashIdx derives a stable index for a professor URI.
func hashIdx(p string, n int) int {
	h := 0
	for _, c := range p {
		h = h*31 + int(c)
	}
	if h < 0 {
		h = -h
	}
	return h % n
}

func (g *gen) profUGCourse(p string, courses []string) string {
	return courses[hashIdx(p, len(courses))]
}

func (g *gen) profGradCourse(p string, gradCourses []string) string {
	return gradCourses[hashIdx(p, len(gradCourses))]
}

func (g *gen) advisorCourse(advisor string, gradCourses []string) string {
	return g.profGradCourse(advisor, gradCourses)
}

func (g *gen) advisorUGCourse(advisor string, courses []string) string {
	return g.profUGCourse(advisor, courses)
}
