package lubm

import (
	"strings"
	"testing"

	"sparqlopt/internal/engine"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
)

func compactDataset(t *testing.T) *rdf.Dataset {
	t.Helper()
	return Generate(Config{Universities: 7, Seed: 1, Compact: true})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Universities: 1, Seed: 5, Compact: true})
	b := Generate(Config{Universities: 1, Seed: 5, Compact: true})
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic: %d vs %d triples", a.Len(), b.Len())
	}
	c := Generate(Config{Universities: 1, Seed: 6, Compact: true})
	if a.Len() == c.Len() {
		t.Log("different seeds produced same size (possible but unlikely)")
	}
}

func TestGenerateScales(t *testing.T) {
	small := Generate(Config{Universities: 1, Seed: 1, Compact: true})
	big := Generate(Config{Universities: 3, Seed: 1, Compact: true})
	if big.Len() < 2*small.Len() {
		t.Errorf("3 universities (%d triples) not ~3x of 1 (%d)", big.Len(), small.Len())
	}
}

func TestBenchmarkConstantsExist(t *testing.T) {
	ds := compactDataset(t)
	for _, uri := range []string{
		"http://www.Department0.University0.edu",
		"http://www.University0.edu",
		"http://www.Department0.University0.edu/AssociateProfessor0",
		"http://www.Department0.University0.edu/FullProfessor0/Publication0",
		"http://www.Department2.University6.edu/FullProfessor1/Publication1",
	} {
		if _, ok := ds.Dict.Lookup(uri); !ok {
			t.Errorf("constant %s missing from generated data", uri)
		}
	}
	// Department12 requires non-compact generation.
	full := Generate(Config{Universities: 1, Seed: 1})
	if _, ok := full.Dict.Lookup("http://www.Department12.University0.edu/FullProfessor0/Publication0"); !ok {
		t.Error("L5's publication constant missing at full scale")
	}
}

func TestQueriesParseAndClassify(t *testing.T) {
	wantTPs := map[string]int{
		"L1": 2, "L2": 2, "L3": 4, "L4": 4, "L5": 8,
		"L6": 8, "L7": 6, "L8": 6, "L9": 11, "L10": 14,
	}
	// Table III classes; L10 in the paper has 12 patterns because two
	// rdf:type patterns are folded — ours counts the appendix text.
	for _, name := range QueryNames {
		q := Query(name)
		if len(q.Patterns) != wantTPs[name] {
			t.Errorf("%s has %d patterns, want %d", name, len(q.Patterns), wantTPs[name])
		}
		if _, err := querygraph.Build(q); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Table III type checks for the unambiguous ones.
	for name, want := range map[string]querygraph.Class{
		"L1": querygraph.Star, "L2": querygraph.Chain,
		"L7": querygraph.Dense, "L8": querygraph.Dense,
	} {
		jg, _ := querygraph.NewJoinGraph(Query(name))
		if got := jg.Classify(); got != want {
			t.Errorf("%s classified %v, want %v", name, got, want)
		}
	}
}

func TestQueryPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown query")
		}
	}()
	Query("L99")
}

func TestQueriesReturnResults(t *testing.T) {
	// The point of the generator: the benchmark queries are non-empty
	// on generated data (L5 needs Department12, absent in compact
	// mode, and very selective chains may be empty at tiny scale —
	// tolerate emptiness only there).
	ds := compactDataset(t)
	mustMatch := map[string]bool{
		"L1": true, "L2": true, "L3": true, "L4": true, "L6": true,
		"L7": true, "L8": true, "L9": true, "L10": true,
	}
	for _, name := range QueryNames {
		res, err := engine.Reference(ds, Query(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if mustMatch[name] && len(res.Rows) == 0 {
			t.Errorf("%s returned no results on generated data", name)
		}
		t.Logf("%s: %d results", name, len(res.Rows))
	}
}

func TestL5NonEmptyAtFullScale(t *testing.T) {
	// L5 names Department12's publication, which exists only outside
	// compact mode.
	ds := Generate(Config{Universities: 1, Seed: 1})
	res, err := engine.Reference(ds, Query("L5"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Error("L5 returned no results at full scale")
	}
}

func TestQueryText(t *testing.T) {
	if !strings.Contains(QueryText("L1"), "ResearchGroup") {
		t.Error("QueryText(L1) wrong")
	}
}
