// Package httpd serves a System over the SPARQL 1.1 protocol. It is
// the network face of the streaming results API: responses are encoded
// row by row straight off a RunStream cursor, so a response body can be
// arbitrarily larger than the per-query memory budget — the resident
// state is one engine chunk plus the encoder's buffer.
//
// Endpoints:
//
//	POST/GET /sparql   SPARQL 1.1 protocol query endpoint. Accepts the
//	                   query as ?query= (GET), an urlencoded form
//	                   (POST application/x-www-form-urlencoded) or a
//	                   raw body (POST application/sparql-query), and
//	                   negotiates application/sparql-results+json
//	                   (default) or text/tab-separated-values.
//	                   Optional parameters: limit, timeout (seconds),
//	                   algorithm (td-auto, td-cmd, td-cmdp, hgr-td-cmd,
//	                   greedy).
//	GET /metrics       Prometheus text exposition (System.WriteMetrics).
//	GET /healthz       liveness probe; with node failover enabled it
//	                   reports per-node breaker states and degrades to
//	                   503 while any node's breaker is open.
//	GET /debug/slowlog with Config.Debug: the slow-query log, one line
//	                   per entry, newest first.
//	GET /debug/trace   with Config.Debug: runs ?query= to completion
//	                   and returns its lifecycle trace tree.
//
// Failures map onto the protocol: malformed queries are 400 with the
// parse offset, admission-control rejections and dead-node
// unavailability (sparqlopt.UnavailableError) are 503 with a
// Retry-After hint, per-request deadlines are 504, memory-budget trips
// are 507. A
// failure after the first result byte cannot change the status line
// anymore; the handler aborts the connection instead of silently
// truncating a well-formed body.
package httpd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"sparqlopt"
)

// Config tunes a Server. The zero value serves with no default or
// maximum timeout/limit, no debug endpoints, streaming responses.
type Config struct {
	// DefaultTimeout bounds requests that do not send ?timeout=; 0
	// means no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested ?timeout=; 0 means no cap.
	MaxTimeout time.Duration
	// DefaultLimit bounds requests that do not send ?limit=; 0 means
	// unlimited.
	DefaultLimit int64
	// MaxLimit caps the client-requested ?limit=; 0 means no cap.
	MaxLimit int64
	// DefaultAlgorithm applies to requests that do not send
	// ?algorithm=; nil means the System's default.
	DefaultAlgorithm *sparqlopt.Algorithm
	// Debug exposes /debug/slowlog and /debug/trace.
	Debug bool
	// Materialize serves queries through System.Run instead of
	// RunStream — the A/B comparator for the serving benchmark; the
	// whole result is resident while the response is written.
	Materialize bool
}

// Server is the SPARQL-protocol handler for one System.
type Server struct {
	sys *sparqlopt.System
	cfg Config
	mux *http.ServeMux
}

// New builds a Server around sys.
func New(sys *sparqlopt.System, cfg Config) *Server {
	s := &Server{sys: sys, cfg: cfg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/sparql", s.handleSPARQL)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	if cfg.Debug {
		s.mux.HandleFunc("/debug/slowlog", s.handleSlowLog)
		s.mux.HandleFunc("/debug/trace", s.handleTrace)
	}
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleHealthz is the probe endpoint. Without node failover it is a
// pure liveness check ("ok"). With WithNodeFailover it also reflects
// the cluster's fault domains: any node whose breaker is open degrades
// the probe to 503 so load balancers can drain the instance, and the
// body lists every node's breaker state either way.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	nodes := s.sys.NodeHealth()
	if nodes == nil {
		io.WriteString(w, "ok\n")
		return
	}
	degraded := false
	var b strings.Builder
	for _, st := range nodes {
		if st.State == sparqlopt.NodeOpen {
			degraded = true
		}
		fmt.Fprintf(&b, "node %d: %s\n", st.Node, st.State)
	}
	if degraded {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "degraded\n")
	} else {
		io.WriteString(w, "ok\n")
	}
	io.WriteString(w, b.String())
}

// Content types of the protocol.
const (
	ctSPARQLQuery = "application/sparql-query"
	ctForm        = "application/x-www-form-urlencoded"
	ctJSON        = "application/sparql-results+json"
	ctTSV         = "text/tab-separated-values"
)

// flushEvery is how many rows may buffer before the response is
// flushed to the client mid-stream.
const flushEvery = 512

// request is one decoded protocol request.
type request struct {
	query string
	opts  []sparqlopt.RunOption
	enc   encoder
}

// handleSPARQL is the protocol query endpoint.
func (s *Server) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	req, ok := s.decodeRequest(w, r)
	if !ok {
		return
	}
	if s.cfg.Materialize {
		res, err := s.sys.Run(r.Context(), req.query, req.opts...)
		if err != nil {
			writeError(w, err)
			return
		}
		s.encodeMaterialized(w, req.enc, res)
		return
	}
	rows, err := s.sys.RunStream(r.Context(), req.query, req.opts...)
	if err != nil {
		writeError(w, err)
		return
	}
	defer rows.Close()
	s.encodeStream(w, req.enc, rows)
}

// decodeRequest extracts the query text, per-request options and the
// negotiated encoder; on failure it has already written the response.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request) (request, bool) {
	var req request
	var params map[string][]string
	switch r.Method {
	case http.MethodGet:
		params = r.URL.Query()
		req.query = first(params, "query")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if i := strings.IndexByte(ct, ';'); i >= 0 {
			ct = ct[:i]
		}
		switch strings.TrimSpace(strings.ToLower(ct)) {
		case ctSPARQLQuery:
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
			if err != nil {
				http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
				return req, false
			}
			req.query = string(body)
			params = r.URL.Query()
		case ctForm, "":
			if err := r.ParseForm(); err != nil {
				http.Error(w, "malformed form body: "+err.Error(), http.StatusBadRequest)
				return req, false
			}
			params = r.Form
			req.query = first(params, "query")
		default:
			http.Error(w, fmt.Sprintf("unsupported content type %q (want %s or %s)", ct, ctSPARQLQuery, ctForm),
				http.StatusUnsupportedMediaType)
			return req, false
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return req, false
	}
	if strings.TrimSpace(req.query) == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return req, false
	}

	enc, ok := negotiate(r.Header.Get("Accept"))
	if !ok {
		http.Error(w, fmt.Sprintf("not acceptable: supported result formats are %s and %s", ctJSON, ctTSV),
			http.StatusNotAcceptable)
		return req, false
	}
	req.enc = enc

	timeout := s.cfg.DefaultTimeout
	if v := first(params, "timeout"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil || secs <= 0 {
			http.Error(w, fmt.Sprintf("invalid timeout %q: want seconds > 0", v), http.StatusBadRequest)
			return req, false
		}
		timeout = time.Duration(secs * float64(time.Second))
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout > 0 {
		req.opts = append(req.opts, sparqlopt.WithDeadline(timeout))
	}

	limit := s.cfg.DefaultLimit
	if v := first(params, "limit"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("invalid limit %q: want a positive integer", v), http.StatusBadRequest)
			return req, false
		}
		limit = n
	}
	if s.cfg.MaxLimit > 0 && (limit <= 0 || limit > s.cfg.MaxLimit) {
		limit = s.cfg.MaxLimit
	}
	if limit > 0 {
		req.opts = append(req.opts, sparqlopt.WithLimit(limit))
	}

	if v := first(params, "algorithm"); v != "" {
		algo, ok := sparqlopt.AlgorithmByName(v)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown algorithm %q", v), http.StatusBadRequest)
			return req, false
		}
		req.opts = append(req.opts, sparqlopt.WithAlgorithm(algo))
	} else if s.cfg.DefaultAlgorithm != nil {
		req.opts = append(req.opts, sparqlopt.WithAlgorithm(*s.cfg.DefaultAlgorithm))
	}
	return req, true
}

func first(params map[string][]string, key string) string {
	if vs := params[key]; len(vs) > 0 {
		return vs[0]
	}
	return ""
}

// negotiate picks the result encoder for an Accept header. Empty,
// */* and application/* mean JSON, the protocol default.
func negotiate(accept string) (encoder, bool) {
	if strings.TrimSpace(accept) == "" {
		return jsonEncoder{}, true
	}
	for _, part := range strings.Split(accept, ",") {
		mt := part
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = mt[:i]
		}
		switch strings.TrimSpace(strings.ToLower(mt)) {
		case ctJSON, "application/json", "application/*", "*/*":
			return jsonEncoder{}, true
		case ctTSV, "text/*":
			return tsvEncoder{}, true
		}
	}
	return nil, false
}

// encodeStream writes the negotiated representation row by row off the
// cursor. A failure after the first byte cannot change the status; the
// handler aborts the connection so the client sees a truncated
// transfer, not a silently short result.
func (s *Server) encodeStream(w http.ResponseWriter, enc encoder, rows *sparqlopt.Rows) {
	w.Header().Set("Content-Type", enc.contentType())
	flusher, _ := w.(http.Flusher)
	enc.header(w, rows.Vars())
	n := 0
	for rows.Next() {
		enc.row(w, s.sys, rows.Vars(), rows.Row(), n)
		if n++; n%flushEvery == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	if err := rows.Err(); err != nil {
		panic(http.ErrAbortHandler)
	}
	enc.footer(w)
}

// encodeMaterialized writes an already-collected result in the same
// representation (the Materialize comparator path).
func (s *Server) encodeMaterialized(w http.ResponseWriter, enc encoder, res *sparqlopt.ExecResult) {
	w.Header().Set("Content-Type", enc.contentType())
	enc.header(w, res.Vars)
	for i, row := range res.Rows {
		enc.row(w, s.sys, res.Vars, row, i)
	}
	enc.footer(w)
}

// writeError maps a serving failure onto the protocol, pre-stream.
func writeError(w http.ResponseWriter, err error) {
	var pe *sparqlopt.ParseError
	var oe *sparqlopt.OverloadError
	var ue *sparqlopt.UnavailableError
	switch {
	case errors.As(err, &pe):
		http.Error(w, "malformed query: "+pe.Error(), http.StatusBadRequest)
	case errors.As(err, &oe):
		secs := int(oe.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.As(err, &ue):
		// A dead node's unreplicated fragment: the query cannot be
		// answered until the node recovers or its triples are
		// re-replicated. The retry hint is the breakers' probe horizon.
		secs := int(ue.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, sparqlopt.ErrBudgetExceeded):
		http.Error(w, err.Error(), http.StatusInsufficientStorage)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; nothing useful can be written.
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// encoder writes one result representation. Implementations stream:
// header, then rows in arrival order, then footer.
type encoder interface {
	contentType() string
	header(w io.Writer, vars []string)
	row(w io.Writer, sys *sparqlopt.System, vars []string, row []sparqlopt.TermID, i int)
	footer(w io.Writer)
}

// jsonEncoder emits application/sparql-results+json.
type jsonEncoder struct{}

func (jsonEncoder) contentType() string { return ctJSON }

func (jsonEncoder) header(w io.Writer, vars []string) {
	names, _ := json.Marshal(vars)
	fmt.Fprintf(w, `{"head":{"vars":%s},"results":{"bindings":[`, names)
}

func (jsonEncoder) row(w io.Writer, sys *sparqlopt.System, vars []string, row []sparqlopt.TermID, i int) {
	if i > 0 {
		io.WriteString(w, ",")
	}
	io.WriteString(w, "{")
	for j, id := range row {
		if j > 0 {
			io.WriteString(w, ",")
		}
		name, _ := json.Marshal(vars[j])
		typ, value := classify(sys.Term(id))
		val, _ := json.Marshal(value)
		fmt.Fprintf(w, `%s:{"type":%q,"value":%s}`, name, typ, val)
	}
	io.WriteString(w, "}")
}

func (jsonEncoder) footer(w io.Writer) { io.WriteString(w, "]}}\n") }

// classify splits a dictionary term into its SPARQL results type and
// lexical value: quoted strings are literals, "_:"-prefixed terms are
// blank nodes, everything else is an IRI.
func classify(term string) (typ, value string) {
	switch {
	case len(term) >= 2 && term[0] == '"':
		return "literal", strings.Trim(term, `"`)
	case strings.HasPrefix(term, "_:"):
		return "bnode", term[2:]
	default:
		return "uri", term
	}
}

// tsvEncoder emits SPARQL 1.1 TSV: IRIs in angle brackets, literals
// quoted, one row per line.
type tsvEncoder struct{}

func (tsvEncoder) contentType() string { return ctTSV }

func (tsvEncoder) header(w io.Writer, vars []string) {
	for i, v := range vars {
		if i > 0 {
			io.WriteString(w, "\t")
		}
		io.WriteString(w, "?"+v)
	}
	io.WriteString(w, "\n")
}

func (tsvEncoder) row(w io.Writer, sys *sparqlopt.System, vars []string, row []sparqlopt.TermID, i int) {
	for j, id := range row {
		if j > 0 {
			io.WriteString(w, "\t")
		}
		term := sys.Term(id)
		if typ, _ := classify(term); typ == "uri" {
			fmt.Fprintf(w, "<%s>", term)
		} else {
			io.WriteString(w, term)
		}
	}
	io.WriteString(w, "\n")
}

func (tsvEncoder) footer(io.Writer) {}

// handleMetrics exposes the System's Prometheus registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.sys.WriteMetrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusNotImplemented)
	}
}

// handleSlowLog dumps the slow-query log, newest first.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, e := range s.sys.SlowQueries() {
		fmt.Fprintln(w, e.String())
	}
}

// handleTrace runs ?query= to completion with a trace sink and returns
// the lifecycle tree — the debug view of one serving call.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query().Get("query")
	if strings.TrimSpace(query) == "" {
		http.Error(w, "missing query parameter", http.StatusBadRequest)
		return
	}
	var tr *sparqlopt.Trace
	_, err := s.sys.Run(r.Context(), query, sparqlopt.WithTraceSink(func(t *sparqlopt.Trace) { tr = t }))
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, tr.Format())
}
