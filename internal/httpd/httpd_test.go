package httpd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sparqlopt"
)

// testSystem opens a small social graph over four nodes.
func testSystem(t *testing.T, opts ...sparqlopt.Option) *sparqlopt.System {
	t.Helper()
	ds := sparqlopt.NewDataset()
	ds.Add("alice", "worksFor", "acme")
	ds.Add("bob", "worksFor", "acme")
	ds.Add("carol", "worksFor", "globex")
	ds.Add("acme", "inCity", "berlin")
	ds.Add("globex", "inCity", "tokyo")
	ds.Add("alice", "knows", "bob")
	ds.Add("bob", "knows", "carol")
	sys, err := sparqlopt.Open(ds, append([]sparqlopt.Option{sparqlopt.WithNodes(4)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	return sys
}

func newServer(t *testing.T, sys *sparqlopt.System, cfg Config) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(sys, cfg))
	t.Cleanup(srv.Close)
	return srv
}

// sparqlJSON is the wire shape of application/sparql-results+json.
type sparqlJSON struct {
	Head struct {
		Vars []string `json:"vars"`
	} `json:"head"`
	Results struct {
		Bindings []map[string]struct {
			Type  string `json:"type"`
			Value string `json:"value"`
		} `json:"bindings"`
	} `json:"results"`
}

func decodeJSON(t *testing.T, body []byte) sparqlJSON {
	t.Helper()
	var out sparqlJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("response is not valid SPARQL JSON: %v\n%s", err, body)
	}
	return out
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

const orgQuery = `SELECT ?p ?o WHERE { ?p <worksFor> ?o . }`

// TestProtocolBindings: the three protocol request forms — GET, POST
// urlencoded, POST direct — must be equivalent.
func TestProtocolBindings(t *testing.T) {
	sys := testSystem(t)
	srv := newServer(t, sys, Config{})

	resp, viaGet := get(t, srv.URL+"/sparql?query="+url.QueryEscape(orgQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: %d %s", resp.StatusCode, viaGet)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ctJSON {
		t.Fatalf("GET content type %q, want %q", ct, ctJSON)
	}

	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{"query": {orgQuery}})
	if err != nil {
		t.Fatal(err)
	}
	viaForm, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST form: %d %s", resp.StatusCode, viaForm)
	}

	resp, err = http.Post(srv.URL+"/sparql", ctSPARQLQuery, strings.NewReader(orgQuery))
	if err != nil {
		t.Fatal(err)
	}
	viaDirect, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST direct: %d %s", resp.StatusCode, viaDirect)
	}

	if string(viaGet) != string(viaForm) || string(viaGet) != string(viaDirect) {
		t.Fatalf("protocol bindings disagree:\nGET:    %s\nform:   %s\ndirect: %s", viaGet, viaForm, viaDirect)
	}
	out := decodeJSON(t, viaGet)
	if len(out.Head.Vars) != 2 || out.Head.Vars[0] != "p" || out.Head.Vars[1] != "o" {
		t.Fatalf("vars = %v", out.Head.Vars)
	}
	if len(out.Results.Bindings) != 3 {
		t.Fatalf("got %d bindings, want 3", len(out.Results.Bindings))
	}
	for _, b := range out.Results.Bindings {
		if b["p"].Type != "uri" {
			t.Fatalf("binding type %q, want uri", b["p"].Type)
		}
	}
}

// TestContentNegotiation: TSV on request, JSON for */*, 406 otherwise.
func TestContentNegotiation(t *testing.T) {
	sys := testSystem(t)
	srv := newServer(t, sys, Config{})
	reqURL := srv.URL + "/sparql?query=" + url.QueryEscape(orgQuery)

	req, _ := http.NewRequest(http.MethodGet, reqURL, nil)
	req.Header.Set("Accept", ctTSV)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != ctTSV {
		t.Fatalf("TSV: %d %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("TSV lines = %d:\n%s", len(lines), body)
	}
	if lines[0] != "?p\t?o" {
		t.Fatalf("TSV header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.HasPrefix(line, "<") || !strings.Contains(line, ">\t<") {
			t.Fatalf("TSV row %q: IRIs must be angle-bracketed", line)
		}
	}

	req, _ = http.NewRequest(http.MethodGet, reqURL, nil)
	req.Header.Set("Accept", "*/*")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Content-Type") != ctJSON {
		t.Fatalf("*/* negotiated %q, want JSON", resp.Header.Get("Content-Type"))
	}

	req, _ = http.NewRequest(http.MethodGet, reqURL, nil)
	req.Header.Set("Accept", "application/rdf+xml")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("unsupported Accept: %d, want 406", resp.StatusCode)
	}
}

// TestProtocolErrors: malformed queries carry the parse offset in a
// 400; bad methods, media types and parameters get their own statuses.
func TestProtocolErrors(t *testing.T) {
	sys := testSystem(t)
	srv := newServer(t, sys, Config{})

	resp, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape(`SELECT ?x WHERE { ?x <p> }`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed query: %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(string(body), "offset") {
		t.Fatalf("400 body must carry the parse offset: %s", body)
	}

	resp, _ = get(t, srv.URL+"/sparql")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing query: %d, want 400", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/sparql", nil)
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusMethodNotAllowed || r2.Header.Get("Allow") == "" {
		t.Fatalf("PUT: %d Allow=%q, want 405 with Allow", r2.StatusCode, r2.Header.Get("Allow"))
	}

	r3, err := http.Post(srv.URL+"/sparql", "text/turtle", strings.NewReader(orgQuery))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("turtle POST: %d, want 415", r3.StatusCode)
	}

	for _, bad := range []string{"limit=0", "limit=abc", "timeout=-1", "algorithm=quantum"} {
		resp, _ := get(t, srv.URL+"/sparql?"+bad+"&query="+url.QueryEscape(orgQuery))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestRequestParameters: limit and algorithm shape the execution.
func TestRequestParameters(t *testing.T) {
	sys := testSystem(t)
	srv := newServer(t, sys, Config{})

	resp, body := get(t, srv.URL+"/sparql?limit=2&query="+url.QueryEscape(orgQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit=2: %d %s", resp.StatusCode, body)
	}
	if out := decodeJSON(t, body); len(out.Results.Bindings) != 2 {
		t.Fatalf("limit=2 returned %d bindings", len(out.Results.Bindings))
	}

	for _, algo := range []string{"td-cmd", "greedy", "td-auto"} {
		resp, body := get(t, srv.URL+"/sparql?algorithm="+algo+"&query="+url.QueryEscape(orgQuery))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("algorithm=%s: %d %s", algo, resp.StatusCode, body)
		}
		if out := decodeJSON(t, body); len(out.Results.Bindings) != 3 {
			t.Fatalf("algorithm=%s returned %d bindings", algo, len(out.Results.Bindings))
		}
	}
}

// TestServerLimitCaps: MaxLimit clamps both explicit and absent client
// limits.
func TestServerLimitCaps(t *testing.T) {
	sys := testSystem(t)
	srv := newServer(t, sys, Config{MaxLimit: 1})
	resp, body := get(t, srv.URL+"/sparql?limit=100&query="+url.QueryEscape(orgQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%d %s", resp.StatusCode, body)
	}
	if out := decodeJSON(t, body); len(out.Results.Bindings) != 1 {
		t.Fatalf("MaxLimit=1 returned %d bindings", len(out.Results.Bindings))
	}
}

// TestOverload503: admission rejection surfaces as 503 plus a
// Retry-After hint while a streaming read pins the only slot.
func TestOverload503(t *testing.T) {
	sys := testSystem(t, sparqlopt.WithAdmissionControl(1, 0))
	srv := newServer(t, sys, Config{})

	rows, err := sys.RunStream(context.Background(), orgQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()

	resp, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape(orgQuery))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}

	resp, body = get(t, srv.URL+"/sparql?query="+url.QueryEscape(orgQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: %d %s", resp.StatusCode, body)
	}
}

// TestBoundedMemoryOverHTTP is the serving face of the redesign's
// acceptance bar: a result whose materialized form exceeds the
// per-query budget still completes over HTTP when streamed, and the
// same query through the materializing comparator trips 507.
func TestBoundedMemoryOverHTTP(t *testing.T) {
	ds := sparqlopt.NewDataset()
	for i := 0; i < 300; i++ {
		for j := 0; j < 300; j++ {
			ds.Add(fmt.Sprintf("a%d", i), "n", fmt.Sprintf("b%d", j))
		}
	}
	// One node keeps the scan dedup-free; see TestStreamBoundedMemory.
	sys, err := sparqlopt.Open(ds, sparqlopt.WithNodes(1), sparqlopt.WithMemoryBudget(1<<21, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	const src = `SELECT * WHERE { ?a <n> ?b . }`

	srv := newServer(t, sys, Config{})
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/sparql?query="+url.QueryEscape(src), nil)
	req.Header.Set("Accept", ctTSV)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rowCount := 0
	sc := newLineCounter(resp.Body)
	for sc.next() {
		rowCount++
	}
	resp.Body.Close()
	if sc.err != nil {
		t.Fatalf("streamed body failed: %v", sc.err)
	}
	if resp.StatusCode != http.StatusOK || rowCount != 90000+1 { // header + rows
		t.Fatalf("streamed: %d, %d lines; want 200 with 90001 lines", resp.StatusCode, rowCount)
	}

	mat := newServer(t, sys, Config{Materialize: true})
	resp2, body := get(t, mat.URL+"/sparql?query="+url.QueryEscape(src))
	if resp2.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("materializing comparator: %d %.120s, want 507", resp2.StatusCode, body)
	}
}

// lineCounter counts newline-terminated lines without retaining them.
type lineCounter struct {
	r       io.Reader
	buf     []byte
	pending int
	err     error
}

func newLineCounter(r io.Reader) *lineCounter {
	return &lineCounter{r: r, buf: make([]byte, 64<<10)}
}

func (l *lineCounter) next() bool {
	for {
		if l.pending > 0 {
			l.pending--
			return true
		}
		n, err := l.r.Read(l.buf)
		for _, b := range l.buf[:n] {
			if b == '\n' {
				l.pending++
			}
		}
		if err != nil {
			if l.pending > 0 {
				l.pending--
				if err != io.EOF {
					l.err = err
				}
				return true
			}
			if err != io.EOF {
				l.err = err
			}
			return false
		}
	}
}

// TestMidStreamDisconnect: a client that walks away mid-body cancels
// the query; the in-flight gauge drains and the server keeps serving.
func TestMidStreamDisconnect(t *testing.T) {
	ds := sparqlopt.NewDataset()
	for i := 0; i < 200; i++ {
		for j := 0; j < 200; j++ {
			ds.Add(fmt.Sprintf("a%d", i), "n", fmt.Sprintf("b%d", j))
		}
	}
	sys, err := sparqlopt.Open(ds, sparqlopt.WithNodes(1),
		sparqlopt.WithAdmissionControl(4, 0), sparqlopt.WithObservability())
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	srv := newServer(t, sys, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/sparql?query="+url.QueryEscape(`SELECT * WHERE { ?a <n> ?b . }`), nil)
	req.Header.Set("Accept", ctTSV)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 1<<10)
	if _, err := io.ReadFull(resp.Body, one); err != nil {
		t.Fatalf("reading the first KiB: %v", err)
	}
	cancel()
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body := get(t, srv.URL+"/metrics")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/metrics: %d", resp.StatusCode)
		}
		if strings.Contains(string(body), "resilience_in_flight 0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("in-flight gauge never drained after disconnect:\n%s", body)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp2, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape(`SELECT * WHERE { ?a <n> ?b . } `)+"&limit=5")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("serving after a disconnect: %d %s", resp2.StatusCode, body)
	}
}

// TestDebugEndpoints: slowlog and trace are exposed only with Debug.
func TestDebugEndpoints(t *testing.T) {
	sys := testSystem(t, sparqlopt.WithObservability(sparqlopt.WithSlowQueryLog(8, 0)))
	srv := newServer(t, sys, Config{Debug: true})

	if resp, _ := get(t, srv.URL+"/sparql?query="+url.QueryEscape(orgQuery)); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d", resp.StatusCode)
	}
	resp, body := get(t, srv.URL+"/debug/slowlog")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "rows=3") {
		t.Fatalf("slowlog: %d %s", resp.StatusCode, body)
	}
	resp, body = get(t, srv.URL+"/debug/trace?query="+url.QueryEscape(orgQuery))
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "execute") {
		t.Fatalf("trace: %d %s", resp.StatusCode, body)
	}

	plain := newServer(t, sys, Config{})
	if resp, _ := get(t, plain.URL+"/debug/slowlog"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("slowlog without Debug: %d, want 404", resp.StatusCode)
	}
}

// TestHealthAndMetrics: the liveness and exposition endpoints answer.
func TestHealthAndMetrics(t *testing.T) {
	sys := testSystem(t, sparqlopt.WithObservability())
	srv := newServer(t, sys, Config{})
	if resp, body := get(t, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "query_runs_total") {
		t.Fatalf("metrics: %d %.200s", resp.StatusCode, body)
	}
}

// TestServeSmoke is the make-check gate: a mixed workload — cache hits
// and misses, an overload burst, a mid-stream disconnect — against one
// server, then a clean shutdown with zero leaked goroutines.
func TestServeSmoke(t *testing.T) {
	baseline := runtime.NumGoroutine()

	ds := sparqlopt.NewDataset()
	for i := 0; i < 40; i++ {
		ds.Add(fmt.Sprintf("p%d", i), "worksFor", fmt.Sprintf("org%d", i%5))
		ds.Add(fmt.Sprintf("org%d", i%5), "inCity", fmt.Sprintf("city%d", i%3))
	}
	sys, err := sparqlopt.Open(ds, sparqlopt.WithNodes(4),
		sparqlopt.WithPlanCache(32),
		sparqlopt.WithExecutionSharing(),
		sparqlopt.WithAdmissionControl(2, 2),
		sparqlopt.WithObservability())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(sys, Config{MaxTimeout: 10 * time.Second}))

	queries := []string{
		`SELECT ?p ?o WHERE { ?p <worksFor> ?o . }`,
		`SELECT ?p ?c WHERE { ?p <worksFor> ?o . ?o <inCity> ?c . }`,
		`SELECT ?o WHERE { ?p <worksFor> ?o . }`,
	}
	var wg sync.WaitGroup
	var ok, rejected, failed int
	var mu sync.Mutex
	for round := 0; round < 4; round++ {
		for _, q := range queries { // repeats make cache hits
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape(q))
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok++
				case http.StatusServiceUnavailable:
					rejected++
				default:
					failed++
				}
				mu.Unlock()
			}(q)
		}
	}
	wg.Wait()
	if failed > 0 {
		t.Fatalf("%d requests failed outright", failed)
	}
	if ok == 0 {
		t.Fatal("no request succeeded")
	}

	// A walk-away client mid-burst must not wedge the server.
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		srv.URL+"/sparql?query="+url.QueryEscape(queries[1]), nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		cancel()
		resp.Body.Close()
	} else {
		cancel()
	}

	if resp, _ := get(t, srv.URL+"/sparql?query="+url.QueryEscape(queries[0])); resp.StatusCode != http.StatusOK {
		t.Fatalf("after the burst: %d", resp.StatusCode)
	}

	srv.Close()
	http.DefaultClient.CloseIdleConnections()
	sys.Close()

	// Manual leak check: allow the runtime a moment to retire handler
	// goroutines, then diff against the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
	t.Logf("smoke: %d ok, %d overload-rejected, 0 leaked goroutines", ok, rejected)
}

// TestUnavailableMapsTo503: a query that needs a dead node's
// unreplicated fragment must surface as 503 with a Retry-After hint —
// the SPARQL-protocol face of the typed UnavailableError — and
// /healthz must degrade to 503 naming the open breaker while the node
// is down, then return to ok once the breaker closes.
func TestUnavailableMapsTo503(t *testing.T) {
	var nanos atomic.Int64
	clock := func() time.Time { return time.Unix(0, nanos.Load()) }
	// One node: killing it strands every triple, so any query is a
	// typed unavailable failure while its breaker is open.
	sys := testSystem(t,
		sparqlopt.WithNodes(1),
		sparqlopt.WithNodeFailover(sparqlopt.NodeFailoverConfig{
			MaxAttempts:        1,
			BreakerConsecutive: 2,
			OpenFor:            time.Second,
			ProbeSuccesses:     1,
			Clock:              clock,
		}))
	srv := newServer(t, sys, Config{})

	if resp, _ := get(t, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while healthy: %d", resp.StatusCode)
	}

	// Trip node 0's breaker with directly-injected scan faults.
	faults := sparqlopt.NewFaultSet(1)
	faults.Arm(sparqlopt.FaultNodeScan(0), 1)
	for i := 0; i < 3; i++ {
		sys.Run(context.Background(), orgQuery, sparqlopt.WithFaultInjection(faults))
	}
	if st := sys.NodeHealth(); st[0].State != sparqlopt.NodeOpen {
		t.Fatalf("node 0 breaker = %v, want open", st[0].State)
	}

	resp, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape(orgQuery))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead-node query: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 on UnavailableError must carry Retry-After")
	}
	if !strings.Contains(string(body), "unavailable") {
		t.Errorf("503 body %q does not name the failure", body)
	}

	resp, body = get(t, srv.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with an open breaker: %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "degraded") || !strings.Contains(string(body), "node 0: open") {
		t.Errorf("healthz body %q should report the open breaker", body)
	}

	// Past the open window the next query is the half-open probe; it
	// runs clean, closes the breaker and serving returns to 200/ok.
	nanos.Store(int64(2 * time.Second))
	if resp, body := get(t, srv.URL+"/sparql?query="+url.QueryEscape(orgQuery)); resp.StatusCode != http.StatusOK {
		t.Fatalf("probe query: %d %s", resp.StatusCode, body)
	}
	if resp, body := get(t, srv.URL+"/healthz"); resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "node 0: healthy") {
		t.Fatalf("healthz after recovery: %d %q", resp.StatusCode, body)
	}
}
