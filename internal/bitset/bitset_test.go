package bitset

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFull(t *testing.T) {
	if Full(0) != 0 {
		t.Errorf("Full(0) = %v, want empty", Full(0))
	}
	if Full(3) != Of(0, 1, 2) {
		t.Errorf("Full(3) = %v", Full(3))
	}
	if Full(64) != ^TPSet(0) {
		t.Errorf("Full(64) = %x", uint64(Full(64)))
	}
	if got := Full(64).Len(); got != 64 {
		t.Errorf("Full(64).Len() = %d", got)
	}
}

func TestFullPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Full(%d) did not panic", n)
				}
			}()
			Full(n)
		}()
	}
}

func TestBasicOps(t *testing.T) {
	s := Of(1, 5, 9)
	if !s.Has(5) || s.Has(2) {
		t.Errorf("Has wrong: %v", s)
	}
	if s.Add(2) != Of(1, 2, 5, 9) {
		t.Errorf("Add wrong")
	}
	if s.Remove(5) != Of(1, 9) {
		t.Errorf("Remove wrong")
	}
	if s.Remove(4) != s {
		t.Errorf("Remove of absent member changed set")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.Min() != 1 {
		t.Errorf("Min = %d, want 1", s.Min())
	}
	if s.String() != "{1,5,9}" {
		t.Errorf("String = %q", s.String())
	}
	if TPSet(0).String() != "{}" {
		t.Errorf("empty String = %q", TPSet(0).String())
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min of empty set did not panic")
		}
	}()
	TPSet(0).Min()
}

func TestSetAlgebra(t *testing.T) {
	a, b := Of(0, 1, 2), Of(2, 3)
	if a.Union(b) != Of(0, 1, 2, 3) {
		t.Error("Union wrong")
	}
	if a.Intersect(b) != Of(2) {
		t.Error("Intersect wrong")
	}
	if a.Diff(b) != Of(0, 1) {
		t.Error("Diff wrong")
	}
	if !Of(1).SubsetOf(a) || b.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	if !a.Overlaps(b) || a.Overlaps(Of(5)) {
		t.Error("Overlaps wrong")
	}
	if !TPSet(0).IsEmpty() || a.IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestMembersRoundTrip(t *testing.T) {
	want := []int{0, 7, 13, 63}
	s := Of(want...)
	got := s.Members()
	if len(got) != len(want) {
		t.Fatalf("Members = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Members = %v, want %v", got, want)
		}
	}
}

func TestEachEarlyStop(t *testing.T) {
	s := Of(1, 2, 3, 4)
	n := 0
	s.Each(func(int) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("Each visited %d members after early stop, want 2", n)
	}
}

func TestSubsetsCount(t *testing.T) {
	s := Of(0, 2, 5)
	n := 0
	s.Subsets(func(sub TPSet) bool {
		if !sub.SubsetOf(s) || sub.IsEmpty() {
			t.Errorf("bad subset %v", sub)
		}
		n++
		return true
	})
	if n != 7 { // 2^3 - 1
		t.Errorf("Subsets visited %d, want 7", n)
	}
}

func TestSubsetsEmpty(t *testing.T) {
	TPSet(0).Subsets(func(TPSet) bool {
		t.Error("subset emitted for empty set")
		return true
	})
}

func TestProperSubsets(t *testing.T) {
	s := Of(1, 3)
	seen := map[TPSet]bool{}
	s.ProperSubsets(func(sub TPSet) bool {
		if sub == s {
			t.Error("full set emitted by ProperSubsets")
		}
		seen[sub] = true
		return true
	})
	if len(seen) != 2 {
		t.Errorf("ProperSubsets count = %d, want 2", len(seen))
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	n := 0
	Of(0, 1, 2, 3).Subsets(func(TPSet) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("Subsets visited %d after early stop, want 3", n)
	}
}

// Property: Members round-trips with Of, and Len agrees with popcount.
func TestQuickMembersOf(t *testing.T) {
	f := func(x uint64) bool {
		s := TPSet(x)
		if s.Len() != bits.OnesCount64(x) {
			return false
		}
		return Of(s.Members()...) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: subset enumeration emits each subset exactly once.
func TestQuickSubsetsUnique(t *testing.T) {
	f := func(x uint16) bool {
		s := TPSet(x)
		seen := map[TPSet]bool{}
		ok := true
		s.Subsets(func(sub TPSet) bool {
			if seen[sub] || !sub.SubsetOf(s) || sub.IsEmpty() {
				ok = false
				return false
			}
			seen[sub] = true
			return true
		})
		want := 0
		if s != 0 {
			want = 1<<uint(s.Len()) - 1
		}
		return ok && len(seen) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan over a fixed universe.
func TestQuickDeMorgan(t *testing.T) {
	u := Full(64)
	f := func(a, b uint64) bool {
		x, y := TPSet(a), TPSet(b)
		return u.Diff(x.Union(y)) == u.Diff(x).Intersect(u.Diff(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Hash must be deterministic and spread consecutive bitsets across
// memo shards: over all 64 singletons plus 200 random sets, no more
// than a small fraction may collide modulo a 64-way shard table.
func TestHash(t *testing.T) {
	if Of(3, 7).Hash() != Of(3, 7).Hash() {
		t.Fatal("Hash is not deterministic")
	}
	shards := make(map[uint64]int)
	sets := 0
	for i := 0; i < 64; i++ {
		shards[Of(i).Hash()%64]++
		sets++
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		shards[TPSet(rng.Uint64()).Hash()%64]++
		sets++
	}
	max := 0
	for _, n := range shards {
		if n > max {
			max = n
		}
	}
	// A perfectly uniform spread puts ~4 sets per shard; allow 4×.
	if max > 16 {
		t.Errorf("shard skew: busiest shard holds %d of %d sets", max, sets)
	}
}
