// Package bitset provides the compact subquery encoding used throughout
// the optimizer. A query is a set of at most 64 triple patterns; a
// subquery is encoded as a TPSet, a 64-bit bitset in which bit i is set
// when triple pattern i belongs to the subquery (paper §III-B).
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// MaxPatterns is the largest number of triple patterns a single query
// may contain. The paper evaluates queries of up to 30 triple patterns;
// a single machine word keeps every set operation O(1).
const MaxPatterns = 64

// TPSet is a set of triple-pattern indexes encoded as a bitset.
// The zero value is the empty set and is ready to use.
type TPSet uint64

// Full returns the set {0, 1, ..., n-1}. It panics if n exceeds
// MaxPatterns.
func Full(n int) TPSet {
	if n < 0 || n > MaxPatterns {
		panic("bitset: size out of range")
	}
	if n == MaxPatterns {
		return ^TPSet(0)
	}
	return TPSet(1)<<uint(n) - 1
}

// Single returns the singleton set {i}.
func Single(i int) TPSet { return TPSet(1) << uint(i) }

// Of returns the set containing exactly the given indexes.
func Of(indexes ...int) TPSet {
	var s TPSet
	for _, i := range indexes {
		s |= Single(i)
	}
	return s
}

// Has reports whether i is a member of s.
func (s TPSet) Has(i int) bool { return s&Single(i) != 0 }

// Add returns s ∪ {i}.
func (s TPSet) Add(i int) TPSet { return s | Single(i) }

// Remove returns s \ {i}.
func (s TPSet) Remove(i int) TPSet { return s &^ Single(i) }

// Union returns s ∪ t.
func (s TPSet) Union(t TPSet) TPSet { return s | t }

// Intersect returns s ∩ t.
func (s TPSet) Intersect(t TPSet) TPSet { return s & t }

// Diff returns s \ t.
func (s TPSet) Diff(t TPSet) TPSet { return s &^ t }

// IsEmpty reports whether s is the empty set.
func (s TPSet) IsEmpty() bool { return s == 0 }

// Len returns the number of members of s.
func (s TPSet) Len() int { return bits.OnesCount64(uint64(s)) }

// SubsetOf reports whether every member of s is a member of t.
// This is the bitset containment test of appendix A
// (b_MLQ & b_SQ == b_SQ).
func (s TPSet) SubsetOf(t TPSet) bool { return s&t == s }

// Overlaps reports whether s and t share at least one member.
func (s TPSet) Overlaps(t TPSet) bool { return s&t != 0 }

// Min returns the smallest member of s. It panics on the empty set.
func (s TPSet) Min() int {
	if s == 0 {
		panic("bitset: Min of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// Each calls f for every member of s in increasing order. Iteration
// stops early if f returns false.
func (s TPSet) Each(f func(i int) bool) {
	for s != 0 {
		i := bits.TrailingZeros64(uint64(s))
		if !f(i) {
			return
		}
		s &= s - 1
	}
}

// Members returns the members of s in increasing order.
func (s TPSet) Members() []int {
	out := make([]int, 0, s.Len())
	s.Each(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Subsets calls f for every non-empty subset of s, in an unspecified
// order. Iteration stops early if f returns false. The classic
// sub = (sub - 1) & s trick enumerates exactly the 2^|s|−1 non-empty
// subsets.
func (s TPSet) Subsets(f func(sub TPSet) bool) {
	for sub := s; sub != 0; sub = (sub - 1) & s {
		if !f(sub) {
			return
		}
	}
}

// ProperSubsets calls f for every non-empty proper subset of s.
func (s TPSet) ProperSubsets(f func(sub TPSet) bool) {
	s.Subsets(func(sub TPSet) bool {
		if sub == s {
			return true
		}
		return f(sub)
	})
}

// Hash returns a well-mixed 64-bit hash of the set (the finalizer of
// splitmix64). Raw TPSet values of related subqueries differ only in a
// few low bits; the mix spreads them evenly, which shard selection in
// the optimizer's lock-striped memo table relies on.
func (s TPSet) Hash() uint64 {
	x := uint64(s)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// String renders the set as "{0,3,5}".
func (s TPSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Each(func(i int) bool {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
		return true
	})
	b.WriteByte('}')
	return b.String()
}
