package ntriples

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"sparqlopt/internal/rdf"
)

func TestReadSimple(t *testing.T) {
	in := `
# a comment
<http://a> <http://p> <http://b> .
<http://a> <http://p> "lit" .

<http://b> <http://q> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://c> <http://r> "hi"@en .
_:b1 <http://s> <http://d> .
`
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 5 {
		t.Fatalf("Len = %d, want 5", ds.Len())
	}
	want := []string{
		`<http://a> <http://p> <http://b> .`,
		`<http://a> <http://p> "lit" .`,
		`<http://b> <http://q> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`<http://c> <http://r> "hi"@en .`,
		`_:b1 <http://s> <http://d> .`,
	}
	var buf bytes.Buffer
	if err := Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(got) != len(want) {
		t.Fatalf("wrote %d lines, want %d:\n%s", len(got), len(want), buf.String())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReadEscapedQuote(t *testing.T) {
	in := `<a> <p> "he said \"hi\"" .`
	ds, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	term := ds.Dict.Term(ds.Triples[0].O)
	if term != `"he said \"hi\""` {
		t.Errorf("object = %q", term)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"missing dot", `<a> <p> <b>`},
		{"unterminated iri", `<a <p> <b> .`},
		{"unterminated literal", `<a> <p> "oops .`},
		{"garbage term", `<a> <p> ??? .`},
		{"too few terms", `<a> <p> .`},
		{"bad blank node", `_x <p> <b> .`},
		{"trailing garbage", `<a> <p> <b> . extra`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("no error for %q", c.in)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error type %T, want *ParseError", err)
			}
			if pe.Line != 1 {
				t.Errorf("Line = %d, want 1", pe.Line)
			}
		})
	}
}

func TestParseErrorMessage(t *testing.T) {
	e := &ParseError{Line: 7, Msg: "boom"}
	if !strings.Contains(e.Error(), "line 7") || !strings.Contains(e.Error(), "boom") {
		t.Errorf("Error() = %q", e.Error())
	}
}

func TestReadInto(t *testing.T) {
	ds := rdf.NewDataset()
	ds.Add("x", "y", "z")
	if err := ReadInto(strings.NewReader("<a> <b> <c> ."), ds); err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Errorf("Len = %d, want 2", ds.Len())
	}
}

// Property: Write then Read round-trips IRI-only datasets.
func TestQuickRoundTrip(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		ds := rdf.NewDataset()
		for _, r := range raw {
			ds.Add(
				"urn:s"+string(rune('a'+r[0]%26)),
				"urn:p"+string(rune('a'+r[1]%26)),
				"urn:o"+string(rune('a'+r[2]%26)),
			)
		}
		var buf bytes.Buffer
		if err := Write(&buf, ds); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || got.Len() != ds.Len() {
			return false
		}
		for i := range ds.Triples {
			if got.String(got.Triples[i]) != ds.String(ds.Triples[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
