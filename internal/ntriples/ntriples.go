// Package ntriples reads and writes a pragmatic subset of the
// N-Triples serialization: one triple per line, terms are IRIs in
// angle brackets, plain or typed literals in double quotes, or blank
// nodes (_:label); lines end with '.' and '#' starts a comment.
//
// The parser is line-oriented and streaming, suitable for loading the
// multi-million-triple datasets the workload generators produce.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"sparqlopt/internal/rdf"
)

// ParseError describes a malformed input line.
type ParseError struct {
	Line int    // 1-based line number
	Msg  string // what went wrong
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// Read parses N-Triples from r into a fresh dataset.
func Read(r io.Reader) (*rdf.Dataset, error) {
	ds := rdf.NewDataset()
	if err := ReadInto(r, ds); err != nil {
		return nil, err
	}
	return ds, nil
}

// ReadInto parses N-Triples from r, appending to ds.
func ReadInto(r io.Reader, ds *rdf.Dataset) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, err := parseLine(line)
		if err != nil {
			return &ParseError{Line: lineno, Msg: err.Error()}
		}
		ds.Add(s, p, o)
	}
	return sc.Err()
}

// parseLine splits one statement into its three term strings.
func parseLine(line string) (s, p, o string, err error) {
	rest := line
	if s, rest, err = parseTerm(rest); err != nil {
		return "", "", "", fmt.Errorf("subject: %v", err)
	}
	if p, rest, err = parseTerm(rest); err != nil {
		return "", "", "", fmt.Errorf("predicate: %v", err)
	}
	if o, rest, err = parseTerm(rest); err != nil {
		return "", "", "", fmt.Errorf("object: %v", err)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return "", "", "", fmt.Errorf("expected terminating '.', got %q", rest)
	}
	return s, p, o, nil
}

// parseTerm consumes one term from the front of s and returns the term
// text (without the surrounding brackets for IRIs; with quotes and any
// datatype/lang suffix preserved for literals) and the remainder.
func parseTerm(s string) (term, rest string, err error) {
	s = strings.TrimLeft(s, " \t")
	if s == "" {
		return "", "", fmt.Errorf("unexpected end of line")
	}
	switch s[0] {
	case '<':
		end := strings.IndexByte(s, '>')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated IRI")
		}
		return s[1:end], s[end+1:], nil
	case '"':
		i := 1
		for i < len(s) {
			switch s[i] {
			case '\\':
				i += 2
				continue
			case '"':
				// Include optional ^^<type> or @lang suffix.
				j := i + 1
				if j < len(s) && s[j] == '@' {
					for j < len(s) && s[j] != ' ' && s[j] != '\t' {
						j++
					}
				} else if j+1 < len(s) && s[j] == '^' && s[j+1] == '^' {
					k := strings.IndexByte(s[j:], '>')
					if k < 0 {
						return "", "", fmt.Errorf("unterminated literal datatype")
					}
					j += k + 1
				}
				return s[:j], s[j:], nil
			}
			i++
		}
		return "", "", fmt.Errorf("unterminated literal")
	case '_':
		if len(s) < 2 || s[1] != ':' {
			return "", "", fmt.Errorf("malformed blank node")
		}
		end := strings.IndexAny(s, " \t")
		if end < 0 {
			return "", "", fmt.Errorf("blank node at end of line")
		}
		return s[:end], s[end:], nil
	default:
		return "", "", fmt.Errorf("unexpected character %q", s[0])
	}
}

// Write serializes the dataset as N-Triples. IRIs are written in angle
// brackets; terms that look like literals (leading '"') or blank nodes
// (leading "_:") are written verbatim.
func Write(w io.Writer, ds *rdf.Dataset) error {
	bw := bufio.NewWriter(w)
	for _, t := range ds.Triples {
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n",
			formatTerm(ds.Dict.Term(t.S)),
			formatTerm(ds.Dict.Term(t.P)),
			formatTerm(ds.Dict.Term(t.O))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func formatTerm(term string) string {
	if strings.HasPrefix(term, `"`) || strings.HasPrefix(term, "_:") {
		return term
	}
	return "<" + term + ">"
}
