package ntriples

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the reader never panics and that accepted input
// survives a Write/Read round trip.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"<a> <b> <c> .",
		"<a> <b> \"lit\" .\n<x> <y> <z> .",
		"# comment\n_:b <p> <o> .",
		"<a> <b> \"t\"@en .",
		"<a> <b> \"5\"^^<http://t> .",
		"<a> <b .", "garbage",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		ds, err := Read(strings.NewReader(src))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, ds); err != nil {
			t.Fatalf("write of accepted input failed: %v", err)
		}
		ds2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-read failed: %v\noriginal: %q\nwritten: %q", err, src, buf.String())
		}
		if ds2.Len() != ds.Len() {
			t.Fatalf("round trip changed triple count: %d vs %d", ds2.Len(), ds.Len())
		}
	})
}
