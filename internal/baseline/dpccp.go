package baseline

import (
	"context"
	"fmt"
	"sort"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
)

// DPccp is the bottom-up dynamic programming algorithm of Moerkotte &
// Neumann (the paper's reference [13]) that TriAD's optimizer builds
// on: it enumerates exactly the connected-subgraph / connected-
// complement pairs (ccps) of the join graph, bottom-up by subset size,
// producing the optimal *binary* bushy plan with linear amortized cost
// per join operator. It serves as an independent implementation to
// cross-check BinaryDP (the top-down variant) and as the second half
// of the binary-vs-multiway ablation.
func DPccp(ctx context.Context, in *opt.Input) (*opt.Result, error) {
	if err := opt.NormalizeInput(in); err != nil {
		return nil, err
	}
	jg := in.Views.Join
	all := jg.All()
	if !jg.Connected(all) {
		return nil, fmt.Errorf("baseline: DPccp requires a connected query")
	}
	var checker *partition.LocalChecker
	if in.Method != nil {
		checker = partition.NewLocalChecker(in.Method, in.Views.Query)
	}
	counter := opt.Counter{}
	best := make(map[bitset.TPSet]*plan.Node)

	// Base table: scans.
	for i := 0; i < jg.NumTP; i++ {
		best[bitset.Single(i)] = plan.NewScan(i, in.Est.Cardinality(bitset.Single(i)), in.Params)
		counter.Subqueries++
	}

	// Enumerate every connected subgraph, smallest first, seeded with
	// local plans where the partitioning allows.
	subs := connectedSubgraphs(jg)
	steps := 0
	for _, s := range subs {
		if s.Len() == 1 {
			continue
		}
		steps++
		if steps%256 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		counter.Subqueries++
		var bPlan *plan.Node
		if checker != nil && checker.IsLocal(s) {
			bPlan = localPlan(in, s)
			counter.Plans++
		}
		// csg-cmp pairs: every split of s into connected halves that
		// share a join variable. Enumerate halves containing the
		// lowest pattern once.
		lo := s.Min()
		s.ProperSubsets(func(a bitset.TPSet) bool {
			if !a.Has(lo) {
				return true
			}
			b := s.Diff(a)
			left, lok := best[a]
			right, rok := best[b]
			if !lok || !rok || left == nil || right == nil {
				return true // a side is disconnected: not a ccp
			}
			vj := sharedVar(jg, a, b)
			if vj < 0 {
				return true
			}
			counter.CMDs++
			out := in.Est.Cardinality(s)
			for _, alg := range []plan.Algorithm{plan.BroadcastJoin, plan.RepartitionJoin} {
				counter.Plans++
				cand := plan.NewJoin(alg, jg.Vars[vj], []*plan.Node{left, right}, out, in.Params)
				if bPlan == nil || cand.Cost < bPlan.Cost {
					bPlan = cand
				}
			}
			return true
		})
		best[s] = bPlan
	}
	p := best[all]
	if p == nil {
		return nil, fmt.Errorf("baseline: DPccp found no plan")
	}
	return &opt.Result{Plan: p, Counter: counter}, nil
}

// connectedSubgraphs lists every connected subquery of the join graph
// in ascending size order. The enumeration grows each subgraph along
// its frontier (Moerkotte & Neumann's EnumerateCsg: each connected set
// is found exactly once via the exclude-smaller-seeds rule).
func connectedSubgraphs(jg *querygraph.JoinGraph) []bitset.TPSet {
	all := jg.All()
	var out []bitset.TPSet
	var grow func(sub, excl bitset.TPSet)
	grow = func(sub, excl bitset.TPSet) {
		out = append(out, sub)
		frontier := jg.AdjOf(all, sub).Diff(excl)
		// Each non-empty subset of the frontier yields a bigger
		// connected set; recurse with the frontier excluded to avoid
		// duplicates.
		frontier.Subsets(func(ext bitset.TPSet) bool {
			grow(sub.Union(ext), excl.Union(frontier))
			return true
		})
	}
	all.Each(func(i int) bool {
		// Seed at i; exclude all smaller seeds.
		grow(bitset.Single(i), bitset.Full(i+1).Intersect(all))
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Len() != out[j].Len() {
			return out[i].Len() < out[j].Len()
		}
		return out[i] < out[j]
	})
	return out
}
