package baseline

import (
	"context"
	"fmt"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
)

// BinaryDP is a TriAD-style optimizer: a memoized top-down dynamic
// program over *connected binary* divisions only. Like TriAD's
// bottom-up DP it enumerates each connected complement pair once
// (linear amortized complexity per join operator), but it cannot form
// multi-way joins — the limitation the paper's §IV discusses. It is
// used for the multi-way-versus-binary ablation.
func BinaryDP(ctx context.Context, in *opt.Input) (*opt.Result, error) {
	if err := opt.NormalizeInput(in); err != nil {
		return nil, err
	}
	jg := in.Views.Join
	if !jg.Connected(jg.All()) {
		return nil, fmt.Errorf("baseline: BinaryDP requires a connected query")
	}
	b := &binaryDP{ctx: ctx, in: in, memo: make(map[bitset.TPSet]*plan.Node)}
	if in.Method != nil {
		b.checker = partition.NewLocalChecker(in.Method, in.Views.Query)
	}
	p := b.best(jg.All())
	if b.err != nil {
		return nil, b.err
	}
	if p == nil {
		return nil, fmt.Errorf("baseline: BinaryDP found no plan")
	}
	return &opt.Result{Plan: p, Counter: b.counter}, nil
}

type binaryDP struct {
	ctx     context.Context
	in      *opt.Input
	checker *partition.LocalChecker
	memo    map[bitset.TPSet]*plan.Node
	counter opt.Counter
	steps   int
	err     error
}

func (b *binaryDP) cancelled() bool {
	if b.err != nil {
		return true
	}
	b.steps++
	if b.steps%cancelCheckInterval == 0 {
		if err := b.ctx.Err(); err != nil {
			b.err = err
			return true
		}
	}
	return false
}

func (b *binaryDP) best(s bitset.TPSet) *plan.Node {
	if p, ok := b.memo[s]; ok {
		return p
	}
	if b.cancelled() {
		return nil
	}
	b.counter.Subqueries++
	var result *plan.Node
	defer func() {
		if b.err == nil {
			b.memo[s] = result
		}
	}()
	if s.Len() == 1 {
		result = plan.NewScan(s.Min(), b.in.Est.Cardinality(s), b.in.Params)
		return result
	}
	jg := b.in.Views.Join
	if b.checker != nil && b.checker.IsLocal(s) {
		result = localPlan(b.in, s)
		b.counter.Plans++
	}
	// Every connected binary division, found by running Algorithm 2 on
	// each join variable and deduplicating the (a, b) pairs (the same
	// split can be a cbd on several variables; the join itself applies
	// all shared equalities).
	seen := map[bitset.TPSet]bool{}
	for _, vj := range jg.JoinVarsOf(s) {
		opt.ConnBinDivision(jg, s, vj, func(a, rest bitset.TPSet) bool {
			if seen[a] {
				return true
			}
			seen[a] = true
			if b.cancelled() {
				return false
			}
			left := b.best(a)
			right := b.best(rest)
			if left == nil || right == nil {
				return b.err == nil
			}
			b.counter.CMDs++
			out := b.in.Est.Cardinality(s)
			for _, alg := range []plan.Algorithm{plan.BroadcastJoin, plan.RepartitionJoin} {
				b.counter.Plans++
				cand := plan.NewJoin(alg, jg.Vars[vj], []*plan.Node{left, right}, out, b.in.Params)
				if result == nil || cand.Cost < result.Cost {
					result = cand
				}
			}
			return true
		})
		if b.err != nil {
			return nil
		}
	}
	return result
}
