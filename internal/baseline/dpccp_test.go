package baseline

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
)

func TestConnectedSubgraphsExactlyOnce(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		q := randomConnectedQuery(r, 2+r.Intn(6))
		jg, err := querygraph.NewJoinGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		got := map[bitset.TPSet]int{}
		for _, s := range connectedSubgraphs(jg) {
			got[s]++
			if got[s] > 1 {
				t.Fatalf("subgraph %v enumerated twice", s)
			}
		}
		// Oracle: every subset, tested for connectivity.
		want := 0
		jg.All().Subsets(func(sub bitset.TPSet) bool {
			if jg.Connected(sub) {
				want++
				if got[sub] != 1 {
					t.Fatalf("connected subgraph %v missing", sub)
				}
			} else if got[sub] != 0 {
				t.Fatalf("disconnected subgraph %v enumerated", sub)
			}
			return true
		})
		if len(got) != want {
			t.Fatalf("enumerated %d subgraphs, oracle has %d", len(got), want)
		}
	}
}

func TestConnectedSubgraphsChainCount(t *testing.T) {
	// A chain of n patterns has n(n+1)/2 connected segments.
	for _, n := range []int{3, 6, 10} {
		jg, err := querygraph.NewJoinGraph(chainQuery(n))
		if err != nil {
			t.Fatal(err)
		}
		if got := len(connectedSubgraphs(jg)); got != n*(n+1)/2 {
			t.Errorf("chain %d: %d subgraphs, want %d", n, got, n*(n+1)/2)
		}
	}
}

// TestDPccpMatchesBinaryDP: the bottom-up and top-down binary
// enumerators must agree on the optimal cost everywhere.
func TestDPccpMatchesBinaryDP(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	methods := []partition.Method{nil, partition.HashSO{}, partition.PathBMC{}}
	for trial := 0; trial < 25; trial++ {
		q := randomConnectedQuery(r, 2+r.Intn(6))
		in := makeInput(t, q, int64(900+trial), methods[trial%3])
		up, err := DPccp(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		down, err := BinaryDP(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(up.Plan.Cost-down.Plan.Cost) > 1e-6 {
			t.Errorf("trial %d: DPccp %v vs BinaryDP %v\n%s\nvs\n%s",
				trial, up.Plan.Cost, down.Plan.Cost, up.Plan.Format(), down.Plan.Format())
		}
		if err := up.Plan.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDPccpNeverBeatsTDCMD: binary plans are a subset of k-ary plans.
func TestDPccpNeverBeatsTDCMD(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	strictlyWorse := 0
	for trial := 0; trial < 25; trial++ {
		q := randomConnectedQuery(r, 3+r.Intn(5))
		in := makeInput(t, q, int64(950+trial), nil)
		full, err := opt.Optimize(context.Background(), in, opt.TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DPccp(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Cost < full.Plan.Cost-1e-6 {
			t.Errorf("trial %d: DPccp cost %v below k-ary optimum %v", trial, res.Plan.Cost, full.Plan.Cost)
		}
		if res.Plan.Cost > full.Plan.Cost+1e-6 {
			strictlyWorse++
		}
	}
	// The multiway advantage must show on at least some instances
	// (that is the paper's §IV motivation for not using TriAD's space).
	if strictlyWorse == 0 {
		t.Error("binary plans never lost to k-ary plans; ablation shows nothing")
	}
}

func TestDPccpDisconnected(t *testing.T) {
	q := randomConnectedQuery(rand.New(rand.NewSource(1)), 2)
	q.Patterns[1].S.Value = "isolatedA"
	q.Patterns[1].O.Value = "isolatedB"
	in := makeInput(t, q, 11, nil)
	if _, err := DPccp(context.Background(), in); err == nil {
		t.Error("disconnected query accepted")
	}
}
