// Package baseline implements the state-of-the-art optimizers the
// paper compares against, following their published descriptions:
//
//   - DPBushy — the top-down dynamic programming algorithm of Huang et
//     al. (ICDE 2014). It enumerates *all* binary divisions of each
//     subquery without checking join-graph connectivity, eliminating
//     Cartesian products only after they are formed, plus the one
//     multi-way join that joins the maximal number of inputs. As
//     proved in Moerkotte & Neumann, such generate-and-test
//     enumeration has exponential amortized complexity per join
//     operator for chain and cycle queries (§III).
//
//   - MSC — the CliqueSquare-style optimizer of Goasdoué et al. (ICDE
//     2015). It builds the flattest plans: at every level it covers
//     the current inputs with a *minimum* number of join cliques
//     (an exact minimum set cover, NP-hard), explores every minimum
//     cover, and recurses. Its plan space contains only flat plans
//     and its running time grows exponentially with query size.
//
//   - BinaryDP — a TriAD-style enumerator of connected *binary* bushy
//     plans (optimal efficiency but binary joins only), used for the
//     multi-way-vs-binary ablation.
//
// All three use the same cost model, cardinality estimator and
// local-query detection as the main optimizer, exactly as in the
// paper's experimental setup.
package baseline

import (
	"context"
	"fmt"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
)

const cancelCheckInterval = 4096

// DPBushy runs the Huang et al. top-down DP on the input.
func DPBushy(ctx context.Context, in *opt.Input) (*opt.Result, error) {
	d, err := newDPBushy(ctx, in)
	if err != nil {
		return nil, err
	}
	all := in.Views.Join.All()
	p := d.best(all)
	if d.err != nil {
		return nil, d.err
	}
	if p == nil {
		return nil, fmt.Errorf("baseline: DP-Bushy found no Cartesian-product-free plan")
	}
	return &opt.Result{Plan: p, Counter: d.counter}, nil
}

type dpBushy struct {
	ctx     context.Context
	in      *opt.Input
	checker *partition.LocalChecker
	memo    map[bitset.TPSet]*plan.Node
	counter opt.Counter
	steps   int
	err     error
}

func newDPBushy(ctx context.Context, in *opt.Input) (*dpBushy, error) {
	if err := opt.NormalizeInput(in); err != nil {
		return nil, err
	}
	d := &dpBushy{ctx: ctx, in: in, memo: make(map[bitset.TPSet]*plan.Node)}
	if in.Method != nil {
		d.checker = partition.NewLocalChecker(in.Method, in.Views.Query)
	}
	return d, nil
}

func (d *dpBushy) cancelled() bool {
	if d.err != nil {
		return true
	}
	d.steps++
	if d.steps%cancelCheckInterval == 0 {
		if err := d.ctx.Err(); err != nil {
			d.err = err
			return true
		}
	}
	return false
}

// best returns the cheapest Cartesian-product-free plan for s, or nil
// when none exists (s disconnected). Unlike TD-CMD it recurses into
// every subset — connectivity is discovered only when plans fail to
// form, which is exactly the inefficiency the paper criticizes.
func (d *dpBushy) best(s bitset.TPSet) *plan.Node {
	if p, ok := d.memo[s]; ok {
		return p
	}
	if d.cancelled() {
		return nil
	}
	d.counter.Subqueries++
	var result *plan.Node
	defer func() {
		if d.err == nil {
			d.memo[s] = result
		}
	}()
	if s.Len() == 1 {
		result = plan.NewScan(s.Min(), d.in.Est.Cardinality(s), d.in.Params)
		return result
	}
	jg := d.in.Views.Join
	if d.checker != nil && d.checker.IsLocal(s) {
		result = localPlan(d.in, s)
		d.counter.Plans++
	}
	// All binary divisions: every proper subset containing the lowest
	// pattern (to visit each unordered pair once).
	lo := s.Min()
	s.ProperSubsets(func(a bitset.TPSet) bool {
		if !a.Has(lo) {
			return true
		}
		if d.cancelled() {
			return false
		}
		b := s.Diff(a)
		left := d.best(a)
		right := d.best(b)
		if left == nil || right == nil {
			return true // a side is a Cartesian product all the way down
		}
		// The join itself must not be a cross product: the sides must
		// share a join variable.
		vj := sharedVar(jg, a, b)
		if vj < 0 {
			return true
		}
		d.counter.CMDs++
		result = d.considerJoin(result, jg.Vars[vj], []*plan.Node{left, right}, s)
		return true
	})
	// The single maximal multi-way join: the variable with the most
	// neighbors in s, parts grown from each neighbor.
	if vj, parts := maxMultiwayDivision(jg, s); len(parts) > 2 {
		children := make([]*plan.Node, 0, len(parts))
		ok := true
		for _, part := range parts {
			ch := d.best(part)
			if ch == nil {
				ok = false
				break
			}
			children = append(children, ch)
		}
		if ok {
			d.counter.CMDs++
			result = d.considerJoin(result, jg.Vars[vj], children, s)
		}
	}
	return result
}

func (d *dpBushy) considerJoin(best *plan.Node, vj string, children []*plan.Node, s bitset.TPSet) *plan.Node {
	out := d.in.Est.Cardinality(s)
	for _, alg := range []plan.Algorithm{plan.BroadcastJoin, plan.RepartitionJoin} {
		d.counter.Plans++
		cand := plan.NewJoin(alg, vj, children, out, d.in.Params)
		if best == nil || cand.Cost < best.Cost {
			best = cand
		}
	}
	return best
}
