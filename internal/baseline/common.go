package baseline

import (
	"sparqlopt/internal/bitset"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
)

// localPlan builds the k-way local join of every pattern in the local
// subquery s (or a plain scan for singletons).
func localPlan(in *opt.Input, s bitset.TPSet) *plan.Node {
	if s.Len() == 1 {
		return plan.NewScan(s.Min(), in.Est.Cardinality(s), in.Params)
	}
	jg := in.Views.Join
	children := make([]*plan.Node, 0, s.Len())
	s.Each(func(tp int) bool {
		children = append(children, plan.NewScan(tp, in.Est.Cardinality(bitset.Single(tp)), in.Params))
		return true
	})
	name := ""
	if vars := jg.JoinVarsOf(s); len(vars) > 0 {
		name = jg.Vars[vars[0]]
	}
	return plan.NewJoin(plan.LocalJoin, name, children, in.Est.Cardinality(s), in.Params)
}

// sharedVar returns a join variable with neighbors on both sides, or -1.
func sharedVar(jg *querygraph.JoinGraph, a, b bitset.TPSet) int {
	for j := range jg.Vars {
		if jg.Ntp[j].Overlaps(a) && jg.Ntp[j].Overlaps(b) {
			return j
		}
	}
	return -1
}

// maxMultiwayDivision returns the k-way division with the largest k
// that DP-Bushy considers: the join variable with the most neighbors
// in s, with one part grown around each neighbor. Patterns that are
// not neighbors join the part of the nearest neighbor (breadth-first
// over the join graph with the variable removed). Returns k ≤ 2 parts
// when no variable yields a wider join.
func maxMultiwayDivision(jg *querygraph.JoinGraph, s bitset.TPSet) (int, []bitset.TPSet) {
	bestVar, bestK := -1, 2
	for j := range jg.Vars {
		if k := jg.Ntp[j].Intersect(s).Len(); k > bestK {
			bestVar, bestK = j, k
		}
	}
	if bestVar < 0 {
		return -1, nil
	}
	// Each component of s − v_j attaches to the part of one of its
	// neighbors of v_j (it contains at least one, since s is connected).
	neighbors := jg.Ntp[bestVar].Intersect(s)
	parts := make([]bitset.TPSet, 0, bestK)
	for _, comp := range jg.ComponentsExcluding(s, bestVar) {
		mine := comp.Intersect(neighbors)
		if mine.Len() <= 1 {
			parts = append(parts, comp)
			continue
		}
		// A component with several neighbors splits around them: each
		// neighbor seeds a part; remaining patterns go to the first
		// part they touch.
		sub := make([]bitset.TPSet, 0, mine.Len())
		mine.Each(func(tp int) bool {
			sub = append(sub, bitset.Single(tp))
			return true
		})
		rest := comp.Diff(mine)
		for !rest.IsEmpty() {
			progressed := false
			for i := range sub {
				grow := jg.AdjOf(comp, sub[i]).Intersect(rest)
				if !grow.IsEmpty() {
					sub[i] = sub[i].Union(grow)
					rest = rest.Diff(grow)
					progressed = true
				}
			}
			if !progressed {
				// Unreachable without v_j; give up on splitting.
				sub[0] = sub[0].Union(rest)
				rest = 0
			}
		}
		parts = append(parts, sub...)
	}
	return bestVar, parts
}
