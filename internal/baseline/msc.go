package baseline

import (
	"context"
	"fmt"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
)

// MSC runs the CliqueSquare-style flat-plan optimizer: at every level
// it covers the current inputs with a minimum number of join cliques
// (one clique per join variable), explores every minimum cover, and
// recurses until a single input remains. Plans are flat — multi-way
// repartition joins (or local joins where the partitioning allows),
// never broadcast joins — and the exact minimum set cover run at each
// level makes optimization time grow exponentially with query size.
func MSC(ctx context.Context, in *opt.Input) (*opt.Result, error) {
	if err := opt.NormalizeInput(in); err != nil {
		return nil, err
	}
	if !in.Views.Join.Connected(in.Views.Join.All()) {
		return nil, fmt.Errorf("baseline: MSC requires a connected query")
	}
	m := &msc{ctx: ctx, in: in}
	if in.Method != nil {
		m.checker = partition.NewLocalChecker(in.Method, in.Views.Query)
	}
	// Level 0: one input per triple pattern.
	inputs := make([]*plan.Node, in.Views.Join.NumTP)
	for i := range inputs {
		inputs[i] = plan.NewScan(i, in.Est.Cardinality(bitset.Single(i)), in.Params)
	}
	m.explore(inputs)
	if m.err != nil {
		return nil, m.err
	}
	if m.best == nil {
		return nil, fmt.Errorf("baseline: MSC found no plan")
	}
	return &opt.Result{Plan: m.best, Counter: m.counter}, nil
}

type msc struct {
	ctx     context.Context
	in      *opt.Input
	checker *partition.LocalChecker
	best    *plan.Node
	counter opt.Counter
	steps   int
	err     error
}

func (m *msc) cancelled() bool {
	if m.err != nil {
		return true
	}
	m.steps++
	if m.steps%cancelCheckInterval == 0 {
		if err := m.ctx.Err(); err != nil {
			m.err = err
			return true
		}
	}
	return false
}

// explore recursively builds one more plan level for every minimum
// cover of the current inputs.
func (m *msc) explore(inputs []*plan.Node) {
	if m.cancelled() {
		return
	}
	if len(inputs) == 1 {
		m.counter.Plans++
		// MSC's objective is the *flattest* plan (minimum number of
		// levels); cost breaks ties among equally flat plans.
		if m.best == nil ||
			inputs[0].Depth() < m.best.Depth() ||
			(inputs[0].Depth() == m.best.Depth() && inputs[0].Cost < m.best.Cost) {
			m.best = inputs[0]
		}
		return
	}
	cliques := m.cliques(inputs)
	all := bitset.Full(len(inputs))
	size := minCoverSize(cliques, all)
	if size < 0 || size >= len(inputs) {
		// No progress possible: the state is disconnected.
		return
	}
	m.eachMinCover(cliques, all, size, func(chosen []clique) bool {
		// An input covered by several chosen cliques can be joined in
		// any one of them; CliqueSquare explores every assignment,
		// which is what makes its plan space (and running time)
		// explode on dense queries.
		m.eachAssignment(inputs, chosen, func(groups [][]*plan.Node) bool {
			m.explore(m.buildLevel(groups, chosen))
			return m.err == nil
		})
		return m.err == nil
	})
}

// eachAssignment enumerates every function from inputs to the chosen
// cliques that cover them.
func (m *msc) eachAssignment(inputs []*plan.Node, chosen []clique, f func([][]*plan.Node) bool) {
	groups := make([][]*plan.Node, len(chosen))
	var rec func(i int) bool
	rec = func(i int) bool {
		if m.cancelled() {
			return false
		}
		if i == len(inputs) {
			return f(groups)
		}
		ok := true
		for ci, c := range chosen {
			if !c.members.Has(i) {
				continue
			}
			groups[ci] = append(groups[ci], inputs[i])
			ok = rec(i + 1)
			groups[ci] = groups[ci][:len(groups[ci])-1]
			if !ok {
				return false
			}
		}
		return ok
	}
	rec(0)
}

// clique is one candidate join: the inputs sharing variable v.
type clique struct {
	varIdx  int
	members bitset.TPSet // indexes into the current inputs slice
}

// cliques collects one clique per join variable of the current state,
// deduplicating identical member sets.
func (m *msc) cliques(inputs []*plan.Node) []clique {
	jg := m.in.Views.Join
	var out []clique
	seen := map[bitset.TPSet]bool{}
	for j := range jg.Vars {
		var members bitset.TPSet
		for i, inp := range inputs {
			if jg.Ntp[j].Overlaps(inp.Set) {
				members = members.Add(i)
			}
		}
		if members.IsEmpty() || seen[members] {
			continue
		}
		seen[members] = true
		out = append(out, clique{varIdx: j, members: members})
	}
	return out
}

// minCoverSize returns the size of a minimum cover of universe by the
// cliques, or -1 when no cover exists.
func minCoverSize(cliques []clique, universe bitset.TPSet) int {
	for size := 1; size <= universe.Len(); size++ {
		found := false
		coverDFS(cliques, 0, universe, size, func([]clique) bool {
			found = true
			return false
		}, nil)
		if found {
			return size
		}
	}
	return -1
}

// eachMinCover enumerates every cover of exactly the given size.
func (m *msc) eachMinCover(cliques []clique, universe bitset.TPSet, size int, f func([]clique) bool) {
	coverDFS(cliques, 0, universe, size, f, m.cancelled)
}

// coverDFS enumerates covers of `remaining` using cliques[idx:] with
// exactly `budget` more cliques. A simple reachability prune keeps the
// search from exploring hopeless branches.
func coverDFS(cliques []clique, idx int, remaining bitset.TPSet, budget int, f func([]clique) bool, cancelled func() bool) bool {
	if cancelled != nil && cancelled() {
		return false
	}
	if remaining.IsEmpty() {
		if budget == 0 {
			return f(nil)
		}
		return true
	}
	if budget == 0 || idx >= len(cliques) {
		return true
	}
	// Prune: the remaining cliques must still be able to cover.
	var reach bitset.TPSet
	for i := idx; i < len(cliques); i++ {
		reach = reach.Union(cliques[i].members)
	}
	if !remaining.SubsetOf(reach) {
		return true
	}
	// Branch 1: take cliques[idx] (only if it makes progress).
	if cliques[idx].members.Overlaps(remaining) {
		ok := coverDFS(cliques, idx+1, remaining.Diff(cliques[idx].members), budget-1, func(rest []clique) bool {
			return f(append([]clique{cliques[idx]}, rest...))
		}, cancelled)
		if !ok {
			return false
		}
	}
	// Branch 2: skip it.
	return coverDFS(cliques, idx+1, remaining, budget, f, cancelled)
}

// buildLevel materializes one plan level from an input-to-clique
// assignment; cliques assigned one input pass it through unchanged.
func (m *msc) buildLevel(assigned [][]*plan.Node, chosen []clique) []*plan.Node {
	jg := m.in.Views.Join
	var next []*plan.Node
	for ci, group := range assigned {
		switch len(group) {
		case 0:
		case 1:
			next = append(next, group[0])
		default:
			// Copy: the caller's assignment buffers are reused across
			// the enumeration, but join nodes keep their children.
			children := append([]*plan.Node{}, group...)
			var set bitset.TPSet
			for _, g := range children {
				set = set.Union(g.Set)
			}
			alg := plan.RepartitionJoin
			if m.checker != nil && m.checker.IsLocal(set) && allScans(children) {
				alg = plan.LocalJoin
			}
			m.counter.CMDs++
			j := plan.NewJoin(alg, jg.Vars[chosen[ci].varIdx], children, m.in.Est.Cardinality(set), m.in.Params)
			next = append(next, j)
		}
	}
	return next
}

// allScans reports whether every input is a base scan — only base
// data is co-partitioned, so local joins apply to first-level joins.
func allScans(group []*plan.Node) bool {
	for _, g := range group {
		if g.Alg != plan.Scan {
			return false
		}
	}
	return true
}
