package baseline

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"sparqlopt/internal/cost"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// Test fixtures mirroring internal/opt's helpers.

func chainQuery(n int) *sparql.Query {
	q := &sparql.Query{}
	for i := 0; i < n; i++ {
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.V(fmt.Sprintf("x%d", i)),
			P: sparql.I(fmt.Sprintf("p%d", i)),
			O: sparql.V(fmt.Sprintf("x%d", i+1)),
		})
	}
	return q
}

func cycleQuery(n int) *sparql.Query {
	q := chainQuery(n - 1)
	q.Patterns = append(q.Patterns, sparql.TriplePattern{
		S: sparql.V(fmt.Sprintf("x%d", n-1)), P: sparql.I("pc"), O: sparql.V("x0"),
	})
	return q
}

func starQuery(n int) *sparql.Query {
	q := &sparql.Query{}
	for i := 0; i < n; i++ {
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.V(fmt.Sprintf("s%d", i)), P: sparql.I(fmt.Sprintf("p%d", i)), O: sparql.V("c"),
		})
	}
	return q
}

func randomConnectedQuery(r *rand.Rand, n int) *sparql.Query {
	q := &sparql.Query{}
	nvars := n + 2
	for i := 0; i < n; i++ {
		var s, o string
		if i == 0 {
			s, o = "v0", "v1"
		} else {
			prev := q.Patterns[r.Intn(i)]
			anchor := prev.S.Value
			if r.Intn(2) == 0 {
				anchor = prev.O.Value
			}
			other := fmt.Sprintf("v%d", r.Intn(nvars))
			if r.Intn(2) == 0 {
				s, o = anchor, other
			} else {
				s, o = other, anchor
			}
		}
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.V(s), P: sparql.I(fmt.Sprintf("p%d", r.Intn(4))), O: sparql.V(o),
		})
	}
	return q
}

func makeInput(t *testing.T, q *sparql.Query, seed int64, m partition.Method) *opt.Input {
	t.Helper()
	views, err := querygraph.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	s := &stats.Stats{}
	for _, tp := range q.Patterns {
		card := float64(1 + r.Intn(1000))
		b := map[string]float64{}
		for _, v := range tp.Vars() {
			b[v] = float64(1 + r.Intn(int(card)))
		}
		s.Patterns = append(s.Patterns, stats.PatternStats{Card: card, Bindings: b})
	}
	est, err := stats.NewEstimator(q, s)
	if err != nil {
		t.Fatal(err)
	}
	return &opt.Input{Query: q, Views: views, Est: est, Params: cost.Default, Method: m}
}

func TestDPBushyFindsValidPlans(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		q := randomConnectedQuery(r, 2+r.Intn(5))
		in := makeInput(t, q, int64(trial), partition.HashSO{})
		res, err := DPBushy(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, res.Plan.Format())
		}
		if res.Plan.Set != in.Views.Join.All() {
			t.Errorf("trial %d: plan covers %v", trial, res.Plan.Set)
		}
	}
}

func TestDPBushyNeverBeatsTDCMD(t *testing.T) {
	// DP-Bushy's space is a subset of TD-CMD's (it considers all
	// binary divisions — the connected ones TD-CMD also has — plus one
	// multiway join per subquery), so its best plan cannot be cheaper.
	r := rand.New(rand.NewSource(37))
	sometimesWorse := 0
	for trial := 0; trial < 20; trial++ {
		q := randomConnectedQuery(r, 3+r.Intn(4))
		in := makeInput(t, q, int64(50+trial), partition.HashSO{})
		full, err := opt.Optimize(context.Background(), in, opt.TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		res, err := DPBushy(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Cost < full.Plan.Cost-1e-6 {
			t.Errorf("trial %d: DP-Bushy cost %v < TD-CMD optimum %v", trial, res.Plan.Cost, full.Plan.Cost)
		}
		if res.Plan.Cost > full.Plan.Cost+1e-6 {
			sometimesWorse++
		}
	}
	t.Logf("DP-Bushy strictly worse on %d/20 trials", sometimesWorse)
}

func TestDPBushyDisconnected(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?a <p> ?b . ?c <p> ?d . }`)
	in := makeInput(t, q, 1, nil)
	if _, err := DPBushy(context.Background(), in); err == nil {
		t.Error("disconnected query produced a plan (Cartesian product)")
	}
}

func TestDPBushyMultiwayOnStar(t *testing.T) {
	// On a star query DP-Bushy must consider the n-way join.
	in := makeInput(t, starQuery(5), 3, nil)
	res, err := DPBushy(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// With no partitioning, flat 5-way repartition is typically best;
	// at minimum the plan must be valid and complete.
	if res.Plan.Set != in.Views.Join.All() {
		t.Error("incomplete plan")
	}
}

func TestDPBushySubqueryExplosion(t *testing.T) {
	// DP-Bushy visits disconnected subqueries too: for a chain of n
	// patterns it memoizes far more subqueries than the n(n+1)/2
	// connected segments.
	in := makeInput(t, chainQuery(10), 4, nil)
	res, err := DPBushy(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	connected := int64(10 * 11 / 2)
	if res.Counter.Subqueries <= connected {
		t.Errorf("DP-Bushy visited %d subqueries, expected more than the %d connected ones",
			res.Counter.Subqueries, connected)
	}
}

func TestMSCProducesFlatPlans(t *testing.T) {
	in := makeInput(t, starQuery(6), 5, partition.HashSO{})
	res, err := MSC(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Plan.Validate(); err != nil {
		t.Fatal(err)
	}
	// A star is one clique: a single flat join (depth 2).
	if res.Plan.Depth() != 2 {
		t.Errorf("star plan depth = %d, want 2\n%s", res.Plan.Depth(), res.Plan.Format())
	}
	// Under hash partitioning, the star is local.
	if res.Plan.Alg != plan.LocalJoin {
		t.Errorf("expected local join, got %v", res.Plan.Alg)
	}
}

func TestMSCChainLevels(t *testing.T) {
	// A chain of 8 has a unique minimum cover per level (pairs), so
	// exactly one plan is explored (paper Table VII: MSC chain-8 = 1),
	// with ⌈log2 8⌉ = 3 join levels.
	in := makeInput(t, chainQuery(8), 6, nil)
	res, err := MSC(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter.Plans != 1 {
		t.Errorf("MSC explored %d plans on chain-8, paper reports 1", res.Counter.Plans)
	}
	if res.Plan.Depth() != 4 { // 3 join levels + scan level
		t.Errorf("depth = %d, want 4\n%s", res.Plan.Depth(), res.Plan.Format())
	}
}

func TestMSCCycleCoverCount(t *testing.T) {
	// Paper Table VII reports 4 plans for cycle-8: the four rotations
	// of the pairing cover.
	in := makeInput(t, cycleQuery(8), 7, nil)
	res, err := MSC(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter.Plans != 4 {
		t.Errorf("MSC explored %d plans on cycle-8, paper reports 4", res.Counter.Plans)
	}
}

func TestMSCValidOnRandomQueries(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		q := randomConnectedQuery(r, 2+r.Intn(5))
		in := makeInput(t, q, int64(80+trial), partition.HashSO{})
		res, err := MSC(context.Background(), in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, res.Plan.Format())
		}
		full, err := opt.Optimize(context.Background(), in, opt.TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Cost < full.Plan.Cost-1e-6 {
			t.Errorf("trial %d: MSC cost %v < TD-CMD optimum %v", trial, res.Plan.Cost, full.Plan.Cost)
		}
	}
}

func TestMSCNoBroadcastJoins(t *testing.T) {
	// MSC plans use repartition/local joins only (§V-B: "MSC generates
	// flat plans, which cannot take advantage of broadcast joins").
	r := rand.New(rand.NewSource(59))
	for trial := 0; trial < 10; trial++ {
		q := randomConnectedQuery(r, 3+r.Intn(4))
		in := makeInput(t, q, int64(90+trial), partition.HashSO{})
		res, err := MSC(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		var check func(n *plan.Node)
		check = func(n *plan.Node) {
			if n.Alg == plan.BroadcastJoin {
				t.Fatalf("trial %d: MSC emitted a broadcast join", trial)
			}
			for _, ch := range n.Children {
				check(ch)
			}
		}
		check(res.Plan)
	}
}

func TestMSCDisconnected(t *testing.T) {
	q := sparql.MustParse(`SELECT * WHERE { ?a <p> ?b . ?c <p> ?d . }`)
	in := makeInput(t, q, 8, nil)
	if _, err := MSC(context.Background(), in); err == nil {
		t.Error("disconnected query accepted")
	}
}

func TestBinaryDPOnlyBinaryJoins(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 15; trial++ {
		q := randomConnectedQuery(r, 2+r.Intn(6))
		in := makeInput(t, q, int64(110+trial), partition.HashSO{})
		res, err := BinaryDP(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Plan.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var check func(n *plan.Node)
		check = func(n *plan.Node) {
			// Local joins may be k-way (they come from the partition-
			// aware shortcut); distributed joins must be binary.
			if (n.Alg == plan.BroadcastJoin || n.Alg == plan.RepartitionJoin) && len(n.Children) != 2 {
				t.Fatalf("trial %d: %d-way distributed join in BinaryDP plan", trial, len(n.Children))
			}
			for _, ch := range n.Children {
				check(ch)
			}
		}
		check(res.Plan)
	}
}

func TestBinaryDPNeverBeatsTDCMD(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 15; trial++ {
		q := randomConnectedQuery(r, 3+r.Intn(4))
		in := makeInput(t, q, int64(130+trial), nil)
		full, err := opt.Optimize(context.Background(), in, opt.TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BinaryDP(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Plan.Cost < full.Plan.Cost-1e-6 {
			t.Errorf("trial %d: BinaryDP cost %v < TD-CMD %v", trial, res.Plan.Cost, full.Plan.Cost)
		}
	}
}

func TestBinaryDPMatchesTDCMDOnChains(t *testing.T) {
	// On chains every cmd is binary, so the two optimizers explore the
	// same space and must agree on cost.
	for _, n := range []int{3, 6, 9} {
		in := makeInput(t, chainQuery(n), int64(n), nil)
		full, err := opt.Optimize(context.Background(), in, opt.TDCMD)
		if err != nil {
			t.Fatal(err)
		}
		res, err := BinaryDP(context.Background(), in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Plan.Cost-full.Plan.Cost) > 1e-6 {
			t.Errorf("chain %d: BinaryDP %v vs TD-CMD %v", n, res.Plan.Cost, full.Plan.Cost)
		}
	}
}

func TestBaselineCancellation(t *testing.T) {
	// DP-Bushy on a 24-pattern chain visits ~2^24 subqueries; a short
	// deadline must abort it. MSC on a dense query likewise.
	in := makeInput(t, chainQuery(24), 9, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := DPBushy(ctx, in); err == nil {
		t.Error("DP-Bushy ignored the deadline")
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	in2 := makeInput(t, starQuery(12), 10, nil)
	if _, err := MSC(ctx2, in2); err == nil {
		// A star's single unique cover may finish before any
		// cancellation check; only flag when it also took long.
		t.Log("MSC finished before first cancellation check (acceptable)")
	}
}

func TestDPBushyTimeExplodesOnChains(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	// The paper's core complexity claim (§III): generate-and-test
	// binary division makes DP-Bushy's work grow ~3^n on chains while
	// TD-CMD's grows ~n^3. Compare enumerated subqueries at n=14.
	in := makeInput(t, chainQuery(14), 11, nil)
	full, err := opt.Optimize(context.Background(), in, opt.TDCMD)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DPBushy(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counter.Subqueries < 20*full.Counter.Subqueries {
		t.Errorf("DP-Bushy visited %d subqueries vs TD-CMD's %d; expected an exponential gap",
			res.Counter.Subqueries, full.Counter.Subqueries)
	}
}

func TestMSCFlattestPlanOnFig1(t *testing.T) {
	// Paper Fig. 3b: MSC's plan for the running example has two join
	// levels (three first-level joins, one root join) — the flattest
	// shape. Our MSC must find a plan at most that deep.
	q := sparql.MustParse(`SELECT * WHERE {
		?b <p1> ?a .
		?c <p2> ?a .
		?a <p3> ?e .
		?e <p4> ?g .
		?b <p5> ?f .
		?c <p6> ?d .
		?a <p7> ?d .
	}`)
	in := makeInput(t, q, 777, partition.HashSO{})
	res, err := MSC(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	// Depth counts the scan level too: scans + 2 join levels = 3.
	if res.Plan.Depth() > 3 {
		t.Errorf("MSC plan depth %d, want ≤ 3 (two join levels, Fig. 3b)\n%s",
			res.Plan.Depth(), res.Plan.Format())
	}
}
