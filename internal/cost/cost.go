// Package cost implements the cost model of paper §II-E: the cost of a
// k-way join operator is the sum of an I/O, a network-transfer and a
// join-computation component (Eq. 4), with the per-algorithm formulas
// of Table I and the calibrated normalization factors of Table II. The
// cost of a plan is the maximal child cost plus the operator cost
// (Eq. 3), accounting for concurrent subquery execution.
package cost

// Params are the normalization factors of Table I and the cluster
// size n. The zero value is not useful; start from Default.
type Params struct {
	// Alpha scales the I/O cost C_io = α·Σ|SQ_i| (all algorithms).
	Alpha float64
	// BetaB scales the broadcast transfer cost
	// C_trans = β_B·(Σ|SQ_i| − max|SQ_i|)·n.
	BetaB float64
	// BetaR scales the repartition transfer cost C_trans = β_R·Σ|SQ_i|.
	BetaR float64
	// GammaL, GammaB, GammaR scale the join computation cost
	// C_join = γ_op·|⋈ SQ_i| for local, broadcast and repartition joins.
	GammaL, GammaB, GammaR float64
	// Nodes is the cluster size n.
	Nodes int
	// FactorizeFanout gates factorized (answer-graph) execution: a join
	// operator whose estimated output exceeds FactorizeFanout times the
	// sum of its input cardinalities is annotated for the engine's
	// factorizing hash-join path (see plan.Node.Factorize). The
	// annotation never changes the operator's cost — plans, join orders
	// and costs are identical with the gate on or off — it only selects
	// the physical representation of the operator's result. 0 disables
	// factorization.
	FactorizeFanout float64
}

// ShouldFactorize reports whether a join with the given input-sum and
// output cardinalities clears the factorization gate: the estimated
// fanout out/sumIn is above FactorizeFanout, meaning the flattened
// result is so much larger than its inputs that an answer-graph
// representation (shared column groups + link vectors) is worth the
// indirection.
func (p Params) ShouldFactorize(sumIn, out float64) bool {
	return p.FactorizeFanout > 0 && sumIn > 0 && out > p.FactorizeFanout*sumIn
}

// Default holds the parameters of Table II with the paper's 10-node
// cluster: α=0.02, β_B=0.05, β_R=0.1, γ_L=0.004, γ_B=0.008, γ_R=0.005.
// Factorized execution is on by default for joins whose estimated
// fanout exceeds 4: the answer-graph representation only wins when the
// output is a clear multiple of its inputs, and below that the flat
// path's simplicity is free.
var Default = Params{
	Alpha:           0.02,
	BetaB:           0.05,
	BetaR:           0.1,
	GammaL:          0.004,
	GammaB:          0.008,
	GammaR:          0.005,
	Nodes:           10,
	FactorizeFanout: 4,
}

// Scan returns the cost of scanning the bindings of a single triple
// pattern: pure I/O.
func (p Params) Scan(card float64) float64 { return p.Alpha * card }

// Local returns the cost of a k-way local join over inputs with the
// given cardinalities producing out results: no transfer.
func (p Params) Local(inputs []float64, out float64) float64 {
	return p.LocalFromStats(sum(inputs), out)
}

// Broadcast returns the cost of a k-way broadcast join: the k−1
// smaller inputs are replicated to the n nodes holding the largest.
func (p Params) Broadcast(inputs []float64, out float64) float64 {
	return p.BroadcastFromStats(sum(inputs), max(inputs), out)
}

// Repartition returns the cost of a k-way repartition join: every
// input is reshuffled on the shared join variable.
func (p Params) Repartition(inputs []float64, out float64) float64 {
	return p.RepartitionFromStats(sum(inputs), out)
}

// The FromStats variants compute the same formulas from the
// precomputed sum (and, for broadcast, maximum) of the input
// cardinalities. The plan enumerator's hot path uses them to cost
// candidate joins without materializing an input slice.

// LocalFromStats is Local given Σ|SQ_i|.
func (p Params) LocalFromStats(sumIn, out float64) float64 {
	return p.Alpha*sumIn + p.GammaL*out
}

// BroadcastFromStats is Broadcast given Σ|SQ_i| and max|SQ_i|.
func (p Params) BroadcastFromStats(sumIn, maxIn, out float64) float64 {
	return p.Alpha*sumIn + p.BetaB*(sumIn-maxIn)*float64(p.Nodes) + p.GammaB*out
}

// RepartitionFromStats is Repartition given Σ|SQ_i|.
func (p Params) RepartitionFromStats(sumIn, out float64) float64 {
	return p.Alpha*sumIn + p.BetaR*sumIn + p.GammaR*out
}

func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

func max(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
