package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDefaultParamsMatchTable2(t *testing.T) {
	p := Default
	if p.Alpha != 0.02 || p.BetaB != 0.05 || p.BetaR != 0.1 ||
		p.GammaL != 0.004 || p.GammaB != 0.008 || p.GammaR != 0.005 || p.Nodes != 10 {
		t.Errorf("Default = %+v does not match Table II", p)
	}
}

func TestScan(t *testing.T) {
	if got := Default.Scan(100); !almost(got, 2) {
		t.Errorf("Scan(100) = %v, want 2", got)
	}
}

func TestLocalJoinFormula(t *testing.T) {
	// C = α·Σ|SQ| + γ_L·|out|; no transfer (Table I row 1).
	in := []float64{100, 200, 50}
	got := Default.Local(in, 1000)
	want := 0.02*350 + 0.004*1000
	if !almost(got, want) {
		t.Errorf("Local = %v, want %v", got, want)
	}
}

func TestBroadcastJoinFormula(t *testing.T) {
	// C = α·Σ + β_B·(Σ − max)·n + γ_B·out (Table I row 2).
	in := []float64{100, 200, 50}
	got := Default.Broadcast(in, 1000)
	want := 0.02*350 + 0.05*(350-200)*10 + 0.008*1000
	if !almost(got, want) {
		t.Errorf("Broadcast = %v, want %v", got, want)
	}
}

func TestRepartitionJoinFormula(t *testing.T) {
	// C = α·Σ + β_R·Σ + γ_R·out (Table I row 3).
	in := []float64{100, 200, 50}
	got := Default.Repartition(in, 1000)
	want := 0.02*350 + 0.1*350 + 0.005*1000
	if !almost(got, want) {
		t.Errorf("Repartition = %v, want %v", got, want)
	}
}

func TestBroadcastSingleLargeInputCheapTransfer(t *testing.T) {
	// Broadcasting nothing (one input dominates, other side empty sums)
	// still pays IO and join costs.
	got := Default.Broadcast([]float64{500}, 100)
	want := 0.02*500 + 0 + 0.008*100
	if !almost(got, want) {
		t.Errorf("Broadcast single input = %v, want %v", got, want)
	}
}

// Property: local join is never more expensive than broadcast or
// repartition of the same inputs (with Default parameters the γ_L is
// the smallest γ and local has no transfer term).
func TestQuickLocalCheapest(t *testing.T) {
	f := func(a, b, c uint16, out uint16) bool {
		in := []float64{float64(a), float64(b), float64(c)}
		o := float64(out)
		l := Default.Local(in, o)
		return l <= Default.Broadcast(in, o)+1e-9 && l <= Default.Repartition(in, o)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: costs are monotone in the output cardinality.
func TestQuickMonotoneInOutput(t *testing.T) {
	f := func(a, b uint16, o1, o2 uint16) bool {
		lo, hi := float64(o1), float64(o2)
		if lo > hi {
			lo, hi = hi, lo
		}
		in := []float64{float64(a), float64(b)}
		return Default.Local(in, lo) <= Default.Local(in, hi)+1e-9 &&
			Default.Broadcast(in, lo) <= Default.Broadcast(in, hi)+1e-9 &&
			Default.Repartition(in, lo) <= Default.Repartition(in, hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: broadcast transfer grows with the cluster size.
func TestQuickBroadcastGrowsWithNodes(t *testing.T) {
	f := func(a, b uint16) bool {
		in := []float64{float64(a) + 1, float64(b) + 2}
		small := Default
		small.Nodes = 2
		big := Default
		big.Nodes = 20
		return small.Broadcast(in, 10) <= big.Broadcast(in, 10)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
