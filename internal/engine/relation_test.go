package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"sparqlopt/internal/rdf"
)

// randomRelation builds a relation of rows drawn from a small value
// domain, so joins and dedups hit plenty of matches and duplicates.
func randomRelation(r *rand.Rand, vars []string, rows, domain int) *Relation {
	rel := newRelation(vars, rows)
	buf := make([]rdf.TermID, len(vars))
	for i := 0; i < rows; i++ {
		for j := range buf {
			buf[j] = rdf.TermID(r.Intn(domain))
		}
		rel.appendCopy(buf)
	}
	return rel
}

// naiveJoin is the obvious quadratic natural join, used as the oracle.
func naiveJoin(a, b *Relation) *Relation {
	shared := sharedVars(a, b)
	aCols := make([]int, len(shared))
	bCols := make([]int, len(shared))
	for i, v := range shared {
		aCols[i] = a.colIndex(v)
		bCols[i] = b.colIndex(v)
	}
	out := &Relation{Vars: append([]string{}, a.Vars...)}
	var bExtra []int
	for j, v := range b.Vars {
		if a.colIndex(v) < 0 {
			out.Vars = append(out.Vars, v)
			bExtra = append(bExtra, j)
		}
	}
	for _, arow := range a.Rows {
		for _, brow := range b.Rows {
			if !equalOn(arow, aCols, brow, bCols) {
				continue
			}
			row := append([]rdf.TermID{}, arow...)
			for _, j := range bExtra {
				row = append(row, brow[j])
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// sortedKeys canonicalizes a relation's rows for comparison.
func sortedKeys(rel *Relation) []string {
	keys := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		keys[i] = fmt.Sprint(row)
	}
	sort.Strings(keys)
	return keys
}

func sameRows(t *testing.T, got, want *Relation, label string) {
	t.Helper()
	g, w := sortedKeys(got), sortedKeys(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d rows vs %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: row %d: %s vs %s", label, i, g[i], w[i])
		}
	}
}

// TestHashJoinMatchesNaive cross-checks the integer-hash join against
// the quadratic oracle over many random inputs, including schemas
// with zero, one and multiple shared variables.
func TestHashJoinMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	schemas := []struct{ av, bv []string }{
		{[]string{"x", "y"}, []string{"y", "z"}},
		{[]string{"x", "y", "z"}, []string{"y", "z", "w"}},
		{[]string{"x"}, []string{"y"}}, // cross product
		{[]string{"x", "y"}, []string{"x", "y"}},
	}
	for trial := 0; trial < 40; trial++ {
		sc := schemas[trial%len(schemas)]
		a := randomRelation(r, sc.av, r.Intn(60), 5)
		b := randomRelation(r, sc.bv, r.Intn(60), 5)
		got, err := hashJoin(context.Background(), a, b)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, got, naiveJoin(a, b), fmt.Sprintf("trial %d %v⋈%v", trial, sc.av, sc.bv))
	}
}

// TestDedupMatchesNaive cross-checks hash dedup against a string-set
// oracle and verifies canonical (sorted) order.
func TestDedupMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 30; trial++ {
		rel := randomRelation(r, []string{"a", "b"}, 200, 4) // heavy duplication
		seen := map[string]bool{}
		var want [][]rdf.TermID
		for _, row := range rel.Rows {
			k := fmt.Sprint(row)
			if !seen[k] {
				seen[k] = true
				want = append(want, row)
			}
		}
		rel.dedup()
		if len(rel.Rows) != len(want) {
			t.Fatalf("trial %d: dedup kept %d rows, want %d", trial, len(rel.Rows), len(want))
		}
		for i := 1; i < len(rel.Rows); i++ {
			a, b := rel.Rows[i-1], rel.Rows[i]
			if a[0] > b[0] || (a[0] == b[0] && a[1] >= b[1]) {
				t.Fatalf("trial %d: rows not in canonical order at %d: %v, %v", trial, i, a, b)
			}
		}
	}
}

// TestProjectMatchesNaive cross-checks projection+dedup against an
// oracle, including column reordering.
func TestProjectMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		rel := randomRelation(r, []string{"a", "b", "c"}, 150, 4)
		vars := [][]string{{"b"}, {"c", "a"}, {"a", "b", "c"}}[trial%3]
		cols := make([]int, len(vars))
		for i, v := range vars {
			cols[i] = rel.colIndex(v)
		}
		seen := map[string]bool{}
		want := &Relation{Vars: vars}
		for _, row := range rel.Rows {
			nrow := make([]rdf.TermID, len(cols))
			for i, c := range cols {
				nrow[i] = row[c]
			}
			if k := fmt.Sprint(nrow); !seen[k] {
				seen[k] = true
				want.Rows = append(want.Rows, nrow)
			}
		}
		got := rel.project(vars)
		sameRows(t, got, want, fmt.Sprintf("trial %d project %v", trial, vars))
	}
}

// TestArenaRowsStableAcrossGrowth: rows handed out before the arena
// outgrows its capacity must keep their values after many more
// appends force reallocation.
func TestArenaRowsStableAcrossGrowth(t *testing.T) {
	rel := newRelation([]string{"x", "y"}, 1) // tiny hint forces growth
	var want [][2]rdf.TermID
	for i := 0; i < 10000; i++ {
		row := []rdf.TermID{rdf.TermID(i), rdf.TermID(2 * i)}
		rel.appendCopy(row)
		want = append(want, [2]rdf.TermID{row[0], row[1]})
	}
	for i, row := range rel.Rows {
		if row[0] != want[i][0] || row[1] != want[i][1] {
			t.Fatalf("row %d corrupted after arena growth: %v", i, row)
		}
	}
}

// TestAppendMergedLayout: merged rows interleave a-row values with the
// selected b columns, appended into the arena.
func TestAppendMergedLayout(t *testing.T) {
	rel := newRelation([]string{"x", "y", "z"}, 2)
	rel.appendMerged([]rdf.TermID{1, 2}, []rdf.TermID{9, 3}, []int{1})
	rel.appendMerged([]rdf.TermID{4, 5}, []rdf.TermID{8, 6}, []int{1})
	if fmt.Sprint(rel.Rows) != "[[1 2 3] [4 5 6]]" {
		t.Fatalf("merged rows wrong: %v", rel.Rows)
	}
}

// TestSeqColsLarge covers the fallback past the static identity pool.
func TestSeqColsLarge(t *testing.T) {
	got := seqCols(40)
	for i, c := range got {
		if c != i {
			t.Fatalf("seqCols(40)[%d] = %d", i, c)
		}
	}
	if len(got) != 40 {
		t.Fatalf("len = %d", len(got))
	}
}

// TestRelationGrowthGeometric is the regression test grow()'s doc
// comment points at: appending n rows into a relation opened with no
// capacity hint must reallocate O(log₂ n) times, not O(n/epsilon) as
// Go's small-slice append growth would past ~1 KiB arenas. The alloc
// count per append run bounds reallocations: 2^14 two-column rows need
// ~15 arena doublings + ~11 row-slice doublings plus the two seed
// allocations — anything near the row count means growth went linear.
func TestRelationGrowthGeometric(t *testing.T) {
	const rows = 1 << 14
	row := []rdf.TermID{1, 2}
	allocs := testing.AllocsPerRun(5, func() {
		rel := newRelation([]string{"x", "y"}, 0)
		for i := 0; i < rows; i++ {
			row[0] = rdf.TermID(i)
			rel.appendCopy(row)
		}
		if len(rel.Rows) != rows {
			t.Fatalf("appended %d rows, kept %d", rows, len(rel.Rows))
		}
	})
	if allocs > 48 {
		t.Fatalf("appending %d rows cost %.0f allocations; geometric growth should need ~30", rows, allocs)
	}
}
