package engine

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/race"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/workload/randquery"
)

// testRel builds a relation from int-valued rows.
func testRel(vars []string, rows ...[]int) *Relation {
	r := newRelation(vars, len(rows))
	buf := make([]rdf.TermID, len(vars))
	for _, row := range rows {
		for i, v := range row {
			buf[i] = rdf.TermID(v)
		}
		r.appendCopy(buf)
	}
	return r
}

// flatRowsOf flattens a factorization the slow way — through
// projectDistinct onto the full schema — and returns sorted rows.
func flatRowsOf(t *testing.T, f *FactorizedRelation) [][]rdf.TermID {
	t.Helper()
	vars := f.Vars()
	out := newRelation(vars, 0)
	if _, err := f.projectDistinct(context.Background(), vars, out, map[uint64][]int32{}); err != nil {
		t.Fatal(err)
	}
	out.sortRows()
	return out.Rows
}

// joinFlat is the flat-path oracle: the natural join of rels, sorted.
func joinFlat(t *testing.T, rels []*Relation) *Relation {
	t.Helper()
	joined, err := joinAll(context.Background(), nil, "test", rels)
	if err != nil {
		t.Fatal(err)
	}
	joined.sortRows()
	return joined
}

// TestFactorizedFlatCountMatchesFlatJoin: the star case. Two
// satellites around a shared hub; flatCount must equal the flat join's
// cardinality without any flattening, and the full flatten must
// reproduce the flat join's rows. The hub value with no match in one
// input also exercises compact: its spine row must disappear.
func TestFactorizedFlatCountMatchesFlatJoin(t *testing.T) {
	mk := func() []*Relation {
		return []*Relation{
			testRel([]string{"x"}, []int{1}, []int{2}),
			testRel([]string{"x", "y"}, []int{1, 10}, []int{1, 11}, []int{2, 12}),
			testRel([]string{"x", "z"}, []int{1, 20}, []int{1, 21}),
		}
	}
	f, err := factorize(context.Background(), nil, "test", mk())
	if err != nil {
		t.Fatal(err)
	}
	want := joinFlat(t, mk())
	if got := f.flatCount(); got != int64(len(want.Rows)) {
		t.Fatalf("flatCount %d, flat join has %d rows", got, len(want.Rows))
	}
	if len(f.spine.Rows) != 1 {
		t.Fatalf("hub x=2 has no z match; spine kept %d rows, want 1", len(f.spine.Rows))
	}
	if len(f.sats) != 2 {
		t.Fatalf("got %d satellites, want 2", len(f.sats))
	}
	gotVars := f.Vars()
	if len(gotVars) != len(want.Vars) {
		t.Fatalf("schema %v vs flat %v", gotVars, want.Vars)
	}
	got := flatRowsOf(t, f)
	if len(got) != len(want.Rows) {
		t.Fatalf("flatten produced %d rows, want %d", len(got), len(want.Rows))
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d: %v vs %v", i, got[i], want.Rows[i])
			}
		}
	}
}

// TestFactorizedSemiJoinFilter: an input with no extending columns is
// a pure filter — it must compact the spine and rewrite existing
// links, but never become a satellite (under set semantics its
// multiplicities are invisible).
func TestFactorizedSemiJoinFilter(t *testing.T) {
	rels := []*Relation{
		testRel([]string{"x", "y"}, []int{1, 10}, []int{2, 20}),
		testRel([]string{"x", "z"}, []int{1, 100}, []int{2, 200}, []int{2, 201}),
		testRel([]string{"x"}, []int{2}),
	}
	f, err := factorize(context.Background(), nil, "test", rels)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.sats) != 1 {
		t.Fatalf("filter input became a satellite: %d groups, want 1", len(f.sats))
	}
	if len(f.spine.Rows) != 1 || f.spine.Rows[0][0] != 2 {
		t.Fatalf("spine after filter: %v, want the single x=2 row", f.spine.Rows)
	}
	if got := f.flatCount(); got != 2 {
		t.Fatalf("flatCount %d, want 2 (x=2 matches z=200,201)", got)
	}
	// Links must have been rewritten to the compacted spine.
	out := newRelation([]string{"x", "z"}, 0)
	if _, err := f.projectDistinct(context.Background(), []string{"x", "z"}, out, map[uint64][]int32{}); err != nil {
		t.Fatal(err)
	}
	out.sortRows()
	want := [][]int{{2, 200}, {2, 201}}
	if len(out.Rows) != len(want) {
		t.Fatalf("projected %d rows, want %d", len(out.Rows), len(want))
	}
	for i, w := range want {
		for j := range w {
			if out.Rows[i][j] != rdf.TermID(w[j]) {
				t.Fatalf("row %d: %v, want %v", i, out.Rows[i], w)
			}
		}
	}
}

// TestFactorizedAbsorbSnowflake: a chain a–b–c forces the snowflake
// case — c joins on a variable only satellite b exposes, so b must be
// absorbed into the spine before c can link. The result must still
// match the flat join exactly.
func TestFactorizedAbsorbSnowflake(t *testing.T) {
	mk := func() []*Relation {
		return []*Relation{
			testRel([]string{"x", "y"}, []int{1, 10}, []int{1, 11}),
			testRel([]string{"y", "z"}, []int{10, 5}, []int{11, 5}, []int{11, 6}),
			testRel([]string{"z", "w"}, []int{5, 7}, []int{6, 8}, []int{6, 9}),
		}
	}
	f, err := factorize(context.Background(), nil, "test", mk())
	if err != nil {
		t.Fatal(err)
	}
	// After absorbing b the spine holds x,y,z; c remains factored.
	if got := len(f.spine.Vars); got != 3 {
		t.Fatalf("spine schema %v, want x,y,z", f.spine.Vars)
	}
	if len(f.sats) != 1 {
		t.Fatalf("%d satellites after absorb, want 1", len(f.sats))
	}
	want := joinFlat(t, mk())
	if got := f.flatCount(); got != int64(len(want.Rows)) {
		t.Fatalf("flatCount %d, flat join has %d rows", got, len(want.Rows))
	}
	got := flatRowsOf(t, f)
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want.Rows[i][j] {
				t.Fatalf("row %d: %v vs %v", i, got[i], want.Rows[i])
			}
		}
	}
}

// TestFactorizedProjectionSkipsIgnoredGroups: projecting only spine
// columns must enumerate one candidate per spine row — the satellites'
// fanout affects multiplicity alone, which DISTINCT erases, so it is
// never walked.
func TestFactorizedProjectionSkipsIgnoredGroups(t *testing.T) {
	rels := []*Relation{
		testRel([]string{"x"}, []int{1}, []int{2}),
		testRel([]string{"x", "y"}, []int{1, 10}, []int{1, 11}, []int{2, 12}),
		testRel([]string{"x", "z"}, []int{1, 20}, []int{1, 21}, []int{2, 22}),
	}
	f, err := factorize(context.Background(), nil, "test", rels)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.flatCount(); got != 5 {
		t.Fatalf("flatCount %d, want 5", got)
	}
	out := newRelation([]string{"x"}, 0)
	enumerated, err := f.projectDistinct(context.Background(), []string{"x"}, out, map[uint64][]int32{})
	if err != nil {
		t.Fatal(err)
	}
	if enumerated != int64(len(f.spine.Rows)) {
		t.Fatalf("projection enumerated %d candidates, want %d (one per spine row)", enumerated, len(f.spine.Rows))
	}
	if len(out.Rows) != 2 {
		t.Fatalf("distinct x count %d, want 2", len(out.Rows))
	}
}

// TestFactorizedSaturatingCounts: the saturating arithmetic pins at
// MaxInt64 instead of wrapping.
func TestFactorizedSaturatingCounts(t *testing.T) {
	if got := satMul(math.MaxInt64/2, 3); got != math.MaxInt64 {
		t.Errorf("satMul overflow: %d", got)
	}
	if got := satAdd(math.MaxInt64-1, 5); got != math.MaxInt64 {
		t.Errorf("satAdd overflow: %d", got)
	}
	if got := satMul(0, math.MaxInt64); got != 0 {
		t.Errorf("satMul zero: %d", got)
	}
}

// forceFactorize annotates the plan root for the factorized path,
// returning false when the plan is a bare scan (nothing to factorize).
func forceFactorize(res *opt.Result) bool {
	if res.Plan.Alg == plan.Scan {
		return false
	}
	res.Plan.Factorize = true
	return true
}

// TestDeterminismFactorizedExecution is the factorized analogue of
// TestDeterminismParallelExecution: random queries across partitioning
// methods, executed with the root forced onto the factorized path at
// P ∈ {1,2,4,8}, must return bit-identical rows and metrics to the
// sequential factorized run, which in turn must equal the flat
// engine's result and the single-node reference. Under -race this
// also shakes out races in the factorized gather.
func TestDeterminismFactorizedExecution(t *testing.T) {
	trials := 10
	entities := 12
	if race.Enabled {
		trials = 5
		entities = 8
	}
	classes := []querygraph.Class{
		querygraph.Star, querygraph.Chain, querygraph.Cycle, querygraph.Tree, querygraph.Dense,
	}
	methods := []partition.Method{
		partition.HashSO{}, partition.TwoHopForward{}, partition.PathBMC{}, partition.UndirectedOneHop{},
	}
	r := rand.New(rand.NewSource(177))
	for trial := 0; trial < trials; trial++ {
		class := classes[trial%len(classes)]
		n := 3 + r.Intn(3)
		q, _ := randquery.Generate(class, n, int64(2000+trial))
		ds := datasetFor(r, q, entities)
		want, err := Reference(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		m := methods[trial%len(methods)]
		placement, err := m.Partition(ds, 2+trial%3)
		if err != nil {
			t.Fatal(err)
		}
		res := optimizeFor(t, ds, q, m, opt.TDAuto)
		if !forceFactorize(res) {
			continue
		}
		label := fmt.Sprintf("trial %d (%s, %s)", trial, class, m.Name())

		flatEngine := New(ds.Dict, placement)
		flatEngine.SetParallelism(1)
		flatPlan := *res.Plan
		flatPlan.Factorize = false
		flat, err := flatEngine.Execute(context.Background(), &flatPlan, q)
		if err != nil {
			t.Fatalf("%s flat: %v", label, err)
		}
		equalResults(t, flat, want, label+" flat vs reference")

		seqEngine := New(ds.Dict, placement)
		seqEngine.SetParallelism(1)
		seq, err := seqEngine.Execute(context.Background(), res.Plan, q)
		if err != nil {
			t.Fatalf("%s factorized sequential: %v", label, err)
		}
		if !seq.Factorized {
			t.Fatalf("%s: forced root did not take the factorized path", label)
		}
		equalResults(t, seq, flat, label+" factorized vs flat")
		if seq.FlatRowCount() != flat.FlatRowCount() {
			t.Errorf("%s: factorized flat count %d vs flat path %d",
				label, seq.FlatRowCount(), flat.FlatRowCount())
		}

		for _, p := range []int{2, 4, 8} {
			par := New(ds.Dict, placement)
			par.SetParallelism(p)
			got, err := par.Execute(context.Background(), res.Plan, q)
			if err != nil {
				t.Fatalf("%s P=%d: %v", label, p, err)
			}
			plabel := fmt.Sprintf("%s P=%d", label, p)
			equalResults(t, got, seq, plabel)
			if got.Metrics != seq.Metrics {
				t.Errorf("%s: metrics diverge: parallel %+v vs sequential %+v", plabel, got.Metrics, seq.Metrics)
			}
			if got.FlatRowCount() != seq.FlatRowCount() {
				t.Errorf("%s: flat count diverges: %d vs %d", plabel, got.FlatRowCount(), seq.FlatRowCount())
			}
		}
	}
}

// TestFactorizedEngineBenchQueries pins the factorized path against
// the flat engine and the reference on the hand-checked social-graph
// queries, across every partitioning method.
func TestFactorizedEngineBenchQueries(t *testing.T) {
	ds := socialDataset()
	methods := []partition.Method{
		partition.HashSO{}, partition.TwoHopForward{}, partition.TwoHopBidirectional{},
		partition.PathBMC{}, partition.UndirectedOneHop{},
	}
	for _, src := range testQueries {
		q := sparql.MustParse(src)
		want, err := Reference(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range methods {
			placement, err := m.Partition(ds, 4)
			if err != nil {
				t.Fatal(err)
			}
			res := optimizeFor(t, ds, q, m, opt.TDAuto)
			if !forceFactorize(res) {
				continue
			}
			e := New(ds.Dict, placement)
			e.SetParallelism(1)
			got, err := e.Execute(context.Background(), res.Plan, q)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Factorized {
				t.Fatalf("%s %s: factorized path not taken", m.Name(), src[:20])
			}
			equalResults(t, got, want, fmt.Sprintf("%s %s", m.Name(), src[:20]))
		}
	}
}

// TestFactorizedTraceAndString: a factorized execution must surface
// itself in the result string and trace so operators can tell the
// representations apart.
func TestFactorizedTraceAndString(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT ?o WHERE { ?p <worksFor> ?o . ?o <inCity> ?c . }`)
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := optimizeFor(t, ds, q, m, opt.TDAuto)
	if !forceFactorize(res) {
		t.Skip("single-join plan collapsed to a scan")
	}
	e := New(ds.Dict, placement)
	got, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Factorized {
		t.Fatal("factorized path not taken")
	}
	if got.FlatRowCount() < int64(len(got.Rows)) {
		t.Errorf("flat count %d below distinct rows %d", got.FlatRowCount(), len(got.Rows))
	}
	s := got.String()
	if !containsStr(s, "factorized") {
		t.Errorf("result string %q does not mention factorization", s)
	}
	if got.Trace == nil || !got.Trace.Factorized {
		t.Error("trace root not marked factorized")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
