package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sparqlopt/internal/obs"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/resilience/faultinject"
	"sparqlopt/internal/sparql"
)

// Metrics reports what one plan execution did.
type Metrics struct {
	// ScannedTriples counts index postings touched by leaf scans.
	ScannedTriples int64
	// TransferredRows counts rows moved across node boundaries: every
	// (row, receiving node) pair of broadcast gathers/replications and
	// every repartitioned row landing on a different node.
	TransferredRows int64
	// TransferredBytes is the wire volume of TransferredRows: each
	// moved row costs its width times the TermID size (4 bytes). Like
	// every Metrics field it is schedule-invariant.
	TransferredBytes int64
	// JoinedRows counts rows produced by all join operators.
	JoinedRows int64
}

// add accumulates o into m. Child metrics are merged in child order,
// so parallel runs report totals identical to sequential ones.
func (m *Metrics) add(o Metrics) {
	m.ScannedTriples += o.ScannedTriples
	m.TransferredRows += o.TransferredRows
	m.TransferredBytes += o.TransferredBytes
	m.JoinedRows += o.JoinedRows
}

// termIDBytes is the wire size of one bound term (TermID is a uint32).
const termIDBytes = 4

// CacheInfo reports how the serving-path plan cache treated the Run
// that produced a Result. The zero value means the run did not go
// through a cache (caching disabled, or the caller optimized and
// executed separately).
type CacheInfo struct {
	// Enabled reports that the run went through a plan cache.
	Enabled bool
	// Hit reports that the plan came from the cache rather than a
	// fresh optimization.
	Hit bool
	// Shared reports that the run blocked on another goroutine's
	// in-flight optimization of the same fingerprint (singleflight).
	Shared bool
	// SharedExec reports that the run did not execute its own plan at
	// all: it subscribed to an identical in-flight query's execution
	// and replayed that leader's result stream (see the root package's
	// WithExecutionSharing).
	SharedExec bool
	// Epoch is the dataset epoch the served plan was derived under.
	Epoch uint64
}

// Result is the outcome of a query execution.
type Result struct {
	// Vars names the output columns.
	Vars []string
	// Rows holds the distinct result bindings, lexicographically sorted.
	Rows [][]rdf.TermID
	// Metrics instruments the run (zero for the reference executor).
	Metrics Metrics
	// Trace is the per-operator execution profile (EXPLAIN ANALYZE),
	// mirroring the plan tree.
	Trace *TraceNode
	// Opt is the optimization outcome behind the executed plan — the
	// plan itself, search-space counters and the concrete algorithm
	// used. It is nil when the caller executed a hand-built plan; on a
	// plan-cache hit it is the result of the optimization that produced
	// the cached template.
	Opt *opt.Result
	// CacheInfo describes plan-cache behavior when the result came from
	// a cached serving path (System.Run with WithPlanCache).
	CacheInfo CacheInfo
	// Degraded records the serving path's fallback-ladder steps, in
	// order, when the run was served in degraded mode — e.g.
	// "optimizer: TD-CMD failed (budget), retried with TD-CMDP" or
	// "plan cache: lookup failed, bypassed". Empty on a clean run.
	Degraded []string
	// Failovers counts node operations this run served via failover —
	// scans answered from replicas of a dead node's fragment, scatter
	// partitions re-homed off a dead node. 0 on a healthy run; every
	// failover also appends a Degraded note.
	Failovers int64
	// Factorized reports that the root operator ran the factorizing
	// hash-join path: its intermediate was an answer graph (column
	// groups + link vectors) flattened only at projection, instead of
	// a flat row arena. Rows and Metrics are bit-identical either way;
	// only the representation — and its memory footprint — differs.
	Factorized bool
	// Returned counts the distinct result rows the call delivered.
	// Equal to len(Rows) on a materializing Run; on a streamed call
	// Rows stays nil and Returned is the stream's delivered row count
	// (final once the stream ended).
	Returned int64
	// flatRows is the root operator's logical output size: the number
	// of flat rows the final gather held before deduplication and
	// projection. On a factorized run it is counted from the answer
	// graph without flattening (saturating at MaxInt64).
	flatRows int64
}

// FlatRowCount returns the logical (pre-dedup, pre-projection) row
// count of the root operator's distributed output. For a factorized
// run this is the flattened size the engine never materialized — the
// gap between it and RowCount is the work factorization skipped.
func (r *Result) FlatRowCount() int64 { return r.flatRows }

// RowCount returns the number of distinct result rows the call
// delivered, whether they were materialized (Rows) or streamed
// (Returned). Logs and summaries report this — not len(Rows), which
// is zero for a streamed result.
func (r *Result) RowCount() int64 {
	if r.Rows != nil {
		return int64(len(r.Rows))
	}
	return r.Returned
}

// ShuffledRows returns the run's total cross-node row movement — the
// per-query shuffle feed the adaptive advisor and the slow-query log
// consume without needing a trace sink.
func (r *Result) ShuffledRows() int64 { return r.Metrics.TransferredRows }

// ShuffledBytes returns the wire volume of ShuffledRows.
func (r *Result) ShuffledBytes() int64 { return r.Metrics.TransferredBytes }

// EnumeratedJoins is the number of join operators this run's own
// optimization enumerated — 0 on a plan-cache hit (no enumeration
// happened), the optimizer's CMD counter otherwise.
func (r *Result) EnumeratedJoins() int64 {
	if r.Opt == nil || r.CacheInfo.Hit {
		return 0
	}
	return r.Opt.Counter.CMDs
}

// String summarizes the execution on one line.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d rows", r.RowCount())
	if r.Opt != nil {
		fmt.Fprintf(&b, " [%s cost=%.4g]", r.Opt.Used, r.Opt.Plan.Cost)
	}
	fmt.Fprintf(&b, " scanned=%d shuffled=%d rows/%d B joined=%d",
		r.Metrics.ScannedTriples, r.Metrics.TransferredRows, r.Metrics.TransferredBytes, r.Metrics.JoinedRows)
	if r.Factorized {
		fmt.Fprintf(&b, " factorized(flat_rows=%d)", r.flatRows)
	}
	if r.CacheInfo.Enabled {
		state := "miss"
		if r.CacheInfo.Hit {
			state = "hit"
		}
		if r.CacheInfo.Shared {
			state += "+shared"
		}
		fmt.Fprintf(&b, " cache=%s", state)
	}
	if r.CacheInfo.SharedExec {
		b.WriteString(" exec=shared")
	}
	if len(r.Degraded) > 0 {
		fmt.Fprintf(&b, " DEGRADED[%s]", strings.Join(r.Degraded, "; "))
	}
	return b.String()
}

// ExecEnv carries the per-query resilience hooks of one execution.
// The zero value disables both: no memory accounting, no fault
// injection.
type ExecEnv struct {
	// Gauge, when non-nil, is charged for every relation the run
	// materializes (arena capacity, in bytes). A trip fails the run
	// with a typed *resilience.BudgetError naming the operator.
	Gauge *resilience.Gauge
	// Faults, when non-nil, arms deterministic fault injection at the
	// engine's sites (chaos tests only; nil in production).
	Faults *faultinject.Set
	// Snap is the store snapshot this execution reads. ExecuteEnv
	// captures it once at entry when nil, so a background migration or
	// ingest commit swapping the engine's stores mid-query never gives
	// one query two views. A caller that must coordinate the engine
	// view with other pinned state (the serving path pins the dataset
	// snapshot, statistics epoch and store view together) captures
	// Engine.Snapshot() itself and passes it here.
	Snap *Snap
	// fo is the execution's node-failure memory (dead set + failover
	// count), created by ExecuteStream when the engine has a failover
	// policy. nil otherwise; all methods are nil-safe.
	fo *failoverState
}

// maxDeltaChunks bounds the broadcast-ingest delta chunk list: when a
// commit would exceed it, all chunks are merged into one store, so
// scans touch O(1) delta indexes regardless of how many commits have
// accumulated.
const maxDeltaChunks = 16

// Snap is one immutable view of the partitioned data: the per-node
// base stores, the per-node migration overlays, the alignment table
// the current placement guarantees, and the broadcast-ingest delta.
// Writers (background migrations, ingest commits) build a fresh
// snapshot and swap it in atomically; queries in flight keep the one
// they started with.
//
// Base stores hold the partitioning method's original fragments and
// are NEVER rebuilt: normal scans read only them, so queries outside
// the migrated patterns cost exactly what they did before any
// migration. The copies a migration adds live in the overlays, which
// only aligned scans consult — the one context where those copies can
// be useful (each is a duplicate of a base triple somewhere else).
//
// Triples ingested after the placement was computed live in the delta
// chunk stores, which are logically replicated to every node: scans
// match the delta once and surface its rows on all nodes, and the
// engine's set semantics (scatter/gather/root dedup) collapse the
// copies. Replication preserves every local-join guarantee the
// optimizer derives from the base placement — a co-located match
// involving a delta triple is co-located on every node.
type Snap struct {
	stores []*store
	// overlays[node] indexes the migration adds on node; nil when the
	// node has none (and the whole slice is nil before any migration).
	overlays []*store
	align    *partition.Alignment
	// delta holds the broadcast-ingest chunk stores, oldest first.
	delta []*store
	// data is the dataset snapshot this store view was built from; the
	// serving path reads its epoch and statistics from here so one
	// atomic load pins everything consistently.
	data *rdf.Snapshot
}

// overlay returns node's migration overlay, nil when it has none.
func (s *Snap) overlay(node int) *store {
	if s.overlays == nil {
		return nil
	}
	return s.overlays[node]
}

// Data returns the dataset snapshot this store view corresponds to
// (nil when the engine was built without SetData).
func (s *Snap) Data() *rdf.Snapshot { return s.data }

// DeltaLen returns the number of broadcast-ingested triples in the
// view.
func (s *Snap) DeltaLen() int {
	n := 0
	for _, st := range s.delta {
		n += len(st.triples)
	}
	return n
}

// Engine executes plans over a partitioned dataset, one goroutine per
// simulated computing node, plus bounded intra-query parallelism
// across independent plan subtrees.
type Engine struct {
	dict *rdf.Dict
	// mu serializes snapshot swaps (migrations, ingest commits,
	// SetData); readers load snap without it.
	mu sync.Mutex
	// snap is the current store snapshot; swapped whole under mu,
	// never mutated in place.
	snap atomic.Pointer[Snap]
	// sem is the subtree-parallelism semaphore: nil means sequential
	// child evaluation, otherwise it holds parallelism-1 slots (the
	// submitting goroutine is the extra worker).
	sem chan struct{}
	// inst is the optional metrics bundle; nil disables recording.
	inst *Instruments
	// fo is the node-failover policy; nil disables the failover ladder
	// (node faults then fail queries immediately — see nodeGate).
	fo *FailoverPolicy
	// avail caches the live-replica membership set of the most recent
	// (snapshot, dead set) pair a failover scan needed.
	avail atomic.Pointer[availEntry]
}

// New builds an engine over the placement produced by a partitioning
// method. The dictionary must be the one that encoded the triples.
// The engine defaults to full intra-query parallelism (GOMAXPROCS);
// see SetParallelism.
func New(dict *rdf.Dict, placement *partition.Placement) *Engine {
	e := &Engine{dict: dict}
	stores := make([]*store, placement.Nodes)
	for i, ts := range placement.Triples {
		stores[i] = newStore(ts)
	}
	e.snap.Store(&Snap{stores: stores})
	e.SetParallelism(0)
	return e
}

// Snapshot returns the engine's current immutable store view. The
// serving path captures it once per query and passes it through
// ExecEnv.Snap, so the epoch, statistics and scans of one query all
// describe the same state.
func (e *Engine) Snapshot() *Snap { return e.snap.Load() }

// SetData attaches the dataset snapshot the current store view was
// built from (see Snap.Data). Called once at open, and again after
// epoch-only bumps (migrations) publish a fresh dataset snapshot.
func (e *Engine) SetData(data *rdf.Snapshot) {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.snap.Load()
	e.snap.Store(&Snap{stores: old.stores, overlays: old.overlays, align: old.align, delta: old.delta, data: data})
}

// ApplyIngest folds one committed write delta into the engine:
// the new triples become a broadcast delta chunk (visible on every
// node; see Snap), and the attached dataset snapshot becomes the
// view's pinned data. Chunks are merged into one store once their
// count passes maxDeltaChunks, so scan overhead stays O(1) in commit
// count. Queries in flight keep their captured snapshot — an ingest
// commit never blocks or tears a running query.
func (e *Engine) ApplyIngest(delta []rdf.Triple, data *rdf.Snapshot) {
	if len(delta) == 0 {
		if data != nil {
			e.SetData(data)
		}
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.snap.Load()
	chunk := make([]rdf.Triple, len(delta))
	copy(chunk, delta)
	var chunks []*store
	if len(old.delta) >= maxDeltaChunks {
		merged := make([]rdf.Triple, 0, old.DeltaLen()+len(chunk))
		for _, st := range old.delta {
			merged = append(merged, st.triples...)
		}
		merged = append(merged, chunk...)
		chunks = []*store{newStore(merged)}
	} else {
		chunks = make([]*store, len(old.delta), len(old.delta)+1)
		copy(chunks, old.delta)
		chunks = append(chunks, newStore(chunk))
	}
	e.snap.Store(&Snap{stores: old.stores, overlays: old.overlays, align: old.align, delta: chunks, data: data})
}

// ApplyMigration swaps in a new store snapshot with the migration's
// per-node adds indexed as overlays and the given alignment table. The
// base stores are never rebuilt — normal scans keep reading exactly the
// pre-migration fragments, so queries outside the migrated patterns see
// zero cost from the added replicas; only aligned scans read the
// overlays. Touched nodes get a fresh overlay merging the previous
// one with the new adds (deduplicated against the base fragment);
// untouched overlays are shared with the previous snapshot. Queries
// already executing keep their captured snapshot — the swap never
// blocks or tears an in-flight run. The returned value is the
// rebuilt-triple count (the transient build cost the caller charged
// its memory gauge for).
func (e *Engine) ApplyMigration(m *partition.Migration, align *partition.Alignment) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	old := e.snap.Load()
	overlays := make([]*store, len(old.stores))
	if old.overlays != nil {
		copy(overlays, old.overlays)
	}
	// Triples that arrived through ingest live in the broadcast delta,
	// which aligned scans already read on every node; an overlay copy of
	// one would make the aligned scan emit it twice. They are excluded
	// from overlays on all nodes.
	var inDelta map[rdf.Triple]struct{}
	if len(old.delta) > 0 {
		inDelta = make(map[rdf.Triple]struct{}, old.DeltaLen())
		for _, st := range old.delta {
			for _, t := range st.triples {
				inDelta[t] = struct{}{}
			}
		}
	}
	rebuilt := 0
	for node, adds := range m.Adds {
		if len(adds) == 0 {
			continue
		}
		var prev []rdf.Triple
		if overlays[node] != nil {
			prev = overlays[node].triples
		}
		base := old.stores[node].triples
		seen := make(map[rdf.Triple]struct{}, len(base)+len(prev)+len(adds))
		for _, t := range base {
			seen[t] = struct{}{}
		}
		for _, t := range prev {
			seen[t] = struct{}{}
		}
		merged := make([]rdf.Triple, len(prev), len(prev)+len(adds))
		copy(merged, prev)
		for _, t := range adds {
			if _, dup := seen[t]; dup {
				continue
			}
			if inDelta != nil {
				if _, dup := inDelta[t]; dup {
					continue
				}
			}
			seen[t] = struct{}{}
			merged = append(merged, t)
		}
		overlays[node] = newStore(merged)
		rebuilt += len(merged)
	}
	e.snap.Store(&Snap{stores: old.stores, overlays: overlays, align: align, delta: old.delta, data: old.data})
	return rebuilt
}

// Alignment returns the engine's current alignment table (nil when no
// migration has run).
func (e *Engine) Alignment() *partition.Alignment { return e.snap.Load().align }

// SetParallelism bounds how many independent plan subtrees and
// shuffle scatters run concurrently: 0 means GOMAXPROCS, any value
// ≤ 1 evaluates children strictly in order. Results and metrics are
// identical at every setting. It must not be called concurrently
// with Execute.
func (e *Engine) SetParallelism(p int) {
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p <= 1 {
		e.sem = nil
		return
	}
	e.sem = make(chan struct{}, p-1)
}

// Nodes returns the cluster size.
func (e *Engine) Nodes() int { return len(e.snap.Load().stores) }

// SetInstruments wires (or, with nil, unwires) the engine's metrics.
// It must not be called concurrently with Execute.
func (e *Engine) SetInstruments(inst *Instruments) { e.inst = inst }

// Execute runs the plan for q and returns the distinct results
// projected onto q's SELECT variables (all variables when SELECT *).
func (e *Engine) Execute(ctx context.Context, p *plan.Node, q *sparql.Query) (*Result, error) {
	return e.ExecuteEnv(ctx, p, q, ExecEnv{})
}

// ExecuteEnv is Execute with the query's resilience environment: a
// memory gauge charged by relation materialization and an optional
// fault-injection set. A panic anywhere in the execution — the calling
// goroutine, a per-node worker, a subtree task — is recovered into a
// typed *resilience.PanicError failing this query only.
//
// It is the materializing form of ExecuteStream: drain the stream into
// one arena (charged to the gauge as "flatten"), then sort — Rows is
// the distinct projected result in lexicographic order, as it always
// was.
func (e *Engine) ExecuteEnv(ctx context.Context, p *plan.Node, q *sparql.Query, env ExecEnv) (res *Result, err error) {
	defer resilience.CatchPanic(&err, e.inst.panicRecovered)
	st, err := e.ExecuteStream(ctx, p, q, env)
	if err != nil {
		return nil, err
	}
	out := newRelation(st.res.Vars, 0)
	for {
		rows, err := st.NextChunk(ctx)
		if err != nil {
			st.Finish()
			return nil, err
		}
		if rows == nil {
			break
		}
		for _, row := range rows {
			out.appendCopy(row)
		}
		if err := out.chargeTo(env.Gauge, "flatten"); err != nil {
			st.Finish()
			return nil, err
		}
	}
	out.sortRows()
	res = st.Result()
	res.Rows = out.Rows
	return res, nil
}

func projectResult(rel *Relation, q *sparql.Query) (*Result, error) {
	vars := q.Select
	if len(vars) == 0 {
		vars = q.Vars()
	}
	for _, v := range vars {
		if rel.colIndex(v) < 0 {
			return nil, fmt.Errorf("engine: projected variable ?%s not bound by the query", v)
		}
	}
	proj := rel.project(vars)
	return &Result{Vars: proj.Vars, Rows: proj.Rows}, nil
}

// opGate is the prologue every operator evaluation passes: the
// cancellation poll and the injected-fault sites (slow operator,
// budget trip). It is shared by the flat and factorized paths so the
// chaos suite exercises both identically.
func (e *Engine) opGate(ctx context.Context, p *plan.Node, env ExecEnv) error {
	if err := obs.Canceled(ctx, "execute"); err != nil {
		return err
	}
	if d := env.Faults.Delay(faultinject.EngineSlow); d > 0 {
		// An injected slow operator must stay cancellable: a deadline
		// firing mid-stall aborts the query like any other timeout.
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return obs.Canceled(ctx, "execute")
		case <-t.C:
		}
	}
	if env.Faults.Should(faultinject.EngineBudget) {
		return &resilience.BudgetError{Site: opName(p.Alg), Requested: 1, Limit: env.Gauge.Used()}
	}
	return nil
}

// eval executes p and returns one relation per node (the distributed
// intermediate result of paper §II-D) plus the operator's trace.
func (e *Engine) eval(ctx context.Context, p *plan.Node, q *sparql.Query, env ExecEnv, m *Metrics) ([]*Relation, *TraceNode, error) {
	if err := e.opGate(ctx, p, env); err != nil {
		return nil, nil, err
	}
	var out []*Relation
	var err error
	tr := newTrace(p)
	start := time.Now()
	switch p.Alg {
	case plan.Scan:
		out, err = e.scan(ctx, p.TP, q, env, m, tr)
	case plan.LocalJoin, plan.BroadcastJoin, plan.RepartitionJoin:
		out, err = e.joinOp(ctx, p, q, env, m, tr, &start)
	default:
		err = fmt.Errorf("engine: unknown operator %v", p.Alg)
	}
	if err != nil {
		return nil, nil, err
	}
	tr.Elapsed = time.Since(start)
	tr.record(out)
	if e.inst != nil {
		e.inst.recordOp(p.Alg, tr.Elapsed, tr.OutputRows)
	}
	return out, tr, nil
}

// forEachBounded runs f(i) for i in [0, n), concurrently up to the
// engine's parallelism. A task whose slot cannot be acquired runs
// inline on the submitting goroutine, so recursion through nested
// operators can never deadlock on the semaphore. A panicking task —
// spawned or inline — is recovered into a typed error; the
// lowest-index error is returned, deterministically.
func (e *Engine) forEachBounded(n int, f func(i int)) error {
	run := func(i int) (err error) {
		defer resilience.CatchPanic(&err, e.inst.panicRecovered)
		f(i)
		return nil
	}
	if e.sem == nil || n <= 1 {
		for i := 0; i < n; i++ {
			if err := run(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case e.sem <- struct{}{}:
			e.inst.parallelTask()
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-e.sem }()
				errs[i] = run(i)
			}(i)
		default:
			e.inst.inlineTask()
			errs[i] = run(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// perNodeErr runs f concurrently for every node — one goroutine per
// simulated computing node — and returns the lowest-numbered node's
// error, deterministically. A node goroutine's panic is recovered on
// that goroutine into a typed *resilience.PanicError attributed to the
// node, so a poisoned operator fails its query, never the process.
func (e *Engine) perNodeErr(n int, f func(node int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			defer resilience.CatchPanic(&errs[node], e.inst.panicRecovered)
			errs[node] = f(node)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) scan(ctx context.Context, tp int, q *sparql.Query, env ExecEnv, m *Metrics, tr *TraceNode) ([]*Relation, error) {
	bp := bindPattern(e.dict, q.Patterns[tp])
	stores := env.Snap.stores
	out := make([]*Relation, len(stores))
	// Match the broadcast-ingest delta once — its rows are logically
	// present on every node — and share the matched rows across all
	// node relations (set semantics collapse the copies downstream).
	deltaRows, scanned, err := e.matchDelta(env, bp)
	if err != nil {
		return nil, err
	}
	err = e.perNodeErr(len(stores), func(node int) error {
		local := bp
		var count int64
		local.scanned = &count
		down, err := e.nodeGate(ctx, node, faultinject.NodeScan(node), "scan", env)
		if err != nil {
			return err
		}
		if down {
			rel, err := e.failoverScan(node, local, env, nil)
			if err != nil {
				return err
			}
			out[node] = rel
		} else {
			out[node] = stores[node].match(local)
		}
		if len(deltaRows) > 0 {
			// Delta rows survive any node's death — the broadcast chunks
			// are replicated to every node by construction.
			out[node].Rows = append(out[node].Rows, deltaRows...)
		}
		atomic.AddInt64(&scanned, count)
		return out[node].chargeTo(env.Gauge, "scan")
	})
	if err != nil {
		return nil, err
	}
	m.ScannedTriples += scanned
	return out, nil
}

// matchDelta matches bp against the snapshot's ingest delta chunks,
// returning the combined rows (shared by every node's scan output)
// and the postings touched. Charged to the gauge once — the rows are
// one materialization no matter how many nodes surface them.
func (e *Engine) matchDelta(env ExecEnv, bp boundPattern) ([][]rdf.TermID, int64, error) {
	chunks := env.Snap.delta
	if len(chunks) == 0 {
		return nil, 0, nil
	}
	var rows [][]rdf.TermID
	var scanned int64
	for _, st := range chunks {
		local := bp
		var count int64
		local.scanned = &count
		rel := st.match(local)
		scanned += count
		if err := rel.chargeTo(env.Gauge, "scan"); err != nil {
			return nil, 0, err
		}
		rows = append(rows, rel.Rows...)
	}
	return rows, scanned, nil
}

// alignHints returns, per child of a repartition join, the join
// variable that child should align-scan on ("" = evaluate normally;
// nil when no child qualifies). A child qualifies when it is a Scan
// leaf whose pattern has a constant predicate with the join variable
// at the subject or object, and the snapshot's alignment table marks
// that (predicate, position) triple group fully migrated: every triple
// of the group then has a copy on AlignNode(key term) — exactly the
// node the repartition scatter would send its rows to — so the scan
// can emit each matching triple only there and skip the shuffle
// entirely without changing the joined row set.
func (e *Engine) alignHints(p *plan.Node, q *sparql.Query, env ExecEnv) []string {
	a := env.Snap.align
	if a.Len() == 0 {
		return nil
	}
	var hints []string
	for i, c := range p.Children {
		if c.Alg != plan.Scan {
			continue
		}
		tp := q.Patterns[c.TP]
		if tp.P.IsVar() {
			continue
		}
		pred, ok := e.dict.Lookup(tp.P.Value)
		if !ok {
			continue // unknown predicate matches nothing; normal path is fine
		}
		var pos partition.Pos
		switch {
		case tp.S.IsVar() && tp.S.Value == p.JoinVar:
			pos = partition.PosS
		case tp.O.IsVar() && tp.O.Value == p.JoinVar:
			pos = partition.PosO
		default:
			continue // join variable not at an alignable position
		}
		if !a.Aligned(pred, pos) {
			continue
		}
		if hints == nil {
			hints = make([]string, len(p.Children))
		}
		hints[i] = p.JoinVar
	}
	return hints
}

// alignedScan is the Scan evaluation of an aligned child: match the
// pattern as usual, but emit each row only on the node the parent's
// repartition scatter would route it to (row[col] % n). The alignment
// guarantee — every group triple has a copy on its align node — makes
// the emitted multiset identical to scan+scatter+dedup: each distinct
// matching row appears exactly once, already on its destination.
func (e *Engine) alignedScan(ctx context.Context, p *plan.Node, q *sparql.Query, joinVar string, env ExecEnv, m *Metrics) ([]*Relation, *TraceNode, error) {
	if err := e.opGate(ctx, p, env); err != nil {
		return nil, nil, err
	}
	tr := newTrace(p)
	tr.Aligned = true
	start := time.Now()
	bp := bindPattern(e.dict, q.Patterns[p.TP])
	stores := env.Snap.stores
	n := len(stores)
	out := make([]*Relation, n)
	deltaRows, scanned, err := e.matchDelta(env, bp)
	if err != nil {
		return nil, nil, err
	}
	err = e.perNodeErr(n, func(node int) error {
		local := bp
		var count int64
		local.scanned = &count
		col := -1
		for i, v := range local.vars {
			if v == joinVar {
				col = i
			}
		}
		if col < 0 {
			return fmt.Errorf("engine: aligned-scan variable ?%s missing from tp%d", joinVar, p.TP+1)
		}
		down, err := e.nodeGate(ctx, node, faultinject.NodeScan(node), "scan", env)
		if err != nil {
			return err
		}
		if down {
			// Failover applies the same destination filter before the
			// coverage check, so rows another node would keep anyway never
			// demand a replica, and the kept rows land in the same order
			// the healthy scan emits them: base, overlay, delta.
			keep := func(row []rdf.TermID) bool { return int(uint64(row[col])%uint64(n)) == node }
			rel, err := e.failoverScan(node, local, env, keep)
			if err != nil {
				return err
			}
			for _, row := range deltaRows {
				if keep(row) {
					rel.Rows = append(rel.Rows, row)
				}
			}
			out[node] = rel
			atomic.AddInt64(&scanned, count)
			return rel.chargeTo(env.Gauge, "scan")
		}
		rel := stores[node].match(local)
		if ov := env.Snap.overlay(node); ov != nil {
			// Migrated copies live only in the overlay, invisible to
			// normal scans; an aligned scan must see them — they are
			// exactly the copies the migration placed on this node so
			// the shuffle can be skipped.
			ovRel := ov.match(local)
			if err := ovRel.chargeTo(env.Gauge, "scan"); err != nil {
				return err
			}
			rel.Rows = append(rel.Rows, ovRel.Rows...)
		}
		if len(deltaRows) > 0 {
			// Ingested triples are replicated to every node via the
			// delta, so the align filter below keeps each of them exactly
			// on its scatter destination — the alignment guarantee holds
			// for them without any overlay copy (ApplyMigration excludes
			// delta triples from overlays for the same reason).
			rel.Rows = append(rel.Rows, deltaRows...)
		}
		// No dedup needed, unlike the scatter path: every copy of a
		// triple shares one align node, only that node passes the
		// filter, and there each row appears once — the base fragment
		// and the overlay are each deduplicated, the overlay is built
		// net of the base and the delta, and the delta is net of the
		// whole dataset — so each matching row already appears exactly
		// once globally.
		kept := rel.Rows[:0]
		for _, row := range rel.Rows {
			if int(uint64(row[col])%uint64(n)) == node {
				kept = append(kept, row)
			}
		}
		rel.Rows = kept
		out[node] = rel
		atomic.AddInt64(&scanned, count)
		return rel.chargeTo(env.Gauge, "scan")
	})
	if err != nil {
		return nil, nil, err
	}
	m.ScannedTriples += scanned
	tr.Elapsed = time.Since(start)
	tr.record(out)
	if e.inst != nil {
		e.inst.recordOp(p.Alg, tr.Elapsed, tr.OutputRows)
	}
	return out, tr, nil
}

// evalChildren evaluates the children of p — concurrently when the
// parallelism knob allows, since the subtrees of a k-way join are
// independent — attaching their traces to tr in child order and
// restarting the parent's own-time clock. Every child accumulates
// into its own Metrics; the merge happens in child order, so totals
// are independent of the schedule. A non-empty hints[i] names the join
// variable child i should align-scan on (see alignHints); hints may be
// nil when no child qualifies.
func (e *Engine) evalChildren(ctx context.Context, p *plan.Node, q *sparql.Query, env ExecEnv, m *Metrics, tr *TraceNode, start *time.Time, hints []string) ([][]*Relation, error) {
	n := len(p.Children)
	children := make([][]*Relation, n)
	traces := make([]*TraceNode, n)
	metrics := make([]Metrics, n)
	errs := make([]error, n)
	if err := e.forEachBounded(n, func(i int) {
		if hints != nil && hints[i] != "" {
			children[i], traces[i], errs[i] = e.alignedScan(ctx, p.Children[i], q, hints[i], env, &metrics[i])
		} else {
			children[i], traces[i], errs[i] = e.eval(ctx, p.Children[i], q, env, &metrics[i])
		}
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i := range metrics {
		m.add(metrics[i])
	}
	tr.Children = append(tr.Children, traces...)
	*start = time.Now()
	return children, nil
}

// joinInputs evaluates p's children and performs the operator's data
// movement — nothing for a local join (partitioning guarantees every
// complete match is co-located, Definition 2), gather+replicate of the
// k−1 smaller inputs for broadcast, a hash scatter on the join
// variable for repartition — returning per node the list of relations
// that node's join consumes. Transfer accounting lands in m and tr
// exactly as the flat operators always reported it, so the flat and
// factorized execution paths are metric-identical.
func (e *Engine) joinInputs(ctx context.Context, p *plan.Node, q *sparql.Query, env ExecEnv, m *Metrics, tr *TraceNode, start *time.Time) ([][]*Relation, error) {
	var hints []string
	if p.Alg == plan.RepartitionJoin {
		hints = e.alignHints(p, q, env)
	}
	children, err := e.evalChildren(ctx, p, q, env, m, tr, start, hints)
	if err != nil {
		return nil, err
	}
	n := len(env.Snap.stores)
	inputs := make([][]*Relation, n)
	switch p.Alg {
	case plan.LocalJoin:
		for node := 0; node < n; node++ {
			rels := make([]*Relation, len(children))
			for i := range children {
				rels[i] = children[i][node]
			}
			inputs[node] = rels
		}
	case plan.BroadcastJoin:
		// Find the largest input by total row count.
		largest, largestSize := 0, -1
		sizes := make([]int, len(children))
		for i, frags := range children {
			for _, f := range frags {
				sizes[i] += len(f.Rows)
			}
			if sizes[i] > largestSize {
				largest, largestSize = i, sizes[i]
			}
		}
		// Gather and dedupe each small input (replicated fragments may
		// hold the same row on several nodes). The gathers are
		// independent per child, so they run under the subtree-
		// parallelism bound; the transfer accounting is summed in child
		// order afterwards.
		gathered := make([]*Relation, len(children))
		moved := make([]int64, len(children))
		var order []int
		for i := range children {
			if i != largest {
				order = append(order, i)
			}
		}
		if err := e.forEachBounded(len(order), func(oi int) {
			i := order[oi]
			frags := children[i]
			// The gather shares the fragments' row storage; no arena copy.
			g := &Relation{Vars: frags[0].Vars, Rows: make([][]rdf.TermID, 0, sizes[i])}
			for _, f := range frags {
				g.Rows = append(g.Rows, f.Rows...)
			}
			g.dedup()
			// Every row ships to every node holding the largest input.
			gathered[i] = g
			moved[i] = int64(len(g.Rows)) * int64(n)
		}); err != nil {
			return nil, err
		}
		small := make([]*Relation, 0, len(children)-1)
		for _, i := range order {
			bytes := moved[i] * termIDBytes * int64(len(gathered[i].Vars))
			m.TransferredRows += moved[i]
			m.TransferredBytes += bytes
			tr.TransferredRows += moved[i]
			tr.TransferredBytes += bytes
			small = append(small, gathered[i])
		}
		for node := 0; node < n; node++ {
			rels := make([]*Relation, 0, len(children))
			rels = append(rels, children[largest][node])
			rels = append(rels, small...)
			inputs[node] = rels
		}
	case plan.RepartitionJoin:
		// Resolve the join column of every input up front (deterministic
		// error reporting regardless of schedule). Rows arriving at a
		// node are deduplicated by scatter, collapsing replicas shipped
		// from different source nodes; each scatter polls ctx so huge
		// shuffles stay cancellable.
		cols := make([]int, len(children))
		for i, frags := range children {
			cols[i] = frags[0].colIndex(p.JoinVar)
			if cols[i] < 0 {
				return nil, fmt.Errorf("engine: repartition variable ?%s missing from input %d", p.JoinVar, i)
			}
		}
		shuffled := make([][]*Relation, len(children)) // [child][node]
		moved := make([]int64, len(children))
		errs := make([]error, len(children))
		if err := e.forEachBounded(len(children), func(i int) {
			if hints != nil && hints[i] != "" {
				// Aligned scan already emitted every row on its scatter
				// destination (row[col] % n == node), so the shuffle is
				// the identity: nothing moves, nothing is rebuilt.
				shuffled[i], moved[i] = children[i], 0
				return
			}
			shuffled[i], moved[i], errs[i] = e.scatter(ctx, children[i], cols[i], env)
		}); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for i := range children {
			bytes := moved[i] * termIDBytes * int64(len(children[i][0].Vars))
			m.TransferredRows += moved[i]
			m.TransferredBytes += bytes
			tr.TransferredRows += moved[i]
			tr.TransferredBytes += bytes
			// Attribute the scatter to the child that fed it, so the
			// adaptive advisor can mine exact per-pattern shuffle volume
			// from completed-query traces.
			tr.Children[i].ScatterRows = moved[i]
			tr.Children[i].ScatterBytes = bytes
		}
		for node := 0; node < n; node++ {
			rels := make([]*Relation, len(children))
			for i := range children {
				rels[i] = shuffled[i][node]
			}
			inputs[node] = rels
		}
	default:
		return nil, fmt.Errorf("engine: unknown operator %v", p.Alg)
	}
	return inputs, nil
}

// joinOp runs one k-way join operator the flat way: per-node inputs
// from joinInputs, then a hash-join fold on every node, materializing
// each node's result as a flat row arena.
func (e *Engine) joinOp(ctx context.Context, p *plan.Node, q *sparql.Query, env ExecEnv, m *Metrics, tr *TraceNode, start *time.Time) ([]*Relation, error) {
	inputs, err := e.joinInputs(ctx, p, q, env, m, tr, start)
	if err != nil {
		return nil, err
	}
	site := opName(p.Alg)
	out := make([]*Relation, len(env.Snap.stores))
	var joined int64
	err = e.perNodeErr(len(out), func(node int) error {
		env.Faults.PanicIf(faultinject.EnginePanic)
		r, err := joinAll(ctx, env.Gauge, site, inputs[node])
		if err != nil {
			return err
		}
		out[node] = r
		atomic.AddInt64(&joined, int64(len(r.Rows)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	m.JoinedRows += joined
	return out, nil
}

// evalFactorizedRoot runs the root join operator on the factorizing
// path: the same joinInputs movement as the flat path (children are
// evaluated flat — their results cross node boundaries and would have
// to be flattened anyway), then a per-node factorize instead of a
// per-node joinAll. The trace and JoinedRows report the operator's
// logical (flattened) output, counted from the answer graph without
// materializing it, so estimate-vs-actual comparison keeps working.
func (e *Engine) evalFactorizedRoot(ctx context.Context, p *plan.Node, q *sparql.Query, env ExecEnv, m *Metrics) ([]*FactorizedRelation, *TraceNode, error) {
	if err := e.opGate(ctx, p, env); err != nil {
		return nil, nil, err
	}
	tr := newTrace(p)
	start := time.Now()
	inputs, err := e.joinInputs(ctx, p, q, env, m, tr, &start)
	if err != nil {
		return nil, nil, err
	}
	site := opName(p.Alg)
	out := make([]*FactorizedRelation, len(env.Snap.stores))
	counts := make([]int64, len(out))
	err = e.perNodeErr(len(out), func(node int) error {
		env.Faults.PanicIf(faultinject.EnginePanic)
		f, err := factorize(ctx, env.Gauge, site, inputs[node])
		if err != nil {
			return err
		}
		out[node] = f
		counts[node] = f.flatCount()
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// Fold the per-node logical counts in node order (saturating), so
	// the reported totals are schedule-invariant.
	var joined int64
	for _, c := range counts {
		joined = satAdd(joined, c)
		if c > tr.MaxNodeRows {
			tr.MaxNodeRows = c
		}
	}
	m.JoinedRows = satAdd(m.JoinedRows, joined)
	tr.Elapsed = time.Since(start)
	tr.OutputRows = joined
	tr.Factorized = true
	if e.inst != nil {
		e.inst.recordOp(p.Alg, tr.Elapsed, tr.OutputRows)
	}
	return out, tr, nil
}

// scatter hashes one input's rows to their destination nodes. A first
// counting pass sizes each bucket's arena exactly, the second copies
// rows; every bucket is deduplicated before the join. Bucket arenas
// are charged to the query's gauge before the copy, so a shuffle that
// would blow the budget fails before materializing.
func (e *Engine) scatter(ctx context.Context, frags []*Relation, col int, env ExecEnv) ([]*Relation, int64, error) {
	n := len(env.Snap.stores)
	// Offer each destination node its partition. A dead node's bucket is
	// pure computation over rows already fetched from live nodes, so any
	// healthy worker re-homes it — the failover is recorded and the
	// shuffle proceeds unchanged, bit-identical to the healthy run.
	for node := 0; node < n; node++ {
		down, err := e.nodeGate(ctx, node, faultinject.NodeShuffle(node), "shuffle", env)
		if err != nil {
			return nil, 0, err
		}
		if down {
			env.fo.recordFailover()
		}
	}
	counts := make([]int, n)
	for _, f := range frags {
		for _, row := range f.Rows {
			counts[int(uint64(row[col])%uint64(n))]++
		}
	}
	buckets := make([]*Relation, n)
	for b := range buckets {
		buckets[b] = newRelation(frags[0].Vars, counts[b])
		if err := buckets[b].chargeTo(env.Gauge, "shuffle"); err != nil {
			return nil, 0, err
		}
	}
	var moved int64
	ops := 0
	for src, f := range frags {
		for _, row := range f.Rows {
			if ops++; ops&(cancelEvery-1) == 0 {
				if err := obs.Canceled(ctx, "shuffle"); err != nil {
					return nil, 0, err
				}
			}
			dst := int(uint64(row[col]) % uint64(n))
			buckets[dst].appendCopy(row)
			if dst != src {
				moved++
			}
		}
	}
	for b := range buckets {
		buckets[b].dedup()
	}
	return buckets, moved, nil
}

// Reference executes q on a single node over the full dataset by
// folding pattern matches left to right — the ground truth the
// distributed engine is tested against.
func Reference(ds *rdf.Dataset, q *sparql.Query) (*Result, error) {
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("engine: empty query")
	}
	ctx := context.Background()
	snap := ds.Snapshot()
	st := newStore(snap.Triples())
	var cur *Relation
	for _, tp := range q.Patterns {
		rel := st.match(bindPattern(snap.Dict(), tp))
		if cur == nil {
			cur = rel
		} else {
			var err error
			cur, err = hashJoin(ctx, cur, rel)
			if err != nil {
				return nil, err
			}
		}
	}
	flat := int64(len(cur.Rows))
	cur.dedup()
	out, err := projectResult(cur, q)
	if err != nil {
		return nil, err
	}
	out.flatRows = flat
	return out, nil
}
