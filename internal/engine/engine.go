package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

// Metrics reports what one plan execution did.
type Metrics struct {
	// ScannedTriples counts index postings touched by leaf scans.
	ScannedTriples int64
	// TransferredRows counts rows moved across node boundaries: every
	// (row, receiving node) pair of broadcast gathers/replications and
	// every repartitioned row landing on a different node.
	TransferredRows int64
	// JoinedRows counts rows produced by all join operators.
	JoinedRows int64
}

// Result is the outcome of a query execution.
type Result struct {
	// Vars names the output columns.
	Vars []string
	// Rows holds the distinct result bindings, lexicographically sorted.
	Rows [][]rdf.TermID
	// Metrics instruments the run (zero for the reference executor).
	Metrics Metrics
	// Trace is the per-operator execution profile (EXPLAIN ANALYZE),
	// mirroring the plan tree.
	Trace *TraceNode
}

// Engine executes plans over a partitioned dataset, one goroutine per
// simulated computing node.
type Engine struct {
	dict   *rdf.Dict
	stores []*store
}

// New builds an engine over the placement produced by a partitioning
// method. The dictionary must be the one that encoded the triples.
func New(dict *rdf.Dict, placement *partition.Placement) *Engine {
	e := &Engine{dict: dict, stores: make([]*store, placement.Nodes)}
	for i, ts := range placement.Triples {
		e.stores[i] = newStore(ts)
	}
	return e
}

// Nodes returns the cluster size.
func (e *Engine) Nodes() int { return len(e.stores) }

// Execute runs the plan for q and returns the distinct results
// projected onto q's SELECT variables (all variables when SELECT *).
func (e *Engine) Execute(ctx context.Context, p *plan.Node, q *sparql.Query) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("engine: invalid plan: %w", err)
	}
	var m Metrics
	parts, trace, err := e.eval(ctx, p, q, &m)
	if err != nil {
		return nil, err
	}
	// Gather the distributed result and deduplicate (set semantics;
	// this also collapses replication-induced duplicates).
	final := &Relation{Vars: parts[0].Vars}
	for _, r := range parts {
		final.Rows = append(final.Rows, r.Rows...)
	}
	final.dedup()
	out, err := projectResult(final, q)
	if err != nil {
		return nil, err
	}
	out.Metrics = m
	out.Trace = trace
	return out, nil
}

func projectResult(rel *Relation, q *sparql.Query) (*Result, error) {
	vars := q.Select
	if len(vars) == 0 {
		vars = q.Vars()
	}
	for _, v := range vars {
		if rel.colIndex(v) < 0 {
			return nil, fmt.Errorf("engine: projected variable ?%s not bound by the query", v)
		}
	}
	proj := rel.project(vars)
	return &Result{Vars: proj.Vars, Rows: proj.Rows}, nil
}

// eval executes p and returns one relation per node (the distributed
// intermediate result of paper §II-D) plus the operator's trace.
func (e *Engine) eval(ctx context.Context, p *plan.Node, q *sparql.Query, m *Metrics) ([]*Relation, *TraceNode, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	var out []*Relation
	var err error
	tr := newTrace(p)
	start := time.Now()
	switch p.Alg {
	case plan.Scan:
		out = e.scan(p.TP, q, m, tr)
	case plan.LocalJoin:
		out, err = e.localJoin(ctx, p, q, m, tr, &start)
	case plan.BroadcastJoin:
		out, err = e.broadcastJoin(ctx, p, q, m, tr, &start)
	case plan.RepartitionJoin:
		out, err = e.repartitionJoin(ctx, p, q, m, tr, &start)
	default:
		err = fmt.Errorf("engine: unknown operator %v", p.Alg)
	}
	if err != nil {
		return nil, nil, err
	}
	tr.Elapsed = time.Since(start)
	tr.record(out)
	return out, tr, nil
}

// perNode runs f concurrently for every node.
func (e *Engine) perNode(f func(node int)) {
	var wg sync.WaitGroup
	for i := range e.stores {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			f(node)
		}(i)
	}
	wg.Wait()
}

func (e *Engine) scan(tp int, q *sparql.Query, m *Metrics, tr *TraceNode) []*Relation {
	bp := bindPattern(e.dict, q.Patterns[tp])
	out := make([]*Relation, len(e.stores))
	var scanned int64
	e.perNode(func(node int) {
		local := bp
		var count int64
		local.scanned = &count
		out[node] = e.stores[node].match(local)
		atomic.AddInt64(&scanned, count)
	})
	m.ScannedTriples += scanned
	return out
}

// evalChildren evaluates all children, preserving order, attaching
// their traces to tr and restarting the parent's own-time clock.
func (e *Engine) evalChildren(ctx context.Context, p *plan.Node, q *sparql.Query, m *Metrics, tr *TraceNode, start *time.Time) ([][]*Relation, error) {
	children := make([][]*Relation, len(p.Children))
	for i, ch := range p.Children {
		r, chTrace, err := e.eval(ctx, ch, q, m)
		if err != nil {
			return nil, err
		}
		children[i] = r
		tr.Children = append(tr.Children, chTrace)
	}
	*start = time.Now()
	return children, nil
}

// localJoin joins the children fragments node by node with no
// communication; the partitioning guarantees every complete match is
// co-located (Definition 2).
func (e *Engine) localJoin(ctx context.Context, p *plan.Node, q *sparql.Query, m *Metrics, tr *TraceNode, start *time.Time) ([]*Relation, error) {
	children, err := e.evalChildren(ctx, p, q, m, tr, start)
	if err != nil {
		return nil, err
	}
	out := make([]*Relation, len(e.stores))
	var joined int64
	e.perNode(func(node int) {
		rels := make([]*Relation, len(children))
		for i := range children {
			rels[i] = children[i][node]
		}
		out[node] = joinAll(rels)
		atomic.AddInt64(&joined, int64(len(out[node].Rows)))
	})
	m.JoinedRows += joined
	return out, nil
}

// broadcastJoin gathers the k−1 smaller inputs, replicates them to
// every node, and joins them against the largest input in place.
func (e *Engine) broadcastJoin(ctx context.Context, p *plan.Node, q *sparql.Query, m *Metrics, tr *TraceNode, start *time.Time) ([]*Relation, error) {
	children, err := e.evalChildren(ctx, p, q, m, tr, start)
	if err != nil {
		return nil, err
	}
	// Find the largest input by total row count.
	largest, largestSize := 0, -1
	sizes := make([]int, len(children))
	for i, frags := range children {
		for _, f := range frags {
			sizes[i] += len(f.Rows)
		}
		if sizes[i] > largestSize {
			largest, largestSize = i, sizes[i]
		}
	}
	// Gather and dedupe each small input (replicated fragments may
	// hold the same row on several nodes).
	gathered := make([]*Relation, 0, len(children)-1)
	for i, frags := range children {
		if i == largest {
			continue
		}
		g := &Relation{Vars: frags[0].Vars}
		for _, f := range frags {
			g.Rows = append(g.Rows, f.Rows...)
		}
		g.dedup()
		// Every row ships to every node holding the largest input.
		moved := int64(len(g.Rows)) * int64(len(e.stores))
		m.TransferredRows += moved
		tr.TransferredRows += moved
		gathered = append(gathered, g)
	}
	out := make([]*Relation, len(e.stores))
	var joined int64
	e.perNode(func(node int) {
		rels := make([]*Relation, 0, len(children))
		rels = append(rels, children[largest][node])
		rels = append(rels, gathered...)
		out[node] = joinAll(rels)
		atomic.AddInt64(&joined, int64(len(out[node].Rows)))
	})
	m.JoinedRows += joined
	return out, nil
}

// repartitionJoin reshuffles every input on the shared join variable
// and joins per node. Rows arriving at a node are deduplicated first,
// collapsing replicas shipped from different source nodes.
func (e *Engine) repartitionJoin(ctx context.Context, p *plan.Node, q *sparql.Query, m *Metrics, tr *TraceNode, start *time.Time) ([]*Relation, error) {
	children, err := e.evalChildren(ctx, p, q, m, tr, start)
	if err != nil {
		return nil, err
	}
	n := len(e.stores)
	shuffled := make([][]*Relation, len(children)) // [child][node]
	for i, frags := range children {
		col := frags[0].colIndex(p.JoinVar)
		if col < 0 {
			return nil, fmt.Errorf("engine: repartition variable ?%s missing from input %d", p.JoinVar, i)
		}
		buckets := make([]*Relation, n)
		for b := range buckets {
			buckets[b] = &Relation{Vars: frags[0].Vars}
		}
		for src, f := range frags {
			for _, row := range f.Rows {
				dst := int(uint64(row[col]) % uint64(n))
				buckets[dst].Rows = append(buckets[dst].Rows, row)
				if dst != src {
					m.TransferredRows++
					tr.TransferredRows++
				}
			}
		}
		for b := range buckets {
			buckets[b].dedup()
		}
		shuffled[i] = buckets
	}
	out := make([]*Relation, n)
	var joined int64
	e.perNode(func(node int) {
		rels := make([]*Relation, len(children))
		for i := range children {
			rels[i] = shuffled[i][node]
		}
		out[node] = joinAll(rels)
		atomic.AddInt64(&joined, int64(len(out[node].Rows)))
	})
	m.JoinedRows += joined
	return out, nil
}

// Reference executes q on a single node over the full dataset by
// folding pattern matches left to right — the ground truth the
// distributed engine is tested against.
func Reference(ds *rdf.Dataset, q *sparql.Query) (*Result, error) {
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("engine: empty query")
	}
	st := newStore(ds.Triples)
	var cur *Relation
	for _, tp := range q.Patterns {
		rel := st.match(bindPattern(ds.Dict, tp))
		if cur == nil {
			cur = rel
		} else {
			cur = hashJoin(cur, rel)
		}
	}
	cur.dedup()
	return projectResult(cur, q)
}
