package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/race"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/workload/randquery"
)

// datasetFor builds a random dataset whose predicates are exactly the
// query's, so randquery-generated shapes are executable with a real
// chance of matches. Deterministic for a given rand source.
func datasetFor(r *rand.Rand, q *sparql.Query, entities int) *rdf.Dataset {
	ds := rdf.NewDataset()
	seen := map[string]bool{}
	for _, tp := range q.Patterns {
		p := tp.P.Value
		if seen[p] {
			continue
		}
		seen[p] = true
		for i := 0; i < 3*entities; i++ {
			s := fmt.Sprintf("n%d", r.Intn(entities))
			o := fmt.Sprintf("n%d", r.Intn(entities))
			ds.Add(s, p, o)
		}
	}
	ds.Dedup()
	return ds
}

// TestDeterminismParallelExecution is the execution-side analogue of
// the optimizer's determinism suite: random queries of every class,
// executed across all partitioning methods with parallel subtree
// evaluation enabled, must return exactly the sequential engine's
// rows AND metrics, which in turn must match the single-node
// reference. Run under -race this also shakes out data races in the
// concurrent operators.
func TestDeterminismParallelExecution(t *testing.T) {
	trials := 10
	entities := 12
	if race.Enabled {
		trials = 5
		entities = 8
	}
	classes := []querygraph.Class{
		querygraph.Star, querygraph.Chain, querygraph.Cycle, querygraph.Tree, querygraph.Dense,
	}
	methods := []partition.Method{
		partition.HashSO{}, partition.TwoHopForward{}, partition.PathBMC{}, partition.UndirectedOneHop{},
	}
	algos := []opt.Algorithm{opt.TDCMD, opt.TDCMDP, opt.HGRTDCMD, opt.TDAuto}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < trials; trial++ {
		class := classes[trial%len(classes)]
		n := 3 + r.Intn(3)
		q, _ := randquery.Generate(class, n, int64(1000+trial))
		ds := datasetFor(r, q, entities)
		want, err := Reference(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		m := methods[trial%len(methods)]
		algo := algos[trial%len(algos)]
		placement, err := m.Partition(ds, 2+trial%3)
		if err != nil {
			t.Fatal(err)
		}
		res := optimizeFor(t, ds, q, m, algo)
		seqEngine := New(ds.Dict, placement)
		seqEngine.SetParallelism(1)
		seq, err := seqEngine.Execute(context.Background(), res.Plan, q)
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		equalResults(t, seq, want, fmt.Sprintf("trial %d (%s, %s) sequential vs reference", trial, class, m.Name()))
		for _, p := range []int{2, 4, 8} {
			par := New(ds.Dict, placement)
			par.SetParallelism(p)
			got, err := par.Execute(context.Background(), res.Plan, q)
			if err != nil {
				t.Fatalf("trial %d P=%d: %v", trial, p, err)
			}
			label := fmt.Sprintf("trial %d (%s, %s, %v) P=%d", trial, class, m.Name(), algo, p)
			equalResults(t, got, seq, label)
			if got.Metrics != seq.Metrics {
				t.Errorf("%s: metrics diverge: parallel %+v vs sequential %+v", label, got.Metrics, seq.Metrics)
			}
			if got.Trace.Operators() != seq.Trace.Operators() {
				t.Errorf("%s: trace shape diverges: %d vs %d operators", label, got.Trace.Operators(), seq.Trace.Operators())
			}
			if got.Trace.TotalTransferred() != seq.Trace.TotalTransferred() {
				t.Errorf("%s: trace transfer diverges: %d vs %d", label, got.Trace.TotalTransferred(), seq.Trace.TotalTransferred())
			}
		}
	}
}

// TestDeterminismParallelBenchQuery pins the parallel engine against
// the hand-checked social-graph queries at every parallelism level.
func TestDeterminismParallelBenchQuery(t *testing.T) {
	ds := socialDataset()
	for _, src := range testQueries {
		q := sparql.MustParse(src)
		want, err := Reference(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		m := partition.HashSO{}
		placement, err := m.Partition(ds, 4)
		if err != nil {
			t.Fatal(err)
		}
		res := optimizeFor(t, ds, q, m, opt.TDAuto)
		for _, p := range []int{1, 2, 4, 8} {
			e := New(ds.Dict, placement)
			e.SetParallelism(p)
			got, err := e.Execute(context.Background(), res.Plan, q)
			if err != nil {
				t.Fatal(err)
			}
			equalResults(t, got, want, fmt.Sprintf("%s P=%d", src[:15], p))
		}
	}
}

// TestJoinCancelled: a degenerate cross-product join must notice a
// cancelled context long before materializing its output.
func TestJoinCancelled(t *testing.T) {
	a := newRelation([]string{"x"}, 5000)
	b := newRelation([]string{"y"}, 5000)
	for i := 0; i < 5000; i++ {
		a.appendCopy([]rdf.TermID{rdf.TermID(i)})
		b.appendCopy([]rdf.TermID{rdf.TermID(i)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := hashJoin(ctx, a, b); err == nil {
		t.Fatal("cancelled cross product ran to completion")
	}
}

// TestScatterCancelled: the repartition scatter polls ctx too.
func TestScatterCancelled(t *testing.T) {
	e := New(rdf.NewDataset().Dict, &partition.Placement{Nodes: 2, Triples: make([][]rdf.Triple, 2)})
	frag := newRelation([]string{"x"}, 10000)
	for i := 0; i < 10000; i++ {
		frag.appendCopy([]rdf.TermID{rdf.TermID(i)})
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.scatter(ctx, []*Relation{frag, frag}, 0, ExecEnv{Snap: e.snap.Load()}); err == nil {
		t.Fatal("cancelled scatter ran to completion")
	}
}
