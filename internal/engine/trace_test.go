package engine

import (
	"context"
	"strings"
	"testing"

	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/sparql"
)

func TestTraceMirrorsPlan(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <worksFor> ?o . ?o <inCity> ?c . }`)
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	res := optimizeFor(t, ds, q, m, 0 /* TDCMD */)
	got, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace == nil {
		t.Fatal("no trace attached")
	}
	// Same operator count and same root shape as the plan.
	if got.Trace.Operators() != res.Plan.Operators()+len(res.Plan.Leaves()) {
		t.Errorf("trace has %d operators, plan has %d joins + %d scans",
			got.Trace.Operators(), res.Plan.Operators(), len(res.Plan.Leaves()))
	}
	if got.Trace.Alg != res.Plan.Alg || got.Trace.Set != res.Plan.Set {
		t.Errorf("trace root mismatch: %v vs %v", got.Trace.Alg, res.Plan.Alg)
	}
	// Trace transfer agrees with the metrics total.
	if got.Trace.TotalTransferred() != got.Metrics.TransferredRows {
		t.Errorf("trace transfer %d != metrics %d",
			got.Trace.TotalTransferred(), got.Metrics.TransferredRows)
	}
	// Estimated cardinalities carried over.
	var walk func(tr *TraceNode, p *plan.Node)
	walk = func(tr *TraceNode, p *plan.Node) {
		if tr.EstimatedCard != p.Card {
			t.Errorf("trace est %v != plan card %v at %v", tr.EstimatedCard, p.Card, p.Set)
		}
		for i := range tr.Children {
			walk(tr.Children[i], p.Children[i])
		}
	}
	walk(got.Trace, res.Plan)

	out := got.Trace.Format()
	for _, want := range []string{"scan tp", "rows=", "est", "moved="} {
		if !strings.Contains(out, want) {
			t.Errorf("trace format missing %q:\n%s", want, out)
		}
	}
}

func TestTraceRowCountsAreExact(t *testing.T) {
	// With collected (exact) stats and a single scan, the trace's
	// actual row count matches the reference result size times the
	// replication factor or more; at minimum the root's OutputRows
	// must be ≥ the distinct result count.
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?p <worksFor> ?o . ?o <inCity> ?c . }`)
	m := partition.HashSO{}
	placement, _ := m.Partition(ds, 2)
	e := New(ds.Dict, placement)
	res := optimizeFor(t, ds, q, m, 0)
	got, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace.OutputRows < int64(len(got.Rows)) {
		t.Errorf("root produced %d rows but result has %d distinct",
			got.Trace.OutputRows, len(got.Rows))
	}
	if got.Trace.MaxNodeRows > got.Trace.OutputRows {
		t.Error("per-node maximum exceeds total")
	}
}
