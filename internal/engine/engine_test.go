package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"sparqlopt/internal/cost"
	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/querygraph"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
	"sparqlopt/internal/stats"
)

// socialDataset builds a small deterministic graph: people know each
// other, work for orgs, orgs are in cities.
func socialDataset() *rdf.Dataset {
	ds := rdf.NewDataset()
	people := []string{"alice", "bob", "carol", "dave", "erin"}
	orgs := []string{"acme", "globex"}
	for i, p := range people {
		ds.Add(p, "type", "Person")
		ds.Add(p, "worksFor", orgs[i%2])
		ds.Add(p, "knows", people[(i+1)%len(people)])
	}
	for i, o := range orgs {
		ds.Add(o, "type", "Org")
		ds.Add(o, "inCity", fmt.Sprintf("city%d", i))
	}
	return ds
}

func TestReferenceSimpleJoin(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT ?p ?o WHERE { ?p <worksFor> ?o . ?o <inCity> <city0> . }`)
	res, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	// acme is in city0; alice, carol, erin work for acme.
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if ds.Dict.Term(row[1]) != "acme" {
			t.Errorf("unexpected org %s", ds.Dict.Term(row[1]))
		}
	}
}

func TestReferenceConstantMiss(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT ?p WHERE { ?p <worksFor> <unknownOrg> . }`)
	res, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("unknown constant matched %d rows", len(res.Rows))
	}
}

func TestReferenceRepeatedVariable(t *testing.T) {
	ds := rdf.NewDataset()
	ds.Add("a", "p", "a") // self loop
	ds.Add("a", "p", "b")
	q := sparql.MustParse(`SELECT ?x WHERE { ?x <p> ?x . }`)
	res, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("repeated variable matched %d rows, want 1", len(res.Rows))
	}
	if ds.Dict.Term(res.Rows[0][0]) != "a" {
		t.Errorf("bound %s", ds.Dict.Term(res.Rows[0][0]))
	}
}

func TestReferenceProjectionError(t *testing.T) {
	ds := socialDataset()
	q := &sparql.Query{
		Select:   []string{"nope"},
		Patterns: sparql.MustParse(`SELECT * WHERE { ?p <type> <Person> . }`).Patterns,
	}
	if _, err := Reference(ds, q); err == nil {
		t.Error("unbound projection accepted")
	}
}

// equalResults compares two results row for row.
func equalResults(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if len(got.Vars) != len(want.Vars) {
		t.Fatalf("%s: vars %v vs %v", label, got.Vars, want.Vars)
	}
	for i := range got.Vars {
		if got.Vars[i] != want.Vars[i] {
			t.Fatalf("%s: vars %v vs %v", label, got.Vars, want.Vars)
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		for j := range got.Rows[i] {
			if got.Rows[i][j] != want.Rows[i][j] {
				t.Fatalf("%s: row %d differs: %v vs %v", label, i, got.Rows[i], want.Rows[i])
			}
		}
	}
}

// optimizeFor builds a plan for q over ds with real collected stats.
func optimizeFor(t *testing.T, ds *rdf.Dataset, q *sparql.Query, m partition.Method, algo opt.Algorithm) *opt.Result {
	t.Helper()
	views, err := querygraph.Build(q)
	if err != nil {
		t.Fatal(err)
	}
	st, err := stats.Collect(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	est, err := stats.NewEstimator(q, st)
	if err != nil {
		t.Fatal(err)
	}
	in := &opt.Input{Query: q, Views: views, Est: est, Params: cost.Default, Method: m}
	res, err := opt.Optimize(context.Background(), in, algo)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

var testQueries = []string{
	`SELECT * WHERE { ?p <worksFor> ?o . ?o <inCity> ?c . }`,
	`SELECT * WHERE { ?p <type> <Person> . ?p <worksFor> ?o . ?o <inCity> ?c . }`,
	`SELECT * WHERE { ?a <knows> ?b . ?b <knows> ?c . ?c <knows> ?d . }`,
	`SELECT * WHERE { ?a <knows> ?b . ?a <worksFor> ?o . ?b <worksFor> ?o . }`,
	`SELECT ?p WHERE { ?p <type> <Person> . ?p <worksFor> <acme> . }`,
	`SELECT * WHERE { ?a <worksFor> ?o . ?b <worksFor> ?o . ?a <knows> ?b . ?o <inCity> ?c . }`,
}

func TestDistributedMatchesReference(t *testing.T) {
	ds := socialDataset()
	methods := []partition.Method{
		partition.HashSO{}, partition.TwoHopForward{}, partition.TwoHopBidirectional{},
		partition.PathBMC{}, partition.UndirectedOneHop{},
	}
	algos := []opt.Algorithm{opt.TDCMD, opt.TDCMDP, opt.HGRTDCMD, opt.TDAuto}
	for _, src := range testQueries {
		q := sparql.MustParse(src)
		want, err := Reference(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range methods {
			placement, err := m.Partition(ds, 4)
			if err != nil {
				t.Fatal(err)
			}
			e := New(ds.Dict, placement)
			for _, algo := range algos {
				label := fmt.Sprintf("%s/%s/%s", src[:20], m.Name(), algo)
				res := optimizeFor(t, ds, q, m, algo)
				got, err := e.Execute(context.Background(), res.Plan, q)
				if err != nil {
					t.Fatalf("%s: %v\n%s", label, err, res.Plan.Format())
				}
				equalResults(t, got, want, label)
			}
		}
	}
}

func TestLocalPlansMoveNoRows(t *testing.T) {
	// A star query under hash partitioning is local: executing the
	// local plan must transfer zero rows.
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?p <type> <Person> . ?p <worksFor> ?o . ?p <knows> ?b . }`)
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	res := optimizeFor(t, ds, q, m, opt.TDCMDP)
	got, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.TransferredRows != 0 {
		t.Errorf("local plan transferred %d rows\n%s", got.Metrics.TransferredRows, res.Plan.Format())
	}
	want, err := Reference(ds, q)
	if err != nil {
		t.Fatal(err)
	}
	equalResults(t, got, want, "local star")
}

func TestDistributedJoinMovesRows(t *testing.T) {
	// A chain query is not local under hash partitioning; distributed
	// joins must report transferred rows.
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?a <knows> ?b . ?b <knows> ?c . ?c <knows> ?d . }`)
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	res := optimizeFor(t, ds, q, m, opt.TDCMD)
	got, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.TransferredRows == 0 {
		t.Errorf("distributed plan reported zero transfer\n%s", res.Plan.Format())
	}
}

func TestExecuteCancelled(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(testQueries[0])
	m := partition.HashSO{}
	placement, _ := m.Partition(ds, 2)
	e := New(ds.Dict, placement)
	res := optimizeFor(t, ds, q, m, opt.TDCMD)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Execute(ctx, res.Plan, q); err == nil {
		t.Error("cancelled context accepted")
	}
}

func TestScannedTriplesCounted(t *testing.T) {
	ds := socialDataset()
	q := sparql.MustParse(`SELECT * WHERE { ?p <worksFor> ?o . ?o <inCity> ?c . }`)
	m := partition.HashSO{}
	placement, _ := m.Partition(ds, 3)
	e := New(ds.Dict, placement)
	res := optimizeFor(t, ds, q, m, opt.TDCMD)
	got, err := e.Execute(context.Background(), res.Plan, q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.ScannedTriples == 0 {
		t.Error("no scanned triples recorded")
	}
}

// TestQuickRandomGraphsAllPartitionings is the heavyweight integration
// property: on random graphs and random (connected, constant-bearing)
// queries, every optimizer × partitioning combination must reproduce
// the reference answer.
func TestQuickRandomGraphsAllPartitionings(t *testing.T) {
	r := rand.New(rand.NewSource(271))
	methods := []partition.Method{
		partition.HashSO{}, partition.TwoHopForward{}, partition.PathBMC{}, partition.UndirectedOneHop{},
	}
	for trial := 0; trial < 12; trial++ {
		ds := randomGraph(r, 30+r.Intn(40), 4)
		q := randomDataQuery(r, ds, 2+r.Intn(3))
		want, err := Reference(ds, q)
		if err != nil {
			t.Fatal(err)
		}
		m := methods[trial%len(methods)]
		placement, err := m.Partition(ds, 1+r.Intn(5))
		if err != nil {
			t.Fatal(err)
		}
		e := New(ds.Dict, placement)
		algo := []opt.Algorithm{opt.TDCMD, opt.TDCMDP, opt.HGRTDCMD, opt.TDAuto}[trial%4]
		res := optimizeFor(t, ds, q, m, algo)
		got, err := e.Execute(context.Background(), res.Plan, q)
		if err != nil {
			t.Fatalf("trial %d (%s, %v): %v\nquery: %s\n%s", trial, m.Name(), algo, err, q, res.Plan.Format())
		}
		equalResults(t, got, want, fmt.Sprintf("trial %d (%s, %v, %s)", trial, m.Name(), algo, q))
	}
}

// randomGraph builds a random directed graph with p predicate labels.
func randomGraph(r *rand.Rand, nodes, preds int) *rdf.Dataset {
	ds := rdf.NewDataset()
	for i := 0; i < nodes*2; i++ {
		s := fmt.Sprintf("n%d", r.Intn(nodes))
		o := fmt.Sprintf("n%d", r.Intn(nodes))
		p := fmt.Sprintf("p%d", r.Intn(preds))
		ds.Add(s, p, o)
	}
	ds.Dedup()
	return ds
}

// randomDataQuery grows a connected query whose predicates come from
// the dataset, guaranteeing a chance of matches.
func randomDataQuery(r *rand.Rand, ds *rdf.Dataset, n int) *sparql.Query {
	q := &sparql.Query{}
	for i := 0; i < n; i++ {
		var s, o string
		if i == 0 {
			s, o = "v0", "v1"
		} else {
			prev := q.Patterns[r.Intn(i)]
			anchor := prev.S.Value
			if r.Intn(2) == 0 {
				anchor = prev.O.Value
			}
			other := fmt.Sprintf("v%d", r.Intn(n+2))
			if r.Intn(2) == 0 {
				s, o = anchor, other
			} else {
				s, o = other, anchor
			}
		}
		pred := ds.Dict.Term(ds.Triples[r.Intn(ds.Len())].P)
		q.Patterns = append(q.Patterns, sparql.TriplePattern{
			S: sparql.V(s), P: sparql.I(pred), O: sparql.V(o),
		})
	}
	return q
}
