package engine

import (
	"fmt"
	"strings"
	"time"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

// TraceNode is one operator's execution profile — the engine's
// EXPLAIN ANALYZE. It mirrors the plan tree.
type TraceNode struct {
	// Alg, Set and JoinVar identify the plan operator.
	Alg     plan.Algorithm
	Set     bitset.TPSet
	TP      int
	JoinVar string
	// OutputRows is the total rows the operator produced across nodes.
	OutputRows int64
	// MaxNodeRows is the largest per-node output (load skew).
	MaxNodeRows int64
	// TransferredRows is this operator's own network contribution.
	TransferredRows int64
	// TransferredBytes is the wire volume of TransferredRows.
	TransferredBytes int64
	// Elapsed is the operator's own wall time, excluding children.
	// Sibling operators may be evaluated concurrently (the engine's
	// intra-query parallelism), so sibling Elapsed values can overlap
	// in wall time; their sum can exceed the query's wall time.
	Elapsed time.Duration
	// EstimatedCard is the optimizer's cardinality estimate, kept for
	// estimate-vs-actual comparison.
	EstimatedCard float64
	// Factorized marks an operator that produced its result as an
	// answer graph instead of flat rows. OutputRows then counts the
	// logical (flattened) size, computed without materializing it.
	Factorized bool
	// Aligned marks a scan that emitted each row directly on its
	// repartition destination (the triple group was migrated by the
	// adaptive advisor), so the parent's scatter for this child was
	// skipped entirely.
	Aligned bool
	// ScatterRows/ScatterBytes attribute a parent repartition join's
	// shuffle to the child that fed it — the rows of THIS operator's
	// output that landed on a different node (0 for an aligned child).
	// Set on the children of a repartition join only; the parent's
	// TransferredRows/Bytes remain the sum over its children.
	ScatterRows  int64
	ScatterBytes int64
	// FlattenedRows is the number of candidate rows the projection
	// actually enumerated from the answer graph (factorized root only).
	FlattenedRows int64
	// DeferredFanout = OutputRows − FlattenedRows: the flat rows
	// factorization never materialized.
	DeferredFanout int64
	// Children mirror the plan's inputs, always in plan child order —
	// parallel child evaluation attaches traces by index, never in
	// completion order.
	Children []*TraceNode
}

// newTrace initializes a trace node from its plan operator.
func newTrace(p *plan.Node) *TraceNode {
	return &TraceNode{Alg: p.Alg, Set: p.Set, TP: p.TP, JoinVar: p.JoinVar, EstimatedCard: p.Card}
}

// record fills the output statistics from the per-node relations.
func (tr *TraceNode) record(out []*Relation) {
	for _, r := range out {
		n := int64(len(r.Rows))
		tr.OutputRows += n
		if n > tr.MaxNodeRows {
			tr.MaxNodeRows = n
		}
	}
}

// Format renders the trace as an indented tree with actual-vs-
// estimated rows, per-operator time and network traffic.
func (tr *TraceNode) Format() string {
	var b strings.Builder
	var walk func(t *TraceNode, indent string)
	walk = func(t *TraceNode, indent string) {
		switch t.Alg {
		case plan.Scan:
			aligned := ""
			if t.Aligned {
				aligned = " aligned"
			}
			fmt.Fprintf(&b, "%sscan tp%d: rows=%d (est %.4g) max/node=%d time=%v%s\n",
				indent, t.TP+1, t.OutputRows, t.EstimatedCard, t.MaxNodeRows, t.Elapsed.Round(time.Microsecond), aligned)
		default:
			mark := ""
			if t.Factorized {
				mark = fmt.Sprintf(" factorized(deferred=%d)", t.DeferredFanout)
			}
			fmt.Fprintf(&b, "%s%s on ?%s: rows=%d (est %.4g) max/node=%d moved=%d (%dB) time=%v%s\n",
				indent, t.Alg, t.JoinVar, t.OutputRows, t.EstimatedCard, t.MaxNodeRows,
				t.TransferredRows, t.TransferredBytes, t.Elapsed.Round(time.Microsecond), mark)
		}
		for _, ch := range t.Children {
			walk(ch, indent+"  ")
		}
	}
	walk(tr, "")
	return b.String()
}

// TotalTransferred sums the network traffic over the whole trace.
func (tr *TraceNode) TotalTransferred() int64 {
	total := tr.TransferredRows
	for _, ch := range tr.Children {
		total += ch.TotalTransferred()
	}
	return total
}

// Operators counts the operators in the trace.
func (tr *TraceNode) Operators() int {
	n := 1
	for _, ch := range tr.Children {
		n += ch.Operators()
	}
	return n
}

// ShuffleGroup is one alignable (predicate, position) triple group a
// completed run repartitioned on: a Scan child of a repartition join
// whose pattern has a constant predicate with the join variable at the
// subject or object. Rows/Bytes are the OBSERVED shuffle volume that
// child paid (zero for an already-aligned child) — the adaptive
// advisor's mining unit.
type ShuffleGroup struct {
	Pred    rdf.TermID
	Pos     partition.Pos
	TP      int
	Rows    int64
	Bytes   int64
	Aligned bool
}

// ShuffleGroups mines a completed run's trace for the alignable scan
// children of its repartition joins. The predicate resolution uses the
// engine's dictionary, so the returned group keys are directly
// comparable with partition.GroupKey. A run with no trace (or no
// repartition joins) yields nil.
func (e *Engine) ShuffleGroups(res *Result, q *sparql.Query) []ShuffleGroup {
	if res == nil || res.Trace == nil {
		return nil
	}
	var out []ShuffleGroup
	var walk func(t *TraceNode)
	walk = func(t *TraceNode) {
		if t.Alg == plan.RepartitionJoin {
			for _, ch := range t.Children {
				if ch.Alg != plan.Scan {
					continue
				}
				tp := q.Patterns[ch.TP]
				if tp.P.IsVar() {
					continue
				}
				pred, ok := e.dict.Lookup(tp.P.Value)
				if !ok {
					continue
				}
				var pos partition.Pos
				switch {
				case tp.S.IsVar() && tp.S.Value == t.JoinVar:
					pos = partition.PosS
				case tp.O.IsVar() && tp.O.Value == t.JoinVar:
					pos = partition.PosO
				default:
					continue
				}
				out = append(out, ShuffleGroup{
					Pred: pred, Pos: pos, TP: ch.TP,
					Rows: ch.ScatterRows, Bytes: ch.ScatterBytes,
					Aligned: ch.Aligned,
				})
			}
		}
		for _, ch := range t.Children {
			walk(ch)
		}
	}
	walk(res.Trace)
	return out
}

// AttachSpans mirrors the execution profile under parent as lifecycle
// spans — one "op:<name>" span per operator, in plan child order,
// annotated with estimated vs. actual cardinality and shuffle volume.
// A nil parent (tracing disabled) attaches nothing.
func (tr *TraceNode) AttachSpans(parent *obs.Span) {
	if parent == nil || tr == nil {
		return
	}
	s := &obs.Span{Name: "op:" + opName(tr.Alg), Dur: tr.Elapsed}
	if tr.Alg == plan.Scan {
		s.SetAttrInt("tp", int64(tr.TP+1))
	} else {
		s.SetAttr("join_var", tr.JoinVar)
	}
	s.SetAttrFloat("est_rows", tr.EstimatedCard)
	s.SetAttrInt("rows", tr.OutputRows)
	s.SetAttrInt("max_node_rows", tr.MaxNodeRows)
	if tr.Alg == plan.BroadcastJoin || tr.Alg == plan.RepartitionJoin {
		s.SetAttrInt("shuffled_rows", tr.TransferredRows)
		s.SetAttrInt("shuffled_bytes", tr.TransferredBytes)
	}
	if tr.Aligned {
		s.SetAttr("aligned", "true")
	}
	if tr.Factorized {
		s.SetAttr("factorized", "true")
		s.SetAttrInt("flattened_rows", tr.FlattenedRows)
		s.SetAttrInt("deferred_fanout", tr.DeferredFanout)
	}
	parent.Attach(s)
	for _, ch := range tr.Children {
		ch.AttachSpans(s)
	}
}
