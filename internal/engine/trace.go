package engine

import (
	"fmt"
	"strings"
	"time"

	"sparqlopt/internal/bitset"
	"sparqlopt/internal/obs"
	"sparqlopt/internal/plan"
)

// TraceNode is one operator's execution profile — the engine's
// EXPLAIN ANALYZE. It mirrors the plan tree.
type TraceNode struct {
	// Alg, Set and JoinVar identify the plan operator.
	Alg     plan.Algorithm
	Set     bitset.TPSet
	TP      int
	JoinVar string
	// OutputRows is the total rows the operator produced across nodes.
	OutputRows int64
	// MaxNodeRows is the largest per-node output (load skew).
	MaxNodeRows int64
	// TransferredRows is this operator's own network contribution.
	TransferredRows int64
	// TransferredBytes is the wire volume of TransferredRows.
	TransferredBytes int64
	// Elapsed is the operator's own wall time, excluding children.
	// Sibling operators may be evaluated concurrently (the engine's
	// intra-query parallelism), so sibling Elapsed values can overlap
	// in wall time; their sum can exceed the query's wall time.
	Elapsed time.Duration
	// EstimatedCard is the optimizer's cardinality estimate, kept for
	// estimate-vs-actual comparison.
	EstimatedCard float64
	// Factorized marks an operator that produced its result as an
	// answer graph instead of flat rows. OutputRows then counts the
	// logical (flattened) size, computed without materializing it.
	Factorized bool
	// FlattenedRows is the number of candidate rows the projection
	// actually enumerated from the answer graph (factorized root only).
	FlattenedRows int64
	// DeferredFanout = OutputRows − FlattenedRows: the flat rows
	// factorization never materialized.
	DeferredFanout int64
	// Children mirror the plan's inputs, always in plan child order —
	// parallel child evaluation attaches traces by index, never in
	// completion order.
	Children []*TraceNode
}

// newTrace initializes a trace node from its plan operator.
func newTrace(p *plan.Node) *TraceNode {
	return &TraceNode{Alg: p.Alg, Set: p.Set, TP: p.TP, JoinVar: p.JoinVar, EstimatedCard: p.Card}
}

// record fills the output statistics from the per-node relations.
func (tr *TraceNode) record(out []*Relation) {
	for _, r := range out {
		n := int64(len(r.Rows))
		tr.OutputRows += n
		if n > tr.MaxNodeRows {
			tr.MaxNodeRows = n
		}
	}
}

// Format renders the trace as an indented tree with actual-vs-
// estimated rows, per-operator time and network traffic.
func (tr *TraceNode) Format() string {
	var b strings.Builder
	var walk func(t *TraceNode, indent string)
	walk = func(t *TraceNode, indent string) {
		switch t.Alg {
		case plan.Scan:
			fmt.Fprintf(&b, "%sscan tp%d: rows=%d (est %.4g) max/node=%d time=%v\n",
				indent, t.TP+1, t.OutputRows, t.EstimatedCard, t.MaxNodeRows, t.Elapsed.Round(time.Microsecond))
		default:
			mark := ""
			if t.Factorized {
				mark = fmt.Sprintf(" factorized(deferred=%d)", t.DeferredFanout)
			}
			fmt.Fprintf(&b, "%s%s on ?%s: rows=%d (est %.4g) max/node=%d moved=%d (%dB) time=%v%s\n",
				indent, t.Alg, t.JoinVar, t.OutputRows, t.EstimatedCard, t.MaxNodeRows,
				t.TransferredRows, t.TransferredBytes, t.Elapsed.Round(time.Microsecond), mark)
		}
		for _, ch := range t.Children {
			walk(ch, indent+"  ")
		}
	}
	walk(tr, "")
	return b.String()
}

// TotalTransferred sums the network traffic over the whole trace.
func (tr *TraceNode) TotalTransferred() int64 {
	total := tr.TransferredRows
	for _, ch := range tr.Children {
		total += ch.TotalTransferred()
	}
	return total
}

// Operators counts the operators in the trace.
func (tr *TraceNode) Operators() int {
	n := 1
	for _, ch := range tr.Children {
		n += ch.Operators()
	}
	return n
}

// AttachSpans mirrors the execution profile under parent as lifecycle
// spans — one "op:<name>" span per operator, in plan child order,
// annotated with estimated vs. actual cardinality and shuffle volume.
// A nil parent (tracing disabled) attaches nothing.
func (tr *TraceNode) AttachSpans(parent *obs.Span) {
	if parent == nil || tr == nil {
		return
	}
	s := &obs.Span{Name: "op:" + opName(tr.Alg), Dur: tr.Elapsed}
	if tr.Alg == plan.Scan {
		s.SetAttrInt("tp", int64(tr.TP+1))
	} else {
		s.SetAttr("join_var", tr.JoinVar)
	}
	s.SetAttrFloat("est_rows", tr.EstimatedCard)
	s.SetAttrInt("rows", tr.OutputRows)
	s.SetAttrInt("max_node_rows", tr.MaxNodeRows)
	if tr.Alg == plan.BroadcastJoin || tr.Alg == plan.RepartitionJoin {
		s.SetAttrInt("shuffled_rows", tr.TransferredRows)
		s.SetAttrInt("shuffled_bytes", tr.TransferredBytes)
	}
	if tr.Factorized {
		s.SetAttr("factorized", "true")
		s.SetAttrInt("flattened_rows", tr.FlattenedRows)
		s.SetAttrInt("deferred_fanout", tr.DeferredFanout)
	}
	parent.Attach(s)
	for _, ch := range tr.Children {
		ch.AttachSpans(s)
	}
}
