// Package engine executes physical plans on a simulated shared-nothing
// cluster: every computing node holds the fragment a partitioning
// method assigned to it, leaf scans and local joins run per node
// without communication, and the two distributed join algorithms of
// paper §II-D — k-way broadcast join and k-way repartition join — move
// intermediate results between nodes (their volume is reported in the
// execution metrics).
//
// Query results follow set semantics: the engine deduplicates rows at
// the root, which also absorbs the replication that partitioning
// methods such as Hash-SO and 2f introduce. A single-node reference
// executor provides the ground truth for integration tests.
//
// The data plane is columnar-adjacent: a relation's rows live in one
// flat TermID arena (row i is a slice of it), and all hashing —
// joins, dedup, projection — runs on 64-bit integer hashes with
// collision verification, never on materialized string keys.
package engine

import (
	"context"
	"sort"

	"sparqlopt/internal/obs"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/resilience"
)

// Relation is a set of variable bindings: Rows[i][j] binds Vars[j].
// Rows produced by this package are backed by the shared arena; the
// exported [][]TermID shape is kept so stores, traces and tests can
// keep treating rows as independent slices.
type Relation struct {
	Vars []string
	Rows [][]rdf.TermID

	// arena is the flat backing storage rows are appended into. When
	// it outgrows its capacity, append moves it to a new array; rows
	// already handed out keep pointing into the old one, which is
	// correct (just retained until the relation dies).
	arena []rdf.TermID

	// charged is how many bytes of this relation chargeTo has already
	// reserved against a memory gauge, so repeated charges (before and
	// after an append loop grows the arena) only pay the delta.
	charged int64
}

// chargeTo reserves this relation's storage footprint — the arena
// capacity, or the row payload for relations assembled from shared
// row slices — against the query's memory gauge, attributed to site.
// Calling it again after growth charges only the increase. A nil
// gauge is free. Each relation is owned by one goroutine while it is
// being built and charged, so charged needs no synchronization.
func (r *Relation) chargeTo(g *resilience.Gauge, site string) error {
	if g == nil || r == nil {
		return nil
	}
	n := int64(cap(r.arena))
	if n == 0 {
		n = int64(len(r.Rows) * len(r.Vars))
	}
	delta := n*termIDBytes - r.charged
	if delta <= 0 {
		return nil
	}
	if err := g.Reserve(site, delta); err != nil {
		return err
	}
	r.charged += delta
	return nil
}

// newRelation returns an empty relation with arena capacity for
// rowHint rows of len(vars) columns.
func newRelation(vars []string, rowHint int) *Relation {
	r := &Relation{Vars: vars}
	if hint := rowHint * len(vars); hint > 0 {
		r.arena = make([]rdf.TermID, 0, hint)
		r.Rows = make([][]rdf.TermID, 0, rowHint)
	}
	return r
}

// row returns the arena segment appended since mark as a full-capacity
// slice, so a later arena append can never write through it.
func (r *Relation) row(mark int) []rdf.TermID {
	return r.arena[mark:len(r.arena):len(r.arena)]
}

// grow ensures the arena has room for extra more TermIDs and the Rows
// slice for one more row, doubling capacities when they run out. Go's
// append grows large slices by only ~1.25x, which makes an unhinted
// append loop pay O(log₁.₂₅ n) reallocations-plus-copies; explicit
// doubling guarantees the textbook O(log₂ n) — see
// TestRelationGrowthGeometric. Rows already handed out keep pointing
// into the old arena, which stays correct (full-capacity subslices) at
// the price of retaining it until the relation dies.
func (r *Relation) grow(extra int) {
	if need := len(r.arena) + extra; need > cap(r.arena) {
		newCap := 2 * cap(r.arena)
		if newCap < need {
			newCap = need
		}
		if newCap < 64 {
			newCap = 64
		}
		arena := make([]rdf.TermID, len(r.arena), newCap)
		copy(arena, r.arena)
		r.arena = arena
	}
	if len(r.Rows) == cap(r.Rows) {
		newCap := 2 * cap(r.Rows)
		if newCap < 16 {
			newCap = 16
		}
		rows := make([][]rdf.TermID, len(r.Rows), newCap)
		copy(rows, r.Rows)
		r.Rows = rows
	}
}

// appendCopy appends a copy of row into the arena.
func (r *Relation) appendCopy(row []rdf.TermID) {
	r.grow(len(row))
	mark := len(r.arena)
	r.arena = append(r.arena, row...)
	r.Rows = append(r.Rows, r.row(mark))
}

// appendMerged appends arow ++ brow[bExtra] without a per-row alloc.
func (r *Relation) appendMerged(arow, brow []rdf.TermID, bExtra []int) {
	r.grow(len(arow) + len(bExtra))
	mark := len(r.arena)
	r.arena = append(r.arena, arow...)
	for _, j := range bExtra {
		r.arena = append(r.arena, brow[j])
	}
	r.Rows = append(r.Rows, r.row(mark))
}

// appendProjected appends row restricted to cols.
func (r *Relation) appendProjected(row []rdf.TermID, cols []int) {
	r.grow(len(cols))
	mark := len(r.arena)
	for _, c := range cols {
		r.arena = append(r.arena, row[c])
	}
	r.Rows = append(r.Rows, r.row(mark))
}

// colIndex returns the column of v, or -1.
func (r *Relation) colIndex(v string) int {
	for i, name := range r.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// sharedVars returns the variables present in both relations, in a's
// column order.
func sharedVars(a, b *Relation) []string {
	var out []string
	for _, v := range a.Vars {
		if b.colIndex(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// hashCols folds the values of the given columns into a 64-bit hash
// (FNV-1a over the raw TermIDs with an avalanche finalizer). Equal
// column tuples hash equally; collisions are possible and every use
// below verifies candidates value-by-value.
func hashCols(row []rdf.TermID, cols []int) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range cols {
		h ^= uint64(row[c])
		h *= 1099511628211
	}
	// splitmix64 finalizer: FNV alone leaves consecutive TermIDs in
	// nearby buckets, which degenerates open addressing downstream.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hashRow hashes every column of row.
func hashRow(row []rdf.TermID) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range row {
		h ^= uint64(v)
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// equalOn reports whether a's acols equal b's bcols value for value.
func equalOn(a []rdf.TermID, acols []int, b []rdf.TermID, bcols []int) bool {
	for i, c := range acols {
		if a[c] != b[bcols[i]] {
			return false
		}
	}
	return true
}

// equalRows reports whether two full rows are identical.
func equalRows(a, b []rdf.TermID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cancelEvery is how many hash-table operations a join or dedup loop
// performs between context polls — the execution-side mirror of the
// enumerator's per-worker cancellation counters.
const cancelEvery = 4096

// rowTable is an integer-hash multimap from column tuples to row
// indices: buckets of candidate rows per 64-bit hash, verified
// value-by-value on probe. It replaces the string-keyed maps the
// engine used to build per join.
type rowTable struct {
	buckets map[uint64][]int32
	rows    [][]rdf.TermID
	cols    []int
}

// newRowTable indexes rows on cols.
func newRowTable(rows [][]rdf.TermID, cols []int) *rowTable {
	t := &rowTable{
		buckets: make(map[uint64][]int32, len(rows)),
		rows:    rows,
		cols:    cols,
	}
	for i, row := range rows {
		h := hashCols(row, cols)
		t.buckets[h] = append(t.buckets[h], int32(i))
	}
	return t
}

// hashJoin joins two relations on all their shared variables (natural
// join). With no shared variables it degrades to the cross product.
// The probe loop polls ctx so runaway joins stay cancellable.
func hashJoin(ctx context.Context, a, b *Relation) (*Relation, error) {
	shared := sharedVars(a, b)
	aCols := make([]int, len(shared))
	bCols := make([]int, len(shared))
	for i, v := range shared {
		aCols[i] = a.colIndex(v)
		bCols[i] = b.colIndex(v)
	}
	// Output schema: a's vars then b's non-shared vars.
	outVars := append([]string{}, a.Vars...)
	var bExtra []int
	for j, v := range b.Vars {
		if a.colIndex(v) < 0 {
			outVars = append(outVars, v)
			bExtra = append(bExtra, j)
		}
	}
	small := len(a.Rows)
	if len(b.Rows) < small {
		small = len(b.Rows)
	}
	out := newRelation(outVars, small)
	// Build on the smaller side; ops counts probe steps and emitted
	// rows so even a degenerate cross product polls ctx regularly.
	ops := 0
	if len(a.Rows) > len(b.Rows) {
		index := newRowTable(b.Rows, bCols)
		for _, arow := range a.Rows {
			for _, bi := range index.buckets[hashCols(arow, aCols)] {
				if ops++; ops&(cancelEvery-1) == 0 {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
				}
				brow := b.Rows[bi]
				if !equalOn(arow, aCols, brow, bCols) {
					continue
				}
				out.appendMerged(arow, brow, bExtra)
			}
			if ops++; ops&(cancelEvery-1) == 0 {
				if err := obs.Canceled(ctx, "join"); err != nil {
					return nil, err
				}
			}
		}
		return out, nil
	}
	index := newRowTable(a.Rows, aCols)
	for _, brow := range b.Rows {
		for _, ai := range index.buckets[hashCols(brow, bCols)] {
			if ops++; ops&(cancelEvery-1) == 0 {
				if err := obs.Canceled(ctx, "join"); err != nil {
					return nil, err
				}
			}
			arow := a.Rows[ai]
			if !equalOn(brow, bCols, arow, aCols) {
				continue
			}
			out.appendMerged(arow, brow, bExtra)
		}
		if ops++; ops&(cancelEvery-1) == 0 {
			if err := obs.Canceled(ctx, "join"); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// joinAll folds a multiway natural join, greedily preferring inputs
// that share a variable with the accumulated result so intermediate
// cross products are avoided whenever the join graph allows. Every
// intermediate it materializes is charged to g under site before the
// next fold, so a join blowing up mid-chain trips the budget instead
// of exhausting the process; input relations are never charged here
// (their producers already did, or they are shared across nodes).
func joinAll(ctx context.Context, g *resilience.Gauge, site string, rels []*Relation) (*Relation, error) {
	cur := rels[0]
	used := make([]bool, len(rels))
	used[0] = true
	for count := 1; count < len(rels); count++ {
		pick := -1
		for i, r := range rels {
			if !used[i] && len(sharedVars(cur, r)) > 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i := range rels {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		var err error
		cur, err = hashJoin(ctx, cur, rels[pick])
		if err != nil {
			return nil, err
		}
		if err := cur.chargeTo(g, site); err != nil {
			return nil, err
		}
		used[pick] = true
	}
	return cur, nil
}

// dedup removes duplicate rows in place (order is canonicalized).
func (r *Relation) dedup() {
	seen := make(map[uint64][]int32, len(r.Rows))
	out := r.Rows[:0]
	for _, row := range r.Rows {
		h := hashRow(row)
		dup := false
		for _, i := range seen[h] {
			if equalRows(out[i], row) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], int32(len(out)))
		out = append(out, row)
	}
	r.Rows = out
	r.sortRows()
}

// sortRows orders rows lexicographically for deterministic output.
func (r *Relation) sortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// project returns the relation restricted to the named variables,
// deduplicated. Unknown variables are rejected by the caller. The
// duplicate check hashes the source row through the column map, so no
// row is materialized unless it survives.
func (r *Relation) project(vars []string) *Relation {
	cols := make([]int, len(vars))
	for i, v := range vars {
		cols[i] = r.colIndex(v)
	}
	out := newRelation(append([]string{}, vars...), len(r.Rows))
	seen := make(map[uint64][]int32, len(r.Rows))
	idCols := seqCols(len(cols))
	for _, row := range r.Rows {
		h := hashCols(row, cols)
		dup := false
		for _, i := range seen[h] {
			if equalOn(row, cols, out.Rows[i], idCols) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], int32(len(out.Rows)))
		out.appendProjected(row, cols)
	}
	out.sortRows()
	return out
}

// seqCols returns [0, 1, ..., n-1] from a small static pool, so the
// identity column map costs nothing in hot loops.
func seqCols(n int) []int {
	if n <= len(identityCols) {
		return identityCols[:n]
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

var identityCols = [...]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15,
	16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31}
