// Package engine executes physical plans on a simulated shared-nothing
// cluster: every computing node holds the fragment a partitioning
// method assigned to it, leaf scans and local joins run per node
// without communication, and the two distributed join algorithms of
// paper §II-D — k-way broadcast join and k-way repartition join — move
// intermediate results between nodes (their volume is reported in the
// execution metrics).
//
// Query results follow set semantics: the engine deduplicates rows at
// the root, which also absorbs the replication that partitioning
// methods such as Hash-SO and 2f introduce. A single-node reference
// executor provides the ground truth for integration tests.
package engine

import (
	"encoding/binary"
	"sort"

	"sparqlopt/internal/rdf"
)

// Relation is a set of variable bindings: Rows[i][j] binds Vars[j].
type Relation struct {
	Vars []string
	Rows [][]rdf.TermID
}

// colIndex returns the column of v, or -1.
func (r *Relation) colIndex(v string) int {
	for i, name := range r.Vars {
		if name == v {
			return i
		}
	}
	return -1
}

// sharedVars returns the variables present in both relations, in a's
// column order.
func sharedVars(a, b *Relation) []string {
	var out []string
	for _, v := range a.Vars {
		if b.colIndex(v) >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// rowKey encodes the values of the given columns for hashing.
func rowKey(row []rdf.TermID, cols []int) string {
	buf := make([]byte, 4*len(cols))
	for i, c := range cols {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(row[c]))
	}
	return string(buf)
}

// hashJoin joins two relations on all their shared variables (natural
// join). With no shared variables it degrades to the cross product.
func hashJoin(a, b *Relation) *Relation {
	shared := sharedVars(a, b)
	aCols := make([]int, len(shared))
	bCols := make([]int, len(shared))
	for i, v := range shared {
		aCols[i] = a.colIndex(v)
		bCols[i] = b.colIndex(v)
	}
	// Output schema: a's vars then b's non-shared vars.
	var bExtra []int
	out := &Relation{Vars: append([]string{}, a.Vars...)}
	for j, v := range b.Vars {
		if a.colIndex(v) < 0 {
			out.Vars = append(out.Vars, v)
			bExtra = append(bExtra, j)
		}
	}
	// Build on the smaller side.
	if len(a.Rows) > len(b.Rows) {
		index := make(map[string][][]rdf.TermID, len(b.Rows))
		for _, row := range b.Rows {
			k := rowKey(row, bCols)
			index[k] = append(index[k], row)
		}
		for _, arow := range a.Rows {
			for _, brow := range index[rowKey(arow, aCols)] {
				out.Rows = append(out.Rows, mergeRows(arow, brow, bExtra))
			}
		}
		return out
	}
	index := make(map[string][][]rdf.TermID, len(a.Rows))
	for _, row := range a.Rows {
		k := rowKey(row, aCols)
		index[k] = append(index[k], row)
	}
	for _, brow := range b.Rows {
		for _, arow := range index[rowKey(brow, bCols)] {
			out.Rows = append(out.Rows, mergeRows(arow, brow, bExtra))
		}
	}
	return out
}

func mergeRows(arow, brow []rdf.TermID, bExtra []int) []rdf.TermID {
	row := make([]rdf.TermID, 0, len(arow)+len(bExtra))
	row = append(row, arow...)
	for _, j := range bExtra {
		row = append(row, brow[j])
	}
	return row
}

// joinAll folds a multiway natural join, greedily preferring inputs
// that share a variable with the accumulated result so intermediate
// cross products are avoided whenever the join graph allows.
func joinAll(rels []*Relation) *Relation {
	cur := rels[0]
	used := make([]bool, len(rels))
	used[0] = true
	for count := 1; count < len(rels); count++ {
		pick := -1
		for i, r := range rels {
			if !used[i] && len(sharedVars(cur, r)) > 0 {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i := range rels {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		cur = hashJoin(cur, rels[pick])
		used[pick] = true
	}
	return cur
}

// dedup removes duplicate rows in place (order is canonicalized).
func (r *Relation) dedup() {
	all := make([]int, len(r.Vars))
	for i := range all {
		all[i] = i
	}
	seen := make(map[string]struct{}, len(r.Rows))
	out := r.Rows[:0]
	for _, row := range r.Rows {
		k := rowKey(row, all)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, row)
	}
	r.Rows = out
	r.sortRows()
}

// sortRows orders rows lexicographically for deterministic output.
func (r *Relation) sortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i], r.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// project returns the relation restricted to the named variables,
// deduplicated. Unknown variables are rejected by the caller.
func (r *Relation) project(vars []string) *Relation {
	cols := make([]int, len(vars))
	for i, v := range vars {
		cols[i] = r.colIndex(v)
	}
	out := &Relation{Vars: append([]string{}, vars...)}
	seen := map[string]struct{}{}
	for _, row := range r.Rows {
		nrow := make([]rdf.TermID, len(cols))
		for i, c := range cols {
			nrow[i] = row[c]
		}
		k := rowKey(nrow, seqInts(len(cols)))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out.Rows = append(out.Rows, nrow)
	}
	out.sortRows()
	return out
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
