package engine

import (
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

// store is one node's local triple fragment with hash indexes on each
// position, standing in for the per-node RDF-3X instance of the
// paper's prototype.
type store struct {
	triples []rdf.Triple
	byS     map[rdf.TermID][]int32
	byP     map[rdf.TermID][]int32
	byO     map[rdf.TermID][]int32
}

func newStore(triples []rdf.Triple) *store {
	s := &store{
		triples: triples,
		byS:     make(map[rdf.TermID][]int32),
		byP:     make(map[rdf.TermID][]int32),
		byO:     make(map[rdf.TermID][]int32),
	}
	for i, t := range triples {
		s.byS[t.S] = append(s.byS[t.S], int32(i))
		s.byP[t.P] = append(s.byP[t.P], int32(i))
		s.byO[t.O] = append(s.byO[t.O], int32(i))
	}
	return s
}

// boundPattern is a triple pattern with constants resolved to IDs.
type boundPattern struct {
	vars                   []string // output schema
	sConst, pConst, oConst bool
	s, p, o                rdf.TermID
	sVar, pVar, oVar       int // column index for each variable position, -1 if constant
	unknown                bool
	scanned                *int64 // optional counter of triples touched
}

// bindPattern resolves constants against the dictionary. A constant
// missing from the dictionary matches nothing (unknown=true).
func bindPattern(dict *rdf.Dict, tp sparql.TriplePattern) boundPattern {
	bp := boundPattern{sVar: -1, pVar: -1, oVar: -1}
	col := func(name string) int {
		for i, v := range bp.vars {
			if v == name {
				return i
			}
		}
		bp.vars = append(bp.vars, name)
		return len(bp.vars) - 1
	}
	resolve := func(t sparql.Term) (rdf.TermID, bool) {
		id, ok := dict.Lookup(t.Value)
		if !ok {
			bp.unknown = true
		}
		return id, true
	}
	if tp.S.IsVar() {
		bp.sVar = col(tp.S.Value)
	} else {
		bp.s, bp.sConst = resolve(tp.S)
	}
	if tp.P.IsVar() {
		bp.pVar = col(tp.P.Value)
	} else {
		bp.p, bp.pConst = resolve(tp.P)
	}
	if tp.O.IsVar() {
		bp.oVar = col(tp.O.Value)
	} else {
		bp.o, bp.oConst = resolve(tp.O)
	}
	return bp
}

// match scans the store for the pattern, using the most selective
// available index. Matching rows are appended into the relation's
// arena — one allocation for the whole scan, not one per row.
func (s *store) match(bp boundPattern) *Relation {
	if bp.unknown {
		return &Relation{Vars: bp.vars}
	}
	candidates := s.candidates(bp)
	if bp.scanned != nil {
		*bp.scanned += int64(len(candidates))
	}
	rel := newRelation(bp.vars, len(candidates))
	var row [3]rdf.TermID // a triple pattern binds at most 3 variables
	for _, i := range candidates {
		t := s.triples[i]
		if bp.sConst && t.S != bp.s {
			continue
		}
		if bp.pConst && t.P != bp.p {
			continue
		}
		if bp.oConst && t.O != bp.o {
			continue
		}
		if fillRow(row[:len(bp.vars)], bp, t) {
			rel.appendCopy(row[:len(bp.vars)])
		}
	}
	return rel
}

// fillRow writes the variable positions of t into row; a repeated
// variable (e.g. ?x <p> ?x) must bind equal values. It reports whether
// the triple is a match.
func fillRow(row []rdf.TermID, bp boundPattern, t rdf.Triple) bool {
	var filled [3]bool
	put := func(c int, v rdf.TermID) bool {
		if c < 0 {
			return true
		}
		if filled[c] {
			return row[c] == v
		}
		filled[c] = true
		row[c] = v
		return true
	}
	return put(bp.sVar, t.S) && put(bp.pVar, t.P) && put(bp.oVar, t.O)
}

// candidates picks the smallest applicable index posting list.
func (s *store) candidates(bp boundPattern) []int32 {
	var best []int32
	have := false
	consider := func(list []int32, applicable bool) {
		if !applicable {
			return
		}
		if !have || len(list) < len(best) {
			best, have = list, true
		}
	}
	consider(s.byS[bp.s], bp.sConst)
	consider(s.byP[bp.p], bp.pConst)
	consider(s.byO[bp.o], bp.oConst)
	if have {
		return best
	}
	all := make([]int32, len(s.triples))
	for i := range all {
		all[i] = int32(i)
	}
	return all
}
