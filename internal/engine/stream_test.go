package engine

import (
	"context"
	"fmt"
	"testing"

	"sparqlopt/internal/opt"
	"sparqlopt/internal/partition"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/sparql"
)

// drainStream collects every chunk of a stream, copying rows out of
// the recycled chunk buffer, and finishes the stream.
func drainStream(t *testing.T, st *Stream) [][]rdf.TermID {
	t.Helper()
	var rows [][]rdf.TermID
	for {
		chunk, err := st.NextChunk(context.Background())
		if err != nil {
			t.Fatalf("NextChunk: %v", err)
		}
		if chunk == nil {
			return rows
		}
		for _, row := range chunk {
			rows = append(rows, append([]rdf.TermID{}, row...))
		}
	}
}

// TestStreamMatchesExecute: the chunked stream must yield exactly the
// rows the materializing path returns — same set, since the stream
// yields arrival order and Execute sorts.
func TestStreamMatchesExecute(t *testing.T) {
	ds := socialDataset()
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	queries := append(testQueries,
		// Narrow projections force the stream's dedup path.
		`SELECT ?o WHERE { ?p <worksFor> ?o . }`,
		`SELECT ?c WHERE { ?p <worksFor> ?o . ?o <inCity> ?c . }`,
	)
	for _, src := range queries {
		q := sparql.MustParse(src)
		res := optimizeFor(t, ds, q, m, opt.TDAuto)
		want, err := e.Execute(context.Background(), res.Plan, q)
		if err != nil {
			t.Fatal(err)
		}
		st, err := e.ExecuteStream(context.Background(), res.Plan, q, ExecEnv{})
		if err != nil {
			t.Fatalf("%s: ExecuteStream: %v", src, err)
		}
		rows := drainStream(t, st)
		st.Finish()
		got := &Result{Vars: st.Vars(), Rows: rows}
		sortRowsFor(got)
		equalResults(t, got, want, src)
		if sr := st.Result(); sr.Returned != int64(len(want.Rows)) {
			t.Fatalf("%s: Returned = %d, want %d", src, sr.Returned, len(want.Rows))
		}
	}
}

// TestStreamMultiChunk: a result bigger than one chunk arrives across
// several chunks, distinct and complete.
func TestStreamMultiChunk(t *testing.T) {
	ds := rdf.NewDataset()
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			ds.Add(fmt.Sprintf("a%d", i), "n", fmt.Sprintf("b%d", j))
		}
	}
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	q := sparql.MustParse(`SELECT * WHERE { ?a <n> ?b . }`)
	res := optimizeFor(t, ds, q, m, opt.TDAuto)
	st, err := e.ExecuteStream(context.Background(), res.Plan, q, ExecEnv{})
	if err != nil {
		t.Fatal(err)
	}
	var chunks, total int
	for {
		chunk, err := st.NextChunk(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if chunk == nil {
			break
		}
		if len(chunk) > streamChunkRows {
			t.Fatalf("chunk of %d rows exceeds %d", len(chunk), streamChunkRows)
		}
		chunks++
		total += len(chunk)
	}
	st.Finish()
	if total != 3600 {
		t.Fatalf("streamed %d rows, want 3600", total)
	}
	if chunks < 3600/streamChunkRows {
		t.Fatalf("only %d chunks for %d rows", chunks, total)
	}
}

// TestStreamDedup: a projection that collapses rows must stream each
// distinct row once, like the materializing path.
func TestStreamDedup(t *testing.T) {
	ds := socialDataset()
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	q := sparql.MustParse(`SELECT ?o WHERE { ?p <worksFor> ?o . }`)
	res := optimizeFor(t, ds, q, m, opt.TDAuto)
	st, err := e.ExecuteStream(context.Background(), res.Plan, q, ExecEnv{})
	if err != nil {
		t.Fatal(err)
	}
	rows := drainStream(t, st)
	st.Finish()
	if len(rows) != 2 { // acme, globex — five bindings collapse to two
		t.Fatalf("streamed %d rows, want 2 distinct orgs", len(rows))
	}
	seen := map[rdf.TermID]bool{}
	for _, row := range rows {
		if seen[row[0]] {
			t.Fatalf("duplicate row %v in stream", row)
		}
		seen[row[0]] = true
	}
}

// TestStreamCancel: a canceled context fails NextChunk with a phase-
// annotated error.
func TestStreamCancel(t *testing.T) {
	ds := socialDataset()
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	q := sparql.MustParse(`SELECT * WHERE { ?p <worksFor> ?o . }`)
	res := optimizeFor(t, ds, q, m, opt.TDAuto)
	st, err := e.ExecuteStream(context.Background(), res.Plan, q, ExecEnv{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.NextChunk(ctx); err == nil {
		t.Fatal("NextChunk on a canceled context must fail")
	}
	st.Finish()
}

// TestStreamFinishIdempotent: Finish may be called repeatedly (drain
// path plus deferred cleanup) without double-counting metrics.
func TestStreamFinishIdempotent(t *testing.T) {
	ds := socialDataset()
	m := partition.HashSO{}
	placement, err := m.Partition(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := New(ds.Dict, placement)
	q := sparql.MustParse(`SELECT * WHERE { ?p <worksFor> ?o . }`)
	res := optimizeFor(t, ds, q, m, opt.TDAuto)
	st, err := e.ExecuteStream(context.Background(), res.Plan, q, ExecEnv{})
	if err != nil {
		t.Fatal(err)
	}
	rows := drainStream(t, st)
	st.Finish()
	st.Finish()
	r := st.Result()
	if r.Returned != int64(len(rows)) {
		t.Fatalf("Returned = %d, want %d", r.Returned, len(rows))
	}
}

// TestHash128Independence: the two words of the dedup hash must not be
// derivable from each other — rows colliding in one word must split in
// the other.
func TestHash128Independence(t *testing.T) {
	seen := map[[2]uint64]bool{}
	for i := 0; i < 1000; i++ {
		h := hash128([]rdf.TermID{rdf.TermID(i), rdf.TermID(i * 7)})
		if h[0] == h[1] {
			t.Fatalf("words equal for row %d", i)
		}
		if seen[h] {
			t.Fatalf("collision at row %d", i)
		}
		seen[h] = true
	}
}

// sortRowsFor orders a result's rows like the materializing path does.
func sortRowsFor(r *Result) {
	rel := &Relation{Vars: r.Vars, Rows: r.Rows}
	rel.sortRows()
	r.Rows = rel.Rows
}
