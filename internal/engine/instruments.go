package engine

import (
	"time"

	"sparqlopt/internal/obs"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/resilience"
)

// opName is the ASCII metric/span name of a plan operator (the plan
// package's String() uses the paper's ⋈ notation, which makes poor
// metric label values).
func opName(a plan.Algorithm) string {
	switch a {
	case plan.Scan:
		return "scan"
	case plan.LocalJoin:
		return "local_join"
	case plan.BroadcastJoin:
		return "broadcast_join"
	default:
		return "repartition_join"
	}
}

// Instruments is the engine's metrics bundle. A nil *Instruments
// disables recording: the engine's hot paths guard every record call
// behind one nil check, and the recording methods themselves are
// nil-receiver safe.
type Instruments struct {
	// Executes / ExecuteSeconds count and time whole plan executions.
	Executes       *obs.Counter
	ExecuteSeconds *obs.Histogram
	// ResultRows counts distinct result rows returned to callers.
	ResultRows *obs.Counter
	// ScannedTriples/TransferredRows/TransferredBytes/JoinedRows
	// accumulate the per-run Metrics across executions.
	ScannedTriples   *obs.Counter
	TransferredRows  *obs.Counter
	TransferredBytes *obs.Counter
	JoinedRows       *obs.Counter
	// FactorizedJoins counts executions whose root ran the factorizing
	// path; FactorizedFlattened/FactorizedDeferred split those runs'
	// logical output rows into the candidates projection actually
	// enumerated and the fanout the answer graph never materialized.
	FactorizedJoins     *obs.Counter
	FactorizedFlattened *obs.Counter
	FactorizedDeferred  *obs.Counter
	// ParallelTasks/InlineTasks split how subtree tasks actually ran —
	// on a borrowed semaphore slot vs. inline on the submitting
	// goroutine — the engine's parallelism-utilization signal.
	ParallelTasks *obs.Counter
	InlineTasks   *obs.Counter
	// Failovers counts node operations served via failover (replica
	// scans of a dead node's fragment, re-homed scatter partitions).
	Failovers *obs.Counter
	// PanicsRecovered counts worker panics converted into typed
	// errors. Registered under the shared resilience family, so the
	// engine's, the optimizer's and the serving path's recoveries
	// accumulate into one process-wide series.
	PanicsRecovered *obs.Counter

	opRuns    [4]*obs.Counter
	opSeconds [4]*obs.Histogram
	opRows    [4]*obs.Counter
}

// NewInstruments registers the engine's metrics on r and returns the
// bundle. A nil registry returns nil (instrumentation disabled).
func NewInstruments(r *obs.Registry) *Instruments {
	if r == nil {
		return nil
	}
	inst := &Instruments{
		Executes:         r.Counter("engine_executes_total", "Plan executions."),
		ExecuteSeconds:   r.Histogram("engine_execute_seconds", "Plan execution latency.", nil),
		ResultRows:       r.Counter("engine_result_rows_total", "Distinct result rows returned."),
		ScannedTriples:   r.Counter("engine_scanned_triples_total", "Index postings touched by leaf scans."),
		TransferredRows:  r.Counter("engine_transferred_rows_total", "Rows moved across node boundaries."),
		TransferredBytes: r.Counter("engine_transferred_bytes_total", "Bytes moved across node boundaries."),
		JoinedRows:       r.Counter("engine_joined_rows_total", "Rows produced by join operators."),
		FactorizedJoins:  r.Counter("engine_factorized_joins_total", "Executions run on the factorized (answer-graph) path."),
		FactorizedFlattened: r.Counter("engine_factorized_flattened_rows_total",
			"Candidate rows enumerated when flattening factorized results at projection."),
		FactorizedDeferred: r.Counter("engine_factorized_deferred_rows_total",
			"Logical rows factorized execution never materialized."),
		Failovers:       r.Counter("engine_failover_total", "Node operations served via failover (replica scans, re-homed shuffles)."),
		ParallelTasks:   r.Counter("engine_parallel_tasks_total", "Subtree tasks run on a parallel worker."),
		InlineTasks:     r.Counter("engine_inline_tasks_total", "Subtree tasks run inline (semaphore saturated)."),
		PanicsRecovered: r.Counter("resilience_panics_recovered_total", resilience.PanicsRecoveredHelp),
	}
	for a := plan.Scan; a <= plan.RepartitionJoin; a++ {
		lbl := obs.Label{Key: "operator", Value: opName(a)}
		inst.opRuns[a] = r.Counter("engine_operator_runs_total", "Operator evaluations by type.", lbl)
		inst.opSeconds[a] = r.Histogram("engine_operator_seconds", "Operator own-time by type.", nil, lbl)
		inst.opRows[a] = r.Counter("engine_operator_rows_total", "Rows produced by operator type.", lbl)
	}
	return inst
}

// recordOp folds one operator evaluation into the per-operator series.
func (i *Instruments) recordOp(a plan.Algorithm, d time.Duration, rows int64) {
	if i == nil {
		return
	}
	if a > plan.RepartitionJoin {
		return
	}
	i.opRuns[a].Inc()
	i.opSeconds[a].ObserveDuration(d)
	i.opRows[a].Add(rows)
}

// recordExecute folds one finished execution into the metrics.
func (i *Instruments) recordExecute(d time.Duration, rows int, m Metrics) {
	if i == nil {
		return
	}
	i.Executes.Inc()
	i.ExecuteSeconds.ObserveDuration(d)
	i.ResultRows.Add(int64(rows))
	i.ScannedTriples.Add(m.ScannedTriples)
	i.TransferredRows.Add(m.TransferredRows)
	i.TransferredBytes.Add(m.TransferredBytes)
	i.JoinedRows.Add(m.JoinedRows)
}

// recordFactorized folds one factorized execution into the metrics:
// flat is the root's logical output, flattened the candidates the
// projection enumerated.
func (i *Instruments) recordFactorized(flat, flattened int64) {
	if i == nil {
		return
	}
	i.FactorizedJoins.Inc()
	i.FactorizedFlattened.Add(flattened)
	if d := flat - flattened; d > 0 {
		i.FactorizedDeferred.Add(d)
	}
}

// recordFailovers folds one execution's failover count in.
func (i *Instruments) recordFailovers(n int64) {
	if i == nil || n == 0 {
		return
	}
	i.Failovers.Add(n)
}

func (i *Instruments) parallelTask() {
	if i == nil {
		return
	}
	i.ParallelTasks.Inc()
}

func (i *Instruments) inlineTask() {
	if i == nil {
		return
	}
	i.InlineTasks.Inc()
}

func (i *Instruments) panicRecovered() {
	if i == nil {
		return
	}
	i.PanicsRecovered.Inc()
}
