package engine

// Node failure as a first-class, injectable fault domain.
//
// A "node" here is one simulated computing node: a base fragment
// store, an optional migration overlay, and a share of every shuffle.
// The fault-injection sites node/<i>/scan and node/<i>/shuffle stand
// in for the node's process or link dying: while one fires, every
// contact with that node on the corresponding path fails.
//
// The failure ladder, per node operation:
//
//  1. Breaker check. If the node's health breaker is Open, skip the
//     contact entirely — no retries, no sleeps — and go straight to
//     failover. A dead node costs queries nothing once the breaker
//     has tripped, and queries that cannot carry a fault set (HTTP
//     requests) still exercise the failover path deterministically.
//  2. Retry with capped exponential backoff (resilience.Backoff,
//     cancellable sleeps), re-asking the fault site each attempt so a
//     transient blip recovers without declaring the node dead. Every
//     attempt's outcome feeds the breaker.
//  3. Failover. The node joins the execution's dead set, and its share
//     of the operation is served without it:
//
//     Scans read the dead node's fragment *manifest* — the snapshot's
//     immutable store, standing in for the placement metadata a real
//     coordinator keeps — and verify every matched triple has a live
//     copy: on a healthy node's base fragment or overlay (the avail
//     set), or in the broadcast ingest delta (replicated everywhere by
//     construction). Covered scans emit exactly the rows the healthy
//     run would have — bit-identical by construction, because base,
//     overlay and delta are pairwise disjoint per node and the aligned
//     filter keeps one copy globally (see alignedScan) — while a scan
//     that matches even one uncovered triple fails fast with a typed
//     *resilience.UnavailableError. Never a hang, never a silent
//     partial result.
//
//     Shuffles re-home the dead node's partition: scatter buckets are
//     pure computation over inputs already fetched from live nodes, so
//     any healthy worker can own the bucket. The failover is recorded
//     but always succeeds.
//
// Join compute needs no ladder of its own: by the time a join runs,
// all data movement has happened, and the per-node join worker is
// re-homeable computation exactly like a shuffle bucket.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"sparqlopt/internal/obs"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/resilience/faultinject"
	"sparqlopt/internal/resilience/health"
)

// FailoverPolicy enables node-failure handling. Set it with
// Engine.SetFailover; a nil policy (the default) disables the ladder —
// a firing node fault then fails the query immediately with a typed
// *resilience.UnavailableError and no replica is consulted (the
// no-failover twin the benchmarks compare against).
type FailoverPolicy struct {
	// Health is the per-node breaker the ladder feeds and consults.
	// Optional: nil disables breaker fast-failing (every operation
	// pays its retries).
	Health *health.Tracker
	// MaxAttempts is how many times a node operation is tried before
	// the node is declared dead for the execution (< 1 means 1).
	MaxAttempts int
	// Backoff paces the retries. The zero value retries immediately.
	Backoff resilience.Backoff
}

// failoverState is one execution's failure memory: which nodes were
// declared dead (by what), and how many node operations failed over.
// It is created per ExecuteStream call and shared by the run's
// concurrent per-node workers.
type failoverState struct {
	mu        sync.Mutex
	dead      map[int]string // node -> what declared it ("scan", "shuffle", "breaker open")
	failovers int64
}

func (st *failoverState) isDead(node int) bool {
	if st == nil {
		return false
	}
	st.mu.Lock()
	_, ok := st.dead[node]
	st.mu.Unlock()
	return ok
}

func (st *failoverState) markDead(node int, via string) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if st.dead == nil {
		st.dead = make(map[int]string)
	}
	if _, ok := st.dead[node]; !ok {
		st.dead[node] = via
	}
	st.mu.Unlock()
}

func (st *failoverState) recordFailover() {
	if st == nil {
		return
	}
	st.mu.Lock()
	st.failovers++
	st.mu.Unlock()
}

// deadNodes returns the execution's dead set, ascending.
func (st *failoverState) deadNodes() []int {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	nodes := make([]int, 0, len(st.dead))
	for n := range st.dead {
		nodes = append(nodes, n)
	}
	st.mu.Unlock()
	sort.Ints(nodes)
	return nodes
}

// summary returns the failover count and the degradation-ladder notes
// (one per dead node, ascending, so the output is schedule-invariant).
func (st *failoverState) summary() (int64, []string) {
	if st == nil {
		return 0, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.dead) == 0 {
		return st.failovers, nil
	}
	nodes := make([]int, 0, len(st.dead))
	for n := range st.dead {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	notes := make([]string, 0, len(nodes))
	for _, n := range nodes {
		notes = append(notes, fmt.Sprintf("failover: node %d down (%s), served from replicas", n, st.dead[n]))
	}
	return st.failovers, notes
}

// SetFailover installs (or, with nil, removes) the engine's node-
// failover policy. It must not be called concurrently with Execute.
func (e *Engine) SetFailover(p *FailoverPolicy) { e.fo = p }

// nodeGate simulates contacting node for one kind of operation
// ("scan" or "shuffle") at the given fault site. It returns down=true
// when the node must be treated as dead and the operation served via
// failover. With no failover policy a firing fault is a hard, typed
// error instead. err is non-nil only for cancellation or that
// no-failover failure.
func (e *Engine) nodeGate(ctx context.Context, node int, site faultinject.Site, kind string, env ExecEnv) (down bool, err error) {
	fo := e.fo
	if fo == nil {
		if env.Faults.Should(site) {
			// Failover disabled: node death is immediately fatal to the
			// query — the failure mode the failover bench's twin exhibits.
			return false, &resilience.UnavailableError{Nodes: []int{node}, Op: kind}
		}
		return false, nil
	}
	st := env.fo
	if st.isDead(node) {
		// Already declared dead by an earlier operation of this
		// execution: don't pay the retries again.
		return true, nil
	}
	if !fo.Health.Allow(node) {
		st.markDead(node, "breaker open")
		return true, nil
	}
	attempts := fo.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for a := 0; ; a++ {
		if !env.Faults.Should(site) {
			fo.Health.ReportSuccess(node)
			return false, nil
		}
		fo.Health.ReportFailure(node)
		if a+1 >= attempts {
			st.markDead(node, kind)
			return true, nil
		}
		if d := fo.Backoff.Delay(a); d > 0 {
			// Backoff sleeps stay cancellable: a deadline firing mid-retry
			// aborts the query like any other timeout.
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return false, obs.Canceled(ctx, "failover")
			case <-t.C:
			}
		}
	}
}

// availEntry caches the live-replica membership set for one
// (snapshot, dead set) pair: the union of every healthy node's base
// fragment and overlay. Executions hitting the same outage reuse it;
// a snapshot swap or a different dead set rebuilds.
type availEntry struct {
	snap *Snap
	key  string
	m    map[rdf.Triple]struct{}
}

// availFor returns the set of triples with at least one live copy,
// given the dead node set. The broadcast ingest delta is excluded on
// purpose: delta triples are replicated to every node and never
// appear in base fragments or overlays, so scans of a dead node never
// need them checked (matchChecked only sees store triples).
func (e *Engine) availFor(snap *Snap, dead []int) map[rdf.Triple]struct{} {
	key := fmt.Sprint(dead)
	if cur := e.avail.Load(); cur != nil && cur.snap == snap && cur.key == key {
		return cur.m
	}
	isDead := make(map[int]bool, len(dead))
	for _, n := range dead {
		isDead[n] = true
	}
	size := 0
	for node, st := range snap.stores {
		if !isDead[node] {
			size += len(st.triples)
		}
	}
	m := make(map[rdf.Triple]struct{}, size)
	for node, st := range snap.stores {
		if isDead[node] {
			continue
		}
		for _, t := range st.triples {
			m[t] = struct{}{}
		}
		if ov := snap.overlay(node); ov != nil {
			for _, t := range ov.triples {
				m[t] = struct{}{}
			}
		}
	}
	e.avail.Store(&availEntry{snap: snap, key: key, m: m})
	return m
}

// matchChecked is store.match against a dead node's fragment manifest:
// identical candidate selection and row production, but each matched
// row must clear two extra gates — keep (nil = keep all; the aligned
// scan's destination filter) and then membership of its triple in
// avail. missing counts kept rows whose triple has no live replica;
// when missing is 0 the relation is bit-identical to what the healthy
// node's match (plus filter) would have produced.
func (s *store) matchChecked(bp boundPattern, avail map[rdf.Triple]struct{}, keep func([]rdf.TermID) bool) (*Relation, int) {
	if bp.unknown {
		return &Relation{Vars: bp.vars}, 0
	}
	candidates := s.candidates(bp)
	if bp.scanned != nil {
		*bp.scanned += int64(len(candidates))
	}
	rel := newRelation(bp.vars, len(candidates))
	missing := 0
	var row [3]rdf.TermID
	for _, i := range candidates {
		t := s.triples[i]
		if bp.sConst && t.S != bp.s {
			continue
		}
		if bp.pConst && t.P != bp.p {
			continue
		}
		if bp.oConst && t.O != bp.o {
			continue
		}
		if !fillRow(row[:len(bp.vars)], bp, t) {
			continue
		}
		if keep != nil && !keep(row[:len(bp.vars)]) {
			continue
		}
		if _, ok := avail[t]; !ok {
			missing++
			continue
		}
		rel.appendCopy(row[:len(bp.vars)])
	}
	return rel, missing
}

// failoverScan serves a dead node's share of a scan from its fragment
// manifest, verified against live replicas. keep is the aligned scan's
// destination filter (nil for a normal scan). On full coverage the
// relation is bit-identical to the healthy node's output; any hole
// fails fast with a typed *resilience.UnavailableError.
func (e *Engine) failoverScan(node int, bp boundPattern, env ExecEnv, keep func([]rdf.TermID) bool) (*Relation, error) {
	avail := e.availFor(env.Snap, env.fo.deadNodes())
	rel, missing := env.Snap.stores[node].matchChecked(bp, avail, keep)
	if ov := env.Snap.overlay(node); ov != nil && keep != nil {
		// Aligned scans also read the node's migration overlay; its
		// copies need live homes too (their base source could be on
		// another dead node).
		ovRel, ovMissing := ov.matchChecked(bp, avail, keep)
		if err := ovRel.chargeTo(env.Gauge, "scan"); err != nil {
			return nil, err
		}
		rel.Rows = append(rel.Rows, ovRel.Rows...)
		missing += ovMissing
	}
	if missing > 0 {
		return nil, e.unavailable(env, "scan", missing)
	}
	env.fo.recordFailover()
	return rel, nil
}

// unavailable builds the typed fail-fast error for a query that
// touched a dead, unreplicated fragment, with the breaker's next-probe
// horizon as the retry hint.
func (e *Engine) unavailable(env ExecEnv, op string, missing int) error {
	nodes := env.fo.deadNodes()
	var retry time.Duration
	if fo := e.fo; fo != nil {
		for _, n := range nodes {
			if r := fo.Health.RetryIn(n); r > retry {
				retry = r
			}
		}
	}
	return &resilience.UnavailableError{Nodes: nodes, Op: op, Missing: missing, RetryAfter: retry}
}
