// Factorized (answer-graph) intermediates. A result-heavy join — a
// star around a hub variable, a high-fanout chain — produces an output
// whose flattened form is a near-cross-product of its inputs: O(rows)
// storage and time for rows that final DISTINCT projection mostly
// throws away. Following Answer Graph (Abul-Basher et al.), a
// FactorizedRelation keeps the join's column groups separate — one
// spine group holding the join variables plus one group per extending
// input — connected by link vectors carrying the per-row match lists
// (the multiplicities). Storage is O(vertices + edges): the groups'
// rows plus the links, never the product. The result is flattened only
// at projection, and then only the groups the projection actually
// needs — a SELECT over spine variables alone never materializes the
// fanout at all.
package engine

import (
	"context"
	"math"

	"sparqlopt/internal/obs"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/resilience"
)

// satellite is one non-spine column group of a factorized relation: a
// shared reference to the source relation (never copied, never
// mutated) plus the link vectors tying each spine row to its matching
// satellite rows. Spine row i matches rel.Rows[sel[offs[i]:offs[i+1]]];
// every spine row has at least one match (rows without one are dropped
// when the group is attached). Only cols/vars — the columns extending
// the schema beyond the spine — are exposed; the shared join columns
// duplicate spine values and stay hidden.
type satellite struct {
	rel  *Relation
	cols []int
	vars []string
	offs []int32
	sel  []int32
}

// count returns spine row i's multiplicity in this group.
func (s *satellite) count(i int) int64 { return int64(s.offs[i+1] - s.offs[i]) }

// FactorizedRelation is an answer-graph intermediate: the join result
// of k inputs represented as a spine column group plus satellites
// linked by multiplicity vectors, logically equal to the flat natural
// join of the inputs. It is built by factorize, owned by one goroutine,
// and read-only afterwards.
type FactorizedRelation struct {
	spine *Relation
	sats  []*satellite

	// charged mirrors Relation.charged: bytes already reserved against
	// a memory gauge, so repeated charges pay only the delta.
	charged int64
}

// rowHeaderBytes approximates the cost of one shared spine-row
// reference (a slice header); the row payload lives in — and was
// charged by — the input relation it points into.
const rowHeaderBytes = 24

// linkEntryBytes is the size of one offs/sel vector entry (int32).
const linkEntryBytes = 4

// footprint is the factored storage this relation owns: the spine
// (arena bytes when absorb materialized it, row headers when it shares
// input storage) plus the link vectors. Satellite group payloads belong
// to the join inputs and are charged by their producers.
func (f *FactorizedRelation) footprint() int64 {
	var n int64
	if cap(f.spine.arena) > 0 {
		n += int64(cap(f.spine.arena)) * termIDBytes
	} else {
		n += int64(len(f.spine.Rows)) * rowHeaderBytes
	}
	for _, s := range f.sats {
		n += int64(len(s.offs)+len(s.sel)) * linkEntryBytes
	}
	return n
}

// chargeTo reserves the factored footprint against the query's memory
// gauge, attributed to site; later calls pay only the growth. This is
// the budget-side win of factorization: the same join that would
// reserve O(flat rows) arena bytes reserves O(groups + links).
func (f *FactorizedRelation) chargeTo(g *resilience.Gauge, site string) error {
	if g == nil || f == nil {
		return nil
	}
	delta := f.footprint() - f.charged
	if delta <= 0 {
		return nil
	}
	if err := g.Reserve(site, delta); err != nil {
		return err
	}
	f.charged += delta
	return nil
}

// Vars returns the full flat schema: spine columns then each
// satellite's extending columns, in attachment order. The schema
// evolution in factorize is driven only by the input schemas (never by
// data), so every node of a distributed operator produces the same
// schema.
func (f *FactorizedRelation) Vars() []string {
	out := append([]string{}, f.spine.Vars...)
	for _, s := range f.sats {
		out = append(out, s.vars...)
	}
	return out
}

// satAdd and satMul are saturating int64 arithmetic: a factored form
// can represent more flat rows than int64 holds (that is the point),
// so logical counts pin at MaxInt64 instead of wrapping.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// flatCount returns the number of flat rows this relation represents —
// Σ over spine rows of the product of their satellite multiplicities —
// without flattening anything. Saturates at MaxInt64.
func (f *FactorizedRelation) flatCount() int64 {
	var total int64
	for i := range f.spine.Rows {
		c := int64(1)
		for _, s := range f.sats {
			c = satMul(c, s.count(i))
		}
		total = satAdd(total, c)
	}
	return total
}

// factorize builds the answer-graph join of rels: rels[0] seeds the
// spine, every further input is folded in by attach — connected inputs
// first, mirroring joinAll's greedy order. Each fold's link growth is
// charged to g under site, so a factorization that would blow the
// budget trips it before the memory is committed, exactly like the
// flat path's per-fold charges.
func factorize(ctx context.Context, g *resilience.Gauge, site string, rels []*Relation) (*FactorizedRelation, error) {
	f := &FactorizedRelation{spine: &Relation{Vars: rels[0].Vars, Rows: rels[0].Rows}}
	used := make([]bool, len(rels))
	used[0] = true
	for count := 1; count < len(rels); count++ {
		pick := -1
		for i, r := range rels {
			if !used[i] && f.sharesVarWith(r) {
				pick = i
				break
			}
		}
		if pick < 0 {
			for i := range rels {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		if err := f.attach(ctx, rels[pick]); err != nil {
			return nil, err
		}
		if err := f.chargeTo(g, site); err != nil {
			return nil, err
		}
		used[pick] = true
	}
	return f, nil
}

// sharesVarWith reports whether r shares a variable with any group.
func (f *FactorizedRelation) sharesVarWith(r *Relation) bool {
	for _, v := range r.Vars {
		if f.spine.colIndex(v) >= 0 {
			return true
		}
		for _, s := range f.sats {
			for _, sv := range s.vars {
				if sv == v {
					return true
				}
			}
		}
	}
	return false
}

// satSharing returns the first satellite exposing a variable r joins
// on, or -1.
func (f *FactorizedRelation) satSharing(r *Relation) int {
	for si, s := range f.sats {
		for _, v := range s.vars {
			if r.colIndex(v) >= 0 {
				return si
			}
		}
	}
	return -1
}

// attach folds one input relation into the factorization. Inputs
// joining on spine variables become a new satellite (or, with no
// extending columns, a pure semi-join filter: under set semantics a
// multiplicity-only group changes nothing and is dropped). Inputs
// joining on a satellite's variables first absorb that satellite into
// the spine — the snowflake case, where part of the fanout must
// materialize so the next link has somewhere to anchor. A disconnected
// input (impossible under Cartesian-product-free plans; kept as a
// defensive path) flattens everything and falls back to the flat join.
func (f *FactorizedRelation) attach(ctx context.Context, r *Relation) error {
	for {
		si := f.satSharing(r)
		if si < 0 {
			break
		}
		f.absorb(si)
	}
	shared := sharedVars(f.spine, r)
	if len(shared) == 0 {
		for len(f.sats) > 0 {
			f.absorb(0)
		}
		joined, err := hashJoin(ctx, f.spine, r)
		if err != nil {
			return err
		}
		f.spine = joined
		return nil
	}
	spineCols := make([]int, len(shared))
	rCols := make([]int, len(shared))
	for i, v := range shared {
		spineCols[i] = f.spine.colIndex(v)
		rCols[i] = r.colIndex(v)
	}
	index := newRowTable(r.Rows, rCols)
	offs := make([]int32, 1, len(f.spine.Rows)+1)
	var sel, keep []int32
	ops := 0
	for i, row := range f.spine.Rows {
		before := len(sel)
		for _, ri := range index.buckets[hashCols(row, spineCols)] {
			if ops++; ops&(cancelEvery-1) == 0 {
				if err := obs.Canceled(ctx, "join"); err != nil {
					return err
				}
			}
			if equalOn(row, spineCols, r.Rows[ri], rCols) {
				sel = append(sel, ri)
			}
		}
		if ops++; ops&(cancelEvery-1) == 0 {
			if err := obs.Canceled(ctx, "join"); err != nil {
				return err
			}
		}
		if len(sel) > before {
			keep = append(keep, int32(i))
			offs = append(offs, int32(len(sel)))
		}
	}
	if len(keep) < len(f.spine.Rows) {
		f.compact(keep)
	}
	var cols []int
	var vars []string
	for j, v := range r.Vars {
		if f.spine.colIndex(v) < 0 {
			cols = append(cols, j)
			vars = append(vars, v)
		}
	}
	if len(cols) == 0 {
		return nil
	}
	f.sats = append(f.sats, &satellite{rel: r, cols: cols, vars: vars, offs: offs, sel: sel})
	return nil
}

// compact drops every spine row not in keep, rewriting the existing
// satellites' link vectors to the surviving rows. keep is ascending.
func (f *FactorizedRelation) compact(keep []int32) {
	rows := make([][]rdf.TermID, len(keep))
	for i, k := range keep {
		rows[i] = f.spine.Rows[k]
	}
	for _, s := range f.sats {
		offs := make([]int32, 1, len(keep)+1)
		sel := make([]int32, 0, len(s.sel))
		for _, k := range keep {
			sel = append(sel, s.sel[s.offs[k]:s.offs[k+1]]...)
			offs = append(offs, int32(len(sel)))
		}
		s.offs, s.sel = offs, sel
	}
	f.spine.Rows = rows
}

// absorb flattens satellite si into the spine: every spine row is
// replicated once per matching satellite row, merged with that row's
// extending columns; the remaining satellites' links are replicated
// alongside. This is the controlled, partial flatten the snowflake
// case needs — the absorbed group's fanout materializes, every other
// group stays factored.
func (f *FactorizedRelation) absorb(si int) {
	s := f.sats[si]
	vars := append(append([]string{}, f.spine.Vars...), s.vars...)
	out := newRelation(vars, len(f.spine.Rows))
	for i, row := range f.spine.Rows {
		for _, m := range s.sel[s.offs[i]:s.offs[i+1]] {
			out.appendMerged(row, s.rel.Rows[m], s.cols)
		}
	}
	rest := make([]*satellite, 0, len(f.sats)-1)
	for sj, o := range f.sats {
		if sj == si {
			continue
		}
		no := &satellite{rel: o.rel, cols: o.cols, vars: o.vars}
		no.offs = make([]int32, 1, len(out.Rows)+1)
		no.sel = make([]int32, 0, len(o.sel))
		for i := range f.spine.Rows {
			matches := o.sel[o.offs[i]:o.offs[i+1]]
			for c := s.count(i); c > 0; c-- {
				no.sel = append(no.sel, matches...)
				no.offs = append(no.offs, int32(len(no.sel)))
			}
		}
		rest = append(rest, no)
	}
	f.spine = out
	f.sats = rest
}

// colRef locates a variable in the factored schema: group -1 is the
// spine, otherwise a satellite index; col is the column within the
// group's exposed columns (for satellites, an index into cols).
func (f *FactorizedRelation) colRef(v string) (group, col int) {
	if c := f.spine.colIndex(v); c >= 0 {
		return -1, c
	}
	for si, s := range f.sats {
		for j, sv := range s.vars {
			if sv == v {
				return si, j
			}
		}
	}
	return 0, -1
}

// projectDistinct enumerates the distinct projections of this
// relation's flat rows onto vars, appending previously unseen rows to
// out (whose schema is vars) and deduplicating against seen — the
// flatten-at-projection step. Only the groups that contribute a
// projected column are enumerated: groups the projection ignores
// affect multiplicity alone, which DISTINCT erases, so their fanout is
// never walked. The returned count is the number of candidate rows
// enumerated (the partial flatten's size); the deferred fanout is
// flatCount minus that.
func (f *FactorizedRelation) projectDistinct(ctx context.Context, vars []string, out *Relation, seen map[uint64][]int32) (int64, error) {
	e := newFactEnum(f, vars)
	idCols := seqCols(len(vars))
	var enumerated int64
	ops := 0
	for {
		row := e.next()
		if row == nil {
			return enumerated, nil
		}
		if ops++; ops&(cancelEvery-1) == 0 {
			if err := obs.Canceled(ctx, "flatten"); err != nil {
				return enumerated, err
			}
		}
		enumerated++
		h := hashRow(row)
		dup := false
		for _, i := range seen[h] {
			if equalOn(row, idCols, out.Rows[i], idCols) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		seen[h] = append(seen[h], int32(len(out.Rows)))
		out.appendCopy(row)
	}
}
