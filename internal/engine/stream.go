// Chunked result emission. ExecuteStream is the streaming twin of
// ExecuteEnv: the plan below the root evaluates exactly as before (same
// operators, same shuffles, same metrics), but the final
// gather/dedup/projection is demand-driven — the root's distributed
// output (flat per-node arenas or factorized answer graphs) is
// enumerated into fixed-size row chunks as the consumer pulls, instead
// of materializing one projected output arena. A factorized root
// flattens lazily, chunk by chunk, never holding more than one chunk
// of flat rows.
//
// Distinctness across chunks cannot verify candidates against rows
// that were already emitted and released, so the streaming dedup keeps
// a 128-bit hash per distinct row (two independent 64-bit hashes)
// instead of the materializing path's hash-plus-row-compare. With
// 2^-128-scale pairwise collision probability the chance of ever
// dropping a genuinely distinct row is negligible (~10^-27 for a
// million-row result); the corpus tests compare against the exact
// reference executor. The seen-set is charged to the query's memory
// gauge — it is O(distinct rows) at ~1/3 the bytes of the output
// arena it replaces, and it disappears entirely on the dedup-free
// fast path (see dedupFree).
package engine

import (
	"context"
	"fmt"
	"time"

	"sparqlopt/internal/obs"
	"sparqlopt/internal/plan"
	"sparqlopt/internal/rdf"
	"sparqlopt/internal/resilience"
	"sparqlopt/internal/sparql"
)

// streamChunkRows is how many rows one chunk holds. Large enough to
// amortize per-chunk overhead (gauge math, HTTP flushes), small enough
// that a streamed query's resident output is a few tens of KB.
const streamChunkRows = 1024

// dedupEntryBytes is the reservation per streaming seen-set entry: the
// 16-byte key plus amortized map bucket overhead.
const dedupEntryBytes = 40

// dedupChargeStep batches seen-set gauge reservations so the hot loop
// does not hit the shared budget atomics on every insert.
const dedupChargeStep = 64 * 1024

// rowEnum yields candidate result rows one at a time. The returned
// slice is a scratch buffer valid only until the next call; nil marks
// the end. Enumeration is pure — cancellation polling and
// deduplication belong to the Stream driving it.
type rowEnum interface {
	next() []rdf.TermID
}

// flatEnum enumerates the projection of per-node flat relations, in
// node order then row order — the deterministic gather order of the
// materializing path.
type flatEnum struct {
	parts   []*Relation
	cols    []int
	scratch []rdf.TermID
	pi, ri  int
}

func (e *flatEnum) next() []rdf.TermID {
	for e.pi < len(e.parts) {
		rows := e.parts[e.pi].Rows
		if e.ri >= len(rows) {
			e.pi++
			e.ri = 0
			continue
		}
		row := rows[e.ri]
		e.ri++
		for i, c := range e.cols {
			e.scratch[i] = row[c]
		}
		return e.scratch
	}
	return nil
}

// multiEnum chains per-node enumerators in node order.
type multiEnum struct {
	enums []rowEnum
	i     int
}

func (e *multiEnum) next() []rdf.TermID {
	for e.i < len(e.enums) {
		if row := e.enums[e.i].next(); row != nil {
			return row
		}
		e.i++
	}
	return nil
}

// factEnum is the explicit-state form of projectDistinct's nested
// enumeration loop over one answer graph: a cursor over spine rows
// plus an odometer over the kept satellites' match lists. Making the
// state explicit is what lets the flatten be demand-driven — the
// stream pulls one candidate at a time instead of the graph pushing
// every candidate through a callback.
type factEnum struct {
	f       *FactorizedRelation
	groups  []int // per projected var: -1 = spine, else satellite index
	cols    []int // column within the group's exposed columns
	ki      []int // per projected var with a satellite group: odometer position of that group
	kept    []int // satellite indices the projection enumerates
	idx     []int64
	scratch []rdf.TermID
	i       int
	live    bool // the odometer holds a valid position for spine row i
}

// newFactEnum mirrors projectDistinct's prologue: resolve each
// projected variable to its group, and keep only the satellites that
// contribute a projected column — ignored groups affect multiplicity
// alone, which DISTINCT erases. Unbound variables must have been
// rejected by the caller.
func newFactEnum(f *FactorizedRelation, vars []string) *factEnum {
	e := &factEnum{
		f:       f,
		groups:  make([]int, len(vars)),
		cols:    make([]int, len(vars)),
		ki:      make([]int, len(vars)),
		scratch: make([]rdf.TermID, len(vars)),
	}
	keptSet := map[int]bool{}
	for i, v := range vars {
		g, c := f.colRef(v)
		if c < 0 {
			continue
		}
		e.groups[i], e.cols[i] = g, c
		if g >= 0 {
			keptSet[g] = true
		}
	}
	for si := range f.sats {
		if keptSet[si] {
			e.kept = append(e.kept, si)
		}
	}
	e.idx = make([]int64, len(e.kept))
	for vi, g := range e.groups {
		if g >= 0 {
			for k, si := range e.kept {
				if si == g {
					e.ki[vi] = k
					break
				}
			}
		}
	}
	return e
}

func (e *factEnum) next() []rdf.TermID {
	for e.i < len(e.f.spine.Rows) {
		if !e.live {
			row := e.f.spine.Rows[e.i]
			for vi, g := range e.groups {
				if g == -1 {
					e.scratch[vi] = row[e.cols[vi]]
				}
			}
			for k := range e.idx {
				e.idx[k] = 0
			}
			e.live = true
		} else {
			// Advance the odometer; overflow moves to the next spine row.
			k := len(e.kept) - 1
			for k >= 0 {
				e.idx[k]++
				if e.idx[k] < e.f.sats[e.kept[k]].count(e.i) {
					break
				}
				e.idx[k] = 0
				k--
			}
			if k < 0 {
				e.live = false
				e.i++
				continue
			}
		}
		for vi, g := range e.groups {
			if g >= 0 {
				s := e.f.sats[g]
				srow := s.rel.Rows[s.sel[int64(s.offs[e.i])+e.idx[e.ki[vi]]]]
				e.scratch[vi] = srow[s.cols[e.cols[vi]]]
			}
		}
		return e.scratch
	}
	return nil
}

// hash128 is the streaming dedup key: hashRow's FNV-1a/splitmix64 pair
// plus a second independent hash (different basis and multiplier, a
// murmur-style finalizer), so a collision requires both 64-bit hashes
// to collide on the same pair of distinct rows.
func hash128(row []rdf.TermID) [2]uint64 {
	h2 := uint64(0x9e3779b97f4a7c15)
	for _, v := range row {
		h2 = (h2 ^ uint64(v)) * 0xff51afd7ed558ccd
	}
	h2 ^= h2 >> 33
	h2 *= 0xc4ceb9fe1a85ec53
	h2 ^= h2 >> 33
	return [2]uint64{hashRow(row), h2}
}

// dedupFree reports whether the root's gathered output is provably
// duplicate-free, letting the stream skip the seen-set entirely. Two
// duplicate sources exist: projection (dropping a column can identify
// previously distinct rows) and cross-node replication (partitioning
// methods place copies of a triple on several nodes). Projection-
// induced duplicates are impossible when the projected variables cover
// the full root schema (any permutation — the map stays injective).
// Replication-induced duplicates are impossible on a single node, and
// for a repartition-join root: every input row on node i was routed
// (by scatter or aligned scan) because its join-key hash lands on i,
// so the per-node outputs are pairwise disjoint; and each node's
// output is a set because natural joins of sets are sets (scans are
// sets — base, overlay and delta are pairwise disjoint and internally
// deduplicated — and scatter dedups each bucket).
func dedupFree(p *plan.Node, nodes int, vars, schema []string) bool {
	if nodes > 1 && p.Alg != plan.RepartitionJoin {
		return false
	}
	for _, v := range schema {
		found := false
		for _, pv := range vars {
			if pv == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Stream is one execution's chunked row emission. It is single-
// consumer: NextChunk returns batches of distinct projected rows in
// the engine's deterministic emission order (node order, then
// enumeration order — NOT the sorted order ExecuteEnv returns), and
// the returned rows are valid only until the next NextChunk call (the
// chunk arena is recycled). Result returns the execution's statistics;
// they are complete once NextChunk has returned nil.
type Stream struct {
	eng *Engine
	env ExecEnv
	res *Result
	src rowEnum

	seen        map[[2]uint64]struct{} // nil on the dedup-free fast path
	seenCharged int64
	chunk       *Relation
	ops         int

	execStart time.Time
	trace     *TraceNode
	// enumerated counts candidate rows pulled from the source — for a
	// factorized root this is the partial flatten's size, surfaced as
	// TraceNode.FlattenedRows.
	enumerated int64
	done       bool
	finished   bool
}

// ExecuteStream runs the plan for q and returns a Stream over the
// distinct projected results. All join work — child evaluation, data
// movement, the root join itself — happens before ExecuteStream
// returns; only the final gather/dedup/projection (and, for a
// factorized root, the flatten) is deferred to NextChunk. Metrics,
// trace and flat-row counts are identical to ExecuteEnv's; only
// FlattenedRows accrues as the stream drains.
func (e *Engine) ExecuteStream(ctx context.Context, p *plan.Node, q *sparql.Query, env ExecEnv) (st *Stream, err error) {
	defer resilience.CatchPanic(&err, e.inst.panicRecovered)
	if env.Snap == nil {
		// Capture the store view once: every operator of this run reads
		// the same snapshot even if a migration or ingest commit swaps
		// e.snap mid-query.
		env.Snap = e.snap.Load()
	}
	if e.fo != nil && env.fo == nil {
		// Per-execution failure memory: which nodes this run declared
		// dead, and how many operations failed over because of it.
		env.fo = &failoverState{}
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("engine: invalid plan: %w", err)
	}
	var execStart time.Time
	if e.inst != nil {
		execStart = time.Now()
	}
	vars := q.Select
	if len(vars) == 0 {
		vars = q.Vars()
	}
	vars = append([]string{}, vars...)
	st = &Stream{eng: e, env: env, execStart: execStart}
	var m Metrics
	var schema []string
	if p.Factorize && p.Alg != plan.Scan {
		// The cost model marked the root join result-heavy: build the
		// per-node answer graphs and flatten them lazily per chunk.
		parts, trace, err := e.evalFactorizedRoot(ctx, p, q, env, &m)
		if err != nil {
			return nil, err
		}
		schema = parts[0].Vars()
		if err := validateVars(vars, schema); err != nil {
			return nil, err
		}
		enums := make([]rowEnum, len(parts))
		for i, f := range parts {
			enums[i] = newFactEnum(f, vars)
		}
		st.src = &multiEnum{enums: enums}
		st.trace = trace
		st.res = &Result{Vars: vars, Metrics: m, Trace: trace, Factorized: true, flatRows: trace.OutputRows}
		st.res.Failovers, st.res.Degraded = env.fo.summary()
	} else {
		parts, trace, err := e.eval(ctx, p, q, env, &m)
		if err != nil {
			return nil, err
		}
		schema = parts[0].Vars
		if err := validateVars(vars, schema); err != nil {
			return nil, err
		}
		var flat int64
		for _, r := range parts {
			flat += int64(len(r.Rows))
		}
		cols := make([]int, len(vars))
		for i, v := range vars {
			cols[i] = parts[0].colIndex(v)
		}
		st.src = &flatEnum{parts: parts, cols: cols, scratch: make([]rdf.TermID, len(vars))}
		st.trace = trace
		st.res = &Result{Vars: vars, Metrics: m, Trace: trace, flatRows: flat}
		st.res.Failovers, st.res.Degraded = env.fo.summary()
	}
	if !dedupFree(p, len(env.Snap.stores), vars, schema) {
		st.seen = make(map[[2]uint64]struct{})
	}
	st.chunk = newRelation(vars, streamChunkRows)
	return st, nil
}

func validateVars(vars, schema []string) error {
	for _, v := range vars {
		found := false
		for _, sv := range schema {
			if sv == v {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("engine: projected variable ?%s not bound by the query", v)
		}
	}
	return nil
}

// Vars names the stream's output columns.
func (s *Stream) Vars() []string { return s.res.Vars }

// NextChunk returns the next batch of distinct result rows, or nil at
// the end of the stream. The rows (and their backing arena) are valid
// only until the following NextChunk call — consumers that retain rows
// must copy them. An error (cancellation, budget trip, recovered
// panic) ends the stream.
func (s *Stream) NextChunk(ctx context.Context) (rows [][]rdf.TermID, err error) {
	defer resilience.CatchPanic(&err, s.eng.inst.panicRecovered)
	if s.done {
		return nil, nil
	}
	// One upfront check per chunk keeps small streams responsive to
	// cancellation (a disconnected consumer stops within one call); the
	// in-loop poll below bounds the latency within huge flattens.
	if err := obs.Canceled(ctx, "flatten"); err != nil {
		return nil, err
	}
	s.chunk.Rows = s.chunk.Rows[:0]
	s.chunk.arena = s.chunk.arena[:0]
	for len(s.chunk.Rows) < streamChunkRows {
		row := s.src.next()
		if row == nil {
			s.done = true
			break
		}
		s.enumerated++
		if s.ops++; s.ops&(cancelEvery-1) == 0 {
			if err := obs.Canceled(ctx, "flatten"); err != nil {
				return nil, err
			}
		}
		if s.seen != nil {
			k := hash128(row)
			if _, dup := s.seen[k]; dup {
				continue
			}
			s.seen[k] = struct{}{}
			if need := int64(len(s.seen)) * dedupEntryBytes; need-s.seenCharged >= dedupChargeStep {
				if err := s.env.Gauge.Reserve("dedup", need-s.seenCharged); err != nil {
					return nil, err
				}
				s.seenCharged = need
			}
		}
		s.chunk.appendCopy(row)
	}
	// The chunk arena is recycled across calls, so this charges only on
	// first fill (and the rare later growth): the stream's resident
	// output is one chunk, not the whole result.
	if err := s.chunk.chargeTo(s.env.Gauge, "stream"); err != nil {
		return nil, err
	}
	s.res.Returned += int64(len(s.chunk.Rows))
	if s.done {
		s.Finish()
	}
	if len(s.chunk.Rows) == 0 {
		return nil, nil
	}
	return s.chunk.Rows, nil
}

// Finish finalizes the execution's statistics — the factorized trace's
// flatten counters and the engine instruments. It runs automatically
// when the source drains; callers abandoning a stream early call it to
// record what did happen. Idempotent.
func (s *Stream) Finish() {
	if s.finished {
		return
	}
	s.finished = true
	if s.res.Factorized && s.trace != nil {
		s.trace.FlattenedRows = s.enumerated
		s.trace.DeferredFanout = s.trace.OutputRows - s.enumerated
		if s.trace.DeferredFanout < 0 {
			s.trace.DeferredFanout = 0
		}
	}
	if s.eng.inst != nil {
		s.eng.inst.recordExecute(time.Since(s.execStart), int(s.res.Returned), s.res.Metrics)
		if s.res.Factorized {
			s.eng.inst.recordFactorized(s.res.flatRows, s.enumerated)
		}
		s.eng.inst.recordFailovers(s.res.Failovers)
	}
}

// Result returns the execution's statistics result (Rows is nil — the
// rows went through NextChunk; Returned counts them). Metrics, trace
// and plan information are valid as soon as ExecuteStream returns;
// flatten counters and instruments are final once the stream ended.
func (s *Stream) Result() *Result { return s.res }
